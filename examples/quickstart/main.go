// Quickstart: index a small synthetic collection with highly
// discriminative keys over an 8-peer network and answer one query,
// printing the bounded per-query traffic next to the results.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A document collection (synthetic Wikipedia stand-in).
	col, err := corpus.Generate(corpus.DefaultGenParams(300))
	if err != nil {
		return err
	}

	// 2. A structured P2P overlay of 8 peers.
	net := overlay.NewNetwork(transport.NewInProc())
	var nodes []*overlay.Node
	for i := 0; i < 8; i++ {
		n, err := net.AddNode(fmt.Sprintf("peer-%d", i))
		if err != nil {
			return err
		}
		nodes = append(nodes, n)
	}

	// 3. The HDK engine: DFmax bounds every posting list the index serves.
	cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()})
	cfg.DFMax = 10
	cfg.Window = 10
	eng, err := core.NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		return err
	}
	for i, part := range col.SplitRoundRobin(len(nodes)) {
		if _, err := eng.AddPeer(nodes[i], part); err != nil {
			return err
		}
	}

	// 4. Collaborative index construction (single terms, then key
	// expansion driven by non-discriminative-key notifications).
	if err := eng.BuildIndex(); err != nil {
		return err
	}
	st := eng.Stats()
	fmt.Printf("index: %d keys (%d singles, %d pairs, %d triples), %d postings\n",
		st.KeysTotal, st.KeysBySize[1], st.KeysBySize[2], st.KeysBySize[3], st.StoredTotal)

	// 5. Search with a 3-term query drawn from a real document window.
	q := corpus.Query{Terms: col.Docs[42].Terms[:3]}
	res, err := eng.Search(q, nodes[0], 10)
	if err != nil {
		return err
	}
	fmt.Printf("query %v: probed %d lattice keys, found %d, fetched %d postings (bound: nk*DFmax)\n",
		q.Terms, res.ProbedKeys, res.FoundKeys, res.FetchedPosts)
	for i, r := range res.Results {
		fmt.Printf("%2d. doc %-5d score %.3f\n", i+1, r.Doc, r.Score)
	}
	return nil
}
