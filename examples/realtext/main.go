// Realtext: the full paper pipeline on actual English prose — raw
// documents go through tokenization, the 250-word stop list and the
// Porter stemmer (internal/ingest), are distributed over a P-Grid trie
// (the paper's own substrate), indexed with highly discriminative keys,
// and queried with free-text queries.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/pgrid"
	"repro/internal/rank"
	"repro/internal/transport"
)

// documents is a small hand-written collection about distributed
// systems, information retrieval and networking, with deliberate topical
// overlap so multi-term keys form.
var documents = []string{
	"Distributed hash tables route every key to a responsible peer in a logarithmic number of hops. Finger tables keep routing state small while lookups stay fast.",
	"An inverted index maps every term of the vocabulary to the posting list of documents containing it. Posting lists for frequent terms grow with the collection.",
	"Peer to peer retrieval engines distribute the inverted index over a structured overlay network so that no single machine stores the whole vocabulary.",
	"Bandwidth consumption during retrieval is dominated by shipping posting lists between peers. Bounding the posting list length bounds the retrieval traffic.",
	"Highly discriminative keys are term sets appearing in few documents. Indexing with discriminative keys keeps every posting list short by construction.",
	"The BM25 relevance scheme weighs term frequency against document length and penalizes terms that occur in many documents of the collection.",
	"Bloom filters compress set membership so two peers can intersect posting lists without shipping them. False positives require a verification round.",
	"Web search engines answer multi term queries by ranking the documents that contain the query terms and returning the top twenty results to the user.",
	"A structured overlay network assigns every peer a region of the key space. When peers join or leave, the regions are rebalanced and index entries move.",
	"Caching posting lists at querying peers eliminates repeated network traffic for popular queries, at the cost of invalidation when the index changes.",
	"Proximity filtering keeps only term sets whose members occur close together in a document window, because nearby words co-occur in real user queries.",
	"The scalability of a retrieval engine is measured by how indexing and retrieval traffic grow when documents and peers are added to the network.",
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Ingest raw text through the full pipeline.
	builder := ingest.NewBuilder()
	for _, text := range documents {
		builder.Add(text)
	}
	col := builder.Build()
	fmt.Println(builder.Stats())

	// 2. A P-Grid trie of 4 peers (the paper's substrate).
	net := pgrid.NewNetwork(transport.NewInProc())
	for i := 0; i < 4; i++ {
		if _, err := net.AddPeer(fmt.Sprintf("peer-%d", i)); err != nil {
			return err
		}
	}
	members := net.Members()
	for _, m := range members {
		fmt.Printf("peer %s owns trie path %q\n", m.Addr(), m.(*pgrid.Peer).Path())
	}

	// 3. HDK engine with a tiny DFmax so multi-term keys appear even on
	// twelve documents.
	cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()})
	cfg.DFMax = 2
	cfg.Window = 12
	eng, err := core.NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		return err
	}
	for i, part := range col.SplitRoundRobin(len(members)) {
		if _, err := eng.AddPeer(members[i], part); err != nil {
			return err
		}
	}
	if err := eng.BuildIndex(); err != nil {
		return err
	}
	st := eng.Stats()
	fmt.Printf("index: %d keys (%d singles, %d pairs, %d triples)\n\n",
		st.KeysTotal, st.KeysBySize[1], st.KeysBySize[2], st.KeysBySize[3])

	// 4. Free-text queries through the same pipeline.
	for _, text := range []string{
		"posting list traffic",
		"discriminative keys",
		"overlay network peers join",
		"bloom filter intersection",
	} {
		q, unknown := builder.ParseQuery(text)
		if len(unknown) > 0 {
			fmt.Printf("query %q: unknown terms %v\n", text, unknown)
		}
		res, err := eng.Search(q, members[0], 3)
		if err != nil {
			return err
		}
		fmt.Printf("query %q -> %d keys probed, %d postings fetched\n",
			text, res.ProbedKeys, res.FetchedPosts)
		for i, r := range res.Results {
			doc := documents[r.Doc]
			if len(doc) > 70 {
				doc = doc[:70] + "..."
			}
			fmt.Printf("  %d. [%.2f] %s\n", i+1, r.Score, doc)
		}
	}
	return nil
}
