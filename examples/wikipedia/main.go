// Wikipedia-style evaluation: the paper's Section 5 experiment end to
// end on a generated collection — growing peer network, distributed
// single-term baseline vs the HDK engine at two DFmax values, centralized
// BM25 reference — printing every table and figure series.
//
// Pass -scale medium for a longer, closer-to-paper run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "small", "small or medium")
	flag.Parse()

	scale := experiments.SmallScale()
	if *scaleName == "medium" {
		scale = experiments.MediumScale()
	}
	res, err := experiments.Run(scale, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range experiments.AllTables(res) {
		t.Fprint(os.Stdout)
	}
	res.WriteSummary(os.Stdout)
}
