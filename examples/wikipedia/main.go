// Wikipedia-style evaluation: the paper's Section 5 experiment end to
// end on a generated collection — growing peer network, distributed
// single-term baseline vs the HDK engine at two DFmax values, centralized
// BM25 reference — printing every table and figure series.
//
// Pass -scale medium for a longer, closer-to-paper run.
//
// Pass -remote to exercise the streamed coordinator-side build instead:
// it boots -nodes hdknode daemons in-process on real TCP sockets, then
// acts as a THIN client — the corpus (-docs documents, 100k by default)
// is never resident; each daemon's shard is regenerated from a
// deterministic corpus.DocStream one document at a time and shipped
// over the chunked, resumable hdk.ingest session, after which one
// daemon coordinates the whole round-synchronous index build node-side
// (hdk.build). The client's footprint is the vocabulary plus one offer
// window of chunks, independent of -docs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/rank"
	"repro/internal/transport"
	"repro/internal/transport/cluster"
)

func main() {
	scaleName := flag.String("scale", "small", "small or medium (sweep mode)")
	remote := flag.Bool("remote", false, "streamed coordinator-side build against in-process TCP daemons instead of the sweep")
	docs := flag.Int("docs", 100000, "with -remote: corpus size streamed to the cluster")
	nodes := flag.Int("nodes", 5, "with -remote: hdknode daemons to boot")
	chunkBytes := flag.Int("build-chunk-bytes", 0, "with -remote: hdk.ingest chunk payload target in bytes (0 = cluster default)")
	flag.Parse()

	if *remote {
		if err := remoteBuild(*docs, *nodes, *chunkBytes); err != nil {
			log.Fatal(err)
		}
		return
	}
	scale := experiments.SmallScale()
	if *scaleName == "medium" {
		scale = experiments.MediumScale()
	}
	res, err := experiments.Run(scale, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range experiments.AllTables(res) {
		t.Fprint(os.Stdout)
	}
	res.WriteSummary(os.Stdout)
}

// remoteBuild boots a real-TCP daemon cluster and indexes the corpus
// through the thin-client ingest API. Nothing in this function ever
// holds the collection: the global statistics come from one streaming
// StreamStats pass, and every shard upload re-generates the document
// stream and skips the documents other daemons own.
func remoteBuild(docs, nodes, chunkBytes int) error {
	if nodes < 1 {
		return fmt.Errorf("-nodes must be >= 1")
	}
	gp := corpus.DefaultGenParams(docs)

	fmt.Fprintf(os.Stderr, "streaming global statistics pass over %d docs...\n", docs)
	freqs, numDocs, sampleSize, err := corpus.StreamStats(gp)
	if err != nil {
		return err
	}
	stream, err := corpus.NewDocStream(gp)
	if err != nil {
		return err
	}
	vocab := stream.Vocab()
	cfg := core.DefaultConfig(rank.CollectionStats{
		NumDocs:   numDocs,
		AvgDocLen: float64(sampleSize) / float64(numDocs),
	})

	// The daemon fleet: each on its own TCP transport and ephemeral
	// port, joined through the first — exactly what scripts/cluster-up.sh
	// boots as separate OS processes.
	fmt.Fprintf(os.Stderr, "booting %d daemons on TCP...\n", nodes)
	servers := make([]*cluster.Server, nodes)
	for i := range servers {
		tr := transport.NewTCP()
		defer tr.Close()
		s, err := cluster.NewServer(tr, "127.0.0.1:0", cfg.ReplicationFactor)
		if err != nil {
			return err
		}
		defer s.Shutdown()
		if i > 0 {
			if err := s.Join(servers[0].Addr()); err != nil {
				return err
			}
		}
		servers[i] = s
	}

	tr := transport.NewTCP()
	defer tr.Close()
	c, err := cluster.Dial(cluster.Options{Transport: tr, Seed: servers[0].Addr(), ChunkBytes: chunkBytes})
	if err != nil {
		return err
	}
	members := c.Members()
	n := len(members)

	// Per-shard streamed uploads: ring member i owns documents j with
	// j%n == i, so its iterator regenerates the full deterministic
	// stream and yields only those.
	ingestStart := time.Now()
	var chunks int
	var bytes uint64
	for i, m := range members {
		ds, err := corpus.NewDocStream(gp)
		if err != nil {
			return err
		}
		idx, pos := i, 0
		st, err := c.Ingest(m.Addr(), cluster.IngestSource{
			Session:   1,
			Config:    cfg,
			Vocab:     vocab,
			TermFreqs: freqs,
			TotalDocs: numDocs,
			ShardDocs: (numDocs - i + n - 1) / n,
			Docs: func() (corpus.Document, bool) {
				for {
					d, ok := ds.Next()
					if !ok {
						return corpus.Document{}, false
					}
					mine := pos%n == idx
					pos++
					if mine {
						return d, true
					}
				}
			},
		})
		if err != nil {
			return err
		}
		chunks += st.Chunks
		bytes += st.Bytes
		fmt.Fprintf(os.Stderr, "  %s: %d docs in %d chunks (%d bytes)\n", m.Addr(), st.Docs, st.Chunks, st.Bytes)
	}
	ingestNanos := time.Since(ingestStart).Nanoseconds()

	fmt.Fprintf(os.Stderr, "daemon-coordinated build via %s...\n", members[0].Addr())
	buildStart := time.Now()
	lastRound := -1
	if err := c.BuildRemote(members[0].Addr(), func(info cluster.Info) {
		if info.BuildRound > 0 && info.BuildRound != lastRound {
			lastRound = info.BuildRound
			fmt.Fprintf(os.Stderr, "  round %d/%d\n", info.BuildRound, cfg.SMax)
		}
	}); err != nil {
		return err
	}
	buildNanos := time.Since(buildStart).Nanoseconds()

	nodeStats, err := c.StoreStats()
	if err != nil {
		return err
	}
	posts, keys := 0, 0
	for _, ns := range nodeStats {
		posts += ns.Stats.PostsTotal()
		keys += ns.Stats.KeysTotal()
	}
	fmt.Printf("Streamed remote build — %d docs over %d daemons (DFmax=%d, w=%d, smax=%d)\n",
		numDocs, n, cfg.DFMax, cfg.Window, cfg.SMax)
	fmt.Printf("ingest: %d chunks, %d payload bytes in %.1fs | build: %.1fs (%.0f docs/sec end to end)\n",
		chunks, bytes, float64(ingestNanos)/1e9, float64(buildNanos)/1e9,
		float64(numDocs)/(float64(ingestNanos+buildNanos)/1e9))
	fmt.Printf("index: %d keys, %d postings across %d daemons\n", keys, posts, len(nodeStats))

	// A few sample queries through the node-side coordinators, built
	// from discriminative (df <= DFMax) vocabulary terms — the client
	// still holds no corpus, just the streamed statistics.
	eng, err := core.NewEngine(c, cfg, vocab, freqs)
	if err != nil {
		return err
	}
	var rare []corpus.TermID
	for t, f := range freqs {
		if f >= 3 && f <= cfg.DFMax/2 {
			rare = append(rare, corpus.TermID(t))
		}
	}
	sort.Slice(rare, func(a, b int) bool { return freqs[rare[a]] > freqs[rare[b]] })
	for qi := 0; qi+1 < len(rare) && qi < 6; qi += 2 {
		q := corpus.Query{Terms: []corpus.TermID{rare[qi], rare[qi+1]}}
		res, cached, err := c.SearchVia(members[qi%n].Addr(), core.SearchRequest{Terms: eng.QueryTerms(q), K: 5})
		if err != nil {
			return err
		}
		cost := ""
		if cached {
			cost = " [cached]"
		}
		fmt.Printf("query %q + %q: %d results, probed %d keys, fetched %d postings%s\n",
			vocab[rare[qi]], vocab[rare[qi+1]], len(res.Results), res.ProbedKeys, res.FetchedPosts, cost)
	}
	return nil
}
