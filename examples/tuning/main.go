// Tuning: the paper's closing argument made concrete — sweep DFmax on a
// fixed collection and print the bandwidth/quality trade-off (per-query
// postings vs top-20 overlap with centralized BM25), then ask the
// analysis module which DFmax fits a given per-query posting budget.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/transport"
)

func main() {
	docs := flag.Int("docs", 800, "collection size")
	budget := flag.Float64("budget", 120, "per-query posting budget for the advisor")
	flag.Parse()
	if err := run(*docs, *budget); err != nil {
		log.Fatal(err)
	}
}

func run(docs int, budget float64) error {
	p := corpus.DefaultGenParams(docs)
	p.AvgDocLen = 80
	col, err := corpus.Generate(p)
	if err != nil {
		return err
	}
	cen := baseline.NewCentralized(col, rank.DefaultBM25())

	qp := corpus.DefaultQueryParams(60)
	qp.MinHits = 3
	queries, err := corpus.GenerateQueries(col, qp, 10, cen.ConjunctiveHits)
	if err != nil {
		return err
	}
	reference := make([][]rank.Result, len(queries))
	for i, q := range queries {
		reference[i] = cen.Search(q, 20)
	}
	avgQ := corpus.AvgQuerySize(queries)
	fmt.Printf("collection: %d docs | %d queries (avg %.2f terms)\n\n", col.M(), len(queries), avgQ)
	fmt.Printf("%-8s %-12s %-14s %-16s %-10s\n", "DFmax", "keys", "stored posts", "postings/query", "overlap%")

	for _, dfmax := range []int{4, 8, 12, 16, 24, 32} {
		keys, stored, perQuery, overlap, err := measure(col, dfmax, queries, reference)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-12d %-14d %-16.1f %-10.1f\n", dfmax, keys, stored, perQuery, overlap)
	}

	advised := analysis.AdviseDFMax(budget, avgQ, 3)
	fmt.Printf("\nadvisor: budget of %.0f postings/query at avg query size %.2f -> DFmax <= %d (bound %.0f)\n",
		budget, avgQ, advised, analysis.RetrievalBound(avgQ, 3, advised))
	return nil
}

func measure(col *corpus.Collection, dfmax int, queries []corpus.Query, reference [][]rank.Result) (keys, stored int, perQuery, overlap float64, err error) {
	net := overlay.NewNetwork(transport.NewInProc())
	var nodes []*overlay.Node
	for i := 0; i < 8; i++ {
		n, err := net.AddNode(fmt.Sprintf("peer-%d", i))
		if err != nil {
			return 0, 0, 0, 0, err
		}
		nodes = append(nodes, n)
	}
	cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()})
	cfg.DFMax = dfmax
	cfg.Window = 10
	eng, err := core.NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for i, part := range col.SplitRoundRobin(len(nodes)) {
		if _, err := eng.AddPeer(nodes[i], part); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	if err := eng.BuildIndex(); err != nil {
		return 0, 0, 0, 0, err
	}
	st := eng.Stats()
	var fetched uint64
	var ov float64
	for i, q := range queries {
		res, err := eng.Search(q, nodes[i%len(nodes)], 20)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		fetched += res.FetchedPosts
		ov += rank.Overlap(reference[i], res.Results, 20)
	}
	n := float64(len(queries))
	return st.KeysTotal, st.StoredTotal, float64(fetched) / n, ov / n, nil
}
