// TCP cluster: the same HDK engine code speaking a real network — every
// peer is an overlay node bound to a loopback TCP port, all index
// insertions, NDK notifications and query fetches travel through length-
// prefixed TCP frames (the paper's prototype ran on 28 LAN PCs; this
// demonstrates transport fidelity rather than scale).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	col, err := corpus.Generate(corpus.GenParams{
		NumDocs: 120, VocabSize: 2000, AvgDocLen: 50,
		Skew: 1.0, NumTopics: 6, TopicTerms: 60, TopicMix: 0.5, Seed: 9,
	})
	if err != nil {
		return err
	}

	tr := transport.NewTCP()
	defer tr.Close()
	net := overlay.NewNetwork(tr)
	var nodes []*overlay.Node
	for i := 0; i < 4; i++ {
		n, err := net.AddNode("127.0.0.1:0")
		if err != nil {
			return err
		}
		nodes = append(nodes, n)
		fmt.Printf("peer %d listening on %s\n", i, n.Addr())
	}

	cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()})
	cfg.DFMax = 8
	cfg.Window = 8
	eng, err := core.NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		return err
	}
	for i, part := range col.SplitRoundRobin(len(nodes)) {
		if _, err := eng.AddPeer(nodes[i], part); err != nil {
			return err
		}
	}
	if err := eng.BuildIndex(); err != nil {
		return err
	}
	st := eng.Stats()
	ts := tr.Stats()
	fmt.Printf("indexed over TCP: %d keys, %d postings | %d messages, %d payload bytes\n",
		st.KeysTotal, st.StoredTotal, ts.Messages, ts.Bytes)

	q := corpus.Query{Terms: col.Docs[5].Terms[:2]}
	res, err := eng.Search(q, nodes[0], 5)
	if err != nil {
		return err
	}
	fmt.Printf("query over TCP fetched %d postings, %d results:\n", res.FetchedPosts, len(res.Results))
	for i, r := range res.Results {
		fmt.Printf("%2d. doc %-5d score %.3f\n", i+1, r.Doc, r.Score)
	}
	return nil
}
