// Churn: the paper's system-growth scenario — peers join in batches of 4
// (4 -> 28, as in Section 5), each batch bringing new documents. After
// every batch the collection is re-indexed and per-peer load is printed:
// with a constant number of documents per peer, the per-peer index size
// stabilizes while the collection keeps growing (the scalability argument
// of Section 4.1).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/transport"
)

func main() {
	docsPerPeer := flag.Int("docs-per-peer", 100, "documents each joining peer contributes")
	flag.Parse()
	if err := run(*docsPerPeer); err != nil {
		log.Fatal(err)
	}
}

func run(docsPerPeer int) error {
	const maxPeers = 28
	p := corpus.DefaultGenParams(maxPeers * docsPerPeer)
	p.AvgDocLen = 60
	full, err := corpus.Generate(p)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s %-7s %-16s %-16s %-14s\n", "peers", "docs", "stored/peer", "max node load", "mean hops")
	for peers := 4; peers <= maxPeers; peers += 4 {
		docs := peers * docsPerPeer
		col := full.Slice(0, docs)

		net := overlay.NewNetwork(transport.NewInProc())
		var nodes []*overlay.Node
		for i := 0; i < peers; i++ {
			n, err := net.AddNode(fmt.Sprintf("peer-%d", i))
			if err != nil {
				return err
			}
			nodes = append(nodes, n)
		}
		cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()})
		cfg.DFMax = 10
		cfg.Window = 8
		eng, err := core.NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
		if err != nil {
			return err
		}
		for i, part := range col.SplitRoundRobin(peers) {
			if _, err := eng.AddPeer(nodes[i], part); err != nil {
				return err
			}
		}
		if err := eng.BuildIndex(); err != nil {
			return err
		}
		st := eng.Stats()
		maxLoad := 0
		for _, load := range st.PerNode {
			if load > maxLoad {
				maxLoad = load
			}
		}
		_, hops := net.LookupStats()
		fmt.Printf("%-7d %-7d %-16.0f %-16d %-14.2f\n",
			peers, docs, float64(st.StoredTotal)/float64(peers), maxLoad, hops)
	}
	fmt.Println("\nper-peer load flattens as the network grows with the collection —")
	fmt.Println("the paper's constant-docs-per-peer scalability argument (Section 4.1).")
	return nil
}
