// Churn: the paper's system-growth scenario plus the failure half the
// paper left to P-Grid. Peers join in batches of 4 (4 -> 28, as in
// Section 5), each batch bringing new documents; after every batch the
// collection is re-indexed and per-peer load is printed — with a constant
// number of documents per peer, the per-peer index size stabilizes while
// the collection keeps growing (the scalability argument of Section 4.1).
// Then the network shrinks: a fraction of the peers crash mid-run,
// recall against the intact index is measured (replica failover serves
// the surviving copies), churn repair re-replicates the under-replicated
// keys, and recall is measured again — the internal/replica subsystem
// end-to-end.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/transport"
)

func main() {
	docsPerPeer := flag.Int("docs-per-peer", 100, "documents each joining peer contributes")
	replicas := flag.Int("replicas", 2, "R-way key replication factor")
	killFrac := flag.Float64("kill-frac", 0.25, "fraction of peers crashed after the growth phase")
	short := flag.Bool("short", false, "small fast run (CI smoke): 8 peers, 40 docs each")
	flag.Parse()
	maxPeers := 28
	if *short {
		maxPeers = 8
		*docsPerPeer = 40
	}
	if *killFrac <= 0 || *killFrac >= 1 {
		log.Fatalf("-kill-frac %g outside (0,1)", *killFrac)
	}
	if *replicas < 1 {
		log.Fatalf("-replicas %d must be >= 1", *replicas)
	}
	if err := run(maxPeers, *docsPerPeer, *replicas, *killFrac); err != nil {
		log.Fatal(err)
	}
}

func run(maxPeers, docsPerPeer, replicas int, killFrac float64) error {
	p := corpus.DefaultGenParams(maxPeers * docsPerPeer)
	p.AvgDocLen = 60
	full, err := corpus.Generate(p)
	if err != nil {
		return err
	}

	// --- Growth phase: the paper's batch-join scalability table. -------
	fmt.Printf("growth (R=%d):\n", replicas)
	fmt.Printf("%-7s %-7s %-16s %-16s %-14s\n", "peers", "docs", "stored/peer", "max node load", "mean hops")
	var eng *core.Engine
	var net *overlay.Network
	var col *corpus.Collection
	for peers := 4; peers <= maxPeers; peers += 4 {
		docs := peers * docsPerPeer
		col = full.Slice(0, docs)

		net = overlay.NewNetwork(transport.NewInProc())
		var nodes []*overlay.Node
		for i := 0; i < peers; i++ {
			n, err := net.AddNode(fmt.Sprintf("peer-%d", i))
			if err != nil {
				return err
			}
			nodes = append(nodes, n)
		}
		cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()})
		cfg.DFMax = 10
		cfg.Window = 8
		cfg.ReplicationFactor = replicas
		eng, err = core.NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
		if err != nil {
			return err
		}
		for i, part := range col.SplitRoundRobin(peers) {
			if _, err := eng.AddPeer(nodes[i], part); err != nil {
				return err
			}
		}
		if err := eng.BuildIndex(); err != nil {
			return err
		}
		st := eng.Stats()
		maxLoad := 0
		for _, load := range st.PerNode {
			if load > maxLoad {
				maxLoad = load
			}
		}
		_, hops := net.LookupStats()
		fmt.Printf("%-7d %-7d %-16.0f %-16d %-14.2f\n",
			peers, docs, float64(st.StoredTotal)/float64(peers), maxLoad, hops)
	}
	fmt.Println("\nper-peer load flattens as the network grows with the collection —")
	fmt.Println("the paper's constant-docs-per-peer scalability argument (Section 4.1).")

	// --- Churn phase: crash peers mid-run on the final network. --------
	queries := maxPeers
	if queries > col.M() {
		queries = col.M()
	}
	members := net.Members()
	origin := members[0]
	intact := make([][]rank.Result, queries)
	for i := 0; i < queries; i++ {
		res, err := eng.Search(corpus.Query{Terms: col.Docs[i].Terms[:2]}, origin, 10)
		if err != nil {
			return err
		}
		intact[i] = res.Results
	}

	kills := int(float64(maxPeers) * killFrac)
	if kills < 1 {
		kills = 1
	}
	step := maxPeers / kills
	for k := 0; k < kills; k++ {
		if err := eng.FailNode(members[1+k*step]); err != nil {
			return err
		}
	}
	fmt.Printf("\nchurn: crashed %d of %d peers (index fractions lost, no handoff)\n", kills, maxPeers)

	recall, failovers, err := measure(eng, col, intact, origin, queries)
	if err != nil {
		return err
	}
	audit := eng.AuditReplicas()
	fmt.Printf("before repair: recall@10 %.4f vs intact index, %d failovers, %d/%d keys under-replicated\n",
		recall, failovers, audit.UnderReplicated, audit.Keys)

	rstats, err := eng.RepairReplicas()
	if err != nil {
		return err
	}
	fmt.Printf("repair: %d snapshot copies shipped in %d RPCs (no re-indexing)\n",
		rstats.CopiesSent, rstats.RepairRPCs)

	recall, failovers, err = measure(eng, col, intact, origin, queries)
	if err != nil {
		return err
	}
	audit = eng.AuditReplicas()
	fmt.Printf("after repair:  recall@10 %.4f vs intact index, %d failovers, %d/%d keys under-replicated\n",
		recall, failovers, audit.UnderReplicated, audit.Keys)
	if replicas > 1 {
		if !audit.FullyReplicated() {
			return fmt.Errorf("repair left %d keys under-replicated", audit.UnderReplicated)
		}
		fmt.Printf("\nwith R=%d the surviving replicas answer every query; repair restores\n", replicas)
		fmt.Println("full R-way coverage from resident copies. at R=1 the same crash loses")
		fmt.Println("the dead peers' key fraction outright (try -replicas 1).")
	} else {
		fmt.Println("\nat R=1 the crashed peers' key fraction is gone: nothing holds a copy,")
		fmt.Println("so neither failover nor repair can recover it (try -replicas 2).")
	}
	return nil
}

// measure re-runs the query set and scores recall@10 vs the intact answers.
func measure(eng *core.Engine, col *corpus.Collection, intact [][]rank.Result,
	origin overlay.Member, queries int) (recall float64, failovers int, err error) {
	for i := 0; i < queries; i++ {
		res, err := eng.Search(corpus.Query{Terms: col.Docs[i].Terms[:2]}, origin, 10)
		if err != nil {
			return 0, 0, err
		}
		failovers += res.Failovers
		recall += rank.Overlap(intact[i], res.Results, 10) / 100
	}
	return recall / float64(queries), failovers, nil
}
