// Command benchcheck compares two BENCH_*.json perf-trajectory reports
// (the committed baseline vs a fresh hdkbench -json run) and fails when
// the candidate regresses. It is the CI bench-regression gate.
//
// Usage:
//
//	benchcheck -baseline BENCH_PR3.json -candidate bench-new.json \
//	           [-tolerance 0.20] [-time-tolerance 0.20]
//
// Runs are matched by (Peers, DFMax, Replicas). Deterministic per-query
// cost counters (batched fetch RPCs, lattice probes, shipped postings)
// are gated at -tolerance; wall-clock metrics (build ns, query ns) at
// -time-tolerance — CI passes a looser time tolerance because runner
// hardware varies between the machine that committed the baseline and
// the one checking it, while the counter gates stay tight (the counters
// are exactly reproducible from the seed).
//
// When both reports carry a "coordinator" section (hdkbench -connect
// -coordinator -clients N against a live cluster), it is compared too:
// the cold-pass counters and the cache proof are deterministic and
// gated EXACTLY (any drift is a behavior change, not noise), while
// throughput and p50/p99 latency are wall-clock and gated at
// -time-tolerance (throughput inverted: lower is the regression). A
// report may carry only a coordinator section — sweep, coordinator and
// codec comparisons each run when both sides have the data, and the
// check fails if none could be compared.
//
// When both reports carry a "codec" section (hdkbench -codec), the
// per-benchmark allocation counters are gated EXACTLY (the workload is
// fixed, so any drift is a code change) and ns/op at -time-tolerance.
// A baseline benchmark carrying allocs_before — its pre-optimization
// allocation count — additionally requires the candidate to stay
// STRICTLY below it: the hot-path microperf win must never be silently
// lost, not merely never regress past the current number.
//
// When both reports carry a "build" section (the streamed
// coordinator-side build every live -connect run records), the chunk
// counts are gated EXACTLY (pure functions of the corpus and the chunk
// target), the resume probe's resend count must be exactly ZERO (a
// nonzero value means an acked chunk was shipped twice), and build
// throughput is gated low-side at -time-tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline BENCH_*.json")
	candidate := flag.String("candidate", "", "fresh hdkbench -json output")
	tolerance := flag.Float64("tolerance", 0.20, "allowed relative regression for deterministic per-query counters")
	timeTolerance := flag.Float64("time-tolerance", 0.20, "allowed relative regression for wall-clock metrics")
	flag.Parse()

	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline and -candidate are required")
		os.Exit(2)
	}
	regressions, compared, err := check(*baseline, *candidate, *tolerance, *timeTolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(regressions) > 0 {
		fmt.Printf("benchcheck: %d regression(s) across %d compared runs:\n", len(regressions), compared)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: OK — %d runs compared, no metric regressed beyond tolerance\n", compared)
}

func load(path string) (*experiments.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runKey identifies one HDK measurement across reports.
type runKey struct {
	Peers, DFMax, Replicas int
}

func check(basePath, candPath string, tol, timeTol float64) (regressions []string, compared int, err error) {
	base, err := load(basePath)
	if err != nil {
		return nil, 0, err
	}
	cand, err := load(candPath)
	if err != nil {
		return nil, 0, err
	}

	baseRuns := index(base)
	candRuns := index(cand)
	if len(candRuns) == 0 && cand.Coordinator == nil && cand.Codec == nil {
		return nil, 0, fmt.Errorf("candidate %s holds no HDK runs, no coordinator section and no codec section", candPath)
	}
	if len(baseRuns) > 0 && len(candRuns) > 0 {
		for key, b := range baseRuns {
			c, ok := candRuns[key]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("run %+v present in baseline but missing from candidate", key))
				continue
			}
			compared++
			checkMetric := func(name string, bv, cv, t float64) {
				if bv <= 0 {
					return
				}
				if cv > bv*(1+t) {
					regressions = append(regressions,
						fmt.Sprintf("%+v %s: %.4g -> %.4g (+%.1f%%, tolerance %.0f%%)",
							key, name, bv, cv, 100*(cv/bv-1), 100*t))
				}
			}
			checkMetric("QueryRPCsAvg", b.QueryRPCsAvg, c.QueryRPCsAvg, tol)
			checkMetric("QueryProbesAvg", b.QueryProbesAvg, c.QueryProbesAvg, tol)
			checkMetric("QueryPostingsAvg", b.QueryPostingsAvg, c.QueryPostingsAvg, tol)
			checkMetric("BuildNanos", float64(b.BuildNanos), float64(c.BuildNanos), timeTol)
			checkMetric("QueryNanosAvg", b.QueryNanosAvg, c.QueryNanosAvg, timeTol)
		}
	}
	if coordRegs, coordCompared := checkCoordinator(base.Coordinator, cand.Coordinator, timeTol); coordCompared {
		regressions = append(regressions, coordRegs...)
		compared++
	}
	if codecRegs, codecCompared := checkCodec(base.Codec, cand.Codec, timeTol); codecCompared {
		regressions = append(regressions, codecRegs...)
		compared++
	}
	if buildRegs, buildCompared := checkBuild(base.Build, cand.Build, timeTol); buildCompared {
		regressions = append(regressions, buildRegs...)
		compared++
	}
	if compared == 0 {
		return nil, 0, fmt.Errorf("nothing comparable: baseline %s and candidate %s share no sweep runs, coordinator section, codec section or build section", basePath, candPath)
	}
	return regressions, compared, nil
}

// checkCodec compares the hot-path codec microbench sections when both
// reports carry them. The workload is fixed, so allocation counters
// must match the baseline exactly; ns/op is wall-clock and gated at
// the time tolerance. A baseline entry with allocs_before pins the
// pre-optimization cost — the candidate must stay strictly below it,
// so the microperf win can never be lost without tripping the gate.
func checkCodec(b, c *experiments.CodecReport, timeTol float64) (regressions []string, compared bool) {
	if b == nil || c == nil {
		return nil, false
	}
	candByName := make(map[string]experiments.CodecBenchmark, len(c.Benchmarks))
	for _, bm := range c.Benchmarks {
		candByName[bm.Name] = bm
	}
	for _, bb := range b.Benchmarks {
		cb, ok := candByName[bb.Name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("codec %s present in baseline but missing from candidate", bb.Name))
			continue
		}
		if cb.AllocsPerOp != bb.AllocsPerOp {
			regressions = append(regressions,
				fmt.Sprintf("codec %s allocs/op: %d -> %d (fixed workload, must match exactly)",
					bb.Name, bb.AllocsPerOp, cb.AllocsPerOp))
		}
		if bb.AllocsBefore > 0 && cb.AllocsPerOp >= bb.AllocsBefore {
			regressions = append(regressions,
				fmt.Sprintf("codec %s allocs/op: %d is not below the pre-optimization %d — the microperf win was lost",
					bb.Name, cb.AllocsPerOp, bb.AllocsBefore))
		}
		if bb.NsPerOp > 0 && cb.NsPerOp > bb.NsPerOp*(1+timeTol) {
			regressions = append(regressions,
				fmt.Sprintf("codec %s ns/op: %.4g -> %.4g (+%.1f%%, time tolerance %.0f%%)",
					bb.Name, bb.NsPerOp, cb.NsPerOp, 100*(cb.NsPerOp/bb.NsPerOp-1), 100*timeTol))
		}
	}
	return regressions, true
}

// checkCoordinator compares the node-side serving measurements when
// both reports carry them. The cold-pass counters and the cache proof
// are deterministic given the same scale/cluster shape, so they are
// gated exactly; throughput and latency are wall-clock and get the
// wide time tolerance (throughput gated on the LOW side — fewer
// queries per second is the regression).
func checkCoordinator(b, c *experiments.CoordReport, timeTol float64) (regressions []string, compared bool) {
	if b == nil || c == nil {
		return nil, false
	}
	if b.Nodes != c.Nodes || b.Replicas != c.Replicas || b.Docs != c.Docs ||
		b.Queries != c.Queries || b.Clients != c.Clients || b.DFMax != c.DFMax {
		return []string{fmt.Sprintf(
			"coordinator shape differs: baseline %d nodes/R=%d/%d docs/%d queries/%d clients/DFmax=%d, candidate %d/%d/%d/%d/%d/%d — not comparable",
			b.Nodes, b.Replicas, b.Docs, b.Queries, b.Clients, b.DFMax,
			c.Nodes, c.Replicas, c.Docs, c.Queries, c.Clients, c.DFMax)}, true
	}
	exact := func(name string, bv, cv float64) {
		if bv != cv {
			regressions = append(regressions,
				fmt.Sprintf("coordinator %s: %.4g -> %.4g (deterministic counter, must match exactly)", name, bv, cv))
		}
	}
	exact("ColdRPCsAvg", b.ColdRPCsAvg, c.ColdRPCsAvg)
	exact("ColdProbesAvg", b.ColdProbesAvg, c.ColdProbesAvg)
	exact("ColdPostingsAvg", b.ColdPostingsAvg, c.ColdPostingsAvg)
	exact("WarmCached", float64(b.WarmCached), float64(c.WarmCached))
	exact("WarmFetchRPCs", float64(b.WarmFetchRPCs), float64(c.WarmFetchRPCs))
	slow := func(name string, bv, cv float64) {
		if bv > 0 && cv > bv*(1+timeTol) {
			regressions = append(regressions,
				fmt.Sprintf("coordinator %s: %.4g -> %.4g (+%.1f%%, time tolerance %.0f%%)",
					name, bv, cv, 100*(cv/bv-1), 100*timeTol))
		}
	}
	slow("ColdNanosAvg", b.ColdNanosAvg, c.ColdNanosAvg)
	slow("LatencyP50Nanos", float64(b.LatencyP50Nanos), float64(c.LatencyP50Nanos))
	slow("LatencyP99Nanos", float64(b.LatencyP99Nanos), float64(c.LatencyP99Nanos))
	if b.ThroughputQPS > 0 && c.ThroughputQPS < b.ThroughputQPS/(1+timeTol) {
		regressions = append(regressions,
			fmt.Sprintf("coordinator ThroughputQPS: %.4g -> %.4g (-%.1f%%, time tolerance %.0f%%)",
				b.ThroughputQPS, c.ThroughputQPS, 100*(1-c.ThroughputQPS/b.ThroughputQPS), 100*timeTol))
	}
	return regressions, true
}

// checkBuild compares the streamed coordinator-side build sections when
// both reports carry them. The chunk counts are a pure function of the
// corpus and the chunk target, so they must match the baseline exactly,
// and the resume probe must re-ship ZERO chunks — regardless of what
// the baseline recorded, a nonzero resend means an acked chunk was
// shipped twice, which is the invariant this gate exists to hold. Build
// throughput is wall-clock and gated on the LOW side at the time
// tolerance.
func checkBuild(b, c *experiments.BuildReport, timeTol float64) (regressions []string, compared bool) {
	if b == nil || c == nil {
		return nil, false
	}
	if b.Nodes != c.Nodes || b.Replicas != c.Replicas || b.Docs != c.Docs || b.ChunkBytes != c.ChunkBytes {
		return []string{fmt.Sprintf(
			"build shape differs: baseline %d nodes/R=%d/%d docs/%d-byte chunks, candidate %d/%d/%d/%d — not comparable",
			b.Nodes, b.Replicas, b.Docs, b.ChunkBytes,
			c.Nodes, c.Replicas, c.Docs, c.ChunkBytes)}, true
	}
	if c.ResumeResent != 0 {
		regressions = append(regressions,
			fmt.Sprintf("build ResumeResent: %d — the resume probe re-shipped acked chunks (must be exactly 0)", c.ResumeResent))
	}
	exact := func(name string, bv, cv int) {
		if bv != cv {
			regressions = append(regressions,
				fmt.Sprintf("build %s: %d -> %d (deterministic chunk count, must match exactly)", name, bv, cv))
		}
	}
	exact("ChunksTotal", b.ChunksTotal, c.ChunksTotal)
	exact("ChunksSent", b.ChunksSent, c.ChunksSent)
	if b.DocsPerSec > 0 && c.DocsPerSec < b.DocsPerSec/(1+timeTol) {
		regressions = append(regressions,
			fmt.Sprintf("build DocsPerSec: %.4g -> %.4g (-%.1f%%, time tolerance %.0f%%)",
				b.DocsPerSec, c.DocsPerSec, 100*(1-c.DocsPerSec/b.DocsPerSec), 100*timeTol))
	}
	return regressions, true
}

func index(rep *experiments.BenchReport) map[runKey]experiments.HDKStep {
	out := make(map[runKey]experiments.HDKStep)
	for _, step := range rep.Steps {
		for _, h := range step.HDK {
			out[runKey{Peers: step.Peers, DFMax: h.DFMax, Replicas: h.Replicas}] = h
		}
	}
	return out
}
