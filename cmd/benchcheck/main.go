// Command benchcheck compares two BENCH_*.json perf-trajectory reports
// (the committed baseline vs a fresh hdkbench -json run) and fails when
// the candidate regresses. It is the CI bench-regression gate.
//
// Usage:
//
//	benchcheck -baseline BENCH_PR3.json -candidate bench-new.json \
//	           [-tolerance 0.20] [-time-tolerance 0.20]
//
// Runs are matched by (Peers, DFMax, Replicas). Deterministic per-query
// cost counters (batched fetch RPCs, lattice probes, shipped postings)
// are gated at -tolerance; wall-clock metrics (build ns, query ns) at
// -time-tolerance — CI passes a looser time tolerance because runner
// hardware varies between the machine that committed the baseline and
// the one checking it, while the counter gates stay tight (the counters
// are exactly reproducible from the seed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline BENCH_*.json")
	candidate := flag.String("candidate", "", "fresh hdkbench -json output")
	tolerance := flag.Float64("tolerance", 0.20, "allowed relative regression for deterministic per-query counters")
	timeTolerance := flag.Float64("time-tolerance", 0.20, "allowed relative regression for wall-clock metrics")
	flag.Parse()

	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline and -candidate are required")
		os.Exit(2)
	}
	regressions, compared, err := check(*baseline, *candidate, *tolerance, *timeTolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(regressions) > 0 {
		fmt.Printf("benchcheck: %d regression(s) across %d compared runs:\n", len(regressions), compared)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: OK — %d runs compared, no metric regressed beyond tolerance\n", compared)
}

func load(path string) (*experiments.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runKey identifies one HDK measurement across reports.
type runKey struct {
	Peers, DFMax, Replicas int
}

func check(basePath, candPath string, tol, timeTol float64) (regressions []string, compared int, err error) {
	base, err := load(basePath)
	if err != nil {
		return nil, 0, err
	}
	cand, err := load(candPath)
	if err != nil {
		return nil, 0, err
	}

	baseRuns := index(base)
	candRuns := index(cand)
	if len(candRuns) == 0 {
		return nil, 0, fmt.Errorf("candidate %s holds no HDK runs", candPath)
	}
	for key, b := range baseRuns {
		c, ok := candRuns[key]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("run %+v present in baseline but missing from candidate", key))
			continue
		}
		compared++
		checkMetric := func(name string, bv, cv, t float64) {
			if bv <= 0 {
				return
			}
			if cv > bv*(1+t) {
				regressions = append(regressions,
					fmt.Sprintf("%+v %s: %.4g -> %.4g (+%.1f%%, tolerance %.0f%%)",
						key, name, bv, cv, 100*(cv/bv-1), 100*t))
			}
		}
		checkMetric("QueryRPCsAvg", b.QueryRPCsAvg, c.QueryRPCsAvg, tol)
		checkMetric("QueryProbesAvg", b.QueryProbesAvg, c.QueryProbesAvg, tol)
		checkMetric("QueryPostingsAvg", b.QueryPostingsAvg, c.QueryPostingsAvg, tol)
		checkMetric("BuildNanos", float64(b.BuildNanos), float64(c.BuildNanos), timeTol)
		checkMetric("QueryNanosAvg", b.QueryNanosAvg, c.QueryNanosAvg, timeTol)
	}
	return regressions, compared, nil
}

func index(rep *experiments.BenchReport) map[runKey]experiments.HDKStep {
	out := make(map[runKey]experiments.HDKStep)
	for _, step := range rep.Steps {
		for _, h := range step.HDK {
			out[runKey{Peers: step.Peers, DFMax: h.DFMax, Replicas: h.Replicas}] = h
		}
	}
	return out
}
