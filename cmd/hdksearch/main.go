// Command hdksearch is an interactive search shell over an HDK-indexed
// synthetic collection: it builds a peer network, indexes the collection
// with highly discriminative keys, and answers queries typed on stdin,
// reporting the per-query traffic next to each result list.
//
// Usage:
//
//	hdksearch [-docs N] [-peers N] [-dfmax N] [-topk N] [-fanout N] [-replicas R]
//	hdksearch -connect HOST:PORT [-coordinator [-trace]] [-forget HOST:PORT] [-docs N] ...
//
// By default the peer network is simulated in-process. With -connect the
// shell becomes the thin client of a REAL cluster: it discovers the
// hdknode daemons behind the given address, streams each daemon its
// corpus shard over the chunked resumable hdk.ingest session
// (-build-chunk-bytes sets the chunk payload target), and asks a daemon
// to coordinate the round-synchronous index build node-side (hdk.build)
// — the shell never runs a build round and holds no peer state
// (-peers is ignored — the cluster size decides; -replicas defaults to
// the factor the daemons advertise). With -coordinator each query is
// ONE hdk.search RPC to the -connect daemon, which runs the whole
// lattice traversal node-side and may answer from its query-result
// cache; without it the shell orchestrates the fan-out itself.
//
// Type a query (space-separated terms from the printed sample
// vocabulary), or one of the commands:
//
//	:stats   print index statistics
//	:doc N   print document N's terms
//	:quit    exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/transport/cluster"
)

func main() {
	docs := flag.Int("docs", 400, "number of synthetic documents")
	peers := flag.Int("peers", 8, "number of peers (in-process mode only)")
	dfmax := flag.Int("dfmax", 12, "DFmax discriminative threshold")
	topk := flag.Int("topk", 10, "results per query")
	fanout := flag.Int("fanout", 4, "concurrent per-owner fetch RPCs per lattice level")
	replicas := flag.Int("replicas", 1, "R-way key replication factor (searches fail over between replicas)")
	connect := flag.String("connect", "", "address of any hdknode daemon: build and query a running multi-process cluster")
	coordinator := flag.Bool("coordinator", false, "with -connect: send each query as ONE hdk.search RPC and let the daemon coordinate the traversal")
	trace := flag.Bool("trace", false, "with -coordinator: ask the daemon for a per-query span tree (admission, cache, per-level fetch waves) and print it under each answer")
	forget := flag.String("forget", "", "with -connect: drop this dead member's address from the cluster membership before building")
	chunkBytes := flag.Int("build-chunk-bytes", 0, "with -connect: hdk.ingest chunk payload target in bytes (0 = cluster default)")
	flag.Parse()
	replicasSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "replicas" {
			replicasSet = true
		}
	})

	if err := run(*docs, *peers, *dfmax, *topk, *fanout, *replicas, *chunkBytes, *connect, *forget, *coordinator, *trace, replicasSet); err != nil {
		fmt.Fprintln(os.Stderr, "hdksearch:", err)
		os.Exit(1)
	}
}

func run(docs, peers, dfmax, topk, fanout, replicas, chunkBytes int, connect, forget string, coordinator, trace, replicasSet bool) error {
	if forget != "" && connect == "" {
		return fmt.Errorf("-forget requires -connect (it edits a live cluster's membership)")
	}
	if chunkBytes != 0 && connect == "" {
		return fmt.Errorf("-build-chunk-bytes requires -connect (the in-process engine does not stream)")
	}
	if coordinator && connect == "" {
		return fmt.Errorf("-coordinator requires -connect (daemons coordinate, the in-process engine queries directly)")
	}
	if trace && !coordinator {
		return fmt.Errorf("-trace requires -coordinator (the span tree is recorded by the coordinating daemon)")
	}
	p := corpus.DefaultGenParams(docs)
	p.AvgDocLen = 80
	col, err := corpus.Generate(p)
	if err != nil {
		return err
	}

	var (
		fabric overlay.Fabric
		clu    *cluster.Client
		tcp    *transport.TCP
	)
	if connect != "" {
		tcp = transport.NewTCP()
		defer tcp.Close()
		if !replicasSet {
			info, err := cluster.FetchInfo(tcp, connect)
			if err != nil {
				return fmt.Errorf("connect %s: %w", connect, err)
			}
			replicas = info.Replicas
		}
		if clu, err = cluster.Dial(cluster.Options{Transport: tcp, Seed: connect, ChunkBytes: chunkBytes}); err != nil {
			return err
		}
		if forget != "" {
			// Operator cleanup: a crashed daemon stays in the grow-only
			// bootstrap membership until someone forgets it.
			if !clu.RemoveNode(overlay.HashNode(forget)) {
				return fmt.Errorf("forget %s: not in the cluster membership", forget)
			}
			if err := clu.Forget(forget); err != nil {
				return err
			}
			fmt.Printf("forgot dead member %s on all live daemons\n", forget)
		}
		peers = clu.Size()
		fabric = clu
		fmt.Printf("connected to %d hdknode processes via %s\n", peers, connect)
	} else {
		net := overlay.NewNetwork(transport.NewInProc())
		for i := 0; i < peers; i++ {
			if _, err := net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
				return err
			}
		}
		fabric = net
	}

	cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()})
	cfg.DFMax = dfmax
	cfg.Window = 10
	cfg.SearchFanout = fanout
	cfg.ReplicationFactor = replicas
	eng, err := core.NewEngine(fabric, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		return err
	}
	members := fabric.Members()
	if clu != nil {
		// Streamed coordinator-side build: ship each daemon its shard
		// over hdk.ingest (document j to ring member j%n — the same
		// placement the in-process path uses), then let a daemon
		// coordinate the round-synchronous build. The shell holds one
		// document at a time and runs zero rounds; the engine above is a
		// query-only view (global vocabulary and statistics, no peers).
		fmt.Printf("streaming %d docs to %d hdknode processes (DFmax=%d, w=%d, smax=%d, R=%d, %d-byte chunks)...\n",
			col.M(), peers, cfg.DFMax, cfg.Window, cfg.SMax, cfg.ReplicationFactor, clu.ChunkTarget())
		freqs := col.TermFrequencies()
		for i, m := range members {
			j := i
			src := cluster.IngestSource{
				Session:   1,
				Config:    cfg,
				Vocab:     col.Vocab,
				TermFreqs: freqs,
				TotalDocs: col.M(),
				ShardDocs: (len(col.Docs) - i + peers - 1) / peers,
				Docs: func() (corpus.Document, bool) {
					if j >= len(col.Docs) {
						return corpus.Document{}, false
					}
					d := col.Docs[j]
					j += peers
					return d, true
				},
			}
			st, err := clu.Ingest(m.Addr(), src)
			if err != nil {
				return err
			}
			fmt.Printf("  %s: %d docs in %d chunks (%d shipped, %d already held)\n",
				m.Addr(), st.Docs, st.Chunks, st.ChunksSent, st.ChunksSkipped)
		}
		lastRound := -1
		if err := clu.BuildRemote(connect, func(info cluster.Info) {
			if info.BuildRound > 0 && info.BuildRound != lastRound {
				lastRound = info.BuildRound
				fmt.Printf("  build round %d/%d\n", info.BuildRound, cfg.SMax)
			}
		}); err != nil {
			return err
		}
	} else {
		for i, part := range col.SplitRoundRobin(peers) {
			if _, err := eng.AddPeer(members[i], part); err != nil {
				return err
			}
		}
		fmt.Printf("indexing %d docs over %d peers (DFmax=%d, w=%d, smax=%d, R=%d)...\n",
			col.M(), peers, cfg.DFMax, cfg.Window, cfg.SMax, cfg.ReplicationFactor)
		if err := eng.BuildIndex(); err != nil {
			return err
		}
	}
	printIndexReady(eng, clu)
	fmt.Printf("sample vocabulary: %s\n", strings.Join(col.Vocab[40:52], " "))
	fmt.Println(`type a query, ":stats", ":doc N" or ":quit"`)

	termID := make(map[string]corpus.TermID, len(col.Vocab))
	for i, s := range col.Vocab {
		termID[s] = corpus.TermID(i)
	}

	origin := members[0]
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ":quit":
			return nil
		case line == ":stats":
			printStats(eng, fabric, clu, tcp)
			continue
		case strings.HasPrefix(line, ":doc "):
			printDoc(col, strings.TrimPrefix(line, ":doc "))
			continue
		}
		q, unknown := parseQuery(line, termID)
		if len(unknown) > 0 {
			fmt.Printf("unknown terms ignored: %s\n", strings.Join(unknown, " "))
		}
		if len(q.Terms) == 0 {
			fmt.Println("no known terms in query")
			continue
		}
		var res *core.SearchResult
		var span *telemetry.Trace
		cost := ""
		if coordinator {
			// One RPC: the daemon behind -connect coordinates the whole
			// traversal and may answer straight from its result cache.
			req := core.SearchRequest{Terms: eng.QueryTerms(q), K: topk}
			if trace {
				res, span, err = clu.SearchTraceVia(connect, req)
				if err == nil && span == nil {
					cost = " [coordinator cache]"
				}
			} else {
				var cached bool
				res, cached, err = clu.SearchVia(connect, req)
				if cached {
					cost = " [coordinator cache]"
				}
			}
		} else {
			res, err = eng.Search(q, origin, topk)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%d results | probed %d keys, found %d, fetched %d postings | %d batched RPCs over %d levels%s\n",
			len(res.Results), res.ProbedKeys, res.FoundKeys, res.FetchedPosts, res.RPCs, res.Rounds, cost)
		for i, r := range res.Results {
			fmt.Printf("%2d. doc %-6d score %.3f\n", i+1, r.Doc, r.Score)
		}
		if span != nil {
			fmt.Print(span.Format())
		}
	}
	return sc.Err()
}

func parseQuery(line string, termID map[string]corpus.TermID) (corpus.Query, []string) {
	var q corpus.Query
	var unknown []string
	for _, tok := range strings.Fields(line) {
		if id, ok := termID[tok]; ok {
			q.Terms = append(q.Terms, id)
		} else {
			unknown = append(unknown, tok)
		}
	}
	return q, unknown
}

// printIndexReady reports the resident index size: from the engine's own
// stores in-process, from the daemons' stores over RPC in connect mode.
func printIndexReady(eng *core.Engine, clu *cluster.Client) {
	if clu == nil {
		stats := eng.Stats()
		fmt.Printf("index ready: %d keys, %d postings stored\n", stats.KeysTotal, stats.StoredTotal)
		return
	}
	nodeStats, err := clu.StoreStats()
	if err != nil {
		fmt.Printf("index ready (store stats unavailable: %v)\n", err)
		return
	}
	posts, keys := 0, 0
	for _, ns := range nodeStats {
		posts += ns.Stats.PostsTotal()
		keys += ns.Stats.KeysTotal()
	}
	fmt.Printf("index ready: %d keys, %d postings stored across %d processes\n", keys, posts, len(nodeStats))
}

func printStats(eng *core.Engine, fabric overlay.Fabric, clu *cluster.Client, tcp *transport.TCP) {
	traffic := eng.Traffic().Snapshot()
	if clu == nil {
		stats := eng.Stats()
		fmt.Printf("keys by size: 1:%d 2:%d 3:%d | stored postings %d | inserted %d\n",
			stats.KeysBySize[1], stats.KeysBySize[2], stats.KeysBySize[3],
			stats.StoredTotal, traffic.InsertedTotal)
		if net, ok := fabric.(*overlay.Network); ok {
			count, hops := net.LookupStats()
			fmt.Printf("dht lookups %d, mean hops %.2f | transport: %d msgs, %d bytes\n",
				count, hops, net.TransportStats().Messages, net.TransportStats().Bytes)
		}
	} else {
		nodeStats, err := clu.StoreStats()
		if err != nil {
			fmt.Printf("store stats unavailable: %v\n", err)
		} else {
			for _, ns := range nodeStats {
				fmt.Printf("  %s: %d keys, %d postings\n", ns.Addr, ns.Stats.KeysTotal(), ns.Stats.PostsTotal())
			}
		}
		st := clu.TransportStats()
		ps := tcp.PoolStats()
		fmt.Printf("transport: %d msgs, %d payload bytes | pool: %d dials, %d reuses, %d stale retries\n",
			st.Messages, st.Bytes, ps.Dials, ps.Reuses, ps.StaleRetries)
	}
	fmt.Printf("queries: %d lattice probes answered by %d batched fetch RPCs over %d levels (%d replica failovers)\n",
		traffic.ProbeMessages, traffic.FetchRPCs, traffic.QueryRounds, traffic.SearchFailovers)
}

func printDoc(col *corpus.Collection, arg string) {
	id, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil || id < 0 || id >= col.M() {
		fmt.Println("bad document id")
		return
	}
	fmt.Println(col.Text(&col.Docs[id]))
}
