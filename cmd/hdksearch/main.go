// Command hdksearch is an interactive search shell over an HDK-indexed
// synthetic collection: it builds a peer network, indexes the collection
// with highly discriminative keys, and answers queries typed on stdin,
// reporting the per-query traffic next to each result list.
//
// Usage:
//
//	hdksearch [-docs N] [-peers N] [-dfmax N] [-topk N] [-fanout N] [-replicas R]
//
// Type a query (space-separated terms from the printed sample
// vocabulary), or one of the commands:
//
//	:stats   print index statistics
//	:doc N   print document N's terms
//	:quit    exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/transport"
)

func main() {
	docs := flag.Int("docs", 400, "number of synthetic documents")
	peers := flag.Int("peers", 8, "number of peers")
	dfmax := flag.Int("dfmax", 12, "DFmax discriminative threshold")
	topk := flag.Int("topk", 10, "results per query")
	fanout := flag.Int("fanout", 4, "concurrent per-owner fetch RPCs per lattice level")
	replicas := flag.Int("replicas", 1, "R-way key replication factor (searches fail over between replicas)")
	flag.Parse()

	if err := run(*docs, *peers, *dfmax, *topk, *fanout, *replicas); err != nil {
		fmt.Fprintln(os.Stderr, "hdksearch:", err)
		os.Exit(1)
	}
}

func run(docs, peers, dfmax, topk, fanout, replicas int) error {
	p := corpus.DefaultGenParams(docs)
	p.AvgDocLen = 80
	col, err := corpus.Generate(p)
	if err != nil {
		return err
	}

	net := overlay.NewNetwork(transport.NewInProc())
	nodes := make([]*overlay.Node, peers)
	for i := range nodes {
		if nodes[i], err = net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			return err
		}
	}
	cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()})
	cfg.DFMax = dfmax
	cfg.Window = 10
	cfg.SearchFanout = fanout
	cfg.ReplicationFactor = replicas
	eng, err := core.NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		return err
	}
	for i, part := range col.SplitRoundRobin(peers) {
		if _, err := eng.AddPeer(nodes[i], part); err != nil {
			return err
		}
	}
	fmt.Printf("indexing %d docs over %d peers (DFmax=%d, w=%d, smax=%d, R=%d)...\n",
		col.M(), peers, cfg.DFMax, cfg.Window, cfg.SMax, cfg.ReplicationFactor)
	if err := eng.BuildIndex(); err != nil {
		return err
	}
	stats := eng.Stats()
	fmt.Printf("index ready: %d keys, %d postings stored\n", stats.KeysTotal, stats.StoredTotal)
	fmt.Printf("sample vocabulary: %s\n", strings.Join(col.Vocab[40:52], " "))
	fmt.Println(`type a query, ":stats", ":doc N" or ":quit"`)

	termID := make(map[string]corpus.TermID, len(col.Vocab))
	for i, s := range col.Vocab {
		termID[s] = corpus.TermID(i)
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ":quit":
			return nil
		case line == ":stats":
			printStats(eng, net)
			continue
		case strings.HasPrefix(line, ":doc "):
			printDoc(col, strings.TrimPrefix(line, ":doc "))
			continue
		}
		q, unknown := parseQuery(line, termID)
		if len(unknown) > 0 {
			fmt.Printf("unknown terms ignored: %s\n", strings.Join(unknown, " "))
		}
		if len(q.Terms) == 0 {
			fmt.Println("no known terms in query")
			continue
		}
		res, err := eng.Search(q, nodes[0], topk)
		if err != nil {
			return err
		}
		fmt.Printf("%d results | probed %d keys, found %d, fetched %d postings | %d batched RPCs over %d levels\n",
			len(res.Results), res.ProbedKeys, res.FoundKeys, res.FetchedPosts, res.RPCs, res.Rounds)
		for i, r := range res.Results {
			fmt.Printf("%2d. doc %-6d score %.3f\n", i+1, r.Doc, r.Score)
		}
	}
	return sc.Err()
}

func parseQuery(line string, termID map[string]corpus.TermID) (corpus.Query, []string) {
	var q corpus.Query
	var unknown []string
	for _, tok := range strings.Fields(line) {
		if id, ok := termID[tok]; ok {
			q.Terms = append(q.Terms, id)
		} else {
			unknown = append(unknown, tok)
		}
	}
	return q, unknown
}

func printStats(eng *core.Engine, net *overlay.Network) {
	stats := eng.Stats()
	traffic := eng.Traffic().Snapshot()
	fmt.Printf("keys by size: 1:%d 2:%d 3:%d | stored postings %d | inserted %d\n",
		stats.KeysBySize[1], stats.KeysBySize[2], stats.KeysBySize[3],
		stats.StoredTotal, traffic.InsertedTotal)
	count, hops := net.LookupStats()
	fmt.Printf("dht lookups %d, mean hops %.2f | transport: %d msgs, %d bytes\n",
		count, hops, net.TransportStats().Messages, net.TransportStats().Bytes)
	fmt.Printf("queries: %d lattice probes answered by %d batched fetch RPCs over %d levels (%d replica failovers)\n",
		traffic.ProbeMessages, traffic.FetchRPCs, traffic.QueryRounds, traffic.SearchFailovers)
}

func printDoc(col *corpus.Collection, arg string) {
	id, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil || id < 0 || id >= col.M() {
		fmt.Println("bad document id")
		return
	}
	fmt.Println(col.Text(&col.Docs[id]))
}
