// Command corpusgen materializes a synthetic collection to disk as plain
// text files (one document per file) plus a stats summary, so external
// tools can consume the same corpus the experiments run on.
//
// Usage:
//
//	corpusgen [-docs N] [-avglen N] [-seed N] -out DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/zipfmodel"
)

func main() {
	docs := flag.Int("docs", 1000, "number of documents")
	avgLen := flag.Int("avglen", 225, "average document length in words")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output directory (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -out is required")
		os.Exit(2)
	}
	if err := run(*docs, *avgLen, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(docs, avgLen int, seed int64, out string) error {
	p := corpus.DefaultGenParams(docs)
	p.AvgDocLen = avgLen
	p.Seed = seed
	col, err := corpus.Generate(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for i := range col.Docs {
		name := filepath.Join(out, fmt.Sprintf("doc-%06d.txt", i))
		if err := os.WriteFile(name, []byte(col.Text(&col.Docs[i])+"\n"), 0o644); err != nil {
			return err
		}
	}
	skew, scale, err := zipfmodel.Fit(col.TermFrequencies(), 2)
	fit := "n/a"
	if err == nil {
		fit = fmt.Sprintf("skew=%.2f scale=%.3g", skew, scale)
	}
	stats := fmt.Sprintf(
		"documents: %d\nsample size D: %d\navg doc length: %.1f\nvocabulary: %d\nzipf fit: %s\nseed: %d\n",
		col.M(), col.SampleSize(), col.AvgDocLen(), len(col.Vocab), fit, seed)
	if err := os.WriteFile(filepath.Join(out, "STATS.txt"), []byte(stats), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d documents to %s\n%s", col.M(), out, stats)
	return nil
}
