// Command hdkbench reproduces the paper's evaluation: it runs the
// Section 5 sweep (growing peer network, distributed single-term baseline
// vs HDK engine at several DFmax values, centralized BM25 reference) and
// prints every table and figure series the paper reports.
//
// Usage:
//
//	hdkbench [-scale small|medium|paper] [-experiment all|table1|table2|fig2|...|fig8] [-fanout N] [-quiet]
//
// The small scale finishes in seconds, medium in minutes; paper runs the
// verbatim Table 2 parameters (hours in one process).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: small, medium or paper")
	experiment := flag.String("experiment", "all", "artifact to print: all, table1, table2, fig2..fig8")
	fabric := flag.String("fabric", "chord", "overlay substrate: chord or pgrid (the paper's P-Grid)")
	fanout := flag.Int("fanout", 0, "concurrent per-owner fetch RPCs per query lattice level (0 = engine default)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	if err := run(*scaleName, *experiment, *fabric, *fanout, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "hdkbench:", err)
		os.Exit(1)
	}
}

func run(scaleName, experiment, fabric string, fanout int, quiet bool) error {
	var scale experiments.Scale
	switch scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "medium":
		scale = experiments.MediumScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	scale.Fabric = fabric
	scale.SearchFanout = fanout

	// The purely analytic artifacts need no sweep.
	switch experiment {
	case "fig2":
		experiments.Fig2().Fprint(os.Stdout)
		return nil
	case "fig8":
		experiments.Fig8().Fprint(os.Stdout)
		return nil
	case "table2":
		experiments.Table2(scale).Fprint(os.Stdout)
		return nil
	}

	progress := experiments.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res, err := experiments.Run(scale, progress)
	if err != nil {
		return err
	}

	switch experiment {
	case "all":
		for _, t := range experiments.AllTables(res) {
			t.Fprint(os.Stdout)
		}
		res.WriteSummary(os.Stdout)
	case "table1":
		experiments.Table1(res).Fprint(os.Stdout)
	case "fig3":
		experiments.Fig3(res).Fprint(os.Stdout)
	case "fig4":
		experiments.Fig4(res).Fprint(os.Stdout)
	case "fig5":
		experiments.Fig5(res).Fprint(os.Stdout)
	case "fig6":
		experiments.Fig6(res).Fprint(os.Stdout)
	case "fig7":
		experiments.Fig7(res).Fprint(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
