// Command hdkbench reproduces the paper's evaluation: it runs the
// Section 5 sweep (growing peer network, distributed single-term baseline
// vs HDK engine at several DFmax values, centralized BM25 reference) and
// prints every table and figure series the paper reports. The avail
// experiment measures the replication subsystem instead: recall under
// node crashes at several replication factors, before and after churn
// repair.
//
// Usage:
//
//	hdkbench [-scale small|medium|paper] [-experiment all|table1|table2|fig2|...|fig8|avail]
//	         [-fanout N] [-replicas R[,R...]] [-kill F] [-json PATH] [-quiet]
//	hdkbench -connect HOST:PORT [-scale ...] [-replicas R] [-json PATH]
//	hdkbench -connect HOST:PORT -coordinator [-clients N] [-json PATH]
//	hdkbench -connect HOST:PORT -saturate [-clients N] [-json PATH]
//	hdkbench -chaos|-soak [-seed N | -replay PATH] [-json PATH]
//
// The small scale finishes in seconds, medium in minutes; paper runs the
// verbatim Table 2 parameters (hours in one process). -json additionally
// writes the machine-readable results (configuration, per-level RPC and
// probe counts, build/query wall-clock) to PATH — the BENCH_*.json
// perf-trajectory format.
//
// -connect benches the multi-process deployment path instead: it
// discovers the hdknode cluster behind the given daemon address, builds
// the scale's collection over pooled TCP (DocsPerPeer documents per
// daemon, first DFmax) and reports build/query wall-clock, per-query RPC
// costs and wire/connection-pool traffic. Adding -coordinator benches
// the node-side serving path: every query is one hdk.search RPC, and
// -clients N closed-loop clients measure throughput and p50/p99 latency
// on top of deterministic cold-pass counters and a result-cache proof.
//
// -saturate instead drives offered load deliberately past the
// coordinator's capacity (the cluster must be booted with a tiny
// -search-workers/-search-queue) and gates the bounded-serving
// contract: explicit rejections with retry-after hints, bounded p99
// for accepted requests, bit-identical answers, full recovery once the
// load stops. It exits nonzero unless every gate holds — the CI
// saturation smoke.
//
// -chaos spawns its own 5-process durable cluster and fires a seeded
// fault schedule at it — SIGKILL + warm restart, incremental update
// waves, live admission resizes, replica repairs, pressure-driven
// compactions — under continuous query load, gating recall, error-
// freedom, bounded p99 and post-chaos bit-identical parity. The
// schedule is a pure function of -seed, so `-chaos -seed N` replays a
// CI failure exactly; -replay fires a serialized schedule artifact
// instead. -soak is the time-compressed durability variant: more waves
// against a smaller compaction threshold cycle every daemon through
// several snapshot generations, and the run ends with a rolling
// restart proved byte-identical by fingerprint census. Both exit
// nonzero unless every gate holds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/transport"
	"repro/internal/transport/cluster"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: small, medium or paper")
	experiment := flag.String("experiment", "all", "artifact to print: all, table1, table2, fig2..fig8, avail")
	fabric := flag.String("fabric", "chord", "overlay substrate: chord or pgrid (the paper's P-Grid)")
	fanout := flag.Int("fanout", 0, "concurrent per-owner fetch RPCs per query lattice level (0 = engine default)")
	replicas := flag.String("replicas", "", "replication factor; for -experiment avail a comma list to compare, e.g. 1,2,3 (default 1,3)")
	kill := flag.Float64("kill", 0.2, "fraction of nodes crashed by the avail experiment")
	jsonPath := flag.String("json", "", "also write machine-readable results to this path")
	connect := flag.String("connect", "", "address of any hdknode daemon: bench a live multi-process cluster instead of the in-process sweep")
	coordinator := flag.Bool("coordinator", false, "with -connect: bench the node-side hdk.search path (one RPC per query) instead of the fat client")
	clients := flag.Int("clients", 4, "with -coordinator: concurrent closed-loop clients for the throughput/latency phase")
	codec := flag.Bool("codec", false, "run the hot-path codec microbench (allocation counts per wire-codec op) instead of a sweep")
	saturate := flag.Bool("saturate", false, "with -connect: drive offered load past the coordinator's capacity and gate the bounded-serving contract (exits nonzero unless every gate holds)")
	chaos := flag.Bool("chaos", false, "run the chaos scenario against a self-spawned durable cluster (exits nonzero unless every gate holds)")
	soak := flag.Bool("soak", false, "run the time-compressed soak variant of the chaos scenario (generation rollovers + byte-identical restore)")
	seed := flag.Uint64("seed", 1, "with -chaos/-soak: fault-schedule seed (identical seeds replay identical schedules)")
	replay := flag.String("replay", "", "with -chaos/-soak: path to a serialized fault schedule (the CI failure artifact) to fire instead of generating one from -seed")
	chunkBytes := flag.Int("build-chunk-bytes", 0, "with -connect: hdk.ingest chunk payload target in bytes (0 = cluster default)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	if err := run(*scaleName, *experiment, *fabric, *replicas, *jsonPath, *connect, *replay, *kill, *fanout, *clients, *chunkBytes, *seed, *coordinator, *codec, *saturate, *chaos, *soak, *quiet, setFlags); err != nil {
		fmt.Fprintln(os.Stderr, "hdkbench:", err)
		os.Exit(1)
	}
}

// parseReplicas parses a comma-separated replication-factor list.
func parseReplicas(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r < 1 {
			return nil, fmt.Errorf("bad replication factor %q", part)
		}
		out = append(out, r)
	}
	return out, nil
}

func run(scaleName, experiment, fabric, replicas, jsonPath, connect, replay string, kill float64, fanout, clients, chunkBytes int, seed uint64, coordinator, codec, saturate, chaos, soak, quiet bool, setFlags map[string]bool) error {
	var scale experiments.Scale
	switch scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "medium":
		scale = experiments.MediumScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	scale.Fabric = fabric
	scale.SearchFanout = fanout
	rlist, err := parseReplicas(replicas)
	if err != nil {
		return err
	}

	progress := experiments.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if coordinator && connect == "" {
		return fmt.Errorf("-coordinator requires -connect (only daemons coordinate)")
	}
	if codec {
		// The codec microbench needs no cluster, sweep or experiment
		// selection; reject combinations rather than silently running
		// something other than what was asked for.
		for _, name := range []string{"connect", "coordinator", "clients", "experiment", "fabric", "kill", "replicas", "fanout", "build-chunk-bytes", "chaos", "soak", "seed", "replay"} {
			if setFlags[name] {
				return fmt.Errorf("-%s does not apply to -codec (hot-path microbench)", name)
			}
		}
		rep := experiments.CodecBench(progress)
		rep.Fprint(os.Stdout)
		if jsonPath != "" {
			return experiments.WriteJSON(jsonPath, &experiments.BenchReport{Scale: scale, Codec: rep})
		}
		return nil
	}
	if chaos || soak {
		// The chaos scenario spawns (and reaps) its own durable cluster;
		// reject flags that would suggest an external one applies.
		for _, name := range []string{"connect", "coordinator", "clients", "experiment", "fabric", "kill", "replicas", "fanout", "scale", "build-chunk-bytes", "saturate"} {
			if setFlags[name] {
				return fmt.Errorf("-%s does not apply to -chaos/-soak (self-contained scenario)", name)
			}
		}
		return runChaos(scale, jsonPath, replay, seed, soak, progress)
	}
	if setFlags["seed"] || setFlags["replay"] {
		return fmt.Errorf("-seed and -replay apply to -chaos/-soak only")
	}
	if saturate {
		if connect == "" {
			return fmt.Errorf("-saturate requires -connect (it drives a live cluster)")
		}
		// The saturation gate has fixed CI parameters; reject flags that
		// would suggest they apply.
		for _, name := range []string{"coordinator", "experiment", "fabric", "kill", "replicas", "fanout", "scale", "build-chunk-bytes", "seed", "replay"} {
			if setFlags[name] {
				return fmt.Errorf("-%s does not apply to -saturate (bounded-serving gate)", name)
			}
		}
		opts := experiments.DefaultSaturationOpts()
		if setFlags["clients"] {
			opts.Clients = clients
		}
		tr := transport.NewTCP()
		defer tr.Close()
		rep, err := experiments.SaturationConnect(tr, connect, opts, progress)
		if err != nil {
			return err
		}
		rep.Fprint(os.Stdout)
		if jsonPath != "" {
			if err := experiments.WriteJSON(jsonPath, &experiments.BenchReport{Scale: scale, Saturation: rep}); err != nil {
				return err
			}
		}
		if !rep.Clean() {
			return fmt.Errorf("saturation gates failed (see report above)")
		}
		return nil
	}
	if setFlags["clients"] && !coordinator {
		return fmt.Errorf("-clients applies to the -coordinator bench only")
	}
	if setFlags["build-chunk-bytes"] && connect == "" {
		return fmt.Errorf("-build-chunk-bytes applies to the -connect streamed build only")
	}
	if connect != "" {
		// The live-cluster bench has no experiment selection, fabric
		// choice or kill sweep; reject those flags rather than silently
		// running something other than what was asked for.
		for _, name := range []string{"experiment", "fabric", "kill"} {
			if setFlags[name] {
				return fmt.Errorf("-%s does not apply to -connect (live-cluster bench)", name)
			}
		}
		if len(rlist) > 1 {
			return fmt.Errorf("-connect takes a single -replicas value (got %q)", replicas)
		}
		r := 0
		if len(rlist) == 1 {
			r = rlist[0]
		}
		tr := transport.NewTCP()
		defer tr.Close()
		if coordinator {
			rep, build, err := experiments.CoordBench(tr, connect, scale, r, clients, chunkBytes, progress)
			if err != nil {
				return err
			}
			build.Fprint(os.Stdout)
			rep.Fprint(os.Stdout)
			if jsonPath != "" {
				// The BenchReport wrapper (steps absent, coordinator and
				// build set) keeps the artifact comparable by
				// cmd/benchcheck next to the sweep baselines.
				return experiments.WriteJSON(jsonPath, &experiments.BenchReport{Scale: scale, Coordinator: rep, Build: build})
			}
			return nil
		}
		rep, build, err := experiments.ConnectBench(tr, connect, scale, r, chunkBytes, progress)
		if err != nil {
			return err
		}
		build.Fprint(os.Stdout)
		rep.Fprint(os.Stdout)
		if jsonPath != "" {
			return experiments.WriteJSON(jsonPath, rep)
		}
		return nil
	}

	// The purely analytic artifacts need no sweep.
	analytic := map[string]func() *experiments.Table{
		"fig2":   experiments.Fig2,
		"fig8":   experiments.Fig8,
		"table2": func() *experiments.Table { return experiments.Table2(scale) },
	}
	if mk, ok := analytic[experiment]; ok {
		t := mk()
		t.Fprint(os.Stdout)
		if jsonPath != "" {
			return experiments.WriteJSON(jsonPath, t)
		}
		return nil
	}

	if experiment == "avail" {
		if len(rlist) == 0 {
			rlist = []int{1, 3}
		}
		rep, err := experiments.Availability(scale, kill, rlist, progress)
		if err != nil {
			return err
		}
		rep.Fprint(os.Stdout)
		if jsonPath != "" {
			return experiments.WriteJSON(jsonPath, rep)
		}
		return nil
	}

	if len(rlist) > 1 {
		return fmt.Errorf("sweep experiments take a single -replicas value (got %q)", replicas)
	}
	if len(rlist) == 1 {
		scale.Replicas = rlist[0]
	}
	res, err := experiments.Run(scale, progress)
	if err != nil {
		return err
	}

	switch experiment {
	case "all":
		for _, t := range experiments.AllTables(res) {
			t.Fprint(os.Stdout)
		}
		res.WriteSummary(os.Stdout)
	case "table1":
		experiments.Table1(res).Fprint(os.Stdout)
	case "fig3":
		experiments.Fig3(res).Fprint(os.Stdout)
	case "fig4":
		experiments.Fig4(res).Fprint(os.Stdout)
	case "fig5":
		experiments.Fig5(res).Fprint(os.Stdout)
	case "fig6":
		experiments.Fig6(res).Fprint(os.Stdout)
	case "fig7":
		experiments.Fig7(res).Fprint(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	if jsonPath != "" {
		return experiments.WriteJSON(jsonPath, experiments.BenchJSON(res))
	}
	return nil
}

// runChaos spawns a durable 5-process cluster (small -compact-bytes so
// update waves force generation rollovers), fires the fault schedule —
// generated from -seed, or loaded verbatim from a -replay artifact —
// under continuous query load, and exits nonzero unless every gate
// holds. On failure the cluster's data directories, per-node logs and
// the serialized schedule are kept for inspection; on success they are
// removed.
func runChaos(scale experiments.Scale, jsonPath, replay string, seed uint64, soak bool, progress experiments.Progress) error {
	opts := experiments.DefaultChaosOpts()
	compactBytes := 64 << 10
	if soak {
		opts = experiments.DefaultSoakOpts()
		compactBytes = 32 << 10
	}
	opts.ScheduleSeed = seed
	if replay != "" {
		raw, err := os.ReadFile(replay)
		if err != nil {
			return err
		}
		var sched experiments.FaultSchedule
		if err := json.Unmarshal(raw, &sched); err != nil {
			return fmt.Errorf("replay %s: %w", replay, err)
		}
		if err := sched.Validate(); err != nil {
			return fmt.Errorf("replay %s: %w", replay, err)
		}
		opts.Replay = &sched
	}

	bin := os.Getenv("HDKNODE_BIN")
	if bin == "" {
		dir, err := os.MkdirTemp("", "hdkbench-chaos-bin-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if bin, err = cluster.BuildHDKNode(dir); err != nil {
			return err
		}
	}
	workDir, err := os.MkdirTemp("", "hdkbench-chaos-")
	if err != nil {
		return err
	}
	keep := false
	defer func() {
		if !keep {
			os.RemoveAll(workDir)
		}
	}()

	h := &cluster.Harness{
		Bin: bin, DataRoot: filepath.Join(workDir, "data"),
		Fsync: "always", LogDir: workDir,
	}
	if err := h.Start(opts.Nodes, opts.Replicas, "-compact-bytes", fmt.Sprint(compactBytes)); err != nil {
		return err
	}
	defer h.Stop()

	tr := transport.NewTCP()
	defer tr.Close()
	restart := func(i int) error {
		if err := h.Restart(i); err != nil {
			return err
		}
		return h.AwaitMembers(opts.Nodes)
	}
	rep, err := experiments.Chaos(tr, h.Addrs(), h.Kill, restart, opts, progress)
	if err != nil {
		keep = true
		fmt.Fprintf(os.Stderr, "hdkbench: node logs and data kept in %s\n", workDir)
		return err
	}
	rep.Fprint(os.Stdout)
	if jsonPath != "" {
		if err := experiments.WriteJSON(jsonPath, &experiments.BenchReport{Scale: scale, Chaos: rep}); err != nil {
			return err
		}
	}
	if !rep.Clean() {
		keep = true
		if err := experiments.WriteJSON(filepath.Join(workDir, "fault-schedule.json"), rep.Schedule); err != nil {
			fmt.Fprintf(os.Stderr, "hdkbench: write schedule artifact: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "hdkbench: node logs, data and fault-schedule.json kept in %s\n", workDir)
		return fmt.Errorf("chaos gates failed (see report above; replay with -seed %d or -replay %s)",
			rep.Schedule.Seed, filepath.Join(workDir, "fault-schedule.json"))
	}
	return nil
}
