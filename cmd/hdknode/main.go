// Command hdknode is one peer of a multi-process HDK cluster: a daemon
// that serves its share of the replicated global index — insert, batched
// fetch, classification sweeps, replica repair and the cluster control
// plane — over pooled, length-prefixed TCP. A cluster is a set of
// hdknode processes plus a thin client (hdksearch -connect or hdkbench
// -connect) that builds and queries the index through them.
//
// Every daemon is also a query coordinator: the hdk.search RPC runs the
// whole lattice traversal node-side against the daemon's own membership
// view (replica failover included), so a thin client pays one RPC per
// query instead of orchestrating the fan-out itself (hdksearch -connect
// -coordinator). Coordinations are bounded by a worker pool
// (-search-workers) plus a bounded admission queue (-search-queue):
// when both are full the daemon sheds the request with an explicit
// overload rejection carrying a retry-after hint, instead of letting
// p99 grow without limit. Repeat queries are answered from a per-node
// query-result LRU (-search-cache) that every locally served index
// mutation invalidates.
//
// Usage:
//
//	hdknode -listen 127.0.0.1:7001                     # first node
//	hdknode -listen 127.0.0.1:0 -join 127.0.0.1:7001   # every further node
//
// With -data the daemon is durable: every index mutation is written
// through to an op log under the data directory (fsync policy via
// -fsync), the log is periodically compacted into a full-store snapshot,
// and a graceful shutdown seals the state into a fresh snapshot. A
// restarted daemon reloads its store fraction from disk, rejoins through
// -join, pulls the delta it missed from its replica peers (a scoped
// catch-up, not a rebuild), and only then prints its banner:
//
//	hdknode -listen 127.0.0.1:7001 -data /var/lib/hdk/node0 \
//	    -join 127.0.0.1:7002   # warm restart: snapshot + log + catch-up
//
// The daemon prints "hdknode listening on <addr>" once bound AND ready
// to serve (the cluster harness and shell scripts parse this), then
// serves until SIGINT/SIGTERM or a cluster.shutdown RPC, draining
// in-flight connections before exiting.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/durable"
	"repro/internal/transport"
	"repro/internal/transport/cluster"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "host:port to serve on (port 0 binds an ephemeral port)")
	join := flag.String("join", "", "address of any existing cluster member to join through")
	replicas := flag.Int("replicas", 1, "replication factor this cluster is intended to run at (advertised to clients)")
	callTimeout := flag.Duration("call-timeout", 30*time.Second, "per-RPC deadline for outbound calls (join/announce)")
	dataDir := flag.String("data", "", "durable data directory (empty: index lives in RAM only)")
	fsync := flag.String("fsync", "always", "op-log fsync policy with -data: always|batch|never")
	compactBytes := flag.Int64("compact-bytes", 0, "op-log size triggering snapshot compaction (0: 4 MiB default, <0: only on shutdown)")
	searchWorkers := flag.Int("search-workers", 0, "concurrent hdk.search coordinations this daemon runs (0: default 8)")
	searchQueue := flag.Int("search-queue", -1, "hdk.search requests allowed to wait for a worker before the daemon sheds with an overload rejection (-1: default 32, 0: shed when all workers busy)")
	searchCache := flag.Int("search-cache", -1, "query-result cache entries (-1: default 1024, 0: disable result caching)")
	httpAddr := flag.String("http", "", "host:port for the observability endpoint (/metrics, /healthz, /debug/pprof); empty: disabled, port 0 binds an ephemeral port")
	slowQuery := flag.Duration("slow-query", 0, "log coordinations slower than this to stderr, rate-limited to one line/s (0: disabled)")
	flag.Parse()

	if err := run(*listen, *join, *replicas, *callTimeout, *dataDir, *fsync, *compactBytes, *searchWorkers, *searchQueue, *searchCache, *httpAddr, *slowQuery); err != nil {
		fmt.Fprintln(os.Stderr, "hdknode:", err)
		os.Exit(1)
	}
}

func run(listen, join string, replicas int, callTimeout time.Duration, dataDir, fsync string, compactBytes int64, searchWorkers, searchQueue, searchCache int, httpAddr string, slowQuery time.Duration) error {
	var dur *durable.Store
	if dataDir != "" {
		policy, err := durable.ParsePolicy(fsync)
		if err != nil {
			return err
		}
		if dur, err = durable.Open(dataDir, durable.Options{Fsync: policy, CompactBytes: compactBytes}); err != nil {
			return err
		}
	}

	tr := transport.NewTCPConfig(transport.TCPConfig{CallTimeout: callTimeout})
	srv, err := cluster.NewServer(tr, listen, replicas)
	if err != nil {
		return err
	}
	srv.ConfigureSearch(searchWorkers, searchQueue, searchCache)
	srv.SetSlowQueryLog(slowQuery)
	// One registry per daemon: the server pre-registers the serving-path
	// instruments; the transport and durable store record onto the same
	// registry so cluster.metrics and /metrics export every layer.
	reg := srv.Metrics()
	tr.Instrument(reg)
	if dur != nil {
		dur.Instrument(reg)
	}
	goVersion, revision := buildInfo()
	registerBuildInfo(reg, goVersion, revision)
	if dur != nil {
		// Replay snapshot + op log BEFORE joining: a warm daemon
		// announces itself already holding its restored key inventory.
		opsReplayed, torn := len(dur.Ops()), dur.TruncatedOps()
		if err := srv.EnableDurability(dur); err != nil {
			tr.Close()
			return err
		}
		if srv.Warm() {
			fmt.Fprintf(os.Stderr, "hdknode %s: warm restart from %s (generation %d, %d ops replayed, %d torn records dropped)\n",
				srv.Addr(), dataDir, dur.Generation(), opsReplayed, torn)
		}
	}
	if join != "" {
		if err := srv.Join(join); err != nil {
			tr.Close()
			return err
		}
	}
	if srv.Warm() {
		// Pull the delta missed while down from the replica peers; only
		// then advertise readiness. A failed catch-up is not fatal — the
		// daemon serves its restored (possibly slightly stale) copies and
		// the operator can run a full repair — but it is loud.
		st, err := srv.CatchUp()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdknode %s: warm-rejoin catch-up failed: %v\n", srv.Addr(), err)
		} else {
			fmt.Fprintf(os.Stderr, "hdknode %s: catch-up: %d keys owned, %d stale, %d copies pulled\n",
				srv.Addr(), st.KeysOwned, st.Stale, st.CopiesPulled)
		}
	}

	// The observability endpoint comes up only now — after recovery, join
	// and catch-up — so a 200 from /healthz means the daemon is actually
	// ready, not merely bound (the readiness scripts poll it).
	if httpAddr != "" {
		bound, err := startHTTP(httpAddr, reg)
		if err != nil {
			tr.Close()
			return err
		}
		// Machine-parsed like the listening banner below (the harness
		// reads both); printed first so a reader of the banner already
		// knows the scrape address.
		fmt.Printf("hdknode http on %s\n", bound)
	}

	// The banner goes to stdout (machine-parsed); everything else to
	// stderr.
	fmt.Printf("hdknode listening on %s\n", srv.Addr())
	os.Stdout.Sync()
	fmt.Fprintf(os.Stderr, "hdknode %s: serving (replicas=%d, join=%q, data=%q, go=%s, build=%s)\n",
		srv.Addr(), replicas, join, dataDir, goVersion, revision)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "hdknode %s: %v, shutting down\n", srv.Addr(), s)
	case <-srv.Done():
		fmt.Fprintf(os.Stderr, "hdknode %s: shutdown requested, exiting\n", srv.Addr())
	}
	// Graceful exit: seal the durable state (log compacted into a fresh
	// snapshot) before tearing the transport down. SIGKILL skips this,
	// which is exactly what the op log is for.
	if err := srv.PersistShutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "hdknode %s: persist on shutdown: %v\n", srv.Addr(), err)
	}
	return tr.Close()
}
