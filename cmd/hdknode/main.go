// Command hdknode is one peer of a multi-process HDK cluster: a daemon
// that serves its share of the replicated global index — insert, batched
// fetch, classification sweeps, replica repair and the cluster control
// plane — over pooled, length-prefixed TCP. A cluster is a set of
// hdknode processes plus a thin client (hdksearch -connect or hdkbench
// -connect) that builds and queries the index through them.
//
// Usage:
//
//	hdknode -listen 127.0.0.1:7001                     # first node
//	hdknode -listen 127.0.0.1:0 -join 127.0.0.1:7001   # every further node
//
// The daemon prints "hdknode listening on <addr>" once bound (the
// cluster harness and shell scripts parse this), then serves until
// SIGINT/SIGTERM or a cluster.shutdown RPC, draining in-flight
// connections before exiting.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/cluster"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "host:port to serve on (port 0 binds an ephemeral port)")
	join := flag.String("join", "", "address of any existing cluster member to join through")
	replicas := flag.Int("replicas", 1, "replication factor this cluster is intended to run at (advertised to clients)")
	callTimeout := flag.Duration("call-timeout", 30*time.Second, "per-RPC deadline for outbound calls (join/announce)")
	flag.Parse()

	if err := run(*listen, *join, *replicas, *callTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "hdknode:", err)
		os.Exit(1)
	}
}

func run(listen, join string, replicas int, callTimeout time.Duration) error {
	tr := transport.NewTCPConfig(transport.TCPConfig{CallTimeout: callTimeout})
	srv, err := cluster.NewServer(tr, listen, replicas)
	if err != nil {
		return err
	}
	if join != "" {
		if err := srv.Join(join); err != nil {
			tr.Close()
			return err
		}
	}
	// The banner goes to stdout (machine-parsed); everything else to
	// stderr.
	fmt.Printf("hdknode listening on %s\n", srv.Addr())
	os.Stdout.Sync()
	fmt.Fprintf(os.Stderr, "hdknode %s: serving (replicas=%d, join=%q)\n", srv.Addr(), replicas, join)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "hdknode %s: %v, shutting down\n", srv.Addr(), s)
	case <-srv.Done():
		fmt.Fprintf(os.Stderr, "hdknode %s: shutdown requested, exiting\n", srv.Addr())
	}
	return tr.Close()
}
