package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"time"

	"repro/internal/telemetry"
)

// startHTTP binds the daemon's observability endpoint and serves it in
// the background: /metrics is the Prometheus text exposition of the
// daemon's telemetry registry, /healthz answers 200 once the daemon is
// ready (it is only started after recovery, join and catch-up — the
// readiness scripts poll it), and the standard net/http/pprof handlers
// are mounted explicitly on this mux (the daemon never touches
// http.DefaultServeMux). Returns the bound address, so -http with port
// 0 works like -listen does.
func startHTTP(addr string, reg *telemetry.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("http listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// buildInfo summarizes how this binary was built from the metadata the
// Go linker embeds: the toolchain version and, when built inside a
// version-controlled checkout, the revision (with a "+dirty" marker for
// uncommitted changes). Everything degrades to "unknown" on a binary
// built without that metadata (e.g. go test binaries).
func buildInfo() (goVersion, revision string) {
	goVersion, revision = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		revision = rev + modified
	}
	return
}

// metricBuildInfo is the conventional constant build-identity gauge.
const metricBuildInfo = "hdk_build_info"

// registerBuildInfo publishes the build identity as the conventional
// constant gauge: hdk_build_info{go_version=...,revision=...} 1. Scrapes
// from mixed-version clusters group by it to see which daemons run what.
func registerBuildInfo(reg *telemetry.Registry, goVersion, revision string) {
	reg.Gauge(metricBuildInfo,
		telemetry.L("go_version", goVersion),
		telemetry.L("revision", revision)).Set(1)
}
