package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/lint/analysis"
)

// vetConfig is the JSON cmd/go writes for each compilation unit when
// driving a -vettool (the x/tools unitchecker wire format; unknown
// fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one go vet compilation unit. Returns the process
// exit code: 0 clean, 1 failure, 2 findings (the unitchecker
// convention cmd/go understands).
func vetUnit(cfgPath string, analyzers []*analysis.Analyzer, baseline analysis.Baseline) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdkvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hdkvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// hdkvet exports no facts, but cmd/go expects the facts file to
	// exist for downstream units regardless of what we report.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "hdkvet:", err)
			return 1
		}
	}
	// Dependency-only pass: nothing to analyze, facts already written.
	if cfg.VetxOnly {
		return 0
	}
	// Test variants ("pkg [pkg.test]", "pkg_test") are exempt: hdkvet
	// guards production invariants and test code is free to break them
	// (inline metric names, deliberate torture inputs, …). The
	// standalone driver never loads test files either.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "hdkvet:", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if to, ok := cfg.ImportMap[path]; ok {
			path = to
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg := &analysis.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Info: newTypesInfo()}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		GoVersion:   cfg.GoVersion,
		Sizes:       types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Pkg, _ = conf.Check(cfg.ImportPath, fset, files, pkg.Info)
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hdkvet: %s: %v\n", cfg.ImportPath, pkg.TypeErrors[0])
		return 1
	}

	findings, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdkvet:", err)
		return 1
	}
	bad := 0
	for _, f := range findings {
		if baseline.Covers(f) {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
		bad++
	}
	if bad > 0 {
		return 2
	}
	return 0
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
