// Command hdkvet is the repo's invariant checker: a multichecker over
// the analyzers in internal/lint/... that encode the correctness
// properties this codebase has already paid for once — decoded-size
// allocation bounds (decodebounds), no RPCs under mutexes
// (nonetunderlock), deterministic canonical-encode and coordinator
// paths (determinism), and const-declared telemetry metric names
// (meterednames).
//
// Standalone (the form scripts/lint.sh and CI use):
//
//	hdkvet [-baseline lint/baseline.txt] [-<analyzer>=false] [packages]
//
// Patterns default to ./... . Findings print one per line; the exit
// status is 2 when any non-baselined finding remains, 0 when clean.
//
// As a go vet tool (the unitchecker protocol — cmd/go drives one
// invocation per compilation unit and caches results and facts in the
// build cache):
//
//	go vet -vettool=$(which hdkvet) ./...
//
// Test files are exempt in both modes: hdkvet guards production
// invariants, and test code must stay free to (for example) register
// throwaway metric names inline.
//
// Findings are suppressed at the use site with
//
//	//hdkvet:ignore <analyzer>[,<analyzer>] -- <reason>
//
// on the finding's line or the line above it (the reason is required),
// or accepted wholesale in a committed baseline file of
// analyzer<TAB>file<TAB>message lines.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/decodebounds"
	"repro/internal/lint/determinism"
	"repro/internal/lint/meterednames"
	"repro/internal/lint/nonetunderlock"
)

// all registers every analyzer hdkvet ships.
var all = []*analysis.Analyzer{
	decodebounds.Analyzer,
	determinism.Analyzer,
	meterednames.Analyzer,
	nonetunderlock.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hdkvet", flag.ExitOnError)
	enabled := map[string]*bool{}
	for _, a := range all {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+doc)
	}
	list := fs.Bool("list", false, "list analyzers and exit")
	baselinePath := fs.String("baseline", "", "accepted-findings file (analyzer<TAB>file<TAB>message per line)")
	fs.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print flag descriptions as JSON and exit (go vet protocol)")
	fs.Parse(args)

	if *printFlags {
		return flagsJSON(fs)
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var run []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}

	baseline, err := analysis.LoadBaseline(*baselinePath)
	if *baselinePath != "" && err != nil {
		fmt.Fprintln(os.Stderr, "hdkvet:", err)
		return 1
	}

	// A single .cfg argument means cmd/go is driving us as a vet tool.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0], run, baseline)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdkvet:", err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunPackage(pkg, run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdkvet:", err)
			return 1
		}
		for _, f := range findings {
			if baseline.Covers(f) {
				continue
			}
			fmt.Println(f)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "hdkvet: %d finding(s)\n", bad)
		return 2
	}
	return 0
}

// flagsJSON answers the `hdkvet -flags` query of the go vet protocol:
// a JSON list of the flags cmd/go may forward to the tool.
func flagsJSON(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "flags" || f.Name == "V" {
			return
		}
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool && b.IsBoolFlag(), Usage: f.Usage})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	data, _ := json.Marshal(out)
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// versionFlag implements `-V=full`: cmd/go keys its vet result cache on
// this output, so it must change whenever the binary does — hence the
// executable hash.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return false }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("hdkvet version devel buildID=%x\n", h.Sum(nil))
	os.Exit(0)
	return nil
}
