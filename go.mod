module repro

// Zero external dependencies, on purpose — including golang.org/x/tools.
// cmd/hdkvet implements the go/analysis Analyzer/Pass shape and the go
// vet unitchecker protocol against the standard library alone
// (internal/lint/analysis: `go list -export` loading + the gc
// export-data importer), so the analyzers need no pinned x/tools
// version and the module graph stays empty. If the suite ever
// outgrows that (SSA-based analyses, cross-package facts), pin
// golang.org/x/tools here and swap internal/lint/analysis for the real
// framework — the analyzer bodies are written to its API shape.
go 1.24
