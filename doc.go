// Package repro is a from-scratch Go reproduction of "Scalable
// Peer-to-Peer Web Retrieval with Highly Discriminative Keys" (Podnar,
// Rajman, Luu, Klemm, Aberer — ICDE 2007).
//
// The library implements the paper's indexing/retrieval model (HDK keys
// over a structured P2P overlay) together with every substrate it needs:
// text processing, Zipf analysis, a synthetic web-like corpus, posting
// lists, BM25 ranking, a Chord-style DHT over in-process and TCP
// transports, the single-term baselines, the Section 4 scalability
// analysis, and an experiment harness regenerating every table and figure
// of the evaluation. internal/replica adds the availability layer the
// prototype inherited from P-Grid: R-way key placement over any overlay
// fabric, search failover between replicas, and churn repair that
// restores coverage after node crashes without re-indexing. See README.md
// for build, test and benchmark instructions, an overview of the batched
// query path, and the replication/failure model.
//
// The root package only anchors the repository-level benchmarks in
// bench_test.go; the implementation lives under internal/.
package repro
