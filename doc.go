// Package repro is a from-scratch Go reproduction of "Scalable
// Peer-to-Peer Web Retrieval with Highly Discriminative Keys" (Podnar,
// Rajman, Luu, Klemm, Aberer — ICDE 2007).
//
// The library implements the paper's indexing/retrieval model (HDK keys
// over a structured P2P overlay) together with every substrate it needs:
// text processing, Zipf analysis, a synthetic web-like corpus, posting
// lists, BM25 ranking, a Chord-style DHT over in-process and TCP
// transports, the single-term baselines, the Section 4 scalability
// analysis, and an experiment harness regenerating every table and figure
// of the evaluation. internal/replica adds the availability layer the
// prototype inherited from P-Grid: R-way key placement over any overlay
// fabric, search failover between replicas, and churn repair that
// restores coverage after node crashes without re-indexing.
//
// The system also runs as an actual distributed program: cmd/hdknode is
// a daemon serving one peer's index store over transport.TCP — a pooled,
// deadline-aware transport with per-address idle connection reuse — and
// internal/transport/cluster provides the one-hop client fabric that
// lets the unchanged engine build and query a cluster of separate OS
// processes (hdksearch -connect, hdkbench -connect). internal/durable
// gives the daemons disk-backed stores (CRC-guarded snapshots plus an
// append-only op log with threshold compaction), so a killed process
// restarts warm: it restores its store fraction from its data directory,
// rejoins on its original ring position, and pulls only the delta it
// missed instead of re-indexing or re-replicating.
//
// Every daemon is also a query coordinator: the hdk.search RPC runs the
// engine's level-parallel lattice traversal node-side — one RPC per
// query from a thin client (hdksearch -connect -coordinator), with
// replica failover, a worker-pool admission bound and a per-node
// query-result cache that locally served index mutations invalidate
// (core.Coordinator + cluster.Server). Coordinated answers are verified
// bit-identical to the in-process engine's by a CI gate against real
// child processes.
//
// ARCHITECTURE.md maps the paper's sections onto the packages and walks
// a coordinated query and an insert through the system. See README.md
// for build, test and benchmark instructions, an overview of the
// batched query path, the replication/failure model, "Running a real
// cluster", "Durability", and the cluster operations guide.
//
// The root package only anchors the repository-level benchmarks in
// bench_test.go; the implementation lives under internal/.
package repro
