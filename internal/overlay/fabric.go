package overlay

import (
	"fmt"

	"repro/internal/transport"
)

// Member is one participant of a structured overlay, as seen by the
// index layers: an identifier, a transport address, and a service
// registry. *Node implements it; so does the P-Grid peer type.
type Member interface {
	ID() ID
	Addr() string
	Handle(service string, h transport.Handler)
}

// Fabric is the DHT abstraction the paper's model actually requires:
// "key → responsible peer" with multi-hop routing, plus service RPC. The
// Chord-style Network and the P-Grid trie both implement it, so the HDK
// engine runs unchanged on either substrate.
type Fabric interface {
	// Members returns the current membership in deterministic order.
	Members() []Member
	// OwnerOf returns the member responsible for key (false on an empty
	// overlay) without routing — the ground-truth mapping.
	OwnerOf(key string) (Member, bool)
	// Route finds the owner of key starting from a member, returning
	// the hop count.
	Route(from Member, key string) (Member, int, error)
	// CallService invokes a named service on the member bound at addr.
	CallService(addr, service string, req []byte) ([]byte, error)
	// Size returns the membership count.
	Size() int
}

// Churn is optionally implemented by fabrics supporting node departure.
type Churn interface {
	RemoveNode(ID) bool
}

// RemoteStore is optionally implemented by members whose index store
// lives in ANOTHER process: the index layer must not host a local store
// for them — their services are reached through the fabric's RPC instead
// (the hdknode daemon serves them over TCP). Handle on such a member
// registers a caller-side service (e.g. the peer's notify handler), which
// the fabric dispatches locally.
type RemoteStore interface {
	// RemoteStore reports that the member's store is hosted elsewhere.
	RemoteStore() bool
}

// IsRemote reports whether a member's index store is hosted in another
// process.
func IsRemote(m Member) bool {
	r, ok := m.(RemoteStore)
	return ok && r.RemoteStore()
}

// MultiOwner is optionally implemented by fabrics that can name the R
// distinct members jointly responsible for a key — the placement ground
// truth behind replicated index storage. The primary owner (the member
// OwnerOf returns) comes first; the remaining members are the fabric's
// natural failover order (ring successors on Chord, path-order neighbors
// on the P-Grid trie), so losing the primary promotes the next entry.
// Fewer than r members are returned when the overlay is smaller than r.
type MultiOwner interface {
	OwnersOf(key string, r int) []Member
}

// Members implements Fabric.
func (n *Network) Members() []Member {
	nodes := n.Nodes()
	out := make([]Member, len(nodes))
	for i, nd := range nodes {
		out[i] = nd
	}
	return out
}

// OwnerOf implements Fabric.
func (n *Network) OwnerOf(key string) (Member, bool) {
	owner := n.Owner(key)
	if owner == nil {
		return nil, false
	}
	return owner, true
}

// Route implements Fabric.
func (n *Network) Route(from Member, key string) (Member, int, error) {
	start, ok := from.(*Node)
	if !ok {
		start, ok = n.node(from.ID())
		if !ok {
			return nil, 0, fmt.Errorf("overlay: route from unknown member %x", from.ID())
		}
	}
	owner, hops, err := n.Lookup(start, key)
	if err != nil {
		return nil, hops, err
	}
	return owner, hops, nil
}

// Compile-time checks.
var (
	_ Fabric     = (*Network)(nil)
	_ Member     = (*Node)(nil)
	_ Churn      = (*Network)(nil)
	_ MultiOwner = (*Network)(nil)
)
