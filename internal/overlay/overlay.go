// Package overlay implements the structured P2P overlay hosting the global
// index: a Chord-style distributed hash table with 64-bit ring positions,
// finger tables, iterative O(log N) lookups and per-lookup hop accounting.
//
// The paper's prototype ran on P-Grid; the indexing/retrieval model only
// requires the DHT abstraction "key → responsible peer" with logarithmic
// routing, and the scalability analysis explicitly excludes overlay
// maintenance traffic ("we do not analyze the total traffic between the
// peers related to P2P network maintenance and routing"). A Chord-style
// ring therefore reproduces every accounted quantity; internal/pgrid
// provides the paper's own substrate behind the same Fabric interface.
package overlay

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/transport"
)

// ID is a position on the identifier ring [0, 2^64).
type ID uint64

// HashKey maps an index key to its ring position (SHA-1 prefix, the
// classical Chord choice).
func HashKey(key string) ID {
	sum := sha1.Sum([]byte(key))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// hashNode derives a node's ring position from its address.
func hashNode(addr string) ID {
	sum := sha1.Sum([]byte("node:" + addr))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// HashNode exposes the node-position hash so alternative Fabric
// implementations (the multi-process cluster fabric) place members on
// exactly the same ring as the in-process Chord overlay.
func HashNode(addr string) ID { return hashNode(addr) }

// between reports whether x lies in the half-open ring interval (a, b].
func between(a, b, x ID) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b // interval wraps around zero
}

const fingerBits = 64

// Node is one peer's overlay state.
type Node struct {
	id   ID
	addr string
	net  *Network

	mu       sync.RWMutex
	succ     ID
	fingers  [fingerBits]ID // fingers[i] = successor(id + 2^i)
	services map[string]transport.Handler
}

// ID returns the node's ring position.
func (n *Node) ID() ID { return n.id }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.addr }

// Handle registers a named service handler on the node. The index layers
// (HDK engine, single-term baseline) register their RPCs through this.
func (n *Node) Handle(service string, h transport.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.services[service] = h
}

// Network is a set of overlay nodes sharing one transport.
type Network struct {
	tr transport.Transport

	mu     sync.RWMutex
	nodes  map[ID]*Node
	sorted []ID // ring order, maintained on join/leave

	lookupMu      sync.Mutex
	lookupCount   uint64
	lookupHopsSum uint64
}

// NewNetwork creates an empty overlay over the given transport.
func NewNetwork(tr transport.Transport) *Network {
	return &Network{tr: tr, nodes: make(map[ID]*Node)}
}

// AddNode creates a node with the given address, binds it on the
// transport, and splices it into the ring, refreshing routing state. It
// is the "peer joins the network" operation of the paper's growth
// protocol (4 peers added per experimental run).
func (n *Network) AddNode(addr string) (*Node, error) {
	node := &Node{
		net:      n,
		services: make(map[string]transport.Handler),
	}
	bound, err := n.tr.Listen(addr, node.dispatch)
	if err != nil {
		return nil, err
	}
	// The id is derived from the bound address: with TCP, "host:0"
	// resolves to a concrete port only at bind time.
	node.addr = bound
	node.id = hashNode(bound)

	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[node.id]; dup {
		return nil, fmt.Errorf("overlay: id collision for %q", addr)
	}
	n.nodes[node.id] = node
	n.sorted = append(n.sorted, node.id)
	sort.Slice(n.sorted, func(i, j int) bool { return n.sorted[i] < n.sorted[j] })
	n.rebuildRoutingLocked()
	return node, nil
}

// rebuildRoutingLocked recomputes successors and finger tables for every
// node from the global membership view. A production DHT converges to the
// same state through periodic stabilization; rebuilding directly keeps the
// simulation deterministic, and the paper's accounting excludes the
// maintenance traffic this would generate.
func (n *Network) rebuildRoutingLocked() {
	for _, node := range n.nodes {
		node.mu.Lock()
		node.succ = n.successorLocked(node.id + 1)
		for i := 0; i < fingerBits; i++ {
			node.fingers[i] = n.successorLocked(node.id + 1<<uint(i))
		}
		node.mu.Unlock()
	}
}

// successorLocked returns the first node id at or after x on the ring.
func (n *Network) successorLocked(x ID) ID {
	i := sort.Search(len(n.sorted), func(i int) bool { return n.sorted[i] >= x })
	if i == len(n.sorted) {
		i = 0
	}
	return n.sorted[i]
}

// RemoveNode takes a node out of the ring (graceful leave) and refreshes
// the remaining nodes' routing state. The node's transport binding is
// left in place — in a real deployment it dies with the process; in the
// simulation nothing routes to it anymore. Returns false if the node is
// not a member.
func (n *Network) RemoveNode(id ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; !ok {
		return false
	}
	delete(n.nodes, id)
	for i, v := range n.sorted {
		if v == id {
			n.sorted = append(n.sorted[:i], n.sorted[i+1:]...)
			break
		}
	}
	n.rebuildRoutingLocked()
	return true
}

// Size returns the number of nodes.
func (n *Network) Size() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.nodes)
}

// Nodes returns the nodes in ring order.
func (n *Network) Nodes() []*Node {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Node, 0, len(n.sorted))
	for _, id := range n.sorted {
		out = append(out, n.nodes[id])
	}
	return out
}

// node looks up a node by id.
func (n *Network) node(id ID) (*Node, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	v, ok := n.nodes[id]
	return v, ok
}

// Owner returns the node responsible for the key (its successor on the
// ring) without routing — the ground truth used by tests and by callers
// that only need the mapping.
func (n *Network) Owner(key string) *Node {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.sorted) == 0 {
		return nil
	}
	return n.nodes[n.successorLocked(HashKey(key))]
}

// OwnersOf implements MultiOwner: the replica set of a key is its
// successor list — the first r distinct nodes at or after the key's ring
// position, primary first (the classical Chord replication scheme). The
// scheme is churn-stable: when the primary leaves, the key's new
// successor is exactly the old second replica, so routing lands on a
// node that already holds the replicated data.
func (n *Network) OwnersOf(key string, r int) []Member {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.sorted) == 0 || r < 1 {
		return nil
	}
	if r > len(n.sorted) {
		r = len(n.sorted)
	}
	h := HashKey(key)
	start := sort.Search(len(n.sorted), func(i int) bool { return n.sorted[i] >= h })
	out := make([]Member, 0, r)
	for k := 0; k < r; k++ {
		out = append(out, n.nodes[n.sorted[(start+k)%len(n.sorted)]])
	}
	return out
}

// Lookup routes from the given start node to the owner of key using
// iterative closest-preceding-finger routing and returns the owner along
// with the number of routing hops taken. Each hop is one transport
// message, so DHT routing cost shows up in the transport stats.
func (n *Network) Lookup(start *Node, key string) (*Node, int, error) {
	target := HashKey(key)
	cur := start
	hops := 0
	maxHops := 2*bits.Len(uint(n.Size())) + 8 // generous O(log N) bound
	for {
		resp, err := n.callRoute(cur, target)
		if err != nil {
			return nil, hops, err
		}
		hops++
		if resp.Found {
			owner, ok := n.node(resp.Next)
			if !ok {
				return nil, hops, fmt.Errorf("overlay: route returned unknown node %x", resp.Next)
			}
			n.recordLookup(hops)
			return owner, hops, nil
		}
		next, ok := n.node(resp.Next)
		if !ok {
			return nil, hops, fmt.Errorf("overlay: route via unknown node %x", resp.Next)
		}
		if hops > maxHops {
			return nil, hops, fmt.Errorf("overlay: routing did not converge after %d hops", hops)
		}
		cur = next
	}
}

func (n *Network) recordLookup(hops int) {
	n.lookupMu.Lock()
	n.lookupCount++
	n.lookupHopsSum += uint64(hops)
	n.lookupMu.Unlock()
}

// LookupStats returns the number of lookups performed and the mean hop
// count, for the routing-cost reports.
func (n *Network) LookupStats() (count uint64, meanHops float64) {
	n.lookupMu.Lock()
	defer n.lookupMu.Unlock()
	if n.lookupCount == 0 {
		return 0, 0
	}
	return n.lookupCount, float64(n.lookupHopsSum) / float64(n.lookupCount)
}

// TransportStats exposes the underlying traffic counters.
func (n *Network) TransportStats() transport.Stats { return n.tr.Stats() }

// maxTransientRetries bounds re-sends of calls dropped by the network
// (transport.ErrTransient). Handler errors are never retried: the remote
// rejected the request, re-sending cannot help.
const maxTransientRetries = 8

// callRetry performs a transport call, retrying transient drops.
func (n *Network) callRetry(addr string, payload []byte) ([]byte, error) {
	return transport.CallRetry(n.tr, addr, payload, maxTransientRetries)
}

// CallService invokes a named service on the node that owns the given
// overlay node address, retrying transient transport failures.
func (n *Network) CallService(addr, service string, req []byte) ([]byte, error) {
	return n.callRetry(addr, encodeEnvelope(service, req))
}
