package overlay

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/transport"
)

func buildNet(t *testing.T, n int) *Network {
	t.Helper()
	net := NewNetwork(transport.NewInProc())
	for i := 0; i < n; i++ {
		if _, err := net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, b, x ID
		want    bool
	}{
		{1, 5, 3, true},
		{1, 5, 5, true},
		{1, 5, 1, false},
		{1, 5, 6, false},
		{10, 2, 11, true}, // wrap
		{10, 2, 1, true},  // wrap
		{10, 2, 2, true},  // wrap, inclusive upper
		{10, 2, 5, false},
	}
	for _, c := range cases {
		if got := between(c.a, c.b, c.x); got != c.want {
			t.Errorf("between(%d,%d,%d) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	if HashKey("abc") != HashKey("abc") {
		t.Fatal("HashKey not deterministic")
	}
	if HashKey("abc") == HashKey("abd") {
		t.Fatal("suspicious collision")
	}
}

func TestLookupFindsOwner(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16, 28, 64} {
		net := buildNet(t, n)
		nodes := net.Nodes()
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("key-%d", i)
			want := net.Owner(key)
			start := nodes[i%len(nodes)]
			got, hops, err := net.Lookup(start, key)
			if err != nil {
				t.Fatalf("n=%d key=%s: %v", n, key, err)
			}
			if got.ID() != want.ID() {
				t.Fatalf("n=%d key=%s: lookup owner %x, want %x", n, key, got.ID(), want.ID())
			}
			if hops < 1 {
				t.Fatalf("hops = %d, want >= 1", hops)
			}
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	net := buildNet(t, 64)
	nodes := net.Nodes()
	total, count := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		_, hops, err := net.Lookup(nodes[i%len(nodes)], key)
		if err != nil {
			t.Fatal(err)
		}
		total += hops
		count++
	}
	mean := float64(total) / float64(count)
	// log2(64) = 6; iterative Chord averages ~log2(N)/2 + 1 forwarding
	// steps. Anything near-linear signals broken finger tables.
	if mean > 10 {
		t.Fatalf("mean hops %.1f on 64 nodes, want O(log N)", mean)
	}
	c, m := net.LookupStats()
	if c != uint64(count) {
		t.Errorf("LookupStats count = %d, want %d", c, count)
	}
	if m != mean {
		t.Errorf("LookupStats mean = %g, want %g", m, mean)
	}
}

func TestOwnerConsistentAcrossStarts(t *testing.T) {
	net := buildNet(t, 16)
	nodes := net.Nodes()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("q%d", i)
		var owner ID
		for j, start := range nodes {
			got, _, err := net.Lookup(start, key)
			if err != nil {
				t.Fatal(err)
			}
			if j == 0 {
				owner = got.ID()
			} else if got.ID() != owner {
				t.Fatalf("key %s: owner differs by start node", key)
			}
		}
	}
}

func TestJoinPreservesOwnership(t *testing.T) {
	// The paper's growth protocol: peers join in batches; lookups must
	// stay consistent with the ground-truth successor mapping after every
	// join.
	net := buildNet(t, 4)
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			if _, err := net.AddNode(fmt.Sprintf("joiner-%d-%d", round, i)); err != nil {
				t.Fatal(err)
			}
		}
		nodes := net.Nodes()
		for i := 0; i < 60; i++ {
			key := fmt.Sprintf("doc-%d", i)
			got, _, err := net.Lookup(nodes[i%len(nodes)], key)
			if err != nil {
				t.Fatal(err)
			}
			if want := net.Owner(key); got.ID() != want.ID() {
				t.Fatalf("after join round %d: wrong owner for %s", round, key)
			}
		}
	}
	if net.Size() != 16 {
		t.Fatalf("Size = %d, want 16", net.Size())
	}
}

func TestKeyDistributionRoughlyBalanced(t *testing.T) {
	net := buildNet(t, 16)
	counts := map[ID]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[net.Owner(fmt.Sprintf("key:%d", i)).ID()]++
	}
	// Consistent hashing without virtual nodes is skewed, but every node
	// must own something and no node should own the majority.
	if len(counts) != 16 {
		t.Fatalf("only %d/16 nodes own keys", len(counts))
	}
	for id, c := range counts {
		if c > keys/2 {
			t.Errorf("node %x owns %d/%d keys", id, c, keys)
		}
	}
}

func TestServiceDispatch(t *testing.T) {
	net := buildNet(t, 4)
	target := net.Nodes()[2]
	target.Handle("echo", func(req []byte) ([]byte, error) {
		return append([]byte("svc:"), req...), nil
	})
	resp, err := net.CallService(target.Addr(), "echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "svc:ping" {
		t.Fatalf("resp = %q", resp)
	}
	if _, err := net.CallService(target.Addr(), "missing", nil); err == nil {
		t.Fatal("unknown service accepted")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	prop := func(service string, payload []byte) bool {
		s, p, err := decodeEnvelope(encodeEnvelope(service, payload))
		if err != nil {
			return false
		}
		if s != service || len(p) != len(payload) {
			return false
		}
		for i := range p {
			if p[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEnvelopeCorrupt(t *testing.T) {
	if _, _, err := decodeEnvelope([]byte{0xff}); err == nil {
		t.Error("truncated envelope accepted")
	}
	if _, _, err := decodeEnvelope([]byte{10, 'a'}); err == nil {
		t.Error("short envelope accepted")
	}
}

func TestDuplicateNodeAddr(t *testing.T) {
	net := NewNetwork(transport.NewInProc())
	if _, err := net.AddNode("same"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode("same"); err == nil {
		t.Fatal("duplicate address accepted")
	}
}

func TestOverlayOverTCP(t *testing.T) {
	// The same overlay code must run over the real TCP transport.
	tr := transport.NewTCP()
	defer tr.Close()
	net := NewNetwork(tr)
	for i := 0; i < 4; i++ {
		if _, err := net.AddNode("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
	}
	nodes := net.Nodes()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("tcp-key-%d", i)
		got, _, err := net.Lookup(nodes[i%4], key)
		if err != nil {
			t.Fatal(err)
		}
		if want := net.Owner(key); got.ID() != want.ID() {
			t.Fatalf("TCP lookup wrong owner for %s", key)
		}
	}
}

func BenchmarkLookup28Peers(b *testing.B) {
	net := NewNetwork(transport.NewInProc())
	for i := 0; i < 28; i++ {
		net.AddNode(fmt.Sprintf("peer-%d", i))
	}
	nodes := net.Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Lookup(nodes[i%28], fmt.Sprintf("key-%d", i))
	}
}
