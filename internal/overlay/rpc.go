package overlay

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/transport"
)

// Wire envelope: uvarint service-name length, service name, payload.
// The built-in routing service uses the reserved name "_route".

const routeService = "_route"

func encodeEnvelope(service string, payload []byte) []byte {
	buf := make([]byte, 0, len(service)+len(payload)+2)
	buf = binary.AppendUvarint(buf, uint64(len(service)))
	buf = append(buf, service...)
	buf = append(buf, payload...)
	return buf
}

func decodeEnvelope(req []byte) (service string, payload []byte, err error) {
	n, sz := binary.Uvarint(req)
	if sz <= 0 || uint64(len(req)-sz) < n {
		return "", nil, errors.New("overlay: corrupt envelope")
	}
	return string(req[sz : sz+int(n)]), req[sz+int(n):], nil
}

// routeResp is one routing step's answer.
type routeResp struct {
	Found bool // true: Next is the owner; false: Next is the next hop
	Next  ID
}

func encodeRouteResp(r routeResp) []byte {
	buf := make([]byte, 9)
	if r.Found {
		buf[0] = 1
	}
	binary.BigEndian.PutUint64(buf[1:], uint64(r.Next))
	return buf
}

func decodeRouteResp(b []byte) (routeResp, error) {
	if len(b) != 9 {
		return routeResp{}, errors.New("overlay: corrupt route response")
	}
	return routeResp{Found: b[0] == 1, Next: ID(binary.BigEndian.Uint64(b[1:]))}, nil
}

// dispatch is the node's transport handler: it demultiplexes the built-in
// routing service and the index-layer services registered via Handle.
func (nd *Node) dispatch(req []byte) ([]byte, error) {
	service, payload, err := decodeEnvelope(req)
	if err != nil {
		return nil, err
	}
	if service == routeService {
		return nd.handleRoute(payload)
	}
	nd.mu.RLock()
	h, ok := nd.services[service]
	nd.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("overlay: node %s: unknown service %q", nd.addr, service)
	}
	return h(payload)
}

// handleRoute answers one iterative routing step: if the target id falls
// between this node and its successor the successor owns it; otherwise the
// closest preceding finger is returned as the next hop.
func (nd *Node) handleRoute(payload []byte) ([]byte, error) {
	if len(payload) != 8 {
		return nil, errors.New("overlay: corrupt route request")
	}
	target := ID(binary.BigEndian.Uint64(payload))
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	if target == nd.id || nd.succ == nd.id {
		// Single-node ring or exact hit: this node owns the key.
		return encodeRouteResp(routeResp{Found: true, Next: nd.id}), nil
	}
	if between(nd.id, nd.succ, target) {
		return encodeRouteResp(routeResp{Found: true, Next: nd.succ}), nil
	}
	// Closest preceding finger: scan from the farthest finger down.
	for i := fingerBits - 1; i >= 0; i-- {
		f := nd.fingers[i]
		if f != nd.id && between(nd.id, target, f) && f != target {
			return encodeRouteResp(routeResp{Found: false, Next: f}), nil
		}
	}
	return encodeRouteResp(routeResp{Found: true, Next: nd.succ}), nil
}

// callRoute performs one routing RPC against cur, retrying transient
// transport failures.
func (n *Network) callRoute(cur *Node, target ID) (routeResp, error) {
	req := make([]byte, 8)
	binary.BigEndian.PutUint64(req, uint64(target))
	raw, err := n.callRetry(cur.addr, encodeEnvelope(routeService, req))
	if err != nil {
		return routeResp{}, err
	}
	return decodeRouteResp(raw)
}

// Verify transport.Handler compatibility at compile time.
var _ transport.Handler = (*Node)(nil).dispatch

// EncodeEnvelope and DecodeEnvelope expose the service-dispatch wire
// format so alternative Fabric implementations (the P-Grid trie) speak
// the same RPC framing.
func EncodeEnvelope(service string, payload []byte) []byte {
	return encodeEnvelope(service, payload)
}

// DecodeEnvelope parses a service envelope.
func DecodeEnvelope(req []byte) (service string, payload []byte, err error) {
	return decodeEnvelope(req)
}
