package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fuzzcorpus"
	"repro/internal/rank"
)

// Fuzz targets for the hdk.search wire codec: the request a thin client
// ships and the framed response (plain, cached, traced, overloaded) a
// coordinator returns. The decoders face bytes from the network, so the
// bar is: never panic, never allocate proportionally to a declared
// count the input cannot back, and decode successfully only into values
// whose re-encoding is stable (encode∘decode is idempotent on accepted
// inputs — float scores are compared through their encodings, which are
// exact bit copies, so NaN cannot produce a false mismatch).

func searchRequestSeeds() [][]byte {
	return [][]byte{
		EncodeSearchRequest(SearchRequest{Terms: []string{"alpha"}, K: 1}),
		EncodeSearchRequest(SearchRequest{Terms: []string{"alpha", "beta", "gamma"}, K: 10, NoCache: true}),
		EncodeSearchRequest(SearchRequest{Terms: []string{"a", "b"}, K: 5, Trace: true}),
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff},
	}
}

func searchResponseSeeds() [][]byte {
	res := &SearchResult{
		Results:      []rank.Result{{Doc: 7, Score: 1.5}, {Doc: 9, Score: 0.25}},
		FetchedPosts: 42,
		ProbedKeys:   6,
		FoundKeys:    3,
		RPCs:         2,
		Rounds:       2,
		Failovers:    1,
	}
	body := EncodeSearchResult(res)
	return [][]byte{
		EncodeSearchResponse(body, false),
		EncodeSearchResponse(body, true),
		EncodeSearchResponseTraced(body, []byte("trace-bytes")),
		EncodeSearchOverloaded(250 * time.Millisecond),
		EncodeSearchResponse(EncodeSearchResult(&SearchResult{}), false),
		{},
		{0x03},
	}
}

func FuzzDecodeSearchRequest(f *testing.F) {
	for _, seed := range searchRequestSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSearchRequest(data)
		if err != nil {
			return
		}
		enc := EncodeSearchRequest(req)
		req2, err := DecodeSearchRequest(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted request failed: %v", err)
		}
		if enc2 := EncodeSearchRequest(req2); !bytes.Equal(enc, enc2) {
			t.Fatalf("request encoding not stable:\n first %x\nsecond %x", enc, enc2)
		}
	})
}

func FuzzDecodeSearchResponse(f *testing.F) {
	for _, seed := range searchResponseSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The traced form is a superset decoder (flags 0–3); an
		// OverloadError return is a successful decode of frame flag 2.
		res, _, _, err := DecodeSearchResponseTrace(data)
		if err != nil {
			return
		}
		enc := EncodeSearchResult(res)
		res2, err := DecodeSearchResult(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted result failed: %v", err)
		}
		if enc2 := EncodeSearchResult(res2); !bytes.Equal(enc, enc2) {
			t.Fatalf("result encoding not stable:\n first %x\nsecond %x", enc, enc2)
		}
		if len(res.Results) > maxSearchK {
			t.Fatalf("decoded %d results, beyond maxSearchK=%d", len(res.Results), maxSearchK)
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus; see
// package fuzzcorpus.
func TestWriteFuzzCorpus(t *testing.T) {
	if !fuzzcorpus.Enabled() {
		t.Skipf("set %s=1 to regenerate testdata/fuzz", fuzzcorpus.EnvVar)
	}
	for name, seeds := range map[string][][]byte{
		"FuzzDecodeSearchRequest":  searchRequestSeeds(),
		"FuzzDecodeSearchResponse": searchResponseSeeds(),
	} {
		if err := fuzzcorpus.Write(name, seeds); err != nil {
			t.Fatal(err)
		}
	}
}
