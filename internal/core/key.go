// Package core implements the paper's contribution: indexing and
// retrieval with Highly Discriminative Keys (HDKs) over a structured P2P
// overlay.
//
// A key is a set of terms (size filtering caps it at smax) whose terms
// co-occur in a document window of size w (proximity filtering) and whose
// global document frequency is at most DFmax while every proper sub-key's
// is above DFmax (redundancy filtering: only intrinsically discriminative
// keys are stored with full posting lists). Non-discriminative keys (NDKs)
// are kept with top-DFmax truncated posting lists. Queries are mapped onto
// the lattice of their term subsets; found keys' bounded posting lists are
// fetched, unioned and ranked — so per-query traffic is bounded by
// nk·DFmax independent of collection size.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/corpus"
)

// MaxKeySize is the largest key size the packed representation supports.
// The paper uses smax = 3; the average web query has 2-3 terms, so keys
// beyond 4 terms have no retrieval value.
const MaxKeySize = 4

// noTerm marks unused slots in the packed key.
const noTerm = ^corpus.TermID(0)

// Key is a set of at most MaxKeySize terms in ascending TermID order,
// packed into a comparable value so it can be used as a map key with no
// allocation on the hot candidate-generation path.
type Key struct {
	t [MaxKeySize]corpus.TermID
	n uint8
}

// NewKey builds a key from term ids, sorting and de-duplicating.
// It panics if more than MaxKeySize distinct terms are supplied — key
// sizes are bounded by construction everywhere in the engine.
func NewKey(terms ...corpus.TermID) Key {
	var k Key
	for i := range k.t {
		k.t[i] = noTerm
	}
	sorted := append([]corpus.TermID(nil), terms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, t := range sorted {
		if i > 0 && t == sorted[i-1] {
			continue
		}
		if int(k.n) >= MaxKeySize {
			panic(fmt.Sprintf("core: key larger than %d terms", MaxKeySize))
		}
		k.t[k.n] = t
		k.n++
	}
	return k
}

// Size returns the number of terms in the key.
func (k Key) Size() int { return int(k.n) }

// Terms returns the term ids in ascending order.
func (k Key) Terms() []corpus.TermID {
	out := make([]corpus.TermID, k.n)
	copy(out, k.t[:k.n])
	return out
}

// Term returns the i-th term.
func (k Key) Term(i int) corpus.TermID { return k.t[i] }

// Contains reports whether the key includes term t.
func (k Key) Contains(t corpus.TermID) bool {
	for i := 0; i < int(k.n); i++ {
		if k.t[i] == t {
			return true
		}
	}
	return false
}

// Extend returns k ∪ {t}. It panics on overflow or duplicate, which the
// candidate generator rules out beforehand.
func (k Key) Extend(t corpus.TermID) Key {
	if k.Contains(t) {
		panic("core: Extend with duplicate term")
	}
	terms := append(k.Terms(), t)
	return NewKey(terms...)
}

// Drop returns the key without its i-th term (a size-(n-1) sub-key).
func (k Key) Drop(i int) Key {
	terms := k.Terms()
	terms = append(terms[:i], terms[i+1:]...)
	return NewKey(terms...)
}

// Subkeys invokes fn for every proper sub-key of size n-1. For n == 1 it
// does nothing.
func (k Key) Subkeys(fn func(Key)) {
	if k.n <= 1 {
		return
	}
	for i := 0; i < int(k.n); i++ {
		fn(k.Drop(i))
	}
}

// IsSubsetOf reports whether every term of k appears in other.
func (k Key) IsSubsetOf(other Key) bool {
	if k.n > other.n {
		return false
	}
	j := 0
	for i := 0; i < int(k.n); i++ {
		for j < int(other.n) && other.t[j] < k.t[i] {
			j++
		}
		if j >= int(other.n) || other.t[j] != k.t[i] {
			return false
		}
	}
	return true
}

// keySeparator joins term strings in the canonical wire form. The unit
// separator cannot appear in tokenizer output.
const keySeparator = "\x1f"

// CanonicalString renders the key in its DHT wire form using the
// collection vocabulary: term strings in ascending TermID order joined by
// the unit separator.
func (k Key) CanonicalString(vocab []string) string {
	switch k.n {
	case 0:
		return ""
	case 1:
		return vocab[k.t[0]]
	}
	parts := make([]string, k.n)
	for i := 0; i < int(k.n); i++ {
		parts[i] = vocab[k.t[i]]
	}
	return strings.Join(parts, keySeparator)
}

// DisplayString renders the key human-readably ("term1+term2").
func (k Key) DisplayString(vocab []string) string {
	parts := make([]string, k.n)
	for i := 0; i < int(k.n); i++ {
		parts[i] = vocab[k.t[i]]
	}
	return strings.Join(parts, "+")
}
