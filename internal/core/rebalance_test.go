package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
)

// searchAll runs a fixed query set and returns the ranked doc ids.
func searchAll(t *testing.T, eng *Engine, col *corpus.Collection, n int) [][]rank.Result {
	t.Helper()
	node := eng.net.Members()[0]
	out := make([][]rank.Result, n)
	for i := 0; i < n; i++ {
		q := corpus.Query{Terms: col.Docs[i].Terms[:2]}
		res, err := eng.Search(q, node, 20)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res.Results
	}
	return out
}

func assertSameResults(t *testing.T, a, b [][]rank.Result, context string) {
	t.Helper()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: query %d: %d vs %d results", context, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j].Doc != b[i][j].Doc {
				t.Fatalf("%s: query %d rank %d: doc %d vs %d", context, i, j, a[i][j].Doc, b[i][j].Doc)
			}
		}
	}
}

func TestRebalanceAfterJoin(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	before := searchAll(t, eng, col, 12)

	// Three nodes join; ownership of many keys changes.
	for i := 0; i < 3; i++ {
		node, err := eng.net.(*overlay.Network).AddNode(string(rune('x'+i)) + "-joiner")
		if err != nil {
			t.Fatal(err)
		}
		eng.attachStore(node)
	}
	moved, err := eng.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("no entries moved after 3 joins — implausible")
	}
	// Every entry now sits on its owner.
	for id, store := range eng.stores {
		store.mu.Lock()
		for key := range store.entries {
			owner, ok := eng.net.OwnerOf(key)
			if !ok || owner.ID() != id {
				t.Fatalf("key %q misplaced after rebalance", key)
			}
		}
		store.mu.Unlock()
	}
	after := searchAll(t, eng, col, 12)
	assertSameResults(t, before, after, "rebalance")
}

func TestRebalanceIdempotent(t *testing.T) {
	col := testCollection(t, 30)
	cfg := testConfig(col, 5)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rebalance(); err != nil {
		t.Fatal(err)
	}
	moved, err := eng.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("second rebalance moved %d entries, want 0", moved)
	}
}

func TestRemoveNodeHandsOffIndex(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 5, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	totalBefore := eng.Stats().StoredTotal
	before := searchAll(t, eng, col, 12)

	victim := eng.net.Members()[2]
	if err := eng.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	if eng.net.Size() != 4 {
		t.Fatalf("network size %d after leave, want 4", eng.net.Size())
	}
	if got := eng.Stats().StoredTotal; got != totalBefore {
		t.Fatalf("postings lost in handoff: %d -> %d", totalBefore, got)
	}
	after := searchAll(t, eng, col, 12)
	assertSameResults(t, before, after, "leave")
}

func TestRemoveNodeTwiceFails(t *testing.T) {
	col := testCollection(t, 20)
	cfg := testConfig(col, 5)
	eng := buildEngine(t, col, 3, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	victim := eng.net.Members()[0]
	if err := eng.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := eng.RemoveNode(victim); err == nil {
		t.Fatal("double removal accepted")
	}
}

func TestOverlayRemoveUnknownNode(t *testing.T) {
	col := testCollection(t, 10)
	cfg := testConfig(col, 5)
	eng := buildEngine(t, col, 2, cfg)
	if eng.net.(overlay.Churn).RemoveNode(0xdeadbeef) {
		t.Fatal("removed a node that was never added")
	}
}
