package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/overlay"
	"repro/internal/postings"
	"repro/internal/replica"
)

// This file hosts the server side of the HDK index as a standalone unit:
// every RPC service an index node answers, registered onto any
// overlay.Member. The in-process Engine attaches stores through the same
// registration, so a store served by the hdknode daemon in another OS
// process and a store living inside the Engine execute literally the same
// handler code — the cross-process deployment cannot drift from the
// simulated one.

// Exported index service names. The multi-process cluster client invokes
// these on daemon members; the Engine uses them for stores it does not
// host locally.
const (
	// SvcClassify runs one classification sweep (request: uvarint key
	// size) and returns the newly non-discriminative keys with their
	// contributor addresses (the notify map).
	SvcClassify = "hdk.classify"
	// SvcKeys returns the store's resident keys (repair inventory).
	SvcKeys = "hdk.keys"
	// SvcEntryInfo returns a resident entry's replica fingerprint.
	SvcEntryInfo = "hdk.entryInfo"
	// SvcEntryExport returns a resident entry's repair snapshot.
	SvcEntryExport = "hdk.entryExport"
	// SvcStats returns resident posting/key counts per key size.
	SvcStats = "hdk.stats"
)

// StoreServer hosts one overlay member's fraction of the global HDK
// index outside an Engine — the daemon-side building block of the
// multi-process deployment: cmd/hdknode creates one per process and
// attaches it to its cluster membership identity.
type StoreServer struct {
	cfg   Config
	store *hdkStore
}

// NewStoreServer validates the configuration and creates an empty store.
// The configuration must equal the building client's engine configuration
// (the cluster control plane ships it before the build), since the store
// applies DFmax classification and idf scoring server-side.
func NewStoreServer(cfg Config) (*StoreServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &StoreServer{cfg: cfg}
	s.store = newHDKStore(&s.cfg)
	return s, nil
}

// Attach registers every index service on the member.
func (s *StoreServer) Attach(m overlay.Member) { attachIndexServices(m, s.store) }

// Config returns the configuration the store classifies and scores with.
func (s *StoreServer) Config() Config { return s.cfg }

// Populated reports whether the store holds any index entries — i.e. a
// build already ran against it.
func (s *StoreServer) Populated() bool { return s.store.keyCount() > 0 }

// StoredBySize returns resident posting and key counts per key size.
func (s *StoreServer) StoredBySize() (posts, keys []int) {
	return s.store.storedBySize(MaxKeySize)
}

// attachIndexServices registers the full index-node RPC surface for one
// store on an overlay member. Shared by Engine.attachStore (in-process
// stores) and StoreServer.Attach (daemon-hosted stores).
func attachIndexServices(node overlay.Member, store *hdkStore) {
	node.Handle(svcInsert, func(req []byte) ([]byte, error) {
		contributor, batch, err := decodeInsertReq(req)
		if err != nil {
			return nil, err
		}
		// The response reports, for keys already classified, their
		// global status: new contributors of existing NDKs must learn
		// the classification to drive their expansions.
		var classified []postings.KeyedMessage
		for _, m := range batch {
			status, isClassified := store.insert(m.Key, int(m.Aux), m.List, contributor)
			if isClassified {
				classified = append(classified, postings.KeyedMessage{Key: m.Key, Aux: uint64(status)})
			}
		}
		return postings.EncodeKeyedBatch(nil, classified), nil
	})
	node.Handle(svcFetchBatch, func(req []byte) ([]byte, error) {
		keys, err := decodeFetchBatchReq(req)
		if err != nil {
			return nil, err
		}
		return encodeFetchBatchResp(store.fetchBatch(keys)), nil
	})
	node.Handle(replica.Service, func(req []byte) ([]byte, error) {
		items, err := replica.DecodeBatch(req)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			if _, err := store.importEntry(it.Key, it.Blob); err != nil {
				return nil, fmt.Errorf("core: repair import %q: %w", it.Key, err)
			}
		}
		return nil, nil
	})
	node.Handle(SvcClassify, func(req []byte) ([]byte, error) {
		size, n := binary.Uvarint(req)
		if n <= 0 || size < 1 || size > MaxKeySize {
			return nil, errCorruptRPC
		}
		return encodeNotifyMap(store.classifySweep(int(size))), nil
	})
	node.Handle(SvcKeys, func(req []byte) ([]byte, error) {
		return postings.EncodeKeyList(nil, store.keyList()), nil
	})
	node.Handle(SvcEntryInfo, func(req []byte) ([]byte, error) {
		df, ok := store.entryDF(string(req))
		if !ok {
			return []byte{0}, nil
		}
		return binary.AppendUvarint([]byte{1}, uint64(df)), nil
	})
	node.Handle(SvcEntryExport, func(req []byte) ([]byte, error) {
		blob, ok := store.exportEntry(string(req))
		if !ok {
			return []byte{0}, nil
		}
		return append([]byte{1}, blob...), nil
	})
	node.Handle(SvcStats, func(req []byte) ([]byte, error) {
		posts, keys := store.storedBySize(MaxKeySize)
		buf := binary.AppendUvarint(nil, uint64(MaxKeySize))
		for _, v := range posts {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
		for _, v := range keys {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
		return buf, nil
	})
}

// RemoteInventory implements replica.Inventory over the index inventory
// RPCs (SvcKeys/SvcEntryInfo/SvcEntryExport) through any service caller
// — the single definition of the inventory wire contract, shared by the
// engine's repair sweep (for members whose stores live in other
// processes) and the cluster client's engine-free Repairer. A member
// whose daemon is unreachable or answers garbage reports no resident
// keys, exactly the semantics a post-crash sweep needs.
type RemoteInventory struct {
	Call func(addr, service string, req []byte) ([]byte, error)
}

// Keys implements replica.Inventory.
func (ri RemoteInventory) Keys(m overlay.Member) []string {
	raw, err := ri.Call(m.Addr(), SvcKeys, nil)
	if err != nil {
		return nil
	}
	keys, err := postings.DecodeKeyList(raw)
	if err != nil {
		return nil
	}
	return keys
}

// Fingerprint implements replica.Inventory.
func (ri RemoteInventory) Fingerprint(m overlay.Member, key string) (int, bool) {
	raw, err := ri.Call(m.Addr(), SvcEntryInfo, []byte(key))
	if err != nil {
		return 0, false
	}
	df, ok, err := DecodeEntryInfoResp(raw)
	if err != nil {
		return 0, false
	}
	return df, ok
}

// Export implements replica.Inventory.
func (ri RemoteInventory) Export(m overlay.Member, key string) ([]byte, bool) {
	raw, err := ri.Call(m.Addr(), SvcEntryExport, []byte(key))
	if err != nil {
		return nil, false
	}
	blob, ok, err := DecodeEntryExportResp(raw)
	if err != nil {
		return nil, false
	}
	return blob, ok
}

var _ replica.Inventory = RemoteInventory{}

// EncodeClassifyReq builds a SvcClassify request for one key size.
func EncodeClassifyReq(size int) []byte {
	return binary.AppendUvarint(nil, uint64(size))
}

// encodeNotifyMap serializes a classify sweep's notify map (key →
// contributor addresses) with keys in sorted order, so the notification
// schedule is deterministic regardless of which process swept the store.
func encodeNotifyMap(notify map[string][]string) []byte {
	keys := make([]string, 0, len(notify))
	for k := range notify {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		addrs := notify[k]
		buf = binary.AppendUvarint(buf, uint64(len(addrs)))
		for _, a := range addrs {
			buf = binary.AppendUvarint(buf, uint64(len(a)))
			buf = append(buf, a...)
		}
	}
	return buf
}

// DecodeNotifyMap parses a SvcClassify response.
func DecodeNotifyMap(buf []byte) (map[string][]string, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 || n > uint64(len(buf)) {
		return nil, errCorruptRPC
	}
	readStr := func() (string, bool) {
		l, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || uint64(len(buf)-off-sz) < l {
			return "", false
		}
		off += sz
		s := string(buf[off : off+int(l)])
		off += int(l)
		return s, true
	}
	out := make(map[string][]string, n)
	for i := uint64(0); i < n; i++ {
		key, ok := readStr()
		if !ok {
			return nil, errCorruptRPC
		}
		na, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || na > uint64(len(buf)) {
			return nil, errCorruptRPC
		}
		off += sz
		addrs := make([]string, 0, na)
		for j := uint64(0); j < na; j++ {
			a, ok := readStr()
			if !ok {
				return nil, errCorruptRPC
			}
			addrs = append(addrs, a)
		}
		out[key] = addrs
	}
	if off != len(buf) {
		return nil, errCorruptRPC
	}
	return out, nil
}

// DecodeEntryInfoResp parses a SvcEntryInfo response into the replica
// fingerprint contract: (version, resident).
func DecodeEntryInfoResp(resp []byte) (int, bool, error) {
	if len(resp) == 0 {
		return 0, false, errCorruptRPC
	}
	if resp[0] == 0 {
		if len(resp) != 1 {
			return 0, false, errCorruptRPC
		}
		return 0, false, nil
	}
	df, n := binary.Uvarint(resp[1:])
	if n <= 0 || 1+n != len(resp) {
		return 0, false, errCorruptRPC
	}
	return int(df), true, nil
}

// DecodeEntryExportResp parses a SvcEntryExport response into the repair
// snapshot contract: (blob, resident).
func DecodeEntryExportResp(resp []byte) ([]byte, bool, error) {
	if len(resp) == 0 {
		return nil, false, errCorruptRPC
	}
	if resp[0] == 0 {
		if len(resp) != 1 {
			return nil, false, errCorruptRPC
		}
		return nil, false, nil
	}
	return resp[1:], true, nil
}

// StoreStats is one index node's resident footprint, as answered by
// SvcStats.
type StoreStats struct {
	PostsBySize [MaxKeySize + 1]int
	KeysBySize  [MaxKeySize + 1]int
}

// PostsTotal sums resident postings across key sizes.
func (s StoreStats) PostsTotal() int {
	t := 0
	for _, v := range s.PostsBySize {
		t += v
	}
	return t
}

// KeysTotal sums resident keys across key sizes.
func (s StoreStats) KeysTotal() int {
	t := 0
	for _, v := range s.KeysBySize {
		t += v
	}
	return t
}

// DecodeStoreStats parses a SvcStats response.
func DecodeStoreStats(resp []byte) (StoreStats, error) {
	var st StoreStats
	maxSize, off := binary.Uvarint(resp)
	if off <= 0 || maxSize != MaxKeySize {
		return st, errCorruptRPC
	}
	for i := 0; i <= MaxKeySize; i++ {
		v, n := binary.Uvarint(resp[off:])
		if n <= 0 {
			return st, errCorruptRPC
		}
		st.PostsBySize[i] = int(v)
		off += n
	}
	for i := 0; i <= MaxKeySize; i++ {
		v, n := binary.Uvarint(resp[off:])
		if n <= 0 {
			return st, errCorruptRPC
		}
		st.KeysBySize[i] = int(v)
		off += n
	}
	if off != len(resp) {
		return st, errCorruptRPC
	}
	return st, nil
}
