package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/durable"
	"repro/internal/overlay"
	"repro/internal/postings"
	"repro/internal/replica"
	"repro/internal/transport"
)

// This file hosts the server side of the HDK index as a standalone unit:
// every RPC service an index node answers, registered onto any
// overlay.Member. The in-process Engine attaches stores through the same
// registration, so a store served by the hdknode daemon in another OS
// process and a store living inside the Engine execute literally the same
// handler code — the cross-process deployment cannot drift from the
// simulated one.

// Exported index service names. The multi-process cluster client invokes
// these on daemon members; the Engine uses them for stores it does not
// host locally.
const (
	// SvcClassify runs one classification sweep (request: uvarint key
	// size) and returns the newly non-discriminative keys with their
	// contributor addresses (the notify map).
	SvcClassify = "hdk.classify"
	// SvcKeys returns the store's resident keys (repair inventory).
	SvcKeys = "hdk.keys"
	// SvcEntryInfo returns a resident entry's replica fingerprint.
	SvcEntryInfo = "hdk.entryInfo"
	// SvcEntryExport returns a resident entry's repair snapshot.
	SvcEntryExport = "hdk.entryExport"
	// SvcStats returns resident posting/key counts per key size.
	SvcStats = "hdk.stats"
)

// Durable record kinds the store server logs and replays. The "op"
// kinds carry the raw mutation RPC payload — replay re-executes the
// exact handler logic, so a replayed store is byte-identical to the one
// that logged the ops; DurableEntry carries a (key, canonical entry
// export) snapshot cell.
const (
	DurableOpInsert   = "insert"
	DurableOpClassify = "classify"
	DurableOpRepair   = "repair"
	DurableEntry      = "entry"
)

// StoreServer hosts one overlay member's fraction of the global HDK
// index outside an Engine — the daemon-side building block of the
// multi-process deployment: cmd/hdknode creates one per process and
// attaches it to its cluster membership identity. With persistence
// enabled (EnablePersistence) every index mutation is written through to
// a durable op log and periodically compacted into a full-store
// snapshot, so a restarted process can rebuild its exact store fraction
// from disk instead of re-running the distributed build.
type StoreServer struct {
	cfg   Config
	store *hdkStore

	// Persistence state. pmu orders mutations+appends (read side)
	// against compaction (write side): a mutation is fully in either the
	// pre-compaction log or the snapshot, never both and never neither.
	pmu       sync.RWMutex
	dur       *durable.Store
	durHeader func(emit func(kind string, payload []byte) error) error

	// onMutate, when set, runs after every successfully served mutation
	// (insert/classify/repair) — the write-through hook the cluster
	// daemon uses to invalidate its query-result cache. Set before
	// Attach; replayed durable records do not fire it (recovery precedes
	// serving, so there is nothing cached to invalidate).
	onMutate func()
}

// NewStoreServer validates the configuration and creates an empty store.
// The configuration must equal the building client's engine configuration
// (the cluster control plane ships it before the build), since the store
// applies DFmax classification and idf scoring server-side.
func NewStoreServer(cfg Config) (*StoreServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &StoreServer{cfg: cfg}
	s.store = newHDKStore(&s.cfg)
	return s, nil
}

// EnablePersistence attaches a durable store: every subsequent mutation
// served through Attach'd handlers is appended to its op log, and the
// log is compacted into a fresh full-store snapshot when it crosses the
// durable store's threshold. header, when non-nil, contributes leading
// snapshot records (the cluster daemon persists its configuration
// payload this way, so one file sequence restores the whole process
// state). Call before Attach and before serving traffic.
func (s *StoreServer) EnablePersistence(d *durable.Store, header func(emit func(kind string, payload []byte) error) error) {
	s.pmu.Lock()
	s.dur = d
	s.durHeader = header
	s.pmu.Unlock()
}

// OnMutation registers a hook invoked after every successfully served
// mutating RPC (insert, classify sweep, repair import) — regardless of
// whether persistence is enabled. The cluster daemon hangs its
// query-result cache invalidation here, so a coordinator can never
// serve a cached answer across an index change it has itself applied.
// Call before Attach; not safe to change while serving.
func (s *StoreServer) OnMutation(fn func()) { s.onMutate = fn }

// AttachLocalRead registers the read-side index services on a
// CLIENT-side member stub: a daemon coordinating queries attaches its
// own store this way on its self-member, so fetches the coordinator
// owns are answered in-process instead of via a loopback RPC to its own
// socket. Mutations are deliberately not attachable here — they must
// flow through the daemon's dispatch to be metered, logged and to fire
// the mutation hook.
func (s *StoreServer) AttachLocalRead(m overlay.Member) {
	m.Handle(SvcFetchBatch, func(req []byte) ([]byte, error) {
		keys, err := decodeFetchBatchReq(req)
		if err != nil {
			return nil, err
		}
		return s.store.fetchBatchWire(keys), nil
	})
}

// ReplayRecord applies one recovered durable record: a snapshot entry
// cell installs the entry verbatim; an op record re-executes the logged
// mutation RPC. Nothing is re-logged — the records already are the log.
func (s *StoreServer) ReplayRecord(kind string, payload []byte) error {
	switch kind {
	case DurableEntry:
		key, blob, err := decodeEntryRecord(payload)
		if err != nil {
			return err
		}
		return s.store.restoreEntry(key, blob)
	case DurableOpInsert:
		_, err := storeInsert(s.store, payload)
		return err
	case DurableOpClassify:
		_, err := storeClassify(s.store, payload)
		return err
	case DurableOpRepair:
		_, err := storeRepair(s.store, payload)
		return err
	}
	return fmt.Errorf("core: unknown durable record kind %q", kind)
}

// CompactNow forces the op log into a fresh snapshot (the
// graceful-shutdown path: a warm restart then replays zero ops). A no-op
// without persistence.
func (s *StoreServer) CompactNow() error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.dur == nil {
		return nil
	}
	return s.compactLocked()
}

// maybeCompact folds the log into a snapshot once it crosses the
// threshold. Called after appends, outside the read lock.
func (s *StoreServer) maybeCompact() {
	if s.dur == nil || !s.dur.ShouldCompact() {
		return
	}
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if !s.dur.ShouldCompact() { // raced with another compaction
		return
	}
	// A failed compaction is non-fatal: the op log remains authoritative
	// and keeps growing, and the next threshold crossing retries.
	s.compactLocked()
}

func (s *StoreServer) compactLocked() error {
	return s.dur.Compact(func(emit func(kind string, payload []byte) error) error {
		if s.durHeader != nil {
			if err := s.durHeader(emit); err != nil {
				return err
			}
		}
		return s.store.exportAll(func(key string, blob []byte) error {
			return emit(DurableEntry, encodeEntryRecord(key, blob))
		})
	})
}

// runLogged executes one mutating handler body and, on success, appends
// its raw request to the durable op log under the read side of pmu — so
// a concurrent compaction can never observe a mutation without its log
// record or vice versa. A log-append failure fails the RPC loudly: the
// in-memory store is then ahead of disk, and the operator must treat the
// data directory as stale (restart the daemon) rather than trust it.
func (s *StoreServer) runLogged(kind string, req []byte, body func([]byte) ([]byte, error)) ([]byte, error) {
	s.pmu.RLock()
	resp, err := body(req)
	if err == nil && s.dur != nil {
		if lerr := s.dur.Append(kind, req); lerr != nil {
			s.pmu.RUnlock()
			return nil, fmt.Errorf("core: durable append after %s: %w", kind, lerr)
		}
	}
	s.pmu.RUnlock()
	if err == nil {
		if s.onMutate != nil {
			s.onMutate()
		}
		s.maybeCompact()
	}
	return resp, err
}

// persistHooks couples attachIndexServices' mutating handlers to a
// write-ahead-style op log. A nil hooks value attaches the plain
// in-memory handlers (the Engine's in-process stores).
type persistHooks interface {
	runLogged(kind string, req []byte, body func([]byte) ([]byte, error)) ([]byte, error)
}

// Attach registers every index service on the member, with mutations
// written through to the durable log when persistence is enabled.
func (s *StoreServer) Attach(m overlay.Member) { attachIndexServices(m, s.store, s) }

// Config returns the configuration the store classifies and scores with.
func (s *StoreServer) Config() Config { return s.cfg }

// Populated reports whether the store holds any index entries — i.e. a
// build already ran against it.
func (s *StoreServer) Populated() bool { return s.store.keyCount() > 0 }

// KeyCount returns the number of resident keys.
func (s *StoreServer) KeyCount() int { return s.store.keyCount() }

// StoredBySize returns resident posting and key counts per key size.
func (s *StoreServer) StoredBySize() (posts, keys []int) {
	return s.store.storedBySize(MaxKeySize)
}

// storeInsert is the hdk.insert handler body. The response reports, for
// keys already classified, their global status: new contributors of
// existing NDKs must learn the classification to drive their expansions.
func storeInsert(store *hdkStore, req []byte) ([]byte, error) {
	contributor, batch, err := decodeInsertReq(req)
	if err != nil {
		return nil, err
	}
	var classified []postings.KeyedMessage
	for _, m := range batch {
		status, isClassified := store.insert(m.Key, int(m.Aux), m.List, contributor)
		if isClassified {
			classified = append(classified, postings.KeyedMessage{Key: m.Key, Aux: uint64(status)})
		}
	}
	return postings.EncodeKeyedBatch(nil, classified), nil
}

// storeClassify is the hdk.classify handler body.
func storeClassify(store *hdkStore, req []byte) ([]byte, error) {
	size, n := binary.Uvarint(req)
	if n <= 0 || size < 1 || size > MaxKeySize {
		return nil, errCorruptRPC
	}
	return encodeNotifyMap(store.classifySweep(int(size))), nil
}

// storeRepair is the replica.repair handler body.
func storeRepair(store *hdkStore, req []byte) ([]byte, error) {
	items, err := replica.DecodeBatch(req)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		if _, err := store.importEntry(it.Key, it.Blob); err != nil {
			return nil, fmt.Errorf("core: repair import %q: %w", it.Key, err)
		}
	}
	return nil, nil
}

// attachIndexServices registers the full index-node RPC surface for one
// store on an overlay member. Shared by Engine.attachStore (in-process
// stores, no persistence) and StoreServer.Attach (which threads its
// persist hooks through, so daemon-hosted and in-proc StoreServers run
// the same write-through code path). The three mutating services
// (insert, classify, repair) are the ones logged; reads never touch the
// log.
func attachIndexServices(node overlay.Member, store *hdkStore, hooks persistHooks) {
	logged := func(kind string, body func(*hdkStore, []byte) ([]byte, error)) transport.Handler {
		if hooks == nil {
			return func(req []byte) ([]byte, error) { return body(store, req) }
		}
		return func(req []byte) ([]byte, error) {
			return hooks.runLogged(kind, req, func(r []byte) ([]byte, error) { return body(store, r) })
		}
	}
	node.Handle(SvcInsert, logged(DurableOpInsert, storeInsert))
	node.Handle(SvcClassify, logged(DurableOpClassify, storeClassify))
	node.Handle(replica.Service, logged(DurableOpRepair, storeRepair))
	node.Handle(SvcFetchBatch, func(req []byte) ([]byte, error) {
		keys, err := decodeFetchBatchReq(req)
		if err != nil {
			return nil, err
		}
		return store.fetchBatchWire(keys), nil
	})
	node.Handle(SvcKeys, func(req []byte) ([]byte, error) {
		return postings.EncodeKeyList(nil, store.keyList()), nil
	})
	node.Handle(SvcEntryInfo, func(req []byte) ([]byte, error) {
		fp, ok := store.entryFingerprint(string(req))
		if !ok {
			return []byte{0}, nil
		}
		buf := binary.AppendUvarint([]byte{1}, uint64(fp.Version))
		return binary.AppendUvarint(buf, fp.Sum), nil
	})
	node.Handle(SvcEntryExport, func(req []byte) ([]byte, error) {
		blob, ok := store.exportEntry(string(req))
		if !ok {
			return []byte{0}, nil
		}
		return append([]byte{1}, blob...), nil
	})
	node.Handle(SvcStats, func(req []byte) ([]byte, error) {
		posts, keys := store.storedBySize(MaxKeySize)
		buf := binary.AppendUvarint(nil, uint64(MaxKeySize))
		for _, v := range posts {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
		for _, v := range keys {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
		return buf, nil
	})
}

// encodeEntryRecord frames a durable snapshot cell: uvarint key length,
// key, canonical entry export blob.
func encodeEntryRecord(key string, blob []byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(key)))
	buf = append(buf, key...)
	return append(buf, blob...)
}

// decodeEntryRecord splits a durable snapshot cell back into key + blob.
func decodeEntryRecord(payload []byte) (string, []byte, error) {
	kl, n := binary.Uvarint(payload)
	if n <= 0 || kl > uint64(len(payload)-n) {
		return "", nil, errCorruptRPC
	}
	return string(payload[n : n+int(kl)]), payload[n+int(kl):], nil
}

// RemoteInventory implements replica.Inventory over the index inventory
// RPCs (SvcKeys/SvcEntryInfo/SvcEntryExport) through any service caller
// — the single definition of the inventory wire contract, shared by the
// engine's repair sweep (for members whose stores live in other
// processes) and the cluster client's engine-free Repairer. A member
// whose daemon is unreachable or answers garbage reports no resident
// keys, exactly the semantics a post-crash sweep needs.
type RemoteInventory struct {
	Call func(addr, service string, req []byte) ([]byte, error)
}

// Keys implements replica.Inventory.
func (ri RemoteInventory) Keys(m overlay.Member) []string {
	raw, err := ri.Call(m.Addr(), SvcKeys, nil)
	if err != nil {
		return nil
	}
	keys, err := postings.DecodeKeyList(raw)
	if err != nil {
		return nil
	}
	return keys
}

// Fingerprint implements replica.Inventory.
func (ri RemoteInventory) Fingerprint(m overlay.Member, key string) (replica.Fingerprint, bool) {
	raw, err := ri.Call(m.Addr(), SvcEntryInfo, []byte(key))
	if err != nil {
		return replica.Fingerprint{}, false
	}
	fp, ok, err := DecodeEntryInfoResp(raw)
	if err != nil {
		return replica.Fingerprint{}, false
	}
	return fp, ok
}

// Export implements replica.Inventory.
func (ri RemoteInventory) Export(m overlay.Member, key string) ([]byte, bool) {
	raw, err := ri.Call(m.Addr(), SvcEntryExport, []byte(key))
	if err != nil {
		return nil, false
	}
	blob, ok, err := DecodeEntryExportResp(raw)
	if err != nil {
		return nil, false
	}
	return blob, ok
}

var _ replica.Inventory = RemoteInventory{}

// EncodeClassifyReq builds a SvcClassify request for one key size.
func EncodeClassifyReq(size int) []byte {
	return binary.AppendUvarint(nil, uint64(size))
}

// encodeNotifyMap serializes a classify sweep's notify map (key →
// contributor addresses) with keys in sorted order, so the notification
// schedule is deterministic regardless of which process swept the store.
func encodeNotifyMap(notify map[string][]string) []byte {
	keys := make([]string, 0, len(notify))
	for k := range notify {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		addrs := notify[k]
		buf = binary.AppendUvarint(buf, uint64(len(addrs)))
		for _, a := range addrs {
			buf = binary.AppendUvarint(buf, uint64(len(a)))
			buf = append(buf, a...)
		}
	}
	return buf
}

// DecodeNotifyMap parses a SvcClassify response.
func DecodeNotifyMap(buf []byte) (map[string][]string, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 || n > uint64(len(buf)) {
		return nil, errCorruptRPC
	}
	readStr := func() (string, bool) {
		l, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || uint64(len(buf)-off-sz) < l {
			return "", false
		}
		off += sz
		s := string(buf[off : off+int(l)])
		off += int(l)
		return s, true
	}
	out := make(map[string][]string, n)
	for i := uint64(0); i < n; i++ {
		key, ok := readStr()
		if !ok {
			return nil, errCorruptRPC
		}
		na, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || na > uint64(len(buf)) {
			return nil, errCorruptRPC
		}
		off += sz
		addrs := make([]string, 0, na)
		for j := uint64(0); j < na; j++ {
			a, ok := readStr()
			if !ok {
				return nil, errCorruptRPC
			}
			addrs = append(addrs, a)
		}
		out[key] = addrs
	}
	if off != len(buf) {
		return nil, errCorruptRPC
	}
	return out, nil
}

// DecodeEntryInfoResp parses a SvcEntryInfo response into the replica
// fingerprint contract: (fingerprint, resident). The wire form is a
// presence byte followed by the uvarint df and the uvarint content
// checksum.
func DecodeEntryInfoResp(resp []byte) (replica.Fingerprint, bool, error) {
	var fp replica.Fingerprint
	if len(resp) == 0 {
		return fp, false, errCorruptRPC
	}
	if resp[0] == 0 {
		if len(resp) != 1 {
			return fp, false, errCorruptRPC
		}
		return fp, false, nil
	}
	df, n := binary.Uvarint(resp[1:])
	if n <= 0 {
		return fp, false, errCorruptRPC
	}
	sum, m := binary.Uvarint(resp[1+n:])
	if m <= 0 || 1+n+m != len(resp) {
		return fp, false, errCorruptRPC
	}
	return replica.Fingerprint{Version: int(df), Sum: sum}, true, nil
}

// DecodeEntryExportResp parses a SvcEntryExport response into the repair
// snapshot contract: (blob, resident).
func DecodeEntryExportResp(resp []byte) ([]byte, bool, error) {
	if len(resp) == 0 {
		return nil, false, errCorruptRPC
	}
	if resp[0] == 0 {
		if len(resp) != 1 {
			return nil, false, errCorruptRPC
		}
		return nil, false, nil
	}
	return resp[1:], true, nil
}

// StoreStats is one index node's resident footprint, as answered by
// SvcStats.
type StoreStats struct {
	PostsBySize [MaxKeySize + 1]int
	KeysBySize  [MaxKeySize + 1]int
}

// PostsTotal sums resident postings across key sizes.
func (s StoreStats) PostsTotal() int {
	t := 0
	for _, v := range s.PostsBySize {
		t += v
	}
	return t
}

// KeysTotal sums resident keys across key sizes.
func (s StoreStats) KeysTotal() int {
	t := 0
	for _, v := range s.KeysBySize {
		t += v
	}
	return t
}

// DecodeStoreStats parses a SvcStats response.
func DecodeStoreStats(resp []byte) (StoreStats, error) {
	var st StoreStats
	maxSize, off := binary.Uvarint(resp)
	if off <= 0 || maxSize != MaxKeySize {
		return st, errCorruptRPC
	}
	for i := 0; i <= MaxKeySize; i++ {
		v, n := binary.Uvarint(resp[off:])
		if n <= 0 {
			return st, errCorruptRPC
		}
		st.PostsBySize[i] = int(v)
		off += n
	}
	for i := 0; i <= MaxKeySize; i++ {
		v, n := binary.Uvarint(resp[off:])
		if n <= 0 {
			return st, errCorruptRPC
		}
		st.KeysBySize[i] = int(v)
		off += n
	}
	if off != len(resp) {
		return st, errCorruptRPC
	}
	return st, nil
}
