package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/replica"
	"repro/internal/transport"
)

// buildReplicatedEngine assembles an engine with the given replication
// factor over a reliable in-process transport.
func buildReplicatedEngine(t *testing.T, col *corpus.Collection, peers, r int, cfg Config) *Engine {
	t.Helper()
	cfg.ReplicationFactor = r
	eng := buildEngine(t, col, peers, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestReplicatedBuildCoverage(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 6)
	single := buildReplicatedEngine(t, col, 6, 1, cfg)
	triple := buildReplicatedEngine(t, col, 6, 3, cfg)

	// Every key must sit on exactly its 3 replica owners, nowhere else.
	audit := triple.AuditReplicas()
	if !audit.FullyReplicated() {
		t.Fatalf("replicated build under-replicated: %+v", audit)
	}
	s1, s3 := single.Stats(), triple.Stats()
	if s3.KeysTotal != 3*s1.KeysTotal {
		t.Fatalf("key placements: %d at R=3 vs %d at R=1, want exactly 3x", s3.KeysTotal, s1.KeysTotal)
	}
	if s3.StoredTotal != 3*s1.StoredTotal {
		t.Fatalf("stored postings: %d at R=3 vs %d at R=1, want exactly 3x", s3.StoredTotal, s1.StoredTotal)
	}
	t1, t3 := single.Traffic().Snapshot(), triple.Traffic().Snapshot()
	if t3.InsertedTotal != 3*t1.InsertedTotal {
		t.Fatalf("insert traffic: %d at R=3 vs %d at R=1, want exactly 3x", t3.InsertedTotal, t1.InsertedTotal)
	}

	// Replica stores must answer identically to the primary: the ranked
	// results are the same whichever engine serves the query.
	want := searchAll(t, single, col, 15)
	got := searchAll(t, triple, col, 15)
	assertSameResults(t, want, got, "replicated search")
}

func TestReplicationCappedAtOverlaySize(t *testing.T) {
	col := testCollection(t, 30)
	cfg := testConfig(col, 5)
	eng := buildReplicatedEngine(t, col, 3, 5, cfg) // R=5 > 3 nodes
	audit := eng.AuditReplicas()
	if !audit.FullyReplicated() {
		t.Fatalf("capped replication under-replicated: %+v", audit)
	}
	st := eng.Stats()
	if st.KeysTotal%3 != 0 {
		t.Fatalf("expected every key on all 3 nodes, got %d placements", st.KeysTotal)
	}
}

func TestSearchSurvivesNodeCrash(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	const peers, queries = 8, 25

	// R=2: crash one node, the ranked answers must be identical — Chord
	// promotes the old second replica to primary, which holds the data.
	eng := buildReplicatedEngine(t, col, peers, 2, cfg)
	before := searchAll(t, eng, col, queries)
	victim := eng.net.Members()[1]
	if err := eng.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	after := searchAll(t, eng, col, queries)
	assertSameResults(t, before, after, "crash at R=2")

	// R=1 control: the same crash measurably loses results.
	ctl := buildReplicatedEngine(t, col, peers, 1, cfg)
	ctlBefore := searchAll(t, ctl, col, queries)
	if err := ctl.FailNode(ctl.net.Members()[1]); err != nil {
		t.Fatal(err)
	}
	ctlAfter := searchAll(t, ctl, col, queries)
	lost := 0
	for i := range ctlBefore {
		if len(ctlAfter[i]) < len(ctlBefore[i]) {
			lost++
			continue
		}
		for j := range ctlBefore[i] {
			if ctlBefore[i][j].Doc != ctlAfter[i][j].Doc {
				lost++
				break
			}
		}
	}
	if lost == 0 {
		t.Fatal("R=1 crash lost nothing — the control proves nothing")
	}
}

// fetchBlocker wraps a transport and, once armed, fails every batched
// fetch RPC addressed to one victim node with a hard (non-transient)
// error, counting the blocked calls — the "reachable in the ring but not
// serving" failure mode that exercises search failover.
type fetchBlocker struct {
	transport.Transport
	victim string

	mu      sync.Mutex
	armed   bool
	blocked int
}

func (b *fetchBlocker) Call(addr string, req []byte) ([]byte, error) {
	b.mu.Lock()
	armed := b.armed
	b.mu.Unlock()
	if armed && addr == b.victim {
		if svc, _, err := overlay.DecodeEnvelope(req); err == nil && svc == SvcFetchBatch {
			b.mu.Lock()
			b.blocked++
			b.mu.Unlock()
			return nil, fmt.Errorf("injected fetch failure at %s", addr)
		}
	}
	return b.Transport.Call(addr, req)
}

func (b *fetchBlocker) arm() {
	b.mu.Lock()
	b.armed = true
	b.mu.Unlock()
}

func (b *fetchBlocker) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.blocked
}

func TestSearchFailoverGroundTruth(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	cfg.ReplicationFactor = 2
	const peers, queries = 6, 20

	blocker := &fetchBlocker{Transport: transport.NewInProc()}
	net := overlay.NewNetwork(blocker)
	nodes := make([]*overlay.Node, peers)
	for i := range nodes {
		n, err := net.AddNode(fmt.Sprintf("peer-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	eng, err := NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range col.SplitRoundRobin(peers) {
		if _, err := eng.AddPeer(nodes[i], part); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	before := searchAll(t, eng, col, queries)

	// Block fetches at one node and re-run: every answer must be served
	// by the second replica, bit-identically.
	blocker.victim = nodes[3].Addr()
	blocker.arm()
	failovers := 0
	from := eng.net.Members()[0]
	for i := 0; i < queries; i++ {
		q := corpus.Query{Terms: col.Docs[i].Terms[:2]}
		res, err := eng.Search(q, from, 20)
		if err != nil {
			t.Fatalf("query %d failed despite a live replica: %v", i, err)
		}
		failovers += res.Failovers
		for j := range before[i] {
			if before[i][j].Doc != res.Results[j].Doc {
				t.Fatalf("query %d rank %d: doc %d after failover, want %d",
					i, j, res.Results[j].Doc, before[i][j].Doc)
			}
		}
		if len(res.Results) != len(before[i]) {
			t.Fatalf("query %d: %d results after failover, want %d", i, len(res.Results), len(before[i]))
		}
	}
	// Ground truth: every blocked batch triggered exactly one re-send to
	// the next replica, and nothing else did.
	if failovers == 0 {
		t.Fatal("victim never owned a probed key — test proves nothing")
	}
	if got := blocker.count(); failovers != got {
		t.Fatalf("Failovers counted %d, transport blocked %d fetch batches", failovers, got)
	}
	if total := eng.Traffic().Snapshot().SearchFailovers; total != uint64(failovers) {
		t.Fatalf("Traffic.SearchFailovers %d, per-query sum %d", total, failovers)
	}
}

// gatedFlaky keeps the transport reliable until armed, then injects the
// wrapped Flaky's drop rate — flakiness confined to the query phase (the
// round-synchronous build intentionally has no write-path failover).
type gatedFlaky struct {
	*transport.Flaky
	inner transport.Transport

	mu    sync.Mutex
	armed bool
}

func (g *gatedFlaky) Call(addr string, req []byte) ([]byte, error) {
	g.mu.Lock()
	armed := g.armed
	g.mu.Unlock()
	if armed {
		return g.Flaky.Call(addr, req)
	}
	return g.inner.Call(addr, req)
}

func (g *gatedFlaky) arm() {
	g.mu.Lock()
	g.armed = true
	g.mu.Unlock()
}

func TestSearchFailoverUnderFlakyTransport(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 6)
	cfg.ReplicationFactor = 2

	reliable := buildReplicatedEngine(t, col, 5, 2, testConfig(col, 6))
	want := searchAll(t, reliable, col, 15)

	// 60% drop rate once armed: routing and fetches fail sporadically
	// even after transport retries; ground-truth route fallback and
	// replica failover must keep answers identical.
	inner := transport.NewInProc()
	flaky, err := transport.NewFlaky(inner, 0.60, 7)
	if err != nil {
		t.Fatal(err)
	}
	gated := &gatedFlaky{Flaky: flaky, inner: inner}
	net := overlay.NewNetwork(gated)
	nodes := make([]*overlay.Node, 5)
	for i := range nodes {
		if nodes[i], err = net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range col.SplitRoundRobin(5) {
		if _, err := eng.AddPeer(nodes[i], part); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	gated.arm()
	got := searchAll(t, eng, col, 15)
	assertSameResults(t, want, got, "flaky transport at R=2")
	if flaky.Dropped() == 0 {
		t.Fatal("failure injection inactive — test proves nothing")
	}
}

func TestRepairRestoresCoverage(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	const peers = 9
	eng := buildReplicatedEngine(t, col, peers, 3, cfg)
	before := searchAll(t, eng, col, 15)

	// Crash two non-adjacent nodes: every key keeps at least one live
	// replica, but its current 3-member replica set has holes.
	members := eng.net.Members()
	for _, i := range []int{1, 4} {
		if err := eng.FailNode(members[i]); err != nil {
			t.Fatal(err)
		}
	}
	audit := eng.AuditReplicas()
	if audit.UnderReplicated == 0 {
		t.Fatal("crashes left coverage intact — test proves nothing")
	}

	insertedBefore := eng.Traffic().Snapshot().InsertedTotal
	stats, err := eng.RepairReplicas()
	if err != nil {
		t.Fatal(err)
	}
	if stats.CopiesSent == 0 || stats.RepairRPCs == 0 {
		t.Fatalf("repair shipped nothing: %+v", stats)
	}
	if stats.UnderReplicated != audit.UnderReplicated {
		t.Fatalf("repair saw %d under-replicated keys, audit saw %d",
			stats.UnderReplicated, audit.UnderReplicated)
	}

	// Store-sweep assertion: coverage is fully restored...
	after := eng.AuditReplicas()
	if !after.FullyReplicated() {
		t.Fatalf("repair left %d keys under-replicated (%d copies missing)",
			after.UnderReplicated, after.MissingCopies)
	}
	// ...without a rebuild: repair ships snapshots over replica.repair,
	// never through the insert path.
	if got := eng.Traffic().Snapshot().InsertedTotal; got != insertedBefore {
		t.Fatalf("repair re-ran the build: inserted postings %d -> %d", insertedBefore, got)
	}
	// And the index still answers identically.
	assertSameResults(t, before, searchAll(t, eng, col, 15), "post-repair")

	// A second repair is a no-op.
	again, err := eng.RepairReplicas()
	if err != nil {
		t.Fatal(err)
	}
	if again.CopiesSent != 0 {
		t.Fatalf("idempotent repair still shipped %d copies", again.CopiesSent)
	}
}

// TestRepairHealsDivergedReplica covers the churn+update divergence: a
// node promoted into a key's replica set by a crash, then fed only
// post-crash postings by an incremental update, holds a PARTIAL copy of
// the key. Mere key presence would hide it from the sweep; the df
// fingerprint must flag it and repair must overwrite it with the full
// copy.
func TestRepairHealsDivergedReplica(t *testing.T) {
	col := testCollection(t, 60)
	grown := col.Slice(0, 40)
	cfg := testConfig(col, 6)
	cfg.ReplicationFactor = 2
	eng := buildEngine(t, grown, 6, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	// Crash a node, then grow the collection WITHOUT repairing first:
	// the update fans new postings to post-crash replica sets, creating
	// fresh partial entries on newly-responsible members.
	if err := eng.FailNode(eng.net.Members()[2]); err != nil {
		t.Fatal(err)
	}
	if err := eng.peers[0].AddDocuments(col.Slice(40, 60)); err != nil {
		t.Fatal(err)
	}
	if err := eng.UpdateIndex(); err != nil {
		t.Fatal(err)
	}
	rstats, err := eng.RepairReplicas()
	if err != nil {
		t.Fatal(err)
	}
	if rstats.CopiesSent == 0 {
		t.Fatal("churn+update produced nothing to heal — test proves nothing")
	}
	audit := eng.AuditReplicas()
	if !audit.FullyReplicated() {
		t.Fatalf("repair left holes after churn+update: %+v", audit)
	}
	// Every key's copies must agree on the full fingerprint (df AND
	// content checksum) across its whole replica set — a diverged partial
	// replica would serve wrong scores on failover.
	for _, m := range eng.net.Members() {
		store := eng.stores[m.ID()]
		for _, key := range store.keyList() {
			fp, _ := store.entryFingerprint(key)
			for _, owner := range replica.Owners(eng.net, key, eng.replicas()) {
				ofp, ok := eng.stores[owner.ID()].entryFingerprint(key)
				if !ok || ofp != fp {
					t.Fatalf("key %q: replica fingerprint %+v (present %v) != %+v — diverged copy survived repair",
						key, ofp, ok, fp)
				}
			}
		}
	}
}

func TestUpdateIndexMaintainsReplication(t *testing.T) {
	col := testCollection(t, 60)
	grown := col.Slice(0, 40)
	cfg := testConfig(col, 6)
	cfg.ReplicationFactor = 2
	eng := buildEngine(t, grown, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	// Stage the remaining documents on peer 0 and update incrementally.
	tail := col.Slice(40, 60)
	if err := eng.peers[0].AddDocuments(tail); err != nil {
		t.Fatal(err)
	}
	if err := eng.UpdateIndex(); err != nil {
		t.Fatal(err)
	}
	audit := eng.AuditReplicas()
	if !audit.FullyReplicated() {
		t.Fatalf("incremental update broke replication: %+v", audit)
	}
}

func TestGracefulLeavePreservesReplication(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 6)
	eng := buildReplicatedEngine(t, col, 6, 2, cfg)
	before := searchAll(t, eng, col, 12)

	if err := eng.RemoveNode(eng.net.Members()[2]); err != nil {
		t.Fatal(err)
	}
	audit := eng.AuditReplicas()
	if !audit.FullyReplicated() {
		t.Fatalf("graceful leave broke replication: %+v", audit)
	}
	assertSameResults(t, before, searchAll(t, eng, col, 12), "graceful leave at R=2")
}

func TestRebalancePreservesReplicas(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 6)
	eng := buildReplicatedEngine(t, col, 4, 2, cfg)
	before := searchAll(t, eng, col, 12)

	// Two nodes join; ownership shifts, replicas must follow, not
	// collapse onto primaries.
	for i := 0; i < 2; i++ {
		node, err := eng.net.(*overlay.Network).AddNode(string(rune('x'+i)) + "-joiner")
		if err != nil {
			t.Fatal(err)
		}
		eng.attachStore(node)
	}
	moved, err := eng.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("no entries moved after 2 joins — implausible")
	}
	// Rebalance evicts copies from no-longer-responsible nodes and seeds
	// the new owners; a repair pass fills any remaining holes.
	if _, err := eng.RepairReplicas(); err != nil {
		t.Fatal(err)
	}
	audit := eng.AuditReplicas()
	if !audit.FullyReplicated() {
		t.Fatalf("rebalance broke replication: %+v", audit)
	}
	// No entry may sit on a node outside its replica set.
	for id, store := range eng.stores {
		for _, key := range store.keyList() {
			if !inReplicaSet(id, replica.Owners(eng.net, key, eng.replicas())) {
				t.Fatalf("key %q resident outside its replica set after rebalance", key)
			}
		}
	}
	assertSameResults(t, before, searchAll(t, eng, col, 12), "rebalance at R=2")
}

func TestExportImportReplicated(t *testing.T) {
	col := testCollection(t, 40)
	cfg := testConfig(col, 5)
	eng := buildReplicatedEngine(t, col, 5, 2, cfg)
	before := searchAll(t, eng, col, 12)

	var buf bytes.Buffer
	if err := eng.ExportIndex(&buf); err != nil {
		t.Fatal(err)
	}
	// Import into a fresh replicated network of a different size.
	cfg2 := testConfig(col, 5)
	cfg2.ReplicationFactor = 2
	fresh := buildEngine(t, col, 7, cfg2)
	if err := fresh.ImportIndex(&buf); err != nil {
		t.Fatal(err)
	}
	audit := fresh.AuditReplicas()
	if !audit.FullyReplicated() {
		t.Fatalf("import left snapshot under-replicated: %+v", audit)
	}
	assertSameResults(t, before, searchAll(t, fresh, col, 12), "import at R=2")
}
