package core

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/transport"
)

// buildFlakyEngine assembles the engine over a transport that drops the
// given fraction of messages.
func buildFlakyEngine(t *testing.T, col *corpus.Collection, peers int, cfg Config, dropRate float64) (*Engine, *transport.Flaky) {
	t.Helper()
	inner := transport.NewInProc()
	flaky, err := transport.NewFlaky(inner, dropRate, 99)
	if err != nil {
		t.Fatal(err)
	}
	net := overlay.NewNetwork(flaky)
	nodes := make([]*overlay.Node, peers)
	for i := range nodes {
		n, err := net.AddNode(fmt.Sprintf("peer-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	eng, err := NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range col.SplitRoundRobin(peers) {
		if _, err := eng.AddPeer(nodes[i], part); err != nil {
			t.Fatal(err)
		}
	}
	return eng, flaky
}

func TestBuildIndexSurvivesMessageLoss(t *testing.T) {
	// 10% of all messages dropped (inserts, notifications, routing);
	// overlay-level retries must make the build converge to exactly the
	// state a reliable network produces.
	col := testCollection(t, 50)
	cfg := testConfig(col, 5)

	reliable := buildEngine(t, col, 4, cfg)
	if err := reliable.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	want := reliable.Stats()

	flakyEng, flaky := buildFlakyEngine(t, col, 4, cfg, 0.10)
	if err := flakyEng.BuildIndex(); err != nil {
		t.Fatalf("build failed under 10%% message loss: %v", err)
	}
	got := flakyEng.Stats()
	if flaky.Dropped() == 0 {
		t.Fatal("failure injection inactive — test proves nothing")
	}
	if got.StoredTotal != want.StoredTotal || got.KeysTotal != want.KeysTotal {
		t.Fatalf("flaky build diverged: stored %d vs %d, keys %d vs %d",
			got.StoredTotal, want.StoredTotal, got.KeysTotal, want.KeysTotal)
	}
	for s := 1; s <= cfg.SMax; s++ {
		if got.KeysBySize[s] != want.KeysBySize[s] {
			t.Fatalf("size %d: %d keys vs %d on reliable network",
				s, got.KeysBySize[s], want.KeysBySize[s])
		}
	}
}

func TestSearchSurvivesMessageLoss(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 5)
	eng, flaky := buildFlakyEngine(t, col, 4, cfg, 0.10)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	before := flaky.Dropped()
	nodes := eng.net.Members()
	for i := 0; i < 20; i++ {
		q := corpus.Query{Terms: col.Docs[i].Terms[:2]}
		if _, err := eng.Search(q, nodes[i%len(nodes)], 10); err != nil {
			t.Fatalf("query %d failed under message loss: %v", i, err)
		}
	}
	if flaky.Dropped() == before {
		t.Log("note: no drops during retrieval window (low volume) — build-phase drops still exercised the path")
	}
}

func TestQueryCacheEliminatesRepeatTraffic(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	eng.EnableQueryCache(1024)
	node := eng.net.Members()[0]
	q := corpus.Query{Terms: col.Docs[3].Terms[:3]}

	first, err := eng.Search(q, node, 20)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Search(q, node, 20)
	if err != nil {
		t.Fatal(err)
	}
	if second.FetchedPosts != 0 {
		t.Fatalf("repeat query fetched %d postings from the network, want 0 (cached)", second.FetchedPosts)
	}
	if len(first.Results) != len(second.Results) {
		t.Fatalf("cached result count differs: %d vs %d", len(first.Results), len(second.Results))
	}
	for i := range first.Results {
		if first.Results[i].Doc != second.Results[i].Doc {
			t.Fatalf("rank %d: cached doc %d != fresh doc %d",
				i, second.Results[i].Doc, first.Results[i].Doc)
		}
	}
	hits, _ := eng.QueryCacheStats()
	if hits == 0 {
		t.Fatal("cache reported no hits")
	}
}

func TestQueryCacheInvalidate(t *testing.T) {
	col := testCollection(t, 40)
	cfg := testConfig(col, 5)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	eng.EnableQueryCache(64)
	node := eng.net.Members()[0]
	q := corpus.Query{Terms: col.Docs[1].Terms[:2]}
	if _, err := eng.Search(q, node, 5); err != nil {
		t.Fatal(err)
	}
	eng.InvalidateQueryCache()
	res, err := eng.Search(q, node, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.FetchedPosts == 0 && res.FoundKeys > 0 {
		t.Fatal("invalidated cache still served postings")
	}
}

func TestQueryCacheDisabledByDefault(t *testing.T) {
	col := testCollection(t, 30)
	cfg := testConfig(col, 5)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if h, m := eng.QueryCacheStats(); h != 0 || m != 0 {
		t.Fatal("cache active without EnableQueryCache")
	}
}
