package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/durable"
	"repro/internal/overlay"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/replica"
	"repro/internal/transport"
)

// handlerMember is a minimal overlay.Member capturing service handlers,
// so store-server tests can invoke the exact registered handler bytes
// without a fabric.
type handlerMember struct {
	addr     string
	services map[string]transport.Handler
}

func newHandlerMember(addr string) *handlerMember {
	return &handlerMember{addr: addr, services: make(map[string]transport.Handler)}
}

func (m *handlerMember) ID() overlay.ID { return overlay.HashNode(m.addr) }
func (m *handlerMember) Addr() string   { return m.addr }
func (m *handlerMember) Handle(service string, h transport.Handler) {
	m.services[service] = h
}

func (m *handlerMember) call(t *testing.T, service string, req []byte) []byte {
	t.Helper()
	h, ok := m.services[service]
	if !ok {
		t.Fatalf("no handler for %s", service)
	}
	resp, err := h(req)
	if err != nil {
		t.Fatalf("%s: %v", service, err)
	}
	return resp
}

func storeCfg() Config {
	cfg := DefaultConfig(rank.CollectionStats{NumDocs: 200, AvgDocLen: 50})
	cfg.DFMax = 3
	return cfg
}

// exportState dumps a store's full content as (key -> canonical blob).
func exportState(t *testing.T, s *hdkStore) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	if err := s.exportAll(func(key string, blob []byte) error {
		out[key] = append([]byte(nil), blob...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameState(t *testing.T, got, want map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("store holds %d keys, want %d", len(got), len(want))
	}
	for key, blob := range want {
		if !bytes.Equal(got[key], blob) {
			t.Fatalf("key %q: restored blob differs from original\ngot:  %x\nwant: %x", key, got[key], blob)
		}
	}
}

// applyRandomOps drives a persistent StoreServer through n pseudo-random
// mutation RPCs (insert batches, classification sweeps, repair imports)
// via the registered handlers — the exact byte path the daemon serves —
// and returns the raw (kind, payload) op sequence it executed.
func applyRandomOps(t *testing.T, m *handlerMember, donor *hdkStore, rng *rand.Rand, n int) [][2]string {
	t.Helper()
	var ops [][2]string
	vocab := []string{"ant", "bee", "cat", "dog", "elk", "fox", "gnu", "hen"}
	nextDoc := uint32(1)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0, 1: // insert batch
			var batch []postings.KeyedMessage
			for b := 0; b < 1+rng.Intn(3); b++ {
				key := vocab[rng.Intn(len(vocab))]
				size := 1
				if rng.Intn(2) == 1 {
					key = key + "\x1f" + vocab[rng.Intn(len(vocab))]
					size = 2
				}
				var list postings.List
				for p := 0; p < 1+rng.Intn(3); p++ {
					list = append(list, postings.Posting{Doc: corpus.DocID(nextDoc), Score: float32(rng.Intn(10)) / 2})
					nextDoc++
				}
				batch = append(batch, postings.KeyedMessage{Key: key, Aux: uint64(size), List: list})
			}
			req := encodeInsertReq(nil, fmt.Sprintf("peer-%d", rng.Intn(3)), batch)
			m.call(t, SvcInsert, req)
			ops = append(ops, [2]string{DurableOpInsert, string(req)})
		case 2: // classification sweep
			req := EncodeClassifyReq(1 + rng.Intn(2))
			m.call(t, SvcClassify, req)
			ops = append(ops, [2]string{DurableOpClassify, string(req)})
		case 3: // repair import from the donor store
			keys := donor.keyList()
			if len(keys) == 0 {
				continue
			}
			key := keys[rng.Intn(len(keys))]
			blob, _ := donor.exportEntry(key)
			req := replica.EncodeBatch(nil, []replica.Item{{Key: "imported\x1f" + key, Blob: blob}})
			m.call(t, replica.Service, req)
			ops = append(ops, [2]string{DurableOpRepair, string(req)})
		}
	}
	return ops
}

// TestStoreServerPersistenceRoundTrip drives a persistent StoreServer
// through a pseudo-random mutation sequence — including log compactions
// mid-sequence — then reopens the data directory into a FRESH StoreServer
// and requires the restored store to be byte-identical: every key, every
// posting, every df, classification, NDK truncation and contributor set.
func TestStoreServerPersistenceRoundTrip(t *testing.T) {
	for _, compact := range []struct {
		name string
		opts durable.Options
	}{
		{"log-only", durable.Options{Fsync: durable.SyncNever, CompactBytes: -1}},
		{"compacting", durable.Options{Fsync: durable.SyncNever, CompactBytes: 256}},
	} {
		t.Run(compact.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := storeCfg()

			d, err := durable.Open(dir, compact.opts)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := NewStoreServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			srv.EnablePersistence(d, nil)
			m := newHandlerMember("node-a")
			srv.Attach(m)

			// A donor store supplies realistic repair-import blobs.
			donor := newHDKStore(&cfg)
			donor.insert("donor\x1fkey", 2, postings.List{{Doc: 10, Score: 1}, {Doc: 20, Score: 2}}, "peer-d")
			donor.classifySweep(2)

			rng := rand.New(rand.NewSource(42))
			applyRandomOps(t, m, donor, rng, 60)
			want := exportState(t, srv.store)
			if len(want) == 0 {
				t.Fatal("mutation sequence produced an empty store — test proves nothing")
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			if compact.name == "compacting" && func() bool {
				re, err := durable.Open(dir, compact.opts)
				if err != nil {
					t.Fatal(err)
				}
				defer re.Close()
				return re.Generation() == 0
			}() {
				t.Fatal("small threshold never triggered a compaction — test proves nothing")
			}

			// Warm restart: fresh durable store, fresh StoreServer, replay.
			re, err := durable.Open(dir, compact.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			srv2, err := NewStoreServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range re.Snapshot() {
				if err := srv2.ReplayRecord(rec.Kind, rec.Payload); err != nil {
					t.Fatalf("replay snapshot record: %v", err)
				}
			}
			for _, rec := range re.Ops() {
				if err := srv2.ReplayRecord(rec.Kind, rec.Payload); err != nil {
					t.Fatalf("replay op: %v", err)
				}
			}
			assertSameState(t, exportState(t, srv2.store), want)
		})
	}
}

// TestStoreServerTornLogRecovery SIGKILL-simulates a torn final log
// record: the store must come back exactly at the last intact op.
func TestStoreServerTornLogRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := storeCfg()
	opts := durable.Options{Fsync: durable.SyncNever, CompactBytes: -1}

	d, err := durable.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewStoreServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.EnablePersistence(d, nil)
	m := newHandlerMember("node-a")
	srv.Attach(m)

	donor := newHDKStore(&cfg)
	rng := rand.New(rand.NewSource(7))
	applyRandomOps(t, m, donor, rng, 20)
	prefixState := exportState(t, srv.store)
	sizeBefore := d.LogBytes()
	// One more op whose log record we will tear.
	m.call(t, SvcInsert, encodeInsertReq(nil, "peer-z",
		[]postings.KeyedMessage{{Key: "torn", Aux: 1, List: postings.List{{Doc: 9999, Score: 1}}}}))
	d.Close()

	// Tear the final record in half.
	logs, err := filepath.Glob(filepath.Join(dir, "oplog-*"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("oplog glob: %v %v", logs, err)
	}
	raw, err := os.ReadFile(logs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logs[0], raw[:sizeBefore+(int64(len(raw))-sizeBefore)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := durable.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.TruncatedOps() == 0 {
		t.Fatal("recovery did not drop the torn record")
	}
	srv2, err := NewStoreServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range re.Ops() {
		if err := srv2.ReplayRecord(rec.Kind, rec.Payload); err != nil {
			t.Fatal(err)
		}
	}
	got := exportState(t, srv2.store)
	if _, leaked := got["torn"]; leaked {
		t.Fatal("torn insert leaked into the recovered store")
	}
	assertSameState(t, got, prefixState)
}

// TestImportEntryCorruptBlobBounds is the allocation-bomb regression: a
// corrupt blob whose declared contributor count exceeds the bytes that
// could possibly encode them must be rejected up front (each contributor
// costs at least one byte), so a few bytes can no longer buy a
// megabyte-scale map pre-allocation.
func TestImportEntryCorruptBlobBounds(t *testing.T) {
	cfg := storeCfg()
	store := newHDKStore(&cfg)

	// A legitimate blob, as a baseline.
	donor := newHDKStore(&cfg)
	donor.insert("k", 1, postings.List{{Doc: 1, Score: 1}}, "peer-0")
	valid, _ := donor.exportEntry("k")
	if ok, err := store.importEntry("k", valid); err != nil || !ok {
		t.Fatalf("valid blob rejected: ok=%v err=%v", ok, err)
	}

	// Forge a small blob declaring an enormous contributor count: size=1,
	// df=1, flags=0, then nc as a 5-byte uvarint (~256M) with only a few
	// bytes behind it. The old bound (nc <= len(blob)) required a 64 MiB
	// frame to reach 64M contributors; the count here is bounded by the
	// REMAINING bytes, so this must fail fast without allocating.
	bomb := binary.AppendUvarint(nil, 1) // size
	bomb = binary.AppendUvarint(bomb, 1) // df
	bomb = append(bomb, 0)               // flags
	bomb = binary.AppendUvarint(bomb, 1<<28)
	bomb = append(bomb, 0, 0, 0) // nowhere near 2^28 contributors' worth of bytes
	if _, err := store.importEntry("bomb", bomb); !errors.Is(err, errCorruptRPC) {
		t.Fatalf("allocation-bomb blob: got %v, want errCorruptRPC", err)
	}

	// Truncations of a valid blob error out, never panic.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := store.importEntry("cut", valid[:cut]); err == nil {
			t.Fatalf("truncated blob (%d bytes) accepted", cut)
		}
	}
	// Declared count barely above what the remaining bytes can hold.
	tight := binary.AppendUvarint(nil, 1)
	tight = binary.AppendUvarint(tight, 1)
	tight = append(tight, 0)
	tight = binary.AppendUvarint(tight, 4) // 4 contributors...
	tight = append(tight, 0, 0, 0)         // ...but only 3 bytes remain
	if _, err := store.importEntry("tight", tight); !errors.Is(err, errCorruptRPC) {
		t.Fatalf("over-declared contributor count: got %v, want errCorruptRPC", err)
	}
}

// TestEqualDFDivergenceHealed constructs the exact churn interleaving of
// the fingerprint bug: two replicas of one key whose DISJOINT insert
// batches sum to the same df (replica A saw only p1's 3 postings,
// replica B only p2's 3). Under a df-only fingerprint the sweep trusted
// both; the content checksum must flag them as divergent, and repair
// must converge every copy onto one deterministic survivor.
func TestEqualDFDivergenceHealed(t *testing.T) {
	net := overlay.NewNetwork(transport.NewInProc())
	for i := 0; i < 2; i++ {
		if _, err := net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := storeCfg()
	cfg.ReplicationFactor = 2
	eng, err := NewEngine(net, cfg, []string{"w0", "w1"}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	members := net.Members()
	storeA := eng.stores[members[0].ID()]
	storeB := eng.stores[members[1].ID()]

	// The interleaving: each replica received only one peer's batch.
	const key = "w0"
	listA := postings.List{{Doc: 1, Score: 1}, {Doc: 2, Score: 1}, {Doc: 3, Score: 1}}
	listB := postings.List{{Doc: 4, Score: 2}, {Doc: 5, Score: 2}, {Doc: 6, Score: 2}}
	storeA.insert(key, 1, listA, "p1")
	storeB.insert(key, 1, listB, "p2")
	storeA.classifySweep(1)
	storeB.classifySweep(1)

	fpA, _ := storeA.entryFingerprint(key)
	fpB, _ := storeB.entryFingerprint(key)
	if fpA.Version != fpB.Version {
		t.Fatalf("setup broken: df %d vs %d, want equal", fpA.Version, fpB.Version)
	}
	if fpA.Sum == fpB.Sum {
		t.Fatal("divergent copies share a checksum — fingerprint cannot see the divergence")
	}

	audit := eng.AuditReplicas()
	if audit.UnderReplicated == 0 {
		t.Fatal("audit trusts two divergent equal-df copies (the df-only fingerprint bug)")
	}
	if _, err := eng.RepairReplicas(); err != nil {
		t.Fatal(err)
	}
	if audit = eng.AuditReplicas(); audit.UnderReplicated != 0 {
		t.Fatalf("divergence not healed: %+v", audit)
	}
	blobA, okA := storeA.exportEntry(key)
	blobB, okB := storeB.exportEntry(key)
	if !okA || !okB || !bytes.Equal(blobA, blobB) {
		t.Fatalf("replicas still differ after repair:\nA: %x\nB: %x", blobA, blobB)
	}
	// The survivor is the deterministic winner: the higher checksum.
	want := fpA
	if fpB.Better(fpA) {
		want = fpB
	}
	if got, _ := storeA.entryFingerprint(key); got != want {
		t.Fatalf("healed copy %+v is not the deterministic winner %+v", got, want)
	}
}
