package core
