package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/postings"
	"repro/internal/rank"
)

func TestFetchBatchReqRoundTrip(t *testing.T) {
	keys := []string{"alpha", "beta\x1fgamma", ""}
	got, err := decodeFetchBatchReq(encodeFetchBatchReq(keys))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("got %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: %q != %q", i, got[i], keys[i])
		}
	}
}

func TestFetchBatchRespRoundTrip(t *testing.T) {
	in := []fetchResult{
		{key: "hdk", status: StatusHDK, df: 7, list: postings.List{{Doc: 1, Score: 2.5}, {Doc: 4, Score: 0.5}}},
		{key: "ndk\x1fpair", status: StatusNDK, df: 412, list: postings.List{{Doc: 2, Score: 1.0}}},
		{key: "missing", status: StatusAbsent, df: 0, list: nil},
	}
	got, err := decodeFetchBatchResp(encodeFetchBatchResp(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d results, want %d", len(got), len(in))
	}
	for i, want := range in {
		g := got[i]
		if g.key != want.key || g.status != want.status || g.df != want.df || len(g.list) != len(want.list) {
			t.Fatalf("result %d: %+v != %+v", i, g, want)
		}
		for j := range want.list {
			if g.list[j] != want.list[j] {
				t.Fatalf("result %d posting %d: %+v != %+v", i, j, g.list[j], want.list[j])
			}
		}
	}
}

func TestFetchBatchRespCorrupt(t *testing.T) {
	// Status field outside the valid range.
	bad := postings.EncodeKeyedBatch(nil, []postings.KeyedMessage{{Key: "k", Aux: 3}})
	if _, err := decodeFetchBatchResp(bad); !errors.Is(err, errCorruptRPC) {
		t.Errorf("bad status: got %v, want errCorruptRPC", err)
	}
	// Truncations of a valid response must error, never panic.
	valid := encodeFetchBatchResp([]fetchResult{
		{key: "alpha", status: StatusHDK, df: 3, list: postings.List{{Doc: 1, Score: 1}}},
		{key: "beta", status: StatusNDK, df: 9, list: postings.List{{Doc: 2, Score: 2}}},
	})
	for cut := 0; cut < len(valid); cut++ {
		if _, err := decodeFetchBatchResp(valid[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestFetchBatchWireMatchesEncodedBatch pins the hot-path contract:
// the single-pass fetchBatchWire must produce bytes IDENTICAL to
// materializing the batch and encoding it — the daemons' fetch
// responses did not change when the intermediate allocation was cut.
func TestFetchBatchWireMatchesEncodedBatch(t *testing.T) {
	cfg := DefaultConfig(rank.CollectionStats{NumDocs: 100, AvgDocLen: 50})
	cfg.DFMax = 2
	store := newHDKStore(&cfg)
	store.insert("solo", 1, postings.List{{Doc: 1, Score: 1}}, "peer-0")
	store.insert("pop", 1, postings.List{{Doc: 1, Score: 1}, {Doc: 2, Score: 2}, {Doc: 3, Score: 3}}, "peer-0")
	store.classifySweep(1)
	store.insert("unclassified", 1, postings.List{{Doc: 9, Score: 1}}, "peer-0")

	for _, keys := range [][]string{
		{"solo", "pop", "unclassified", "absent", ""},
		{"absent-only"},
		{},
		{"pop", "pop"},
	} {
		want := encodeFetchBatchResp(store.fetchBatch(keys))
		got := store.fetchBatchWire(keys)
		if !bytes.Equal(got, want) {
			t.Fatalf("keys %q: wire fast path diverges\nwant %x\ngot  %x", keys, want, got)
		}
	}
}

func TestStoreFetchBatchMatchesSingleFetches(t *testing.T) {
	cfg := DefaultConfig(rank.CollectionStats{NumDocs: 100, AvgDocLen: 50})
	cfg.DFMax = 2
	store := newHDKStore(&cfg)
	store.insert("solo", 1, postings.List{{Doc: 1, Score: 1}}, "peer-0")
	store.insert("pop", 1, postings.List{{Doc: 1, Score: 1}, {Doc: 2, Score: 2}, {Doc: 3, Score: 3}}, "peer-0")
	store.classifySweep(1)
	store.insert("unclassified", 1, postings.List{{Doc: 9, Score: 1}}, "peer-0")

	keys := []string{"solo", "pop", "unclassified", "absent"}
	batch := store.fetchBatch(keys)
	if len(batch) != len(keys) {
		t.Fatalf("batch answered %d keys, want %d", len(batch), len(keys))
	}
	for i, key := range keys {
		status, df, list := store.fetch(key)
		r := batch[i]
		if r.key != key || r.status != status || r.df != df || len(r.list) != len(list) {
			t.Fatalf("key %q: batch %+v != single (%v, %d, %d postings)", key, r, status, df, len(list))
		}
	}
	if batch[0].status != StatusHDK || batch[1].status != StatusNDK ||
		batch[2].status != StatusAbsent || batch[3].status != StatusAbsent {
		t.Fatalf("unexpected statuses: %+v", batch)
	}
}
