package core

import "testing"

func TestParallelBuildMatchesSerial(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)

	serial := buildEngine(t, col, 4, cfg)
	if err := serial.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	want := serial.Stats()
	wantKeys := collectIndexKeys(t, serial)

	parallel := buildEngine(t, col, 4, cfg)
	parallel.SetConcurrency(4)
	if err := parallel.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	got := parallel.Stats()
	gotKeys := collectIndexKeys(t, parallel)

	if got.StoredTotal != want.StoredTotal || got.KeysTotal != want.KeysTotal {
		t.Fatalf("parallel stored/keys %d/%d, serial %d/%d",
			got.StoredTotal, got.KeysTotal, want.StoredTotal, want.KeysTotal)
	}
	for s := range wantKeys {
		if len(gotKeys[s]) != len(wantKeys[s]) {
			t.Fatalf("size %d: %d keys parallel vs %d serial", s, len(gotKeys[s]), len(wantKeys[s]))
		}
		for k, st := range wantKeys[s] {
			if gotKeys[s][k] != st {
				t.Fatalf("size %d key %v: status %v parallel vs %v serial", s, k.Terms(), gotKeys[s][k], st)
			}
		}
	}
	// Traffic totals commute too.
	if parallel.Traffic().Snapshot().InsertedTotal != serial.Traffic().Snapshot().InsertedTotal {
		t.Fatal("inserted-posting totals differ between parallel and serial builds")
	}
}

func TestSetConcurrencyClamps(t *testing.T) {
	col := testCollection(t, 20)
	cfg := testConfig(col, 5)
	eng := buildEngine(t, col, 2, cfg)
	eng.SetConcurrency(-3) // must clamp to 1, not panic or deadlock
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
}
