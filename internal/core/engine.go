package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/replica"
	"repro/internal/transport"
)

// Engine coordinates the HDK engine over an overlay network: it owns the
// configuration, the per-node index stores, the participating peers and
// the traffic accounting. The round-synchronous BuildIndex drives the
// paper's iterative collaborative indexing; Search implements the
// lattice-based retrieval model.
type Engine struct {
	net    overlay.Fabric
	cfg    Config
	vocab  []string
	termID map[string]corpus.TermID
	vf     []bool // very frequent terms (f_D > Ff), excluded from keys

	peers       []*Peer
	stores      map[overlay.ID]*hdkStore
	concurrency int // peers indexed in parallel per round (see SetConcurrency)

	// queryCache, when enabled, holds fetch responses at the querying
	// side — the caching mitigation the related work proposes. Repeat
	// probes for the same key cost zero network postings.
	queryCache *cache.LRU[cachedFetch]

	traffic Traffic
}

// cachedFetch is a memoized fetch response.
type cachedFetch struct {
	status KeyStatus
	list   postings.List
}

// EnableQueryCache turns on query-side caching of fetch responses with
// the given capacity (number of keys). Capacity <= 0 disables caching.
// Call InvalidateQueryCache after the index changes.
func (e *Engine) EnableQueryCache(capacity int) {
	e.queryCache = cache.NewLRU[cachedFetch](capacity)
}

// InvalidateQueryCache drops all cached fetch responses.
func (e *Engine) InvalidateQueryCache() {
	if e.queryCache != nil {
		e.queryCache.Clear()
	}
}

// QueryCacheStats returns hit/miss counters (zeros when disabled).
func (e *Engine) QueryCacheStats() (hits, misses uint64) {
	if e.queryCache == nil {
		return 0, 0
	}
	return e.queryCache.Stats()
}

// Traffic aggregates the paper's posting/message counters. InsertedBySize
// feeds Figure 5 (IS_s); Fetched feeds Figure 6.
type Traffic struct {
	InsertedBySize  [MaxKeySize + 1]atomic.Uint64 // postings shipped into the index, per key size (all replicas)
	FetchedPosts    atomic.Uint64                 // postings shipped to querying peers
	NotifyMessages  atomic.Uint64                 // NDK expansion notifications sent
	ProbeMessages   atomic.Uint64                 // retrieval lattice probes issued
	ProbesBySize    [MaxKeySize + 1]atomic.Uint64 // lattice probes per level (= key size)
	FetchRPCs       atomic.Uint64                 // batched fetch RPCs issued by queries
	FetchRPCsBySize [MaxKeySize + 1]atomic.Uint64 // batched fetch RPCs per level
	QueryRounds     atomic.Uint64                 // lattice levels traversed by queries
	SearchFailovers atomic.Uint64                 // fetch batches re-sent to an alternate replica
}

// TrafficSnapshot is a point-in-time copy of the counters.
type TrafficSnapshot struct {
	InsertedBySize  [MaxKeySize + 1]uint64
	InsertedTotal   uint64
	FetchedPosts    uint64
	NotifyMessages  uint64
	ProbeMessages   uint64
	ProbesBySize    [MaxKeySize + 1]uint64
	FetchRPCs       uint64
	FetchRPCsBySize [MaxKeySize + 1]uint64
	QueryRounds     uint64
	SearchFailovers uint64
}

// Snapshot copies the counters.
func (t *Traffic) Snapshot() TrafficSnapshot {
	var s TrafficSnapshot
	for i := range t.InsertedBySize {
		s.InsertedBySize[i] = t.InsertedBySize[i].Load()
		s.InsertedTotal += s.InsertedBySize[i]
		s.ProbesBySize[i] = t.ProbesBySize[i].Load()
		s.FetchRPCsBySize[i] = t.FetchRPCsBySize[i].Load()
	}
	s.FetchedPosts = t.FetchedPosts.Load()
	s.NotifyMessages = t.NotifyMessages.Load()
	s.ProbeMessages = t.ProbeMessages.Load()
	s.FetchRPCs = t.FetchRPCs.Load()
	s.QueryRounds = t.QueryRounds.Load()
	s.SearchFailovers = t.SearchFailovers.Load()
	return s
}

// NewEngine wires an HDK engine onto an overlay. vocab maps term ids to
// term strings; termFreqs are the global collection frequencies used to
// apply the Ff very-frequent-term cutoff (the paper's adaptive stop list —
// global statistics the prototype lineage distributes via the overlay).
func NewEngine(net overlay.Fabric, cfg Config, vocab []string, termFreqs []int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(termFreqs) != len(vocab) {
		return nil, fmt.Errorf("core: termFreqs (%d) and vocab (%d) lengths differ", len(termFreqs), len(vocab))
	}
	e := &Engine{
		net:    net,
		cfg:    cfg,
		vocab:  vocab,
		termID: make(map[string]corpus.TermID, len(vocab)),
		vf:     make([]bool, len(vocab)),
		stores: make(map[overlay.ID]*hdkStore),
	}
	for i, s := range vocab {
		e.termID[s] = corpus.TermID(i)
	}
	for i, f := range termFreqs {
		e.vf[i] = f > cfg.Ff
	}
	for _, node := range net.Members() {
		e.attachStore(node)
	}
	return e, nil
}

// attachStore hosts the index store for an overlay node in this process
// and registers the index services on it — unless the member's store
// lives in another process (overlay.RemoteStore, the hdknode daemon
// case), where the services are already being served remotely and the
// engine reaches them through the fabric's RPC.
func (e *Engine) attachStore(node overlay.Member) {
	if overlay.IsRemote(node) {
		return
	}
	store := newHDKStore(&e.cfg)
	e.stores[node.ID()] = store
	attachIndexServices(node, store, nil)
}

// classifySweepFanout bounds concurrent classification-sweep RPCs when
// stores live in other processes (the multi-process build path).
const classifySweepFanout = 8

// replicas returns the configured replication factor (>= 1). The
// effective replica set of a key is additionally capped at the overlay
// size by the resolver.
func (e *Engine) replicas() int {
	if e.cfg.ReplicationFactor < 1 {
		return 1
	}
	return e.cfg.ReplicationFactor
}

// replicaChain returns a key's ordered replica addresses for this
// engine's fabric and replication factor (see the package-level
// replicaChain in coordinate.go, which the search path shares with the
// daemon-side coordinator). The insert fan-out walks this same chain,
// so write placement and read failover can never diverge.
func (e *Engine) replicaChain(routedAddr, canonical string) []string {
	return replicaChain(e.net, e.replicas(), routedAddr, canonical)
}

// AddPeer registers a peer owning the given local collection on an
// existing overlay node.
func (e *Engine) AddPeer(node overlay.Member, local *corpus.Collection) (*Peer, error) {
	if _, ok := e.stores[node.ID()]; !ok {
		// Node joined after engine construction (the churn scenario).
		e.attachStore(node)
	}
	p := newPeer(e, node, local)
	e.peers = append(e.peers, p)
	return p, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Network returns the overlay fabric the engine runs on.
func (e *Engine) Network() overlay.Fabric { return e.net }

// Traffic returns the engine's traffic counters.
func (e *Engine) Traffic() *Traffic { return &e.traffic }

// VeryFrequent reports whether a term is excluded by the Ff cutoff.
func (e *Engine) VeryFrequent(t corpus.TermID) bool { return e.vf[t] }

// BuildIndex runs the iterative collaborative indexing: for each key size
// s = 1..smax every peer computes and inserts its local candidates, then
// the index nodes classify the round's keys and notify the contributors
// of newly non-discriminative keys, which drives the next round's key
// expansion.
func (e *Engine) BuildIndex() error {
	for s := 1; s <= e.cfg.SMax; s++ {
		if err := e.runRound(s); err != nil {
			return fmt.Errorf("core: round %d: %w", s, err)
		}
	}
	e.finishRounds()
	return nil
}

// finishRounds resets per-peer freshness state and advances document
// watermarks after a completed build or update.
func (e *Engine) finishRounds() {
	for _, p := range e.peers {
		for s := 1; s <= MaxKeySize; s++ {
			p.consumeFresh(s)
		}
		p.advanceWatermark()
	}
	e.InvalidateQueryCache()
}

// UpdateIndex incrementally indexes the documents staged via
// Peer.AddDocuments since the last BuildIndex/UpdateIndex: existing keys
// receive postings from the new documents only; keys whose generation
// was unlocked by freshly non-discriminative sub-keys (including HDKs
// that the new documents pushed over DFmax — the paper's maintenance
// notification rule) are built from every local document. The resulting
// global index is identical to a from-scratch build over the grown
// collection.
func (e *Engine) UpdateIndex() error {
	for s := 1; s <= e.cfg.SMax; s++ {
		for _, p := range e.peers {
			cands := p.generateUpdate(s)
			n, err := p.insertAll(cands, s)
			if err != nil {
				return fmt.Errorf("core: update round %d: %w", s, err)
			}
			e.traffic.InsertedBySize[s].Add(n)
		}
		// Freshness of size s-1 has been consumed by this round's
		// generation; clear it so the next update starts clean.
		for _, p := range e.peers {
			p.consumeFresh(s - 1)
		}
		if err := e.classifyAndNotify(s); err != nil {
			return fmt.Errorf("core: update round %d: %w", s, err)
		}
	}
	e.finishRounds()
	return nil
}

// SetConcurrency sets how many peers index in parallel within a round
// (default 1, fully serial). The final index is identical at any level:
// documents are disjoint across peers, so every store merge commutes.
func (e *Engine) SetConcurrency(n int) {
	if n < 1 {
		n = 1
	}
	e.concurrency = n
}

func (e *Engine) runRound(s int) error {
	workers := e.concurrency
	if workers <= 1 {
		for _, p := range e.peers {
			if err := e.indexPeerRound(p, s); err != nil {
				return err
			}
		}
		return e.classifyAndNotify(s)
	}
	sem := make(chan struct{}, workers)
	errCh := make(chan error, len(e.peers))
	for _, p := range e.peers {
		sem <- struct{}{}
		go func(p *Peer) {
			defer func() { <-sem }()
			errCh <- e.indexPeerRound(p, s)
		}(p)
	}
	var firstErr error
	for range e.peers {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return e.classifyAndNotify(s)
}

// IndexPeerRound runs one peer's candidate generation + batched insert
// pass for key size s — the per-peer quarter of the round-synchronous
// build loop, exported so a cluster daemon can execute its own shard's
// rounds under an external coordinator (the hdk.build path). The
// coordinator must barrier every participating peer at size s before
// running ClassifyRound(s); within the barrier, peers may run
// concurrently (documents are disjoint, so store merges commute).
func (e *Engine) IndexPeerRound(p *Peer, s int) error {
	if s < 1 || s > e.cfg.SMax {
		return fmt.Errorf("core: round size %d outside 1..%d", s, e.cfg.SMax)
	}
	return e.indexPeerRound(p, s)
}

// ClassifyRound runs the classification sweep and notify delivery for
// key size s across every member of the fabric — the coordinator's half
// of an externally driven build round (remote stores are swept through
// SvcClassify, notifications delivered through SvcNotify).
func (e *Engine) ClassifyRound(s int) error {
	if s < 1 || s > e.cfg.SMax {
		return fmt.Errorf("core: round size %d outside 1..%d", s, e.cfg.SMax)
	}
	return e.classifyAndNotify(s)
}

// FinishBuild resets per-peer freshness state and advances document
// watermarks after the final round — BuildIndex's epilogue, exported so
// each daemon of an externally coordinated build can complete its own
// peers once every round has run.
func (e *Engine) FinishBuild() { e.finishRounds() }

func (e *Engine) indexPeerRound(p *Peer, s int) error {
	cands := p.generate(s)
	n, err := p.insertAll(cands, s)
	if err != nil {
		return err
	}
	e.traffic.InsertedBySize[s].Add(n)
	return nil
}

// classifyAndNotify sweeps every index store, truncates NDK posting
// lists and sends expansion notifications to contributing peers (batched
// per peer, one message per store/peer pair). Stores hosted in this
// process are swept directly; stores served by other processes (hdknode
// daemons) are swept through the SvcClassify RPC — either way the sweep
// itself runs next to the data and only the notify map crosses the wire.
func (e *Engine) classifyAndNotify(s int) error {
	// Phase 1: sweep every store. The sweeps are independent (each
	// truncates and classifies only its own entries), so remote sweeps
	// fan out concurrently rather than paying one blocking round trip
	// per daemon per round; in-process stores sweep directly.
	members := e.net.Members() // deterministic ring order
	notifies := make([]map[string][]string, len(members))
	sweepErrs := make([]error, len(members))
	forEachLimit(len(members), classifySweepFanout, func(i int) {
		m := members[i]
		if store, ok := e.stores[m.ID()]; ok {
			notifies[i] = store.classifySweep(s)
			return
		}
		if !overlay.IsRemote(m) {
			return // member joined after construction with no store yet
		}
		raw, err := e.net.CallService(m.Addr(), SvcClassify, EncodeClassifyReq(s))
		if err != nil {
			sweepErrs[i] = fmt.Errorf("core: classify sweep at %s: %w", m.Addr(), err)
			return
		}
		if notifies[i], err = DecodeNotifyMap(raw); err != nil {
			sweepErrs[i] = fmt.Errorf("core: classify sweep at %s: %w", m.Addr(), err)
		}
	})
	for _, err := range sweepErrs {
		if err != nil {
			return err
		}
	}
	// Phase 2: deliver expansion notifications in ring order — the
	// delivery schedule stays deterministic regardless of sweep timing.
	for _, notify := range notifies {
		if notify == nil {
			continue
		}
		// Group keys by contributor address.
		byAddr := make(map[string][]string)
		for key, addrs := range notify {
			for _, a := range addrs {
				byAddr[a] = append(byAddr[a], key)
			}
		}
		addrs := make([]string, 0, len(byAddr))
		for a := range byAddr {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		for _, addr := range addrs {
			keys := byAddr[addr]
			sort.Strings(keys)
			batch := make([]postings.KeyedMessage, len(keys))
			for i, k := range keys {
				batch[i] = postings.KeyedMessage{Key: k}
			}
			payload := postings.EncodeKeyedBatch(nil, batch)
			if _, err := e.net.CallService(addr, SvcNotify, payload); err != nil {
				if errors.Is(err, transport.ErrUnknownAddress) {
					// The contributor departed the fabric (crashed member
					// removed by FailNode): its documents are out of the
					// build set and nothing is listening — skip, exactly
					// as the in-process overlay drops mail to the departed.
					continue
				}
				return fmt.Errorf("core: notify %s: %w", addr, err)
			}
			e.traffic.NotifyMessages.Add(uint64(len(keys)))
		}
	}
	return nil
}

// SearchResult carries a ranked answer plus the per-query cost metrics of
// Figure 6 and the batched fan-out accounting.
type SearchResult struct {
	Results      []rank.Result
	FetchedPosts uint64 // postings shipped for this query
	ProbedKeys   int    // lattice subsets probed
	FoundKeys    int    // subsets present in the index (HDK or NDK)
	RPCs         int    // batched fetch RPCs issued (including failover re-sends)
	Rounds       int    // lattice levels traversed
	Failovers    int    // fetch batches re-sent to an alternate replica after an owner failed
}

// Search maps the query onto the lattice of its term subsets and probes
// the global index with a level-synchronous, batched, parallel traversal:
// each level's candidates survive subsumption pruning against the
// previous level (supersets of HDKs are never stored; supersets of absent
// keys cannot exist), their owners are resolved in one routing pass, and
// every owner receives a single multi-key fetch RPC — at most
// Config.SearchFanout RPCs in flight. Found keys' bounded posting lists
// are unioned in candidate order (so the ranked answer is identical at
// any fan-out) and ranked. The traversal itself (latticeSearch in
// coordinate.go) is shared verbatim with the daemon-side hdk.search
// coordinator, so a coordinated answer cannot drift from this one.
func (e *Engine) Search(q corpus.Query, from overlay.Member, k int) (*SearchResult, error) {
	// Deduplicate query terms, drop very frequent ones (they are not in
	// the key vocabulary, exactly like the single-term stop-word case),
	// and render them canonically in ascending TermID order.
	terms := e.QueryTerms(q)
	maxSize := e.cfg.SMax
	if len(terms) < maxSize {
		maxSize = len(terms)
	}
	ls := &latticeSearch{
		net:      e.net,
		from:     from,
		replicas: e.replicas(),
		fanout:   e.searchFanout(),
		cache:    e.queryCache,
		traffic:  &e.traffic,
	}
	return ls.run(terms, maxSize, k)
}

// searchFanout returns the effective per-level RPC concurrency.
func (e *Engine) searchFanout() int {
	return fanoutOf(e.cfg)
}

// SetSearchFanout adjusts the per-level fetch concurrency at runtime.
// The ranked answer is identical at any value. Not safe to call while
// searches are in flight.
func (e *Engine) SetSearchFanout(n int) {
	if n < 1 {
		n = 1
	}
	e.cfg.SearchFanout = n
}

// allSubkeysNDStatus prunes the retrieval lattice on packed keys — the
// Key-typed twin of allSubkeysND in coordinate.go, kept for tools and
// tests that work with TermIDs rather than canonical strings.
func (e *Engine) allSubkeysNDStatus(key Key, status map[Key]KeyStatus) bool {
	ok := true
	key.Subkeys(func(sub Key) {
		if status[sub] != StatusNDK {
			ok = false
		}
	})
	return ok
}

// forEachLimit invokes fn(0..n-1) from at most limit concurrent
// goroutines; fn instances must touch disjoint state or synchronize.
func forEachLimit(n, limit int, fn func(i int)) {
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(limit)
	for w := 0; w < limit; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func dedupTerms(ts []corpus.TermID) []corpus.TermID {
	seen := make(map[corpus.TermID]struct{}, len(ts))
	out := make([]corpus.TermID, 0, len(ts))
	for _, t := range ts {
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IndexStats aggregates the global index state for the Figures 3-5
// experiments.
type IndexStats struct {
	StoredBySize [MaxKeySize + 1]int // resident postings per key size
	KeysBySize   [MaxKeySize + 1]int // distinct keys per key size
	StoredTotal  int
	KeysTotal    int
	PerNode      map[overlay.ID]int // resident postings per overlay node
}

// Stats scans the stores hosted in THIS process and aggregates index
// statistics; stores served by other processes are not included (the
// cluster client exposes those via its StoreStats sweep).
func (e *Engine) Stats() IndexStats {
	st := IndexStats{PerNode: make(map[overlay.ID]int, len(e.stores))}
	for id, store := range e.stores {
		posts, keys := store.storedBySize(MaxKeySize)
		nodeTotal := 0
		for s := 0; s <= MaxKeySize; s++ {
			st.StoredBySize[s] += posts[s]
			st.KeysBySize[s] += keys[s]
			st.StoredTotal += posts[s]
			st.KeysTotal += keys[s]
			nodeTotal += posts[s]
		}
		st.PerNode[id] = nodeTotal
	}
	return st
}

// KeyInfo exposes one key's global classification for tests and tools,
// consulting the key's replica set in failover order. Only stores hosted
// in this process are consulted; on a purely remote fabric it reports
// StatusAbsent.
func (e *Engine) KeyInfo(k Key) (KeyStatus, int, postings.List) {
	canonical := k.CanonicalString(e.vocab)
	for _, owner := range replica.Owners(e.net, canonical, e.replicas()) {
		store, ok := e.stores[owner.ID()]
		if !ok {
			continue
		}
		if status, df, list := store.fetch(canonical); status != StatusAbsent {
			return status, df, list
		}
	}
	return StatusAbsent, 0, nil
}

// engineInventory adapts the replicated index to the repair sweep's
// view: stores hosted in this process are read directly, stores hosted
// by other processes (overlay.RemoteStore members) are read through the
// index inventory RPCs — so RepairReplicas and AuditReplicas are correct
// on any fabric, including the multi-process cluster. A member whose
// daemon is unreachable reports no resident keys, exactly the semantics
// a post-crash sweep needs.
type engineInventory struct{ e *Engine }

func (v engineInventory) store(m overlay.Member) *hdkStore { return v.e.stores[m.ID()] }

func (v engineInventory) remote() RemoteInventory {
	return RemoteInventory{Call: v.e.net.CallService}
}

func (v engineInventory) Keys(m overlay.Member) []string {
	if st := v.store(m); st != nil {
		return st.keyList()
	}
	if !overlay.IsRemote(m) {
		return nil
	}
	return v.remote().Keys(m)
}

func (v engineInventory) Fingerprint(m overlay.Member, key string) (replica.Fingerprint, bool) {
	if st := v.store(m); st != nil {
		return st.entryFingerprint(key)
	}
	if !overlay.IsRemote(m) {
		return replica.Fingerprint{}, false
	}
	return v.remote().Fingerprint(m, key)
}

func (v engineInventory) Export(m overlay.Member, key string) ([]byte, bool) {
	if st := v.store(m); st != nil {
		return st.exportEntry(key)
	}
	if !overlay.IsRemote(m) {
		return nil, false
	}
	return v.remote().Export(m, key)
}

// Repairer returns a replica.Repairer configured for this engine's
// fabric, stores and replication factor.
func (e *Engine) Repairer() *replica.Repairer {
	return &replica.Repairer{Fabric: e.net, Inv: engineInventory{e}, R: e.replicas()}
}

// RepairReplicas sweeps the surviving stores for under-replicated keys
// and re-replicates them over the fabric, restoring R-way coverage after
// churn without re-running the distributed build.
func (e *Engine) RepairReplicas() (replica.RepairStats, error) {
	st, err := e.Repairer().Repair()
	if err == nil {
		e.InvalidateQueryCache()
	}
	return st, err
}

// AuditReplicas reports the index's replica coverage under the current
// membership — the store-sweep verification that repair restored R-way
// placement.
func (e *Engine) AuditReplicas() replica.AuditStats {
	return replica.Audit(e.net, engineInventory{e}, e.replicas())
}

// FailNode simulates an ungraceful peer departure (crash): the node
// leaves the ring and its index fraction is LOST — unlike the graceful
// RemoveNode handoff, nothing is copied anywhere. Peers hosted on the
// node drop out of the build set. With ReplicationFactor >= 2 the
// surviving replicas keep every key reachable; RepairReplicas restores
// full coverage afterwards.
func (e *Engine) FailNode(node overlay.Member) error {
	churn, ok := e.net.(overlay.Churn)
	if !ok {
		return fmt.Errorf("core: fabric does not support node removal")
	}
	if e.net.Size() <= 1 {
		return fmt.Errorf("core: cannot fail the last node")
	}
	if !churn.RemoveNode(node.ID()) {
		return fmt.Errorf("core: node %x not in overlay", node.ID())
	}
	delete(e.stores, node.ID())
	kept := e.peers[:0]
	for _, p := range e.peers {
		if p.node.ID() != node.ID() {
			kept = append(kept, p)
		}
	}
	e.peers = kept
	e.InvalidateQueryCache()
	return nil
}
