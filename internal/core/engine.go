package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/postings"
	"repro/internal/rank"
)

// Engine coordinates the HDK engine over an overlay network: it owns the
// configuration, the per-node index stores, the participating peers and
// the traffic accounting. The round-synchronous BuildIndex drives the
// paper's iterative collaborative indexing; Search implements the
// lattice-based retrieval model.
type Engine struct {
	net    overlay.Fabric
	cfg    Config
	vocab  []string
	termID map[string]corpus.TermID
	vf     []bool // very frequent terms (f_D > Ff), excluded from keys

	peers       []*Peer
	stores      map[overlay.ID]*hdkStore
	concurrency int // peers indexed in parallel per round (see SetConcurrency)

	// queryCache, when enabled, holds fetch responses at the querying
	// side — the caching mitigation the related work proposes. Repeat
	// probes for the same key cost zero network postings.
	queryCache *cache.LRU[cachedFetch]

	traffic Traffic
}

// cachedFetch is a memoized fetch response.
type cachedFetch struct {
	status KeyStatus
	list   postings.List
}

// EnableQueryCache turns on query-side caching of fetch responses with
// the given capacity (number of keys). Capacity <= 0 disables caching.
// Call InvalidateQueryCache after the index changes.
func (e *Engine) EnableQueryCache(capacity int) {
	e.queryCache = cache.NewLRU[cachedFetch](capacity)
}

// InvalidateQueryCache drops all cached fetch responses.
func (e *Engine) InvalidateQueryCache() {
	if e.queryCache != nil {
		e.queryCache.Clear()
	}
}

// QueryCacheStats returns hit/miss counters (zeros when disabled).
func (e *Engine) QueryCacheStats() (hits, misses uint64) {
	if e.queryCache == nil {
		return 0, 0
	}
	return e.queryCache.Stats()
}

// Traffic aggregates the paper's posting/message counters. InsertedBySize
// feeds Figure 5 (IS_s); Fetched feeds Figure 6.
type Traffic struct {
	InsertedBySize [MaxKeySize + 1]atomic.Uint64 // postings shipped into the index, per key size
	FetchedPosts   atomic.Uint64                 // postings shipped to querying peers
	NotifyMessages atomic.Uint64                 // NDK expansion notifications sent
	ProbeMessages  atomic.Uint64                 // retrieval lattice probes issued
}

// TrafficSnapshot is a point-in-time copy of the counters.
type TrafficSnapshot struct {
	InsertedBySize [MaxKeySize + 1]uint64
	InsertedTotal  uint64
	FetchedPosts   uint64
	NotifyMessages uint64
	ProbeMessages  uint64
}

// Snapshot copies the counters.
func (t *Traffic) Snapshot() TrafficSnapshot {
	var s TrafficSnapshot
	for i := range t.InsertedBySize {
		s.InsertedBySize[i] = t.InsertedBySize[i].Load()
		s.InsertedTotal += s.InsertedBySize[i]
	}
	s.FetchedPosts = t.FetchedPosts.Load()
	s.NotifyMessages = t.NotifyMessages.Load()
	s.ProbeMessages = t.ProbeMessages.Load()
	return s
}

// NewEngine wires an HDK engine onto an overlay. vocab maps term ids to
// term strings; termFreqs are the global collection frequencies used to
// apply the Ff very-frequent-term cutoff (the paper's adaptive stop list —
// global statistics the prototype lineage distributes via the overlay).
func NewEngine(net overlay.Fabric, cfg Config, vocab []string, termFreqs []int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(termFreqs) != len(vocab) {
		return nil, fmt.Errorf("core: termFreqs (%d) and vocab (%d) lengths differ", len(termFreqs), len(vocab))
	}
	e := &Engine{
		net:    net,
		cfg:    cfg,
		vocab:  vocab,
		termID: make(map[string]corpus.TermID, len(vocab)),
		vf:     make([]bool, len(vocab)),
		stores: make(map[overlay.ID]*hdkStore),
	}
	for i, s := range vocab {
		e.termID[s] = corpus.TermID(i)
	}
	for i, f := range termFreqs {
		e.vf[i] = f > cfg.Ff
	}
	for _, node := range net.Members() {
		e.attachStore(node)
	}
	return e, nil
}

// attachStore registers the index services on an overlay node.
func (e *Engine) attachStore(node overlay.Member) {
	store := newHDKStore(&e.cfg)
	e.stores[node.ID()] = store
	node.Handle(svcInsert, func(req []byte) ([]byte, error) {
		contributor, batch, err := decodeInsertReq(req)
		if err != nil {
			return nil, err
		}
		// The response reports, for keys already classified, their
		// global status: new contributors of existing NDKs must learn
		// the classification to drive their expansions.
		var classified []postings.KeyedMessage
		for _, m := range batch {
			status, isClassified := store.insert(m.Key, int(m.Aux), m.List, contributor)
			if isClassified {
				classified = append(classified, postings.KeyedMessage{Key: m.Key, Aux: uint64(status)})
			}
		}
		return postings.EncodeKeyedBatch(nil, classified), nil
	})
	node.Handle(svcFetch, func(req []byte) ([]byte, error) {
		key := string(req)
		status, df, list := store.fetch(key)
		return encodeFetchResp(key, status, df, list), nil
	})
}

// AddPeer registers a peer owning the given local collection on an
// existing overlay node.
func (e *Engine) AddPeer(node overlay.Member, local *corpus.Collection) (*Peer, error) {
	if _, ok := e.stores[node.ID()]; !ok {
		// Node joined after engine construction (the churn scenario).
		e.attachStore(node)
	}
	p := newPeer(e, node, local)
	e.peers = append(e.peers, p)
	return p, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Network returns the overlay fabric the engine runs on.
func (e *Engine) Network() overlay.Fabric { return e.net }

// Traffic returns the engine's traffic counters.
func (e *Engine) Traffic() *Traffic { return &e.traffic }

// VeryFrequent reports whether a term is excluded by the Ff cutoff.
func (e *Engine) VeryFrequent(t corpus.TermID) bool { return e.vf[t] }

// BuildIndex runs the iterative collaborative indexing: for each key size
// s = 1..smax every peer computes and inserts its local candidates, then
// the index nodes classify the round's keys and notify the contributors
// of newly non-discriminative keys, which drives the next round's key
// expansion.
func (e *Engine) BuildIndex() error {
	for s := 1; s <= e.cfg.SMax; s++ {
		if err := e.runRound(s); err != nil {
			return fmt.Errorf("core: round %d: %w", s, err)
		}
	}
	e.finishRounds()
	return nil
}

// finishRounds resets per-peer freshness state and advances document
// watermarks after a completed build or update.
func (e *Engine) finishRounds() {
	for _, p := range e.peers {
		for s := 1; s <= MaxKeySize; s++ {
			p.consumeFresh(s)
		}
		p.advanceWatermark()
	}
	e.InvalidateQueryCache()
}

// UpdateIndex incrementally indexes the documents staged via
// Peer.AddDocuments since the last BuildIndex/UpdateIndex: existing keys
// receive postings from the new documents only; keys whose generation
// was unlocked by freshly non-discriminative sub-keys (including HDKs
// that the new documents pushed over DFmax — the paper's maintenance
// notification rule) are built from every local document. The resulting
// global index is identical to a from-scratch build over the grown
// collection.
func (e *Engine) UpdateIndex() error {
	for s := 1; s <= e.cfg.SMax; s++ {
		for _, p := range e.peers {
			cands := p.generateUpdate(s)
			n, err := p.insertAll(cands, s)
			if err != nil {
				return fmt.Errorf("core: update round %d: %w", s, err)
			}
			e.traffic.InsertedBySize[s].Add(n)
		}
		// Freshness of size s-1 has been consumed by this round's
		// generation; clear it so the next update starts clean.
		for _, p := range e.peers {
			p.consumeFresh(s - 1)
		}
		if err := e.classifyAndNotify(s); err != nil {
			return fmt.Errorf("core: update round %d: %w", s, err)
		}
	}
	e.finishRounds()
	return nil
}

// SetConcurrency sets how many peers index in parallel within a round
// (default 1, fully serial). The final index is identical at any level:
// documents are disjoint across peers, so every store merge commutes.
func (e *Engine) SetConcurrency(n int) {
	if n < 1 {
		n = 1
	}
	e.concurrency = n
}

func (e *Engine) runRound(s int) error {
	workers := e.concurrency
	if workers <= 1 {
		for _, p := range e.peers {
			if err := e.indexPeerRound(p, s); err != nil {
				return err
			}
		}
		return e.classifyAndNotify(s)
	}
	sem := make(chan struct{}, workers)
	errCh := make(chan error, len(e.peers))
	for _, p := range e.peers {
		sem <- struct{}{}
		go func(p *Peer) {
			defer func() { <-sem }()
			errCh <- e.indexPeerRound(p, s)
		}(p)
	}
	var firstErr error
	for range e.peers {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return e.classifyAndNotify(s)
}

func (e *Engine) indexPeerRound(p *Peer, s int) error {
	cands := p.generate(s)
	n, err := p.insertAll(cands, s)
	if err != nil {
		return err
	}
	e.traffic.InsertedBySize[s].Add(n)
	return nil
}

// classifyAndNotify sweeps every store, truncates NDK posting lists and
// sends expansion notifications to contributing peers (batched per peer,
// one message per store/peer pair).
func (e *Engine) classifyAndNotify(s int) error {
	// Deterministic store order.
	ids := make([]overlay.ID, 0, len(e.stores))
	for id := range e.stores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		notify := e.stores[id].classifySweep(s)
		// Group keys by contributor address.
		byAddr := make(map[string][]string)
		for key, addrs := range notify {
			for _, a := range addrs {
				byAddr[a] = append(byAddr[a], key)
			}
		}
		addrs := make([]string, 0, len(byAddr))
		for a := range byAddr {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		for _, addr := range addrs {
			keys := byAddr[addr]
			sort.Strings(keys)
			batch := make([]postings.KeyedMessage, len(keys))
			for i, k := range keys {
				batch[i] = postings.KeyedMessage{Key: k}
			}
			payload := postings.EncodeKeyedBatch(nil, batch)
			if _, err := e.net.CallService(addr, svcNotify, payload); err != nil {
				return fmt.Errorf("core: notify %s: %w", addr, err)
			}
			e.traffic.NotifyMessages.Add(uint64(len(keys)))
		}
	}
	return nil
}

// SearchResult carries a ranked answer plus the per-query cost metrics of
// Figure 6.
type SearchResult struct {
	Results      []rank.Result
	FetchedPosts uint64 // postings shipped for this query
	ProbedKeys   int    // lattice subsets probed
	FoundKeys    int    // subsets present in the index (HDK or NDK)
}

// Search maps the query onto the lattice of its term subsets, probes the
// global index bottom-up with subsumption pruning (supersets of HDKs are
// never stored; supersets of absent keys cannot exist), fetches the
// bounded posting lists of all found keys, unions them and ranks.
func (e *Engine) Search(q corpus.Query, from overlay.Member, k int) (*SearchResult, error) {
	res := &SearchResult{}
	maxSize := e.cfg.SMax
	if len(q.Terms) < maxSize {
		maxSize = len(q.Terms)
	}
	// Deduplicate query terms, drop very frequent ones (they are not in
	// the key vocabulary, exactly like the single-term stop-word case).
	terms := dedupTerms(q.Terms)
	usable := terms[:0:0]
	for _, t := range terms {
		if int(t) < len(e.vf) && !e.vf[t] {
			usable = append(usable, t)
		}
	}
	status := make(map[Key]KeyStatus)
	var acc postings.List
	var subsets func(start int, cur []corpus.TermID, size int)
	var probeErr error
	probe := func(key Key) {
		canonical := key.CanonicalString(e.vocab)
		if e.queryCache != nil {
			if hit, ok := e.queryCache.Get(canonical); ok {
				res.ProbedKeys++
				status[key] = hit.status
				if hit.status != StatusAbsent {
					res.FoundKeys++
					acc = postings.Union(acc, hit.list)
				}
				return
			}
		}
		owner, _, err := e.net.Route(from, canonical)
		if err != nil {
			probeErr = err
			return
		}
		raw, err := e.net.CallService(owner.Addr(), svcFetch, []byte(canonical))
		if err != nil {
			probeErr = err
			return
		}
		st, _, list, err := decodeFetchResp(raw)
		if err != nil {
			probeErr = err
			return
		}
		res.ProbedKeys++
		status[key] = st
		if e.queryCache != nil {
			e.queryCache.Put(canonical, cachedFetch{status: st, list: list})
		}
		if st == StatusAbsent {
			return
		}
		res.FoundKeys++
		res.FetchedPosts += uint64(len(list))
		acc = postings.Union(acc, list)
	}
	for size := 1; size <= maxSize && probeErr == nil; size++ {
		subsets = func(start int, cur []corpus.TermID, want int) {
			if probeErr != nil {
				return
			}
			if len(cur) == want {
				key := NewKey(cur...)
				if want > 1 && !e.allSubkeysNDStatus(key, status) {
					return // subsumption pruning
				}
				probe(key)
				return
			}
			for i := start; i < len(usable); i++ {
				subsets(i+1, append(cur, usable[i]), want)
			}
		}
		subsets(0, nil, size)
	}
	if probeErr != nil {
		return nil, probeErr
	}
	e.traffic.FetchedPosts.Add(res.FetchedPosts)
	e.traffic.ProbeMessages.Add(uint64(res.ProbedKeys))
	res.Results = rank.TopKByScore(acc, k)
	return res, nil
}

// allSubkeysNDStatus prunes the retrieval lattice: a key can only be
// stored if every immediate sub-key is non-discriminative (an HDK sub-key
// means redundancy filtering dropped the superset; an absent sub-key means
// the superset cannot occur).
func (e *Engine) allSubkeysNDStatus(key Key, status map[Key]KeyStatus) bool {
	ok := true
	key.Subkeys(func(sub Key) {
		if status[sub] != StatusNDK {
			ok = false
		}
	})
	return ok
}

func dedupTerms(ts []corpus.TermID) []corpus.TermID {
	seen := make(map[corpus.TermID]struct{}, len(ts))
	out := make([]corpus.TermID, 0, len(ts))
	for _, t := range ts {
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IndexStats aggregates the global index state for the Figures 3-5
// experiments.
type IndexStats struct {
	StoredBySize [MaxKeySize + 1]int // resident postings per key size
	KeysBySize   [MaxKeySize + 1]int // distinct keys per key size
	StoredTotal  int
	KeysTotal    int
	PerNode      map[overlay.ID]int // resident postings per overlay node
}

// Stats scans the stores and aggregates index statistics.
func (e *Engine) Stats() IndexStats {
	st := IndexStats{PerNode: make(map[overlay.ID]int, len(e.stores))}
	for id, store := range e.stores {
		posts, keys := store.storedBySize(MaxKeySize)
		nodeTotal := 0
		for s := 0; s <= MaxKeySize; s++ {
			st.StoredBySize[s] += posts[s]
			st.KeysBySize[s] += keys[s]
			st.StoredTotal += posts[s]
			st.KeysTotal += keys[s]
			nodeTotal += posts[s]
		}
		st.PerNode[id] = nodeTotal
	}
	return st
}

// KeyInfo exposes one key's global classification for tests and tools.
func (e *Engine) KeyInfo(k Key) (KeyStatus, int, postings.List) {
	canonical := k.CanonicalString(e.vocab)
	owner, ok := e.net.OwnerOf(canonical)
	if !ok {
		return StatusAbsent, 0, nil
	}
	store, ok := e.stores[owner.ID()]
	if !ok {
		return StatusAbsent, 0, nil
	}
	return store.fetch(canonical)
}
