package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/corpus"
)

// searchQueries builds a deterministic query set against the collection.
func searchQueries(t testing.TB, col *corpus.Collection, n int) []corpus.Query {
	t.Helper()
	qp := corpus.DefaultQueryParams(n)
	qp.MinHits = 0
	queries, err := corpus.GenerateQueries(col, qp, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	return queries
}

// expectedSearchCost replays the lattice traversal against the ground
// truth (KeyInfo statuses, OwnerOf mapping) and returns the exact probe,
// RPC and round counts a cache-less Search must report: one batched fetch
// RPC per (owner, level), never one per key.
func expectedSearchCost(t *testing.T, eng *Engine, q corpus.Query) (probes, rpcs, rounds int) {
	t.Helper()
	maxSize := eng.cfg.SMax
	if len(q.Terms) < maxSize {
		maxSize = len(q.Terms)
	}
	terms := dedupTerms(q.Terms)
	usable := terms[:0:0]
	for _, tm := range terms {
		if int(tm) < len(eng.vf) && !eng.vf[tm] {
			usable = append(usable, tm)
		}
	}
	status := make(map[Key]KeyStatus)
	for size := 1; size <= maxSize; size++ {
		// Independent candidate enumeration (same subset order and
		// subsumption pruning as the engine's traversal).
		var level []Key
		var rec func(start int, cur []corpus.TermID)
		rec = func(start int, cur []corpus.TermID) {
			if len(cur) == size {
				key := NewKey(cur...)
				if size > 1 && !eng.allSubkeysNDStatus(key, status) {
					return
				}
				level = append(level, key)
				return
			}
			for i := start; i < len(usable); i++ {
				rec(i+1, append(cur, usable[i]))
			}
		}
		rec(0, nil)
		if len(level) == 0 {
			break
		}
		rounds++
		owners := make(map[string]bool)
		for _, key := range level {
			owner, ok := eng.net.OwnerOf(key.CanonicalString(eng.vocab))
			if !ok {
				t.Fatal("no owner for key")
			}
			owners[owner.Addr()] = true
			st, _, _ := eng.KeyInfo(key)
			status[key] = st
			probes++
		}
		rpcs += len(owners)
	}
	return probes, rpcs, rounds
}

func TestSearchBatchedRPCAccounting(t *testing.T) {
	col := testCollection(t, 80)
	cfg := testConfig(col, 6)
	cfg.SearchFanout = 4
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	nodes := eng.net.Members()
	queries := searchQueries(t, col, 25)
	multiKeyRPCSaved := false
	for i, q := range queries {
		wantProbes, wantRPCs, wantRounds := expectedSearchCost(t, eng, q)
		res, err := eng.Search(q, nodes[i%len(nodes)], 20)
		if err != nil {
			t.Fatal(err)
		}
		if res.ProbedKeys != wantProbes || res.RPCs != wantRPCs || res.Rounds != wantRounds {
			t.Fatalf("query %d: probes/rpcs/rounds = %d/%d/%d, want %d/%d/%d",
				i, res.ProbedKeys, res.RPCs, res.Rounds, wantProbes, wantRPCs, wantRounds)
		}
		// At most one RPC per (owner, level) — the batching guarantee.
		if res.RPCs > res.Rounds*eng.net.Size() {
			t.Fatalf("query %d: %d RPCs > %d rounds x %d owners", i, res.RPCs, res.Rounds, eng.net.Size())
		}
		if res.RPCs < res.ProbedKeys {
			multiKeyRPCSaved = true
		}
	}
	if !multiKeyRPCSaved {
		t.Fatal("no query batched several keys into one RPC — collection too sparse for the test")
	}
	snap := eng.Traffic().Snapshot()
	if snap.FetchRPCs == 0 || snap.QueryRounds == 0 {
		t.Fatalf("traffic counters not plumbed: %+v", snap)
	}
	if snap.FetchRPCs >= snap.ProbeMessages {
		t.Fatalf("aggregate RPCs %d >= probes %d: batching saved nothing", snap.FetchRPCs, snap.ProbeMessages)
	}
}

func TestSearchParallelMatchesSerial(t *testing.T) {
	col := testCollection(t, 80)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 5, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	nodes := eng.net.Members()
	queries := searchQueries(t, col, 20)
	for i, q := range queries {
		eng.SetSearchFanout(1)
		serial, err := eng.Search(q, nodes[i%len(nodes)], 20)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetSearchFanout(8)
		parallel, err := eng.Search(q, nodes[i%len(nodes)], 20)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Results, parallel.Results) {
			t.Fatalf("query %d: parallel results differ from serial", i)
		}
		if serial.FetchedPosts != parallel.FetchedPosts || serial.ProbedKeys != parallel.ProbedKeys ||
			serial.FoundKeys != parallel.FoundKeys || serial.RPCs != parallel.RPCs ||
			serial.Rounds != parallel.Rounds {
			t.Fatalf("query %d: cost metrics differ: serial %+v vs parallel %+v", i, serial, parallel)
		}
	}
}

// TestConcurrentSearches exercises the worker pool from many goroutines
// sharing one engine and query cache — the -race target the batched
// fan-out must survive.
func TestConcurrentSearches(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	cfg.SearchFanout = 4
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	eng.EnableQueryCache(4096)
	nodes := eng.net.Members()
	queries := searchQueries(t, col, 10)

	// Reference answers come from a second, identically-built engine so
	// the concurrent phase below starts with a cold cache and actually
	// drives the batched fetch path, racing cache fills with cache hits.
	engRef := buildEngine(t, col, 4, cfg)
	if err := engRef.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	refNodes := engRef.net.Members()
	want := make([][]corpus.DocID, len(queries))
	for i, q := range queries {
		res, err := engRef.Search(q, refNodes[i%len(refNodes)], 20)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Results {
			want[i] = append(want[i], r.Doc)
		}
	}

	goroutines := 8
	if testing.Short() {
		goroutines = 4
	}
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, q := range queries {
					res, err := eng.Search(q, nodes[(i+g)%len(nodes)], 20)
					if err != nil {
						errCh <- err
						return
					}
					if len(res.Results) != len(want[i]) {
						t.Errorf("goroutine %d query %d: %d results, want %d", g, i, len(res.Results), len(want[i]))
						return
					}
					for j, r := range res.Results {
						if want[i][j] != r.Doc {
							t.Errorf("goroutine %d query %d: result %d diverged", g, i, j)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestSetSearchFanoutClamps(t *testing.T) {
	col := testCollection(t, 30)
	cfg := testConfig(col, 5)
	cfg.SearchFanout = 0 // engine must still probe serially, not hang
	eng := buildEngine(t, col, 3, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if got := eng.searchFanout(); got != 1 {
		t.Fatalf("searchFanout() = %d with SearchFanout=0, want 1", got)
	}
	eng.SetSearchFanout(-5)
	if got := eng.searchFanout(); got != 1 {
		t.Fatalf("searchFanout() = %d after SetSearchFanout(-5), want 1", got)
	}
	q := corpus.Query{Terms: col.Docs[0].Terms[:2]}
	if _, err := eng.Search(q, eng.net.Members()[0], 5); err != nil {
		t.Fatal(err)
	}
}

func TestConfigRejectsNegativeFanout(t *testing.T) {
	col := testCollection(t, 30)
	cfg := testConfig(col, 5)
	cfg.SearchFanout = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative SearchFanout accepted")
	}
}
