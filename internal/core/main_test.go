package core

import (
	"os"
	"testing"

	"repro/internal/lint/leakcheck"
)

// Core tests exercise engines, concurrent searches, admission pools and
// durable stores; leakcheck fails the run if any goroutine — a search
// worker, a store's background compaction, an unclosed overlay —
// survives the tests.
func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
