package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/postings"
	"repro/internal/replica"
)

// Index snapshot format: a magic header, a version byte, a uvarint entry
// count, then one keyed record per entry with Aux packing
// (df << 5) | (size << 2) | status. Snapshots let a network serve a
// previously built index without re-running the (expensive) distributed
// build; on import, entries are routed to the stores of the CURRENT
// overlay membership, so a snapshot taken on N peers loads fine on M.
//
// Peer-side expansion state (ND knowledge, document watermarks) is not
// part of a snapshot: an imported index is immediately queryable, while
// incremental updates require the peers that own the documents.

var snapshotMagic = []byte("HDKIDX")

const snapshotVersion = 1

// ErrBadSnapshot is returned by ImportIndex for malformed input.
var ErrBadSnapshot = errors.New("core: bad index snapshot")

// ExportIndex writes a snapshot of the whole global index.
func (e *Engine) ExportIndex(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	type rec struct {
		key string
		fp  replica.Fingerprint
		m   postings.KeyedMessage
	}
	var recs []rec
	seen := make(map[string]int) // key -> index into recs
	for _, store := range e.stores {
		store.mu.Lock()
		for key, ent := range store.entries {
			// Replicated keys appear in R stores; snapshot the freshest
			// copy (best fingerprint — the same ordering the repair sweep
			// uses, checksum tiebreak included), so a divergent partial
			// replica that has not been repaired yet can never leak into
			// the snapshot, and equal-df divergent copies resolve
			// deterministically regardless of store iteration order.
			if !ent.classified {
				continue
			}
			aux := (uint64(ent.df)<<3|uint64(ent.size))<<2 | uint64(ent.status)
			r := rec{key: key, fp: fingerprintEntry(ent), m: postings.KeyedMessage{Key: key, Aux: aux, List: ent.list}}
			if i, ok := seen[key]; ok {
				if r.fp.Better(recs[i].fp) {
					recs[i] = r
				}
				continue
			}
			seen[key] = len(recs)
			recs = append(recs, r)
		}
		store.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	var count [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(count[:], uint64(len(recs)))
	if _, err := bw.Write(count[:n]); err != nil {
		return err
	}
	var buf []byte
	for _, r := range recs {
		buf = postings.EncodeKeyed(buf[:0], r.m)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportIndex loads a snapshot, distributing every entry to the store of
// the overlay node currently responsible for the key. Existing entries
// for the same keys are replaced; other entries are left alone.
func (e *Engine) ImportIndex(r io.Reader) error {
	br := bufio.NewReader(r)
	head := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(head[:len(snapshotMagic)]) != string(snapshotMagic) {
		return fmt.Errorf("%w: wrong magic", ErrBadSnapshot)
	}
	if head[len(snapshotMagic)] != snapshotVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, head[len(snapshotMagic)])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	// Records are decoded from a fully buffered remainder: keyed records
	// are length-prefixed internally, so stream-decode over the slice.
	rest, err := io.ReadAll(br)
	if err != nil {
		return err
	}
	off := 0
	for i := uint64(0); i < count; i++ {
		m, n, err := postings.DecodeKeyed(rest[off:])
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrBadSnapshot, i, err)
		}
		off += n
		status := KeyStatus(m.Aux & 3)
		if status != StatusHDK && status != StatusNDK {
			return fmt.Errorf("%w: record %d has status %d", ErrBadSnapshot, i, status)
		}
		size := int(m.Aux >> 2 & 7)
		if size < 1 || size > MaxKeySize {
			return fmt.Errorf("%w: record %d has key size %d", ErrBadSnapshot, i, size)
		}
		df := int(m.Aux >> 5)
		owners := replica.Owners(e.net, m.Key, e.replicas())
		if len(owners) == 0 {
			return errors.New("core: import into empty overlay")
		}
		for _, owner := range owners {
			store, okStore := e.stores[owner.ID()]
			if !okStore {
				return fmt.Errorf("core: owner of %q has no store", m.Key)
			}
			store.mu.Lock()
			store.entries[m.Key] = &entry{
				size:         size,
				list:         append(postings.List(nil), m.List...),
				df:           df,
				classified:   true,
				status:       status,
				contributors: make(map[string]struct{}),
			}
			store.mu.Unlock()
		}
	}
	if off != len(rest) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(rest)-off)
	}
	e.InvalidateQueryCache()
	return nil
}
