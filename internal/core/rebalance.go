package core

import (
	"fmt"
	"sort"

	"repro/internal/overlay"
)

// This file implements index maintenance under overlay membership
// changes. The paper's experiments grow the network in batches of four
// peers; a real deployment additionally needs the global index to follow
// the key→owner mapping as nodes join and leave. Rebalance moves
// misplaced entries to their current owners; RemoveNode performs a
// graceful leave with handoff.

// Rebalance scans every store and moves entries whose responsible node
// changed (after joins) to the current owner. It returns the number of
// entries moved. Ongoing queries remain correct throughout: entries are
// inserted at the destination before being deleted at the source.
func (e *Engine) Rebalance() (int, error) {
	moved := 0
	// Deterministic iteration over stores.
	ids := make([]overlay.ID, 0, len(e.stores))
	for id := range e.stores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		store := e.stores[id]
		store.mu.Lock()
		var misplaced []string
		for key := range store.entries {
			owner, okOwner := e.net.OwnerOf(key)
			if !okOwner {
				store.mu.Unlock()
				return moved, fmt.Errorf("core: empty overlay during rebalance")
			}
			if owner.ID() != id {
				misplaced = append(misplaced, key)
			}
		}
		sort.Strings(misplaced)
		entries := make([]*entry, len(misplaced))
		for i, key := range misplaced {
			entries[i] = store.entries[key]
		}
		store.mu.Unlock()

		for i, key := range misplaced {
			owner, _ := e.net.OwnerOf(key)
			dst, ok := e.stores[owner.ID()]
			if !ok {
				return moved, fmt.Errorf("core: owner of %q has no store", key)
			}
			dst.mu.Lock()
			dst.entries[key] = entries[i]
			dst.mu.Unlock()
			store.mu.Lock()
			delete(store.entries, key)
			store.mu.Unlock()
			moved++
		}
	}
	e.InvalidateQueryCache()
	return moved, nil
}

// RemoveNode gracefully removes an overlay node from the engine: its
// index fraction is handed off to the nodes that become responsible, and
// the node leaves the ring. Documents contributed by a peer hosted on
// the node remain indexed (the paper's model keeps document references
// in the global index; peer departure with document loss is a different
// failure mode the model does not cover).
func (e *Engine) RemoveNode(node overlay.Member) error {
	store, ok := e.stores[node.ID()]
	if !ok {
		return fmt.Errorf("core: node %x has no store", node.ID())
	}
	// Leave the ring first so ownership recomputes without the node...
	churn, ok := e.net.(overlay.Churn)
	if !ok {
		return fmt.Errorf("core: fabric does not support node removal")
	}
	if !churn.RemoveNode(node.ID()) {
		return fmt.Errorf("core: node %x not in overlay", node.ID())
	}
	if e.net.Size() == 0 {
		return fmt.Errorf("core: cannot remove the last node")
	}
	// ...then hand its entries to the new owners.
	store.mu.Lock()
	keys := make([]string, 0, len(store.entries))
	for key := range store.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	entries := make(map[string]*entry, len(keys))
	for _, key := range keys {
		entries[key] = store.entries[key]
	}
	store.mu.Unlock()

	for _, key := range keys {
		owner, _ := e.net.OwnerOf(key)
		dst, ok := e.stores[owner.ID()]
		if !ok {
			return fmt.Errorf("core: owner of %q has no store after leave", key)
		}
		dst.mu.Lock()
		dst.entries[key] = entries[key]
		dst.mu.Unlock()
	}
	delete(e.stores, node.ID())
	// Drop departed peers hosted on this node from the build set.
	kept := e.peers[:0]
	for _, p := range e.peers {
		if p.node.ID() != node.ID() {
			kept = append(kept, p)
		}
	}
	e.peers = kept
	e.InvalidateQueryCache()
	return nil
}
