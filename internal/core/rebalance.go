package core

import (
	"fmt"
	"sort"

	"repro/internal/overlay"
	"repro/internal/replica"
)

// This file implements index maintenance under overlay membership
// changes. The paper's experiments grow the network in batches of four
// peers; a real deployment additionally needs the global index to follow
// the key→owner mapping as nodes join and leave. Rebalance moves
// misplaced entries to their current owners; RemoveNode performs a
// graceful leave with handoff. Both are replica-aware: an entry is
// correctly placed on ANY member of its key's replica set, and handoff
// targets every responsible member that lacks a copy (entries are
// shipped through the repair snapshot codec, so each destination gets an
// independent deep copy).

// placeEntry installs a store's entry snapshot on every given replica-set
// member that lacks it (or holds a staler, lower-df copy), returning how
// many copies landed.
func (e *Engine) placeEntry(src *hdkStore, key string, owners []overlay.Member) (int, error) {
	blob, ok := src.exportEntry(key)
	if !ok {
		return 0, fmt.Errorf("core: entry %q vanished during placement", key)
	}
	placed := 0
	for _, owner := range owners {
		dst, ok := e.stores[owner.ID()]
		if !ok {
			return placed, fmt.Errorf("core: owner of %q has no store", key)
		}
		if dst == src {
			continue
		}
		installed, err := dst.importEntry(key, blob)
		if err != nil {
			return placed, err
		}
		if installed {
			placed++
		}
	}
	return placed, nil
}

// inReplicaSet reports whether the node is among the given owners.
func inReplicaSet(id overlay.ID, owners []overlay.Member) bool {
	for _, owner := range owners {
		if owner.ID() == id {
			return true
		}
	}
	return false
}

// Rebalance scans every store and moves entries whose node is no longer
// in the key's replica set (after joins) to the responsible members that
// lack them. It returns the number of entries moved. Ongoing queries
// remain correct throughout: entries are inserted at the destinations
// before being deleted at the source. Replicas residing on members that
// are still responsible are left in place; restoring copies that are
// missing elsewhere is RepairReplicas' job.
func (e *Engine) Rebalance() (int, error) {
	moved := 0
	// Deterministic iteration over stores.
	ids := make([]overlay.ID, 0, len(e.stores))
	for id := range e.stores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		store := e.stores[id]
		for _, key := range store.keyList() {
			owners := replica.Owners(e.net, key, e.replicas())
			if len(owners) == 0 {
				return moved, fmt.Errorf("core: empty overlay during rebalance")
			}
			if inReplicaSet(id, owners) {
				continue
			}
			if _, err := e.placeEntry(store, key, owners); err != nil {
				return moved, err
			}
			store.mu.Lock()
			delete(store.entries, key)
			store.mu.Unlock()
			moved++
		}
	}
	e.InvalidateQueryCache()
	return moved, nil
}

// RemoveNode gracefully removes an overlay node from the engine: its
// index fraction is handed off to the members that become responsible
// (every replica-set member lacking a copy), and the node leaves the
// ring. Documents contributed by a peer hosted on the node remain
// indexed (the paper's model keeps document references in the global
// index; peer departure WITH document loss is the crash scenario
// FailNode simulates).
func (e *Engine) RemoveNode(node overlay.Member) error {
	store, ok := e.stores[node.ID()]
	if !ok {
		return fmt.Errorf("core: node %x has no store", node.ID())
	}
	// Leave the ring first so ownership recomputes without the node...
	churn, ok := e.net.(overlay.Churn)
	if !ok {
		return fmt.Errorf("core: fabric does not support node removal")
	}
	if !churn.RemoveNode(node.ID()) {
		return fmt.Errorf("core: node %x not in overlay", node.ID())
	}
	if e.net.Size() == 0 {
		return fmt.Errorf("core: cannot remove the last node")
	}
	// ...then hand its entries to the new owners.
	for _, key := range store.keyList() {
		owners := replica.Owners(e.net, key, e.replicas())
		if len(owners) == 0 {
			return fmt.Errorf("core: cannot remove the last node")
		}
		if _, err := e.placeEntry(store, key, owners); err != nil {
			return err
		}
	}
	delete(e.stores, node.ID())
	// Drop departed peers hosted on this node from the build set.
	kept := e.peers[:0]
	for _, p := range e.peers {
		if p.node.ID() != node.ID() {
			kept = append(kept, p)
		}
	}
	e.peers = kept
	e.InvalidateQueryCache()
	return nil
}
