package core

import (
	"fmt"

	"repro/internal/rank"
)

// Config carries the HDK model parameters (Table 2 of the paper) plus the
// global ranking statistics and the ablation switches used by the
// extension benchmarks.
type Config struct {
	// DFMax is the document-frequency threshold separating discriminative
	// from non-discriminative keys (paper: 400 and 500).
	DFMax int
	// SMax is the maximal key size (paper: 3).
	SMax int
	// Window is the proximity-filtering window size w (paper: 20).
	Window int
	// Ff is the very-frequent collection-frequency threshold: terms with
	// f_D(t) > Ff are excluded from the key vocabulary, the paper's
	// collection-adaptive stop list (paper: 100,000).
	Ff int
	// SearchFanout bounds how many index nodes Search contacts
	// concurrently within one lattice level (the α-style parallelism of
	// Kademlia-family lookups). Values <= 1 probe owners serially; the
	// ranked answer is identical at any setting.
	SearchFanout int
	// ReplicationFactor is the number of distinct overlay members each
	// key's index entry is stored on (R-way placement via
	// internal/replica). Values <= 1 keep a single copy; higher values
	// make builds ship R× the postings but let Search fail over to the
	// surviving replicas when an index node departs or is unreachable.
	// The effective factor is capped at the overlay size.
	ReplicationFactor int
	// BM25 parameterizes the partial scores postings carry.
	BM25 rank.BM25Params
	// Stats are the collection-wide statistics used for scoring
	// (distributed via gossip in the prototype lineage; precomputed here).
	Stats rank.CollectionStats

	// DisableRedundancyFiltering switches off the intrinsically-
	// discriminative check during candidate generation, for the ablation
	// that quantifies how much redundancy filtering shrinks the key set.
	DisableRedundancyFiltering bool
	// DisableNDKStorage stops the index from keeping top-DFmax postings
	// for NDKs, for the ablation that quantifies their retrieval value.
	DisableNDKStorage bool
}

// DefaultConfig returns the paper's Table 2 parameterization for a
// collection with the given global stats.
func DefaultConfig(stats rank.CollectionStats) Config {
	return Config{
		DFMax:             400,
		SMax:              3,
		Window:            20,
		Ff:                100000,
		SearchFanout:      4,
		ReplicationFactor: 1,
		BM25:              rank.DefaultBM25(),
		Stats:             stats,
	}
}

// Validate reports whether the configuration is admissible.
func (c Config) Validate() error {
	if c.DFMax < 1 {
		return fmt.Errorf("core: DFMax must be >= 1, got %d", c.DFMax)
	}
	if c.SMax < 1 || c.SMax > MaxKeySize {
		return fmt.Errorf("core: SMax must be in [1,%d], got %d", MaxKeySize, c.SMax)
	}
	if c.Window < 2 {
		return fmt.Errorf("core: Window must be >= 2, got %d", c.Window)
	}
	if c.Ff < 1 {
		return fmt.Errorf("core: Ff must be >= 1, got %d", c.Ff)
	}
	if c.SearchFanout < 0 {
		return fmt.Errorf("core: SearchFanout must be >= 0, got %d", c.SearchFanout)
	}
	if c.ReplicationFactor < 0 {
		return fmt.Errorf("core: ReplicationFactor must be >= 0, got %d", c.ReplicationFactor)
	}
	if c.Stats.NumDocs < 0 {
		return fmt.Errorf("core: negative NumDocs")
	}
	return nil
}
