package core

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/pgrid"
	"repro/internal/transport"
)

// buildPGridEngine assembles the HDK engine over the P-Grid trie — the
// substrate the paper's prototype actually used.
func buildPGridEngine(t *testing.T, col *corpus.Collection, peers int, cfg Config) *Engine {
	t.Helper()
	net := pgrid.NewNetwork(transport.NewInProc())
	for i := 0; i < peers; i++ {
		if _, err := net.AddPeer(fmt.Sprintf("pg-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	members := net.Members()
	for i, part := range col.SplitRoundRobin(peers) {
		if _, err := eng.AddPeer(members[i], part); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func TestEngineOverPGridMatchesChord(t *testing.T) {
	// The paper's model needs only the DHT abstraction; the engine must
	// therefore produce the identical global index on either substrate.
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)

	chord := buildEngine(t, col, 4, cfg)
	if err := chord.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	pg := buildPGridEngine(t, col, 4, cfg)
	if err := pg.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	assertEnginesEqual(t, pg, chord, cfg)

	// Queries answer identically through trie routing.
	chordNode := chord.net.Members()[0]
	pgNode := pg.net.Members()[0]
	for i := 0; i < 15; i++ {
		q := corpus.Query{Terms: col.Docs[i].Terms[:2]}
		a, err := chord.Search(q, chordNode, 20)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pg.Search(q, pgNode, 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Results) != len(b.Results) {
			t.Fatalf("query %d: %d vs %d results", i, len(a.Results), len(b.Results))
		}
		for j := range a.Results {
			if a.Results[j].Doc != b.Results[j].Doc {
				t.Fatalf("query %d rank %d: doc %d (chord) vs %d (pgrid)",
					i, j, a.Results[j].Doc, b.Results[j].Doc)
			}
		}
		if a.FetchedPosts != b.FetchedPosts {
			t.Fatalf("query %d: fetched %d (chord) vs %d (pgrid) postings",
				i, a.FetchedPosts, b.FetchedPosts)
		}
	}
}

func TestEngineOverPGridAgainstReference(t *testing.T) {
	// The brute-force oracle must hold on the trie substrate too.
	col := testCollection(t, 50)
	cfg := testConfig(col, 6)
	eng := buildPGridEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ref := referenceIndex(col, cfg)
	got := collectIndexKeys(t, eng)
	for s := 1; s <= cfg.SMax; s++ {
		if len(got[s]) != len(ref[s]) {
			t.Fatalf("size %d: %d keys on pgrid, reference %d", s, len(got[s]), len(ref[s]))
		}
	}
}

func TestRemoveNodeOnPGrid(t *testing.T) {
	// Graceful leave with index handoff works on the trie fabric through
	// the Churn interface.
	col := testCollection(t, 40)
	cfg := testConfig(col, 5)
	eng := buildPGridEngine(t, col, 5, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	total := eng.Stats().StoredTotal
	victim := eng.net.Members()[2]
	if err := eng.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().StoredTotal; got != total {
		t.Fatalf("postings lost in pgrid handoff: %d -> %d", total, got)
	}
	// Rebalance moves entries onto the repartitioned trie owners.
	if _, err := eng.Rebalance(); err != nil {
		t.Fatal(err)
	}
	node := eng.net.Members()[0]
	q := corpus.Query{Terms: col.Docs[1].Terms[:2]}
	if _, err := eng.Search(q, node, 10); err != nil {
		t.Fatal(err)
	}
}
