package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/replica"
	"repro/internal/telemetry"
)

// Registry series the query coordinator emits. Declared as package
// consts so every registration site shares one definition (enforced by
// the meterednames analyzer).
const (
	metricQueryProbes     = "hdk_query_probes_total"
	metricQueryFetchRPCs  = "hdk_query_fetch_rpcs_total"
	metricQueryPostings   = "hdk_query_postings_total"
	metricQueryLevelNanos = "hdk_query_level_nanoseconds"
	metricQueryFailovers  = "hdk_query_failovers_total"
)

// This file hosts the query coordination path as a standalone unit: the
// level-synchronous, batched, parallel lattice traversal that
// Engine.Search has always run, factored so it needs neither peers nor a
// vocabulary — only a fabric, the model parameters and the query's
// canonical term strings. The Engine delegates to it (terms rendered
// through its vocabulary), and the cluster daemon runs it directly as
// the hdk.search coordinator: a thin client ships ONE RPC with the
// pre-rendered terms, and the daemon traverses the lattice against its
// own membership table. Both callers execute literally the same
// traversal code, so a coordinated answer cannot drift from a
// client-orchestrated one.

// Coordinator runs coordinated searches over a fabric without an Engine
// — the daemon-side query path of the multi-process deployment. Net is
// typically a cluster client built over the daemon's own membership
// view; Cfg supplies SMax, SearchFanout and ReplicationFactor (the
// daemon uses the configuration the building client shipped, so
// coordination agrees with placement). Cache, when non-nil, memoizes
// fetch responses across queries (the Engine's query-side cache; the
// cluster daemon instead caches whole results one layer up). Traffic,
// when non-nil, receives the global counters.
// Metrics, when non-nil, additionally receives the registry series the
// live cluster is observed through: per-level probe/RPC/posting
// counters and per-level latency histograms.
type Coordinator struct {
	Net     overlay.Fabric
	Cfg     Config
	From    overlay.Member // origin member for Route calls; may be nil on one-hop fabrics
	Cache   *cache.LRU[cachedFetch]
	Traffic *Traffic
	Metrics *telemetry.Registry
}

// Search maps pre-rendered query terms onto the lattice of their
// subsets and probes the index, returning the ranked answer and the
// per-query cost metrics. terms must be the canonical wire form the
// engine produces (Engine.QueryTerms): deduplicated, very-frequent
// terms dropped, ascending TermID order — the order decides candidate
// enumeration and therefore score accumulation, so a coordinator fed
// the same terms returns bit-identical results to the client engine.
func (c *Coordinator) Search(terms []string, k int) (*SearchResult, error) {
	return c.SearchTraced(terms, k, nil)
}

// SearchTraced is Search with an optional trace: when tb is non-nil the
// traversal records a span per level, per fetch wave and per owner RPC
// under tb's root (the caller owns the root span and calls Finish).
// A nil tb costs nothing on the traversal path.
func (c *Coordinator) SearchTraced(terms []string, k int, tb *telemetry.TraceBuilder) (*SearchResult, error) {
	traffic := c.Traffic
	if traffic == nil {
		traffic = &Traffic{}
	}
	ls := &latticeSearch{
		net:      c.Net,
		from:     c.From,
		replicas: replicasOf(c.Cfg),
		fanout:   fanoutOf(c.Cfg),
		cache:    c.Cache,
		traffic:  traffic,
		reg:      c.Metrics,
		trace:    tb,
	}
	maxSize := c.Cfg.SMax
	if len(terms) < maxSize {
		maxSize = len(terms)
	}
	return ls.run(terms, maxSize, k)
}

// QueryTerms renders a query into the coordinator wire form: the
// canonical strings of its distinct, non-very-frequent terms in
// ascending TermID order. This is exactly the preprocessing
// Engine.Search applies before the traversal, exposed so a thin client
// can hand a coordinator the same term list the engine itself would
// probe with.
func (e *Engine) QueryTerms(q corpus.Query) []string {
	terms := dedupTerms(q.Terms)
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		if int(t) < len(e.vf) && !e.vf[t] {
			out = append(out, e.vocab[t])
		}
	}
	return out
}

func replicasOf(cfg Config) int {
	if cfg.ReplicationFactor < 1 {
		return 1
	}
	return cfg.ReplicationFactor
}

func fanoutOf(cfg Config) int {
	if cfg.SearchFanout < 1 {
		return 1
	}
	return cfg.SearchFanout
}

// latticeSearch is the per-query traversal state shared by Engine.Search
// and Coordinator.Search: the fabric to probe, the failover and fan-out
// parameters, the optional fetch-response cache and the counters.
type latticeSearch struct {
	net      overlay.Fabric
	from     overlay.Member
	replicas int
	fanout   int
	cache    *cache.LRU[cachedFetch]
	traffic  *Traffic
	reg      *telemetry.Registry     // nil: no per-level registry series
	trace    *telemetry.TraceBuilder // nil: tracing off (nil-safe methods)
}

// run traverses the lattice of term subsets level-synchronously: each
// level's candidates survive subsumption pruning against the previous
// level, their owners resolve in one routing pass, and every owner
// receives a single multi-key fetch RPC — at most fanout in flight.
// Found keys' bounded posting lists are unioned in candidate order (so
// the ranked answer is identical at any fan-out) and ranked.
func (ls *latticeSearch) run(terms []string, maxSize, k int) (*SearchResult, error) {
	res := &SearchResult{}
	status := make(map[string]KeyStatus)
	// The score accumulator ping-pongs between two pooled buffers: each
	// union writes into the spare, then the roles swap. Safe because
	// TopKByScore copies the accumulator into the result, so nothing
	// references either buffer once the query returns them to the pool.
	bufs := accPool.Get().(*accBuffers)
	acc, spare := bufs.a[:0], bufs.b[:0]
	defer func() {
		bufs.a, bufs.b = acc, spare
		accPool.Put(bufs)
	}()
	for size := 1; size <= maxSize; size++ {
		level := levelCandidates(terms, size, status)
		if len(level) == 0 {
			// No key of this size survives pruning, so no superset can be
			// stored either: the traversal is done.
			break
		}
		res.Rounds++
		rpcsBefore := res.RPCs
		failBefore := res.Failovers
		postsBefore := res.FetchedPosts
		foundBefore := res.FoundKeys
		//hdkvet:ignore determinism -- wall-clock feeds only the level-latency histogram, never a result or encoded byte
		levelStart := time.Now()
		lvlSpan := ls.trace.Start(0, "level",
			telemetry.Num("level", uint64(size)),
			telemetry.Num("candidates", uint64(len(level))))
		outcomes, err := ls.probeLevel(level, res, lvlSpan)
		if err != nil {
			return nil, err
		}
		ls.traffic.ProbesBySize[size].Add(uint64(len(outcomes)))
		ls.traffic.FetchRPCsBySize[size].Add(uint64(res.RPCs - rpcsBefore))
		// Accumulate in candidate-enumeration order: float score addition
		// is order-sensitive, so this keeps parallel fan-out bit-identical
		// to a serial probe sequence.
		unionSpan := ls.trace.Start(lvlSpan, "union")
		for _, o := range outcomes {
			res.ProbedKeys++
			status[o.canonical] = o.status
			if !o.fromCache && ls.cache != nil {
				ls.cache.Put(o.canonical, cachedFetch{status: o.status, list: o.list})
			}
			if o.status == StatusAbsent {
				continue
			}
			res.FoundKeys++
			if !o.fromCache {
				res.FetchedPosts += uint64(len(o.list))
			}
			spare = postings.UnionInto(spare, acc, o.list)
			acc, spare = spare, acc
		}
		ls.trace.End(unionSpan)
		ls.trace.Annotate(lvlSpan,
			telemetry.Num("rpcs", uint64(res.RPCs-rpcsBefore)),
			telemetry.Num("failovers", uint64(res.Failovers-failBefore)),
			telemetry.Num("found", uint64(res.FoundKeys-foundBefore)),
			telemetry.Num("postings", res.FetchedPosts-postsBefore))
		ls.trace.End(lvlSpan)
		if ls.reg != nil {
			lvl := telemetry.L("level", strconv.Itoa(size))
			ls.reg.Counter(metricQueryProbes, lvl).Add(uint64(len(outcomes)))
			ls.reg.Counter(metricQueryFetchRPCs, lvl).Add(uint64(res.RPCs - rpcsBefore))
			ls.reg.Counter(metricQueryPostings, lvl).Add(res.FetchedPosts - postsBefore)
			ls.reg.Histogram(metricQueryLevelNanos, lvl).ObserveDuration(time.Since(levelStart))
		}
	}
	ls.traffic.FetchedPosts.Add(res.FetchedPosts)
	ls.traffic.ProbeMessages.Add(uint64(res.ProbedKeys))
	ls.traffic.FetchRPCs.Add(uint64(res.RPCs))
	ls.traffic.QueryRounds.Add(uint64(res.Rounds))
	ls.traffic.SearchFailovers.Add(uint64(res.Failovers))
	if ls.reg != nil && res.Failovers > 0 {
		ls.reg.Counter(metricQueryFailovers).Add(uint64(res.Failovers))
	}
	rankSpan := ls.trace.Start(0, "rank", telemetry.Num("k", uint64(k)))
	res.Results = rank.TopKByScore(acc, k)
	ls.trace.Annotate(rankSpan, telemetry.Num("results", uint64(len(res.Results))))
	ls.trace.End(rankSpan)
	return res, nil
}

// accBuffers is one query's pair of score-accumulator buffers; the pool
// lets steady-state queries union posting lists with zero allocations
// once the buffers have grown to the working-set size.
type accBuffers struct{ a, b postings.List }

var accPool = sync.Pool{New: func() any { return &accBuffers{} }}

// levelCandidates enumerates the size-`size` subsets of the ordered
// query terms that survive subsumption pruning, as canonical key
// strings. Pruning consults only the previous level's statuses, which
// is what makes the traversal level-synchronous: within a level every
// candidate can be probed independently.
func levelCandidates(terms []string, size int, status map[string]KeyStatus) []string {
	var out []string
	idxs := make([]int, 0, size)
	var rec func(start int)
	rec = func(start int) {
		if len(idxs) == size {
			if size > 1 && !allSubkeysND(terms, idxs, status) {
				return // subsumption pruning
			}
			out = append(out, canonicalKey(terms, idxs, -1))
			return
		}
		for i := start; i < len(terms); i++ {
			idxs = append(idxs, i)
			rec(i + 1)
			idxs = idxs[:len(idxs)-1]
		}
	}
	rec(0)
	return out
}

// canonicalKey joins the selected terms into the key's DHT wire form,
// skipping the position `drop` (-1 keeps every index). terms are in
// ascending TermID order, so the join equals Key.CanonicalString.
func canonicalKey(terms []string, idxs []int, drop int) string {
	kept := make([]string, 0, len(idxs))
	for pos, i := range idxs {
		if pos == drop {
			continue
		}
		kept = append(kept, terms[i])
	}
	if len(kept) == 1 {
		return kept[0]
	}
	return strings.Join(kept, keySeparator)
}

// allSubkeysND prunes the retrieval lattice: a key can only be stored if
// every immediate sub-key is non-discriminative (an HDK sub-key means
// redundancy filtering dropped the superset; an absent sub-key means the
// superset cannot occur).
func allSubkeysND(terms []string, idxs []int, status map[string]KeyStatus) bool {
	for drop := range idxs {
		if status[canonicalKey(terms, idxs, drop)] != StatusNDK {
			return false
		}
	}
	return true
}

// probeOutcome is one candidate key's answer during a level probe.
type probeOutcome struct {
	canonical string
	status    KeyStatus
	list      postings.List
	fromCache bool
}

// probeState tracks one pending key's failover position: the outcome
// slot it fills and the replica addresses left to try, current first.
type probeState struct {
	idx    int
	owners []string
}

// replicaChain returns a key's ordered replica addresses — the routed
// primary first (when routing succeeded), then the resolver's remaining
// owners. Both the insert fan-out and the fetch failover walk this same
// chain, so write placement and read failover can never diverge. When
// routing and the resolver agree (the steady state) the chain is exactly
// the R-member replica set; a routed address the resolver no longer
// names (membership changed between the routing walk and the resolver
// lookup) is kept as an extra leading entry rather than displacing a
// legitimate owner. An empty routedAddr (route failure) falls back to
// the placement ground truth alone; the result is empty only on an
// empty overlay.
func replicaChain(net overlay.Fabric, r int, routedAddr, canonical string) []string {
	if routedAddr != "" && r == 1 {
		return []string{routedAddr}
	}
	chain := make([]string, 0, r+1)
	if routedAddr != "" {
		chain = append(chain, routedAddr)
	}
	for _, m := range replica.Owners(net, canonical, r) {
		if addr := m.Addr(); addr != routedAddr {
			chain = append(chain, addr)
		}
	}
	return chain
}

// probeLevel resolves one lattice level: cache hits answer locally, the
// remaining keys are routed to their owners in one parallel pass, grouped
// per owner, and fetched with one batched RPC per owner — at most
// fanout in flight. A batch whose owner fails (unreachable after
// transport retries, departed, or answering garbage) is re-sent to the
// keys' next replica — successive waves walk each key's replica set until
// a copy answers or every replica is exhausted; each re-sent batch counts
// one Failover. Workers fill disjoint outcome slots; the slice comes back
// in candidate order so accumulation stays deterministic regardless of
// which replica answered.
func (ls *latticeSearch) probeLevel(level []string, res *SearchResult, lvlSpan int) ([]probeOutcome, error) {
	outcomes := make([]probeOutcome, len(level))
	var pending []int // outcome slots needing a network fetch
	for i, canonical := range level {
		outcomes[i] = probeOutcome{canonical: canonical}
		if ls.cache != nil {
			if hit, ok := ls.cache.Get(canonical); ok {
				outcomes[i].status = hit.status
				outcomes[i].list = hit.list
				outcomes[i].fromCache = true
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return outcomes, nil
	}
	fanout := ls.fanout

	// One routing pass: resolve every pending key's primary owner
	// concurrently, and its full replica set for failover. Routing
	// errors are themselves failed over to the placement ground truth:
	// the resolver knows the owners without a network walk.
	routeSpan := ls.trace.Start(lvlSpan, "route", telemetry.Num("keys", uint64(len(pending))))
	states := make([]probeState, len(pending))
	routeErrs := make([]error, len(pending))
	forEachLimit(len(pending), fanout, func(j int) {
		canonical := outcomes[pending[j]].canonical
		routedAddr := ""
		owner, _, err := ls.net.Route(ls.from, canonical)
		if err == nil {
			routedAddr = owner.Addr()
		}
		chain := replicaChain(ls.net, ls.replicas, routedAddr, canonical)
		if len(chain) == 0 {
			routeErrs[j] = err
			return
		}
		states[j] = probeState{idx: pending[j], owners: chain}
	})
	ls.trace.End(routeSpan)
	for _, err := range routeErrs {
		if err != nil {
			return nil, err
		}
	}

	// Fetch waves: wave 0 contacts every key's current owner; keys whose
	// batch failed advance to their next replica and go into the next
	// wave. At most len(chain) waves, so the walk always terminates.
	for wave := 0; len(states) > 0; wave++ {
		// Group per current owner, preserving candidate order both
		// across batches and inside each batch.
		byOwner := make(map[string][]probeState, len(states))
		var addrs []string
		for _, st := range states {
			addr := st.owners[0]
			if _, ok := byOwner[addr]; !ok {
				addrs = append(addrs, addr)
			}
			byOwner[addr] = append(byOwner[addr], st)
		}

		fetchErrs := make([]error, len(addrs))
		forEachLimit(len(addrs), fanout, func(j int) {
			batch := byOwner[addrs[j]]
			idxs := make([]int, len(batch))
			for i, st := range batch {
				idxs[i] = st.idx
			}
			fetchSpan := ls.trace.Start(lvlSpan, "fetch",
				telemetry.Str("owner", addrs[j]),
				telemetry.Num("keys", uint64(len(idxs))),
				telemetry.Num("wave", uint64(wave)))
			fetchErrs[j] = ls.fetchOwnerBatch(addrs[j], idxs, outcomes)
			if fetchErrs[j] != nil {
				ls.trace.Annotate(fetchSpan, telemetry.Str("error", fetchErrs[j].Error()))
			}
			ls.trace.End(fetchSpan)
		})
		res.RPCs += len(addrs)
		if wave > 0 {
			res.Failovers += len(addrs)
		}

		var retry []probeState
		for j, addr := range addrs {
			if fetchErrs[j] == nil {
				continue
			}
			for _, st := range byOwner[addr] {
				if len(st.owners) <= 1 {
					return nil, fmt.Errorf("core: fetch %q: all %d replicas failed: %w",
						outcomes[st.idx].canonical, ls.replicas, fetchErrs[j])
				}
				retry = append(retry, probeState{idx: st.idx, owners: st.owners[1:]})
			}
		}
		states = retry
	}
	return outcomes, nil
}

// fetchReqPool recycles fetch-request buffers. Safe because CallService
// never retains the request past its return: transports write it to the
// wire (retries included) before returning, and in-process handlers
// decode it into their own copies.
var fetchReqPool = sync.Pool{New: func() any { return new([]byte) }}

// fetchOwnerBatch issues one multi-key fetch to an index node and fills
// the outcome slots assigned to it.
func (ls *latticeSearch) fetchOwnerBatch(addr string, idxs []int, outcomes []probeOutcome) error {
	keys := make([]string, len(idxs))
	for i, idx := range idxs {
		keys[i] = outcomes[idx].canonical
	}
	bp := fetchReqPool.Get().(*[]byte)
	req := postings.EncodeKeyList((*bp)[:0], keys)
	raw, err := ls.net.CallService(addr, SvcFetchBatch, req)
	*bp = req
	fetchReqPool.Put(bp)
	if err != nil {
		return err
	}
	results, err := decodeFetchBatchResp(raw)
	if err != nil {
		return err
	}
	if len(results) != len(keys) {
		return fmt.Errorf("%w: %d answers for %d keys", errCorruptRPC, len(results), len(keys))
	}
	for i, r := range results {
		if r.key != keys[i] {
			return fmt.Errorf("%w: answer for key %q, want %q", errCorruptRPC, r.key, keys[i])
		}
		outcomes[idxs[i]].status = r.status
		outcomes[idxs[i]].list = r.list
	}
	return nil
}
