package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/postings"
)

// Peer is one participant: it stores a fraction of the global document
// collection, computes the keys derivable from it, inserts them into the
// global index, and (as an overlay node) hosts a fraction of that index.
type Peer struct {
	eng  *Engine
	node overlay.Member
	docs []docState

	mu sync.Mutex
	// nd[s] holds the keys of size s this peer contributed that the
	// global index classified non-discriminative — exactly the knowledge
	// the paper says local HDK computation needs ("the global document
	// frequencies of the local size 1 and size (s-1) NDKs").
	nd [MaxKeySize + 1]map[Key]bool
	// fresh[s] holds keys that turned non-discriminative since this
	// peer's last completed generation round of size s+1. Freshly-ND
	// keys drive the incremental-maintenance expansion: their supersets
	// were never generated, so they need postings from ALL local
	// documents, while everything else only needs the new documents.
	fresh [MaxKeySize + 1]map[Key]bool
	// indexedDocs is the watermark: p.docs[:indexedDocs] are covered by
	// the built index; the tail arrived via AddDocuments.
	indexedDocs int
}

// docState is a pre-processed local document: the term sequence with
// globally very frequent terms removed (the collection-adaptive stop list
// of Section 4.1) plus the per-term frequencies used for scoring.
type docState struct {
	id    corpus.DocID
	terms []corpus.TermID
	tf    map[corpus.TermID]int
	dl    int // original document length, for BM25 normalization
}

// Node returns the peer's overlay node.
func (p *Peer) Node() overlay.Member { return p.node }

// newPeer pre-processes the peer's local collection.
func newPeer(eng *Engine, node overlay.Member, local *corpus.Collection) *Peer {
	p := &Peer{eng: eng, node: node}
	for i := range p.nd {
		p.nd[i] = make(map[Key]bool)
		p.fresh[i] = make(map[Key]bool)
	}
	p.appendDocs(local)
	node.Handle(SvcNotify, p.handleNotify)
	return p
}

// appendDocs pre-processes documents into the peer's local store.
func (p *Peer) appendDocs(local *corpus.Collection) {
	for i := range local.Docs {
		d := &local.Docs[i]
		ds := docState{id: d.ID, dl: len(d.Terms), tf: make(map[corpus.TermID]int)}
		ds.terms = make([]corpus.TermID, 0, len(d.Terms))
		for _, t := range d.Terms {
			if p.eng.vf[t] {
				continue
			}
			ds.terms = append(ds.terms, t)
			ds.tf[t]++
		}
		p.docs = append(p.docs, ds)
	}
}

// AddDocuments stages new local documents for the next UpdateIndex call.
// Document ids must be globally unique and larger than every id the peer
// already holds (posting lists are ordered by doc id).
func (p *Peer) AddDocuments(local *corpus.Collection) error {
	var maxID corpus.DocID
	if len(p.docs) > 0 {
		maxID = p.docs[len(p.docs)-1].id
	}
	for i := range local.Docs {
		if (len(p.docs) > 0 || i > 0) && local.Docs[i].ID <= maxID {
			return fmt.Errorf("core: new document id %d not above preceding maximum %d",
				local.Docs[i].ID, maxID)
		}
		maxID = local.Docs[i].ID
	}
	p.appendDocs(local)
	return nil
}

// ServeNotify handles one SvcNotify delivery. newPeer registers
// handleNotify on the peer's own overlay member, which covers fabrics
// that dispatch member-local services; the cluster daemon additionally
// registers this exported form on its RPC dispatch so an external build
// coordinator reaches the peer's expansion state over the wire.
func (p *Peer) ServeNotify(req []byte) ([]byte, error) { return p.handleNotify(req) }

// handleNotify records keys the global index reclassified as
// non-discriminative; they drive next round's expansion.
func (p *Peer) handleNotify(req []byte) ([]byte, error) {
	batch, err := postings.DecodeKeyedBatch(req)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range batch {
		k, err := p.eng.parseKey(m.Key)
		if err != nil {
			return nil, err
		}
		p.nd[k.Size()][k] = true
		p.fresh[k.Size()][k] = true
	}
	return nil, nil
}

// markND is the in-response path: the peer learns a key is ND from the
// classify sweep without a dedicated message (tests use it directly).
func (p *Peer) markND(k Key) {
	p.mu.Lock()
	p.nd[k.Size()][k] = true
	p.fresh[k.Size()][k] = true
	p.mu.Unlock()
}

// consumeFresh clears the freshness set of the given size after a
// generation round has expanded it, and advances the document watermark
// when the whole update completes.
func (p *Peer) consumeFresh(size int) {
	p.mu.Lock()
	p.fresh[size] = make(map[Key]bool)
	p.mu.Unlock()
}

func (p *Peer) advanceWatermark() { p.indexedDocs = len(p.docs) }

// ndCount returns how many keys of size s the peer knows to be ND.
func (p *Peer) ndCount(s int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.nd[s])
}

// candAcc accumulates a candidate key's local posting list during a
// generation pass. Documents are scanned in ascending id order, so the
// list stays sorted and per-doc dedup is a single comparison.
type candAcc struct {
	lastDoc corpus.DocID // +1; 0 means none yet
	list    postings.List
}

// tfComp returns the df-independent BM25 factor for term t in doc ds: the
// partial score a posting carries into the global index (the index node
// applies idf once the global df is known).
func (p *Peer) tfComp(ds *docState, t corpus.TermID) float32 {
	cfg := &p.eng.cfg
	full := cfg.BM25.Score(cfg.Stats, ds.tf[t], 1, ds.dl)
	return float32(full / cfg.Stats.IDF(1))
}

// keyScore is the partial relevance of a key within a document: the sum
// of its member terms' partial BM25 scores.
func (p *Peer) keyScore(ds *docState, k Key) float32 {
	var s float32
	for i := 0; i < k.Size(); i++ {
		s += p.tfComp(ds, k.Term(i))
	}
	return s
}

// candFilter selects candidates by freshness during generation.
// candAll keeps everything (the initial build). The incremental update
// partitions work between candNotFresh over the new documents (keys that
// already exist in the index only need the new postings) and
// candFreshOnly over all documents (keys whose generation was unlocked
// by a freshly non-discriminative sub-key were never inserted and need
// their full local posting lists).
type candFilter int

const (
	candAll candFilter = iota
	candNotFresh
	candFreshOnly
)

func (f candFilter) keep(fresh bool) bool {
	switch f {
	case candNotFresh:
		return !fresh
	case candFreshOnly:
		return fresh
	default:
		return true
	}
}

// generate computes this peer's local candidate keys of size s with their
// local posting lists over all documents (the initial build). Size 1
// enumerates distinct document terms; larger sizes expand known-ND keys
// with co-window terms under redundancy filtering (every immediate
// sub-key must be ND).
func (p *Peer) generate(s int) map[Key]*candAcc {
	switch {
	case s == 1:
		return p.generateSingles(p.docs)
	case s == 2:
		return p.generatePairs(p.docs, candAll)
	default:
		return p.generateExtensions(s, p.docs, candAll)
	}
}

// generateUpdate computes the incremental-maintenance candidates of size
// s: new postings for existing keys from the new documents, plus full
// postings for keys unlocked by freshly-ND sub-keys from all documents.
// The two passes partition the candidate space, so the maps are disjoint.
func (p *Peer) generateUpdate(s int) map[Key]*candAcc {
	newDocs := p.docs[p.indexedDocs:]
	var cands map[Key]*candAcc
	switch {
	case s == 1:
		return p.generateSingles(newDocs)
	case s == 2:
		cands = p.generatePairs(newDocs, candNotFresh)
		mergeCands(cands, p.generatePairs(p.docs, candFreshOnly))
	default:
		cands = p.generateExtensions(s, newDocs, candNotFresh)
		mergeCands(cands, p.generateExtensions(s, p.docs, candFreshOnly))
	}
	return cands
}

// mergeCands folds src into dst; the two passes generate disjoint key
// sets, so a collision indicates a bug.
func mergeCands(dst, src map[Key]*candAcc) {
	for k, v := range src {
		if _, dup := dst[k]; dup {
			panic("core: incremental generation passes overlapped")
		}
		dst[k] = v
	}
}

func (p *Peer) generateSingles(docs []docState) map[Key]*candAcc {
	cands := make(map[Key]*candAcc)
	for i := range docs {
		ds := &docs[i]
		for t := range ds.tf {
			k := NewKey(t)
			p.addCand(cands, k, ds)
		}
	}
	return cands
}

// addCand records (key, doc) once per document.
func (p *Peer) addCand(cands map[Key]*candAcc, k Key, ds *docState) {
	acc := cands[k]
	if acc == nil {
		acc = &candAcc{}
		cands[k] = acc
	}
	if acc.lastDoc == ds.id+1 {
		return
	}
	acc.lastDoc = ds.id + 1
	acc.list = append(acc.list, postings.Posting{Doc: ds.id, Score: p.keyScore(ds, k)})
}

// generatePairs builds size-2 candidates: pairs of ND single terms
// co-occurring within a window. Each in-window pair is visited exactly
// once, when its right member enters the sliding window (the counting
// device of the paper's Theorem 3 proof). Under the redundancy-filtering
// ablation one ND member suffices. A pair is "fresh" when either member
// turned ND since the last round — exactly the pairs that do not exist
// in the index yet.
func (p *Peer) generatePairs(docs []docState, filter candFilter) map[Key]*candAcc {
	cfg := &p.eng.cfg
	w := cfg.Window
	cands := make(map[Key]*candAcc)
	p.mu.Lock()
	nd1 := p.nd[1]
	fresh1 := p.fresh[1]
	p.mu.Unlock()
	for i := range docs {
		ds := &docs[i]
		for j, t := range ds.terms {
			kt := NewKey(t)
			tND := nd1[kt]
			if !tND && !cfg.DisableRedundancyFiltering {
				continue
			}
			lo := j - w + 1
			if lo < 0 {
				lo = 0
			}
			for x := lo; x < j; x++ {
				u := ds.terms[x]
				if u == t {
					continue
				}
				ku := NewKey(u)
				uND := nd1[ku]
				if cfg.DisableRedundancyFiltering {
					if !tND && !uND {
						continue
					}
				} else if !uND {
					continue
				}
				if !filter.keep(fresh1[kt] || fresh1[ku]) {
					continue
				}
				p.addCand(cands, NewKey(u, t), ds)
			}
		}
	}
	return cands
}

// generateExtensions builds size-s candidates (s >= 3) by extending ND
// keys of size s-1 with an ND term in the same window, pruning candidates
// with any discriminative immediate sub-key (Apriori-style: the inductive
// construction guarantees deeper sub-keys are ND). A candidate is
// "fresh" when any immediate sub-key turned ND since the last round.
func (p *Peer) generateExtensions(s int, docs []docState, filter candFilter) map[Key]*candAcc {
	cfg := &p.eng.cfg
	w := cfg.Window
	cands := make(map[Key]*candAcc)
	p.mu.Lock()
	nd1 := p.nd[1]
	ndPrev := p.nd[s-1]
	freshPrev := p.fresh[s-1]
	p.mu.Unlock()
	if len(ndPrev) == 0 {
		return cands
	}
	// Scratch buffers reused across positions.
	var lookback []corpus.TermID
	for i := range docs {
		ds := &docs[i]
		for j, c := range ds.terms {
			cND := nd1[NewKey(c)]
			if !cND && !cfg.DisableRedundancyFiltering {
				continue
			}
			lo := j - w + 1
			if lo < 0 {
				lo = 0
			}
			// Distinct candidate co-terms in the lookback window.
			lookback = lookback[:0]
			for x := lo; x < j; x++ {
				u := ds.terms[x]
				if u == c || containsTerm(lookback, u) {
					continue
				}
				if nd1[NewKey(u)] || cfg.DisableRedundancyFiltering {
					lookback = append(lookback, u)
				}
			}
			// Extend every ND (s-1)-key formed inside the lookback by c.
			p.extendWithin(cands, ds, lookback, c, s, ndPrev, freshPrev, filter, cfg.DisableRedundancyFiltering)
		}
	}
	return cands
}

// extendWithin enumerates (s-1)-subsets of the lookback terms that are ND
// keys and extends them with c, applying the sub-key prune and the
// freshness filter.
func (p *Peer) extendWithin(cands map[Key]*candAcc, ds *docState, lookback []corpus.TermID,
	c corpus.TermID, s int, ndPrev, freshPrev map[Key]bool, filter candFilter, noPrune bool) {
	need := s - 1
	subset := make([]corpus.TermID, 0, need)
	var rec func(start int)
	rec = func(start int) {
		if len(subset) == need {
			base := NewKey(subset...)
			if !ndPrev[base] {
				return
			}
			cand := base.Extend(c)
			allND, anyFresh := p.subkeyState(cand, ndPrev, freshPrev)
			if noPrune {
				// Ablation: only the base must be ND; freshness follows
				// the base alone.
				anyFresh = freshPrev[base]
			} else if !allND {
				return
			}
			if !filter.keep(anyFresh) {
				return
			}
			p.addCand(cands, cand, ds)
			return
		}
		for i := start; i < len(lookback); i++ {
			subset = append(subset, lookback[i])
			rec(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0)
}

// subkeyState walks the immediate sub-keys once, reporting whether all
// are non-discriminative (redundancy filtering) and whether any turned
// ND since the last round (freshness).
func (p *Peer) subkeyState(cand Key, ndPrev, freshPrev map[Key]bool) (allND, anyFresh bool) {
	allND = true
	cand.Subkeys(func(sub Key) {
		if !ndPrev[sub] {
			allND = false
		}
		if freshPrev[sub] {
			anyFresh = true
		}
	})
	return allND, anyFresh
}

// insertAll routes each candidate key to its DHT owner, groups the
// candidates per owner, and ships one insert RPC per owner carrying every
// (key, posting list) pair that owner is responsible for — the insert-side
// mirror of the batched query fan-out. Under ReplicationFactor R > 1 each
// key's batch entry additionally fans out to the key's R-1 further
// replicas, so a replicated build costs R× the insert postings but no
// extra rounds (replica inserts ride the same one-RPC-per-owner batching).
// It returns the number of postings shipped, counting every replica copy.
func (p *Peer) insertAll(cands map[Key]*candAcc, size int) (uint64, error) {
	keys := make([]Key, 0, len(cands))
	for k := range cands {
		keys = append(keys, k)
	}
	vocab := p.eng.vocab
	sort.Slice(keys, func(i, j int) bool {
		return keyLess(keys[i], keys[j])
	})
	// Routing pass: resolve owners, batching per owner in sorted-key order.
	byOwner := make(map[string][]postings.KeyedMessage)
	var addrs []string
	inserted := uint64(0)
	for _, k := range keys {
		list := cands[k].list
		canonical := k.CanonicalString(vocab)
		owner, _, err := p.eng.net.Route(p.node, canonical)
		if err != nil {
			return 0, fmt.Errorf("core: route key %q: %w", k.DisplayString(vocab), err)
		}
		for _, addr := range p.eng.replicaChain(owner.Addr(), canonical) {
			if _, ok := byOwner[addr]; !ok {
				addrs = append(addrs, addr)
			}
			byOwner[addr] = append(byOwner[addr], postings.KeyedMessage{Key: canonical, Aux: uint64(size), List: list})
			inserted += uint64(len(list))
		}
	}
	for _, addr := range addrs {
		req := encodeInsertReq(nil, p.node.Addr(), byOwner[addr])
		resp, err := p.eng.net.CallService(addr, SvcInsert, req)
		if err != nil {
			return 0, fmt.Errorf("core: insert batch at %s: %w", addr, err)
		}
		if err := p.applyInsertResponse(resp); err != nil {
			return 0, err
		}
	}
	return inserted, nil
}

// applyInsertResponse records the global classification of keys this
// peer just contributed to that were already classified: NDK statuses
// feed the peer's expansion knowledge. They are not marked fresh — the
// key already exists globally, so only this peer's new documents (the
// ones that produced the insert) can contain its supersets.
func (p *Peer) applyInsertResponse(resp []byte) error {
	if len(resp) == 0 {
		return nil
	}
	batch, err := postings.DecodeKeyedBatch(resp)
	if err != nil {
		return err
	}
	if len(batch) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range batch {
		if KeyStatus(m.Aux) != StatusNDK {
			continue
		}
		k, err := p.eng.parseKey(m.Key)
		if err != nil {
			return err
		}
		p.nd[k.Size()][k] = true
	}
	return nil
}

func keyLess(a, b Key) bool {
	for i := 0; i < MaxKeySize; i++ {
		if a.t[i] != b.t[i] {
			return a.t[i] < b.t[i]
		}
	}
	return false
}

func containsTerm(ts []corpus.TermID, t corpus.TermID) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// parseKey converts a canonical wire key back to the packed form.
func (e *Engine) parseKey(canonical string) (Key, error) {
	parts := strings.Split(canonical, keySeparator)
	terms := make([]corpus.TermID, 0, len(parts))
	for _, s := range parts {
		id, ok := e.termID[s]
		if !ok {
			return Key{}, fmt.Errorf("core: unknown term %q in key", s)
		}
		terms = append(terms, id)
	}
	if len(terms) > MaxKeySize {
		return Key{}, fmt.Errorf("core: key of size %d exceeds maximum %d", len(terms), MaxKeySize)
	}
	return NewKey(terms...), nil
}
