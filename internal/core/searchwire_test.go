package core

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func TestSearchRequestRoundTrip(t *testing.T) {
	cases := []SearchRequest{
		{Terms: nil, K: 0},
		{Terms: []string{"alpha"}, K: 10},
		{Terms: []string{"alpha", "beta", "a\x1fcompound"}, K: 20, NoCache: true},
		{Terms: []string{"alpha", "beta"}, K: 5, Trace: true},
		{Terms: []string{"alpha"}, K: 3, NoCache: true, Trace: true},
		{Terms: []string{""}, K: 1 << 19},
	}
	for _, in := range cases {
		buf := EncodeSearchRequest(in)
		out, err := DecodeSearchRequest(buf)
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if out.K != in.K || out.NoCache != in.NoCache || out.Trace != in.Trace || len(out.Terms) != len(in.Terms) {
			t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
		}
		for i := range in.Terms {
			if out.Terms[i] != in.Terms[i] {
				t.Fatalf("term %d: %q != %q", i, out.Terms[i], in.Terms[i])
			}
		}
	}
}

// TestSearchRequestCanonical pins the property the coordinator's result
// cache depends on: equal requests encode to equal bytes.
func TestSearchRequestCanonical(t *testing.T) {
	a := EncodeSearchRequest(SearchRequest{Terms: []string{"x", "y"}, K: 10})
	b := EncodeSearchRequest(SearchRequest{Terms: []string{"x", "y"}, K: 10})
	if string(a) != string(b) {
		t.Fatal("identical requests encode differently")
	}
	c := EncodeSearchRequest(SearchRequest{Terms: []string{"x", "y"}, K: 10, NoCache: true})
	if string(a) == string(c) {
		t.Fatal("options not reflected in the encoding")
	}
}

func TestSearchRequestCorrupt(t *testing.T) {
	valid := EncodeSearchRequest(SearchRequest{Terms: []string{"alpha", "beta"}, K: 10})
	cases := map[string][]byte{
		"empty input":      {},
		"huge k":           {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"unknown flag bit": {10, 0x04, 0},
		"truncated terms":  valid[:len(valid)-2],
	}
	for name, buf := range cases {
		if _, err := DecodeSearchRequest(buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, errCorruptRPC) && !errors.Is(err, postings.ErrCorrupt) {
			t.Errorf("%s: unexpected error class %v", name, err)
		}
	}
}

func TestSearchResponseRoundTrip(t *testing.T) {
	in := &SearchResult{
		Results: []rank.Result{
			{Doc: 0, Score: 12.0625},
			{Doc: 41, Score: 0.0001220703125},
			{Doc: 1<<32 - 1, Score: -1.5},
		},
		FetchedPosts: 991,
		ProbedKeys:   7,
		FoundKeys:    5,
		RPCs:         4,
		Rounds:       3,
		Failovers:    1,
	}
	for _, cached := range []bool{false, true} {
		resp := EncodeSearchResponse(EncodeSearchResult(in), cached)
		out, gotCached, err := DecodeSearchResponse(resp)
		if err != nil {
			t.Fatal(err)
		}
		if gotCached != cached {
			t.Fatalf("cached flag = %v, want %v", gotCached, cached)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
		}
	}
	// Scores survive bit-exactly (the parity gates compare with
	// reflect.DeepEqual on float64s).
	resp := EncodeSearchResponse(EncodeSearchResult(in), false)
	out, _, _ := DecodeSearchResponse(resp)
	for i := range in.Results {
		if out.Results[i].Score != in.Results[i].Score {
			t.Fatalf("score %d not bit-exact", i)
		}
	}
}

func TestSearchResponseEmpty(t *testing.T) {
	resp := EncodeSearchResponse(EncodeSearchResult(&SearchResult{}), false)
	out, cached, err := DecodeSearchResponse(resp)
	if err != nil || cached {
		t.Fatalf("empty response: %v cached=%v", err, cached)
	}
	if len(out.Results) != 0 || out.ProbedKeys != 0 {
		t.Fatalf("empty response decoded to %+v", out)
	}
}

func TestSearchResponseCorrupt(t *testing.T) {
	valid := EncodeSearchResponse(EncodeSearchResult(&SearchResult{
		Results: []rank.Result{{Doc: 3, Score: 1.5}}, ProbedKeys: 1, FoundKeys: 1, RPCs: 1, Rounds: 1,
	}), false)
	cases := map[string][]byte{
		"empty input":       {},
		"bad flag":          {7},
		"huge result count": {0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"truncated score":   valid[:4],
		"missing metrics":   valid[:len(valid)-3],
		"trailing garbage":  append(append([]byte{}, valid...), 0xaa),
	}
	for name, buf := range cases {
		if _, _, err := DecodeSearchResponse(buf); !errors.Is(err, errCorruptRPC) {
			t.Errorf("%s: got %v, want errCorruptRPC", name, err)
		}
	}
}

// TestSearchResponseTracedRoundTrip pins the traced response frame:
// the answer decodes bit-identically to an untraced frame and the trace
// bytes ride behind the length-prefixed body; truncations are corrupt.
func TestSearchResponseTracedRoundTrip(t *testing.T) {
	in := &SearchResult{
		Results:      []rank.Result{{Doc: 3, Score: 1.5}, {Doc: 9, Score: 2.25}},
		FetchedPosts: 42, ProbedKeys: 3, FoundKeys: 2, RPCs: 2, Rounds: 2,
	}
	tb := telemetry.StartTrace("coordinate", telemetry.Num("k", 2))
	lvl := tb.Start(0, "level", telemetry.Num("level", 1))
	tb.End(lvl)
	traceBytes := telemetry.EncodeTrace(tb.Finish())

	resp := EncodeSearchResponseTraced(EncodeSearchResult(in), traceBytes)
	out, cached, gotTrace, err := DecodeSearchResponseTrace(resp)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("traced frame decoded as cached")
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
	tr, err := telemetry.DecodeTrace(gotTrace)
	if err != nil {
		t.Fatalf("trace bytes corrupt after frame round trip: %v", err)
	}
	if len(tr.Spans) != 2 || tr.Spans[0].Name != "coordinate" {
		t.Fatalf("trace mangled: %+v", tr.Spans)
	}
	// The plain decoder must accept the traced frame too (trace ignored).
	if out2, _, err := DecodeSearchResponse(resp); err != nil || !reflect.DeepEqual(in, out2) {
		t.Fatalf("plain decode of traced frame: %+v, %v", out2, err)
	}
	// Untraced frames surface nil trace bytes.
	if _, _, tb2, err := DecodeSearchResponseTrace(EncodeSearchResponse(EncodeSearchResult(in), false)); err != nil || tb2 != nil {
		t.Fatalf("untraced frame: trace=%v err=%v", tb2, err)
	}
	// A traced frame with no trace bytes is corrupt.
	if _, _, _, err := DecodeSearchResponseTrace(EncodeSearchResponseTraced(EncodeSearchResult(in), nil)); !errors.Is(err, errCorruptRPC) {
		t.Fatalf("empty trace accepted: %v", err)
	}
	for cut := 0; cut < len(resp); cut++ {
		DecodeSearchResponseTrace(resp[:cut]) // must not panic
	}
}

// TestSearchOverloadRoundTrip pins the overload rejection frame: the
// retry-after hint survives the wire (floored at 1ms, capped at 60s),
// the decode surfaces a *OverloadError matchable via errors.Is, and a
// rejection is a decode-level error, never a result.
func TestSearchOverloadRoundTrip(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want time.Duration
	}{
		{0, time.Millisecond},                      // floored: a hint is always positive
		{300 * time.Microsecond, time.Millisecond}, // sub-ms floors too
		{time.Millisecond, time.Millisecond},
		{25 * time.Millisecond, 25 * time.Millisecond},
		{time.Second, time.Second},
		{5 * time.Minute, 60 * time.Second}, // capped at maxRetryAfterMS
	}
	for _, tc := range cases {
		res, cached, err := DecodeSearchResponse(EncodeSearchOverloaded(tc.in))
		if res != nil || cached {
			t.Fatalf("hint %v: overload decoded to a result (%+v cached=%v)", tc.in, res, cached)
		}
		var ov *OverloadError
		if !errors.As(err, &ov) {
			t.Fatalf("hint %v: got %v, want *OverloadError", tc.in, err)
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("hint %v: errors.Is(err, ErrOverloaded) = false", tc.in)
		}
		if ov.RetryAfter != tc.want {
			t.Fatalf("hint %v: decoded retry-after %v, want %v", tc.in, ov.RetryAfter, tc.want)
		}
	}
}

// TestSearchOverloadCorrupt: malformed overload frames are corrupt RPCs,
// not zero-valued backoff hints.
func TestSearchOverloadCorrupt(t *testing.T) {
	valid := EncodeSearchOverloaded(25 * time.Millisecond)
	cases := map[string][]byte{
		"flag only, no hint": {2},
		"zero hint":          {2, 0},
		"hint beyond cap":    binary.AppendUvarint([]byte{2}, maxRetryAfterMS+1),
		"huge hint":          {2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"trailing garbage":   append(append([]byte{}, valid...), 0x00),
	}
	for name, buf := range cases {
		if _, _, err := DecodeSearchResponse(buf); !errors.Is(err, errCorruptRPC) {
			t.Errorf("%s: got %v, want errCorruptRPC", name, err)
		}
	}
}

func TestSearchResponseCorruptNeverPanics(t *testing.T) {
	valid := EncodeSearchResponse(EncodeSearchResult(&SearchResult{
		Results:    []rank.Result{{Doc: 3, Score: 1.5}, {Doc: 9, Score: 2.25}},
		ProbedKeys: 3, FoundKeys: 2, RPCs: 2, Rounds: 2,
	}), true)
	for cut := 0; cut < len(valid); cut++ {
		DecodeSearchResponse(valid[:cut]) // must not panic
	}
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		DecodeSearchResponse(mut) // must not panic; error or garbage both fine
	}
	reqValid := EncodeSearchRequest(SearchRequest{Terms: []string{"alpha", "beta"}, K: 9, NoCache: true})
	for cut := 0; cut < len(reqValid); cut++ {
		DecodeSearchRequest(reqValid[:cut])
	}
	for i := range reqValid {
		mut := append([]byte(nil), reqValid...)
		mut[i] ^= 0xff
		DecodeSearchRequest(mut)
	}
	ovValid := EncodeSearchOverloaded(37 * time.Millisecond)
	for cut := 0; cut < len(ovValid); cut++ {
		DecodeSearchResponse(ovValid[:cut])
	}
	for i := range ovValid {
		mut := append([]byte(nil), ovValid...)
		mut[i] ^= 0xff
		DecodeSearchResponse(mut)
	}
}

// TestQueryTermsRendering pins the coordinator input contract:
// deduplicated, very-frequent-filtered, ascending-TermID canonical
// strings.
func TestQueryTermsRendering(t *testing.T) {
	col := testCollection(t, 20)
	cfg := testConfig(col, 6)
	cfg.Ff = 10
	vocab := []string{"zed", "alpha", "mid"}
	freqs := []int{1, 100, 1} // "alpha" exceeds Ff
	net := overlay.NewNetwork(transport.NewInProc())
	if _, err := net.AddNode("n0"); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net, cfg, vocab, freqs)
	if err != nil {
		t.Fatal(err)
	}
	q := corpus.Query{Terms: []corpus.TermID{2, 0, 2, 1, 0}}
	got := eng.QueryTerms(q)
	// TermID order (0,2 after dedup; 1 dropped as very frequent):
	want := []string{"zed", "mid"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QueryTerms = %v, want %v", got, want)
	}
}
