package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

func TestNewKeySortsAndDedups(t *testing.T) {
	k := NewKey(5, 1, 3, 1)
	if k.Size() != 3 {
		t.Fatalf("Size = %d, want 3", k.Size())
	}
	if got := k.Terms(); !reflect.DeepEqual(got, []corpus.TermID{1, 3, 5}) {
		t.Fatalf("Terms = %v", got)
	}
}

func TestKeyComparable(t *testing.T) {
	if NewKey(2, 1) != NewKey(1, 2) {
		t.Fatal("order-insensitive equality broken")
	}
	if NewKey(1, 2) == NewKey(1, 3) {
		t.Fatal("distinct keys equal")
	}
	m := map[Key]int{NewKey(7, 3): 1}
	if m[NewKey(3, 7)] != 1 {
		t.Fatal("map lookup by equivalent key failed")
	}
}

func TestKeyContains(t *testing.T) {
	k := NewKey(1, 5, 9)
	for _, tt := range []corpus.TermID{1, 5, 9} {
		if !k.Contains(tt) {
			t.Errorf("Contains(%d) = false", tt)
		}
	}
	if k.Contains(2) {
		t.Error("Contains(2) = true")
	}
}

func TestKeyExtendDrop(t *testing.T) {
	k := NewKey(1, 5)
	e := k.Extend(3)
	if got := e.Terms(); !reflect.DeepEqual(got, []corpus.TermID{1, 3, 5}) {
		t.Fatalf("Extend = %v", got)
	}
	if got := e.Drop(1).Terms(); !reflect.DeepEqual(got, []corpus.TermID{1, 5}) {
		t.Fatalf("Drop = %v", got)
	}
}

func TestKeyExtendDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate Extend")
		}
	}()
	NewKey(1).Extend(1)
}

func TestKeyOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on oversized key")
		}
	}()
	NewKey(1, 2, 3, 4, 5)
}

func TestSubkeys(t *testing.T) {
	k := NewKey(1, 2, 3)
	var subs []Key
	k.Subkeys(func(s Key) { subs = append(subs, s) })
	want := []Key{NewKey(2, 3), NewKey(1, 3), NewKey(1, 2)}
	if !reflect.DeepEqual(subs, want) {
		t.Fatalf("Subkeys = %v, want %v", subs, want)
	}
	NewKey(9).Subkeys(func(Key) { t.Fatal("size-1 key has no proper subkeys") })
}

func TestIsSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Key
		want bool
	}{
		{NewKey(1), NewKey(1, 2), true},
		{NewKey(2), NewKey(1, 2), true},
		{NewKey(1, 2), NewKey(1, 2), true},
		{NewKey(3), NewKey(1, 2), false},
		{NewKey(1, 2, 3), NewKey(1, 2), false},
		{NewKey(1, 3), NewKey(1, 2, 3), true},
	}
	for _, c := range cases {
		if got := c.a.IsSubsetOf(c.b); got != c.want {
			t.Errorf("%v ⊆ %v = %v, want %v", c.a.Terms(), c.b.Terms(), got, c.want)
		}
	}
}

func TestSubkeysAreSubsets(t *testing.T) {
	prop := func(a, b, c uint16) bool {
		ta, tb, tc := corpus.TermID(a), corpus.TermID(b), corpus.TermID(c)
		if ta == tb || tb == tc || ta == tc {
			return true
		}
		k := NewKey(ta, tb, tc)
		ok := true
		k.Subkeys(func(s Key) {
			if !s.IsSubsetOf(k) || s.Size() != k.Size()-1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalStringAndParse(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	e := &Engine{vocab: vocab, termID: map[string]corpus.TermID{}}
	for i, s := range vocab {
		e.termID[s] = corpus.TermID(i)
	}
	for _, k := range []Key{NewKey(0), NewKey(2, 0), NewKey(3, 1, 0)} {
		got, err := e.parseKey(k.CanonicalString(vocab))
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("round trip: got %v, want %v", got.Terms(), k.Terms())
		}
	}
	if _, err := e.parseKey("nope"); err == nil {
		t.Error("unknown term accepted")
	}
}

func TestDisplayString(t *testing.T) {
	vocab := []string{"alpha", "beta"}
	if got := NewKey(1, 0).DisplayString(vocab); got != "alpha+beta" {
		t.Fatalf("DisplayString = %q", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(statsFor(100, 50))
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.DFMax = 0 },
		func(c *Config) { c.SMax = 0 },
		func(c *Config) { c.SMax = MaxKeySize + 1 },
		func(c *Config) { c.Window = 1 },
		func(c *Config) { c.Ff = 0 },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
