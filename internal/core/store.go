package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/postings"
	"repro/internal/replica"
)

// Service names the HDK engine registers on overlay nodes.
const (
	// SvcInsert merges a peer's local posting lists into the index
	// (exported so the cluster daemon can meter re-index traffic).
	SvcInsert     = "hdk.insert"
	SvcFetchBatch = "hdk.fetchBatch"
	// SvcNotify delivers NDK expansion notifications to a contributing
	// peer (exported so the cluster daemon can route deliveries from an
	// external build coordinator to its locally hosted peer).
	SvcNotify = "hdk.notify"
)

// KeyStatus is the global classification of a key held by the index.
type KeyStatus uint8

// Key classifications. Absent is only produced by fetches for keys the
// index does not hold.
const (
	StatusAbsent KeyStatus = iota
	StatusHDK
	StatusNDK
)

// String implements fmt.Stringer.
func (s KeyStatus) String() string {
	switch s {
	case StatusHDK:
		return "HDK"
	case StatusNDK:
		return "NDK"
	default:
		return "absent"
	}
}

// entry is one key's state in an index node's fraction of the global
// index.
type entry struct {
	size       int
	list       postings.List // full for HDKs, top-DFmax for NDKs
	df         int           // true global document frequency
	classified bool
	status     KeyStatus
	// contributors are the notify addresses of peers that inserted
	// postings for this key and must be told when it turns ND.
	contributors map[string]struct{}
	// sum memoizes the content checksum of the entry's canonical export
	// (valid while sumOK): repair sweeps fingerprint entries far more
	// often than mutations dirty them, and the checksum costs a full
	// re-encode. Guarded by the store lock like every other field.
	sum   uint64
	sumOK bool
}

// hdkStore is the fraction of the global index one overlay node is
// responsible for.
type hdkStore struct {
	mu      sync.Mutex
	cfg     *Config
	entries map[string]*entry
}

func newHDKStore(cfg *Config) *hdkStore {
	return &hdkStore{cfg: cfg, entries: make(map[string]*entry)}
}

// insert merges a peer's local posting list for a key. Doc sets are
// disjoint across peers (each document lives on exactly one peer), so the
// global df is the sum of inserted list lengths. It returns the entry's
// current classification so new contributors of already-classified keys
// learn the global status in the insert response (incremental
// maintenance: a peer whose new documents introduce a term it never held
// must still know the term is non-discriminative to expand it).
//
// For classified NDKs the merged list is re-truncated immediately. This
// is exact: a posting evicted by an earlier truncation was dominated by
// DFmax better postings, which are all still present, so it can never
// re-enter any later top-DFmax.
func (s *hdkStore) insert(key string, size int, list postings.List, contributor string) (KeyStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		e = &entry{size: size, contributors: make(map[string]struct{})}
		// The map retains the key; clone it so a key substringing a
		// decoded RPC batch does not pin the whole request buffer.
		s.entries[strings.Clone(key)] = e
	}
	e.df += len(list)
	if e.classified && e.status == StatusNDK {
		if !s.cfg.DisableNDKStorage {
			e.list = postings.Union(e.list, list).TopK(s.cfg.DFMax)
		}
	} else {
		e.list = postings.Union(e.list, list)
	}
	e.contributors[contributor] = struct{}{}
	e.sumOK = false
	return e.status, e.classified
}

// classifySweep classifies every not-yet-classified entry of the given
// size (df <= DFmax becomes an HDK keeping its full posting list;
// anything above becomes an NDK truncated to its top-DFmax postings, or
// dropped entirely under the NDK-storage ablation) and RE-classifies
// already-classified HDKs whose df grew past DFmax through incremental
// insertion — the paper's maintenance rule: "if any of the inserted HDKs
// become globally non-discriminative, [the network] notifies the peers
// that have submitted such key". It returns, per newly non-discriminative
// key, the contributors to notify.
func (s *hdkStore) classifySweep(size int) map[string][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	notify := make(map[string][]string)
	for key, e := range s.entries {
		if e.size != size {
			continue
		}
		switch {
		case !e.classified:
			e.classified = true
			e.sumOK = false
			if e.df <= s.cfg.DFMax {
				e.status = StatusHDK
				continue
			}
		case e.status == StatusHDK && e.df > s.cfg.DFMax:
			// HDK turned non-discriminative under new documents.
		default:
			continue
		}
		e.sumOK = false
		e.status = StatusNDK
		if s.cfg.DisableNDKStorage {
			e.list = nil
		} else {
			e.list = e.list.TopK(s.cfg.DFMax)
		}
		addrs := make([]string, 0, len(e.contributors))
		for a := range e.contributors {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		notify[key] = addrs
	}
	return notify
}

// fetch returns the key's classification, global df and its posting list
// with the idf(df) relevance factor applied (the index node knows the
// global df; the querying peer only merges).
func (s *hdkStore) fetch(key string) (KeyStatus, int, postings.List) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetchLocked(key)
}

func (s *hdkStore) fetchLocked(key string) (KeyStatus, int, postings.List) {
	e, ok := s.entries[key]
	if !ok || !e.classified {
		return StatusAbsent, 0, nil
	}
	idf := float32(s.cfg.Stats.IDF(e.df))
	scored := make(postings.List, len(e.list))
	for i, p := range e.list {
		scored[i] = postings.Posting{Doc: p.Doc, Score: p.Score * idf}
	}
	return e.status, e.df, scored
}

// fetchBatch answers one multi-key fetch under a single lock acquisition:
// the response carries, per requested key in request order, the same
// (status, df, scored list) triple a single fetch would return.
func (s *hdkStore) fetchBatch(keys []string) []fetchResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]fetchResult, len(keys))
	for i, key := range keys {
		status, df, list := s.fetchLocked(key)
		out[i] = fetchResult{key: key, status: status, df: df, list: list}
	}
	return out
}

// fetchBatchWire answers one multi-key fetch directly in wire form: the
// exact response size is computed first, then statuses, dfs and
// idf-scaled posting lists are encoded into one allocation — the scored
// values never materialize as an intermediate list, because their
// lifetime ends the moment they are written into the response buffer.
// The bytes are identical to encodeFetchBatchResp(fetchBatch(keys)).
func (s *hdkStore) fetchBatchWire(keys []string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	size := postings.UvarintSize(uint64(len(keys)))
	for _, key := range keys {
		size += postings.UvarintSize(uint64(len(key))) + len(key)
		if e, ok := s.entries[key]; ok && e.classified {
			size += postings.UvarintSize(uint64(e.df)<<2|uint64(e.status)) + postings.EncodedSize(e.list)
		} else {
			size += 2 // absent: aux 0 + empty list count
		}
	}
	buf := binary.AppendUvarint(make([]byte, 0, size), uint64(len(keys)))
	for _, key := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(key)))
		buf = append(buf, key...)
		e, ok := s.entries[key]
		if !ok || !e.classified {
			buf = append(buf, 0, 0)
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(e.df)<<2|uint64(e.status))
		buf = postings.EncodeScaled(buf, e.list, float32(s.cfg.Stats.IDF(e.df)))
	}
	return buf
}

// keyList returns the store's resident keys in sorted order (the
// replica repair inventory).
func (s *hdkStore) keyList() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for key := range s.entries {
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// keyCount returns the number of resident keys.
func (s *hdkStore) keyCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// entryFingerprint reports whether the store holds the key and the
// copy's replica fingerprint: the global df (monotone under inserts) plus
// a content checksum over the entry's canonical export encoding. Two
// replicas that saw the same inserts produce byte-identical exports and
// therefore equal fingerprints; a copy that missed inserts reports a
// lower df, and a divergent copy with a coincidentally equal df reports
// a different checksum — either way the repair sweep sees it.
func (s *hdkStore) entryFingerprint(key string) (replica.Fingerprint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return replica.Fingerprint{}, false
	}
	return fingerprintEntry(e), true
}

// fingerprintEntry derives the replica fingerprint of an entry, (re)
// computing the memoized checksum if a mutation dirtied it. The caller
// must hold the store lock (or own the entry exclusively).
func fingerprintEntry(e *entry) replica.Fingerprint {
	if !e.sumOK {
		e.sum = blobSum(exportEntryBytes(e))
		e.sumOK = true
	}
	return replica.Fingerprint{Version: e.df, Sum: e.sum}
}

// blobSum is the content checksum fingerprints carry (FNV-1a 64).
func blobSum(blob []byte) uint64 {
	h := fnv.New64a()
	h.Write(blob)
	return h.Sum64()
}

// exportEntry snapshots one entry for replica repair: uvarint size, df,
// a classified/status byte, the contributor set and the posting list.
// The snapshot carries everything a replica needs to serve fetches AND
// to keep participating in maintenance (classification sweeps, NDK
// notifications) for the key.
func (s *hdkStore) exportEntry(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	return exportEntryBytes(e), true
}

// exportEntryBytes builds the canonical export encoding of an entry.
// Deterministic (contributors sorted, postings delta-coded), so equal
// copies export byte-identically on every member. The caller must hold
// the store lock (or own the entry exclusively).
func exportEntryBytes(e *entry) []byte {
	buf := binary.AppendUvarint(nil, uint64(e.size))
	buf = binary.AppendUvarint(buf, uint64(e.df))
	flags := byte(e.status)
	if e.classified {
		flags |= 1 << 2
	}
	buf = append(buf, flags)
	addrs := make([]string, 0, len(e.contributors))
	for a := range e.contributors {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	buf = binary.AppendUvarint(buf, uint64(len(addrs)))
	for _, a := range addrs {
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		buf = append(buf, a...)
	}
	return postings.Encode(buf, e.list)
}

// exportAll streams every resident entry's (key, canonical export blob)
// pair to emit in sorted key order — the full-store snapshot source for
// the durable persistence layer. The snapshot is point-in-time
// consistent: the store lock is held for the duration.
func (s *hdkStore) exportAll(emit func(key string, blob []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for key := range s.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := emit(key, exportEntryBytes(s.entries[key])); err != nil {
			return err
		}
	}
	return nil
}

// maxContributorPrealloc caps the contributor-map pre-allocation during
// blob decoding: the declared count is attacker-controlled, so a corrupt
// blob must not be able to buy a large allocation with a few bytes. Real
// counts above the cap still decode — the map simply grows as entries
// are inserted, each of which costs actual blob bytes.
const maxContributorPrealloc = 256

// decodeEntryBlob parses a canonical entry export produced by
// exportEntryBytes, validating every length against the remaining input.
func decodeEntryBlob(blob []byte) (*entry, error) {
	size, off := binary.Uvarint(blob)
	if off <= 0 {
		return nil, errCorruptRPC
	}
	df, sz := binary.Uvarint(blob[off:])
	if sz <= 0 || len(blob) <= off+sz {
		return nil, errCorruptRPC
	}
	off += sz
	flags := blob[off]
	off++
	status := KeyStatus(flags & 3)
	if status > StatusNDK || size < 1 || size > MaxKeySize {
		return nil, errCorruptRPC
	}
	nc, sz := binary.Uvarint(blob[off:])
	// Every contributor costs at least one byte (its length prefix), so a
	// count beyond the remaining bytes is corrupt — and the declared count
	// only pre-sizes the map up to a constant cap.
	if sz <= 0 || nc > uint64(len(blob)-off-sz) {
		return nil, errCorruptRPC
	}
	off += sz
	prealloc := nc
	if prealloc > maxContributorPrealloc {
		prealloc = maxContributorPrealloc
	}
	contributors := make(map[string]struct{}, prealloc)
	for i := uint64(0); i < nc; i++ {
		al, sz := binary.Uvarint(blob[off:])
		if sz <= 0 || uint64(len(blob)-off-sz) < al {
			return nil, errCorruptRPC
		}
		off += sz
		contributors[string(blob[off:off+int(al)])] = struct{}{}
		off += int(al)
	}
	list, consumed, err := postings.Decode(blob[off:])
	if err != nil {
		return nil, err
	}
	if off+consumed != len(blob) {
		return nil, errCorruptRPC
	}
	return &entry{
		size:         int(size),
		list:         list,
		df:           int(df),
		classified:   flags&(1<<2) != 0,
		status:       status,
		contributors: contributors,
	}, nil
}

// importEntry installs a repair snapshot, reporting whether it landed.
// An existing copy is replaced only when the incoming one's fingerprint
// is strictly better: replicas that saw the same inserts are
// byte-identical (equal fingerprints, no-op), a copy that missed inserts
// has a lower df and is overwritten by the fuller one, and a DIVERGENT
// copy whose disjoint inserts happen to sum to the same df loses to the
// higher-checksum copy — the deterministic tiebreak every sweep agrees
// on, so all replicas converge.
func (s *hdkStore) importEntry(key string, blob []byte) (bool, error) {
	e, err := decodeEntryBlob(blob)
	if err != nil {
		return false, err
	}
	in := replica.Fingerprint{Version: e.df, Sum: blobSum(blob)}
	// The decoded entry re-exports byte-identically to blob (canonical
	// round trip), so its checksum is already known.
	e.sum, e.sumOK = in.Sum, true
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, exists := s.entries[key]; exists && !in.Better(fingerprintEntry(cur)) {
		return false, nil
	}
	s.entries[key] = e
	return true, nil
}

// restoreEntry force-installs an entry from a durable snapshot or log
// record, replacing any resident copy: during recovery the record
// sequence itself is the authority, not fingerprint order.
func (s *hdkStore) restoreEntry(key string, blob []byte) error {
	e, err := decodeEntryBlob(blob)
	if err != nil {
		return err
	}
	e.sum, e.sumOK = blobSum(blob), true
	s.mu.Lock()
	s.entries[key] = e
	s.mu.Unlock()
	return nil
}

// storedBySize returns resident posting counts and key counts per key
// size (Figures 3 and 5 inputs).
func (s *hdkStore) storedBySize(maxSize int) (posts, keys []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	posts = make([]int, maxSize+1)
	keys = make([]int, maxSize+1)
	for _, e := range s.entries {
		if e.size <= maxSize {
			posts[e.size] += len(e.list)
			keys[e.size]++
		}
	}
	return posts, keys
}

// --- wire encoding -------------------------------------------------------

// errCorruptRPC is returned for malformed HDK RPC payloads.
var errCorruptRPC = errors.New("core: corrupt rpc payload")

// insert request: uvarint contributor-addr length, addr bytes, then a
// keyed batch with Aux = key size.
func encodeInsertReq(buf []byte, contributor string, batch []postings.KeyedMessage) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(contributor)))
	buf = append(buf, contributor...)
	return postings.EncodeKeyedBatch(buf, batch)
}

func decodeInsertReq(req []byte) (contributor string, batch []postings.KeyedMessage, err error) {
	n, sz := binary.Uvarint(req)
	if sz <= 0 || uint64(len(req)-sz) < n {
		return "", nil, errCorruptRPC
	}
	contributor = string(req[sz : sz+int(n)])
	batch, err = postings.DecodeKeyedBatch(req[sz+int(n):])
	return contributor, batch, err
}

// fetchResult is one key's answer inside a batched fetch response.
type fetchResult struct {
	key    string
	status KeyStatus
	df     int
	list   postings.List
}

// batch fetch request: a count-prefixed key list.
func encodeFetchBatchReq(keys []string) []byte {
	return postings.EncodeKeyList(nil, keys)
}

func decodeFetchBatchReq(req []byte) ([]string, error) {
	return postings.DecodeKeyList(req)
}

// batch fetch response: a keyed batch mirroring the single fetch response
// per key (Aux = df<<2 | status), one message per requested key, in
// request order.
func encodeFetchBatchResp(results []fetchResult) []byte {
	ms := make([]postings.KeyedMessage, len(results))
	for i, r := range results {
		ms[i] = postings.KeyedMessage{
			Key:  r.key,
			Aux:  uint64(r.df)<<2 | uint64(r.status),
			List: r.list,
		}
	}
	return postings.EncodeKeyedBatch(nil, ms)
}

func decodeFetchBatchResp(resp []byte) ([]fetchResult, error) {
	batch, err := postings.DecodeKeyedBatch(resp)
	if err != nil {
		return nil, err
	}
	out := make([]fetchResult, len(batch))
	for i, m := range batch {
		status := KeyStatus(m.Aux & 3)
		if status > StatusNDK {
			return nil, fmt.Errorf("%w: bad status %d", errCorruptRPC, status)
		}
		out[i] = fetchResult{key: m.Key, status: status, df: int(m.Aux >> 2), list: m.List}
	}
	return out, nil
}
