package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/corpus"
	"repro/internal/postings"
	"repro/internal/rank"
)

// Wire codec for the hdk.search coordination RPC: a thin client ships a
// query's pre-rendered terms plus the answer size and options in ONE
// request to any daemon, which runs the whole lattice traversal
// server-side and returns the ranked answer with its cost metrics. The
// response body is framed separately from the served-from-cache flag so
// a coordinator can cache the body once and stamp the flag per response.

// SvcSearch is the coordination service name: the daemon-side
// counterpart of Engine.Search, served by cluster.Server.
const SvcSearch = "hdk.search"

// SearchRequest is one coordinated query.
type SearchRequest struct {
	// Terms is the query in coordinator wire form — Engine.QueryTerms
	// output: distinct, non-very-frequent canonical term strings in
	// ascending TermID order. The order decides candidate enumeration
	// and therefore score accumulation, so preserving it is what makes
	// coordinated answers bit-identical to client-engine ones.
	Terms []string
	// K is the number of ranked results requested.
	K int
	// NoCache bypasses the coordinator's query-result cache (both
	// lookup and fill) — for load tests that must exercise the fetch
	// path, and for verifying failover behind a warm cache.
	NoCache bool
	// Trace asks the coordinator to record a per-query span tree
	// (admission wait, per-level fetch waves, per-owner RPC timing) and
	// return it alongside the answer. Cache hits skip coordination, so
	// a traced request answered from cache carries no trace.
	Trace bool
}

// Request option bits.
const (
	searchReqFlagNoCache = 1 << 0
	searchReqFlagTrace   = 1 << 1

	searchReqFlagsKnown = searchReqFlagNoCache | searchReqFlagTrace
)

// maxSearchK bounds the requested answer size a coordinator accepts —
// far above any real top-k, low enough that a corrupt varint cannot ask
// for an absurd ranking.
const maxSearchK = 1 << 20

// EncodeSearchRequest builds the hdk.search request payload. The
// encoding is canonical (no redundant representations), so the raw
// request bytes double as the coordinator's cache key.
func EncodeSearchRequest(req SearchRequest) []byte {
	var flags uint64
	if req.NoCache {
		flags |= searchReqFlagNoCache
	}
	if req.Trace {
		flags |= searchReqFlagTrace
	}
	size := postings.UvarintSize(uint64(req.K)) + postings.UvarintSize(flags) +
		postings.KeyListSize(req.Terms)
	buf := binary.AppendUvarint(make([]byte, 0, size), uint64(req.K))
	buf = binary.AppendUvarint(buf, flags)
	return postings.EncodeKeyList(buf, req.Terms)
}

// DecodeSearchRequest parses an hdk.search request payload.
func DecodeSearchRequest(payload []byte) (SearchRequest, error) {
	var req SearchRequest
	k, n := binary.Uvarint(payload)
	if n <= 0 || k > maxSearchK {
		return req, errCorruptRPC
	}
	off := n
	flags, n := binary.Uvarint(payload[off:])
	if n <= 0 || flags&^uint64(searchReqFlagsKnown) != 0 {
		return req, errCorruptRPC
	}
	off += n
	terms, err := postings.DecodeKeyList(payload[off:])
	if err != nil {
		return req, err
	}
	req.Terms = terms
	req.K = int(k)
	req.NoCache = flags&searchReqFlagNoCache != 0
	req.Trace = flags&searchReqFlagTrace != 0
	return req, nil
}

// EncodeSearchResult serializes a coordinated answer body: the ranked
// results (doc id + exact float64 score bits, so the client sees the
// byte-identical ranking the coordinator computed) followed by the
// per-query cost metrics.
func EncodeSearchResult(res *SearchResult) []byte {
	size := postings.UvarintSize(uint64(len(res.Results)))
	for _, r := range res.Results {
		size += postings.UvarintSize(uint64(r.Doc)) + 8
	}
	size += postings.UvarintSize(res.FetchedPosts) +
		postings.UvarintSize(uint64(res.ProbedKeys)) +
		postings.UvarintSize(uint64(res.FoundKeys)) +
		postings.UvarintSize(uint64(res.RPCs)) +
		postings.UvarintSize(uint64(res.Rounds)) +
		postings.UvarintSize(uint64(res.Failovers))
	buf := binary.AppendUvarint(make([]byte, 0, size), uint64(len(res.Results)))
	for _, r := range res.Results {
		buf = binary.AppendUvarint(buf, uint64(r.Doc))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Score))
	}
	buf = binary.AppendUvarint(buf, res.FetchedPosts)
	buf = binary.AppendUvarint(buf, uint64(res.ProbedKeys))
	buf = binary.AppendUvarint(buf, uint64(res.FoundKeys))
	buf = binary.AppendUvarint(buf, uint64(res.RPCs))
	buf = binary.AppendUvarint(buf, uint64(res.Rounds))
	return binary.AppendUvarint(buf, uint64(res.Failovers))
}

// DecodeSearchResult parses a coordinated answer body.
func DecodeSearchResult(body []byte) (*SearchResult, error) {
	n, off := binary.Uvarint(body)
	// Every result costs at least 9 bytes (1-byte doc varint + 8 score
	// bytes), so a count beyond that bound is corrupt, not a large
	// allocation.
	if off <= 0 || n > uint64(len(body)-off)/9 {
		return nil, errCorruptRPC
	}
	res := &SearchResult{Results: make([]rank.Result, 0, n)}
	for i := uint64(0); i < n; i++ {
		doc, sz := binary.Uvarint(body[off:])
		if sz <= 0 || doc > math.MaxUint32 {
			return nil, errCorruptRPC
		}
		off += sz
		if len(body)-off < 8 {
			return nil, errCorruptRPC
		}
		score := math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		res.Results = append(res.Results, rank.Result{Doc: corpus.DocID(doc), Score: score})
	}
	ints := []*int{&res.ProbedKeys, &res.FoundKeys, &res.RPCs, &res.Rounds, &res.Failovers}
	for i := 0; i < len(ints)+1; i++ {
		v, sz := binary.Uvarint(body[off:])
		if sz <= 0 {
			return nil, errCorruptRPC
		}
		off += sz
		if i == 0 {
			res.FetchedPosts = v
		} else {
			*ints[i-1] = int(v)
		}
	}
	if off != len(body) {
		return nil, errCorruptRPC
	}
	return res, nil
}

// Response frame flags: byte 0 of every hdk.search response. 0 is a
// freshly coordinated answer, 1 a cache hit, 2 an overload rejection
// (admission control shed the request; the body is a retry-after hint),
// 3 a freshly coordinated answer followed by its trace (a uvarint body
// length, the body, then the telemetry trace bytes).
const (
	searchRespFresh      = 0
	searchRespCached     = 1
	searchRespOverloaded = 2
	searchRespTraced     = 3
)

// maxRetryAfterMS bounds the wire-carried retry-after hint — far above
// any real backoff, low enough that a corrupt varint cannot park a
// well-behaved client for hours.
const maxRetryAfterMS = 60_000

// ErrOverloaded is the sentinel matched by errors.Is when a coordinator
// sheds a search under admission control. The concrete error in the
// chain is *OverloadError, which carries the daemon's retry-after hint.
var ErrOverloaded = errors.New("core: coordinator overloaded")

// OverloadError is a typed search rejection: the coordinator's worker
// pool and admission queue were both full, and the daemon shed the
// request instead of queueing it unboundedly. RetryAfter is the
// daemon's backoff hint (always positive on a decoded rejection).
type OverloadError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("core: coordinator overloaded (retry after %v)", e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match any overload rejection.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// EncodeSearchOverloaded frames an overload rejection carrying the
// retry-after hint, floored at 1ms so a decoded rejection always has a
// positive hint. Shedding is a transport-level SUCCESS (the daemon
// answered; the answer is "not now"): a handler error would be
// indistinguishable from a broken daemon and retried as transient by
// the RPC layer instead of backed off by the search client.
func EncodeSearchOverloaded(retryAfter time.Duration) []byte {
	ms := uint64(retryAfter / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	if ms > maxRetryAfterMS {
		ms = maxRetryAfterMS
	}
	return binary.AppendUvarint([]byte{searchRespOverloaded}, ms)
}

// EncodeSearchResponse frames a response: a served-from-cache flag byte
// ahead of the result body.
func EncodeSearchResponse(body []byte, cached bool) []byte {
	flag := byte(searchRespFresh)
	if cached {
		flag = searchRespCached
	}
	out := make([]byte, 0, 1+len(body))
	return append(append(out, flag), body...)
}

// EncodeSearchResponseTraced frames a freshly coordinated answer with
// its trace appended: the body is length-prefixed so the trace bytes
// (telemetry.EncodeTrace output) ride behind it in the same response.
func EncodeSearchResponseTraced(body, trace []byte) []byte {
	out := make([]byte, 0, 1+binary.MaxVarintLen64+len(body)+len(trace))
	out = append(out, searchRespTraced)
	out = binary.AppendUvarint(out, uint64(len(body)))
	out = append(out, body...)
	return append(out, trace...)
}

// DecodeSearchResponse parses a framed hdk.search response into the
// answer and whether the coordinator served it from its result cache.
// A cached response carries the metrics recorded when the answer was
// first computed — the cost of the original coordination, not of the
// (free) cache hit. An overload frame decodes into a *OverloadError
// (errors.Is-matchable against ErrOverloaded) carrying the daemon's
// retry-after hint.
func DecodeSearchResponse(resp []byte) (*SearchResult, bool, error) {
	res, cached, _, err := DecodeSearchResponseTrace(resp)
	return res, cached, err
}

// DecodeSearchResponseTrace is DecodeSearchResponse exposing the raw
// trace bytes a traced frame carries (nil on untraced frames; decode
// with telemetry.DecodeTrace).
func DecodeSearchResponseTrace(resp []byte) (*SearchResult, bool, []byte, error) {
	if len(resp) == 0 || resp[0] > searchRespTraced {
		return nil, false, nil, errCorruptRPC
	}
	switch resp[0] {
	case searchRespOverloaded:
		ms, n := binary.Uvarint(resp[1:])
		if n <= 0 || 1+n != len(resp) || ms < 1 || ms > maxRetryAfterMS {
			return nil, false, nil, errCorruptRPC
		}
		return nil, false, nil, &OverloadError{RetryAfter: time.Duration(ms) * time.Millisecond}
	case searchRespTraced:
		bodyLen, n := binary.Uvarint(resp[1:])
		if n <= 0 || bodyLen > uint64(len(resp)-1-n) {
			return nil, false, nil, errCorruptRPC
		}
		body := resp[1+n : 1+n+int(bodyLen)]
		trace := resp[1+n+int(bodyLen):]
		if len(trace) == 0 {
			return nil, false, nil, errCorruptRPC
		}
		res, err := DecodeSearchResult(body)
		if err != nil {
			return nil, false, nil, err
		}
		return res, false, trace, nil
	}
	res, err := DecodeSearchResult(resp[1:])
	if err != nil {
		return nil, false, nil, err
	}
	return res, resp[0] == searchRespCached, nil, nil
}
