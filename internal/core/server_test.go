package core

import (
	"reflect"
	"testing"
)

func TestNotifyMapCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    map[string][]string
	}{
		{"empty", map[string][]string{}},
		{"single", map[string][]string{"alpha": {"n0"}}},
		{"multi", map[string][]string{
			"alpha":      {"n0", "n1"},
			"beta:gamma": {"n2"},
			"delta":      {},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeNotifyMap(encodeNotifyMap(tc.m))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.m) {
				t.Fatalf("decoded %d keys, want %d", len(got), len(tc.m))
			}
			for k, want := range tc.m {
				if g := got[k]; len(g) != len(want) || (len(want) > 0 && !reflect.DeepEqual(g, want)) {
					t.Fatalf("key %q: %v, want %v", k, g, want)
				}
			}
		})
	}
}

func TestNotifyMapCodecCorrupt(t *testing.T) {
	valid := encodeNotifyMap(map[string][]string{"alpha": {"n0", "n1"}})
	for _, tc := range []struct {
		name string
		buf  []byte
	}{
		{"empty-buffer", nil},
		{"truncated", valid[:len(valid)-2]},
		{"trailing-garbage", append(append([]byte(nil), valid...), 0xff)},
		{"huge-count", []byte{0xff, 0xff, 0xff, 0xff, 0x0f}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeNotifyMap(tc.buf); err == nil {
				t.Fatal("corrupt notify map decoded")
			}
		})
	}
}

func TestEntryRespCodecs(t *testing.T) {
	if _, ok, err := DecodeEntryInfoResp([]byte{0}); err != nil || ok {
		t.Fatalf("absent info: ok=%v err=%v", ok, err)
	}
	fp, ok, err := DecodeEntryInfoResp(append([]byte{1}, 0xAC, 0x02, 0x07)) // uvarint 300, sum 7
	if err != nil || !ok || fp.Version != 300 || fp.Sum != 7 {
		t.Fatalf("present info: fp=%+v ok=%v err=%v", fp, ok, err)
	}
	for _, bad := range [][]byte{nil, {0, 9}, {1}, {1, 0xAC, 0x02}, append([]byte{1}, 0xAC, 0x02, 0x07, 0x07)} {
		if _, _, err := DecodeEntryInfoResp(bad); err == nil {
			t.Fatalf("corrupt info %v decoded", bad)
		}
	}

	if _, ok, err := DecodeEntryExportResp([]byte{0}); err != nil || ok {
		t.Fatalf("absent export: ok=%v err=%v", ok, err)
	}
	blob, ok, err := DecodeEntryExportResp([]byte{1, 5, 6, 7})
	if err != nil || !ok || !reflect.DeepEqual(blob, []byte{5, 6, 7}) {
		t.Fatalf("present export: %v ok=%v err=%v", blob, ok, err)
	}
	if _, _, err := DecodeEntryExportResp(nil); err == nil {
		t.Fatal("empty export resp decoded")
	}
	if _, _, err := DecodeEntryExportResp([]byte{0, 1}); err == nil {
		t.Fatal("absent-with-garbage export resp decoded")
	}
}

// TestStoreServerServesEngineStore builds an index in-process and then
// reads one node's store back through the exported service handlers —
// the same byte path the cluster daemon serves.
func TestStoreServerServesEngineStore(t *testing.T) {
	col := testCollection(t, 40)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 3, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	m := eng.net.Members()[0]

	raw, err := eng.net.CallService(m.Addr(), SvcStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeStoreStats(raw)
	if err != nil {
		t.Fatal(err)
	}
	if st.PostsTotal() == 0 || st.KeysTotal() == 0 {
		t.Fatalf("empty store stats: %+v", st)
	}
	// Stats served over RPC must agree with the engine's direct sweep.
	if want := eng.Stats().PerNode[m.ID()]; st.PostsTotal() != want {
		t.Fatalf("SvcStats postings %d, engine sweep %d", st.PostsTotal(), want)
	}

	rawKeys, err := eng.net.CallService(m.Addr(), SvcKeys, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := eng.stores[m.ID()].keyList()
	if len(rawKeys) == 0 || len(keys) == 0 {
		t.Fatal("no keys")
	}
	// Spot-check entry info/export for the first key.
	key := keys[0]
	rawInfo, err := eng.net.CallService(m.Addr(), SvcEntryInfo, []byte(key))
	if err != nil {
		t.Fatal(err)
	}
	fpGot, ok, err := DecodeEntryInfoResp(rawInfo)
	if err != nil || !ok {
		t.Fatalf("entry info for %q: ok=%v err=%v", key, ok, err)
	}
	if want, _ := eng.stores[m.ID()].entryFingerprint(key); fpGot != want {
		t.Fatalf("fingerprint over RPC %+v, direct %+v", fpGot, want)
	}
	rawExp, err := eng.net.CallService(m.Addr(), SvcEntryExport, []byte(key))
	if err != nil {
		t.Fatal(err)
	}
	blob, ok, err := DecodeEntryExportResp(rawExp)
	if err != nil || !ok {
		t.Fatalf("entry export: ok=%v err=%v", ok, err)
	}
	wantBlob, _ := eng.stores[m.ID()].exportEntry(key)
	if !reflect.DeepEqual(blob, wantBlob) {
		t.Fatal("export blob over RPC diverges from direct export")
	}
	// Absent key answers absent, not an error.
	rawInfo, err = eng.net.CallService(m.Addr(), SvcEntryInfo, []byte("no:such:key"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := DecodeEntryInfoResp(rawInfo); ok {
		t.Fatal("absent key reported resident")
	}
}
