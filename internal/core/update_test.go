package core

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/transport"
)

// buildPrefixEngine indexes only the first `prefix` documents of col,
// splitting them across peers the same way the full build would.
func buildPrefixEngine(t *testing.T, col *corpus.Collection, prefix, peers int, cfg Config) (*Engine, []*corpus.Collection) {
	t.Helper()
	net := overlay.NewNetwork(transport.NewInProc())
	nodes := make([]*overlay.Node, peers)
	for i := range nodes {
		n, err := net.AddNode(fmt.Sprintf("peer-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	// Very-frequent-term knowledge is computed over the FULL collection
	// for both engines so the comparison isolates the update protocol.
	eng, err := NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	fullParts := col.SplitRoundRobin(peers)
	prefixParts := col.Slice(0, prefix).SplitRoundRobin(peers)
	for i := range prefixParts {
		if _, err := eng.AddPeer(nodes[i], prefixParts[i]); err != nil {
			t.Fatal(err)
		}
	}
	return eng, fullParts
}

// assertEnginesEqual compares the complete global index state of two
// engines: key populations, classifications, global dfs and posting
// lists.
func assertEnginesEqual(t *testing.T, got, want *Engine, cfg Config) {
	t.Helper()
	gotKeys := collectIndexKeys(t, got)
	wantKeys := collectIndexKeys(t, want)
	for s := 1; s <= cfg.SMax; s++ {
		if len(gotKeys[s]) != len(wantKeys[s]) {
			t.Fatalf("size %d: %d keys incremental vs %d from scratch", s, len(gotKeys[s]), len(wantKeys[s]))
		}
		for k, wantStatus := range wantKeys[s] {
			gotStatus, ok := gotKeys[s][k]
			if !ok {
				t.Fatalf("size %d: key %v missing from incremental index", s, k.Terms())
			}
			if gotStatus != wantStatus {
				t.Fatalf("size %d key %v: status %v incremental vs %v scratch", s, k.Terms(), gotStatus, wantStatus)
			}
			gs, gdf, glist := got.KeyInfo(k)
			ws, wdf, wlist := want.KeyInfo(k)
			if gs != ws || gdf != wdf {
				t.Fatalf("key %v: (%v, df=%d) incremental vs (%v, df=%d) scratch", k.Terms(), gs, gdf, ws, wdf)
			}
			if len(glist) != len(wlist) {
				t.Fatalf("key %v: list length %d incremental vs %d scratch", k.Terms(), len(glist), len(wlist))
			}
			for i := range glist {
				if glist[i].Doc != wlist[i].Doc {
					t.Fatalf("key %v posting %d: doc %d vs %d", k.Terms(), i, glist[i].Doc, wlist[i].Doc)
				}
				if d := glist[i].Score - wlist[i].Score; d > 1e-4 || d < -1e-4 {
					t.Fatalf("key %v posting %d: score %g vs %g", k.Terms(), i, glist[i].Score, wlist[i].Score)
				}
			}
		}
	}
}

func TestUpdateIndexMatchesFromScratch(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	prefix := 40
	peers := 4

	// From-scratch reference over the full collection.
	scratch := buildEngine(t, col, peers, cfg)
	if err := scratch.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	// Incremental: build the prefix, then stage the remaining documents
	// per peer and update.
	inc, fullParts := buildPrefixEngine(t, col, prefix, peers, cfg)
	if err := inc.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	prefixParts := col.Slice(0, prefix).SplitRoundRobin(peers)
	for i, p := range inc.peers {
		newDocs := &corpus.Collection{
			Vocab: col.Vocab,
			Docs:  fullParts[i].Docs[len(prefixParts[i].Docs):],
		}
		if err := p.AddDocuments(newDocs); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.UpdateIndex(); err != nil {
		t.Fatal(err)
	}

	assertEnginesEqual(t, inc, scratch, cfg)
}

func TestUpdateReclassifiesHDKs(t *testing.T) {
	// The maintenance rule under test: an HDK pushed over DFmax by new
	// documents must flip to NDK, truncate, and trigger expansion.
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	peers := 4
	inc, fullParts := buildPrefixEngine(t, col, 40, peers, cfg)
	if err := inc.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	before := collectIndexKeys(t, inc)
	prefixParts := col.Slice(0, 40).SplitRoundRobin(peers)
	for i, p := range inc.peers {
		newDocs := &corpus.Collection{
			Vocab: col.Vocab,
			Docs:  fullParts[i].Docs[len(prefixParts[i].Docs):],
		}
		if err := p.AddDocuments(newDocs); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.UpdateIndex(); err != nil {
		t.Fatal(err)
	}
	after := collectIndexKeys(t, inc)

	flipped := 0
	for s := 1; s <= cfg.SMax; s++ {
		for k, st := range before[s] {
			if st == StatusHDK && after[s][k] == StatusNDK {
				flipped++
				// Truncation must hold for the flipped key.
				_, df, list := inc.KeyInfo(k)
				if df <= cfg.DFMax {
					t.Fatalf("flipped key %v has df %d <= DFmax", k.Terms(), df)
				}
				if len(list) > cfg.DFMax {
					t.Fatalf("flipped key %v holds %d > DFmax postings", k.Terms(), len(list))
				}
			}
			if st == StatusNDK && after[s][k] == StatusHDK {
				t.Fatalf("key %v went NDK -> HDK; df can only grow", k.Terms())
			}
		}
	}
	if flipped == 0 {
		t.Fatal("no HDK->NDK reclassification occurred — grow the update batch")
	}
}

func TestUpdateIdempotentWithoutNewDocs(t *testing.T) {
	col := testCollection(t, 40)
	cfg := testConfig(col, 5)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	statsBefore := eng.Stats()
	trafficBefore := eng.Traffic().Snapshot().InsertedTotal
	if err := eng.UpdateIndex(); err != nil {
		t.Fatal(err)
	}
	statsAfter := eng.Stats()
	if statsBefore.StoredTotal != statsAfter.StoredTotal || statsBefore.KeysTotal != statsAfter.KeysTotal {
		t.Fatalf("no-op update changed the index: %+v vs %+v", statsBefore, statsAfter)
	}
	if got := eng.Traffic().Snapshot().InsertedTotal; got != trafficBefore {
		t.Fatalf("no-op update inserted %d postings", got-trafficBefore)
	}
}

func TestAddDocumentsValidatesIDs(t *testing.T) {
	col := testCollection(t, 20)
	cfg := testConfig(col, 5)
	eng := buildEngine(t, col, 2, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	p := eng.peers[0]
	// Reusing an already-held id must be rejected.
	dup := &corpus.Collection{Vocab: col.Vocab, Docs: []corpus.Document{{ID: 0, Terms: []corpus.TermID{1}}}}
	if err := p.AddDocuments(dup); err == nil {
		t.Fatal("duplicate doc id accepted")
	}
	// Non-ascending batch must be rejected.
	bad := &corpus.Collection{Vocab: col.Vocab, Docs: []corpus.Document{
		{ID: 1000, Terms: []corpus.TermID{1}},
		{ID: 999, Terms: []corpus.TermID{2}},
	}}
	if err := p.AddDocuments(bad); err == nil {
		t.Fatal("non-ascending batch accepted")
	}
}

func TestMultipleIncrementalUpdates(t *testing.T) {
	// Three successive updates must equal one from-scratch build.
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	peers := 4
	scratch := buildEngine(t, col, peers, cfg)
	if err := scratch.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	inc, fullParts := buildPrefixEngine(t, col, 24, peers, cfg)
	if err := inc.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	prev := make([]int, peers)
	for i := range prev {
		prev[i] = len(col.Slice(0, 24).SplitRoundRobin(peers)[i].Docs)
	}
	for _, upTo := range []int{40, 52, 60} {
		for i, p := range inc.peers {
			target := len(col.Slice(0, upTo).SplitRoundRobin(peers)[i].Docs)
			newDocs := &corpus.Collection{Vocab: col.Vocab, Docs: fullParts[i].Docs[prev[i]:target]}
			if err := p.AddDocuments(newDocs); err != nil {
				t.Fatal(err)
			}
			prev[i] = target
		}
		if err := inc.UpdateIndex(); err != nil {
			t.Fatal(err)
		}
	}
	assertEnginesEqual(t, inc, scratch, cfg)
}
