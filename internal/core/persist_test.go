package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/transport"
)

// emptyEngine builds an engine with index stores but no peer documents —
// the "serving replica" that loads a snapshot.
func emptyEngine(t *testing.T, col *corpus.Collection, peers int, cfg Config) *Engine {
	t.Helper()
	net := overlay.NewNetwork(transport.NewInProc())
	for i := 0; i < peers; i++ {
		if _, err := net.AddNode(fmt.Sprintf("replica-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestExportImportRoundTrip(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 6)
	src := buildEngine(t, col, 4, cfg)
	if err := src.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.ExportIndex(&buf); err != nil {
		t.Fatal(err)
	}

	// Import into a DIFFERENT membership (7 replicas vs 4 build peers):
	// entries must land on the new owners and answer identically.
	dst := emptyEngine(t, col, 7, cfg)
	if err := dst.ImportIndex(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	assertEnginesEqual(t, dst, src, cfg)

	// And queries answer the same through the DHT.
	srcNode := src.net.Members()[0]
	dstNode := dst.net.Members()[0]
	for i := 0; i < 15; i++ {
		q := corpus.Query{Terms: col.Docs[i].Terms[:2]}
		a, err := src.Search(q, srcNode, 20)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.Search(q, dstNode, 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Results) != len(b.Results) {
			t.Fatalf("query %d: %d vs %d results", i, len(a.Results), len(b.Results))
		}
		for j := range a.Results {
			if a.Results[j].Doc != b.Results[j].Doc {
				t.Fatalf("query %d rank %d: doc %d vs %d", i, j, a.Results[j].Doc, b.Results[j].Doc)
			}
		}
	}
}

func TestExportDeterministic(t *testing.T) {
	col := testCollection(t, 30)
	cfg := testConfig(col, 5)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := eng.ExportIndex(&a); err != nil {
		t.Fatal(err)
	}
	if err := eng.ExportIndex(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same index differ")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	col := testCollection(t, 20)
	cfg := testConfig(col, 5)
	eng := emptyEngine(t, col, 2, cfg)
	cases := [][]byte{
		nil,
		[]byte("not a snapshot"),
		[]byte("HDKIDX\xff"),               // bad version
		append([]byte("HDKIDX\x01"), 0xff), // truncated count
	}
	for i, c := range cases {
		if err := eng.ImportIndex(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestImportRejectsTrailingBytes(t *testing.T) {
	col := testCollection(t, 20)
	cfg := testConfig(col, 5)
	src := buildEngine(t, col, 2, cfg)
	if err := src.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.ExportIndex(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0x00)
	dst := emptyEngine(t, col, 2, cfg)
	if err := dst.ImportIndex(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
