package core

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/pgrid"
	"repro/internal/transport"
)

// TestEngineTransportAgnostic pins the deployment claim at the fabric
// level: the engine must produce the identical global index and ranked
// answers when every RPC travels through real loopback TCP sockets
// instead of in-process calls — on BOTH overlay substrates (Chord ring
// and the paper's P-Grid trie).
func TestEngineTransportAgnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("binds dozens of sockets; skipped in -short mode")
	}
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)

	ref := buildEngine(t, col, 4, cfg)
	if err := ref.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	refOrigin := ref.net.Members()[0]

	cases := []struct {
		name  string
		build func(tr transport.Transport) (overlay.Fabric, error)
	}{
		{"chord-over-tcp", func(tr transport.Transport) (overlay.Fabric, error) {
			net := overlay.NewNetwork(tr)
			for i := 0; i < 4; i++ {
				if _, err := net.AddNode("127.0.0.1:0"); err != nil {
					return nil, err
				}
			}
			return net, nil
		}},
		{"pgrid-over-tcp", func(tr transport.Transport) (overlay.Fabric, error) {
			net := pgrid.NewNetwork(tr)
			for i := 0; i < 4; i++ {
				if _, err := net.AddPeer("127.0.0.1:0"); err != nil {
					return nil, err
				}
			}
			return net, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := transport.NewTCP()
			defer tr.Close()
			fabric, err := tc.build(tr)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(fabric, cfg, col.Vocab, col.TermFrequencies())
			if err != nil {
				t.Fatal(err)
			}
			members := fabric.Members()
			for i, part := range col.SplitRoundRobin(len(members)) {
				if _, err := eng.AddPeer(members[i], part); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.BuildIndex(); err != nil {
				t.Fatal(err)
			}
			assertEnginesEqual(t, eng, ref, cfg)

			origin := members[0]
			for i := 0; i < 10; i++ {
				q := corpus.Query{Terms: col.Docs[i].Terms[:2]}
				want, err := ref.Search(q, refOrigin, 15)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.Search(q, origin, 15)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Results, got.Results) {
					t.Fatalf("query %d: results over TCP diverge from in-process", i)
				}
			}
		})
	}
}
