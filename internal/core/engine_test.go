package core

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/transport"
)

// statsFor builds collection stats for tests.
func statsFor(docs int, avgLen float64) rank.CollectionStats {
	return rank.CollectionStats{NumDocs: docs, AvgDocLen: avgLen}
}

// buildEngine assembles an overlay + HDK engine over the collection split
// across n peers.
func buildEngine(t testing.TB, col *corpus.Collection, peers int, cfg Config) *Engine {
	t.Helper()
	net := overlay.NewNetwork(transport.NewInProc())
	nodes := make([]*overlay.Node, peers)
	for i := range nodes {
		n, err := net.AddNode(fmt.Sprintf("peer-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	eng, err := NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range col.SplitRoundRobin(peers) {
		if _, err := eng.AddPeer(nodes[i], part); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// testCollection generates a small dense collection in which multi-term
// keys actually form at tiny DFmax values.
func testCollection(t testing.TB, docs int) *corpus.Collection {
	t.Helper()
	p := corpus.GenParams{
		NumDocs:    docs,
		VocabSize:  300,
		AvgDocLen:  40,
		Skew:       1.0,
		NumTopics:  6,
		TopicTerms: 30,
		TopicMix:   0.5,
		Seed:       3,
	}
	col, err := corpus.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func testConfig(col *corpus.Collection, dfmax int) Config {
	cfg := DefaultConfig(statsFor(col.M(), col.AvgDocLen()))
	cfg.DFMax = dfmax
	cfg.Window = 8
	cfg.Ff = 1 << 30 // no very-frequent cutoff unless a test wants it
	return cfg
}

// --- reference oracle ----------------------------------------------------
//
// referenceIndex recomputes, by brute force over the global collection,
// the exact key population the distributed protocol must produce:
//   size 1: every term, classified by document frequency;
//   size s>1: every term set whose immediate sub-keys are all ND, whose
//   terms co-occur in a window, classified by window document frequency.

type refEntry struct {
	df   int
	docs map[corpus.DocID]bool
}

func referenceIndex(col *corpus.Collection, cfg Config) map[int]map[Key]*refEntry {
	levels := make(map[int]map[Key]*refEntry)
	// Size 1.
	lvl1 := make(map[Key]*refEntry)
	for i := range col.Docs {
		d := &col.Docs[i]
		for _, tm := range d.Terms {
			k := NewKey(tm)
			e := lvl1[k]
			if e == nil {
				e = &refEntry{docs: map[corpus.DocID]bool{}}
				lvl1[k] = e
			}
			e.docs[d.ID] = true
		}
	}
	for _, e := range lvl1 {
		e.df = len(e.docs)
	}
	levels[1] = lvl1
	// Larger sizes.
	for s := 2; s <= cfg.SMax; s++ {
		prev := levels[s-1]
		nd := func(k Key) bool {
			e, ok := prev[k]
			return ok && e.df > cfg.DFMax
		}
		lvl := make(map[Key]*refEntry)
		for i := range col.Docs {
			d := &col.Docs[i]
			w := cfg.Window
			for j := range d.Terms {
				lo := j - w + 1
				if lo < 0 {
					lo = 0
				}
				window := d.Terms[lo : j+1]
				c := d.Terms[j]
				// subsets of size s containing position j's term
				var rec func(start int, cur []corpus.TermID)
				rec = func(start int, cur []corpus.TermID) {
					if len(cur) == s-1 {
						terms := append(append([]corpus.TermID{}, cur...), c)
						if hasDup(terms) {
							return
						}
						k := NewKey(terms...)
						if k.Size() != s {
							return
						}
						ok := true
						k.Subkeys(func(sub Key) {
							if !nd(sub) {
								ok = false
							}
						})
						if !ok {
							return
						}
						e := lvl[k]
						if e == nil {
							e = &refEntry{docs: map[corpus.DocID]bool{}}
							lvl[k] = e
						}
						e.docs[d.ID] = true
						return
					}
					for x := start; x < len(window)-1; x++ {
						rec(x+1, append(cur, window[x]))
					}
				}
				rec(0, nil)
			}
		}
		for _, e := range lvl {
			e.df = len(e.docs)
		}
		levels[s] = lvl
	}
	return levels
}

func hasDup(ts []corpus.TermID) bool {
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			if ts[i] == ts[j] {
				return true
			}
		}
	}
	return false
}

// collectIndexKeys pulls every classified key out of the engine's stores.
func collectIndexKeys(t *testing.T, eng *Engine) map[int]map[Key]KeyStatus {
	t.Helper()
	out := make(map[int]map[Key]KeyStatus)
	for _, store := range eng.stores {
		store.mu.Lock()
		for canonical, e := range store.entries {
			k, err := eng.parseKey(canonical)
			if err != nil {
				store.mu.Unlock()
				t.Fatal(err)
			}
			if out[e.size] == nil {
				out[e.size] = make(map[Key]KeyStatus)
			}
			out[e.size][k] = e.status
		}
		store.mu.Unlock()
	}
	return out
}

func TestBuildIndexMatchesReference(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ref := referenceIndex(col, cfg)
	got := collectIndexKeys(t, eng)

	for s := 1; s <= cfg.SMax; s++ {
		refLvl, gotLvl := ref[s], got[s]
		if len(refLvl) != len(gotLvl) {
			t.Errorf("size %d: engine has %d keys, reference %d", s, len(gotLvl), len(refLvl))
		}
		for k, e := range refLvl {
			st, ok := gotLvl[k]
			if !ok {
				t.Errorf("size %d: key %v missing from engine index", s, k.Terms())
				continue
			}
			wantStatus := StatusHDK
			if e.df > cfg.DFMax {
				wantStatus = StatusNDK
			}
			if st != wantStatus {
				t.Errorf("size %d key %v: status %v, want %v (df=%d)", s, k.Terms(), st, wantStatus, e.df)
			}
			// df agreement.
			_, df, _ := eng.KeyInfo(k)
			if df != e.df {
				t.Errorf("size %d key %v: df %d, want %d", s, k.Terms(), df, e.df)
			}
		}
		for k := range gotLvl {
			if _, ok := refLvl[k]; !ok {
				t.Errorf("size %d: engine has spurious key %v", s, k.Terms())
			}
		}
	}
}

func TestHDKPostingListsExactAndBounded(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ref := referenceIndex(col, cfg)
	for s := 1; s <= cfg.SMax; s++ {
		for k, e := range ref[s] {
			status, df, list := eng.KeyInfo(k)
			switch status {
			case StatusHDK:
				// Full posting list: exactly the reference doc set.
				if len(list) != e.df || df != e.df {
					t.Fatalf("HDK %v: |list|=%d df=%d, want %d", k.Terms(), len(list), df, e.df)
				}
				for _, p := range list {
					if !e.docs[p.Doc] {
						t.Fatalf("HDK %v: posting for doc %d not in reference", k.Terms(), p.Doc)
					}
				}
			case StatusNDK:
				if len(list) > cfg.DFMax {
					t.Fatalf("NDK %v: truncated list has %d > DFmax=%d postings", k.Terms(), len(list), cfg.DFMax)
				}
				if df <= cfg.DFMax {
					t.Fatalf("NDK %v: df=%d <= DFmax", k.Terms(), df)
				}
				// Truncated postings still reference real matching docs.
				for _, p := range list {
					if !e.docs[p.Doc] {
						t.Fatalf("NDK %v: posting for doc %d not in reference", k.Terms(), p.Doc)
					}
				}
			default:
				t.Fatalf("key %v absent from index", k.Terms())
			}
		}
	}
}

func TestSubsumptionInvariant(t *testing.T) {
	// Any stored key of size s > 1 must have every immediate sub-key
	// stored and non-discriminative (intrinsic discriminativeness).
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	got := collectIndexKeys(t, eng)
	for s := 2; s <= cfg.SMax; s++ {
		for k := range got[s] {
			k.Subkeys(func(sub Key) {
				st, ok := got[s-1][sub]
				if !ok {
					t.Fatalf("stored key %v has unindexed sub-key %v", k.Terms(), sub.Terms())
				}
				if st != StatusNDK {
					t.Fatalf("stored key %v has discriminative sub-key %v", k.Terms(), sub.Terms())
				}
			})
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	col := testCollection(t, 40)
	cfg := testConfig(col, 5)
	s1 := func() IndexStats {
		eng := buildEngine(t, col, 4, cfg)
		if err := eng.BuildIndex(); err != nil {
			t.Fatal(err)
		}
		return eng.Stats()
	}
	a, b := s1(), s1()
	if a.StoredTotal != b.StoredTotal || a.KeysTotal != b.KeysTotal {
		t.Fatalf("non-deterministic build: %+v vs %+v", a, b)
	}
}

func TestInsertedAtLeastStored(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	traffic := eng.Traffic().Snapshot()
	stats := eng.Stats()
	if traffic.InsertedTotal < uint64(stats.StoredTotal) {
		t.Fatalf("inserted %d < stored %d", traffic.InsertedTotal, stats.StoredTotal)
	}
	// NDK truncation means strictly fewer stored than inserted here
	// (DFmax=6 guarantees truncation on this collection).
	if traffic.InsertedTotal == uint64(stats.StoredTotal) {
		t.Error("expected NDK truncation to drop postings")
	}
	if traffic.NotifyMessages == 0 {
		t.Error("no expansion notifications sent — NDKs must exist at DFmax=6")
	}
}

func TestVeryFrequentTermsExcluded(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	cfg.Ff = 50 // aggressive cutoff: head terms become "stop words"
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	freqs := col.TermFrequencies()
	vfCount := 0
	for id, f := range freqs {
		if f > cfg.Ff {
			vfCount++
			if st, _, _ := eng.KeyInfo(NewKey(corpus.TermID(id))); st != StatusAbsent {
				t.Fatalf("very frequent term %d (f=%d) present in index", id, f)
			}
		}
	}
	if vfCount == 0 {
		t.Fatal("test collection has no very frequent terms at Ff=50")
	}
}

func TestSearchBoundedTraffic(t *testing.T) {
	col := testCollection(t, 80)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	qp := corpus.DefaultQueryParams(25)
	qp.MinHits = 0
	queries, err := corpus.GenerateQueries(col, qp, cfg.Window, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := eng.net.Members()
	for i, q := range queries {
		res, err := eng.Search(q, nodes[i%len(nodes)], 20)
		if err != nil {
			t.Fatal(err)
		}
		nk := (1 << len(dedupTerms(q.Terms))) - 1
		bound := uint64(nk * cfg.DFMax)
		if res.FetchedPosts > bound {
			t.Fatalf("query %d: fetched %d postings > bound nk*DFmax = %d", i, res.FetchedPosts, bound)
		}
	}
}

func TestSearchFindsHDKDocs(t *testing.T) {
	// For a query that IS a stored HDK, retrieval must return exactly the
	// documents containing the key in a window (indexing exhaustiveness).
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ref := referenceIndex(col, cfg)
	nodes := eng.net.Members()
	checked := 0
	for k, e := range ref[2] {
		if e.df > cfg.DFMax {
			continue // want an HDK
		}
		q := corpus.Query{Terms: k.Terms()}
		res, err := eng.Search(q, nodes[0], col.M())
		if err != nil {
			t.Fatal(err)
		}
		got := map[corpus.DocID]bool{}
		for _, r := range res.Results {
			got[r.Doc] = true
		}
		for doc := range e.docs {
			if !got[doc] {
				t.Fatalf("HDK query %v: doc %d missing from results", k.Terms(), doc)
			}
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no size-2 HDKs to check — tighten the generator")
	}
}

func TestSearchRankedOrder(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 6)
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	q := corpus.Query{Terms: col.Docs[0].Terms[:3]}
	res, err := eng.Search(q, eng.net.Members()[0], 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Results); i++ {
		if res.Results[i].Score > res.Results[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
}

func TestSearchDuplicateAndVFTerms(t *testing.T) {
	col := testCollection(t, 40)
	cfg := testConfig(col, 5)
	cfg.Ff = 50
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	// Query with a duplicated term and a VF term must not error and must
	// not probe supersets involving the VF term.
	freqs := col.TermFrequencies()
	var vf corpus.TermID
	for id, f := range freqs {
		if f > cfg.Ff {
			vf = corpus.TermID(id)
			break
		}
	}
	reg := col.Docs[0].Terms[0]
	q := corpus.Query{Terms: []corpus.TermID{reg, reg, vf}}
	res, err := eng.Search(q, eng.net.Members()[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbedKeys > 1 {
		t.Fatalf("probed %d keys, want 1 (vf term excluded, duplicate collapsed)", res.ProbedKeys)
	}
}

func TestAblationRedundancyFiltering(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 5)
	run := func(disable bool) int {
		c := cfg
		c.DisableRedundancyFiltering = disable
		eng := buildEngine(t, col, 4, c)
		if err := eng.BuildIndex(); err != nil {
			t.Fatal(err)
		}
		return eng.Stats().KeysTotal
	}
	with := run(false)
	without := run(true)
	if without <= with {
		t.Fatalf("redundancy filtering ablation: %d keys without filter <= %d with", without, with)
	}
}

func TestAblationNDKStorage(t *testing.T) {
	col := testCollection(t, 50)
	cfg := testConfig(col, 5)
	cfg.DisableNDKStorage = true
	eng := buildEngine(t, col, 4, cfg)
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	got := collectIndexKeys(t, eng)
	for s := 1; s <= cfg.SMax; s++ {
		for k, st := range got[s] {
			if st != StatusNDK {
				continue
			}
			if _, _, list := eng.KeyInfo(k); len(list) != 0 {
				t.Fatalf("NDK %v stores %d postings with storage disabled", k.Terms(), len(list))
			}
		}
	}
}

func TestEngineValidation(t *testing.T) {
	net := overlay.NewNetwork(transport.NewInProc())
	net.AddNode("n0")
	cfg := DefaultConfig(statsFor(10, 50))
	if _, err := NewEngine(net, cfg, []string{"a1", "b2"}, []int{1}); err == nil {
		t.Error("vocab/freq length mismatch accepted")
	}
	cfg.DFMax = 0
	if _, err := NewEngine(net, cfg, []string{"a1"}, []int{1}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPeerJoinsAfterEngine(t *testing.T) {
	// The churn scenario: a node added after engine construction can
	// still host a peer and participate.
	col := testCollection(t, 30)
	cfg := testConfig(col, 5)
	net := overlay.NewNetwork(transport.NewInProc())
	n0, _ := net.AddNode("n0")
	eng, err := NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	parts := col.SplitRoundRobin(2)
	if _, err := eng.AddPeer(n0, parts[0]); err != nil {
		t.Fatal(err)
	}
	n1, err := net.AddNode("late-joiner")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddPeer(n1, parts[1]); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().KeysTotal == 0 {
		t.Fatal("no keys indexed after late join")
	}
}
