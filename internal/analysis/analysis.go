// Package analysis implements Section 4 of the paper as executable code:
// the retrieval-cost bound, the index-size estimates built on the Zipf
// machinery (Theorems 1-3 live in internal/zipfmodel), and the Figure 8
// total-traffic projection comparing single-term and HDK indexing up to
// one billion documents. It also houses the parameter-adaptation helpers
// the paper sketches as future work ("adapt the various parameters of the
// model in order to meet desired indexing and retrieval traffic
// requirements").
package analysis

import (
	"fmt"
	"math"

	"repro/internal/zipfmodel"
)

// QueryKeyCount returns nk, the number of term subsets a query of the
// given size is mapped to (Section 4.2): 2^|q|-1 when |q| <= smax, and
// the tail of binomial sums otherwise. The paper quotes nk ≈ 3.92 for the
// Wikipedia log's average query size of 2.3.
func QueryKeyCount(querySize, smax int) float64 {
	if querySize <= 0 {
		return 0
	}
	if querySize <= smax {
		return math.Exp2(float64(querySize)) - 1
	}
	nk := 0.0
	for s := 1; s <= smax; s++ {
		nk += zipfmodel.Binomial(querySize, s)
	}
	return nk
}

// QueryKeyCountMean evaluates nk at a fractional average query size by
// interpolating 2^q - 1 (the form the paper uses to get 3.92 at q = 2.3).
func QueryKeyCountMean(avgQuerySize float64, smax int) float64 {
	if avgQuerySize <= 0 {
		return 0
	}
	if avgQuerySize <= float64(smax) {
		return math.Exp2(avgQuerySize) - 1
	}
	return QueryKeyCount(int(math.Round(avgQuerySize)), smax)
}

// RetrievalBound returns the Section 4.2 upper bound on per-query
// retrieval traffic in postings: nk * DFmax.
func RetrievalBound(avgQuerySize float64, smax, dfmax int) float64 {
	return QueryKeyCountMean(avgQuerySize, smax) * float64(dfmax)
}

// TrafficModel parameterizes the Figure 8 projection. All quantities are
// in postings; the collection size M is in documents.
type TrafficModel struct {
	// STPostingsPerDoc is the single-term index size per document
	// (paper's Wikipedia measurement: 130).
	STPostingsPerDoc float64
	// HDKPostingsPerDoc is the HDK index insertion cost per document
	// (paper's bound: 5290, i.e. at most 40.7x the single-term cost).
	HDKPostingsPerDoc float64
	// STQueryPostingsPerDoc is the per-query single-term retrieval
	// traffic per collection document: ST posting lists grow linearly
	// with M (Figure 6 measures ~2.2e4 postings/query at 140k docs).
	STQueryPostingsPerDoc float64
	// HDKQueryPostings is the bounded per-query HDK retrieval traffic
	// (nk * DFmax; independent of M — the paper's central claim).
	HDKQueryPostings float64
	// QueriesPerMonth is the query load between two monthly re-indexing
	// runs (paper: 1.5e6 from the Wikipedia log).
	QueriesPerMonth float64
}

// PaperTrafficModel returns the parameterization from the paper's
// Section 5 measurements (DFmax = 500).
func PaperTrafficModel() TrafficModel {
	return TrafficModel{
		STPostingsPerDoc:      130,
		HDKPostingsPerDoc:     5290,
		STQueryPostingsPerDoc: 2.2e4 / 1.4e5,
		HDKQueryPostings:      RetrievalBound(2.3, 3, 500),
		QueriesPerMonth:       1.5e6,
	}
}

// Validate reports whether the model is usable.
func (m TrafficModel) Validate() error {
	if m.STPostingsPerDoc <= 0 || m.HDKPostingsPerDoc <= 0 ||
		m.STQueryPostingsPerDoc <= 0 || m.HDKQueryPostings <= 0 || m.QueriesPerMonth < 0 {
		return fmt.Errorf("analysis: all traffic model parameters must be positive: %+v", m)
	}
	return nil
}

// STTotal returns the monthly single-term traffic at collection size m:
// one full indexing pass plus the query load, both linear in m.
func (m TrafficModel) STTotal(docs float64) float64 {
	return m.STPostingsPerDoc*docs + m.QueriesPerMonth*m.STQueryPostingsPerDoc*docs
}

// HDKTotal returns the monthly HDK traffic at collection size m: a larger
// indexing pass but collection-size-independent query traffic.
func (m TrafficModel) HDKTotal(docs float64) float64 {
	return m.HDKPostingsPerDoc*docs + m.QueriesPerMonth*m.HDKQueryPostings
}

// Ratio returns ST/HDK monthly traffic — how many times less traffic the
// HDK approach generates (paper: ~20x at full Wikipedia, ~42x at 10^9).
func (m TrafficModel) Ratio(docs float64) float64 {
	return m.STTotal(docs) / m.HDKTotal(docs)
}

// Crossover returns the collection size above which the HDK approach
// generates less total traffic than single-term indexing, found by
// bisection over [1, hi]. Returns hi if HDK never wins below it.
func (m TrafficModel) Crossover(hi float64) float64 {
	f := func(docs float64) float64 { return m.STTotal(docs) - m.HDKTotal(docs) }
	lo := 1.0
	if f(lo) > 0 {
		return lo // HDK already wins at a single document
	}
	if f(hi) < 0 {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TrafficPoint is one Figure 8 sample.
type TrafficPoint struct {
	Docs float64
	ST   float64
	HDK  float64
}

// Fig8Series samples the projection at the given collection sizes.
func (m TrafficModel) Fig8Series(docs []float64) []TrafficPoint {
	out := make([]TrafficPoint, len(docs))
	for i, d := range docs {
		out[i] = TrafficPoint{Docs: d, ST: m.STTotal(d), HDK: m.HDKTotal(d)}
	}
	return out
}

// IndexSizeEstimate bundles the Theorem 3 bounds for all key sizes, the
// quantities Figure 5 compares measurements against.
type IndexSizeEstimate struct {
	// RatioBySize[s] is the IS_s/D upper bound.
	RatioBySize []float64
	// Total is the sum over sizes 1..smax.
	Total float64
}

// EstimateIndexSize evaluates Theorem 3 for key sizes 1..smax given the
// per-size frequent-key occurrence probabilities pf[s] (pf[1] is Pf for
// single terms; the paper fits Pf,1 = 0.8 and Pf,2 = 0.257 on Wikipedia).
func EstimateIndexSize(pf []float64, w, smax int) (IndexSizeEstimate, error) {
	// Size s uses Pf for keys of size s-1, so sizes 2..smax consume
	// pf[0..smax-2]; size 1 needs none.
	if smax < 1 || len(pf) < smax-1 {
		return IndexSizeEstimate{}, fmt.Errorf("analysis: need pf for sizes 1..%d, got %d values", smax-1, len(pf))
	}
	est := IndexSizeEstimate{RatioBySize: make([]float64, smax+1)}
	for s := 1; s <= smax; s++ {
		var r float64
		if s == 1 {
			r = zipfmodel.IndexSizeRatio(0, w, 1)
		} else {
			r = zipfmodel.IndexSizeRatio(pf[s-2], w, s)
		}
		est.RatioBySize[s] = r
		est.Total += r
	}
	return est, nil
}

// AdviseDFMax picks the largest DFmax whose retrieval bound fits a
// per-query posting budget — the paper's closing argument that the model
// parameters can be adapted "taking into account available network
// capacity".
func AdviseDFMax(postingBudgetPerQuery float64, avgQuerySize float64, smax int) int {
	nk := QueryKeyCountMean(avgQuerySize, smax)
	if nk <= 0 {
		return 0
	}
	df := int(postingBudgetPerQuery / nk)
	if df < 1 {
		df = 1
	}
	return df
}
