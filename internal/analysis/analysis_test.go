package analysis

import (
	"math"
	"testing"
)

func TestQueryKeyCount(t *testing.T) {
	cases := []struct {
		q, smax int
		want    float64
	}{
		{1, 3, 1},
		{2, 3, 3},
		{3, 3, 7},
		{4, 3, 4 + 6 + 4},   // C(4,1)+C(4,2)+C(4,3)
		{8, 3, 8 + 28 + 56}, // the paper's max query size
		{0, 3, 0},
	}
	for _, c := range cases {
		if got := QueryKeyCount(c.q, c.smax); got != c.want {
			t.Errorf("QueryKeyCount(%d,%d) = %g, want %g", c.q, c.smax, got, c.want)
		}
	}
}

func TestQueryKeyCountMeanPaperValue(t *testing.T) {
	// Section 4.2: "the average size of a query is 2.3 in the Wikipedia
	// query log, and nk ≈ 3.92".
	got := QueryKeyCountMean(2.3, 3)
	if math.Abs(got-3.92) > 0.01 {
		t.Errorf("nk(2.3) = %.3f, paper reports 3.92", got)
	}
}

func TestRetrievalBound(t *testing.T) {
	// Bound = nk * DFmax; at the paper's parameters ~3.92*400 ≈ 1569.
	got := RetrievalBound(2.3, 3, 400)
	if math.Abs(got-3.92*400) > 5 {
		t.Errorf("RetrievalBound = %.0f, want ~%.0f", got, 3.92*400)
	}
}

func TestPaperTrafficModelRatios(t *testing.T) {
	m := PaperTrafficModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper: "for the whole Wikipedia collection (653,546 documents), the
	// HDK approach would generate 20 times less traffic ... for 1 billion
	// documents the ratio is around 42". Our closed-form model lands in
	// the same bands.
	atWiki := m.Ratio(653546)
	if atWiki < 15 || atWiki > 30 {
		t.Errorf("ratio at full Wikipedia = %.1f, paper reports ~20", atWiki)
	}
	atBillion := m.Ratio(1e9)
	if atBillion < 35 || atBillion > 50 {
		t.Errorf("ratio at 1e9 docs = %.1f, paper reports ~42", atBillion)
	}
	if atBillion <= atWiki {
		t.Error("ratio must grow with collection size")
	}
}

func TestTrafficRatioMonotone(t *testing.T) {
	m := PaperTrafficModel()
	prev := 0.0
	for _, docs := range []float64{1e5, 1e6, 1e7, 1e8, 1e9} {
		r := m.Ratio(docs)
		if r <= prev {
			t.Fatalf("ratio not monotone at %g docs: %g <= %g", docs, r, prev)
		}
		prev = r
	}
}

func TestCrossover(t *testing.T) {
	m := PaperTrafficModel()
	x := m.Crossover(1e9)
	// HDK must win well below the full Wikipedia size.
	if x >= 653546 {
		t.Fatalf("crossover at %.0f docs, want below full Wikipedia", x)
	}
	// At the crossover the totals agree.
	if d := math.Abs(m.STTotal(x)-m.HDKTotal(x)) / m.STTotal(x); x > 1 && d > 1e-6 {
		t.Errorf("totals differ by %.2g at crossover", d)
	}
	// ST wins below, HDK wins above (when crossover is interior).
	if x > 2 {
		if m.STTotal(x/2) > m.HDKTotal(x/2) {
			t.Error("HDK wrongly wins below crossover")
		}
		if m.STTotal(x*2) < m.HDKTotal(x*2) {
			t.Error("ST wrongly wins above crossover")
		}
	}
}

func TestFig8Series(t *testing.T) {
	m := PaperTrafficModel()
	docs := []float64{1e6, 1e8, 1e9}
	series := m.Fig8Series(docs)
	if len(series) != 3 {
		t.Fatalf("series length %d", len(series))
	}
	for i, p := range series {
		if p.Docs != docs[i] || p.ST <= 0 || p.HDK <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	// Figure 8's visual: ST is far above HDK at the right edge.
	last := series[len(series)-1]
	if last.ST < 10*last.HDK {
		t.Errorf("at 1e9 docs ST/HDK = %.1f, want >> 10", last.ST/last.HDK)
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	m := PaperTrafficModel()
	m.HDKQueryPostings = 0
	if err := m.Validate(); err == nil {
		t.Error("zero parameter accepted")
	}
}

func TestEstimateIndexSizePaperNumbers(t *testing.T) {
	// Pf,1 = 0.8 and Pf,2 = 0.257 with w = 20 give the paper's bounds
	// IS2/D = 12.16 and IS3/D ≈ 11.35.
	est, err := EstimateIndexSize([]float64{0.8, 0.257}, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.RatioBySize[1] != 1 {
		t.Errorf("IS1/D bound = %g, want 1", est.RatioBySize[1])
	}
	if math.Abs(est.RatioBySize[2]-12.16) > 0.01 {
		t.Errorf("IS2/D bound = %.3f, want 12.16", est.RatioBySize[2])
	}
	if math.Abs(est.RatioBySize[3]-11.35) > 0.12 {
		t.Errorf("IS3/D bound = %.3f, want ~11.35", est.RatioBySize[3])
	}
	// Total bound ~24.5x the sample size — the "at most 40.7 times more
	// indexing traffic than single-term" argument uses the posting ratio;
	// the IS/D bound must stay within the same order of magnitude.
	if est.Total < 20 || est.Total > 30 {
		t.Errorf("total IS/D bound = %.2f, want ~24.5", est.Total)
	}
}

func TestEstimateIndexSizeValidation(t *testing.T) {
	if _, err := EstimateIndexSize([]float64{0.8}, 20, 3); err == nil {
		t.Error("short pf slice accepted")
	}
	// smax = 1 needs no Pf values at all.
	est, err := EstimateIndexSize(nil, 20, 1)
	if err != nil {
		t.Errorf("smax=1 with no pf rejected: %v", err)
	}
	if est.Total != 1 {
		t.Errorf("smax=1 total = %g, want 1", est.Total)
	}
}

func TestAdviseDFMax(t *testing.T) {
	// With nk ≈ 3.92, a 1568-posting budget advises DFmax = 400 — the
	// paper's own operating point.
	got := AdviseDFMax(1568, 2.3, 3)
	if got < 395 || got > 405 {
		t.Errorf("AdviseDFMax(1568) = %d, want ~400", got)
	}
	if AdviseDFMax(1, 2.3, 3) != 1 {
		t.Error("tiny budget must floor at 1")
	}
	if AdviseDFMax(100, 0, 3) != 0 {
		t.Error("zero query size must yield 0")
	}
	// The advised DFmax respects the budget.
	df := AdviseDFMax(2000, 3, 3)
	if bound := RetrievalBound(3, 3, df); bound > 2000+7 {
		t.Errorf("advised DFmax %d exceeds budget: bound %.0f", df, bound)
	}
}
