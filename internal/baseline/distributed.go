package baseline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/postings"
	"repro/internal/rank"
)

// Service names registered on overlay nodes by the ST engine.
const (
	svcSTInsert = "st.insert"
	svcSTFetch  = "st.fetch"
)

// GlobalStats carries the collection-wide statistics distributed ranking
// needs. In the prototype lineage these are gossiped through the overlay
// (as in MINERVA/PlanetP); here they are computed once and handed to every
// peer, which is equivalent after gossip convergence.
type GlobalStats struct {
	NumDocs   int
	AvgDocLen float64
}

// RankStats converts to the rank package's statistics type.
func (g GlobalStats) RankStats() rank.CollectionStats {
	return rank.CollectionStats{NumDocs: g.NumDocs, AvgDocLen: g.AvgDocLen}
}

// Traffic aggregates the posting counters the paper reports. All fields
// are cumulative.
type Traffic struct {
	InsertedPostings atomic.Uint64 // postings shipped into the global index
	StoredPostings   atomic.Uint64 // postings resident in the global index
	FetchedPostings  atomic.Uint64 // postings shipped to querying peers
}

// Snapshot returns a plain-value copy.
func (t *Traffic) Snapshot() TrafficSnapshot {
	return TrafficSnapshot{
		InsertedPostings: t.InsertedPostings.Load(),
		StoredPostings:   t.StoredPostings.Load(),
		FetchedPostings:  t.FetchedPostings.Load(),
	}
}

// TrafficSnapshot is a point-in-time copy of Traffic.
type TrafficSnapshot struct {
	InsertedPostings uint64
	StoredPostings   uint64
	FetchedPostings  uint64
}

// stStore is the index fraction one overlay node is responsible for.
type stStore struct {
	mu    sync.Mutex
	lists map[string]postings.List // term -> full posting list (Score = tf component)
}

// DistributedST is the naïve single-term engine over the structured
// overlay: each term's full posting list lives on the DHT node responsible
// for hash(term); queries fetch the full posting lists of every query
// term. Its retrieval traffic grows with the collection size — the
// behaviour the HDK design eliminates.
type DistributedST struct {
	net     overlay.Fabric
	params  rank.BM25Params
	global  GlobalStats
	vocab   []string
	stores  map[overlay.ID]*stStore
	Traffic Traffic
}

// NewDistributedST wires the engine onto an existing overlay network.
// vocab maps corpus term ids to key strings.
func NewDistributedST(net overlay.Fabric, vocab []string, global GlobalStats, params rank.BM25Params) *DistributedST {
	e := &DistributedST{
		net:    net,
		params: params,
		global: global,
		vocab:  vocab,
		stores: make(map[overlay.ID]*stStore),
	}
	for _, node := range net.Members() {
		store := &stStore{lists: make(map[string]postings.List)}
		e.stores[node.ID()] = store
		node.Handle(svcSTInsert, e.makeInsertHandler(store))
		node.Handle(svcSTFetch, e.makeFetchHandler(store))
		for name, h := range e.registerBloomHandlers(store) {
			node.Handle(name, h)
		}
	}
	return e
}

func (e *DistributedST) makeInsertHandler(store *stStore) func([]byte) ([]byte, error) {
	return func(req []byte) ([]byte, error) {
		batch, err := postings.DecodeKeyedBatch(req)
		if err != nil {
			return nil, err
		}
		store.mu.Lock()
		defer store.mu.Unlock()
		for _, m := range batch {
			old, ok := store.lists[m.Key]
			merged := postings.Union(old, m.List)
			key := m.Key
			if !ok {
				// The map retains the key; clone it so a key substringing
				// the decoded batch does not pin the request buffer.
				key = strings.Clone(m.Key)
			}
			store.lists[key] = merged
			e.Traffic.StoredPostings.Add(uint64(len(merged) - len(old)))
		}
		return nil, nil
	}
}

func (e *DistributedST) makeFetchHandler(store *stStore) func([]byte) ([]byte, error) {
	return func(req []byte) ([]byte, error) {
		key := string(req)
		store.mu.Lock()
		list := store.lists[key]
		store.mu.Unlock()
		// df of a single term equals its full posting list length.
		resp := postings.EncodeKeyed(nil, postings.KeyedMessage{Key: key, Aux: uint64(len(list)), List: list})
		return resp, nil
	}
}

// IndexPeer indexes one peer's local collection: computes per-term local
// posting lists carrying the BM25 tf-component as score, routes each term
// to its DHT owner and inserts the list. Returns the number of postings
// this peer inserted.
func (e *DistributedST) IndexPeer(local *corpus.Collection, from overlay.Member) (uint64, error) {
	byTerm := make(map[corpus.TermID]postings.List)
	tf := make(map[corpus.TermID]int)
	stats := e.global.RankStats()
	for i := range local.Docs {
		d := &local.Docs[i]
		clear(tf)
		for _, t := range d.Terms {
			tf[t]++
		}
		for t, f := range tf {
			// Score carries the df-independent part of BM25; the index
			// node applies the idf factor at fetch time when the global
			// df is known.
			partial := e.params.Score(stats, f, 1, len(d.Terms)) / stats.IDF(1)
			byTerm[t] = append(byTerm[t], postings.Posting{Doc: d.ID, Score: float32(partial)})
		}
	}
	// Deterministic insertion order.
	terms := make([]corpus.TermID, 0, len(byTerm))
	for t := range byTerm {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })

	inserted := uint64(0)
	for _, t := range terms {
		list := byTerm[t]
		sort.Slice(list, func(i, j int) bool { return list[i].Doc < list[j].Doc })
		key := e.vocab[t]
		owner, _, err := e.net.Route(from, key)
		if err != nil {
			return inserted, fmt.Errorf("baseline: route %q: %w", key, err)
		}
		payload := postings.EncodeKeyedBatch(nil, []postings.KeyedMessage{{Key: key, List: list}})
		if _, err := e.net.CallService(owner.Addr(), svcSTInsert, payload); err != nil {
			return inserted, fmt.Errorf("baseline: insert %q: %w", key, err)
		}
		inserted += uint64(len(list))
	}
	e.Traffic.InsertedPostings.Add(inserted)
	return inserted, nil
}

// Search fetches the full posting list of every query term from the
// global index, applies the idf factor, unions and ranks. It returns the
// top-k results and the number of postings transferred (the Figure 6
// quantity).
func (e *DistributedST) Search(q corpus.Query, from overlay.Member, k int) ([]rank.Result, uint64, error) {
	stats := e.global.RankStats()
	var acc postings.List
	fetched := uint64(0)
	for _, t := range q.Terms {
		key := e.vocab[t]
		owner, _, err := e.net.Route(from, key)
		if err != nil {
			return nil, fetched, err
		}
		raw, err := e.net.CallService(owner.Addr(), svcSTFetch, []byte(key))
		if err != nil {
			return nil, fetched, err
		}
		m, _, err := postings.DecodeKeyed(raw)
		if err != nil {
			return nil, fetched, err
		}
		fetched += uint64(len(m.List))
		idf := float32(stats.IDF(int(m.Aux)))
		scored := make(postings.List, len(m.List))
		for i, p := range m.List {
			scored[i] = postings.Posting{Doc: p.Doc, Score: p.Score * idf}
		}
		acc = postings.Union(acc, scored)
	}
	e.Traffic.FetchedPostings.Add(fetched)
	return rank.TopKByScore(acc, k), fetched, nil
}

// StoredPostingsPerNode reports how many postings each overlay node holds,
// keyed by node id — the per-peer index size of Figure 3.
func (e *DistributedST) StoredPostingsPerNode() map[overlay.ID]int {
	out := make(map[overlay.ID]int, len(e.stores))
	for id, s := range e.stores {
		s.mu.Lock()
		total := 0
		for _, l := range s.lists {
			total += len(l)
		}
		s.mu.Unlock()
		out[id] = total
	}
	return out
}
