package baseline

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/rank"
)

// conjunctiveDocs brute-forces the conjunctive answer set.
func conjunctiveDocs(col *corpus.Collection, q corpus.Query) map[corpus.DocID]bool {
	out := map[corpus.DocID]bool{}
	for i := range col.Docs {
		need := map[corpus.TermID]bool{}
		for _, t := range q.Terms {
			need[t] = true
		}
		for _, t := range col.Docs[i].Terms {
			delete(need, t)
		}
		if len(need) == 0 {
			out[col.Docs[i].ID] = true
		}
	}
	return out
}

func TestSearchBloomExactness(t *testing.T) {
	col := genCollection(t, 150)
	st, net := buildSTEngine(t, col, 4)
	nodes := net.Nodes()
	qp := corpus.DefaultQueryParams(20)
	qp.MinHits = 1
	cen := NewCentralized(col, rank.DefaultBM25())
	queries, err := corpus.GenerateQueries(col, qp, 20, cen.ConjunctiveHits)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := conjunctiveDocs(col, q)
		res, _, err := st.SearchBloom(q, nodes[i%4], col.M())
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(want) {
			t.Fatalf("query %d (%v): bloom returned %d docs, brute force %d", i, q.Terms, len(res), len(want))
		}
		for _, r := range res {
			if !want[r.Doc] {
				t.Fatalf("query %d: doc %d is a false positive", i, r.Doc)
			}
		}
	}
}

func TestSearchBloomMatchesConjunctive(t *testing.T) {
	col := genCollection(t, 120)
	st, net := buildSTEngine(t, col, 4)
	nodes := net.Nodes()
	qp := corpus.DefaultQueryParams(15)
	qp.MinHits = 1
	cen := NewCentralized(col, rank.DefaultBM25())
	queries, err := corpus.GenerateQueries(col, qp, 20, cen.ConjunctiveHits)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		plain, _, err := st.SearchConjunctive(q, nodes[i%4], 20)
		if err != nil {
			t.Fatal(err)
		}
		blm, _, err := st.SearchBloom(q, nodes[i%4], 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(blm) {
			t.Fatalf("query %d: %d vs %d results", i, len(plain), len(blm))
		}
		for j := range plain {
			if plain[j].Doc != blm[j].Doc {
				t.Fatalf("query %d rank %d: doc %d vs %d", i, j, plain[j].Doc, blm[j].Doc)
			}
			if d := plain[j].Score - blm[j].Score; d > 1e-3 || d < -1e-3 {
				t.Fatalf("query %d rank %d: score %g vs %g", i, j, plain[j].Score, blm[j].Score)
			}
		}
	}
}

// selectiveCollection builds the case the Bloom optimization targets:
// two terms with long posting lists but a small intersection (a filter of
// one list is far smaller than the list, and the intersection result is
// tiny). Term 0 occurs in the first half of the documents, term 1 in the
// second half, and both in the first `overlap` documents; term 2 pads
// every document so lists stay sorted/realistic.
func selectiveCollection(docs, overlap int) *corpus.Collection {
	col := &corpus.Collection{Vocab: []string{"alpha0", "beta1", "pad2"}}
	for i := 0; i < docs; i++ {
		var terms []corpus.TermID
		if i < docs/2 || i < overlap {
			terms = append(terms, 0)
		}
		if i >= docs/2 || i < overlap {
			terms = append(terms, 1)
		}
		terms = append(terms, 2)
		col.Docs = append(col.Docs, corpus.Document{ID: corpus.DocID(i), Terms: terms})
	}
	return col
}

func TestSearchBloomSavesBytesOnSelectiveQuery(t *testing.T) {
	col := selectiveCollection(600, 10)
	st, net := buildSTEngine(t, col, 4)
	q := corpus.Query{Terms: []corpus.TermID{0, 1}}
	node := net.Nodes()[0]
	plain, plainBytes, err := st.SearchConjunctive(q, node, 20)
	if err != nil {
		t.Fatal(err)
	}
	blm, bloomBytes, err := st.SearchBloom(q, node, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 10 || len(blm) != 10 {
		t.Fatalf("expected 10 conjunctive hits, got plain=%d bloom=%d", len(plain), len(blm))
	}
	if bloomBytes >= plainBytes {
		t.Fatalf("bloom protocol used %d bytes >= plain %d on a selective query", bloomBytes, plainBytes)
	}
}

func TestSearchBloomSingleTermFallsBack(t *testing.T) {
	col := genCollection(t, 80)
	st, net := buildSTEngine(t, col, 4)
	q := corpus.Query{Terms: []corpus.TermID{col.Docs[0].Terms[0]}}
	res, _, err := st.SearchBloom(q, net.Nodes()[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	want := conjunctiveDocs(col, q)
	if len(res) == 0 || len(res) > len(want) {
		t.Fatalf("single-term fallback returned %d docs, universe %d", len(res), len(want))
	}
}

func TestSearchBloomTrafficStillGrows(t *testing.T) {
	// Zhang & Suel's point, reproduced: Bloom filters shrink conjunctive
	// traffic but it still grows with the collection — unlike HDK.
	bytesAt := func(docs int) uint64 {
		col := genCollection(t, docs)
		st, net := buildSTEngine(t, col, 4)
		dfs := col.DocumentFrequencies()
		best, second := 0, 1
		for id, df := range dfs {
			if df > dfs[best] {
				second, best = best, id
			} else if id != best && df > dfs[second] {
				second = id
			}
		}
		q := corpus.Query{Terms: []corpus.TermID{corpus.TermID(best), corpus.TermID(second)}}
		_, b, err := st.SearchBloom(q, net.Nodes()[0], 20)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	small, large := bytesAt(100), bytesAt(500)
	if large <= small {
		t.Fatalf("bloom traffic did not grow with the collection: %d -> %d bytes", small, large)
	}
}
