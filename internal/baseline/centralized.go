// Package baseline implements the two comparators of the paper's
// evaluation: a centralized single-term BM25 engine (the reference for the
// Figure 7 top-20 overlap, standing in for the authors' Terrier setup) and
// the "naïve" distributed single-term engine over the structured overlay
// (the ST curves of Figures 3, 4, 6 and 8).
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/corpus"
	"repro/internal/postings"
	"repro/internal/rank"
)

// Centralized is a classical single-machine inverted index with BM25
// ranking.
type Centralized struct {
	params  rank.BM25Params
	stats   rank.CollectionStats
	docLens map[corpus.DocID]int
	// index[t] is the posting list of term t with Score = raw tf.
	index map[corpus.TermID]postings.List
}

// NewCentralized indexes the whole collection.
func NewCentralized(c *corpus.Collection, params rank.BM25Params) *Centralized {
	e := &Centralized{
		params:  params,
		docLens: make(map[corpus.DocID]int, len(c.Docs)),
		index:   make(map[corpus.TermID]postings.List),
	}
	totalLen := 0
	tf := make(map[corpus.TermID]int)
	for i := range c.Docs {
		d := &c.Docs[i]
		e.docLens[d.ID] = len(d.Terms)
		totalLen += len(d.Terms)
		clear(tf)
		for _, t := range d.Terms {
			tf[t]++
		}
		for t, f := range tf {
			e.index[t] = append(e.index[t], postings.Posting{Doc: d.ID, Score: float32(f)})
		}
	}
	for t := range e.index {
		l := e.index[t]
		sort.Slice(l, func(i, j int) bool { return l[i].Doc < l[j].Doc })
	}
	e.stats = rank.CollectionStats{NumDocs: len(c.Docs)}
	if len(c.Docs) > 0 {
		e.stats.AvgDocLen = float64(totalLen) / float64(len(c.Docs))
	}
	return e
}

// Stats returns the collection statistics the engine ranks with.
func (e *Centralized) Stats() rank.CollectionStats { return e.stats }

// DF returns the document frequency of a term.
func (e *Centralized) DF(t corpus.TermID) int { return len(e.index[t]) }

// PostingList returns the term's posting list (Score = tf). The returned
// slice is owned by the engine and must not be mutated.
func (e *Centralized) PostingList(t corpus.TermID) postings.List { return e.index[t] }

// Search ranks the collection for the query with BM25 and returns the
// top-k results (disjunctive semantics, the standard web-search model).
func (e *Centralized) Search(q corpus.Query, k int) []rank.Result {
	scores := make(map[corpus.DocID]float64)
	for _, t := range q.Terms {
		pl := e.index[t]
		df := len(pl)
		for _, p := range pl {
			scores[p.Doc] += e.params.Score(e.stats, int(p.Score), df, e.docLens[p.Doc])
		}
	}
	res := make([]rank.Result, 0, len(scores))
	for doc, s := range scores {
		res = append(res, rank.Result{Doc: doc, Score: s})
	}
	rank.SortResults(res)
	if k < len(res) {
		res = res[:k]
	}
	return res
}

// ConjunctiveHits counts documents containing every query term — the
// "hits" notion behind the paper's >20-hits query filter.
func (e *Centralized) ConjunctiveHits(q corpus.Query) int {
	if len(q.Terms) == 0 {
		return 0
	}
	acc := e.index[q.Terms[0]]
	for _, t := range q.Terms[1:] {
		acc = postings.Intersect(acc, e.index[t])
		if len(acc) == 0 {
			return 0
		}
	}
	return len(acc)
}

// IndexPostings returns the total number of postings in the index — the
// single-term index size of Figures 3 and 4 (a centralized and a
// distributed ST index hold the same postings overall).
func (e *Centralized) IndexPostings() int {
	total := 0
	for _, l := range e.index {
		total += len(l)
	}
	return total
}

// VocabularySize returns the number of distinct indexed terms.
func (e *Centralized) VocabularySize() int { return len(e.index) }

// String summarizes the engine for logs.
func (e *Centralized) String() string {
	return fmt.Sprintf("centralized{docs=%d terms=%d postings=%d}",
		e.stats.NumDocs, len(e.index), e.IndexPostings())
}
