package baseline

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/transport"
)

func genCollection(t testing.TB, docs int) *corpus.Collection {
	t.Helper()
	p := corpus.DefaultGenParams(docs)
	p.AvgDocLen = 60
	c, err := corpus.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCentralizedIndexConsistency(t *testing.T) {
	c := genCollection(t, 200)
	e := NewCentralized(c, rank.DefaultBM25())
	// Sum of posting-list lengths equals sum over docs of distinct terms.
	wantPostings := 0
	for i := range c.Docs {
		seen := map[corpus.TermID]bool{}
		for _, tm := range c.Docs[i].Terms {
			seen[tm] = true
		}
		wantPostings += len(seen)
	}
	if got := e.IndexPostings(); got != wantPostings {
		t.Fatalf("IndexPostings = %d, want %d", got, wantPostings)
	}
	// df per the engine equals df per the collection scan.
	dfs := c.DocumentFrequencies()
	for id, df := range dfs {
		if got := e.DF(corpus.TermID(id)); got != df {
			t.Fatalf("DF(%d) = %d, want %d", id, got, df)
		}
	}
	if e.Stats().NumDocs != c.M() {
		t.Fatalf("NumDocs = %d, want %d", e.Stats().NumDocs, c.M())
	}
}

func TestCentralizedSearchRanksContainingDocs(t *testing.T) {
	c := genCollection(t, 150)
	e := NewCentralized(c, rank.DefaultBM25())
	// Use terms of an existing document: it must be retrievable.
	doc := &c.Docs[7]
	q := corpus.Query{Terms: doc.Terms[:2]}
	res := e.Search(q, 20)
	if len(res) == 0 {
		t.Fatal("no results for terms drawn from an indexed doc")
	}
	found := false
	for _, r := range res {
		if r.Doc == doc.ID {
			found = true
		}
	}
	if !found {
		// Not guaranteed in general, but with 150 docs and top-20 a doc
		// containing both query terms is expected to rank.
		t.Logf("warning: source doc not in top-20 (can legitimately happen)")
	}
	// Scores must be non-increasing.
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
}

func TestCentralizedConjunctiveHits(t *testing.T) {
	c := genCollection(t, 100)
	e := NewCentralized(c, rank.DefaultBM25())
	doc := &c.Docs[3]
	q := corpus.Query{Terms: []corpus.TermID{doc.Terms[0], doc.Terms[1]}}
	got := e.ConjunctiveHits(q)
	// Brute force.
	want := 0
	for i := range c.Docs {
		has0, has1 := false, false
		for _, tm := range c.Docs[i].Terms {
			if tm == q.Terms[0] {
				has0 = true
			}
			if tm == q.Terms[1] {
				has1 = true
			}
		}
		if has0 && has1 {
			want++
		}
	}
	if got != want {
		t.Fatalf("ConjunctiveHits = %d, want %d", got, want)
	}
	if e.ConjunctiveHits(corpus.Query{}) != 0 {
		t.Error("empty query should have 0 hits")
	}
}

func buildSTEngine(t testing.TB, col *corpus.Collection, peers int) (*DistributedST, *overlay.Network) {
	t.Helper()
	net := overlay.NewNetwork(transport.NewInProc())
	for i := 0; i < peers; i++ {
		if _, err := net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	global := GlobalStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()}
	e := NewDistributedST(net, col.Vocab, global, rank.DefaultBM25())
	parts := col.SplitRoundRobin(peers)
	nodes := net.Nodes()
	for i, part := range parts {
		if _, err := e.IndexPeer(part, nodes[i%len(nodes)]); err != nil {
			t.Fatal(err)
		}
	}
	return e, net
}

func TestDistributedSTMatchesCentralized(t *testing.T) {
	col := genCollection(t, 120)
	cen := NewCentralized(col, rank.DefaultBM25())
	st, net := buildSTEngine(t, col, 4)

	qp := corpus.DefaultQueryParams(15)
	qp.MinHits = 2
	queries, err := corpus.GenerateQueries(col, qp, 20, func(q corpus.Query) int {
		return cen.ConjunctiveHits(q)
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := net.Nodes()
	for i, q := range queries {
		want := cen.Search(q, 20)
		got, fetched, err := st.Search(q, nodes[i%len(nodes)], 20)
		if err != nil {
			t.Fatal(err)
		}
		if fetched == 0 {
			t.Fatalf("query %d fetched no postings", i)
		}
		// Distributed ST computes the same BM25 (modulo float32 rounding
		// of the shipped partials): top-20 overlap must be near-total.
		if ov := rank.Overlap(want, got, 20); ov < 95 {
			t.Fatalf("query %d: ST overlap with centralized = %.0f%%, want >= 95%%", i, ov)
		}
	}
}

func TestDistributedSTTrafficGrowsWithCollection(t *testing.T) {
	// Figure 6's ST behaviour: per-query traffic grows with the
	// collection because posting lists are unbounded.
	fetchedAt := func(docs int) uint64 {
		col := genCollection(t, docs)
		cen := NewCentralized(col, rank.DefaultBM25())
		st, net := buildSTEngine(t, col, 4)
		qp := corpus.DefaultQueryParams(10)
		qp.MinHits = 1
		queries, err := corpus.GenerateQueries(col, qp, 20, cen.ConjunctiveHits)
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(0)
		for i, q := range queries {
			_, fetched, err := st.Search(q, net.Nodes()[i%4], 20)
			if err != nil {
				t.Fatal(err)
			}
			total += fetched
		}
		return total
	}
	small := fetchedAt(80)
	large := fetchedAt(320)
	if large <= small {
		t.Fatalf("ST traffic did not grow: %d (80 docs) vs %d (320 docs)", small, large)
	}
}

func TestDistributedSTStoredEqualsInserted(t *testing.T) {
	// Every inserted posting is stored exactly once (full lists, no
	// truncation) when each (term, doc) pair is unique across peers.
	col := genCollection(t, 100)
	st, _ := buildSTEngine(t, col, 4)
	snap := st.Traffic.Snapshot()
	if snap.InsertedPostings != snap.StoredPostings {
		t.Fatalf("inserted %d != stored %d", snap.InsertedPostings, snap.StoredPostings)
	}
	perNode := st.StoredPostingsPerNode()
	total := 0
	for _, n := range perNode {
		total += n
	}
	if uint64(total) != snap.StoredPostings {
		t.Fatalf("per-node sum %d != stored %d", total, snap.StoredPostings)
	}
}

func TestDistributedSTIndexSizeMatchesCentralized(t *testing.T) {
	col := genCollection(t, 100)
	cen := NewCentralized(col, rank.DefaultBM25())
	st, _ := buildSTEngine(t, col, 4)
	if got, want := st.Traffic.Snapshot().StoredPostings, uint64(cen.IndexPostings()); got != want {
		t.Fatalf("distributed ST stores %d postings, centralized %d", got, want)
	}
}
