package baseline

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bloom"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/postings"
	"repro/internal/rank"
)

// This file implements the Bloom-filter posting-list intersection
// protocol from the related work the paper positions itself against
// (Reynolds & Vahdat; ODISSEA; analyzed by Zhang & Suel): for conjunctive
// multi-term queries, ship a Bloom filter of the first term's posting
// list instead of the list itself, intersect remotely, and verify the
// final (small) candidate set. Traffic is reported in bytes so the plain
// and Bloom variants are directly comparable; both shrink per-query
// traffic relative to full-list shipping, but neither bounds it — the
// property only the HDK index provides.

// Additional ST services for the Bloom protocol.
const (
	svcSTBloomOf   = "st.bloomof"
	svcSTIntersect = "st.intersect"
	svcSTVerify    = "st.verify"
)

// defaultBloomFPRate balances filter size against false-positive
// verification cost, the operating point the related work suggests.
const defaultBloomFPRate = 0.01

func (e *DistributedST) registerBloomHandlers(store *stStore) map[string]func([]byte) ([]byte, error) {
	return map[string]func([]byte) ([]byte, error){
		svcSTBloomOf: func(req []byte) ([]byte, error) {
			key := string(req)
			store.mu.Lock()
			list := store.lists[key]
			store.mu.Unlock()
			f, err := bloom.NewForCapacity(uint64(len(list)), defaultBloomFPRate)
			if err != nil {
				return nil, err
			}
			for _, p := range list {
				f.AddUint32(uint32(p.Doc))
			}
			return bloom.Encode(nil, f), nil
		},
		svcSTIntersect: func(req []byte) ([]byte, error) {
			key, body, err := splitKeyPayload(req)
			if err != nil {
				return nil, err
			}
			f, err := bloom.Decode(body)
			if err != nil {
				return nil, err
			}
			store.mu.Lock()
			list := store.lists[key]
			store.mu.Unlock()
			out := make(postings.List, 0, 64)
			idf := float32(e.global.RankStats().IDF(len(list)))
			for _, p := range list {
				if f.TestUint32(uint32(p.Doc)) {
					out = append(out, postings.Posting{Doc: p.Doc, Score: p.Score * idf})
				}
			}
			return postings.Encode(nil, out), nil
		},
		svcSTVerify: func(req []byte) ([]byte, error) {
			key, body, err := splitKeyPayload(req)
			if err != nil {
				return nil, err
			}
			ids, _, err := postings.Decode(body)
			if err != nil {
				return nil, err
			}
			store.mu.Lock()
			list := store.lists[key]
			store.mu.Unlock()
			idf := float32(e.global.RankStats().IDF(len(list)))
			out := make(postings.List, 0, len(ids))
			for _, p := range ids {
				if i, ok := find(list, p.Doc); ok {
					out = append(out, postings.Posting{Doc: p.Doc, Score: list[i].Score * idf})
				}
			}
			return postings.Encode(nil, out), nil
		},
	}
}

func find(l postings.List, doc corpus.DocID) (int, bool) {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case l[mid].Doc < doc:
			lo = mid + 1
		case l[mid].Doc > doc:
			hi = mid
		default:
			return mid, true
		}
	}
	return 0, false
}

func splitKeyPayload(req []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(req)
	if sz <= 0 || uint64(len(req)-sz) < n {
		return "", nil, fmt.Errorf("baseline: corrupt key payload")
	}
	return string(req[sz : sz+int(n)]), req[sz+int(n):], nil
}

func joinKeyPayload(key string, body []byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(key)))
	buf = append(buf, key...)
	return append(buf, body...)
}

// SearchConjunctive answers the query with conjunctive (AND) semantics by
// fetching every term's full posting list and intersecting locally — the
// naïve protocol the Bloom optimization improves on. It returns the
// ranked results and the payload bytes transferred.
func (e *DistributedST) SearchConjunctive(q corpus.Query, from fromNode, k int) ([]rank.Result, uint64, error) {
	stats := e.global.RankStats()
	var acc postings.List
	bytes := uint64(0)
	for i, t := range q.Terms {
		key := e.vocab[t]
		raw, err := e.callTerm(from, key, svcSTFetch, []byte(key))
		if err != nil {
			return nil, bytes, err
		}
		bytes += uint64(len(raw))
		m, _, err := postings.DecodeKeyed(raw)
		if err != nil {
			return nil, bytes, err
		}
		idf := float32(stats.IDF(int(m.Aux)))
		scored := make(postings.List, len(m.List))
		for j, p := range m.List {
			scored[j] = postings.Posting{Doc: p.Doc, Score: p.Score * idf}
		}
		if i == 0 {
			acc = scored
		} else {
			acc = postings.Intersect(acc, scored)
		}
	}
	return rank.TopKByScore(acc, k), bytes, nil
}

// SearchBloom answers the same conjunctive query with the Bloom-assisted
// protocol: a filter of the first term's posting list travels instead of
// the list; every further owner returns only the postings passing the
// running filter; the final candidates are verified against the first
// term's owner, eliminating false positives. Results are exact and equal
// to SearchConjunctive's; only the traffic differs.
func (e *DistributedST) SearchBloom(q corpus.Query, from fromNode, k int) ([]rank.Result, uint64, error) {
	if len(q.Terms) < 2 {
		return e.SearchConjunctive(q, from, k)
	}
	bytes := uint64(0)
	first := e.vocab[q.Terms[0]]
	filterBytes, err := e.callTerm(from, first, svcSTBloomOf, []byte(first))
	if err != nil {
		return nil, bytes, err
	}
	bytes += uint64(len(filterBytes))

	var acc postings.List
	for i, t := range q.Terms[1:] {
		key := e.vocab[t]
		raw, err := e.callTerm(from, key, svcSTIntersect, joinKeyPayload(key, filterBytes))
		if err != nil {
			return nil, bytes, err
		}
		bytes += uint64(len(filterBytes) + len(raw))
		list, _, err := postings.Decode(raw)
		if err != nil {
			return nil, bytes, err
		}
		if i == 0 {
			acc = list
		} else {
			acc = postings.Intersect(acc, list)
		}
		// Narrow the filter to the surviving candidates for the next hop.
		f, err := bloom.NewForCapacity(uint64(len(acc)), defaultBloomFPRate)
		if err != nil {
			return nil, bytes, err
		}
		for _, p := range acc {
			f.AddUint32(uint32(p.Doc))
		}
		filterBytes = bloom.Encode(nil, f)
	}

	// Verification round: candidates may be false positives with respect
	// to the first term only (intersections against terms 2..n used the
	// exact remote lists).
	ids := make(postings.List, len(acc))
	for i, p := range acc {
		ids[i] = postings.Posting{Doc: p.Doc}
	}
	idsEnc := postings.Encode(nil, ids)
	raw, err := e.callTerm(from, first, svcSTVerify, joinKeyPayload(first, idsEnc))
	if err != nil {
		return nil, bytes, err
	}
	bytes += uint64(len(idsEnc) + len(raw))
	verified, _, err := postings.Decode(raw)
	if err != nil {
		return nil, bytes, err
	}
	final := postings.Intersect(acc, verified) // adds the first term's scores
	return rank.TopKByScore(final, k), bytes, nil
}

// fromNode is the origin of DHT routing for a query (an overlay node).
type fromNode = overlay.Member

// callTerm routes to the owner of key and invokes the service.
func (e *DistributedST) callTerm(from fromNode, key, service string, req []byte) ([]byte, error) {
	owner, _, err := e.net.Route(from, key)
	if err != nil {
		return nil, err
	}
	return e.net.CallService(owner.Addr(), service, req)
}
