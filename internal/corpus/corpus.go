// Package corpus provides the document-collection substrate for the
// reproduction: a deterministic synthetic generator that plays the role of
// the paper's Wikipedia subset (653,546 articles, ~225 words each, Zipf
// skew ~1.5), plus a query-log generator standing in for the 2004
// Wikipedia query log (3,000 queries, 2-8 terms, average 3.02).
//
// Every quantity the paper measures — posting-list lengths, key document
// frequencies, index sizes, retrieval traffic — is a function of the
// rank-frequency distribution and of term co-occurrence locality. The
// generator controls both explicitly (global Zipf sampling + topical
// mixtures), so the measured curves keep the paper's shape even though the
// underlying text is synthetic.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/zipfmodel"
)

// DocID identifies a document within a collection.
type DocID uint32

// TermID is an index into the collection vocabulary.
type TermID uint32

// Document is a pre-processed document: an ordered sequence of vocabulary
// term ids (stop words and very frequent terms already removed).
type Document struct {
	ID    DocID
	Terms []TermID
}

// Collection is a document collection D together with its term vocabulary
// T. M = len(Docs) is the collection size; SampleSize() is the paper's D
// (total number of term occurrences).
type Collection struct {
	Vocab []string
	Docs  []Document
}

// M returns the number of documents (the paper's M).
func (c *Collection) M() int { return len(c.Docs) }

// SampleSize returns the total number of term occurrences (the paper's D).
func (c *Collection) SampleSize() int {
	total := 0
	for i := range c.Docs {
		total += len(c.Docs[i].Terms)
	}
	return total
}

// AvgDocLen returns the average document length in terms.
func (c *Collection) AvgDocLen() float64 {
	if len(c.Docs) == 0 {
		return 0
	}
	return float64(c.SampleSize()) / float64(len(c.Docs))
}

// Term returns the vocabulary string for id.
func (c *Collection) Term(id TermID) string { return c.Vocab[id] }

// TermStrings materializes a document's terms as strings.
func (c *Collection) TermStrings(d *Document) []string {
	out := make([]string, len(d.Terms))
	for i, id := range d.Terms {
		out[i] = c.Vocab[id]
	}
	return out
}

// TermFrequencies returns the collection frequency f_D(t) for every
// vocabulary term.
func (c *Collection) TermFrequencies() []int {
	freqs := make([]int, len(c.Vocab))
	for i := range c.Docs {
		for _, id := range c.Docs[i].Terms {
			freqs[id]++
		}
	}
	return freqs
}

// DocumentFrequencies returns df_D(t), the number of documents containing
// each vocabulary term.
func (c *Collection) DocumentFrequencies() []int {
	dfs := make([]int, len(c.Vocab))
	seen := make([]DocID, len(c.Vocab))
	for i := range c.Docs {
		marker := c.Docs[i].ID + 1 // 0 means "not seen"
		for _, id := range c.Docs[i].Terms {
			if seen[id] != marker {
				seen[id] = marker
				dfs[id]++
			}
		}
	}
	return dfs
}

// Slice returns a shallow sub-collection containing docs [lo, hi).
func (c *Collection) Slice(lo, hi int) *Collection {
	return &Collection{Vocab: c.Vocab, Docs: c.Docs[lo:hi]}
}

// SplitRoundRobin distributes documents over n peers round-robin, which is
// statistically equivalent to the paper's "randomly distributed over the
// peers" for a randomly-ordered synthetic collection.
func (c *Collection) SplitRoundRobin(n int) []*Collection {
	if n < 1 {
		n = 1
	}
	parts := make([]*Collection, n)
	for i := range parts {
		parts[i] = &Collection{Vocab: c.Vocab}
	}
	for i := range c.Docs {
		p := i % n
		parts[p].Docs = append(parts[p].Docs, c.Docs[i])
	}
	return parts
}

// GenParams configures the synthetic generator.
type GenParams struct {
	NumDocs    int     // M
	VocabSize  int     // |T|
	AvgDocLen  int     // paper: 225 words per document
	Skew       float64 // Zipf skew of the global term distribution (paper fit: 1.5)
	NumTopics  int     // topical clusters inducing term co-occurrence
	TopicTerms int     // vocabulary span of each topic
	TopicMix   float64 // probability a token is drawn from the doc's topic
	Seed       int64   // determinism
}

// DefaultGenParams mirrors the paper's collection statistics at a
// configurable document count.
func DefaultGenParams(numDocs int) GenParams {
	vocab := numDocs * 8
	if vocab < 2000 {
		vocab = 2000
	}
	if vocab > 400000 {
		vocab = 400000
	}
	topics := numDocs / 500
	if topics < 8 {
		topics = 8
	}
	return GenParams{
		NumDocs:    numDocs,
		VocabSize:  vocab,
		AvgDocLen:  225,
		Skew:       1.1,
		NumTopics:  topics,
		TopicTerms: vocab / 20,
		TopicMix:   0.35,
		Seed:       1,
	}
}

// Validate reports whether the parameters are usable.
func (p GenParams) Validate() error {
	if p.NumDocs < 1 {
		return fmt.Errorf("corpus: NumDocs must be >= 1, got %d", p.NumDocs)
	}
	if p.VocabSize < 10 {
		return fmt.Errorf("corpus: VocabSize must be >= 10, got %d", p.VocabSize)
	}
	if p.AvgDocLen < 4 {
		return fmt.Errorf("corpus: AvgDocLen must be >= 4, got %d", p.AvgDocLen)
	}
	if p.Skew <= 0 {
		return fmt.Errorf("corpus: Skew must be positive, got %g", p.Skew)
	}
	if p.TopicMix < 0 || p.TopicMix > 1 {
		return fmt.Errorf("corpus: TopicMix must be in [0,1], got %g", p.TopicMix)
	}
	return nil
}

// Generate builds a synthetic collection. Documents are assigned a topic;
// each token comes from the topic's term band with probability TopicMix and
// from the global Zipf distribution otherwise. Document lengths are
// normally distributed around AvgDocLen (sd = AvgDocLen/4, min 4).
//
// Generate is a materialized NewDocStream pass, so the two produce the
// exact same document sequence — the property the resumable ingest
// protocol depends on (a re-streamed shard must chunk to identical
// digests).
func Generate(p GenParams) (*Collection, error) {
	ds, err := NewDocStream(p)
	if err != nil {
		return nil, err
	}
	col := &Collection{Vocab: ds.Vocab(), Docs: make([]Document, 0, p.NumDocs)}
	for {
		d, ok := ds.Next()
		if !ok {
			break
		}
		col.Docs = append(col.Docs, d)
	}
	return col, nil
}

// DocStream yields Generate(p)'s documents one at a time, in document-id
// order, without ever materializing the collection — the thin ingest
// client's corpus source: O(one document) resident memory regardless of
// NumDocs, and deterministic (same params, same sequence), so a resumed
// upload regenerates byte-identical chunks.
type DocStream struct {
	p      GenParams
	rng    *rand.Rand
	global *zipfmodel.Sampler
	topics [][]TermID
	next   int
}

// NewDocStream validates the parameters and positions a fresh stream at
// document 0.
func NewDocStream(p GenParams) (*DocStream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	dist, err := zipfmodel.NewDist(p.Skew, 1e6, p.VocabSize)
	if err != nil {
		return nil, err
	}
	return &DocStream{
		p:      p,
		rng:    rng,
		global: zipfmodel.NewSampler(dist, rng),
		topics: makeTopics(p, rng),
	}, nil
}

// Vocab returns the stream's vocabulary (independent of stream position).
func (ds *DocStream) Vocab() []string { return makeVocab(ds.p.VocabSize) }

// Next returns the next document, or ok=false when the stream is done.
func (ds *DocStream) Next() (Document, bool) {
	if ds.next >= ds.p.NumDocs {
		return Document{}, false
	}
	i := ds.next
	ds.next++
	n := docLen(ds.rng, ds.p.AvgDocLen)
	terms := make([]TermID, n)
	topic := ds.topics[i%len(ds.topics)]
	for j := 0; j < n; j++ {
		if ds.p.NumTopics > 0 && ds.rng.Float64() < ds.p.TopicMix {
			terms[j] = topic[ds.rng.Intn(len(topic))]
		} else {
			terms[j] = TermID(ds.global.Next() - 1)
		}
	}
	return Document{ID: DocID(i), Terms: terms}, true
}

// StreamStats runs one full generation pass and returns the collection
// frequencies f_D(t), the document count and the total term occurrences
// — the global statistics an engine configuration needs (Ff cutoff, BM25
// normalization) at O(vocab) memory, for clients that stream the corpus
// instead of holding it.
func StreamStats(p GenParams) (freqs []int, numDocs, sampleSize int, err error) {
	ds, err := NewDocStream(p)
	if err != nil {
		return nil, 0, 0, err
	}
	freqs = make([]int, p.VocabSize)
	for {
		d, ok := ds.Next()
		if !ok {
			break
		}
		numDocs++
		sampleSize += len(d.Terms)
		for _, t := range d.Terms {
			freqs[t]++
		}
	}
	return freqs, numDocs, sampleSize, nil
}

func docLen(rng *rand.Rand, avg int) int {
	n := int(rng.NormFloat64()*float64(avg)/4) + avg
	if n < 4 {
		n = 4
	}
	return n
}

// makeTopics builds per-topic term pools. Topics prefer mid-band ranks:
// head terms are shared background, deep-tail terms are document-specific,
// the middle band is where topical co-occurrence (and hence multi-term
// keys with df > 1) lives.
func makeTopics(p GenParams, rng *rand.Rand) [][]TermID {
	if p.NumTopics <= 0 {
		return [][]TermID{{0}}
	}
	topics := make([][]TermID, p.NumTopics)
	bandLo := p.VocabSize / 50
	bandHi := p.VocabSize
	span := p.TopicTerms
	if span < 4 {
		span = 4
	}
	for t := range topics {
		pool := make([]TermID, span)
		for i := range pool {
			pool[i] = TermID(bandLo + rng.Intn(bandHi-bandLo))
		}
		topics[t] = pool
	}
	return topics
}

// makeVocab builds deterministic pseudo-word strings, rank-ordered: term 0
// is the most frequent. Words are pronounceable syllable chains so the
// text pipeline (tokenizer, stemmer) treats them like English tokens.
func makeVocab(n int) []string {
	onsets := []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "dr", "gr", "kr", "pl", "st"}
	nuclei := []string{"a", "e", "i", "o", "u", "ai", "ea", "ou"}
	vocab := make([]string, n)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.Reset()
		x := i
		for {
			b.WriteString(onsets[x%len(onsets)])
			x /= len(onsets)
			b.WriteString(nuclei[x%len(nuclei)])
			x /= len(nuclei)
			if x == 0 {
				break
			}
		}
		// Suffix the rank to guarantee uniqueness and immunity to stemming
		// collisions between distinct vocabulary entries.
		fmt.Fprintf(&b, "%d", i)
		vocab[i] = b.String()
	}
	return vocab
}

// Text renders a document back to pseudo-text (terms joined by spaces), for
// examples and tools that exercise the full text pipeline.
func (c *Collection) Text(d *Document) string {
	return strings.Join(c.TermStrings(d), " ")
}
