package corpus

import (
	"fmt"
	"math/rand"
)

// Query is a multi-term query (term ids into the collection vocabulary).
type Query struct {
	Terms []TermID
}

// QueryParams configures the synthetic query log, matching the statistics
// of the paper's extracted Wikipedia query set: 3,000 queries, sizes 2-8,
// average 3.02 terms, each producing more than MinHits hits on the indexed
// collection. Single-term queries are excluded, as in the paper ("Single
// term queries were not considered").
type QueryParams struct {
	NumQueries int
	MinTerms   int // paper: 2
	MaxTerms   int // paper: 8
	MinHits    int // paper: >20 hits
	Seed       int64
}

// DefaultQueryParams mirrors the paper's query-set statistics.
func DefaultQueryParams(n int) QueryParams {
	return QueryParams{NumQueries: n, MinTerms: 2, MaxTerms: 8, MinHits: 20, Seed: 7}
}

// querySizeWeights approximates the paper's size distribution: mean 3.02
// with sizes 2..8. Weights chosen so the expected size is ~3.0.
var querySizeWeights = []struct {
	size   int
	weight float64
}{
	{2, 0.42}, {3, 0.30}, {4, 0.15}, {5, 0.07}, {6, 0.04}, {7, 0.015}, {8, 0.005},
}

func sampleQuerySize(rng *rand.Rand, minT, maxT int) int {
	u := rng.Float64()
	acc := 0.0
	for _, sw := range querySizeWeights {
		acc += sw.weight
		if u <= acc {
			s := sw.size
			if s < minT {
				s = minT
			}
			if s > maxT {
				s = maxT
			}
			return s
		}
	}
	return minT
}

// HitCounter reports how many documents of the collection contain all the
// query terms (conjunctive containment, the natural notion of a "hit").
// The query generator uses it to enforce the paper's >MinHits filter.
type HitCounter func(q Query) int

// GenerateQueries samples queries from document windows: a random document
// and a random in-window set of distinct terms, so that query terms
// co-occur the way real queries relate to real pages. Queries failing the
// MinHits filter are rejected and resampled, up to a bounded number of
// attempts per query.
func GenerateQueries(c *Collection, p QueryParams, windowSize int, hits HitCounter) ([]Query, error) {
	if p.NumQueries < 1 {
		return nil, fmt.Errorf("corpus: NumQueries must be >= 1, got %d", p.NumQueries)
	}
	if p.MinTerms < 1 || p.MaxTerms < p.MinTerms {
		return nil, fmt.Errorf("corpus: need 1 <= MinTerms <= MaxTerms, got %d..%d", p.MinTerms, p.MaxTerms)
	}
	if len(c.Docs) == 0 {
		return nil, fmt.Errorf("corpus: empty collection")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	queries := make([]Query, 0, p.NumQueries)
	const maxAttemptsPerQuery = 200
	attempts := 0
	for len(queries) < p.NumQueries {
		if attempts > maxAttemptsPerQuery*p.NumQueries {
			return queries, fmt.Errorf("corpus: only %d/%d queries satisfied the >%d-hits filter",
				len(queries), p.NumQueries, p.MinHits)
		}
		attempts++
		q, ok := sampleQuery(c, rng, p, windowSize)
		if !ok {
			continue
		}
		if hits != nil && hits(q) <= p.MinHits {
			continue
		}
		queries = append(queries, q)
	}
	return queries, nil
}

func sampleQuery(c *Collection, rng *rand.Rand, p QueryParams, windowSize int) (Query, bool) {
	doc := &c.Docs[rng.Intn(len(c.Docs))]
	if len(doc.Terms) < p.MinTerms {
		return Query{}, false
	}
	size := sampleQuerySize(rng, p.MinTerms, p.MaxTerms)
	w := windowSize
	if w < size {
		w = size
	}
	start := 0
	if len(doc.Terms) > w {
		start = rng.Intn(len(doc.Terms) - w + 1)
	}
	window := doc.Terms[start:min(start+w, len(doc.Terms))]
	distinct := distinctTerms(window)
	if len(distinct) < size {
		return Query{}, false
	}
	rng.Shuffle(len(distinct), func(i, j int) { distinct[i], distinct[j] = distinct[j], distinct[i] })
	terms := make([]TermID, size)
	copy(terms, distinct[:size])
	return Query{Terms: terms}, true
}

func distinctTerms(window []TermID) []TermID {
	seen := make(map[TermID]struct{}, len(window))
	out := make([]TermID, 0, len(window))
	for _, t := range window {
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	return out
}

// AvgQuerySize returns the mean number of terms per query.
func AvgQuerySize(qs []Query) float64 {
	if len(qs) == 0 {
		return 0
	}
	total := 0
	for _, q := range qs {
		total += len(q.Terms)
	}
	return float64(total) / float64(len(qs))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
