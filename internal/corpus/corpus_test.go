package corpus

import (
	"testing"

	"repro/internal/zipfmodel"
)

func small(t *testing.T, docs int) *Collection {
	t.Helper()
	p := DefaultGenParams(docs)
	p.AvgDocLen = 60
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateBasicStats(t *testing.T) {
	p := DefaultGenParams(500)
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.M() != 500 {
		t.Fatalf("M = %d, want 500", c.M())
	}
	avg := c.AvgDocLen()
	if avg < 200 || avg > 250 {
		t.Errorf("avg doc len = %.1f, want ~225 (paper Table 1)", avg)
	}
	if c.SampleSize() < 500*150 {
		t.Errorf("sample size %d implausibly small", c.SampleSize())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultGenParams(50)
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Docs {
		at, bt := a.Docs[i].Terms, b.Docs[i].Terms
		if len(at) != len(bt) {
			t.Fatalf("doc %d length differs", i)
		}
		for j := range at {
			if at[j] != bt[j] {
				t.Fatalf("doc %d term %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	p := DefaultGenParams(20)
	a, _ := Generate(p)
	p.Seed = 2
	b, _ := Generate(p)
	same := true
	for i := range a.Docs {
		if len(a.Docs[i].Terms) != len(b.Docs[i].Terms) {
			same = false
			break
		}
		for j := range a.Docs[i].Terms {
			if a.Docs[i].Terms[j] != b.Docs[i].Terms[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical collections")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenParams{
		{NumDocs: 0, VocabSize: 100, AvgDocLen: 50, Skew: 1.5},
		{NumDocs: 10, VocabSize: 5, AvgDocLen: 50, Skew: 1.5},
		{NumDocs: 10, VocabSize: 100, AvgDocLen: 1, Skew: 1.5},
		{NumDocs: 10, VocabSize: 100, AvgDocLen: 50, Skew: 0},
		{NumDocs: 10, VocabSize: 100, AvgDocLen: 50, Skew: 1.5, TopicMix: 1.5},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestTermFrequenciesFollowZipf(t *testing.T) {
	p := DefaultGenParams(400)
	p.TopicMix = 0 // pure Zipf sampling for this test
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	freqs := c.TermFrequencies()
	// Head terms must dominate: rank-0 term at least 5x the rank-100 term.
	if freqs[0] < 5*freqs[100] {
		t.Errorf("head not dominant: f[0]=%d f[100]=%d", freqs[0], freqs[100])
	}
	skew, _, err := zipfmodel.Fit(freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if skew < 0.6 || skew > 1.8 {
		t.Errorf("fitted skew %.2f outside plausible zipfian range", skew)
	}
}

func TestDocumentFrequenciesVsTermFrequencies(t *testing.T) {
	c := small(t, 100)
	tf := c.TermFrequencies()
	df := c.DocumentFrequencies()
	for id := range tf {
		if df[id] > tf[id] {
			t.Fatalf("term %d: df %d > tf %d (df(k) <= f(k) must hold)", id, df[id], tf[id])
		}
		if df[id] > c.M() {
			t.Fatalf("term %d: df %d > M %d", id, df[id], c.M())
		}
		if (tf[id] > 0) != (df[id] > 0) {
			t.Fatalf("term %d: tf %d but df %d", id, tf[id], df[id])
		}
	}
}

func TestSplitRoundRobin(t *testing.T) {
	c := small(t, 103)
	parts := c.SplitRoundRobin(4)
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	seen := map[DocID]bool{}
	for _, p := range parts {
		total += p.M()
		for i := range p.Docs {
			if seen[p.Docs[i].ID] {
				t.Fatalf("doc %d in two partitions", p.Docs[i].ID)
			}
			seen[p.Docs[i].ID] = true
		}
	}
	if total != c.M() {
		t.Fatalf("partition sizes sum to %d, want %d", total, c.M())
	}
	// Balance within 1.
	for _, p := range parts {
		if d := p.M() - c.M()/4; d < 0 || d > 1 {
			t.Errorf("unbalanced partition size %d", p.M())
		}
	}
}

func TestVocabUniqueAndTokenizable(t *testing.T) {
	vocab := makeVocab(5000)
	seen := map[string]bool{}
	for i, w := range vocab {
		if seen[w] {
			t.Fatalf("duplicate vocab word %q at rank %d", w, i)
		}
		seen[w] = true
		if len(w) < 2 {
			t.Fatalf("vocab word %q too short for the tokenizer", w)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	c := small(t, 3)
	text := c.Text(&c.Docs[0])
	if len(text) == 0 {
		t.Fatal("empty text")
	}
}
