package corpus

import (
	"math"
	"testing"
)

func containsAll(c *Collection, q Query) int {
	hits := 0
	for i := range c.Docs {
		need := make(map[TermID]bool, len(q.Terms))
		for _, t := range q.Terms {
			need[t] = true
		}
		for _, t := range c.Docs[i].Terms {
			if need[t] {
				delete(need, t)
				if len(need) == 0 {
					break
				}
			}
		}
		if len(need) == 0 {
			hits++
		}
	}
	return hits
}

func TestGenerateQueriesStats(t *testing.T) {
	c := small(t, 300)
	p := DefaultQueryParams(100)
	p.MinHits = 0 // small collection; do not starve the sampler
	qs, err := GenerateQueries(c, p, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 100 {
		t.Fatalf("got %d queries, want 100", len(qs))
	}
	for _, q := range qs {
		if len(q.Terms) < 2 || len(q.Terms) > 8 {
			t.Fatalf("query size %d outside [2,8]", len(q.Terms))
		}
		seen := map[TermID]bool{}
		for _, id := range q.Terms {
			if seen[id] {
				t.Fatalf("duplicate term in query %v", q.Terms)
			}
			seen[id] = true
		}
	}
	avg := AvgQuerySize(qs)
	if math.Abs(avg-3.02) > 0.6 {
		t.Errorf("avg query size %.2f, paper reports 3.02", avg)
	}
}

func TestGenerateQueriesHitFilter(t *testing.T) {
	c := small(t, 200)
	p := DefaultQueryParams(30)
	p.MinHits = 1
	qs, err := GenerateQueries(c, p, 20, func(q Query) int { return containsAll(c, q) })
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if h := containsAll(c, q); h <= 1 {
			t.Errorf("query %v has %d hits, filter requires >1", q.Terms, h)
		}
	}
}

func TestGenerateQueriesTermsCoOccur(t *testing.T) {
	// Query terms are sampled from one document window, so at least one
	// document must contain them all.
	c := small(t, 200)
	p := DefaultQueryParams(50)
	p.MinHits = 0
	qs, err := GenerateQueries(c, p, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if containsAll(c, q) == 0 {
			t.Errorf("query %v matches no document", q.Terms)
		}
	}
}

func TestGenerateQueriesDeterministic(t *testing.T) {
	c := small(t, 100)
	p := DefaultQueryParams(20)
	p.MinHits = 0
	a, _ := GenerateQueries(c, p, 20, nil)
	b, _ := GenerateQueries(c, p, 20, nil)
	if len(a) != len(b) {
		t.Fatal("non-deterministic query count")
	}
	for i := range a {
		if len(a[i].Terms) != len(b[i].Terms) {
			t.Fatalf("query %d size differs", i)
		}
		for j := range a[i].Terms {
			if a[i].Terms[j] != b[i].Terms[j] {
				t.Fatalf("query %d term %d differs", i, j)
			}
		}
	}
}

func TestGenerateQueriesValidation(t *testing.T) {
	c := small(t, 10)
	if _, err := GenerateQueries(c, QueryParams{NumQueries: 0, MinTerms: 2, MaxTerms: 8}, 20, nil); err == nil {
		t.Error("NumQueries=0 accepted")
	}
	if _, err := GenerateQueries(c, QueryParams{NumQueries: 5, MinTerms: 3, MaxTerms: 2}, 20, nil); err == nil {
		t.Error("MinTerms > MaxTerms accepted")
	}
	empty := &Collection{}
	if _, err := GenerateQueries(empty, DefaultQueryParams(5), 20, nil); err == nil {
		t.Error("empty collection accepted")
	}
}

func TestGenerateQueriesImpossibleFilter(t *testing.T) {
	c := small(t, 30)
	p := DefaultQueryParams(10)
	p.MinHits = 1 << 30 // unsatisfiable
	if _, err := GenerateQueries(c, p, 20, func(Query) int { return 0 }); err == nil {
		t.Error("unsatisfiable hit filter did not error")
	}
}
