// Package ingest turns raw text documents into the collection model the
// engines index: it runs the full text pipeline (tokenizer, 250-word stop
// list, Porter stemmer) over each document, interns the resulting terms
// into a vocabulary, and applies the collection-adaptive very-frequent-
// term cutoff. It also parses free-text queries against the built
// vocabulary, so the whole paper pipeline — raw web-like text in, ranked
// answers out — is exercised end to end.
package ingest

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/textproc"
)

// Builder accumulates documents and produces a corpus.Collection.
type Builder struct {
	pipeline *textproc.Pipeline
	vocab    []string
	ids      map[string]corpus.TermID
	docs     []corpus.Document
}

// NewBuilder returns a Builder using the standard pipeline (stop words +
// Porter stemming). Pass options to customize the pipeline.
func NewBuilder(opts ...textproc.Option) *Builder {
	return &Builder{
		pipeline: textproc.NewPipeline(opts...),
		ids:      make(map[string]corpus.TermID),
	}
}

// Add ingests one raw text document and returns its assigned id. Empty
// documents (nothing survives the pipeline) are still assigned an id so
// external document numbering stays aligned.
func (b *Builder) Add(text string) corpus.DocID {
	terms := b.pipeline.Process(text)
	doc := corpus.Document{ID: corpus.DocID(len(b.docs))}
	doc.Terms = make([]corpus.TermID, len(terms))
	for i, t := range terms {
		doc.Terms[i] = b.intern(t)
	}
	b.docs = append(b.docs, doc)
	return doc.ID
}

func (b *Builder) intern(term string) corpus.TermID {
	if id, ok := b.ids[term]; ok {
		return id
	}
	id := corpus.TermID(len(b.vocab))
	b.vocab = append(b.vocab, term)
	b.ids[term] = id
	return id
}

// Build finalizes the collection. The Builder remains usable; later Adds
// extend the same vocabulary.
func (b *Builder) Build() *corpus.Collection {
	vocab := make([]string, len(b.vocab))
	copy(vocab, b.vocab)
	docs := make([]corpus.Document, len(b.docs))
	copy(docs, b.docs)
	return &corpus.Collection{Vocab: vocab, Docs: docs}
}

// NumDocs returns the number of ingested documents.
func (b *Builder) NumDocs() int { return len(b.docs) }

// VocabSize returns the current vocabulary size.
func (b *Builder) VocabSize() int { return len(b.vocab) }

// ParseQuery runs the same pipeline over free-text query input and maps
// the surviving tokens onto the built vocabulary. Unknown terms (never
// seen in any document) are returned separately: the caller typically
// reports them, as a web engine reports "no results for X".
func (b *Builder) ParseQuery(text string) (corpus.Query, []string) {
	var q corpus.Query
	var unknown []string
	for _, t := range b.pipeline.Process(text) {
		if id, ok := b.ids[t]; ok {
			q.Terms = append(q.Terms, id)
		} else {
			unknown = append(unknown, t)
		}
	}
	return q, unknown
}

// TermID resolves a pipeline-processed term string.
func (b *Builder) TermID(term string) (corpus.TermID, bool) {
	id, ok := b.ids[term]
	return id, ok
}

// Stats summarizes an ingest run.
type Stats struct {
	Docs       int
	Vocabulary int
	SampleSize int
	AvgDocLen  float64
}

// Stats computes summary statistics over the ingested documents.
func (b *Builder) Stats() Stats {
	total := 0
	for i := range b.docs {
		total += len(b.docs[i].Terms)
	}
	s := Stats{Docs: len(b.docs), Vocabulary: len(b.vocab), SampleSize: total}
	if len(b.docs) > 0 {
		s.AvgDocLen = float64(total) / float64(len(b.docs))
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("ingest{docs=%d vocab=%d occurrences=%d avglen=%.1f}",
		s.Docs, s.Vocabulary, s.SampleSize, s.AvgDocLen)
}
