package ingest

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/textproc"
)

func TestAddAndBuild(t *testing.T) {
	b := NewBuilder()
	id0 := b.Add("Peer-to-peer networks are scalable networks.")
	id1 := b.Add("Discriminative keys bound the posting lists.")
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d,%d", id0, id1)
	}
	col := b.Build()
	if col.M() != 2 {
		t.Fatalf("M = %d", col.M())
	}
	// "are", "the" are stop words and must not be in the vocabulary.
	for _, w := range col.Vocab {
		if w == "are" || w == "the" {
			t.Errorf("stop word %q survived ingestion", w)
		}
	}
	// Stemming: "networks" -> "network", appearing twice in doc 0.
	id, ok := b.TermID("network")
	if !ok {
		t.Fatal("stem 'network' not in vocabulary")
	}
	count := 0
	for _, tm := range col.Docs[0].Terms {
		if tm == id {
			count++
		}
	}
	if count != 2 {
		t.Errorf("'network' occurs %d times in doc 0, want 2", count)
	}
}

func TestVocabularyInterning(t *testing.T) {
	b := NewBuilder()
	b.Add("alpha beta alpha")
	b.Add("beta gamma")
	if b.VocabSize() != 3 {
		t.Fatalf("vocab size %d, want 3", b.VocabSize())
	}
	col := b.Build()
	// Same term in both docs must share one id.
	var betaIDs []corpus.TermID
	id, _ := b.TermID("beta")
	for i := range col.Docs {
		for _, tm := range col.Docs[i].Terms {
			if col.Vocab[tm] == "beta" {
				betaIDs = append(betaIDs, tm)
			}
		}
	}
	for _, bid := range betaIDs {
		if bid != id {
			t.Fatal("beta interned under two ids")
		}
	}
}

func TestEmptyDocumentKeepsNumbering(t *testing.T) {
	b := NewBuilder()
	b.Add("the and of") // all stop words
	id := b.Add("substance")
	if id != 1 {
		t.Fatalf("second doc id = %d, want 1", id)
	}
	col := b.Build()
	if len(col.Docs[0].Terms) != 0 {
		t.Errorf("stop-word-only doc has %d terms", len(col.Docs[0].Terms))
	}
}

func TestParseQuery(t *testing.T) {
	b := NewBuilder()
	b.Add("distributed retrieval engines index documents")
	q, unknown := b.ParseQuery("The distributed INDEXING of document")
	// "the" dropped; "distributed" matches; "indexing" stems to "index";
	// "document" matches the stem of "documents".
	if len(unknown) != 0 {
		t.Fatalf("unexpected unknown terms %v", unknown)
	}
	if len(q.Terms) != 3 {
		t.Fatalf("query has %d terms, want 3", len(q.Terms))
	}
	q2, unknown2 := b.ParseQuery("zebra retrieval")
	if len(q2.Terms) != 1 || len(unknown2) != 1 || unknown2[0] != "zebra" {
		t.Fatalf("q2=%v unknown=%v", q2.Terms, unknown2)
	}
}

func TestBuilderRemainsUsableAfterBuild(t *testing.T) {
	b := NewBuilder()
	b.Add("first document")
	colA := b.Build()
	b.Add("second document arrives")
	colB := b.Build()
	if colA.M() != 1 {
		t.Fatalf("earlier snapshot mutated: M=%d", colA.M())
	}
	if colB.M() != 2 {
		t.Fatalf("M after second add = %d", colB.M())
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder(textproc.WithoutStemming())
	b.Add("apple banana cherry")
	b.Add("date elderberry")
	s := b.Stats()
	if s.Docs != 2 || s.SampleSize != 5 || s.AvgDocLen != 2.5 {
		t.Fatalf("Stats = %+v", s)
	}
	if got := fmt.Sprint(s); got == "" {
		t.Error("empty String()")
	}
}

func TestBuildSnapshotIsolation(t *testing.T) {
	b := NewBuilder()
	b.Add("alpha beta")
	col := b.Build()
	vocabLen := len(col.Vocab)
	b.Add("gamma delta epsilon")
	if len(col.Vocab) != vocabLen {
		t.Fatal("snapshot vocabulary aliased builder state")
	}
	if !reflect.DeepEqual(col.Docs[0].Terms, b.Build().Docs[0].Terms) {
		t.Fatal("document terms diverged")
	}
}
