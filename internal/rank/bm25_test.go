package rank

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/postings"
)

func TestIDFMonotoneDecreasingInDF(t *testing.T) {
	s := CollectionStats{NumDocs: 10000, AvgDocLen: 225}
	prev := math.Inf(1)
	for _, df := range []int{1, 10, 100, 1000, 9999} {
		idf := s.IDF(df)
		if idf >= prev {
			t.Errorf("IDF not decreasing at df=%d", df)
		}
		if idf <= 0 {
			t.Errorf("IDF(%d) = %g, want positive", df, idf)
		}
		prev = idf
	}
}

func TestBM25ScoreProperties(t *testing.T) {
	p := DefaultBM25()
	s := CollectionStats{NumDocs: 100000, AvgDocLen: 225}
	// Increasing tf increases the score (saturating).
	if p.Score(s, 2, 10, 225) <= p.Score(s, 1, 10, 225) {
		t.Error("score not increasing in tf")
	}
	// Rare terms beat common terms.
	if p.Score(s, 1, 5, 225) <= p.Score(s, 1, 5000, 225) {
		t.Error("rare term does not outscore common term")
	}
	// Longer documents are penalized.
	if p.Score(s, 1, 10, 500) >= p.Score(s, 1, 10, 100) {
		t.Error("long document not penalized")
	}
	// Zero tf or df scores zero.
	if p.Score(s, 0, 10, 225) != 0 || p.Score(s, 1, 0, 225) != 0 {
		t.Error("zero tf/df must score 0")
	}
}

func TestBM25Saturation(t *testing.T) {
	// As tf grows the score approaches idf*(k1+1); it must never exceed it.
	p := DefaultBM25()
	s := CollectionStats{NumDocs: 1000, AvgDocLen: 100}
	limit := s.IDF(10) * (p.K1 + 1)
	prop := func(tf uint8) bool {
		return p.Score(s, int(tf), 10, 100) <= limit+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBM25NonNegative(t *testing.T) {
	// Even df close to NumDocs must not go negative (smoothed IDF).
	p := DefaultBM25()
	s := CollectionStats{NumDocs: 100, AvgDocLen: 50}
	if got := p.Score(s, 3, 100, 50); got < 0 {
		t.Errorf("score %g negative for df=N", got)
	}
}

func TestTopKByScore(t *testing.T) {
	l := postings.List{{Doc: 1, Score: 2}, {Doc: 2, Score: 9}, {Doc: 3, Score: 5}}
	res := TopKByScore(l, 2)
	if len(res) != 2 || res[0].Doc != 2 || res[1].Doc != 3 {
		t.Fatalf("TopKByScore = %v", res)
	}
}

func TestSortResultsDeterministicTies(t *testing.T) {
	res := []Result{{Doc: 9, Score: 1}, {Doc: 3, Score: 1}, {Doc: 7, Score: 2}}
	SortResults(res)
	if res[0].Doc != 7 || res[1].Doc != 3 || res[2].Doc != 9 {
		t.Fatalf("tie order wrong: %v", res)
	}
}

func TestOverlap(t *testing.T) {
	ref := []Result{{Doc: 1}, {Doc: 2}, {Doc: 3}, {Doc: 4}}
	cand := []Result{{Doc: 2}, {Doc: 4}, {Doc: 9}, {Doc: 10}}
	if got := Overlap(ref, cand, 4); got != 50 {
		t.Errorf("Overlap = %g, want 50", got)
	}
	if got := Overlap(ref, ref, 4); got != 100 {
		t.Errorf("self overlap = %g, want 100", got)
	}
	if got := Overlap(ref, nil, 4); got != 0 {
		t.Errorf("empty candidate overlap = %g, want 0", got)
	}
	if got := Overlap(nil, cand, 4); got != 0 {
		t.Errorf("empty reference overlap = %g, want 0", got)
	}
	// k truncation applies to both sides.
	if got := Overlap(ref, cand, 1); got != 0 {
		t.Errorf("Overlap@1 = %g, want 0 (ref top-1 is doc 1)", got)
	}
}
