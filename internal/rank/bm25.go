// Package rank implements relevance computation and evaluation metrics:
// the Okapi BM25 weighting scheme used by the centralized baseline (the
// paper compares against "a centralized engine with BM25 relevance
// computation scheme", their Terrier setup), score-ordered result lists,
// and the top-k overlap metric of Figure 7.
package rank

import (
	"math"
	"sort"

	"repro/internal/corpus"
	"repro/internal/postings"
)

// BM25Params are the Okapi BM25 free parameters.
type BM25Params struct {
	K1 float64
	B  float64
}

// DefaultBM25 is the standard parameterization (k1=1.2, b=0.75).
func DefaultBM25() BM25Params { return BM25Params{K1: 1.2, B: 0.75} }

// CollectionStats carries the global statistics BM25 needs.
type CollectionStats struct {
	NumDocs   int
	AvgDocLen float64
}

// IDF computes the BM25 inverse document frequency with the standard
// +0.5 smoothing, floored at a small positive value so very frequent terms
// never contribute negatively.
func (s CollectionStats) IDF(df int) float64 {
	if s.NumDocs == 0 {
		return 0
	}
	idf := math.Log(1 + (float64(s.NumDocs)-float64(df)+0.5)/(float64(df)+0.5))
	if idf < 1e-9 {
		return 1e-9
	}
	return idf
}

// Score computes the BM25 contribution of one term occurrence profile:
// term frequency tf within a document of length docLen, document frequency
// df in the collection.
func (p BM25Params) Score(s CollectionStats, tf, df, docLen int) float64 {
	if tf == 0 || df == 0 {
		return 0
	}
	norm := p.K1 * (1 - p.B + p.B*float64(docLen)/math.Max(s.AvgDocLen, 1))
	return s.IDF(df) * float64(tf) * (p.K1 + 1) / (float64(tf) + norm)
}

// Result is a scored document in a ranked answer.
type Result struct {
	Doc   corpus.DocID
	Score float64
}

// TopKByScore converts a posting list into the k best results, ordered by
// descending score with doc-id tie-break (deterministic rankings make the
// Figure 7 overlap measurements reproducible).
func TopKByScore(l postings.List, k int) []Result {
	res := make([]Result, len(l))
	for i, p := range l {
		res[i] = Result{Doc: p.Doc, Score: float64(p.Score)}
	}
	SortResults(res)
	if k < len(res) {
		res = res[:k]
	}
	return res
}

// SortResults orders results by descending score, ascending doc id.
func SortResults(res []Result) {
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].Doc < res[j].Doc
	})
}

// Overlap computes the Figure 7 metric: the fraction (in percent) of the
// reference top-k that also appears in the candidate top-k. Both lists are
// truncated to k before comparison; the denominator is the reference size
// (so a short reference list is not penalized).
func Overlap(reference, candidate []Result, k int) float64 {
	if k < len(reference) {
		reference = reference[:k]
	}
	if k < len(candidate) {
		candidate = candidate[:k]
	}
	if len(reference) == 0 {
		return 0
	}
	in := make(map[corpus.DocID]struct{}, len(candidate))
	for _, r := range candidate {
		in[r.Doc] = struct{}{}
	}
	hits := 0
	for _, r := range reference {
		if _, ok := in[r.Doc]; ok {
			hits++
		}
	}
	return 100 * float64(hits) / float64(len(reference))
}
