package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is a Transport over real TCP sockets using length-prefixed frames:
// a 1-byte status (responses only) and a 4-byte big-endian payload length
// followed by the payload. One connection per Call keeps the
// implementation simple and is adequate for the example workloads; the
// experiments use InProc.
type TCP struct {
	counters
	mu        sync.Mutex
	listeners []net.Listener
	closed    bool
	wg        sync.WaitGroup
}

// NewTCP returns a TCP transport.
func NewTCP() *TCP { return &TCP{} }

// MaxFrameSize bounds a single request or response payload (64 MiB), a
// guard against malformed length prefixes.
const MaxFrameSize = 64 << 20

const (
	statusOK  = 0
	statusErr = 1
)

// Listen implements Transport. Pass "127.0.0.1:0" to bind an ephemeral
// port; the resolved address is returned.
func (t *TCP) Listen(addr string, h Handler) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return "", ErrClosed
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.listeners = append(t.listeners, ln)
	t.wg.Add(1)
	go t.serve(ln, h)
	return ln.Addr().String(), nil
}

func (t *TCP) serve(ln net.Listener, h Handler) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			t.handleConn(conn, h)
		}()
	}
}

func (t *TCP) handleConn(conn net.Conn, h Handler) {
	for {
		req, err := readFrame(conn)
		if err != nil {
			return // io.EOF on clean close
		}
		resp, herr := h(req)
		status := byte(statusOK)
		if herr != nil {
			status = statusErr
			resp = []byte(herr.Error())
		}
		if err := writeFrame(conn, status, resp); err != nil {
			return
		}
	}
}

// Call implements Transport.
func (t *TCP) Call(addr string, req []byte) ([]byte, error) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := writeFrame(conn, statusOK, req); err != nil {
		return nil, err
	}
	status, resp, err := readResponse(conn)
	if err != nil {
		return nil, err
	}
	if status == statusErr {
		return nil, fmt.Errorf("transport: remote error: %s", resp)
	}
	t.account(len(req), len(resp))
	return resp, nil
}

// Close implements Transport. It stops all listeners and waits for in-
// flight connection goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	t.closed = true
	for _, ln := range t.listeners {
		ln.Close()
	}
	t.listeners = nil
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// FrameOverhead is the per-message framing cost in bytes (status byte on
// the response + two 4-byte length prefixes), reported so byte accounting
// can separate protocol payload from wire overhead.
const FrameOverhead = 1 + 4 + 4

func writeFrame(w io.Writer, status byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	hdr := make([]byte, 5)
	hdr[0] = status
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads a request frame (status byte ignored on requests).
func readFrame(r io.Reader) ([]byte, error) {
	_, payload, err := readRaw(r)
	return payload, err
}

func readResponse(r io.Reader) (byte, []byte, error) {
	return readRaw(r)
}

func readRaw(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return 0, nil, errors.New("transport: oversized frame")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}
