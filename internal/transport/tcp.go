package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP is a Transport over real TCP sockets using length-prefixed frames:
// a 1-byte status (responses only) and a 4-byte big-endian payload length
// followed by the payload. Connections are pooled per remote address with
// idle reuse, so a multi-process deployment pays the dial cost once per
// (caller, owner) pair instead of once per RPC; concurrent callers to the
// same address each check out their own connection. Stats accounting
// matches InProc exactly (payload bytes both directions, one message per
// Call), keeping the paper's traffic analysis comparable across fabrics.
type TCP struct {
	counters
	cfg TCPConfig

	mu        sync.Mutex
	listeners []net.Listener
	idle      map[string][]net.Conn // per-address idle connections
	inflight  map[net.Conn]struct{} // client-side connections checked out by a Call
	accepted  map[net.Conn]struct{} // server-side connections in flight
	closed    bool
	wg        sync.WaitGroup

	dials       atomic.Uint64
	reuses      atomic.Uint64
	staleRetry  atomic.Uint64
	idleDropped atomic.Uint64

	// metrics is nil until Instrument; hooks load it atomically so the
	// hot path costs one pointer load when telemetry is off.
	metrics atomic.Pointer[tcpMetrics]
}

// TCPConfig tunes the pooled transport. The zero value selects the
// defaults below.
type TCPConfig struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds one round trip — request write through response
	// read (default 30s; negative disables the deadline).
	CallTimeout time.Duration
	// MaxIdlePerHost bounds the idle connections kept per remote address
	// (default 8; negative disables pooling entirely).
	MaxIdlePerHost int
}

const (
	defaultDialTimeout    = 5 * time.Second
	defaultCallTimeout    = 30 * time.Second
	defaultMaxIdlePerHost = 8
)

func (c TCPConfig) withDefaults() TCPConfig {
	if c.DialTimeout == 0 {
		c.DialTimeout = defaultDialTimeout
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = defaultCallTimeout
	}
	if c.MaxIdlePerHost == 0 {
		c.MaxIdlePerHost = defaultMaxIdlePerHost
	}
	return c
}

// NewTCP returns a pooled TCP transport with default timeouts.
func NewTCP() *TCP { return NewTCPConfig(TCPConfig{}) }

// NewTCPConfig returns a pooled TCP transport with the given limits.
func NewTCPConfig(cfg TCPConfig) *TCP {
	return &TCP{
		cfg:      cfg.withDefaults(),
		idle:     make(map[string][]net.Conn),
		inflight: make(map[net.Conn]struct{}),
		accepted: make(map[net.Conn]struct{}),
	}
}

// PoolStats reports connection-pool behavior: how many TCP connections
// were dialed, how many calls reused an idle pooled connection, how many
// calls transparently re-dialed after a stale pooled connection failed,
// and how many idle connections were dropped because the per-host idle
// limit was reached.
type PoolStats struct {
	Dials        uint64
	Reuses       uint64
	StaleRetries uint64
	IdleDropped  uint64
}

// PoolStats returns cumulative pool counters.
func (t *TCP) PoolStats() PoolStats {
	return PoolStats{
		Dials:        t.dials.Load(),
		Reuses:       t.reuses.Load(),
		StaleRetries: t.staleRetry.Load(),
		IdleDropped:  t.idleDropped.Load(),
	}
}

// MaxFrameSize bounds a single request or response payload (64 MiB), a
// guard against malformed length prefixes.
const MaxFrameSize = 64 << 20

const (
	statusOK  = 0
	statusErr = 1
)

// Listen implements Transport. Pass "127.0.0.1:0" to bind an ephemeral
// port; the resolved address is returned.
func (t *TCP) Listen(addr string, h Handler) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return "", ErrClosed
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.listeners = append(t.listeners, ln)
	t.wg.Add(1)
	go t.serve(ln, h)
	return ln.Addr().String(), nil
}

func (t *TCP) serve(ln net.Listener, h Handler) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer func() {
				conn.Close()
				t.mu.Lock()
				delete(t.accepted, conn)
				t.mu.Unlock()
			}()
			t.handleConn(conn, h)
		}()
	}
}

// handleConn serves one client connection until it closes or a frame
// fails. Handler errors are reported to the caller in an error frame and
// the connection stays usable (the client keeps it pooled); transport
// errors close the connection via the deferred Close in serve — no path
// leaks the conn.
func (t *TCP) handleConn(conn net.Conn, h Handler) {
	for {
		req, err := readFrame(conn)
		if err != nil {
			return // io.EOF on clean close
		}
		resp, herr := h(req)
		status := byte(statusOK)
		if herr != nil {
			status = statusErr
			resp = []byte(herr.Error())
		}
		if err := writeFrame(conn, status, resp); err != nil {
			return
		}
	}
}

// getConn checks out a pooled idle connection for addr or dials a fresh
// one, registering it as in flight either way so Close can reach it
// (an untracked checked-out conn would survive Close and block its
// caller until CallTimeout). reused reports which source the connection
// came from.
func (t *TCP) getConn(addr string) (conn net.Conn, reused bool, err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, ErrClosed
	}
	if free := t.idle[addr]; len(free) > 0 {
		conn = free[len(free)-1]
		t.idle[addr] = free[:len(free)-1]
		t.inflight[conn] = struct{}{}
		t.mu.Unlock()
		t.reuses.Add(1)
		t.observeReuse()
		return conn, true, nil
	}
	t.mu.Unlock()
	dialStart := time.Now()
	conn, err = net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, false, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	t.observeDial(time.Since(dialStart))
	t.mu.Lock()
	if t.closed {
		// Close ran between the check above and the dial completing; the
		// conn would be invisible to it, so shut it down here.
		t.mu.Unlock()
		conn.Close()
		return nil, false, ErrClosed
	}
	t.inflight[conn] = struct{}{}
	t.mu.Unlock()
	t.dials.Add(1)
	return conn, false, nil
}

// release drops a connection from the in-flight set once its Call is
// done with it (pooled, handed back, or closed on error).
func (t *TCP) release(conn net.Conn) {
	t.mu.Lock()
	delete(t.inflight, conn)
	t.mu.Unlock()
}

// isTimeout reports whether err is a network timeout (deadline expiry).
func isTimeout(err error) bool {
	var nerr net.Error
	return errors.As(err, &nerr) && nerr.Timeout()
}

// dropIdle closes every idle connection pooled for addr.
func (t *TCP) dropIdle(addr string) {
	t.mu.Lock()
	conns := t.idle[addr]
	delete(t.idle, addr)
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// putConn returns a healthy connection to the idle pool (clearing its
// in-flight registration in the same critical section), or closes it
// when the pool is full, pooling is disabled, or the transport closed.
func (t *TCP) putConn(addr string, conn net.Conn) {
	if t.cfg.MaxIdlePerHost < 0 {
		t.release(conn)
		conn.Close()
		return
	}
	t.mu.Lock()
	delete(t.inflight, conn)
	if t.closed || len(t.idle[addr]) >= t.cfg.MaxIdlePerHost {
		t.mu.Unlock()
		t.idleDropped.Add(1)
		t.observeIdleDropped()
		conn.Close()
		return
	}
	t.idle[addr] = append(t.idle[addr], conn)
	t.mu.Unlock()
}

// errRemote marks a handler-side failure: the remote processed the frame
// and answered with an error payload, so the connection itself is fine.
type errRemote struct{ msg string }

func (e errRemote) Error() string { return "transport: remote error: " + e.msg }

// roundTrip performs one framed request/response on conn under the call
// deadline. A returned error of type errRemote means the connection is
// still healthy; any other error means the connection must be discarded.
func (t *TCP) roundTrip(conn net.Conn, req []byte) ([]byte, error) {
	if t.cfg.CallTimeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(t.cfg.CallTimeout)); err != nil {
			return nil, err
		}
	}
	if err := writeFrame(conn, statusOK, req); err != nil {
		return nil, err
	}
	status, resp, err := readResponse(conn)
	if err != nil {
		return nil, err
	}
	if t.cfg.CallTimeout > 0 {
		if err := conn.SetDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	if status == statusErr {
		return nil, errRemote{msg: string(resp)}
	}
	return resp, nil
}

// Call implements Transport. A call that fails on a REUSED pooled
// connection before any fresh dial is retried exactly once on a new
// connection: the overwhelmingly common cause is a stale pooled socket
// whose server restarted or timed the connection out, which surfaces as
// an immediate write/read failure. Calls that fail on a freshly dialed
// connection are reported to the caller (CallRetry handles transient
// policies above this layer).
func (t *TCP) Call(addr string, req []byte) ([]byte, error) {
	callStart := time.Now()
	for attempt := 0; ; attempt++ {
		conn, reused, err := t.getConn(addr)
		if err != nil {
			t.observeCall(0, err)
			return nil, err
		}
		resp, err := t.roundTrip(conn, req)
		if err == nil {
			t.putConn(addr, conn)
			t.account(len(req), len(resp))
			t.observeCall(time.Since(callStart), nil)
			return resp, nil
		}
		if _, remote := err.(errRemote); remote {
			// The remote rejected the request; the connection is fine.
			// Handler errors are answers, not transport failures, so the
			// round trip still counts as a completed call.
			t.putConn(addr, conn)
			t.observeCall(time.Since(callStart), nil)
			return nil, err
		}
		t.release(conn)
		conn.Close()
		if reused && attempt == 0 && !isTimeout(err) {
			// A reused conn failing with RST/EOF is almost always a
			// stale pooled socket — its server restarted or timed the
			// connection out before this request, so re-sending is safe.
			// Timeouts are excluded: the server may still be working on
			// the request, and re-sending would duplicate RPCs that are
			// not idempotent (index inserts, repair imports). A residual
			// at-most-once window remains — a LIVE server whose
			// connection resets after processing the request but before
			// the response is read would see a duplicate — closing it
			// needs request-level idempotency tokens; on the localhost
			// clusters this transport targets, live-conn resets do not
			// occur spontaneously, so the trade is accepted (Go's HTTP
			// keep-alive transport makes the same one). Every other idle
			// connection to this address predates the failure and is
			// equally stale, so drop them all and dial fresh rather than
			// popping the next dead one.
			t.dropIdle(addr)
			t.staleRetry.Add(1)
			t.observeStaleRetry()
			continue
		}
		t.observeCall(0, err)
		return nil, fmt.Errorf("transport: call %s: %w", addr, err)
	}
}

// Close implements Transport. It stops all listeners, closes every
// pooled idle connection AND every client connection currently checked
// out by an in-flight Call — a call blocked on a stalled or dead server
// fails immediately with a closed-connection error instead of holding
// its fd and the caller hostage until CallTimeout — then waits for
// in-flight server goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	t.closed = true
	for _, ln := range t.listeners {
		ln.Close()
	}
	t.listeners = nil
	for addr, conns := range t.idle {
		for _, c := range conns {
			c.Close()
		}
		delete(t.idle, addr)
	}
	for c := range t.inflight {
		c.Close()
	}
	// Server-side connections may sit in readFrame waiting for a pooled
	// client's next request; closing them unblocks the handler goroutines
	// so wg.Wait cannot hang on a client that keeps its pool warm.
	for c := range t.accepted {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// IdleConns reports the number of pooled idle connections (all
// addresses), for tests and diagnostics.
func (t *TCP) IdleConns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, conns := range t.idle {
		n += len(conns)
	}
	return n
}

// FrameOverhead is the per-message framing cost in bytes (status byte on
// the response + two 4-byte length prefixes), reported so byte accounting
// can separate protocol payload from wire overhead.
const FrameOverhead = 1 + 4 + 4

func writeFrame(w io.Writer, status byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	hdr := make([]byte, 5)
	hdr[0] = status
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads a request frame (status byte ignored on requests).
func readFrame(r io.Reader) ([]byte, error) {
	_, payload, err := readRaw(r)
	return payload, err
}

func readResponse(r io.Reader) (byte, []byte, error) {
	return readRaw(r)
}

func readRaw(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return 0, nil, errors.New("transport: oversized frame")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}
