package transport

import (
	"time"

	"repro/internal/telemetry"
)

// Registry series the TCP transport emits.
const (
	metricDials         = "hdk_transport_dials_total"
	metricPoolReuses    = "hdk_transport_pool_reuses_total"
	metricStaleRetries  = "hdk_transport_stale_retries_total"
	metricIdleDropped   = "hdk_transport_idle_dropped_total"
	metricCallErrors    = "hdk_transport_call_errors_total"
	metricDialNanos     = "hdk_transport_dial_nanoseconds"
	metricCallNanos     = "hdk_transport_call_nanoseconds"
	metricInflightCalls = "hdk_transport_inflight_calls"
	metricIdleConns     = "hdk_transport_idle_conns"
)

// tcpMetrics is the registry view of the pool counters plus the two
// latency histograms only the transport can measure. The struct is
// swapped in atomically by Instrument so an uninstrumented transport
// (every in-process test, the fat client) pays one nil pointer load
// per hook.
type tcpMetrics struct {
	dials        *telemetry.Counter
	reuses       *telemetry.Counter
	staleRetries *telemetry.Counter
	idleDropped  *telemetry.Counter
	callErrors   *telemetry.Counter
	dialLat      *telemetry.Histogram
	callLat      *telemetry.Histogram
}

// Instrument registers the transport's metrics on reg and starts
// recording into them: dial and end-to-end call latency histograms,
// pool behavior counters (mirroring PoolStats), and callback gauges for
// the live in-flight call and idle connection counts. Safe to call
// while the transport is serving; calls observed before Instrument are
// simply not recorded.
func (t *TCP) Instrument(reg *telemetry.Registry) {
	m := &tcpMetrics{
		dials:        reg.Counter(metricDials),
		reuses:       reg.Counter(metricPoolReuses),
		staleRetries: reg.Counter(metricStaleRetries),
		idleDropped:  reg.Counter(metricIdleDropped),
		callErrors:   reg.Counter(metricCallErrors),
		dialLat:      reg.Histogram(metricDialNanos),
		callLat:      reg.Histogram(metricCallNanos),
	}
	reg.GaugeFunc(metricInflightCalls, func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return float64(len(t.inflight))
	})
	reg.GaugeFunc(metricIdleConns, func() float64 {
		return float64(t.IdleConns())
	})
	t.metrics.Store(m)
}

// observeDial records one fresh dial and its latency.
func (t *TCP) observeDial(d time.Duration) {
	if m := t.metrics.Load(); m != nil {
		m.dials.Inc()
		m.dialLat.ObserveDuration(d)
	}
}

// observeCall records one completed Call: its end-to-end latency on
// success (pool checkout and any stale-retry re-dial included — the
// latency a caller actually experienced), or the error counter.
func (t *TCP) observeCall(d time.Duration, err error) {
	m := t.metrics.Load()
	if m == nil {
		return
	}
	if err != nil {
		m.callErrors.Inc()
		return
	}
	m.callLat.ObserveDuration(d)
}

func (t *TCP) observeReuse() {
	if m := t.metrics.Load(); m != nil {
		m.reuses.Inc()
	}
}

func (t *TCP) observeStaleRetry() {
	if m := t.metrics.Load(); m != nil {
		m.staleRetries.Inc()
	}
}

func (t *TCP) observeIdleDropped() {
	if m := t.metrics.Load(); m != nil {
		m.idleDropped.Inc()
	}
}
