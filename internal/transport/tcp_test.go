package transport

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer binds an echo handler on an ephemeral port of ts and returns
// the bound address.
func echoServer(t *testing.T, ts *TCP) string {
	t.Helper()
	addr, err := ts.Listen("127.0.0.1:0", func(req []byte) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestTCPPoolReuseSequential(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := echoServer(t, tr)

	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := tr.Call(addr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ps := tr.PoolStats()
	if ps.Dials != 1 {
		t.Fatalf("Dials = %d, want 1 (sequential calls must reuse one connection)", ps.Dials)
	}
	if ps.Reuses != calls-1 {
		t.Fatalf("Reuses = %d, want %d", ps.Reuses, calls-1)
	}
	if got := tr.IdleConns(); got != 1 {
		t.Fatalf("IdleConns = %d, want 1", got)
	}
}

func TestTCPPoolConcurrent(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		calls   int
		maxIdle int
	}{
		{"2x50", 2, 50, 8},
		{"8x100", 8, 100, 8},
		{"16x25-small-pool", 16, 25, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTCPConfig(TCPConfig{MaxIdlePerHost: tc.maxIdle})
			defer tr.Close()
			addr := echoServer(t, tr)

			var wg sync.WaitGroup
			for w := 0; w < tc.workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < tc.calls; i++ {
						req := []byte(fmt.Sprintf("w%d-%d", w, i))
						resp, err := tr.Call(addr, req)
						if err != nil {
							t.Error(err)
							return
						}
						if want := "echo:" + string(req); string(resp) != want {
							t.Errorf("resp = %q, want %q", resp, want)
							return
						}
					}
				}(w)
			}
			wg.Wait()

			total := uint64(tc.workers * tc.calls)
			if got := tr.Stats().Messages; got != total {
				t.Fatalf("Messages = %d, want %d", got, total)
			}
			ps := tr.PoolStats()
			if ps.Dials > uint64(tc.workers) {
				t.Fatalf("Dials = %d, want <= %d (one per concurrent worker at most)", ps.Dials, tc.workers)
			}
			if ps.Dials+ps.Reuses < total {
				t.Fatalf("Dials+Reuses = %d, want >= %d", ps.Dials+ps.Reuses, total)
			}
			if got := tr.IdleConns(); got > tc.maxIdle {
				t.Fatalf("IdleConns = %d, want <= MaxIdlePerHost %d", got, tc.maxIdle)
			}
		})
	}
}

func TestTCPHandlerErrorKeepsConnectionPooled(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr, err := tr.Listen("127.0.0.1:0", func(req []byte) ([]byte, error) {
		if bytes.HasPrefix(req, []byte("bad")) {
			return nil, errors.New("rejected")
		}
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// ok, error, ok, error, ok — all over one connection.
	for i, req := range []string{"a", "bad1", "b", "bad2", "c"} {
		resp, err := tr.Call(addr, []byte(req))
		if strings.HasPrefix(req, "bad") {
			if err == nil || !strings.Contains(err.Error(), "rejected") {
				t.Fatalf("call %d: err = %v, want remote rejection", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp) != req {
			t.Fatalf("call %d: resp = %q, want %q", i, resp, req)
		}
	}
	if ps := tr.PoolStats(); ps.Dials != 1 {
		t.Fatalf("Dials = %d, want 1 (handler errors must not burn the connection)", ps.Dials)
	}
	// Failed calls are not accounted, matching InProc.
	if got := tr.Stats().Messages; got != 3 {
		t.Fatalf("Messages = %d, want 3", got)
	}
}

func TestTCPCallTimeout(t *testing.T) {
	tr := NewTCPConfig(TCPConfig{CallTimeout: 80 * time.Millisecond})
	defer tr.Close()
	block := make(chan struct{})
	addr, err := tr.Listen("127.0.0.1:0", func(req []byte) ([]byte, error) {
		if len(req) > 0 && req[0] == 's' {
			<-block
		}
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Warm the pool so the slow call below runs on a REUSED connection:
	// a timeout on a reused conn must NOT be retried (the server may
	// still be processing; a re-send would duplicate the RPC).
	if _, err := tr.Call(addr, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := tr.Call(addr, []byte("slow")); err == nil {
		t.Fatal("call against stalled handler succeeded, want deadline error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", elapsed)
	}
	if ps := tr.PoolStats(); ps.StaleRetries != 0 {
		t.Fatalf("StaleRetries = %d, want 0 (timeouts must never re-send)", ps.StaleRetries)
	}
	close(block)
	// The timed-out connection must not be reused; a fresh call succeeds.
	if _, err := tr.Call(addr, []byte("fast")); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	if ps := tr.PoolStats(); ps.Dials < 2 {
		t.Fatalf("Dials = %d, want >= 2 (timed-out conn must be discarded)", ps.Dials)
	}
}

func TestTCPServerRestartMidPool(t *testing.T) {
	client := NewTCP()
	defer client.Close()

	server := NewTCP()
	release := make(chan struct{})
	addr, err := server.Listen("127.0.0.1:0", func(req []byte) ([]byte, error) {
		<-release // hold every in-flight call so each caller keeps its own conn
		return []byte("gen1"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm SEVERAL idle connections (the blocked concurrent callers each
	// dial their own): after the restart every one of them is stale, and
	// a single call must still succeed — the retry has to dial fresh
	// rather than pop the next stale pooled conn.
	const warmConns = 4
	var warm sync.WaitGroup
	for i := 0; i < warmConns; i++ {
		warm.Add(1)
		go func() {
			defer warm.Done()
			if _, err := client.Call(addr, []byte("x")); err != nil {
				t.Error(err)
			}
		}()
	}
	for client.PoolStats().Dials < warmConns { // all four callers are conn-holding
		time.Sleep(time.Millisecond)
	}
	close(release)
	warm.Wait()
	if got := client.IdleConns(); got != warmConns {
		t.Fatalf("IdleConns = %d, want %d", got, warmConns)
	}
	server.Close()

	// Restart a server on the SAME address; the pooled connection is now
	// stale and the call must transparently re-dial.
	server2 := NewTCP()
	defer server2.Close()
	if _, err := server2.Listen(addr, func(req []byte) ([]byte, error) {
		return []byte("gen2"), nil
	}); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	resp, err := client.Call(addr, []byte("x"))
	if err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
	if string(resp) != "gen2" {
		t.Fatalf("resp = %q, want gen2", resp)
	}
	if ps := client.PoolStats(); ps.StaleRetries == 0 {
		t.Fatalf("StaleRetries = 0, want >= 1 after restart (stats: %+v)", ps)
	}
}

// TestTCPStatsParityWithInProc runs the same call sequence over both
// transports and requires identical Stats: the paper's byte accounting
// must not depend on the fabric.
func TestTCPStatsParityWithInProc(t *testing.T) {
	handler := func(req []byte) ([]byte, error) {
		if len(req) == 0 {
			return nil, errors.New("empty")
		}
		return append(req, req...), nil
	}
	reqs := [][]byte{[]byte("a"), []byte("longer-payload"), nil, []byte("x"), {}, []byte("final")}

	runSeq := func(tr Transport, addr string) Stats {
		for _, r := range reqs {
			tr.Call(addr, r) // errors (empty payloads) intentionally included
		}
		return tr.Stats()
	}

	inproc := NewInProc()
	defer inproc.Close()
	if _, err := inproc.Listen("n", handler); err != nil {
		t.Fatal(err)
	}
	ipStats := runSeq(inproc, "n")

	tcp := NewTCP()
	defer tcp.Close()
	addr, err := tcp.Listen("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	tcpStats := runSeq(tcp, addr)

	if ipStats != tcpStats {
		t.Fatalf("stats diverge: inproc %+v, tcp %+v", ipStats, tcpStats)
	}
}

func TestTCPCloseDrainsPool(t *testing.T) {
	tr := NewTCP()
	addr := echoServer(t, tr)
	if _, err := tr.Call(addr, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if tr.IdleConns() != 1 {
		t.Fatalf("IdleConns = %d, want 1", tr.IdleConns())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.IdleConns() != 0 {
		t.Fatalf("IdleConns after Close = %d, want 0", tr.IdleConns())
	}
	if _, err := tr.Call(addr, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after Close: %v, want ErrClosed", err)
	}
}

func TestTCPMaxIdlePerHost(t *testing.T) {
	tr := NewTCPConfig(TCPConfig{MaxIdlePerHost: 1})
	defer tr.Close()
	addr := echoServer(t, tr)

	// Hold several connections open concurrently, then release them all:
	// only one may stay idle.
	const parallel = 4
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			if _, err := tr.Call(addr, []byte("p")); err != nil {
				t.Error(err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := tr.IdleConns(); got > 1 {
		t.Fatalf("IdleConns = %d, want <= 1", got)
	}
}

// TestTCPCloseUnblocksInFlightCall is the shutdown-leak regression: a
// Call blocked on a stalled server holds a client connection that Close
// used to be unable to see (it only drained idle and accepted conns), so
// the fd leaked and the caller stayed blocked until CallTimeout — 30s by
// default. Close must close checked-out connections too, failing the
// call immediately.
func TestTCPCloseUnblocksInFlightCall(t *testing.T) {
	// Server on its own transport: a handler that stalls until released.
	srv := NewTCP()
	defer srv.Close()
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	addr, err := srv.Listen("127.0.0.1:0", func(req []byte) ([]byte, error) {
		once.Do(func() { close(entered) })
		<-release
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)

	// Client with a CallTimeout far beyond the test: if Close does not
	// unblock the call, the test times out instead of sneaking past via
	// the deadline.
	cli := NewTCPConfig(TCPConfig{CallTimeout: 10 * time.Minute})
	callDone := make(chan error, 1)
	go func() {
		_, err := cli.Call(addr, []byte("stall"))
		callDone <- err
	}()
	<-entered // the request reached the handler; the client conn is in flight

	closeDone := make(chan struct{})
	go func() {
		cli.Close()
		close(closeDone)
	}()
	select {
	case err := <-callDone:
		if err == nil {
			t.Fatal("in-flight call returned success after transport Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call still blocked 5s after Close — in-flight client conn leaked")
	}
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	// Everything is deregistered: no idle conns, later calls fail fast.
	if n := cli.IdleConns(); n != 0 {
		t.Fatalf("%d idle conns after Close", n)
	}
	if _, err := cli.Call(addr, []byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after Close: %v, want ErrClosed", err)
	}
}

// TestTCPInflightTrackingBalanced verifies the in-flight set empties out
// on every Call path (success, handler error, transport error), so Close
// never closes a connection some earlier call abandoned in the map.
func TestTCPInflightTrackingBalanced(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0", func(req []byte) ([]byte, error) {
		if string(req) == "fail" {
			return nil, errors.New("handler says no")
		}
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	cli := NewTCP()
	defer cli.Close()
	if _, err := cli.Call(addr, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(addr, []byte("fail")); err == nil {
		t.Fatal("handler error not surfaced")
	}
	srvAddr2 := echoServer(t, srv)
	if _, err := cli.Call(srvAddr2, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	cli.mu.Lock()
	n := len(cli.inflight)
	cli.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d connections stuck in the in-flight set", n)
	}
}
