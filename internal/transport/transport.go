// Package transport provides the messaging substrate for the P2P overlay:
// a request/response abstraction with two implementations — a
// deterministic in-process network with exact byte/message accounting
// (used by the experiments, which measure traffic rather than wall-clock
// throughput) and a real TCP transport with length-prefixed frames (used
// by the tcpcluster example to demonstrate the same engine code speaking a
// real network).
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Handler processes one request and returns the response payload.
type Handler func(req []byte) ([]byte, error)

// Transport is a point-to-point request/response fabric.
type Transport interface {
	// Listen registers a handler for the given address and returns the
	// bound address (meaningful for TCP where port 0 resolves at bind).
	Listen(addr string, h Handler) (string, error)
	// Call sends a request to addr and waits for the response.
	Call(addr string, req []byte) ([]byte, error)
	// Close releases all listeners.
	Close() error
	// Stats returns cumulative traffic counters.
	Stats() Stats
}

// Stats are cumulative traffic counters. Bytes counts payload bytes in
// both directions (requests + responses), the quantity the paper's
// analysis tracks; framing overhead is reported separately by the TCP
// transport via FrameOverhead.
type Stats struct {
	Messages uint64 // number of Call invocations
	Bytes    uint64 // request + response payload bytes
}

// counters is an embeddable atomic stats block.
type counters struct {
	messages atomic.Uint64
	bytes    atomic.Uint64
}

func (c *counters) account(reqLen, respLen int) {
	c.messages.Add(1)
	c.bytes.Add(uint64(reqLen + respLen))
}

func (c *counters) Stats() Stats {
	return Stats{Messages: c.messages.Load(), Bytes: c.bytes.Load()}
}

// ErrUnknownAddress is returned by Call for an unregistered address.
var ErrUnknownAddress = errors.New("transport: unknown address")

// CallRetry performs a call, re-sending up to attempts times when the
// failure is a transient network drop (ErrTransient). Handler errors are
// returned immediately: the remote rejected the request, so re-sending
// cannot help.
func CallRetry(t Transport, addr string, req []byte, attempts int) ([]byte, error) {
	var lastErr error
	for i := 0; i <= attempts; i++ {
		resp, err := t.Call(addr, req)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, ErrTransient) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: %d retries exhausted: %w", attempts, lastErr)
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("transport: closed")

// InProc is an in-process Transport: calls are direct function
// invocations, so experiments measure exactly the traffic the protocol
// generates with zero noise. Safe for concurrent use.
type InProc struct {
	counters
	mu       sync.RWMutex
	handlers map[string]Handler
	closed   bool
}

// NewInProc returns an empty in-process fabric.
func NewInProc() *InProc {
	return &InProc{handlers: make(map[string]Handler)}
}

// Listen implements Transport.
func (t *InProc) Listen(addr string, h Handler) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return "", ErrClosed
	}
	if _, dup := t.handlers[addr]; dup {
		return "", fmt.Errorf("transport: address %q already bound", addr)
	}
	t.handlers[addr] = h
	return addr, nil
}

// Call implements Transport.
func (t *InProc) Call(addr string, req []byte) ([]byte, error) {
	t.mu.RLock()
	h, ok := t.handlers[addr]
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAddress, addr)
	}
	resp, err := h(req)
	if err != nil {
		return nil, err
	}
	t.account(len(req), len(resp))
	return resp, nil
}

// Close implements Transport.
func (t *InProc) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	t.handlers = map[string]Handler{}
	return nil
}
