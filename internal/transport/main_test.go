package transport

import (
	"os"
	"testing"

	"repro/internal/lint/leakcheck"
)

// Every transport test must wind down its dials, pools and listeners:
// a goroutine that outlives the run is a missed Close on a path the
// test just exercised.
func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
