package cluster

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// Thin-client side of the streamed build: Ingest pipes one daemon's
// corpus shard through the chunked hdk.ingest session (never holding
// more than an offer window of chunks in memory), and BuildRemote kicks
// off the daemon-coordinated hdk.build and polls its progress. Together
// they replace the fat-client path — the client that used to hold the
// whole collection and run every round itself now holds one document at
// a time and two RPC loops.

// ingestOfferWindow is how many chunks the client generates ahead and
// offers per negotiation round — the resident-memory bound (window ×
// chunk target) and the resume granularity.
const ingestOfferWindow = 32

// IngestSource describes one daemon's shard for Ingest. Docs yields the
// shard's documents in ascending id order, one at a time — a corpus
// streamed from disk or regenerated deterministically never needs to be
// resident. A RESUMED upload must present identical content, session id
// and chunking (the daemon verifies the geometry at begin and every
// chunk by digest).
type IngestSource struct {
	// Session identifies the upload; a client resuming after a daemon
	// (or client) crash reuses the id to inherit the acked chunks.
	Session uint64
	// Config is the engine configuration every daemon must agree on.
	Config core.Config
	// Vocab and TermFreqs are the collection-GLOBAL vocabulary and term
	// frequencies (corpus.StreamStats): the build's Ff cutoff and BM25
	// statistics are global even though each daemon holds one shard.
	Vocab     []string
	TermFreqs []int
	// TotalDocs is the corpus-wide document count; ShardDocs how many
	// documents Docs will yield.
	TotalDocs int
	ShardDocs int
	// Docs is the shard iterator: next document, or ok=false when done.
	Docs func() (corpus.Document, bool)
	// OnChunk, when non-nil, is observed after every chunk this call
	// ships and the daemon acks (acked counts this call's shipments
	// only). A non-nil return aborts the upload mid-session — the
	// session stays resumable on the daemon. Progress displays use it;
	// so do crash harnesses that need a deterministic interruption
	// point.
	OnChunk func(acked int) error
}

// IngestStats reports one Ingest call's traffic. On a fresh session
// ChunksSent == Chunks; on a resume ChunksSkipped counts the chunks the
// daemon already held durably — acked chunks are never re-shipped.
type IngestStats struct {
	Chunks        int    // chunks the shard packs into
	ChunksSent    int    // chunks actually shipped this call
	ChunksSkipped int    // chunks the daemon already held (resume)
	Bytes         uint64 // payload bytes shipped this call
	Docs          int    // documents streamed
}

// chunkGen packs the source into self-contained chunks: vocabulary
// ranges first, then documents, each chunk grown to the payload target.
// The packing is a pure function of the source content and the target,
// so a resumed client regenerates byte-identical chunks — the property
// digest negotiation rests on.
type chunkGen struct {
	src      IngestSource
	target   int
	vocabPos int
	docsDone bool
}

func (g *chunkGen) next() ([]byte, bool) {
	if g.vocabPos < len(g.src.Vocab) {
		first := g.vocabPos
		end := first
		size := 0
		for end < len(g.src.Vocab) && size < g.target {
			size += len(g.src.Vocab[end]) + 6 // term bytes + uvarint bounds
			end++
		}
		g.vocabPos = end
		return encodeMetaChunk(first, g.src.Vocab[first:end], g.src.TermFreqs[first:end]), true
	}
	if g.docsDone {
		return nil, false
	}
	buf := newDocsChunk()
	for len(buf) < g.target {
		d, ok := g.src.Docs()
		if !ok {
			g.docsDone = true
			break
		}
		buf = encodeDocsChunkDoc(buf, d)
	}
	if len(buf) == 1 {
		return nil, false // docs exhausted exactly at the last boundary
	}
	return buf, true
}

// Ingest streams one shard to the daemon at addr over a resumable
// hdk.ingest session: begin (idempotent; a resumed session inherits the
// daemon's durably held chunks), windowed digest offers pulling only the
// chunks the daemon wants, CRC'd chunk uploads acked after the daemon's
// durable append, and a commit that verifies the whole session by
// digest before the daemon materializes the shard.
func (c *Client) Ingest(addr string, src IngestSource) (IngestStats, error) {
	var st IngestStats
	if len(src.Vocab) != len(src.TermFreqs) {
		return st, fmt.Errorf("cluster: ingest: vocab (%d) and term freqs (%d) lengths differ", len(src.Vocab), len(src.TermFreqs))
	}
	if src.Docs == nil {
		src.Docs = func() (corpus.Document, bool) { return corpus.Document{}, false }
	}
	cfgJSON, err := json.Marshal(src.Config)
	if err != nil {
		return st, err
	}
	begin := ingestBegin{
		Session:    src.Session,
		Config:     cfgJSON,
		TotalDocs:  uint64(src.TotalDocs),
		ShardDocs:  uint64(src.ShardDocs),
		VocabSize:  uint64(len(src.Vocab)),
		ChunkBytes: uint64(c.chunkTarget),
	}
	raw, err := c.CallService(addr, SvcIngest, encodeIngestBegin(begin))
	if err != nil {
		return st, fmt.Errorf("cluster: ingest begin at %s: %w", addr, err)
	}
	status, _, err := decodeIngestBeginResp(raw)
	if err != nil {
		return st, fmt.Errorf("cluster: ingest begin at %s: %w", addr, err)
	}
	if err := configStatusErr(addr, []byte{status}); err != nil {
		return st, err
	}

	gen := &chunkGen{src: src, target: c.chunkTarget}
	window := make([]ingestChunk, 0, ingestOfferWindow)
	var digests []uint64
	flush := func() error {
		if len(window) == 0 {
			return nil
		}
		offer := ingestOffer{Session: src.Session, FirstSeq: window[0].Seq}
		for _, ch := range window {
			offer.Digests = append(offer.Digests, chunkDigest(ch.Payload))
		}
		raw, err := c.CallService(addr, SvcIngest, encodeIngestOffer(offer))
		if err != nil {
			return fmt.Errorf("cluster: ingest offer at %s: %w", addr, err)
		}
		wants, err := decodeIngestWants(raw)
		if err != nil {
			return fmt.Errorf("cluster: ingest offer at %s: %w", addr, err)
		}
		wanted := make(map[uint64]bool, len(wants))
		for _, seq := range wants {
			wanted[seq] = true
		}
		for _, ch := range window {
			if !wanted[ch.Seq] {
				st.ChunksSkipped++
				continue
			}
			if _, err := c.CallService(addr, SvcIngest, encodeIngestChunk(ch)); err != nil {
				return fmt.Errorf("cluster: ingest chunk %d at %s: %w", ch.Seq, addr, err)
			}
			st.ChunksSent++
			st.Bytes += uint64(len(ch.Payload))
			if src.OnChunk != nil {
				if err := src.OnChunk(st.ChunksSent); err != nil {
					return fmt.Errorf("cluster: ingest to %s aborted: %w", addr, err)
				}
			}
		}
		window = window[:0]
		return nil
	}
	seq := uint64(0)
	for {
		payload, ok := gen.next()
		if !ok {
			break
		}
		digests = append(digests, chunkDigest(payload))
		window = append(window, ingestChunk{Session: src.Session, Seq: seq, Payload: payload})
		seq++
		if len(window) == ingestOfferWindow {
			if err := flush(); err != nil {
				return st, err
			}
		}
	}
	if err := flush(); err != nil {
		return st, err
	}
	st.Chunks = int(seq)
	st.Docs = src.ShardDocs
	commit := ingestCommit{Session: src.Session, Chunks: seq, Digest: sessionDigest(digests)}
	if _, err := c.CallService(addr, SvcIngest, encodeIngestCommit(commit)); err != nil {
		return st, fmt.Errorf("cluster: ingest commit at %s: %w", addr, err)
	}
	return st, nil
}

// buildRemotePoll paces BuildRemote's cluster.info progress polls.
const buildRemotePoll = 100 * time.Millisecond

// BuildRemote asks the daemon at addr to coordinate the whole
// round-synchronous build over every member's ingested shard, then polls
// cluster.info until the coordinator reports done or failed. The start
// is idempotent — a reconnecting client observes the running build
// instead of forking a second one. progress, when non-nil, receives
// every polled Info (BuildRound advances 1..SMax; Keys grows as the
// index fills).
func (c *Client) BuildRemote(addr string, progress func(Info)) error {
	raw, err := c.CallService(addr, SvcBuild, encodeBuildStart())
	if err != nil {
		return fmt.Errorf("cluster: build start at %s: %w", addr, err)
	}
	if len(raw) != 1 {
		return fmt.Errorf("cluster: build start at %s: %w", addr, errCorruptFrame)
	}
	for {
		info, err := FetchInfo(c.tr, addr)
		if err != nil {
			return fmt.Errorf("cluster: build progress at %s: %w", addr, err)
		}
		if progress != nil {
			progress(info)
		}
		switch info.BuildState {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("cluster: build failed at %s: %s", addr, info.BuildError)
		}
		time.Sleep(buildRemotePoll)
	}
}
