package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
)

// Server-side hdk.ingest session machinery: a daemon receives its corpus
// shard as a resumable chunk stream, durably logs every acknowledged
// chunk (log-first, so with fsync=always an acked chunk survives
// SIGKILL), and materializes the shard at commit. The plain configure
// broadcast is a degenerate session — session id 0, configuration only,
// zero chunks — so the daemon has exactly ONE entry point deciding
// whether (re)configuration is admissible.

// Typed rejections for (re)configuration and ingest admission. They
// cross the wire as status bytes on SUCCESS response frames (a handler
// error would arrive as an opaque string) and are rehydrated client-side
// wrapped around these sentinels, so callers use errors.Is — the same
// contract core.ErrOverloaded established for admission shedding.
var (
	// ErrAlreadyBuilt: the daemon's store already holds a built index.
	// Re-running a build against it would double document frequencies
	// and silently flip HDKs to NDKs; restart the daemons to rebuild.
	ErrAlreadyBuilt = errors.New("cluster: daemon already holds a built index")
	// ErrConfigMismatch: the daemon is configured (or mid-ingest) with a
	// different configuration or session geometry than the request's.
	ErrConfigMismatch = errors.New("cluster: daemon already configured differently")
)

// Durable record kinds for ingest session state. Payloads are the exact
// frame bodies off the wire (minus the frame-kind byte, implied by the
// record kind), so replay runs the same decoders as serving.
const (
	durIngestBegin  = "ingest.begin"
	durIngestChunk  = "ingest.chunk"
	durIngestCommit = "ingest.commit"
)

// ingestSession is one upload session's server-side state. Chunks stay
// resident after commit: they are the durable-compaction source (the
// snapshot header re-emits the committed session so the shard survives
// op-log truncation) and the resume negotiation's ground truth.
type ingestSession struct {
	begin     ingestBegin
	chunks    map[uint64][]byte // seq -> payload
	digests   map[uint64]uint64 // seq -> chunkDigest(payload)
	committed bool
}

// handleIngest dispatches one hdk.ingest frame.
func (s *Server) handleIngest(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, errCorruptFrame
	}
	body := payload[1:]
	switch payload[0] {
	case ingestFrameBegin:
		b, err := decodeIngestBegin(body)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		status, held, err := s.ingestBeginLocked(b, body, true)
		if err != nil {
			return nil, err
		}
		return encodeIngestBeginResp(status, held), nil
	case ingestFrameOffer:
		o, err := decodeIngestOffer(body)
		if err != nil {
			return nil, err
		}
		return s.handleIngestOffer(o)
	case ingestFrameChunk:
		c, err := decodeIngestChunk(body)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return nil, s.ingestChunkLocked(c, body, true)
	case ingestFrameCommit:
		c, err := decodeIngestCommit(body)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return nil, s.ingestCommitLocked(c, body, true)
	}
	return nil, errCorruptFrame
}

// ingestBeginLocked opens, resumes or rejects a session. Rejections are
// in-band statuses, not errors: the client turns them into the typed
// sentinels. durably=false on replay (the record is already on disk).
// Caller holds s.mu.
func (s *Server) ingestBeginLocked(b ingestBegin, raw []byte, durably bool) (status byte, held uint64, err error) {
	if s.store != nil {
		if !bytes.Equal(s.configJSON, b.Config) {
			return cfgStatusMismatch, 0, nil
		}
		if s.store.Populated() {
			return cfgStatusAlreadyBuilt, 0, nil
		}
		if ses := s.ingest; ses != nil && ses.begin.Session == b.Session {
			// Resume — committed sessions included: a client whose commit
			// ack was lost re-runs the whole session and must ship zero
			// chunks, not start over. The chunk geometry must match or the
			// re-streamed shard chunks to different digests and
			// negotiation would quietly re-ship everything.
			if ses.begin.ChunkBytes != b.ChunkBytes || ses.begin.ShardDocs != b.ShardDocs || ses.begin.VocabSize != b.VocabSize {
				return cfgStatusMismatch, 0, nil
			}
			return cfgStatusOK, uint64(len(ses.chunks)), nil
		}
		// Configured but unpopulated with a different/fresh session id: a
		// client abandoning a half-finished upload and starting over.
		// Fall through and replace the session state.
	} else {
		var cfg core.Config
		if err := json.Unmarshal(b.Config, &cfg); err != nil {
			return 0, 0, fmt.Errorf("cluster: bad configuration: %w", err)
		}
		if err := cfg.Validate(); err != nil {
			return 0, 0, err
		}
	}
	// Log-first: the begin record must be durable before the store exists
	// and starts logging mutations (same invariant handleConfigure always
	// kept for the configure record).
	if durably && s.dur != nil {
		if err := s.dur.Append(durIngestBegin, raw); err != nil {
			return 0, 0, fmt.Errorf("cluster: %s: persist ingest begin: %w", s.addr, err)
		}
	}
	if s.store == nil {
		if err := s.configureLocked(b.Config); err != nil {
			return 0, 0, err
		}
	}
	s.ingest = &ingestSession{
		begin:   b,
		chunks:  make(map[uint64][]byte),
		digests: make(map[uint64]uint64),
	}
	return cfgStatusOK, 0, nil
}

// handleIngestOffer answers a digest window with the sequence numbers
// this daemon wants shipped — the swarm-style negotiation that makes a
// resumed session pull only what it is missing.
func (s *Server) handleIngestOffer(o ingestOffer) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ses := s.ingest
	if ses == nil || ses.begin.Session != o.Session {
		return nil, fmt.Errorf("cluster: %s: no ingest session %d", s.addr, o.Session)
	}
	wants := make([]uint64, 0, len(o.Digests))
	for i, d := range o.Digests {
		seq := o.FirstSeq + uint64(i)
		if have, ok := ses.digests[seq]; !ok || have != d {
			wants = append(wants, seq)
		}
	}
	return encodeIngestWants(wants), nil
}

// ingestChunkLocked installs one chunk, logging it before the ack so an
// acknowledged chunk is crash-proof. A duplicate of an already-held
// chunk acks without re-appending. Caller holds s.mu.
func (s *Server) ingestChunkLocked(c ingestChunk, raw []byte, durably bool) error {
	ses := s.ingest
	if ses == nil || ses.begin.Session != c.Session {
		return fmt.Errorf("cluster: %s: no ingest session %d", s.addr, c.Session)
	}
	d := chunkDigest(c.Payload)
	if have, ok := ses.digests[c.Seq]; ok {
		if have == d {
			return nil // duplicate delivery (retry, or a redundant resend)
		}
		if ses.committed {
			return fmt.Errorf("cluster: %s: ingest chunk %d differs from committed session %d", s.addr, c.Seq, c.Session)
		}
	} else if ses.committed {
		return fmt.Errorf("cluster: %s: ingest session %d already committed", s.addr, c.Session)
	}
	if durably && s.dur != nil {
		if err := s.dur.Append(durIngestChunk, raw); err != nil {
			return fmt.Errorf("cluster: %s: persist ingest chunk: %w", s.addr, err)
		}
	}
	ses.chunks[c.Seq] = append([]byte(nil), c.Payload...)
	ses.digests[c.Seq] = d
	s.metrics.ingestChunks.Inc()
	s.metrics.ingestBytes.Add(uint64(len(c.Payload)))
	return nil
}

// ingestCommitLocked verifies session completeness (exact chunk count,
// digest over every chunk in sequence order) and materializes the shard.
// Idempotent for a matching re-send. Caller holds s.mu.
func (s *Server) ingestCommitLocked(c ingestCommit, raw []byte, durably bool) error {
	ses := s.ingest
	if ses == nil || ses.begin.Session != c.Session {
		return fmt.Errorf("cluster: %s: no ingest session %d", s.addr, c.Session)
	}
	if uint64(len(ses.chunks)) != c.Chunks {
		return fmt.Errorf("cluster: %s: ingest session %d holds %d of %d chunks at commit", s.addr, c.Session, len(ses.chunks), c.Chunks)
	}
	ordered := make([]uint64, 0, c.Chunks)
	for seq := uint64(0); seq < c.Chunks; seq++ {
		d, ok := ses.digests[seq]
		if !ok {
			return fmt.Errorf("cluster: %s: ingest session %d missing chunk %d at commit", s.addr, c.Session, seq)
		}
		ordered = append(ordered, d)
	}
	if sessionDigest(ordered) != c.Digest {
		return fmt.Errorf("cluster: %s: ingest session %d digest mismatch at commit", s.addr, c.Session)
	}
	if ses.committed {
		return nil // duplicate commit of a verified session
	}
	if durably && s.dur != nil {
		if err := s.dur.Append(durIngestCommit, raw); err != nil {
			return fmt.Errorf("cluster: %s: persist ingest commit: %w", s.addr, err)
		}
	}
	if err := s.materializeLocked(ses); err != nil {
		return err
	}
	ses.committed = true
	return nil
}

// materializeLocked reassembles the session's chunks into the daemon's
// corpus shard. Chunks are self-contained and order-independent, so the
// pass runs in sequence order for determinism but any upload order
// (including the shuffled-order property test's) yields the identical
// shard. Caller holds s.mu.
func (s *Server) materializeLocked(ses *ingestSession) error {
	b := ses.begin
	if b.VocabSize == 0 && b.ShardDocs == 0 && len(ses.chunks) == 0 {
		return nil // degenerate configure-only session: the store exists, done
	}
	vocab := make([]string, b.VocabSize)
	freqs := make([]int, b.VocabSize)
	docs := make([]corpus.Document, 0, b.ShardDocs)
	seqs := make([]uint64, 0, len(ses.chunks))
	for seq := range ses.chunks {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var err error
	for _, seq := range seqs {
		payload := ses.chunks[seq]
		if len(payload) == 0 {
			return fmt.Errorf("cluster: %s: empty ingest chunk %d", s.addr, seq)
		}
		switch payload[0] {
		case chunkKindMeta:
			err = decodeMetaChunk(payload[1:], vocab, freqs)
		case chunkKindDocs:
			docs, err = decodeDocsChunk(payload[1:], b.VocabSize, docs)
		default:
			err = errCorruptFrame
		}
		if err != nil {
			return fmt.Errorf("cluster: %s: ingest chunk %d: %w", s.addr, seq, err)
		}
	}
	for i, t := range vocab {
		if t == "" {
			return fmt.Errorf("cluster: %s: ingest session %d vocabulary slot %d never shipped", s.addr, b.Session, i)
		}
	}
	if uint64(len(docs)) != b.ShardDocs {
		return fmt.Errorf("cluster: %s: ingest session %d materialized %d of %d documents", s.addr, b.Session, len(docs), b.ShardDocs)
	}
	// The shard is document-id sorted regardless of chunk packing — the
	// peer's AddDocuments contract, and what makes chunk arrival order
	// irrelevant to the built index.
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	for i := 1; i < len(docs); i++ {
		if docs[i].ID == docs[i-1].ID {
			return fmt.Errorf("cluster: %s: ingest session %d shipped document %d twice", s.addr, b.Session, docs[i].ID)
		}
	}
	s.shard = &corpus.Collection{Vocab: vocab, Docs: docs}
	s.shardFreqs = freqs
	return nil
}

// replayIngestRecord applies one recovered ingest record during durable
// replay. Caller holds s.mu.
func (s *Server) replayIngestRecord(kind string, payload []byte) error {
	switch kind {
	case durIngestBegin:
		b, err := decodeIngestBegin(payload)
		if err != nil {
			return err
		}
		status, _, err := s.ingestBeginLocked(b, payload, false)
		if err != nil {
			return err
		}
		if status != cfgStatusOK {
			return fmt.Errorf("cluster: %s: replayed ingest begin rejected (status %d)", s.addr, status)
		}
		return nil
	case durIngestChunk:
		c, err := decodeIngestChunk(payload)
		if err != nil {
			return err
		}
		return s.ingestChunkLocked(c, payload, false)
	case durIngestCommit:
		c, err := decodeIngestCommit(payload)
		if err != nil {
			return err
		}
		return s.ingestCommitLocked(c, payload, false)
	}
	return fmt.Errorf("cluster: unknown ingest record kind %q", kind)
}

// ingestHeaderLocked re-emits the current session — begin, chunks in
// sequence order, commit if committed — at the head of a compacted
// snapshot, so op-log truncation can never drop the corpus shard (or a
// half-finished session's acked chunks) the daemon still answers resume
// negotiations from. Caller holds s.mu.
func (s *Server) ingestHeaderLocked(emit func(kind string, payload []byte) error) error {
	ses := s.ingest
	if err := emit(durIngestBegin, encodeIngestBegin(ses.begin)[1:]); err != nil {
		return err
	}
	seqs := make([]uint64, 0, len(ses.chunks))
	for seq := range ses.chunks {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	ordered := make([]uint64, 0, len(seqs))
	for _, seq := range seqs {
		frame := encodeIngestChunk(ingestChunk{Session: ses.begin.Session, Seq: seq, Payload: ses.chunks[seq]})
		if err := emit(durIngestChunk, frame[1:]); err != nil {
			return err
		}
		ordered = append(ordered, ses.digests[seq])
	}
	if !ses.committed {
		return nil
	}
	commit := ingestCommit{Session: ses.begin.Session, Chunks: uint64(len(seqs)), Digest: sessionDigest(ordered)}
	return emit(durIngestCommit, encodeIngestCommit(commit)[1:])
}
