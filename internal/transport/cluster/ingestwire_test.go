package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/corpus"
)

// Round-trip + corruption sweeps for the streamed-build wire codecs.
// The decoders face bytes from the network; the contract is exact
// round-trips on well-formed frames and errCorruptFrame — never a
// panic, never a giant allocation — on everything else.

func TestIngestWireRoundTrips(t *testing.T) {
	begin := ingestBegin{
		Session:    7,
		Config:     []byte(`{"df_max":8}`),
		TotalDocs:  100000,
		ShardDocs:  20000,
		VocabSize:  50000,
		ChunkBytes: 256 << 10,
	}
	gotBegin, err := decodeIngestBegin(encodeIngestBegin(begin)[1:])
	if err != nil || !reflect.DeepEqual(begin, gotBegin) {
		t.Fatalf("begin round-trip: %+v, %v", gotBegin, err)
	}

	status, held, err := decodeIngestBeginResp(encodeIngestBeginResp(cfgStatusAlreadyBuilt, 42))
	if err != nil || status != cfgStatusAlreadyBuilt || held != 42 {
		t.Fatalf("begin resp round-trip: %d %d %v", status, held, err)
	}

	offer := ingestOffer{Session: 7, FirstSeq: 96, Digests: []uint64{1, 1 << 63, 0, 12345}}
	gotOffer, err := decodeIngestOffer(encodeIngestOffer(offer)[1:])
	if err != nil || !reflect.DeepEqual(offer, gotOffer) {
		t.Fatalf("offer round-trip: %+v, %v", gotOffer, err)
	}

	wants := []uint64{3, 96, 1 << 40}
	gotWants, err := decodeIngestWants(encodeIngestWants(wants))
	if err != nil || !reflect.DeepEqual(wants, gotWants) {
		t.Fatalf("wants round-trip: %v, %v", gotWants, err)
	}
	if empty, err := decodeIngestWants(encodeIngestWants(nil)); err != nil || len(empty) != 0 {
		t.Fatalf("empty wants round-trip: %v, %v", empty, err)
	}

	chunk := ingestChunk{Session: 7, Seq: 3, Payload: []byte{chunkKindDocs, 1, 2, 3}}
	gotChunk, err := decodeIngestChunk(encodeIngestChunk(chunk)[1:])
	if err != nil || gotChunk.Session != 7 || gotChunk.Seq != 3 || !bytes.Equal(chunk.Payload, gotChunk.Payload) {
		t.Fatalf("chunk round-trip: %+v, %v", gotChunk, err)
	}

	commit := ingestCommit{Session: 7, Chunks: 812, Digest: 0xdeadbeefcafef00d}
	gotCommit, err := decodeIngestCommit(encodeIngestCommit(commit)[1:])
	if err != nil || commit != gotCommit {
		t.Fatalf("commit round-trip: %+v, %v", gotCommit, err)
	}

	state, inserted, msg, err := decodeRoundStatusResp(encodeRoundStatusResp(buildFailed, 99, "boom"))
	if err != nil || state != buildFailed || inserted != 99 || msg != "boom" {
		t.Fatalf("round status round-trip: %d %d %q %v", state, inserted, msg, err)
	}
	size, err := decodeBuildSize(encodeBuildRound(5)[1:])
	if err != nil || size != 5 {
		t.Fatalf("build size round-trip: %d %v", size, err)
	}
}

func TestChunkPayloadRoundTrips(t *testing.T) {
	terms := []string{"alpha", "beta", "", "delta"}
	freqs := []int{10, 0, 3, 7}
	meta := encodeMetaChunk(2, terms, freqs)
	vocab := make([]string, 10)
	got := make([]int, 10)
	if err := decodeMetaChunk(meta[1:], vocab, got); err != nil {
		t.Fatal(err)
	}
	for i := range terms {
		if vocab[2+i] != terms[i] || got[2+i] != freqs[i] {
			t.Fatalf("meta slot %d: %q/%d", i, vocab[2+i], got[2+i])
		}
	}

	docs := []corpus.Document{
		{ID: 4, Terms: []corpus.TermID{0, 9, 3}},
		{ID: 900, Terms: nil},
		{ID: 5, Terms: []corpus.TermID{1}},
	}
	buf := newDocsChunk()
	for _, d := range docs {
		buf = encodeDocsChunkDoc(buf, d)
	}
	gotDocs, err := decodeDocsChunk(buf[1:], 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotDocs) != len(docs) {
		t.Fatalf("decoded %d docs, want %d", len(gotDocs), len(docs))
	}
	for i, d := range docs {
		if gotDocs[i].ID != d.ID || len(gotDocs[i].Terms) != len(d.Terms) {
			t.Fatalf("doc %d diverges: %+v", i, gotDocs[i])
		}
		for j, tid := range d.Terms {
			if gotDocs[i].Terms[j] != tid {
				t.Fatalf("doc %d term %d diverges", i, j)
			}
		}
	}
	// Term ids out of the session's vocabulary are rejected.
	if _, err := decodeDocsChunk(buf[1:], 9, nil); err == nil {
		t.Fatal("term id 9 accepted against vocab size 9")
	}
}

// corruptionSweep feeds the decoder every truncation and every
// single-byte flip of a valid frame; none may panic, and the decoder
// must answer (any error is fine, as is a clean parse when the flip
// lands somewhere semantically inert).
func corruptionSweep(t *testing.T, name string, frame []byte, decode func([]byte)) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s decoder panicked: %v", name, r)
		}
	}()
	for cut := 0; cut < len(frame); cut++ {
		decode(frame[:cut])
	}
	for pos := 0; pos < len(frame); pos++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), frame...)
			mut[pos] ^= flip
			decode(mut)
		}
	}
	// Hostile counts: a uvarint claiming 2^60 elements must be refused
	// before any allocation, not after.
	decode(append(append([]byte(nil), frame...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x10))
}

func TestIngestWireCorruptionNeverPanics(t *testing.T) {
	begin := encodeIngestBegin(ingestBegin{Session: 1, Config: []byte(`{}`), TotalDocs: 5, ShardDocs: 5, VocabSize: 3, ChunkBytes: 64})
	corruptionSweep(t, "begin", begin[1:], func(b []byte) { _, _ = decodeIngestBegin(b) })
	corruptionSweep(t, "beginResp", encodeIngestBeginResp(cfgStatusOK, 7), func(b []byte) { _, _, _ = decodeIngestBeginResp(b) })
	offer := encodeIngestOffer(ingestOffer{Session: 1, FirstSeq: 0, Digests: []uint64{5, 6, 7}})
	corruptionSweep(t, "offer", offer[1:], func(b []byte) { _, _ = decodeIngestOffer(b) })
	corruptionSweep(t, "wants", encodeIngestWants([]uint64{1, 2, 3}), func(b []byte) { _, _ = decodeIngestWants(b) })
	chunk := encodeIngestChunk(ingestChunk{Session: 1, Seq: 2, Payload: []byte{chunkKindMeta, 0, 1, 2}})
	corruptionSweep(t, "chunk", chunk[1:], func(b []byte) { _, _ = decodeIngestChunk(b) })
	commit := encodeIngestCommit(ingestCommit{Session: 1, Chunks: 3, Digest: 99})
	corruptionSweep(t, "commit", commit[1:], func(b []byte) { _, _ = decodeIngestCommit(b) })

	meta := encodeMetaChunk(0, []string{"a", "bb"}, []int{1, 2})
	corruptionSweep(t, "metaChunk", meta[1:], func(b []byte) {
		_ = decodeMetaChunk(b, make([]string, 4), make([]int, 4))
	})
	docsBuf := encodeDocsChunkDoc(newDocsChunk(), corpus.Document{ID: 1, Terms: []corpus.TermID{0, 1}})
	corruptionSweep(t, "docsChunk", docsBuf[1:], func(b []byte) { _, _ = decodeDocsChunk(b, 4, nil) })
	corruptionSweep(t, "roundStatus", encodeRoundStatusResp(buildDone, 5, "x"), func(b []byte) {
		_, _, _, _ = decodeRoundStatusResp(b)
	})
	corruptionSweep(t, "buildSize", encodeBuildRound(2)[1:], func(b []byte) { _, _ = decodeBuildSize(b) })

	// A flipped CRC must be refused even when the frame still parses.
	mut := append([]byte(nil), chunk[1:]...)
	mut[len(mut)-1] ^= 0x01 // payload byte no longer matches the CRC
	if _, err := decodeIngestChunk(mut); err == nil {
		t.Fatal("chunk with corrupted payload accepted")
	}

	// The server dispatcher itself survives garbage service payloads.
	for _, raw := range [][]byte{nil, {}, {0x00}, {0xff}, {ingestFrameBegin}, {ingestFrameChunk, 0xff}} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("handleIngest(%x) panicked: %v", raw, r)
				}
			}()
			srv := &Server{addr: "x", metrics: newServerMetrics()}
			_, _ = srv.handleIngest(raw)
			_, _ = srv.handleBuild(raw)
		}()
	}
}
