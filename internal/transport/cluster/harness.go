package cluster

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/transport"
)

// Harness spawns and reaps a localhost cluster of hdknode child
// processes for end-to-end tests and CI: node 0 listens on an ephemeral
// port, every later node joins through it, and Start returns once the
// membership view has converged on every daemon. Each daemon's stdout is
// parsed for the "hdknode listening on <addr>" banner. With DataRoot set
// every daemon runs durable (-data DataRoot/node<i>), and Restart brings
// a killed daemon back on its original address for warm-rejoin
// scenarios.
type Harness struct {
	// Bin is the hdknode binary path (see BuildHDKNode).
	Bin string
	// Stderr, when non-nil, receives every daemon's stderr (test logs).
	Stderr *os.File
	// DataRoot, when non-empty, gives each daemon a durable data
	// directory under it ("node0", "node1", ...).
	DataRoot string
	// Fsync overrides the daemons' -fsync policy (DataRoot only;
	// default "always", the SIGKILL-proof setting restart tests need).
	Fsync string
	// LogDir, when non-empty, tees each daemon's stdout and stderr into
	// LogDir/node<i>.log (appending across restarts, so one file tells
	// a daemon's whole multi-incarnation story) — the artifact a chaos
	// failure uploads next to the fault schedule.
	LogDir string

	procs     []*exec.Cmd
	addrs     []string
	httpAddrs []string
	dead      []bool
	replicas  int
	extra     []string
}

// NodeDataDir returns daemon i's durable data directory ("" without
// DataRoot) — the artifact to collect when a restart scenario fails.
func (h *Harness) NodeDataDir(i int) string {
	if h.DataRoot == "" {
		return ""
	}
	return filepath.Join(h.DataRoot, fmt.Sprintf("node%d", i))
}

// nodeArgs assembles daemon i's command line. listen is the concrete
// address (the original one on restart, "127.0.0.1:0" initially) and
// join the address of a live member ("" for the bootstrap node).
func (h *Harness) nodeArgs(i int, listen, join string) []string {
	args := []string{"-listen", listen, "-replicas", fmt.Sprint(h.replicas)}
	if join != "" {
		args = append(args, "-join", join)
	}
	if dir := h.NodeDataDir(i); dir != "" {
		fsync := h.Fsync
		if fsync == "" {
			fsync = "always"
		}
		args = append(args, "-data", dir, "-fsync", fsync)
	}
	return append(args, h.extra...)
}

// BuildHDKNode compiles cmd/hdknode into dir and returns the binary
// path. It must run from within the module (any package directory works,
// which is where `go test` runs).
func BuildHDKNode(dir string) (string, error) {
	bin := filepath.Join(dir, "hdknode")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/hdknode")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("cluster: build hdknode: %v\n%s", err, out)
	}
	return bin, nil
}

// startTimeout bounds one daemon's time-to-banner and the whole
// membership convergence wait.
const startTimeout = 30 * time.Second

// Start launches n daemons with the given replication factor and waits
// for membership convergence. extraArgs are appended to every daemon's
// command line (and remembered for Restart).
func (h *Harness) Start(n, replicas int, extraArgs ...string) error {
	if n < 1 {
		return fmt.Errorf("cluster: need at least one node")
	}
	h.replicas = replicas
	h.extra = extraArgs
	for i := 0; i < n; i++ {
		join := ""
		if i > 0 {
			join = h.addrs[0]
		}
		cmd := exec.Command(h.Bin, h.nodeArgs(i, "127.0.0.1:0", join)...)
		stdout, logf, err := h.wirePipes(cmd, i)
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			closeLog(logf)
			return fmt.Errorf("cluster: start node %d: %w", i, err)
		}
		h.procs = append(h.procs, cmd)
		h.dead = append(h.dead, false)
		addr, httpAddr, err := awaitBanner(stdout, logf)
		if err != nil {
			h.Stop()
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
		h.addrs = append(h.addrs, addr)
		h.httpAddrs = append(h.httpAddrs, httpAddr)
	}
	if err := h.awaitConvergence(n); err != nil {
		h.Stop()
		return err
	}
	return nil
}

// Restart brings a killed daemon back on its ORIGINAL listen address —
// same ring position, same replica sets — joining through the first
// live member. With DataRoot set the daemon reloads its durable store
// and runs its warm-rejoin catch-up before printing the banner Restart
// waits for, so a returned Restart means the daemon is serving its
// restored index.
func (h *Harness) Restart(i int) error {
	if i < 0 || i >= len(h.procs) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	if !h.dead[i] {
		return fmt.Errorf("cluster: node %d is still running", i)
	}
	join := ""
	for j, addr := range h.addrs {
		if j != i && !h.dead[j] {
			join = addr
			break
		}
	}
	if join == "" {
		return fmt.Errorf("cluster: no live member for node %d to rejoin through", i)
	}
	cmd := exec.Command(h.Bin, h.nodeArgs(i, h.addrs[i], join)...)
	stdout, logf, err := h.wirePipes(cmd, i)
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		closeLog(logf)
		return fmt.Errorf("cluster: restart node %d: %w", i, err)
	}
	addr, httpAddr, err := awaitBanner(stdout, logf)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("cluster: restart node %d: %w", i, err)
	}
	if addr != h.addrs[i] {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("cluster: node %d restarted on %s, want %s", i, addr, h.addrs[i])
	}
	h.procs[i] = cmd
	h.dead[i] = false
	// The HTTP endpoint usually runs on an ephemeral port, so a restart
	// re-learns it (unlike the RPC address, which is pinned).
	h.httpAddrs[i] = httpAddr
	return nil
}

// wirePipes prepares one daemon invocation's stdio: stdout comes back
// as the reader awaitBanner scans, and with LogDir set both streams tee
// into the per-node log file (which awaitBanner's drain goroutine closes
// once the daemon exits).
func (h *Harness) wirePipes(cmd *exec.Cmd, i int) (stdout io.Reader, logf *os.File, err error) {
	cmd.Stderr = h.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	stdout = pipe
	if h.LogDir == "" {
		return stdout, nil, nil
	}
	logf, err = os.OpenFile(filepath.Join(h.LogDir, fmt.Sprintf("node%d.log", i)),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: node %d log: %w", i, err)
	}
	if h.Stderr != nil {
		cmd.Stderr = io.MultiWriter(logf, h.Stderr)
	} else {
		cmd.Stderr = logf
	}
	return io.TeeReader(pipe, logf), logf, nil
}

// closeLog closes a per-node log file if one was opened (start-failure
// path; the success path hands ownership to awaitBanner's drainer).
func closeLog(logf *os.File) {
	if logf != nil {
		logf.Close()
	}
}

// awaitBanner scans a daemon's stdout for the listening banner, also
// collecting the observability-endpoint banner ("hdknode http on
// <addr>", printed first when the daemon runs with -http; "" without).
// logf, when non-nil, is the per-node log file the stream tees into;
// the drain goroutine closes it at process exit (stdout EOF), so every
// incarnation's output is flushed before the next restart appends.
func awaitBanner(r io.Reader, logf *os.File) (addr, httpAddr string, err error) {
	type result struct {
		addr, httpAddr string
		err            error
	}
	ch := make(chan result, 1)
	go func() {
		defer closeLog(logf)
		var http string
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "hdknode http on "); ok {
				http = strings.TrimSpace(rest)
				continue
			}
			if rest, ok := strings.CutPrefix(line, "hdknode listening on "); ok {
				ch <- result{addr: strings.TrimSpace(rest), httpAddr: http}
				// Keep draining stdout so the child never blocks on a
				// full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- result{err: fmt.Errorf("stdout closed before listen banner (%v)", sc.Err())}
	}()
	select {
	case res := <-ch:
		return res.addr, res.httpAddr, res.err
	case <-time.After(startTimeout):
		return "", "", fmt.Errorf("no listen banner within %v", startTimeout)
	}
}

// awaitConvergence polls every daemon until each reports n members.
func (h *Harness) awaitConvergence(n int) error {
	tr := transport.NewTCP()
	defer tr.Close()
	deadline := time.Now().Add(startTimeout)
	for {
		converged := true
		for _, addr := range h.addrs {
			members, err := MembersOf(tr, addr)
			if err != nil || len(members) != n {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: membership did not converge to %d within %v", n, startTimeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// AwaitMembers blocks until every daemon reports n members (or the
// start timeout passes) — the readiness re-poll a fault driver runs
// after a restart-under-load before firing the next action at the
// returned daemon. Every daemon must be running: a dead process can
// never converge, so call this only with the full cluster up.
func (h *Harness) AwaitMembers(n int) error { return h.awaitConvergence(n) }

// Addrs returns the daemons' listen addresses in start order.
func (h *Harness) Addrs() []string { return append([]string(nil), h.addrs...) }

// HTTPAddrs returns the daemons' observability-endpoint addresses in
// start order ("" for daemons running without -http).
func (h *Harness) HTTPAddrs() []string { return append([]string(nil), h.httpAddrs...) }

// Kill crashes daemon i (SIGKILL) and reaps it — the ungraceful
// departure the availability scenario simulates.
func (h *Harness) Kill(i int) error {
	if i < 0 || i >= len(h.procs) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	if h.dead[i] {
		return nil
	}
	h.dead[i] = true
	if err := h.procs[i].Process.Kill(); err != nil {
		return err
	}
	h.procs[i].Wait() // reap; exit error expected after SIGKILL
	return nil
}

// Stop terminates every live daemon (SIGTERM, then SIGKILL after a grace
// period) and reaps all children.
func (h *Harness) Stop() {
	for i, cmd := range h.procs {
		if h.dead[i] {
			continue
		}
		h.dead[i] = true
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func(c *exec.Cmd) {
			c.Wait()
			close(done)
		}(cmd)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
}
