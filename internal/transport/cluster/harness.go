package cluster

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/transport"
)

// Harness spawns and reaps a localhost cluster of hdknode child
// processes for end-to-end tests and CI: node 0 listens on an ephemeral
// port, every later node joins through it, and Start returns once the
// membership view has converged on every daemon. Each daemon's stdout is
// parsed for the "hdknode listening on <addr>" banner.
type Harness struct {
	// Bin is the hdknode binary path (see BuildHDKNode).
	Bin string
	// Stderr, when non-nil, receives every daemon's stderr (test logs).
	Stderr *os.File

	procs []*exec.Cmd
	addrs []string
	dead  []bool
}

// BuildHDKNode compiles cmd/hdknode into dir and returns the binary
// path. It must run from within the module (any package directory works,
// which is where `go test` runs).
func BuildHDKNode(dir string) (string, error) {
	bin := filepath.Join(dir, "hdknode")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/hdknode")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("cluster: build hdknode: %v\n%s", err, out)
	}
	return bin, nil
}

// startTimeout bounds one daemon's time-to-banner and the whole
// membership convergence wait.
const startTimeout = 30 * time.Second

// Start launches n daemons with the given replication factor and waits
// for membership convergence. extraArgs are appended to every daemon's
// command line.
func (h *Harness) Start(n, replicas int, extraArgs ...string) error {
	if n < 1 {
		return fmt.Errorf("cluster: need at least one node")
	}
	for i := 0; i < n; i++ {
		args := []string{"-listen", "127.0.0.1:0", "-replicas", fmt.Sprint(replicas)}
		if i > 0 {
			args = append(args, "-join", h.addrs[0])
		}
		args = append(args, extraArgs...)
		cmd := exec.Command(h.Bin, args...)
		cmd.Stderr = h.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("cluster: start node %d: %w", i, err)
		}
		h.procs = append(h.procs, cmd)
		h.dead = append(h.dead, false)
		addr, err := awaitBanner(stdout)
		if err != nil {
			h.Stop()
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
		h.addrs = append(h.addrs, addr)
	}
	if err := h.awaitConvergence(n); err != nil {
		h.Stop()
		return err
	}
	return nil
}

// awaitBanner scans a daemon's stdout for the listening banner.
func awaitBanner(r io.Reader) (string, error) {
	type result struct {
		addr string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "hdknode listening on "); ok {
				ch <- result{addr: strings.TrimSpace(rest)}
				// Keep draining stdout so the child never blocks on a
				// full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- result{err: fmt.Errorf("stdout closed before listen banner (%v)", sc.Err())}
	}()
	select {
	case res := <-ch:
		return res.addr, res.err
	case <-time.After(startTimeout):
		return "", fmt.Errorf("no listen banner within %v", startTimeout)
	}
}

// awaitConvergence polls every daemon until each reports n members.
func (h *Harness) awaitConvergence(n int) error {
	tr := transport.NewTCP()
	defer tr.Close()
	deadline := time.Now().Add(startTimeout)
	for {
		converged := true
		for _, addr := range h.addrs {
			members, err := MembersOf(tr, addr)
			if err != nil || len(members) != n {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: membership did not converge to %d within %v", n, startTimeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Addrs returns the daemons' listen addresses in start order.
func (h *Harness) Addrs() []string { return append([]string(nil), h.addrs...) }

// Kill crashes daemon i (SIGKILL) and reaps it — the ungraceful
// departure the availability scenario simulates.
func (h *Harness) Kill(i int) error {
	if i < 0 || i >= len(h.procs) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	if h.dead[i] {
		return nil
	}
	h.dead[i] = true
	if err := h.procs[i].Process.Kill(); err != nil {
		return err
	}
	h.procs[i].Wait() // reap; exit error expected after SIGKILL
	return nil
}

// Stop terminates every live daemon (SIGTERM, then SIGKILL after a grace
// period) and reaps all children.
func (h *Harness) Stop() {
	for i, cmd := range h.procs {
		if h.dead[i] {
			continue
		}
		h.dead[i] = true
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func(c *exec.Cmd) {
			c.Wait()
			close(done)
		}(cmd)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
}
