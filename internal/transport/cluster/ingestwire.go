package cluster

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"hash/fnv"

	"repro/internal/corpus"
)

// Wire codecs for the streamed build services. hdk.ingest moves one
// daemon's corpus shard over a chunked, resumable session (versioned
// frames, CRC'd chunks, swarm-style offer/want digest negotiation);
// hdk.build drives the round-synchronous collaborative build on the
// daemons themselves. Frames are deliberately self-describing and every
// decoder validates all lengths against the remaining input — corrupt
// frames return errCorruptFrame, never panic (see ingestwire_test.go's
// corruption sweeps).

// Streamed-build service names served by every cluster daemon.
const (
	// SvcIngest accepts corpus-shard upload frames (begin, offer,
	// chunk, commit).
	SvcIngest = "hdk.ingest"
	// SvcBuild accepts build-orchestration frames (start, round,
	// roundStatus, finish).
	SvcBuild = "hdk.build"
)

// ingestVersion is the ingest protocol version carried by every begin
// frame; a daemon rejects sessions it does not speak.
const ingestVersion = 1

// hdk.ingest frame kinds (first payload byte).
const (
	ingestFrameBegin  = 0x01 // open or resume a session
	ingestFrameOffer  = 0x02 // advertise a window of chunk digests
	ingestFrameChunk  = 0x03 // ship one CRC'd chunk
	ingestFrameCommit = 0x04 // close the session and materialize
)

// hdk.build frame kinds (first payload byte).
const (
	buildFrameStart       = 0x01 // client → coordinator: run the whole build
	buildFrameRound       = 0x02 // coordinator → daemon: start round s on your shard
	buildFrameRoundStatus = 0x03 // coordinator → daemon: poll round s
	buildFrameFinish      = 0x04 // coordinator → daemon: build epilogue
)

// Configure/begin response statuses. The rejection is a transport-level
// SUCCESS frame decoded client-side into a typed error (like the
// overload rejection): a handler error would cross the wire as an
// opaque string, and these two must stay errors.Is-matchable.
const (
	cfgStatusOK           = 0x00
	cfgStatusAlreadyBuilt = 0x01
	cfgStatusMismatch     = 0x02
)

// Chunk payload content kinds (first byte of a chunk payload). Every
// chunk is self-contained and order-independent: meta chunks carry a
// vocabulary range, doc chunks carry whole documents with global ids,
// so a session reassembles identically from any arrival order.
const (
	chunkKindMeta = 0x01 // vocabulary terms + collection frequencies
	chunkKindDocs = 0x02 // whole documents
)

// errCorruptFrame is returned for malformed streamed-build frames.
var errCorruptFrame = errors.New("cluster: corrupt ingest frame")

// chunkDigest is the content digest the offer/want negotiation and the
// session commit digest are built from (FNV-1a 64 over the payload).
func chunkDigest(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// sessionDigest folds the per-chunk digests, in sequence order, into the
// commit digest: a completeness check over the exact bytes the daemon
// holds.
func sessionDigest(digests []uint64) uint64 {
	h := fnv.New64a()
	var cell [8]byte
	for _, d := range digests {
		binary.LittleEndian.PutUint64(cell[:], d)
		h.Write(cell[:])
	}
	return h.Sum64()
}

// wireReader is a bounds-checked sequential decoder: any overrun flips
// bad and every subsequent read returns zero values, so frame decoders
// validate once at the end instead of after every field.
type wireReader struct {
	buf []byte
	off int
	bad bool
}

func (r *wireReader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) byte() byte {
	if r.bad || r.off >= len(r.buf) {
		r.bad = true
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// take returns the next n bytes without copying. The declared n has
// already been read from the frame, so an n beyond the remaining input
// marks the frame corrupt.
func (r *wireReader) take(n uint64) []byte {
	if r.bad || n > uint64(len(r.buf)-r.off) {
		r.bad = true
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *wireReader) rest() []byte {
	if r.bad {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// done reports a clean, fully consumed frame.
func (r *wireReader) done() bool { return !r.bad && r.off == len(r.buf) }

// ingestBegin opens (or, re-sent with the same session id, resumes) one
// corpus-shard upload session.
type ingestBegin struct {
	Session    uint64 // client-chosen id; a resumed session reuses it
	Config     []byte // engine configuration JSON (the configure payload)
	TotalDocs  uint64 // corpus-wide document count (progress reporting)
	ShardDocs  uint64 // documents in THIS daemon's shard
	VocabSize  uint64
	ChunkBytes uint64 // chunking target; a resume must reuse it or digests diverge
}

func encodeIngestBegin(b ingestBegin) []byte {
	buf := []byte{ingestFrameBegin, ingestVersion}
	buf = binary.AppendUvarint(buf, b.Session)
	buf = binary.AppendUvarint(buf, uint64(len(b.Config)))
	buf = append(buf, b.Config...)
	buf = binary.AppendUvarint(buf, b.TotalDocs)
	buf = binary.AppendUvarint(buf, b.ShardDocs)
	buf = binary.AppendUvarint(buf, b.VocabSize)
	return binary.AppendUvarint(buf, b.ChunkBytes)
}

// decodeIngestBegin parses a begin frame body (frame byte already
// consumed by the dispatcher).
func decodeIngestBegin(body []byte) (ingestBegin, error) {
	r := &wireReader{buf: body}
	if r.byte() != ingestVersion {
		return ingestBegin{}, errCorruptFrame
	}
	var b ingestBegin
	b.Session = r.uvarint()
	b.Config = append([]byte(nil), r.take(r.uvarint())...)
	b.TotalDocs = r.uvarint()
	b.ShardDocs = r.uvarint()
	b.VocabSize = r.uvarint()
	b.ChunkBytes = r.uvarint()
	if !r.done() {
		return ingestBegin{}, errCorruptFrame
	}
	return b, nil
}

// begin response: configure status byte + uvarint count of chunks the
// daemon already holds durably for this session (zero on a fresh one).
func encodeIngestBeginResp(status byte, held uint64) []byte {
	return binary.AppendUvarint([]byte{status}, held)
}

func decodeIngestBeginResp(resp []byte) (status byte, held uint64, err error) {
	r := &wireReader{buf: resp}
	status = r.byte()
	held = r.uvarint()
	if !r.done() {
		return 0, 0, errCorruptFrame
	}
	return status, held, nil
}

// ingestOffer advertises one window of upcoming chunks by digest:
// Digests[i] belongs to sequence number FirstSeq+i.
type ingestOffer struct {
	Session  uint64
	FirstSeq uint64
	Digests  []uint64
}

func encodeIngestOffer(o ingestOffer) []byte {
	buf := []byte{ingestFrameOffer}
	buf = binary.AppendUvarint(buf, o.Session)
	buf = binary.AppendUvarint(buf, o.FirstSeq)
	buf = binary.AppendUvarint(buf, uint64(len(o.Digests)))
	for _, d := range o.Digests {
		buf = binary.AppendUvarint(buf, d)
	}
	return buf
}

func decodeIngestOffer(body []byte) (ingestOffer, error) {
	r := &wireReader{buf: body}
	var o ingestOffer
	o.Session = r.uvarint()
	o.FirstSeq = r.uvarint()
	n := r.uvarint()
	// Every digest costs at least one byte, so a count beyond the
	// remaining input is corrupt — and cannot buy a large allocation.
	if r.bad || n > uint64(len(body)-r.off) {
		return ingestOffer{}, errCorruptFrame
	}
	o.Digests = make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		o.Digests = append(o.Digests, r.uvarint())
	}
	if !r.done() {
		return ingestOffer{}, errCorruptFrame
	}
	return o, nil
}

// offer response: the sequence numbers the daemon wants (it lacks them,
// or holds different bytes — the latter is rejected at chunk time).
func encodeIngestWants(wants []uint64) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(wants)))
	for _, s := range wants {
		buf = binary.AppendUvarint(buf, s)
	}
	return buf
}

func decodeIngestWants(resp []byte) ([]uint64, error) {
	r := &wireReader{buf: resp}
	n := r.uvarint()
	if r.bad || n > uint64(len(resp)-r.off) {
		return nil, errCorruptFrame
	}
	wants := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		wants = append(wants, r.uvarint())
	}
	if !r.done() {
		return nil, errCorruptFrame
	}
	return wants, nil
}

// ingestChunk ships one chunk. The CRC covers the payload; an
// acknowledged chunk is durably held (with fsync=always it survives
// SIGKILL), which is what makes "acked chunks are never re-shipped"
// a resume invariant rather than a hope.
type ingestChunk struct {
	Session uint64
	Seq     uint64
	Payload []byte
}

func encodeIngestChunk(c ingestChunk) []byte {
	buf := []byte{ingestFrameChunk}
	buf = binary.AppendUvarint(buf, c.Session)
	buf = binary.AppendUvarint(buf, c.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(c.Payload))
	return append(buf, c.Payload...)
}

func decodeIngestChunk(body []byte) (ingestChunk, error) {
	r := &wireReader{buf: body}
	var c ingestChunk
	c.Session = r.uvarint()
	c.Seq = r.uvarint()
	crcBytes := r.take(4)
	c.Payload = r.rest()
	if r.bad {
		return ingestChunk{}, errCorruptFrame
	}
	if crc32.ChecksumIEEE(c.Payload) != binary.LittleEndian.Uint32(crcBytes) {
		return ingestChunk{}, errCorruptFrame
	}
	return c, nil
}

// ingestCommit closes a session: the daemon verifies it holds exactly
// Chunks chunks whose digests fold to Digest, then materializes the
// shard (and, on the degenerate configure-only session, just the store).
type ingestCommit struct {
	Session uint64
	Chunks  uint64
	Digest  uint64
}

func encodeIngestCommit(c ingestCommit) []byte {
	buf := []byte{ingestFrameCommit}
	buf = binary.AppendUvarint(buf, c.Session)
	buf = binary.AppendUvarint(buf, c.Chunks)
	return binary.AppendUvarint(buf, c.Digest)
}

func decodeIngestCommit(body []byte) (ingestCommit, error) {
	r := &wireReader{buf: body}
	var c ingestCommit
	c.Session = r.uvarint()
	c.Chunks = r.uvarint()
	c.Digest = r.uvarint()
	if !r.done() {
		return ingestCommit{}, errCorruptFrame
	}
	return c, nil
}

// --- chunk payload contents ---------------------------------------------

// encodeMetaChunk frames one vocabulary range [firstTerm, firstTerm+len):
// per term, its string and collection frequency.
func encodeMetaChunk(firstTerm int, terms []string, freqs []int) []byte {
	buf := []byte{chunkKindMeta}
	buf = binary.AppendUvarint(buf, uint64(firstTerm))
	buf = binary.AppendUvarint(buf, uint64(len(terms)))
	for i, t := range terms {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
		buf = binary.AppendUvarint(buf, uint64(freqs[i]))
	}
	return buf
}

// decodeMetaChunk installs a vocabulary range into vocab/freqs (both
// sized to the session's VocabSize by the caller).
func decodeMetaChunk(body []byte, vocab []string, freqs []int) error {
	r := &wireReader{buf: body}
	first := r.uvarint()
	n := r.uvarint()
	if r.bad || n > uint64(len(body)-r.off) || first+n > uint64(len(vocab)) {
		return errCorruptFrame
	}
	for i := uint64(0); i < n; i++ {
		term := r.take(r.uvarint())
		f := r.uvarint()
		if r.bad {
			return errCorruptFrame
		}
		vocab[first+i] = string(term)
		freqs[first+i] = int(f)
	}
	if !r.done() {
		return errCorruptFrame
	}
	return nil
}

// encodeDocsChunkDoc appends one document to a docs chunk under
// construction (the chunk starts as []byte{chunkKindDocs, 0} — the
// count is fixed up by finishDocsChunk... no: counts are uvarint). To
// keep encoding single-pass the docs chunk carries documents
// back-to-back with a trailing sentinel-free format: each document is
// [uvarint id][uvarint nterms][terms...], and decoding consumes until
// the chunk is exhausted.
func encodeDocsChunkDoc(buf []byte, d corpus.Document) []byte {
	buf = binary.AppendUvarint(buf, uint64(d.ID))
	buf = binary.AppendUvarint(buf, uint64(len(d.Terms)))
	for _, t := range d.Terms {
		buf = binary.AppendUvarint(buf, uint64(t))
	}
	return buf
}

// newDocsChunk starts an empty docs chunk payload.
func newDocsChunk() []byte { return []byte{chunkKindDocs} }

// decodeDocsChunk appends the chunk's documents to docs, validating
// every term id against vocabSize.
func decodeDocsChunk(body []byte, vocabSize uint64, docs []corpus.Document) ([]corpus.Document, error) {
	r := &wireReader{buf: body}
	for !r.bad && r.off < len(r.buf) {
		id := r.uvarint()
		n := r.uvarint()
		// A term costs at least one byte.
		if r.bad || n > uint64(len(body)-r.off) {
			return nil, errCorruptFrame
		}
		terms := make([]corpus.TermID, 0, n)
		for i := uint64(0); i < n; i++ {
			t := r.uvarint()
			if t >= vocabSize {
				return nil, errCorruptFrame
			}
			terms = append(terms, corpus.TermID(t))
		}
		if r.bad {
			return nil, errCorruptFrame
		}
		docs = append(docs, corpus.Document{ID: corpus.DocID(id), Terms: terms})
	}
	if !r.done() {
		return nil, errCorruptFrame
	}
	return docs, nil
}

// --- hdk.build frames ----------------------------------------------------

// Build round states, as reported by buildFrameRoundStatus responses and
// the coordinator's cluster.info build_state field.
const (
	buildIdle    = 0x00
	buildRunning = 0x01
	buildDone    = 0x02
	buildFailed  = 0x03
)

func encodeBuildStart() []byte { return []byte{buildFrameStart} }

func encodeBuildRound(size int) []byte {
	return binary.AppendUvarint([]byte{buildFrameRound}, uint64(size))
}

func encodeBuildRoundStatus(size int) []byte {
	return binary.AppendUvarint([]byte{buildFrameRoundStatus}, uint64(size))
}

func encodeBuildFinish() []byte { return []byte{buildFrameFinish} }

func decodeBuildSize(body []byte) (int, error) {
	r := &wireReader{buf: body}
	size := r.uvarint()
	if !r.done() || size < 1 {
		return 0, errCorruptFrame
	}
	return int(size), nil
}

// round status response: state byte, postings inserted, error string.
func encodeRoundStatusResp(state byte, inserted uint64, errMsg string) []byte {
	buf := binary.AppendUvarint([]byte{state}, inserted)
	buf = binary.AppendUvarint(buf, uint64(len(errMsg)))
	return append(buf, errMsg...)
}

func decodeRoundStatusResp(resp []byte) (state byte, inserted uint64, errMsg string, err error) {
	r := &wireReader{buf: resp}
	state = r.byte()
	inserted = r.uvarint()
	msg := r.take(r.uvarint())
	if !r.done() || state > buildFailed {
		return 0, 0, "", errCorruptFrame
	}
	return state, inserted, string(msg), nil
}
