package cluster

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/rank"
	"repro/internal/transport"
)

// newDurableServer binds one daemon server with a durable data dir.
func newDurableServer(t *testing.T, tr transport.Transport, listen, dir string, replicas int) *Server {
	t.Helper()
	d, err := durable.Open(dir, durable.Options{Fsync: durable.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(tr, listen, replicas)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableDurability(d); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestClusterWarmRestartWithMissedWrites is the warm-rejoin lifecycle
// over real sockets in one test process: a durable daemon is crashed
// (transport yanked, data dir left behind), the surviving cluster keeps
// WRITING (an incremental index update the dead member never sees), and
// the daemon then restarts from its data dir on the same address. The
// restored store plus the delta catch-up must make the full cluster
// byte-identical to the survivors' post-update state — with zero insert
// RPCs against the restarted daemon.
func TestClusterWarmRestartWithMissedWrites(t *testing.T) {
	const peers, replicas = 4, 3
	col := testCollection(t, 120)
	built := col.Slice(0, 100)
	cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: built.M(), AvgDocLen: built.AvgDocLen()})
	cfg.DFMax = 8
	cfg.Window = 8
	cfg.ReplicationFactor = replicas

	dataRoot := t.TempDir()
	servers := make([]*Server, peers)
	trs := make([]*transport.TCP, peers)
	byAddr := make(map[string]int)
	for i := range servers {
		trs[i] = transport.NewTCP()
		defer trs[i].Close()
		servers[i] = newDurableServer(t, trs[i], "127.0.0.1:0",
			filepath.Join(dataRoot, fmt.Sprintf("node%d", i)), replicas)
		if i > 0 {
			if err := servers[i].Join(servers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		byAddr[servers[i].Addr()] = i
	}

	ctr := transport.NewTCP()
	defer ctr.Close()
	c, err := Connect(ctr, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(c, cfg, built.Vocab, built.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	members := c.Members()
	peerByAddr := make(map[string]*core.Peer)
	for i, part := range built.SplitRoundRobin(len(members)) {
		p, err := eng.AddPeer(members[i], part)
		if err != nil {
			t.Fatal(err)
		}
		peerByAddr[members[i].Addr()] = p
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	queries := testQueries(built, 15)
	origin := c.Members()[0]

	// Crash the daemon that owns the first query's first term: its keys
	// are guaranteed probes, so the post-restart sweep exercises the
	// restored store.
	victim, ok := c.OwnerOf(built.Vocab[queries[0].Terms[0]])
	if !ok {
		t.Fatal("empty membership")
	}
	vi := byAddr[victim.Addr()]
	trs[vi].Close()

	// The operator removes the dead member; the cluster keeps living:
	// 20 more documents arrive at a surviving peer and are indexed
	// incrementally. The victim's data dir never sees these writes.
	if err := eng.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	var survivorPeer *core.Peer
	for addr, p := range peerByAddr {
		if addr != victim.Addr() {
			survivorPeer = p
			break
		}
	}
	if err := survivorPeer.AddDocuments(col.Slice(100, 120)); err != nil {
		t.Fatal(err)
	}
	if err := eng.UpdateIndex(); err != nil {
		t.Fatalf("incremental update with a crashed member removed: %v", err)
	}
	postUpdate := make([][]rank.Result, len(queries))
	for i, q := range queries {
		res, err := eng.Search(q, origin, 10)
		if err != nil {
			t.Fatal(err)
		}
		postUpdate[i] = res.Results
	}

	// Warm restart on the ORIGINAL address from the data dir.
	tr2 := transport.NewTCP()
	defer tr2.Close()
	restarted := newDurableServer(t, tr2, victim.Addr(),
		filepath.Join(dataRoot, fmt.Sprintf("node%d", vi)), replicas)
	if !restarted.Warm() {
		t.Fatal("restarted daemon did not restore state from its data dir")
	}
	if !restarted.Store().Populated() {
		t.Fatal("restored store is empty")
	}
	seed := servers[(vi+1)%peers].Addr()
	if err := restarted.Join(seed); err != nil {
		t.Fatal(err)
	}
	st, err := restarted.CatchUp()
	if err != nil {
		t.Fatalf("warm-rejoin catch-up: %v", err)
	}
	if st.Stale == 0 || st.CopiesPulled == 0 {
		t.Fatalf("catch-up pulled nothing despite missed writes: %+v", st)
	}
	if total := restarted.Store().KeyCount(); st.CopiesPulled >= total {
		t.Fatalf("catch-up pulled %d of %d keys — that is a full re-replication, not a delta", st.CopiesPulled, total)
	}
	if got := restarted.InsertRPCs(); got != 0 {
		t.Fatalf("restarted daemon served %d insert RPCs — the index was re-built, not restored", got)
	}

	// A fresh client discovering the full 4-member cluster must see the
	// survivors' post-update results bit for bit — whether a probe lands
	// on a survivor or on the restarted store — and full replica
	// coverage at R.
	c2, err := Connect(ctr, seed)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Size() != peers {
		t.Fatalf("fresh client sees %d members, want %d", c2.Size(), peers)
	}
	eng2, err := core.NewEngine(c2, cfg, built.Vocab, built.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res, err := eng2.Search(q, c2.Members()[0], 10)
		if err != nil {
			t.Fatalf("query %d after restart: %v", i, err)
		}
		if !reflect.DeepEqual(postUpdate[i], res.Results) {
			t.Fatalf("query %d: results diverged after warm restart\nwant: %v\ngot:  %v",
				i, postUpdate[i], res.Results)
		}
	}
	if under := c2.Audit(replicas).UnderReplicated; under != 0 {
		t.Fatalf("%d keys under-replicated after warm rejoin + catch-up", under)
	}

	// The daemon self-describes its warm state for operators.
	info, err := FetchInfo(ctr, victim.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Warm || info.InsertRPCs != 0 || info.CatchUpPulled != st.CopiesPulled || info.Keys == 0 {
		t.Fatalf("info after warm restart = %+v", info)
	}
}

// TestClusterPersistShutdownSealsSnapshot: a graceful shutdown compacts
// the op log into a snapshot, and a fresh server restores the identical
// store from it with zero ops to replay.
func TestClusterPersistShutdownSealsSnapshot(t *testing.T) {
	const peers = 2
	col := testCollection(t, 60)
	cfg := testConfig(col, 1)
	dir0 := t.TempDir()

	tr := transport.NewInProc()
	defer tr.Close()
	servers := make([]*Server, peers)
	for i := range servers {
		var err error
		servers[i], err = NewServer(tr, fmt.Sprintf("node-%d", i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := servers[i].Join(servers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	d0, err := durable.Open(dir0, durable.Options{Fsync: durable.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := servers[0].EnableDurability(d0); err != nil {
		t.Fatal(err)
	}

	c, err := Connect(tr, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	eng := buildClusterEngine(t, c, col, cfg)
	_ = eng
	wantKeys := servers[0].Store().KeyCount()
	if wantKeys == 0 {
		t.Fatal("node-0 store empty after build")
	}

	if err := servers[0].PersistShutdown(); err != nil {
		t.Fatal(err)
	}

	// The sealed dir: one snapshot generation, an empty op log, the
	// configuration record leading the snapshot.
	re, err := durable.Open(dir0, durable.Options{Fsync: durable.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Ops()) != 0 {
		t.Fatalf("%d ops left after graceful shutdown, want 0 (sealed into snapshot)", len(re.Ops()))
	}
	snap := re.Snapshot()
	// Configuration arrives as a degenerate ingest session now, so the
	// self-contained snapshot leads with that session's begin record.
	if len(snap) == 0 || snap[0].Kind != durIngestBegin {
		t.Fatalf("snapshot does not lead with the ingest-begin (configuration) record: %d records", len(snap))
	}

	// A fresh server process restores the identical store from it.
	tr2 := transport.NewInProc()
	defer tr2.Close()
	srv2, err := NewServer(tr2, "node-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.EnableDurability(re); err != nil {
		t.Fatal(err)
	}
	if !srv2.Warm() {
		t.Fatal("server restored from sealed snapshot is not warm")
	}
	if got := srv2.Store().KeyCount(); got != wantKeys {
		t.Fatalf("restored store holds %d keys, want %d", got, wantKeys)
	}
	if got := srv2.Store().Config(); got != cfg {
		t.Fatalf("restored configuration %+v, want %+v", got, cfg)
	}
}
