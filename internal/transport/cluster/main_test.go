package cluster

import (
	"os"
	"testing"

	"repro/internal/lint/leakcheck"
)

// Cluster tests start servers, clients and (in the e2e suite) daemon
// subprocesses; leakcheck fails the run if any in-process goroutine —
// a serving loop, an ingest session, a repairer — survives them.
func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
