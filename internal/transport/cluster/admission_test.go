package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// waitQueued polls the server's admitted-coordination counter until it
// reaches want.
func waitQueued(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.amu.Lock()
		got := s.searchQueued
		s.amu.Unlock()
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("searchQueued = %d, want %d", got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmitSearchBounds drives admitSearch through its three outcomes
// at several worker/queue sizes: immediate admission while a worker is
// free, a bounded wait while only queue slots are free, and an
// immediate shed with a positive retry-after hint past both.
func TestAdmitSearchBounds(t *testing.T) {
	cases := []struct{ workers, queue int }{
		{1, 0},
		{2, 2},
		{1, 3},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("w%dq%d", tc.workers, tc.queue), func(t *testing.T) {
			tr := transport.NewInProc()
			defer tr.Close()
			s, err := NewServer(tr, "node-a", 1)
			if err != nil {
				t.Fatal(err)
			}
			s.ConfigureSearch(tc.workers, tc.queue, -1)

			// Worker slots admit without blocking.
			releases := make([]func(), 0, tc.workers)
			for i := 0; i < tc.workers; i++ {
				rel, _ := s.admitSearch()
				if rel == nil {
					t.Fatalf("admit %d shed with all workers free", i)
				}
				releases = append(releases, rel)
			}
			// Queue slots admit but wait for a worker.
			queued := make(chan func(), tc.queue)
			for i := 0; i < tc.queue; i++ {
				go func() {
					rel, _ := s.admitSearch()
					queued <- rel
				}()
			}
			waitQueued(t, s, tc.workers+tc.queue)
			// Past workers+queue: immediate shed, positive hint.
			rel, retry := s.admitSearch()
			if rel != nil {
				rel()
				t.Fatal("over-limit request admitted, want shed")
			}
			if retry <= 0 {
				t.Fatalf("shed without a positive retry-after hint (%v)", retry)
			}
			// Releasing the workers lets every queued request through.
			for _, r := range releases {
				r()
			}
			for i := 0; i < tc.queue; i++ {
				r := <-queued
				if r == nil {
					t.Fatalf("queued admit %d was shed", i)
				}
				r()
			}
			waitQueued(t, s, 0)
			// Idle again: the next request is admitted immediately.
			if rel, _ := s.admitSearch(); rel == nil {
				t.Fatal("post-drain request shed on an idle server")
			} else {
				rel()
			}
		})
	}
}

// TestConfigureSearchResizeDoesNotStrand is the regression test for the
// resize bug: a coordination that acquired a permit before
// ConfigureSearch swapped the semaphore must release into the OLD
// channel (the closure binds it), not block on — or poison — the new
// one.
func TestConfigureSearchResizeDoesNotStrand(t *testing.T) {
	tr := transport.NewInProc()
	defer tr.Close()
	s, err := NewServer(tr, "node-a", 1)
	if err != nil {
		t.Fatal(err)
	}
	s.ConfigureSearch(1, 0, -1)
	rel, _ := s.admitSearch() // holds the only pre-resize permit
	s.ConfigureSearch(2, 0, -1)

	// With the old code (release read s.searchSem at run time) this
	// receive targets the NEW, empty channel and blocks forever.
	released := make(chan struct{})
	go func() {
		rel()
		close(released)
	}()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("release after resize blocked — permit returned to the wrong pool")
	}
	waitQueued(t, s, 0)

	// The new pool serves its full capacity, and not more.
	r1, _ := s.admitSearch()
	r2, _ := s.admitSearch()
	if r1 == nil || r2 == nil {
		t.Fatal("resized pool shed within its worker capacity")
	}
	if r3, _ := s.admitSearch(); r3 != nil {
		r3()
		t.Fatal("resized pool admitted past workers+queue")
	}
	r1()
	r2()
	waitQueued(t, s, 0)
}

// admissionCluster boots a configured 2-daemon in-proc cluster with a
// built index and returns a ready search request for it.
func admissionCluster(t *testing.T) (tr transport.Transport, servers []*Server, c *Client, req core.SearchRequest) {
	t.Helper()
	col := testCollection(t, 60)
	cfg := testConfig(col, 1)
	inproc := transport.NewInProc()
	t.Cleanup(func() { inproc.Close() })
	servers = startInProcServers(t, inproc, 2, 1)
	var err error
	c, err = Connect(inproc, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	eng := buildClusterEngine(t, c, col, cfg)
	q := testQueries(col, 1)[0]
	req = core.SearchRequest{Terms: eng.QueryTerms(q), K: 10, NoCache: true}
	return inproc, servers, c, req
}

// TestSearchOverloadOverWire pins the shed path end to end: a daemon
// with its worker pool saturated rejects a search over the wire with a
// typed, errors.Is-matchable overload error carrying a positive
// retry-after hint, counts the rejection in cluster.info, serves cache
// hits anyway (admission guards coordination work, not cache reads),
// and accepts again once capacity frees up.
func TestSearchOverloadOverWire(t *testing.T) {
	tr, servers, c, req := admissionCluster(t)
	s := servers[0]
	s.ConfigureSearch(1, 0, -1)

	// Warm the result cache while capacity is free.
	cacheable := req
	cacheable.NoCache = false
	warm, cached, err := c.TrySearchVia(s.Addr(), cacheable)
	if err != nil || cached {
		t.Fatalf("cache warm-up: err=%v cached=%v", err, cached)
	}

	rel, _ := s.admitSearch() // saturate the single worker
	_, _, err = c.TrySearchVia(s.Addr(), req)
	var ov *core.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("saturated daemon returned %v, want *core.OverloadError", err)
	}
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatal("overload error not matchable via errors.Is(err, core.ErrOverloaded)")
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("rejection carried hint %v, want positive", ov.RetryAfter)
	}

	// Cache hits bypass admission even while saturated.
	got, cached, err := c.TrySearchVia(s.Addr(), cacheable)
	if err != nil || !cached {
		t.Fatalf("cached search under saturation: err=%v cached=%v", err, cached)
	}
	if len(got.Results) != len(warm.Results) {
		t.Fatal("cached answer diverges under saturation")
	}

	info, err := FetchInfo(tr, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if info.SearchRejected != 1 {
		t.Fatalf("info.SearchRejected = %d, want 1", info.SearchRejected)
	}

	rel()
	if _, _, err := c.TrySearchVia(s.Addr(), req); err != nil {
		t.Fatalf("search after capacity freed: %v", err)
	}
}

// TestSearchViaBacksOffOnOverload pins the client side of the
// contract: SearchVia keeps retrying a shedding daemon, sleeping at
// least the daemon's hint per rejection, and succeeds once capacity
// frees; against a daemon that never recovers it surfaces the overload
// error after exactly searchBackoffAttempts attempts.
func TestSearchViaBacksOffOnOverload(t *testing.T) {
	tr, servers, c, req := admissionCluster(t)
	s := servers[0]
	s.ConfigureSearch(1, 0, -1)

	rejectedAt := func() uint64 {
		info, err := FetchInfo(tr, s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return info.SearchRejected
	}

	rel, _ := s.admitSearch()
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.SearchVia(s.Addr(), req)
		done <- err
	}()
	// Let the daemon shed at least two attempts before freeing
	// capacity: the client must have backed off twice.
	deadline := time.Now().Add(5 * time.Second)
	for rejectedAt() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("client never retried against the saturated daemon")
		}
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-done; err != nil {
		t.Fatalf("SearchVia after recovery: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*searchRetryAfter {
		t.Fatalf("two rejections cost %v, want >= %v of backoff", elapsed, 2*searchRetryAfter)
	}

	// Never-recovering daemon: the overload surfaces after exactly
	// searchBackoffAttempts attempts.
	before := rejectedAt()
	rel2, _ := s.admitSearch()
	defer rel2()
	_, _, err := c.SearchVia(s.Addr(), req)
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("exhausted backoff returned %v, want ErrOverloaded", err)
	}
	if got := rejectedAt() - before; got != searchBackoffAttempts {
		t.Fatalf("exhaustion cost %d rejections, want %d", got, searchBackoffAttempts)
	}
}

// TestSearchConfigureSearchRace hammers SearchVia from concurrent
// clients while ConfigureSearch keeps resizing the worker pool, the
// admission queue and the result cache — the scenario the release-
// closure design exists for. Run under -race this doubles as a data-
// race check; in any mode it must neither deadlock nor strand permits.
func TestSearchConfigureSearchRace(t *testing.T) {
	_, servers, c, req := admissionCluster(t)
	addrs := []string{servers[0].Addr(), servers[1].Addr()}

	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := req
			for j := 0; j < 25; j++ {
				r.NoCache = j%2 == 0
				_, _, err := c.SearchVia(addrs[(w+j)%len(addrs)], r)
				// A shed under a tiny transient queue is legitimate;
				// anything else is a bug.
				if err != nil && !errors.Is(err, core.ErrOverloaded) {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for _, s := range servers {
			s.ConfigureSearch(1+i%4, i%3, (i%2)*64)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", w, err)
		}
	}
	// Quiescent cluster: every permit came home.
	for _, s := range servers {
		waitQueued(t, s, 0)
		if rel, _ := s.admitSearch(); rel == nil {
			t.Fatal("idle post-race server sheds")
		} else {
			rel()
		}
	}
}

// TestConfigureSearchViaOverWire pins the cluster.searchconfig RPC: a
// live resize shipped through the client must take effect on the
// daemon's admission path (shedding once shrunk, accepting again once
// grown back), keep-current sentinels must leave settings untouched,
// and a malformed payload must be rejected.
func TestConfigureSearchViaOverWire(t *testing.T) {
	_, servers, c, req := admissionCluster(t)
	s := servers[0]

	if err := c.ConfigureSearchVia(s.Addr(), 1, 0, -1); err != nil {
		t.Fatal(err)
	}
	s.amu.Lock()
	workers, queue := cap(s.searchSem), s.searchQueueCap
	s.amu.Unlock()
	if workers != 1 || queue != 0 {
		t.Fatalf("after resize: workers=%d queue=%d, want 1/0", workers, queue)
	}

	// Keep-current sentinels must not disturb the resized settings.
	if err := c.ConfigureSearchVia(s.Addr(), 0, -1, -1); err != nil {
		t.Fatal(err)
	}
	s.amu.Lock()
	workers, queue = cap(s.searchSem), s.searchQueueCap
	s.amu.Unlock()
	if workers != 1 || queue != 0 {
		t.Fatalf("keep-current resize drifted: workers=%d queue=%d, want 1/0", workers, queue)
	}

	// The shrunk daemon sheds while its single worker is busy...
	rel, _ := s.admitSearch()
	_, _, err := c.TrySearchVia(s.Addr(), req)
	var ov *core.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("shrunk daemon returned %v, want *core.OverloadError", err)
	}
	// ...and a wire resize back up restores capacity mid-saturation.
	if err := c.ConfigureSearchVia(s.Addr(), 4, 8, -1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.TrySearchVia(s.Addr(), req); err != nil {
		t.Fatalf("search after wire-grown capacity: %v", err)
	}
	rel()

	if _, err := c.CallService(s.Addr(), ctrlSearchConfig, []byte("{not json")); err == nil {
		t.Fatal("malformed search config accepted")
	}
}
