package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// Server-side hdk.build: daemons run the round-synchronous collaborative
// indexing themselves, over the shards hdk.ingest delivered. Any daemon
// can coordinate — it fans the round out to every member (itself
// included, over loopback, so all shards take the identical path), polls
// until the round barrier holds, runs the classification sweep with its
// own engine, and repeats through SMax. Rounds can outlast the RPC
// timeout by orders of magnitude, so every long-running step is an
// asynchronous kick-off plus cheap status polls; per-round progress is
// surfaced through cluster.info and the telemetry registry.

// buildPollInterval paces the coordinator's round-barrier status polls.
const buildPollInterval = 50 * time.Millisecond

// serverBuild is one daemon's build-path state: the lazily constructed
// engine hosting its shard's peer, the per-round worker states, and the
// coordinator state machine (only the daemon that received hdk.build
// start runs the latter).
type serverBuild struct {
	mu sync.Mutex

	eng  *core.Engine
	peer *core.Peer

	rounds   map[int]byte   // worker: round size -> buildRunning/Done/Failed
	roundErr map[int]string // worker: round size -> failure message
	round    int            // latest round this daemon has touched (either role)

	coordState byte // coordinator state machine (buildIdle before start)
	coordErr   string
}

// buildEngine lazily constructs the daemon's build engine: its
// coordination fabric with every member's store remote (the daemon's own
// included — self-inserts travel the loopback RPC path, so they are
// metered, durably logged and cache-invalidated exactly like everyone
// else's), plus one peer hosting the ingested shard. The peer's notify
// handler is also registered on the daemon's own dispatch, so an
// EXTERNAL coordinator's expansion notifications reach it over the wire.
func (s *Server) buildEngine() (*core.Engine, *core.Peer, error) {
	b := &s.build
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.eng != nil {
		return b.eng, b.peer, nil
	}
	s.mu.Lock()
	store, shard, freqs := s.store, s.shard, s.shardFreqs
	s.mu.Unlock()
	if store == nil {
		return nil, nil, fmt.Errorf("cluster: %s not configured", s.addr)
	}
	if shard == nil {
		return nil, nil, fmt.Errorf("cluster: %s holds no ingested corpus shard", s.addr)
	}
	fab, self, err := s.coordinationFabric()
	if err != nil {
		return nil, nil, err
	}
	eng, err := core.NewEngine(fab, store.Config(), shard.Vocab, freqs)
	if err != nil {
		return nil, nil, err
	}
	peer, err := eng.AddPeer(self, shard)
	if err != nil {
		return nil, nil, err
	}
	// The fabric's self stub got the notify handler (in-process delivery
	// for a self-coordinated build); this registration is the remote
	// road in — another daemon's coordinator reaches this peer through
	// plain dispatch.
	s.Handle(core.SvcNotify, peer.ServeNotify)
	b.eng, b.peer = eng, peer
	if b.rounds == nil {
		b.rounds = make(map[int]byte)
		b.roundErr = make(map[int]string)
	}
	return eng, peer, nil
}

// handleBuild dispatches one hdk.build frame.
func (s *Server) handleBuild(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, errCorruptFrame
	}
	body := payload[1:]
	switch payload[0] {
	case buildFrameStart:
		return s.handleBuildStart()
	case buildFrameRound:
		size, err := decodeBuildSize(body)
		if err != nil {
			return nil, err
		}
		return nil, s.handleBuildRound(size)
	case buildFrameRoundStatus:
		size, err := decodeBuildSize(body)
		if err != nil {
			return nil, err
		}
		return s.handleBuildRoundStatus(size)
	case buildFrameFinish:
		return nil, s.handleBuildFinish()
	}
	return nil, errCorruptFrame
}

// handleBuildRound starts this daemon's candidate-generation + insert
// pass for round size (idempotent: a duplicate frame for a round already
// running or finished just acks). The pass runs in a goroutine — rounds
// outlast the RPC timeout — and the coordinator polls its status.
func (s *Server) handleBuildRound(size int) error {
	eng, peer, err := s.buildEngine()
	if err != nil {
		return err
	}
	b := &s.build
	b.mu.Lock()
	if _, started := b.rounds[size]; started {
		b.mu.Unlock()
		return nil
	}
	b.rounds[size] = buildRunning
	if size > b.round {
		b.round = size
	}
	b.mu.Unlock()
	go func() {
		err := eng.IndexPeerRound(peer, size)
		b.mu.Lock()
		if err != nil {
			b.rounds[size] = buildFailed
			b.roundErr[size] = err.Error()
		} else {
			b.rounds[size] = buildDone
		}
		b.mu.Unlock()
		s.metrics.buildRounds.Inc()
	}()
	return nil
}

// handleBuildRoundStatus reports one round's worker state plus the
// store's resident key count (the coordinator's progress proxy).
func (s *Server) handleBuildRoundStatus(size int) ([]byte, error) {
	b := &s.build
	b.mu.Lock()
	state, ok := b.rounds[size]
	msg := b.roundErr[size]
	b.mu.Unlock()
	if !ok {
		state = buildIdle
	}
	var keys uint64
	s.mu.Lock()
	if s.store != nil {
		keys = uint64(s.store.KeyCount())
	}
	s.mu.Unlock()
	return encodeRoundStatusResp(state, keys, msg), nil
}

// handleBuildFinish runs the build epilogue for this daemon's own peer
// (freshness reset, watermark advance). Synchronous — it touches no
// other process and finishes in microseconds.
func (s *Server) handleBuildFinish() error {
	eng, _, err := s.buildEngine()
	if err != nil {
		return err
	}
	eng.FinishBuild()
	return nil
}

// handleBuildStart makes this daemon the build coordinator. The response
// is immediate — the orchestration runs in a goroutine and the client
// polls cluster.info — and carries the coordinator state, so a repeated
// start (reconnecting client) observes the running/finished build
// instead of forking a second one.
func (s *Server) handleBuildStart() ([]byte, error) {
	if _, _, err := s.buildEngine(); err != nil {
		return nil, err
	}
	b := &s.build
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.coordState {
	case buildRunning, buildDone, buildFailed:
		return []byte{b.coordState}, nil
	}
	b.coordState = buildRunning
	go s.coordinateBuild()
	return []byte{buildRunning}, nil
}

// coordinateBuild drives the full round-synchronous build from this
// daemon: for s = 1..SMax, every member (self included) indexes its
// shard for size s, the barrier holds when all report done, then the
// classification sweep + notify delivery runs — the exact loop
// core.Engine.BuildIndex runs in-process, with the per-peer quarter
// executed by the shard-owning daemons.
func (s *Server) coordinateBuild() {
	b := &s.build
	fail := func(err error) {
		b.mu.Lock()
		b.coordState = buildFailed
		b.coordErr = err.Error()
		b.mu.Unlock()
	}
	eng, _, err := s.buildEngine()
	if err != nil {
		fail(err)
		return
	}
	fab := eng.Network()
	addrs := make([]string, 0, fab.Size())
	for _, m := range fab.Members() {
		addrs = append(addrs, m.Addr())
	}
	smax := eng.Config().SMax
	for size := 1; size <= smax; size++ {
		b.mu.Lock()
		b.round = size
		b.mu.Unlock()
		roundStart := time.Now()
		for _, addr := range addrs {
			if _, err := fab.CallService(addr, SvcBuild, encodeBuildRound(size)); err != nil {
				fail(fmt.Errorf("cluster: build round %d at %s: %w", size, addr, err))
				return
			}
		}
		if err := s.awaitRound(fab, addrs, size); err != nil {
			fail(err)
			return
		}
		if err := eng.ClassifyRound(size); err != nil {
			fail(fmt.Errorf("cluster: build round %d classify: %w", size, err))
			return
		}
		s.metrics.buildRoundTime.ObserveDuration(time.Since(roundStart))
	}
	for _, addr := range addrs {
		if _, err := fab.CallService(addr, SvcBuild, encodeBuildFinish()); err != nil {
			fail(fmt.Errorf("cluster: build finish at %s: %w", addr, err))
			return
		}
	}
	b.mu.Lock()
	b.coordState = buildDone
	b.mu.Unlock()
}

// awaitRound polls every member until round size is done everywhere —
// the barrier that keeps classification strictly after the last insert
// of the round (the bit-identity invariant: inserts commute within a
// round, classification changes state only at sweep boundaries).
func (s *Server) awaitRound(fab interface {
	CallService(addr, service string, req []byte) ([]byte, error)
}, addrs []string, size int) error {
	pending := append([]string(nil), addrs...)
	for len(pending) > 0 {
		next := pending[:0]
		for _, addr := range pending {
			raw, err := fab.CallService(addr, SvcBuild, encodeBuildRoundStatus(size))
			if err != nil {
				return fmt.Errorf("cluster: build round %d status at %s: %w", size, addr, err)
			}
			state, _, msg, err := decodeRoundStatusResp(raw)
			if err != nil {
				return fmt.Errorf("cluster: build round %d status at %s: %w", size, addr, err)
			}
			switch state {
			case buildDone:
			case buildFailed:
				return fmt.Errorf("cluster: build round %d failed at %s: %s", size, addr, msg)
			default:
				next = append(next, addr)
			}
		}
		pending = next
		if len(pending) > 0 {
			time.Sleep(buildPollInterval)
		}
	}
	return nil
}

// buildProgress snapshots the daemon's build state for cluster.info:
// the coordinator state machine if this daemon coordinates, the worker
// view otherwise.
func (s *Server) buildProgress() (state string, round int, errMsg string) {
	b := &s.build
	b.mu.Lock()
	defer b.mu.Unlock()
	round = b.round
	names := map[byte]string{buildIdle: "idle", buildRunning: "running", buildDone: "done", buildFailed: "failed"}
	if b.coordState != buildIdle {
		return names[b.coordState], round, b.coordErr
	}
	if b.eng == nil {
		return "idle", 0, ""
	}
	// Worker view: failed if any round failed, running if any is in
	// flight, else done-so-far.
	st := byte(buildIdle)
	for size, rs := range b.rounds {
		switch rs {
		case buildFailed:
			return "failed", round, b.roundErr[size]
		case buildRunning:
			st = buildRunning
		case buildDone:
			if st == buildIdle {
				st = buildDone
			}
		}
	}
	return names[st], round, ""
}
