package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/durable"
	"repro/internal/transport"
)

// shardSource builds the IngestSource a thin client would stream for
// ring member idx of n: the documents SplitRoundRobin assigns to that
// member (doc j -> member j%n), with the collection-global vocabulary
// and frequencies. The iterator yields one document at a time — the
// test client never needs the shard resident either.
func shardSource(col *corpus.Collection, cfg core.Config, session uint64, idx, n int) IngestSource {
	part := col.SplitRoundRobin(n)[idx]
	i := 0
	return IngestSource{
		Session:   session,
		Config:    cfg,
		Vocab:     col.Vocab,
		TermFreqs: col.TermFrequencies(),
		TotalDocs: col.M(),
		ShardDocs: part.M(),
		Docs: func() (corpus.Document, bool) {
			if i >= len(part.Docs) {
				return corpus.Document{}, false
			}
			d := part.Docs[i]
			i++
			return d, true
		},
	}
}

// TestIngestRemoteBuildMatchesInProcess is the tentpole proof: a thin
// client that never holds the corpus streams each daemon its shard over
// hdk.ingest, any daemon coordinates the round-synchronous build over
// hdk.build, and the resulting cluster index matches the in-process
// single-engine reference — same store totals, same ranked results,
// same cost metrics. Along the way it checks the resume invariant (a
// re-sent session ships zero chunks) and the typed ingest guards.
func TestIngestRemoteBuildMatchesInProcess(t *testing.T) {
	const peers = 4
	col := testCollection(t, 120)
	cfg := testConfig(col, 1)
	ref := buildReferenceEngine(t, col, peers, cfg)

	tr := transport.NewInProc()
	defer tr.Close()
	servers := startInProcServers(t, tr, peers, 1)
	c, err := Dial(Options{Transport: tr, Seed: servers[0].Addr(), ChunkBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	members := c.Members()

	for i, m := range members {
		st, err := c.Ingest(m.Addr(), shardSource(col, cfg, 1, i, len(members)))
		if err != nil {
			t.Fatalf("ingest to %s: %v", m.Addr(), err)
		}
		if st.Chunks < 2 || st.ChunksSent != st.Chunks || st.ChunksSkipped != 0 {
			t.Fatalf("fresh ingest to %s: %+v", m.Addr(), st)
		}
	}

	// Resume invariant, pre-build: re-running the identical session must
	// re-ship nothing — the daemon holds every chunk and the digest
	// negotiation skips them all.
	st, err := c.Ingest(members[1].Addr(), shardSource(col, cfg, 1, 1, len(members)))
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksSent != 0 || st.ChunksSkipped != st.Chunks {
		t.Fatalf("resumed ingest re-shipped chunks: %+v", st)
	}

	// Any daemon coordinates — pick a non-seed one. Progress must
	// surface per-round through cluster.info.
	var lastInfo Info
	if err := c.BuildRemote(members[2].Addr(), func(info Info) { lastInfo = info }); err != nil {
		t.Fatalf("remote build: %v", err)
	}
	if lastInfo.BuildState != "done" || lastInfo.BuildRound != cfg.SMax {
		t.Fatalf("final build progress = state %q round %d, want done/%d",
			lastInfo.BuildState, lastInfo.BuildRound, cfg.SMax)
	}

	// A repeated start observes the finished build instead of forking a
	// second one (which would double every df).
	if err := c.BuildRemote(members[2].Addr(), nil); err != nil {
		t.Fatalf("idempotent build start: %v", err)
	}

	// Index content parity with the in-process reference.
	refStats := ref.Stats()
	nodeStats, err := c.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	posts, keys := 0, 0
	for _, ns := range nodeStats {
		posts += ns.Stats.PostsTotal()
		keys += ns.Stats.KeysTotal()
	}
	if posts != refStats.StoredTotal || keys != refStats.KeysTotal {
		t.Fatalf("remote build stores %d postings/%d keys, reference %d/%d",
			posts, keys, refStats.StoredTotal, refStats.KeysTotal)
	}

	// The built cluster refuses further sessions and divergent configs
	// with errors.Is-matchable rejections.
	if _, err := c.Ingest(members[0].Addr(), shardSource(col, cfg, 2, 0, len(members))); !errors.Is(err, ErrAlreadyBuilt) {
		t.Fatalf("ingest into built cluster: err = %v, want ErrAlreadyBuilt", err)
	}
	cfg2 := cfg
	cfg2.DFMax++
	if err := c.Configure(cfg2); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("divergent configure: err = %v, want ErrConfigMismatch", err)
	}

	// Ranked-result parity, coordinated by rotating daemons — the thin
	// client needs no engine to query either.
	refOrigin := ref.Network().Members()[0]
	for qi, q := range testQueries(col, 25) {
		want, err := ref.Search(q, refOrigin, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.SearchVia(members[qi%len(members)].Addr(),
			core.SearchRequest{Terms: ref.QueryTerms(q), K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Results, got.Results) {
			t.Fatalf("query %d: remote-built index diverges from reference\nref:    %v\nremote: %v",
				qi, want.Results, got.Results)
		}
		if got.FetchedPosts != want.FetchedPosts || got.ProbedKeys != want.ProbedKeys ||
			got.FoundKeys != want.FoundKeys {
			t.Fatalf("query %d: cost metrics diverge: ref %+v, remote %+v", qi, want, got)
		}
	}
}

// TestIngestShuffledChunksMatchBulkConfigure is the order-independence
// property test: feeding a session's chunks in a random permutation
// must materialize the exact shard the bulk fat-client configure path
// builds — proven byte-for-byte, per daemon, over the store export RPCs
// after both clusters run the same build.
func TestIngestShuffledChunksMatchBulkConfigure(t *testing.T) {
	const peers = 3
	col := testCollection(t, 90)
	cfg := testConfig(col, 1)

	// Cluster A: the fat-client path (bulk configure + client-run build).
	trA := transport.NewInProc()
	defer trA.Close()
	serversA := startInProcServers(t, trA, peers, 1)
	cA, err := Connect(trA, serversA[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	buildClusterEngine(t, cA, col, cfg)

	// Cluster B: identical member addresses on its own transport (so
	// ring placement is identical), shards delivered as hand-shuffled
	// chunk frames, build coordinated by a daemon.
	trB := transport.NewInProc()
	defer trB.Close()
	serversB := startInProcServers(t, trB, peers, 1)
	cB, err := Dial(Options{Transport: trB, Seed: serversB[0].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	membersB := cB.Members()
	byAddrB := make(map[string]*Server)
	for _, s := range serversB {
		byAddrB[s.Addr()] = s
	}
	rng := rand.New(rand.NewSource(41))
	for i, m := range membersB {
		srv := byAddrB[m.Addr()]
		src := shardSource(col, cfg, 3, i, len(membersB))
		gen := &chunkGen{src: src, target: 2 << 10}
		var chunks [][]byte
		var digests []uint64
		for {
			p, ok := gen.next()
			if !ok {
				break
			}
			chunks = append(chunks, p)
			digests = append(digests, chunkDigest(p))
		}
		if len(chunks) < 3 {
			t.Fatalf("shard %d packs into %d chunks — too few to shuffle meaningfully", i, len(chunks))
		}
		begin := ingestBegin{
			Session: 3, Config: cfgJSON,
			TotalDocs: uint64(src.TotalDocs), ShardDocs: uint64(src.ShardDocs),
			VocabSize: uint64(len(src.Vocab)), ChunkBytes: 2 << 10,
		}
		if _, err := srv.handleIngest(encodeIngestBegin(begin)); err != nil {
			t.Fatal(err)
		}
		for _, j := range rng.Perm(len(chunks)) {
			frame := encodeIngestChunk(ingestChunk{Session: 3, Seq: uint64(j), Payload: chunks[j]})
			if _, err := srv.handleIngest(frame); err != nil {
				t.Fatalf("shuffled chunk %d to %s: %v", j, m.Addr(), err)
			}
		}
		commit := ingestCommit{Session: 3, Chunks: uint64(len(chunks)), Digest: sessionDigest(digests)}
		if _, err := srv.handleIngest(encodeIngestCommit(commit)); err != nil {
			t.Fatalf("commit to %s: %v", m.Addr(), err)
		}
	}
	if err := cB.BuildRemote(membersB[0].Addr(), nil); err != nil {
		t.Fatalf("remote build over shuffled ingest: %v", err)
	}

	// Byte identity, daemon by daemon: same key sets, same exported
	// entry blobs.
	invA := core.RemoteInventory{Call: cA.CallService}
	invB := core.RemoteInventory{Call: cB.CallService}
	membersA := cA.Members()
	if len(membersA) != len(membersB) {
		t.Fatalf("membership sizes diverge: %d vs %d", len(membersA), len(membersB))
	}
	total := 0
	for k := range membersA {
		keysA := invA.Keys(membersA[k])
		keysB := invB.Keys(membersB[k])
		sort.Strings(keysA)
		sort.Strings(keysB)
		if !reflect.DeepEqual(keysA, keysB) {
			t.Fatalf("daemon %s: key sets diverge (%d vs %d keys)",
				membersA[k].Addr(), len(keysA), len(keysB))
		}
		for _, key := range keysA {
			blobA, okA := invA.Export(membersA[k], key)
			blobB, okB := invB.Export(membersB[k], key)
			if !okA || !okB || !bytes.Equal(blobA, blobB) {
				t.Fatalf("daemon %s key %q: exported entries diverge (okA=%v okB=%v, %d vs %d bytes)",
					membersA[k].Addr(), key, okA, okB, len(blobA), len(blobB))
			}
		}
		total += len(keysA)
	}
	if total == 0 {
		t.Fatal("no keys compared — build produced an empty index")
	}
}

// TestIngestDurableResumeSkipsAckedChunks covers the crash-resume half
// of the resume invariant in-process: a session interrupted after a few
// acked chunks, a daemon restarted from its durable dir, and a resumed
// upload that ships only the missing tail — then commits, builds and
// serves. (The SIGKILL variant over real sockets lives in the TCP e2e.)
func TestIngestDurableResumeSkipsAckedChunks(t *testing.T) {
	col := testCollection(t, 60)
	cfg := testConfig(col, 1)
	dir := t.TempDir()
	const session, target = 9, 2 << 10

	tr := transport.NewInProc()
	srv, err := NewServer(tr, "node-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := durable.Open(filepath.Join(dir, "n0"), durable.Options{Fsync: durable.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableDurability(d); err != nil {
		t.Fatal(err)
	}

	// Hand-feed begin + the first 3 chunks, then "crash" the daemon
	// (transport yanked, durable dir left behind).
	src := shardSource(col, cfg, session, 0, 1)
	gen := &chunkGen{src: src, target: target}
	var chunks [][]byte
	for {
		p, ok := gen.next()
		if !ok {
			break
		}
		chunks = append(chunks, p)
	}
	const held = 3
	if len(chunks) <= held {
		t.Fatalf("shard packs into %d chunks, need > %d", len(chunks), held)
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	begin := ingestBegin{
		Session: session, Config: cfgJSON,
		TotalDocs: uint64(src.TotalDocs), ShardDocs: uint64(src.ShardDocs),
		VocabSize: uint64(len(src.Vocab)), ChunkBytes: target,
	}
	if _, err := srv.handleIngest(encodeIngestBegin(begin)); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < held; j++ {
		frame := encodeIngestChunk(ingestChunk{Session: session, Seq: uint64(j), Payload: chunks[j]})
		if _, err := srv.handleIngest(frame); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the data dir; the replayed session must report the
	// held chunks at begin and pull only the missing tail.
	tr2 := transport.NewInProc()
	defer tr2.Close()
	srv2, err := NewServer(tr2, "node-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	re, err := durable.Open(filepath.Join(dir, "n0"), durable.Options{Fsync: durable.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.EnableDurability(re); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(Options{Transport: tr2, Seed: "node-0", ChunkBytes: target})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Ingest("node-0", shardSource(col, cfg, session, 0, 1))
	if err != nil {
		t.Fatalf("resumed ingest: %v", err)
	}
	if st.ChunksSkipped != held || st.ChunksSent != st.Chunks-held {
		t.Fatalf("resume re-shipped acked chunks: %+v (want %d skipped)", st, held)
	}
	if err := c.BuildRemote("node-0", nil); err != nil {
		t.Fatalf("build after resumed ingest: %v", err)
	}
	info, err := FetchInfo(tr2, "node-0")
	if err != nil {
		t.Fatal(err)
	}
	if info.Keys == 0 || info.BuildState != "done" {
		t.Fatalf("post-resume build info = %+v", info)
	}
}

// TestConfigureStillDegenerateIngest pins the consolidation: the
// legacy bulk configure path is now a zero-chunk ingest session, so a
// durable daemon's snapshot replays it through the same records and a
// matching re-configure stays idempotent.
func TestConfigureStillDegenerateIngest(t *testing.T) {
	col := testCollection(t, 40)
	cfg := testConfig(col, 1)
	tr := transport.NewInProc()
	defer tr.Close()
	if _, err := NewServer(tr, "node-0", 1); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(Options{Transport: tr, Seed: "node-0"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.Configure(cfg); err != nil {
			t.Fatalf("configure pass %d: %v", i, err)
		}
	}
	cfg2 := cfg
	cfg2.Window++
	err = c.Configure(cfg2)
	if !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("divergent re-configure: err = %v, want ErrConfigMismatch", err)
	}
	if !strings.Contains(err.Error(), "node-0") {
		t.Fatalf("typed configure error does not name the daemon: %v", err)
	}
}
