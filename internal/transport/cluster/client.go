// Package cluster turns the in-process HDK engine into a real
// distributed program: a daemon-side Server that exposes one peer's
// index store and control plane over any transport (cmd/hdknode runs one
// per OS process over pooled TCP), a client-side Fabric implementation
// that lets the unchanged core.Engine build and query a cluster of such
// processes, a replica.Inventory that drives churn repair through RPCs,
// and a Harness that spawns and reaps hdknode child processes for
// end-to-end tests.
//
// Every Server is also a query coordinator: the hdk.search RPC
// (Client.SearchVia) runs the engine's lattice traversal inside the
// daemon — against its own membership view, with replica failover,
// bounded admission (a saturated daemon sheds excess searches with an
// explicit retry-after hint instead of queueing them unboundedly), and
// a per-node query-result LRU that every locally served index mutation
// invalidates — so a thin client pays one RPC per query instead of
// orchestrating the fan-out itself.
//
// The client fabric is a full-membership, one-hop DHT: every member's
// ring position is overlay.HashNode(addr) — the same placement as the
// in-process Chord overlay — and key ownership resolves locally against
// the membership table, so a query pays RPCs only for the index fetches
// themselves (the per-hop network cost the super-peer routing literature
// identifies as the real latency driver).
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/overlay"
	"repro/internal/replica"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Control-plane service names served by every cluster daemon.
const (
	ctrlInfo      = "cluster.info"
	ctrlMembers   = "cluster.members"
	ctrlJoin      = "cluster.join"
	ctrlAnnounce  = "cluster.announce"
	ctrlForget    = "cluster.forget"
	ctrlConfigure = "cluster.configure"
	ctrlMeta      = "cluster.meta"
	ctrlMetrics   = "cluster.metrics"
	ctrlShutdown  = "cluster.shutdown"
	// ctrlSearchConfig live-resizes a daemon's query-admission path
	// (Server.ConfigureSearch over the wire).
	ctrlSearchConfig = "cluster.searchconfig"
)

// maxTransientRetries mirrors the overlay fabrics' retry budget for
// transport-level transient drops.
const maxTransientRetries = 8

// Member is a client-side stub for one daemon process: an overlay.Member
// whose index store lives in that process (RemoteStore), plus a local
// service registry for caller-side services — the engine registers each
// peer's notify handler here, and the fabric dispatches those calls
// without touching the network.
type Member struct {
	id   overlay.ID
	addr string

	mu       sync.RWMutex
	services map[string]transport.Handler
}

// ID implements overlay.Member.
func (m *Member) ID() overlay.ID { return m.id }

// Addr implements overlay.Member.
func (m *Member) Addr() string { return m.addr }

// Handle implements overlay.Member by registering a CLIENT-side service:
// the daemon's services are registered in its own process, so anything
// registered here is served locally to the engine (peer notify handlers).
func (m *Member) Handle(service string, h transport.Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.services[service] = h
}

// RemoteStore implements overlay.RemoteStore: the member's index store is
// hosted by its daemon process, not by the engine.
func (m *Member) RemoteStore() bool { return true }

func (m *Member) localHandler(service string) (transport.Handler, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.services[service]
	return h, ok
}

// Client is the thin cluster client: an overlay.Fabric over a set of
// daemon processes. It implements MultiOwner (successor-list placement on
// the HashNode ring, identical to the Chord overlay's ground truth) and
// Churn (so core.Engine.FailNode works when a process dies).
type Client struct {
	tr transport.Transport

	mu     sync.RWMutex
	byID   map[overlay.ID]*Member
	byAddr map[string]*Member
	sorted []overlay.ID

	// Policy, resolved from Options at Dial time (never zero): one
	// retry/backoff/chunking policy for every call this client makes.
	retryBudget    int           // transient-retry budget per RPC
	searchAttempts int           // overload backoff attempts per search
	backoffCap     time.Duration // cap on the overload backoff window
	chunkTarget    int           // ingest chunk payload target, bytes

	lmu           sync.Mutex
	loopbackMsgs  uint64
	loopbackBytes uint64
}

// Options configures a cluster client. The zero value of every field
// selects the package default, so callers set only what they care about.
type Options struct {
	// Transport carries every RPC (required).
	Transport transport.Transport
	// Seed, when set, discovers the full membership from that one daemon
	// (the usual thin-client bootstrap). Addrs, when set, enumerates the
	// members explicitly; setting both is an error.
	Seed  string
	Addrs []string
	// Retries is the transient-retry budget per RPC (default 8).
	Retries int
	// SearchAttempts bounds how often an overload-shed search is retried
	// with capped exponential backoff (default 5); SearchBackoffCap caps
	// the backoff window (default 2s).
	SearchAttempts   int
	SearchBackoffCap time.Duration
	// ChunkBytes is the hdk.ingest chunk payload target (default 256
	// KiB): bigger chunks amortize per-RPC cost, smaller ones re-ship
	// less on a mid-chunk connection loss.
	ChunkBytes int
}

// DefaultChunkBytes is the ingest chunk payload target Dial resolves a
// zero Options.ChunkBytes to.
const DefaultChunkBytes = 256 << 10

// Dial builds the thin cluster client: it resolves the membership
// (discovered through Seed or enumerated in Addrs) and fixes the
// client's retry, backoff and chunking policy from the options.
func Dial(o Options) (*Client, error) {
	if o.Transport == nil {
		return nil, fmt.Errorf("cluster: Dial requires a Transport")
	}
	if o.Seed != "" && len(o.Addrs) > 0 {
		return nil, fmt.Errorf("cluster: Dial takes Seed or Addrs, not both")
	}
	addrs := o.Addrs
	if o.Seed != "" {
		var err error
		if addrs, err = MembersOf(o.Transport, o.Seed); err != nil {
			return nil, err
		}
	}
	c := &Client{
		tr:             o.Transport,
		byID:           make(map[overlay.ID]*Member, len(addrs)),
		byAddr:         make(map[string]*Member, len(addrs)),
		retryBudget:    o.Retries,
		searchAttempts: o.SearchAttempts,
		backoffCap:     o.SearchBackoffCap,
		chunkTarget:    o.ChunkBytes,
	}
	if c.retryBudget <= 0 {
		c.retryBudget = maxTransientRetries
	}
	if c.searchAttempts <= 0 {
		c.searchAttempts = searchBackoffAttempts
	}
	if c.backoffCap <= 0 {
		c.backoffCap = searchBackoffCap
	}
	if c.chunkTarget <= 0 {
		c.chunkTarget = DefaultChunkBytes
	}
	for _, a := range addrs {
		if err := c.add(a); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// New builds a client fabric over the given daemon addresses with the
// default policy.
//
// Deprecated: use Dial(Options{Transport: tr, Addrs: addrs}).
func New(tr transport.Transport, addrs []string) (*Client, error) {
	return Dial(Options{Transport: tr, Addrs: addrs})
}

// Connect discovers the full membership from any one daemon and builds a
// client fabric over it with the default policy.
//
// Deprecated: use Dial(Options{Transport: tr, Seed: seed}).
func Connect(tr transport.Transport, seed string) (*Client, error) {
	return Dial(Options{Transport: tr, Seed: seed})
}

// ChunkTarget reports the resolved hdk.ingest chunk payload target this
// client streams with.
func (c *Client) ChunkTarget() int { return c.chunkTarget }

// MembersOf asks one daemon for the cluster membership.
func MembersOf(tr transport.Transport, addr string) ([]string, error) {
	raw, err := transport.CallRetry(tr, addr, overlay.EncodeEnvelope(ctrlMembers, nil), maxTransientRetries)
	if err != nil {
		return nil, fmt.Errorf("cluster: members of %s: %w", addr, err)
	}
	var addrs []string
	if err := json.Unmarshal(raw, &addrs); err != nil {
		return nil, fmt.Errorf("cluster: members of %s: %w", addr, err)
	}
	return addrs, nil
}

func (c *Client) add(addr string) error {
	id := overlay.HashNode(addr)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[id]; dup {
		return fmt.Errorf("cluster: id collision for %q", addr)
	}
	m := &Member{id: id, addr: addr, services: make(map[string]transport.Handler)}
	c.byID[id] = m
	c.byAddr[addr] = m
	c.sorted = append(c.sorted, id)
	sort.Slice(c.sorted, func(i, j int) bool { return c.sorted[i] < c.sorted[j] })
	return nil
}

// Members implements overlay.Fabric (ring order).
func (c *Client) Members() []overlay.Member {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]overlay.Member, len(c.sorted))
	for i, id := range c.sorted {
		out[i] = c.byID[id]
	}
	return out
}

// Size implements overlay.Fabric.
func (c *Client) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sorted)
}

// successorLocked returns the index in sorted of the first id at or
// after x, wrapping.
func (c *Client) successorLocked(x overlay.ID) int {
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] >= x })
	if i == len(c.sorted) {
		i = 0
	}
	return i
}

// OwnerOf implements overlay.Fabric: the key's ring successor, resolved
// locally from the membership table.
func (c *Client) OwnerOf(key string) (overlay.Member, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.sorted) == 0 {
		return nil, false
	}
	return c.byID[c.sorted[c.successorLocked(overlay.HashKey(key))]], true
}

// OwnersOf implements overlay.MultiOwner: the first r distinct members at
// or after the key's ring position, primary first — exactly the Chord
// overlay's successor-list placement, so a cluster and an in-process ring
// over the same addresses agree on every replica set.
func (c *Client) OwnersOf(key string, r int) []overlay.Member {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.sorted) == 0 || r < 1 {
		return nil
	}
	if r > len(c.sorted) {
		r = len(c.sorted)
	}
	start := c.successorLocked(overlay.HashKey(key))
	out := make([]overlay.Member, 0, r)
	for k := 0; k < r; k++ {
		out = append(out, c.byID[c.sorted[(start+k)%len(c.sorted)]])
	}
	return out
}

// Route implements overlay.Fabric. The client holds the full membership
// table, so resolution is local and costs zero network hops — the
// one-hop-DHT trade the deployment makes: O(N) membership state buys
// O(1) routing messages per probe.
func (c *Client) Route(from overlay.Member, key string) (overlay.Member, int, error) {
	owner, ok := c.OwnerOf(key)
	if !ok {
		return nil, 0, fmt.Errorf("cluster: empty membership")
	}
	return owner, 0, nil
}

// CallService implements overlay.Fabric: services registered locally on
// the member stub (peer notify handlers) dispatch in-process; everything
// else is an RPC to the daemon bound at addr.
func (c *Client) CallService(addr, service string, req []byte) ([]byte, error) {
	c.mu.RLock()
	m, ok := c.byAddr[addr]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: %w: %q", transport.ErrUnknownAddress, addr)
	}
	if h, local := m.localHandler(service); local {
		resp, err := h(req)
		if err != nil {
			return nil, err
		}
		c.lmu.Lock()
		c.loopbackMsgs++
		c.loopbackBytes += uint64(len(req) + len(resp))
		c.lmu.Unlock()
		return resp, nil
	}
	return transport.CallRetry(c.tr, addr, overlay.EncodeEnvelope(service, req), c.retryBudget)
}

// RemoveNode implements overlay.Churn: the client drops a (crashed or
// departed) daemon from its membership view, shrinking every replica set
// accordingly. The daemon process itself is not contacted.
func (c *Client) RemoveNode(id overlay.ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.byID[id]
	if !ok {
		return false
	}
	delete(c.byID, id)
	delete(c.byAddr, m.addr)
	for i, v := range c.sorted {
		if v == id {
			c.sorted = append(c.sorted[:i], c.sorted[i+1:]...)
			break
		}
	}
	return true
}

// TransportStats returns the traffic counters: wire traffic from the
// underlying transport plus the client-side loopback dispatches.
func (c *Client) TransportStats() transport.Stats {
	st := c.tr.Stats()
	c.lmu.Lock()
	st.Messages += c.loopbackMsgs
	st.Bytes += c.loopbackBytes
	c.lmu.Unlock()
	return st
}

// Forget broadcasts a dead member's address to every member of THIS
// client's view, removing it from the daemons' bootstrap membership so
// future clients' discovery no longer returns the dead address. Call it
// after RemoveNode/FailNode when a process is gone for good — daemon
// views are otherwise grow-only.
func (c *Client) Forget(addr string) error {
	for _, m := range c.Members() {
		if m.Addr() == addr {
			continue
		}
		if _, err := c.CallService(m.Addr(), ctrlForget, []byte(addr)); err != nil {
			return fmt.Errorf("cluster: forget %s at %s: %w", addr, m.Addr(), err)
		}
	}
	return nil
}

// Configure ships the engine configuration to every daemon, which creates
// its store server (idempotent: re-sending an identical configuration is
// a no-op). Must run before BuildIndex. A daemon refusing because it is
// configured differently comes back wrapped around ErrConfigMismatch;
// one already holding a built index comes back wrapped around
// ErrAlreadyBuilt — both errors.Is-matchable, carried as in-band status
// bytes so they survive the wire as types, not strings.
func (c *Client) Configure(cfg core.Config) error {
	payload, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	for _, m := range c.Members() {
		raw, err := c.CallService(m.Addr(), ctrlConfigure, payload)
		if err != nil {
			return fmt.Errorf("cluster: configure %s: %w", m.Addr(), err)
		}
		if err := configStatusErr(m.Addr(), raw); err != nil {
			return err
		}
	}
	return nil
}

// configStatusErr rehydrates a configure/ingest-begin status byte into
// its typed sentinel (an empty response is a legacy OK).
func configStatusErr(addr string, resp []byte) error {
	if len(resp) == 0 || resp[0] == cfgStatusOK {
		return nil
	}
	switch resp[0] {
	case cfgStatusAlreadyBuilt:
		return fmt.Errorf("cluster: %s: %w", addr, ErrAlreadyBuilt)
	case cfgStatusMismatch:
		return fmt.Errorf("cluster: %s: %w", addr, ErrConfigMismatch)
	}
	return fmt.Errorf("cluster: %s: unknown configure status %d", addr, resp[0])
}

// Meta fetches the configuration a daemon was configured with.
func (c *Client) Meta(addr string) (core.Config, error) {
	var cfg core.Config
	raw, err := c.CallService(addr, ctrlMeta, nil)
	if err != nil {
		return cfg, err
	}
	err = json.Unmarshal(raw, &cfg)
	return cfg, err
}

// searchConfig is the cluster.searchconfig payload: a live resize of a
// daemon's query-admission path. Field semantics are exactly
// Server.ConfigureSearch's: Workers < 1, Queue < 0 and Cache < 0 keep
// the daemon's current setting (mirroring cmd/hdknode's flags).
type searchConfig struct {
	Workers int `json:"workers"`
	Queue   int `json:"queue"`
	Cache   int `json:"cache"`
}

// ConfigureSearchVia resizes the admission path of the daemon at addr
// while it serves: workers bounds concurrent coordinations, queue the
// bounded admission wait, cache the query-result LRU. Safe under live
// load — in-flight coordinations drain against the pool they were
// admitted to (see Server.ConfigureSearch) — which is what lets a chaos
// schedule resize daemons mid-workload.
func (c *Client) ConfigureSearchVia(addr string, workers, queue, cache int) error {
	payload, err := json.Marshal(searchConfig{Workers: workers, Queue: queue, Cache: cache})
	if err != nil {
		return err
	}
	if _, err := c.CallService(addr, ctrlSearchConfig, payload); err != nil {
		return fmt.Errorf("cluster: configure search at %s: %w", addr, err)
	}
	return nil
}

// Shutdown asks one daemon to exit gracefully.
func (c *Client) Shutdown(addr string) error {
	_, err := c.CallService(addr, ctrlShutdown, nil)
	return err
}

// Search overload backoff: how many attempts SearchVia makes against a
// daemon that keeps shedding, and the cap on the exponentially growing
// backoff window.
const (
	searchBackoffAttempts = 5
	searchBackoffCap      = 2 * time.Second
)

// TrySearchVia issues exactly ONE hdk.search attempt against the daemon
// at addr. A daemon shedding under admission control comes back as a
// *core.OverloadError (errors.Is-matchable against core.ErrOverloaded)
// carrying its retry-after hint; callers running their own pacing —
// load generators, saturation probes — use this to see every rejection.
func (c *Client) TrySearchVia(addr string, req core.SearchRequest) (*core.SearchResult, bool, error) {
	raw, err := c.CallService(addr, core.SvcSearch, core.EncodeSearchRequest(req))
	if err != nil {
		return nil, false, fmt.Errorf("cluster: search via %s: %w", addr, err)
	}
	res, cached, err := core.DecodeSearchResponse(raw)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: search via %s: %w", addr, err)
	}
	return res, cached, nil
}

// SearchVia asks the daemon at addr to coordinate one query: the whole
// lattice traversal — routing, batched fetches, replica failover,
// result caching — runs node-side, and the thin client pays exactly one
// RPC. req.Terms must be in Engine.QueryTerms form; the returned bool
// reports whether the daemon answered from its query-result cache. Any
// member of the cluster can coordinate any query.
//
// Overload rejections are retried with capped exponential backoff and
// jitter honoring the daemon's retry-after hint: attempt i sleeps
// between hint and min(hint<<i, the backoff cap). A daemon still
// shedding after the configured attempts (Options.SearchAttempts)
// surfaces the last *core.OverloadError to the caller.
func (c *Client) SearchVia(addr string, req core.SearchRequest) (*core.SearchResult, bool, error) {
	for attempt := 0; ; attempt++ {
		res, cached, err := c.TrySearchVia(addr, req)
		var ov *core.OverloadError
		if !errors.As(err, &ov) || attempt == c.searchAttempts-1 {
			return res, cached, err
		}
		hi := ov.RetryAfter << attempt
		if hi > c.backoffCap {
			hi = c.backoffCap
		}
		// Full jitter above the hint floor: never earlier than the
		// daemon asked, spread out so shed clients don't re-arrive as
		// one thundering herd.
		sleep := ov.RetryAfter
		if spread := int64(hi - ov.RetryAfter); spread > 0 {
			sleep += time.Duration(rand.Int64N(spread + 1))
		}
		time.Sleep(sleep)
	}
}

// SearchTraceVia is SearchVia with the request's Trace flag forced on:
// it returns the daemon's per-query span tree alongside the answer.
// The trace is nil when the daemon answered from its result cache (a
// cache hit skips coordination, so there is nothing to trace) — retry
// with NoCache to force a coordinated, traced run.
func (c *Client) SearchTraceVia(addr string, req core.SearchRequest) (*core.SearchResult, *telemetry.Trace, error) {
	req.Trace = true
	for attempt := 0; ; attempt++ {
		raw, err := c.CallService(addr, core.SvcSearch, core.EncodeSearchRequest(req))
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: search via %s: %w", addr, err)
		}
		res, _, traceBytes, err := core.DecodeSearchResponseTrace(raw)
		var ov *core.OverloadError
		if errors.As(err, &ov) && attempt < c.searchAttempts-1 {
			time.Sleep(ov.RetryAfter)
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: search via %s: %w", addr, err)
		}
		if traceBytes == nil {
			return res, nil, nil
		}
		trace, err := telemetry.DecodeTrace(traceBytes)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: search via %s: trace: %w", addr, err)
		}
		return res, trace, nil
	}
}

// NodeStoreStats pairs a daemon address with its store footprint.
type NodeStoreStats struct {
	Addr  string
	Stats core.StoreStats
}

// StoreStats sweeps every daemon's SvcStats, in ring order.
func (c *Client) StoreStats() ([]NodeStoreStats, error) {
	var out []NodeStoreStats
	for _, m := range c.Members() {
		raw, err := c.CallService(m.Addr(), core.SvcStats, nil)
		if err != nil {
			return nil, fmt.Errorf("cluster: stats of %s: %w", m.Addr(), err)
		}
		st, err := core.DecodeStoreStats(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: stats of %s: %w", m.Addr(), err)
		}
		out = append(out, NodeStoreStats{Addr: m.Addr(), Stats: st})
	}
	return out, nil
}

// Inventory is the repair sweep's view of the daemon-hosted stores:
// core.RemoteInventory over this client's service calls (one shared
// definition of the inventory wire contract — the engine's own repair
// sweep uses the same type for its remote members).
func (c *Client) Inventory() replica.Inventory {
	return core.RemoteInventory{Call: c.CallService}
}

// Repairer returns a churn repairer for the cluster at replication
// factor r: it sweeps the daemons' stores over RPC and re-replicates
// under-replicated keys daemon-to-daemon through the client.
func (c *Client) Repairer(r int) *replica.Repairer {
	return &replica.Repairer{Fabric: c, Inv: c.Inventory(), R: r}
}

// Audit runs a read-only replica coverage sweep at factor r.
func (c *Client) Audit(r int) replica.AuditStats {
	return replica.Audit(c, c.Inventory(), r)
}

// Compile-time interface checks.
var (
	_ overlay.Fabric      = (*Client)(nil)
	_ overlay.MultiOwner  = (*Client)(nil)
	_ overlay.Churn       = (*Client)(nil)
	_ overlay.Member      = (*Member)(nil)
	_ overlay.RemoteStore = (*Member)(nil)
)
