package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/durable"
	"repro/internal/overlay"
	"repro/internal/replica"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// durConfigure is the cluster-owned durable record kind carrying the
// daemon's configuration payload (the exact bytes the configuring client
// shipped, so idempotency comparisons survive a restart). It leads every
// snapshot and is the first op of a fresh log, so replay always knows
// the store configuration before the first store op.
const durConfigure = "configure"

// shutdownGrace is how long a cluster.shutdown RPC waits before
// signaling Done, so the (local loopback) response write beats the
// transport teardown. This is a timer, not a happens-after edge: under
// extreme scheduling delay the client can still see a connection reset
// for a shutdown that succeeded — a cosmetic error with no state at
// risk, accepted in exchange for keeping the transport handler contract
// free of post-write hooks. Signal-based shutdown (what the harness and
// operators use) does not involve this path.
const shutdownGrace = 200 * time.Millisecond

// Search coordination defaults: how many hdk.search coordinations one
// daemon runs concurrently, how many more may wait in the bounded
// admission queue before the daemon sheds requests with an explicit
// overload rejection, and how many query results its LRU holds. All
// operator-tunable via ConfigureSearch (cmd/hdknode: -search-workers,
// -search-queue, -search-cache).
const (
	defaultSearchWorkers = 8
	defaultSearchQueue   = 32
	defaultSearchCache   = 1024
)

// searchRetryAfter is the backoff hint a shed request carries. A shed
// means workers + queue are all busy; one queue slot frees as soon as a
// coordination (typically a few ms to tens of ms) completes, so a small
// constant hint keeps well-behaved clients closely packed behind the
// queue without hammering it.
const searchRetryAfter = 25 * time.Millisecond

// Server is the daemon side of the cluster: one process's membership
// identity plus its share of the replicated index. It implements
// overlay.Member, so core.StoreServer.Attach registers the exact same
// index handlers the in-process engine uses; the control services
// (membership, configuration, shutdown) are built in.
//
// Membership is bootstrap-time state: a starting daemon joins through
// any existing member, which hands it the current view, and announces
// itself to everyone in it. Daemons never route by membership — only
// clients do — so the view's one job is letting a client discover the
// whole cluster from a single address. The view grows on join/announce
// and shrinks only through cluster.forget (Client.Forget), which an
// operator broadcasts after a process dies for good.
type Server struct {
	tr       transport.Transport
	addr     string
	id       overlay.ID
	replicas int

	mu         sync.Mutex
	members    map[string]struct{}
	memberVer  uint64 // bumped on every membership change; invalidates the coordination fabric
	store      *core.StoreServer
	configJSON []byte
	dur        *durable.Store
	warm       bool // store state was restored from disk at startup
	catchUp    replica.CatchUpStats

	// Streamed-build state (guarded by mu): the current hdk.ingest
	// session — nil until a begin arrives or durable replay restores one
	// — and the corpus shard it materialized at commit, with the global
	// term frequencies the build engine's Ff cutoff needs.
	ingest     *ingestSession
	shard      *corpus.Collection
	shardFreqs []int

	// build is the hdk.build state machine (own lock; see build.go).
	build serverBuild

	// Query coordination state (the hdk.search serving path): a cached
	// client fabric over this daemon's own membership view, a worker
	// pool bounding concurrent coordinations, and a result LRU keyed by
	// the raw request bytes. fabric/fabricSelf are guarded by mu and
	// rebuilt lazily whenever memberVer moves past fabricVer.
	fabric     *Client
	fabricSelf overlay.Member
	fabricVer  uint64

	// Admission control (guarded by amu): searchQueued counts every
	// admitted coordination — running (holding a searchSem slot) or
	// waiting for one. A request is shed when searchQueued would exceed
	// cap(searchSem)+searchQueueCap, so at most searchQueueCap requests
	// ever wait and the wait is bounded by queue-depth coordination
	// times. searchSem itself is swapped by ConfigureSearch; in-flight
	// releases are closures over the channel they acquired, so a resize
	// can never strand a permit in the wrong channel.
	amu            sync.Mutex
	searchSem      chan struct{}
	searchQueued   int
	searchQueueCap int

	// cmu orders result-cache fills against invalidation: a coordination
	// records cacheGen before probing and only publishes its result if
	// no mutation bumped the generation meanwhile — a concurrent index
	// change can therefore never be papered over by a stale cache fill.
	cmu         sync.Mutex
	cacheGen    uint64
	searchCache *cache.LRU[[]byte]

	// metrics is the daemon's telemetry registry with the serving-path
	// instruments pre-registered (see server_metrics.go). cluster.info
	// is a JSON view over it; cluster.metrics ships the whole registry.
	metrics *serverMetrics

	// Slow-query log state: the threshold in nanoseconds (0 = off) and
	// the unix-nano stamp of the last emitted line (rate limiter).
	slowQueryNanos atomic.Int64
	slowLogLast    atomic.Int64

	smu      sync.RWMutex
	services map[string]transport.Handler

	done     chan struct{}
	stopOnce sync.Once
}

// Info is a daemon's self-description, served as JSON by cluster.info.
type Info struct {
	Addr       string `json:"addr"`
	ID         string `json:"id"` // ring position, hex
	Replicas   int    `json:"replicas"`
	Configured bool   `json:"configured"`
	Members    int    `json:"members"`
	// Keys is the store's resident key count.
	Keys int `json:"keys"`
	// Warm reports that the store was restored from a durable data dir
	// at startup instead of being rebuilt over the wire.
	Warm bool `json:"warm"`
	// InsertRPCs counts hdk.insert calls served since THIS process
	// started — the re-index traffic meter: a warm-restarted daemon that
	// rejoined correctly serves its restored index with zero of them.
	InsertRPCs uint64 `json:"insert_rpcs"`
	// CatchUpStale/CatchUpPulled summarize the warm-rejoin delta the
	// daemon pulled from its replica peers (both 0 when nothing was
	// missed while down).
	CatchUpStale  int `json:"catchup_stale"`
	CatchUpPulled int `json:"catchup_pulled"`
	// FetchRPCs counts hdk.fetchBatch calls served since this process
	// started — the query fetch meter: a repeat query answered from a
	// coordinator's result cache leaves it untouched cluster-wide.
	FetchRPCs uint64 `json:"fetch_rpcs"`
	// SearchRPCs counts hdk.search coordinations this daemon served
	// (cache hits included).
	SearchRPCs uint64 `json:"search_rpcs"`
	// SearchCacheHits/SearchCacheMisses are the daemon's query-result
	// cache counters.
	SearchCacheHits   uint64 `json:"search_cache_hits"`
	SearchCacheMisses uint64 `json:"search_cache_misses"`
	// SearchRejected counts hdk.search requests shed by admission
	// control (worker pool and bounded queue both full); each rejection
	// carried a retry-after hint back to the client.
	SearchRejected uint64 `json:"search_rejected"`
	// SearchQueueDepth is the instantaneous number of admitted
	// coordinations waiting for a worker slot (0 on an idle or
	// keeping-up daemon; at most the configured -search-queue).
	SearchQueueDepth int `json:"search_queue_depth"`
	// IngestChunks/IngestDocs report the streamed-build upload state:
	// chunks durably held for the current hdk.ingest session, and
	// documents in the materialized corpus shard (0 until the session
	// commits).
	IngestChunks int `json:"ingest_chunks"`
	IngestDocs   int `json:"ingest_docs"`
	// BuildState/BuildRound/BuildError surface hdk.build progress:
	// "idle", "running", "done" or "failed" — the coordinator's state
	// machine on the daemon driving the build, the worker view elsewhere
	// — with the latest round in flight and the first failure message.
	BuildState string `json:"build_state"`
	BuildRound int    `json:"build_round"`
	BuildError string `json:"build_error,omitempty"`
}

// NewServer binds a daemon on the transport (pass "127.0.0.1:0" for an
// ephemeral port) and returns it with a single-member view of itself.
// replicas is the replication factor the operator intends for the
// cluster; it is advertised through cluster.info so clients can adopt it.
func NewServer(tr transport.Transport, listen string, replicas int) (*Server, error) {
	if replicas < 1 {
		replicas = 1
	}
	s := &Server{
		tr:             tr,
		replicas:       replicas,
		members:        make(map[string]struct{}),
		services:       make(map[string]transport.Handler),
		searchSem:      make(chan struct{}, defaultSearchWorkers),
		searchQueueCap: defaultSearchQueue,
		searchCache:    cache.NewLRU[[]byte](defaultSearchCache),
		metrics:        newServerMetrics(),
		done:           make(chan struct{}),
	}
	// Registry before Listen: the transport delivers traffic the moment
	// it binds, and every handler assumes the instruments exist.
	s.registerGauges()
	bound, err := tr.Listen(listen, s.dispatch)
	if err != nil {
		return nil, err
	}
	s.addr = bound
	s.id = overlay.HashNode(bound)
	s.members[bound] = struct{}{}
	return s, nil
}

// ID implements overlay.Member.
func (s *Server) ID() overlay.ID { return s.id }

// Addr implements overlay.Member.
func (s *Server) Addr() string { return s.addr }

// Handle implements overlay.Member: core.StoreServer registers the index
// services through this.
func (s *Server) Handle(service string, h transport.Handler) {
	s.smu.Lock()
	defer s.smu.Unlock()
	s.services[service] = h
}

// Replicas returns the advertised replication factor.
func (s *Server) Replicas() int { return s.replicas }

// ConfigureSearch sizes the query-coordination path: workers bounds
// concurrent hdk.search coordinations, queue how many admitted requests
// may wait for a worker before the daemon sheds with an explicit
// overload rejection, and cacheCap the query-result LRU. workers < 1
// keeps the default; queue 0 sheds as soon as every worker is busy and
// queue < 0 keeps the default; cacheCap 0 disables result caching and
// cacheCap < 0 keeps the default (mirroring cmd/hdknode's flags).
//
// Safe to call while serving: in-flight coordinations release the
// semaphore they acquired (admitSearch hands out a release closure over
// the specific channel), so swapping in a new one strands nothing —
// old holders drain the old channel, new admissions use the new bound.
func (s *Server) ConfigureSearch(workers, queue, cacheCap int) {
	s.amu.Lock()
	if workers >= 1 {
		s.searchSem = make(chan struct{}, workers)
	}
	if queue >= 0 {
		s.searchQueueCap = queue
	}
	s.amu.Unlock()
	if cacheCap >= 0 {
		s.cmu.Lock()
		s.searchCache = cache.NewLRU[[]byte](cacheCap)
		s.cmu.Unlock()
	}
}

// admitSearch decides one hdk.search request's fate: admitted requests
// get a release closure (run it when the coordination finishes) after a
// bounded wait for a worker slot; a request that would push the
// admitted count past workers+queue is shed immediately with the
// retry-after hint to send back. The closure releases the exact
// semaphore channel it acquired — see ConfigureSearch.
func (s *Server) admitSearch() (release func(), retryAfter time.Duration) {
	s.amu.Lock()
	sem := s.searchSem
	if s.searchQueued >= cap(sem)+s.searchQueueCap {
		s.amu.Unlock()
		return nil, searchRetryAfter
	}
	s.searchQueued++
	s.amu.Unlock()
	sem <- struct{}{} // at most searchQueueCap requests wait here
	return func() {
		<-sem
		s.amu.Lock()
		s.searchQueued--
		s.amu.Unlock()
	}, 0
}

// invalidateSearchCache drops every cached query result and bumps the
// cache generation so an in-flight coordination that started before a
// LOCALLY served mutation cannot re-publish its (possibly stale)
// answer. Wired into the store server's mutation hook: every insert,
// classify sweep and repair import served by this daemon fires it.
// The guarantee is per-node: a coordination racing a cluster-wide
// update can still observe another daemon's pre-update store and cache
// that answer until this daemon's next mutation lands (builds and
// updates sweep every store each round, so the window closes within
// the round). Exact cross-node coherence is a ROADMAP item.
func (s *Server) invalidateSearchCache() {
	s.cmu.Lock()
	s.cacheGen++
	s.searchCache.Clear()
	s.cmu.Unlock()
}

// Done is closed when a shutdown was requested (cluster.shutdown RPC or
// Shutdown call); the daemon main waits on it.
func (s *Server) Done() <-chan struct{} { return s.done }

// Shutdown signals Done. Closing the transport is the caller's job.
func (s *Server) Shutdown() { s.stopOnce.Do(func() { close(s.done) }) }

// EnableDurability attaches a durable data store and replays whatever it
// recovered: a "configure" record recreates the store server (with
// persistence enabled, so replayed state keeps persisting), and every
// further record replays through core.StoreServer. Call once, before the
// daemon serves index traffic (it listens already, but the harness and
// operators gate clients on the post-recovery banner). After a recovery
// with index state the daemon reports Warm through cluster.info.
func (s *Server) EnableDurability(d *durable.Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		return fmt.Errorf("cluster: %s: enable durability before configuration", s.addr)
	}
	s.dur = d
	replay := append(append([]durable.Record{}, d.Snapshot()...), d.Ops()...)
	for i, rec := range replay {
		if rec.Kind == durConfigure {
			if err := s.configureLocked(rec.Payload); err != nil {
				return fmt.Errorf("cluster: %s: replay configure: %w", s.addr, err)
			}
			continue
		}
		if rec.Kind == durIngestBegin || rec.Kind == durIngestChunk || rec.Kind == durIngestCommit {
			// Ingest records restore the upload session — configuration,
			// acked chunks, the materialized shard if it committed — so a
			// SIGKILLed daemon resumes exactly where its last ack left it.
			if err := s.replayIngestRecord(rec.Kind, rec.Payload); err != nil {
				return fmt.Errorf("cluster: %s: replay %s record: %w", s.addr, rec.Kind, err)
			}
			continue
		}
		if s.store == nil {
			return fmt.Errorf("cluster: %s: durable record %d (%s) precedes configuration", s.addr, i, rec.Kind)
		}
		if err := s.store.ReplayRecord(rec.Kind, rec.Payload); err != nil {
			return fmt.Errorf("cluster: %s: replay %s record: %w", s.addr, rec.Kind, err)
		}
	}
	d.DropRecovery()
	s.warm = s.store != nil && s.store.Populated()
	return nil
}

// Warm reports whether startup restored index state from disk.
func (s *Server) Warm() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warm
}

// InsertRPCs returns the number of hdk.insert calls served by this
// process.
func (s *Server) InsertRPCs() uint64 { return s.metrics.insertRPCs.Value() }

// CatchUp pulls the delta this daemon missed while it was down: it
// builds a client fabric over its own membership view, sweeps the other
// members' inventories for keys in its replica sets, and imports every
// copy fresher than (or absent from) its restored store — the
// warm-rejoin path that replaces full re-replication. Call after Join;
// a daemon without a configured store has nothing to catch up on.
func (s *Server) CatchUp() (replica.CatchUpStats, error) {
	s.mu.Lock()
	store := s.store
	s.mu.Unlock()
	if store == nil {
		return replica.CatchUpStats{}, nil
	}
	c, err := New(s.tr, s.memberList())
	if err != nil {
		return replica.CatchUpStats{}, fmt.Errorf("cluster: catch-up fabric: %w", err)
	}
	c.mu.RLock()
	self := c.byAddr[s.addr]
	c.mu.RUnlock()
	if self == nil {
		return replica.CatchUpStats{}, fmt.Errorf("cluster: %s missing from own membership", s.addr)
	}
	r := store.Config().ReplicationFactor
	if r < 1 {
		r = 1
	}
	rp := &replica.Repairer{Fabric: c, Inv: core.RemoteInventory{Call: c.CallService}, R: r}
	// The import batch to self arrives over the daemon's own RPC surface,
	// so the pulled copies run through the persist hooks like any other
	// repair traffic — the catch-up itself is durable.
	st, err := rp.CatchUp(self)
	if err != nil {
		return st, err
	}
	s.mu.Lock()
	s.catchUp = st
	s.mu.Unlock()
	return st, nil
}

// PersistShutdown is the graceful-exit path for a durable daemon: the op
// log is compacted into a fresh snapshot (so the next start replays zero
// ops) and the data store is closed. A no-op without durability.
func (s *Server) PersistShutdown() error {
	s.mu.Lock()
	store, d := s.store, s.dur
	s.mu.Unlock()
	if d == nil {
		return nil
	}
	if store != nil && store.Populated() {
		if err := store.CompactNow(); err != nil {
			d.Close()
			return err
		}
	}
	return d.Close()
}

// Join bootstraps this daemon into an existing cluster through any
// member: the seed hands back its post-join view, and the joiner
// announces itself to every other member in it. Serial bootstrap —
// concurrent joins through different seeds are not merged.
func (s *Server) Join(seed string) error {
	raw, err := transport.CallRetry(s.tr, seed, overlay.EncodeEnvelope(ctrlJoin, []byte(s.addr)), maxTransientRetries)
	if err != nil {
		return fmt.Errorf("cluster: join via %s: %w", seed, err)
	}
	var list []string
	if err := json.Unmarshal(raw, &list); err != nil {
		return fmt.Errorf("cluster: join via %s: %w", seed, err)
	}
	for _, a := range list {
		s.addMember(a)
	}
	for _, a := range list {
		if a == s.addr || a == seed {
			continue
		}
		// Best-effort: the seed's view is grow-only, so it may still
		// name members that crashed and were never Forgotten. A dead
		// address must not block cluster growth — the joiner announces
		// to everyone it can reach and skips the rest (a member that is
		// merely slow still learns the joiner from a client's discovery
		// going through the seed).
		transport.CallRetry(s.tr, a, overlay.EncodeEnvelope(ctrlAnnounce, []byte(s.addr)), maxTransientRetries)
	}
	return nil
}

func (s *Server) addMember(addr string) {
	if addr == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.members[addr]; !ok {
		s.members[addr] = struct{}{}
		s.memberVer++
	}
}

func (s *Server) memberList() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.members))
	for a := range s.members {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// dispatch is the daemon's transport handler: control services are built
// in, everything else resolves against the registered index services.
func (s *Server) dispatch(req []byte) ([]byte, error) {
	service, payload, err := overlay.DecodeEnvelope(req)
	if err != nil {
		return nil, err
	}
	switch service {
	case ctrlInfo:
		return s.handleInfo()
	case ctrlMembers:
		return json.Marshal(s.memberList())
	case ctrlJoin:
		s.addMember(string(payload))
		return json.Marshal(s.memberList())
	case ctrlAnnounce:
		s.addMember(string(payload))
		return nil, nil
	case ctrlForget:
		s.mu.Lock()
		if _, ok := s.members[string(payload)]; ok {
			delete(s.members, string(payload))
			s.memberVer++
		}
		s.mu.Unlock()
		return nil, nil
	case ctrlConfigure:
		return s.handleConfigure(payload)
	case ctrlMeta:
		s.mu.Lock()
		meta := s.configJSON
		s.mu.Unlock()
		if meta == nil {
			return nil, fmt.Errorf("cluster: %s not configured", s.addr)
		}
		return meta, nil
	case ctrlMetrics:
		return telemetry.EncodeSnapshot(s.metrics.reg.Snapshot()), nil
	case ctrlSearchConfig:
		var sc searchConfig
		if err := json.Unmarshal(payload, &sc); err != nil {
			return nil, fmt.Errorf("cluster: %s: bad search config: %w", s.addr, err)
		}
		s.ConfigureSearch(sc.Workers, sc.Queue, sc.Cache)
		return nil, nil
	case ctrlShutdown:
		// Signal Done only after this response frame has had time to
		// flush: the daemon main closes the transport on Done, and
		// closing first would turn a successful shutdown into a
		// connection-reset error at the client.
		time.AfterFunc(shutdownGrace, s.Shutdown)
		return nil, nil
	case core.SvcSearch:
		return s.handleSearch(payload)
	case SvcIngest:
		return s.handleIngest(payload)
	case SvcBuild:
		return s.handleBuild(payload)
	}
	s.smu.RLock()
	h, ok := s.services[service]
	s.smu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: node %s: unknown service %q (configured: %v)", s.addr, service, s.configured())
	}
	switch service {
	case core.SvcInsert:
		// Meter re-index traffic: a warm-restarted daemon proves its
		// restored index cost zero rebuild RPCs by this staying 0.
		s.metrics.insertRPCs.Inc()
	case core.SvcFetchBatch:
		// Meter query fetches: a repeat query served from a
		// coordinator's result cache proves itself by this staying flat
		// on every daemon.
		s.metrics.fetchRPCs.Inc()
	}
	return h(payload)
}

func (s *Server) configured() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store != nil
}

func (s *Server) handleInfo() ([]byte, error) {
	s.mu.Lock()
	info := Info{
		Addr:          s.addr,
		ID:            fmt.Sprintf("%016x", uint64(s.id)),
		Replicas:      s.replicas,
		Configured:    s.store != nil,
		Members:       len(s.members),
		Warm:          s.warm,
		InsertRPCs:    s.metrics.insertRPCs.Value(),
		CatchUpStale:  s.catchUp.Stale,
		CatchUpPulled: s.catchUp.CopiesPulled,
		FetchRPCs:     s.metrics.fetchRPCs.Value(),
		SearchRPCs:    s.metrics.searchRPCs.Value(),
	}
	if s.store != nil {
		info.Keys = s.store.KeyCount()
	}
	if s.ingest != nil {
		info.IngestChunks = len(s.ingest.chunks)
	}
	if s.shard != nil {
		info.IngestDocs = len(s.shard.Docs)
	}
	s.mu.Unlock()
	// Outside mu: buildProgress takes the build lock, which nests the
	// other way around (buildEngine acquires build.mu then mu).
	info.BuildState, info.BuildRound, info.BuildError = s.buildProgress()
	info.SearchCacheHits = s.metrics.cacheHits.Value()
	info.SearchCacheMisses = s.metrics.cacheMisses.Value()
	info.SearchRejected = s.metrics.searchShed.Value()
	s.amu.Lock()
	// Admitted minus running = waiting for a worker slot (clamped: the
	// two reads are not atomic with respect to releases in flight).
	if depth := s.searchQueued - len(s.searchSem); depth > 0 {
		info.SearchQueueDepth = depth
	}
	s.amu.Unlock()
	return json.Marshal(info)
}

// handleSearch serves one hdk.search coordination: the daemon answers a
// repeat query straight from its result cache, and otherwise runs the
// engine's level-parallel lattice traversal itself — against its own
// membership view, with its own store attached locally and every other
// store reached over the pooled fabric, replica failover included. The
// raw request bytes are the cache key (the request encoding is
// canonical). Concurrent coordinations are bounded by the worker pool
// plus a bounded admission queue; past that the request is shed with an
// explicit overload rejection instead of queueing unboundedly (cache
// hits bypass admission — they cost no coordination work).
func (s *Server) handleSearch(req []byte) ([]byte, error) {
	s.metrics.searchRPCs.Inc()
	sreq, err := core.DecodeSearchRequest(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	store := s.store
	s.mu.Unlock()
	if store == nil {
		return nil, fmt.Errorf("cluster: %s not configured", s.addr)
	}
	var tb *telemetry.TraceBuilder
	key := string(req)
	if sreq.Trace {
		tb = telemetry.StartTrace("coordinate",
			telemetry.Str("node", s.addr),
			telemetry.Num("terms", uint64(len(sreq.Terms))),
			telemetry.Num("k", uint64(sreq.K)))
		// The raw request bytes are the cache key, but the trace flag must
		// not split the cache: a traced run of a query and its untraced
		// repeats share one answer, so the key is always the canonical
		// untraced encoding.
		untraced := sreq
		untraced.Trace = false
		key = string(core.EncodeSearchRequest(untraced))
	}
	var gen uint64
	if !sreq.NoCache {
		cacheSpan := tb.Start(0, "cache")
		s.cmu.Lock()
		body, ok := s.searchCache.Get(key)
		gen = s.cacheGen
		s.cmu.Unlock()
		tb.Annotate(cacheSpan, telemetry.Str("hit", fmt.Sprintf("%t", ok)))
		tb.End(cacheSpan)
		if ok {
			// Cache hits skip coordination, so a traced request answered
			// from cache carries no trace (documented on SearchRequest).
			s.metrics.cacheHits.Inc()
			return core.EncodeSearchResponse(body, true), nil
		}
		s.metrics.cacheMisses.Inc()
	}
	admSpan := tb.Start(0, "admission")
	admStart := time.Now()
	release, retryAfter := s.admitSearch()
	if release == nil {
		// Shed: workers and queue are full. The rejection is a transport
		// SUCCESS carrying the retry-after hint — a handler error would
		// be retried as transient by the RPC layer instead of backed off.
		s.metrics.searchShed.Inc()
		return core.EncodeSearchOverloaded(retryAfter), nil
	}
	s.metrics.admissionWait.ObserveDuration(time.Since(admStart))
	tb.End(admSpan)
	defer release()
	fab, self, err := s.coordinationFabric()
	if err != nil {
		return nil, err
	}
	coord := core.Coordinator{Net: fab, Cfg: store.Config(), From: self, Metrics: s.metrics.reg}
	coordStart := time.Now()
	res, err := coord.SearchTraced(sreq.Terms, sreq.K, tb)
	if err != nil {
		return nil, err
	}
	coordDur := time.Since(coordStart)
	s.metrics.coordination.ObserveDuration(coordDur)
	s.noteSlowQuery(sreq, res, coordDur)
	body := core.EncodeSearchResult(res)
	if !sreq.NoCache {
		// Publish only if no mutation invalidated the cache since this
		// coordination started — otherwise the answer may predate the
		// change and must not outlive it.
		s.cmu.Lock()
		if gen == s.cacheGen {
			s.searchCache.Put(key, body)
		}
		s.cmu.Unlock()
	}
	if tb != nil {
		return core.EncodeSearchResponseTraced(body, telemetry.EncodeTrace(tb.Finish())), nil
	}
	return core.EncodeSearchResponse(body, false), nil
}

// coordinationFabric returns the client fabric the daemon coordinates
// searches over: a one-hop view of its own membership, rebuilt lazily
// whenever the membership changes (join/announce/forget), with this
// daemon's store attached read-locally so self-owned fetches skip the
// loopback RPC. The view is grow-only between forgets, so a dead member
// stays routable and coordinated searches exercise the same replica
// failover a thin client would.
func (s *Server) coordinationFabric() (*Client, overlay.Member, error) {
	s.mu.Lock()
	if s.fabric != nil && s.fabricVer == s.memberVer {
		fab, self := s.fabric, s.fabricSelf
		s.mu.Unlock()
		return fab, self, nil
	}
	ver := s.memberVer
	addrs := make([]string, 0, len(s.members))
	for a := range s.members {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	store := s.store
	s.mu.Unlock()

	c, err := New(s.tr, addrs)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: %s: coordination fabric: %w", s.addr, err)
	}
	c.mu.RLock()
	self := c.byAddr[s.addr]
	c.mu.RUnlock()
	if self == nil {
		return nil, nil, fmt.Errorf("cluster: %s missing from own membership", s.addr)
	}
	if store != nil {
		store.AttachLocalRead(self)
	}
	s.mu.Lock()
	// A concurrent rebuild may land here too; both were built from a
	// membership at least as fresh as ver, so last-writer-wins is fine.
	s.fabric, s.fabricSelf, s.fabricVer = c, self, ver
	s.mu.Unlock()
	return c, self, nil
}

// handleConfigure creates the store server from the client's engine
// configuration, as a DEGENERATE hdk.ingest session: session id 0,
// configuration only, zero chunks, committed immediately. The ingest
// begin path is therefore the single place deciding whether
// (re)configuration is admissible — re-sending the identical
// configuration during bootstrap is accepted, a different one is
// rejected with a config-mismatch status, and a populated store rejects
// with already-built (re-running BuildIndex against it would double
// document frequencies and silently flip HDKs to NDKs). Rejections ride
// the response as a status byte, which the client rehydrates into
// ErrConfigMismatch / ErrAlreadyBuilt. With durability enabled the
// session records hit the op log before the store serves (log-first),
// so a warm restart recreates the store before replaying its mutations.
func (s *Server) handleConfigure(payload []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil && bytes.Equal(s.configJSON, payload) && !s.store.Populated() {
		return []byte{cfgStatusOK}, nil // idempotent re-send during bootstrap
	}
	b := ingestBegin{Session: 0, Config: payload}
	status, _, err := s.ingestBeginLocked(b, encodeIngestBegin(b)[1:], true)
	if err != nil {
		return nil, err
	}
	if status != cfgStatusOK {
		return []byte{status}, nil
	}
	commit := ingestCommit{Session: 0, Chunks: 0, Digest: sessionDigest(nil)}
	if err := s.ingestCommitLocked(commit, encodeIngestCommit(commit)[1:], true); err != nil {
		return nil, err
	}
	return []byte{cfgStatusOK}, nil
}

// configureLocked creates and attaches the store server from a
// configuration payload. Shared by the configure RPC and durable replay;
// the caller holds s.mu and handles logging.
func (s *Server) configureLocked(payload []byte) error {
	var cfg core.Config
	if err := json.Unmarshal(payload, &cfg); err != nil {
		return fmt.Errorf("cluster: bad configuration: %w", err)
	}
	store, err := core.NewStoreServer(cfg)
	if err != nil {
		return err
	}
	if s.dur != nil {
		store.EnablePersistence(s.dur, s.durableHeader)
	}
	// Every mutation this daemon serves (insert, classify, repair) drops
	// its cached query results — a coordinator can never answer across
	// an index change it has itself applied.
	store.OnMutation(s.invalidateSearchCache)
	store.Attach(s) // registers services under smu, not s.mu
	s.store = store
	s.configJSON = append([]byte(nil), payload...)
	return nil
}

// durableHeader contributes the configuration record at the head of
// every compacted snapshot, keeping each generation self-contained. A
// daemon holding an ingest session re-emits the whole session — begin,
// every acked chunk, commit — so op-log truncation can never drop the
// corpus shard (needed by hdk.build and resume negotiation) out from
// under the index entries that follow it. The records are staged under
// mu and emitted outside it: emit writes through the durable store,
// whose locks must never nest inside mu.
func (s *Server) durableHeader(emit func(kind string, payload []byte) error) error {
	type headerRec struct {
		kind    string
		payload []byte
	}
	var recs []headerRec
	stage := func(kind string, payload []byte) error {
		recs = append(recs, headerRec{kind, payload})
		return nil
	}
	s.mu.Lock()
	if s.ingest != nil {
		s.ingestHeaderLocked(stage)
	} else {
		stage(durConfigure, append([]byte(nil), s.configJSON...))
	}
	s.mu.Unlock()
	for _, r := range recs {
		if err := emit(r.kind, r.payload); err != nil {
			return err
		}
	}
	return nil
}

// Store returns the daemon's store server (nil before configuration).
func (s *Server) Store() *core.StoreServer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// FetchInfo asks a daemon for its self-description.
func FetchInfo(tr transport.Transport, addr string) (Info, error) {
	var info Info
	raw, err := transport.CallRetry(tr, addr, overlay.EncodeEnvelope(ctrlInfo, nil), maxTransientRetries)
	if err != nil {
		return info, err
	}
	err = json.Unmarshal(raw, &info)
	return info, err
}

// FetchMetrics pulls a daemon's full telemetry snapshot over the
// cluster.metrics RPC (versioned binary codec, not JSON — histograms
// ride along intact, so snapshots from several daemons merge
// bucket-exactly for cluster-wide quantiles).
func FetchMetrics(tr transport.Transport, addr string) (telemetry.Snapshot, error) {
	raw, err := transport.CallRetry(tr, addr, overlay.EncodeEnvelope(ctrlMetrics, nil), maxTransientRetries)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	return telemetry.DecodeSnapshot(raw)
}

// Compile-time check: the server is an overlay member (store attachment
// target).
var _ overlay.Member = (*Server)(nil)
