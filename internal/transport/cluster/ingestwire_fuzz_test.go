package cluster

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fuzzcorpus"
)

// Fuzz targets for the streamed-ingest wire protocol, grouped by the
// three frames a hostile client controls end to end: begin (session
// setup), chunk (the bulk payload path, CRC-framed, with the meta and
// docs chunk payload codecs behind it) and commit (plus the small
// control codecs: offer, wants, build round status). Every decoder here
// was hardened against allocation bombs in the PR4 class — the fuzz
// bodies decode arbitrary bytes, so an unbounded prealloc or index slip
// surfaces as an OOM or panic immediately.

func ingestBeginSeeds() [][]byte {
	begin := encodeIngestBegin(ingestBegin{
		Session:    7,
		Config:     []byte(`{"smax":3}`),
		TotalDocs:  100,
		ShardDocs:  25,
		VocabSize:  1000,
		ChunkBytes: 1 << 16,
	})
	return [][]byte{
		begin[1:], // dispatcher strips the frame byte before decode
		encodeIngestBeginResp(1, 42),
		{},
		{0xff, 0xff, 0xff, 0xff},
	}
}

func ingestChunkSeeds() [][]byte {
	meta := encodeMetaChunk(2, []string{"alpha", "beta"}, []int{3, 1})
	docs := encodeDocsChunkDoc(nil, corpus.Document{ID: 5, Terms: []corpus.TermID{1, 3}})
	chunk := encodeIngestChunk(ingestChunk{Session: 7, Seq: 1, Payload: meta})
	return [][]byte{
		chunk[1:],
		meta[1:], // chunk payload codecs (kind byte stripped by the applier)
		docs,
		{},
		{0x00, 0x00, 0x00, 0x00, 0x00},
	}
}

func ingestCommitSeeds() [][]byte {
	commit := encodeIngestCommit(ingestCommit{Session: 7, Chunks: 3, Digest: 0xdeadbeef})
	offer := encodeIngestOffer(ingestOffer{Session: 7, FirstSeq: 1, Digests: []uint64{9, 8, 7}})
	return [][]byte{
		commit[1:],
		offer[1:],
		encodeIngestWants([]uint64{1, 3}),
		encodeRoundStatusResp(buildFailed, 12, "boom"),
		{},
	}
}

func FuzzDecodeIngestBegin(f *testing.F) {
	for _, seed := range ingestBeginSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if b, err := decodeIngestBegin(data); err == nil {
			enc := encodeIngestBegin(b)
			b2, err := decodeIngestBegin(enc[1:])
			if err != nil {
				t.Fatalf("re-decode of accepted begin failed: %v", err)
			}
			if !bytes.Equal(encodeIngestBegin(b2), enc) {
				t.Fatal("begin encoding not stable")
			}
		}
		decodeIngestBeginResp(data)
	})
}

func FuzzDecodeIngestChunk(f *testing.F) {
	for _, seed := range ingestChunkSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := decodeIngestChunk(data); err == nil {
			enc := encodeIngestChunk(c)
			c2, err := decodeIngestChunk(enc[1:])
			if err != nil {
				t.Fatalf("re-decode of accepted chunk failed: %v", err)
			}
			if c2.Session != c.Session || c2.Seq != c.Seq || !bytes.Equal(c2.Payload, c.Payload) {
				t.Fatal("chunk roundtrip drifted")
			}
		}
		// Chunk payload codecs: bounded installs into caller-sized state.
		vocab := make([]string, 16)
		freqs := make([]int, 16)
		decodeMetaChunk(data, vocab, freqs)
		decodeDocsChunk(data, 16, nil)
	})
}

func FuzzDecodeIngestCommit(f *testing.F) {
	for _, seed := range ingestCommitSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := decodeIngestCommit(data); err == nil {
			enc := encodeIngestCommit(c)
			if c2, err := decodeIngestCommit(enc[1:]); err != nil || c2 != c {
				t.Fatalf("commit roundtrip drifted: %+v vs %+v (%v)", c, c2, err)
			}
		}
		decodeIngestOffer(data)
		decodeIngestWants(data)
		decodeBuildSize(data)
		decodeRoundStatusResp(data)
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus; see
// package fuzzcorpus.
func TestWriteFuzzCorpus(t *testing.T) {
	if !fuzzcorpus.Enabled() {
		t.Skipf("set %s=1 to regenerate testdata/fuzz", fuzzcorpus.EnvVar)
	}
	for name, seeds := range map[string][][]byte{
		"FuzzDecodeIngestBegin":  ingestBeginSeeds(),
		"FuzzDecodeIngestChunk":  ingestChunkSeeds(),
		"FuzzDecodeIngestCommit": ingestCommitSeeds(),
	} {
		if err := fuzzcorpus.Write(name, seeds); err != nil {
			t.Fatal(err)
		}
	}
}
