package cluster

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Registry series the cluster daemon emits.
const (
	metricInsertRPCs         = "hdk_insert_rpcs_total"
	metricFetchRPCs          = "hdk_fetch_rpcs_total"
	metricSearchRPCs         = "hdk_search_rpcs_total"
	metricSearchShed         = "hdk_search_shed_total"
	metricSearchCacheHits    = "hdk_search_cache_hits_total"
	metricSearchCacheMisses  = "hdk_search_cache_misses_total"
	metricSearchSlow         = "hdk_search_slow_total"
	metricIngestChunks       = "hdk_ingest_chunks_total"
	metricIngestBytes        = "hdk_ingest_bytes_total"
	metricBuildRounds        = "hdk_build_rounds_total"
	metricAdmissionWaitNanos = "hdk_search_admission_wait_nanoseconds"
	metricCoordinationNanos  = "hdk_search_coordination_nanoseconds"
	metricBuildRoundNanos    = "hdk_build_round_nanoseconds"
	metricSearchQueueDepth   = "hdk_search_queue_depth"
	metricClusterMembers     = "hdk_cluster_members"
	metricStoreKeys          = "hdk_store_keys"
)

// serverMetrics is the daemon's telemetry registry plus the hot-path
// instruments pre-registered on it, so serving code increments a field
// instead of taking the registry lock per request. The registry itself
// is the single source of truth: cluster.info renders a JSON view over
// these same series, and cluster.metrics / the -http endpoint export
// the full registry (coordinator- and transport-level series included).
type serverMetrics struct {
	reg *telemetry.Registry

	insertRPCs  *telemetry.Counter // hdk.insert RPCs served (re-index traffic meter)
	fetchRPCs   *telemetry.Counter // hdk.fetchBatch RPCs served (query fetch meter)
	searchRPCs  *telemetry.Counter // hdk.search coordinations served (cache hits included)
	searchShed  *telemetry.Counter // searches shed by admission control
	cacheHits   *telemetry.Counter // query-result cache hits
	cacheMisses *telemetry.Counter // query-result cache misses
	slowQueries *telemetry.Counter // coordinations over the slow-query threshold

	ingestChunks *telemetry.Counter // hdk.ingest chunks durably accepted
	ingestBytes  *telemetry.Counter // hdk.ingest chunk payload bytes accepted
	buildRounds  *telemetry.Counter // hdk.build per-shard rounds completed

	admissionWait  *telemetry.Histogram // wait for a worker slot, admitted requests only
	coordination   *telemetry.Histogram // fresh coordination latency (cache hits excluded)
	buildRoundTime *telemetry.Histogram // coordinator-observed wall time per build round
}

func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	return &serverMetrics{
		reg:            reg,
		insertRPCs:     reg.Counter(metricInsertRPCs),
		fetchRPCs:      reg.Counter(metricFetchRPCs),
		searchRPCs:     reg.Counter(metricSearchRPCs),
		searchShed:     reg.Counter(metricSearchShed),
		cacheHits:      reg.Counter(metricSearchCacheHits),
		cacheMisses:    reg.Counter(metricSearchCacheMisses),
		slowQueries:    reg.Counter(metricSearchSlow),
		ingestChunks:   reg.Counter(metricIngestChunks),
		ingestBytes:    reg.Counter(metricIngestBytes),
		buildRounds:    reg.Counter(metricBuildRounds),
		admissionWait:  reg.Histogram(metricAdmissionWaitNanos),
		coordination:   reg.Histogram(metricCoordinationNanos),
		buildRoundTime: reg.Histogram(metricBuildRoundNanos),
	}
}

// registerGauges wires the callback gauges that read live server state.
// Called from NewServer before the transport listens; each callback is
// evaluated at snapshot time and takes only the lock of the state it
// reads (Snapshot is never called under those locks).
func (s *Server) registerGauges() {
	reg := s.metrics.reg
	reg.GaugeFunc(metricSearchQueueDepth, func() float64 {
		s.amu.Lock()
		defer s.amu.Unlock()
		// Admitted minus running = waiting for a worker slot (clamped:
		// the two reads are not atomic w.r.t. releases in flight).
		if depth := s.searchQueued - len(s.searchSem); depth > 0 {
			return float64(depth)
		}
		return 0
	})
	reg.GaugeFunc(metricClusterMembers, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.members))
	})
	reg.GaugeFunc(metricStoreKeys, func() float64 {
		s.mu.Lock()
		store := s.store
		s.mu.Unlock()
		if store == nil {
			return 0
		}
		return float64(store.KeyCount())
	})
}

// Metrics returns the daemon's telemetry registry — the one cluster.info
// and cluster.metrics render, shared with the coordinator's per-level
// series. Callers instrument further subsystems onto it (the daemon
// main registers its transport and durable store here) and the -http
// endpoint serves its Prometheus exposition.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics.reg }

// SetSlowQueryLog arms the per-node slow-query log: any fresh
// coordination slower than threshold bumps hdk_search_slow_total and is
// reported to stderr, rate-limited to one line per second so a
// saturated daemon meters itself instead of flooding its log (the
// counter stays exact; only the log lines are sampled). A zero or
// negative threshold disables both.
func (s *Server) SetSlowQueryLog(threshold time.Duration) {
	s.slowQueryNanos.Store(int64(threshold))
}

func (s *Server) noteSlowQuery(req core.SearchRequest, res *core.SearchResult, dur time.Duration) {
	thr := s.slowQueryNanos.Load()
	if thr <= 0 || int64(dur) < thr {
		return
	}
	s.metrics.slowQueries.Inc()
	now := time.Now().UnixNano()
	last := s.slowLogLast.Load()
	if now-last < int64(time.Second) || !s.slowLogLast.CompareAndSwap(last, now) {
		return
	}
	fmt.Fprintf(os.Stderr, "hdknode %s: slow query (%v): terms=%q k=%d rpcs=%d failovers=%d postings=%d\n",
		s.addr, dur.Round(time.Microsecond), req.Terms, req.K, res.RPCs, res.Failovers, res.FetchedPosts)
}
