package cluster

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/transport"
)

// TestCoordinatorMatchesEngines is the node-side query path's parity
// core: every daemon must coordinate every query to the bit-identical
// ranked answer (and cost metrics) the in-process engine and the
// client-fabric engine produce.
func TestCoordinatorMatchesEngines(t *testing.T) {
	const peers, replicas = 4, 2
	col := testCollection(t, 120)
	cfg := testConfig(col, replicas)

	ref := buildReferenceEngine(t, col, peers, cfg)

	tr := transport.NewInProc()
	defer tr.Close()
	servers := startInProcServers(t, tr, peers, replicas)
	c, err := Connect(tr, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	eng := buildClusterEngine(t, c, col, cfg)

	refOrigin := ref.Network().Members()[0]
	cluOrigin := c.Members()[0]
	addrs := make([]string, 0, peers)
	for _, s := range servers {
		addrs = append(addrs, s.Addr())
	}
	for qi, q := range testQueries(col, 25) {
		want, err := ref.Search(q, refOrigin, 10)
		if err != nil {
			t.Fatal(err)
		}
		viaFabric, err := eng.Search(q, cluOrigin, 10)
		if err != nil {
			t.Fatal(err)
		}
		// Rotate the coordinator: ANY daemon must produce the answer.
		req := core.SearchRequest{Terms: eng.QueryTerms(q), K: 10}
		got, cached, err := c.SearchVia(addrs[qi%len(addrs)], req)
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatalf("query %d: first coordination reported cached", qi)
		}
		if !reflect.DeepEqual(want.Results, got.Results) {
			t.Fatalf("query %d: coordinator diverges from in-process engine\nref:   %v\ncoord: %v",
				qi, want.Results, got.Results)
		}
		if !reflect.DeepEqual(viaFabric.Results, got.Results) {
			t.Fatalf("query %d: coordinator diverges from client fabric", qi)
		}
		// Postings/probe counts are placement-invariant (vs the reference
		// ring); RPC groupings depend on member addresses, so those are
		// compared against the client fabric, which shares them.
		if got.FetchedPosts != want.FetchedPosts || got.ProbedKeys != want.ProbedKeys ||
			got.FoundKeys != want.FoundKeys || got.Rounds != want.Rounds {
			t.Fatalf("query %d: coordinator metrics diverge: ref %+v, coord %+v", qi, want, got)
		}
		if got.RPCs != viaFabric.RPCs || got.Failovers != viaFabric.Failovers {
			t.Fatalf("query %d: coordinator RPC accounting diverges: fabric %+v, coord %+v", qi, viaFabric, got)
		}
	}
}

// TestCoordinatorResultCache exercises the per-node result LRU: a
// repeat query is answered from cache with zero new fetch RPCs anywhere
// in the cluster, a mutation served by the coordinator invalidates it,
// and the NoCache option bypasses it entirely.
func TestCoordinatorResultCache(t *testing.T) {
	const peers = 3
	col := testCollection(t, 80)
	cfg := testConfig(col, 1)

	tr := transport.NewInProc()
	defer tr.Close()
	servers := startInProcServers(t, tr, peers, 1)
	c, err := Connect(tr, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	eng := buildClusterEngine(t, c, col, cfg)

	coord := servers[0].Addr()
	q := testQueries(col, 1)[0]
	req := core.SearchRequest{Terms: eng.QueryTerms(q), K: 10}

	first, cached, err := c.SearchVia(coord, req)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cold query reported cached")
	}

	fetchesBefore := clusterFetchRPCs(t, tr, servers)
	again, cached, err := c.SearchVia(coord, req)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("repeat query not served from cache")
	}
	if !reflect.DeepEqual(first.Results, again.Results) {
		t.Fatal("cached answer differs from original")
	}
	if after := clusterFetchRPCs(t, tr, servers); after != fetchesBefore {
		t.Fatalf("repeat query cost %d fetch RPCs, want 0", after-fetchesBefore)
	}
	info, err := FetchInfo(tr, coord)
	if err != nil {
		t.Fatal(err)
	}
	if info.SearchCacheHits == 0 || info.SearchRPCs < 2 {
		t.Fatalf("info counters: %+v", info)
	}

	// Any mutation served by the coordinator (an empty repair batch is
	// the cheapest legitimate one) must drop its cached results.
	if _, err := c.CallService(coord, replica.Service, replica.EncodeBatch(nil, nil)); err != nil {
		t.Fatal(err)
	}
	_, cached, err = c.SearchVia(coord, req)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("query after mutation still served from cache")
	}

	// NoCache: neither reads nor fills the cache.
	nc := req
	nc.NoCache = true
	for i := 0; i < 2; i++ {
		res, cached, err := c.SearchVia(coord, nc)
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatalf("NoCache request %d served from cache", i)
		}
		if !reflect.DeepEqual(first.Results, res.Results) {
			t.Fatal("NoCache answer diverges")
		}
	}
}

// TestCoordinatorUnconfigured verifies a daemon refuses to coordinate
// before the cluster is configured.
func TestCoordinatorUnconfigured(t *testing.T) {
	tr := transport.NewInProc()
	defer tr.Close()
	servers := startInProcServers(t, tr, 2, 1)
	c, err := Connect(tr, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SearchVia(servers[1].Addr(), core.SearchRequest{Terms: []string{"x"}, K: 5}); err == nil {
		t.Fatal("unconfigured daemon coordinated a search")
	}
}

// clusterFetchRPCs sums the daemons' served-fetch meters.
func clusterFetchRPCs(t *testing.T, tr transport.Transport, servers []*Server) uint64 {
	t.Helper()
	var total uint64
	for _, s := range servers {
		info, err := FetchInfo(tr, s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		total += info.FetchRPCs
	}
	return total
}
