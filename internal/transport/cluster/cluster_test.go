package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
	"repro/internal/transport"
)

// testCollection generates a small deterministic corpus.
func testCollection(t *testing.T, docs int) *corpus.Collection {
	t.Helper()
	col, err := corpus.Generate(corpus.GenParams{
		NumDocs: docs, VocabSize: 1500, AvgDocLen: 40,
		Skew: 1.0, NumTopics: 6, TopicTerms: 60, TopicMix: 0.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func testConfig(col *corpus.Collection, replicas int) core.Config {
	cfg := core.DefaultConfig(rank.CollectionStats{NumDocs: col.M(), AvgDocLen: col.AvgDocLen()})
	cfg.DFMax = 8
	cfg.Window = 8
	cfg.ReplicationFactor = replicas
	return cfg
}

// startInProcServers binds n daemon servers on one shared in-process
// transport.
func startInProcServers(t *testing.T, tr transport.Transport, n, replicas int) []*Server {
	t.Helper()
	servers := make([]*Server, n)
	for i := range servers {
		s, err := NewServer(tr, fmt.Sprintf("node-%d", i), replicas)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := s.Join(servers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		servers[i] = s
	}
	return servers
}

func TestJoinConvergesMembership(t *testing.T) {
	tr := transport.NewInProc()
	defer tr.Close()
	servers := startInProcServers(t, tr, 4, 1)

	want := []string{"node-0", "node-1", "node-2", "node-3"}
	for i, s := range servers {
		if got := s.memberList(); !reflect.DeepEqual(got, want) {
			t.Fatalf("server %d members = %v, want %v", i, got, want)
		}
	}
	// Discovery through any member sees the full cluster.
	for _, seed := range want {
		addrs, err := MembersOf(tr, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(addrs, want) {
			t.Fatalf("MembersOf(%s) = %v, want %v", seed, addrs, want)
		}
	}
	info, err := FetchInfo(tr, "node-2")
	if err != nil {
		t.Fatal(err)
	}
	if info.Addr != "node-2" || info.Members != 4 || info.Configured {
		t.Fatalf("info = %+v", info)
	}
}

func TestConfigureIdempotentAndGuarded(t *testing.T) {
	tr := transport.NewInProc()
	defer tr.Close()
	servers := startInProcServers(t, tr, 2, 1)
	col := testCollection(t, 40)

	c, err := Connect(tr, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(col, 1)
	if err := c.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := c.Configure(cfg); err != nil {
		t.Fatalf("re-sending identical config: %v", err)
	}
	other := cfg
	other.DFMax = 99
	if err := c.Configure(other); err == nil {
		t.Fatal("divergent reconfiguration accepted")
	}
	got, err := c.Meta(servers[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("meta = %+v, want %+v", got, cfg)
	}
}

// buildReferenceEngine builds the classic in-process engine over a Chord
// overlay as ground truth.
func buildReferenceEngine(t *testing.T, col *corpus.Collection, peers int, cfg core.Config) *core.Engine {
	t.Helper()
	net := overlay.NewNetwork(transport.NewInProc())
	nodes := make([]*overlay.Node, peers)
	for i := range nodes {
		var err error
		if nodes[i], err = net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := core.NewEngine(net, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range col.SplitRoundRobin(peers) {
		if _, err := eng.AddPeer(nodes[i], part); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// buildClusterEngine configures the daemons and builds the same index
// through the cluster client fabric.
func buildClusterEngine(t *testing.T, c *Client, col *corpus.Collection, cfg core.Config) *core.Engine {
	t.Helper()
	if err := c.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(c, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	members := c.Members()
	for i, part := range col.SplitRoundRobin(len(members)) {
		if _, err := eng.AddPeer(members[i], part); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func testQueries(col *corpus.Collection, n int) []corpus.Query {
	qs := make([]corpus.Query, 0, n)
	for i := 0; i < n; i++ {
		d := &col.Docs[(i*7)%col.M()]
		k := 3
		if len(d.Terms) < k {
			k = len(d.Terms)
		}
		qs = append(qs, corpus.Query{Terms: d.Terms[:k]})
	}
	return qs
}

// TestClusterEngineMatchesInProcess is the deployment-parity core: the
// SAME engine code, building through daemon-hosted stores over the
// cluster fabric, must serve bit-identical ranked results to the
// in-process engine on the same corpus and configuration.
func TestClusterEngineMatchesInProcess(t *testing.T) {
	const peers = 4
	col := testCollection(t, 120)
	cfg := testConfig(col, 1)

	ref := buildReferenceEngine(t, col, peers, cfg)

	tr := transport.NewInProc()
	defer tr.Close()
	servers := startInProcServers(t, tr, peers, 1)
	c, err := Connect(tr, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	eng := buildClusterEngine(t, c, col, cfg)

	// Index content parity: total resident postings and keys agree.
	refStats := ref.Stats()
	nodeStats, err := c.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	posts, keys := 0, 0
	for _, ns := range nodeStats {
		posts += ns.Stats.PostsTotal()
		keys += ns.Stats.KeysTotal()
	}
	if posts != refStats.StoredTotal || keys != refStats.KeysTotal {
		t.Fatalf("cluster stores %d postings/%d keys, reference %d/%d",
			posts, keys, refStats.StoredTotal, refStats.KeysTotal)
	}

	// A SECOND client re-sending the identical configuration after the
	// build must be refused: re-running BuildIndex against populated
	// stores would double every df and silently corrupt classifications.
	if err := c.Configure(cfg); err == nil {
		t.Fatal("re-configuring a built cluster accepted")
	}

	refOrigin := ref.Network().Members()[0]
	cluOrigin := c.Members()[0]
	for qi, q := range testQueries(col, 25) {
		want, err := ref.Search(q, refOrigin, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Search(q, cluOrigin, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Results, got.Results) {
			t.Fatalf("query %d: ranked results diverge\nref: %v\nclu: %v", qi, want.Results, got.Results)
		}
		if want.FetchedPosts != got.FetchedPosts || want.ProbedKeys != got.ProbedKeys || want.FoundKeys != got.FoundKeys {
			t.Fatalf("query %d: cost metrics diverge: ref %+v, cluster %+v", qi, want, got)
		}
	}
}

// TestClusterCrashFailoverAndRepair runs the full failure sequence over
// real sockets in one test process: every daemon owns its own TCP
// transport, so closing one is a crash. R=3: searches first fail over
// around the dead member (still in the membership table), then the
// member is removed and repair restores full coverage.
func TestClusterCrashFailoverAndRepair(t *testing.T) {
	const peers, replicas = 5, 3
	col := testCollection(t, 100)
	cfg := testConfig(col, replicas)

	servers := make([]*Server, peers)
	trs := make([]*transport.TCP, peers)
	byAddr := make(map[string]int)
	for i := range servers {
		trs[i] = transport.NewTCP()
		defer trs[i].Close()
		var err error
		servers[i], err = NewServer(trs[i], "127.0.0.1:0", replicas)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := servers[i].Join(servers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		byAddr[servers[i].Addr()] = i
	}

	ctr := transport.NewTCP()
	defer ctr.Close()
	c, err := Connect(ctr, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != peers {
		t.Fatalf("client sees %d members, want %d", c.Size(), peers)
	}
	eng := buildClusterEngine(t, c, col, cfg)

	queries := testQueries(col, 15)
	origin := c.Members()[0]
	intact := make([][]rank.Result, len(queries))
	for i, q := range queries {
		res, err := eng.Search(q, origin, 10)
		if err != nil {
			t.Fatal(err)
		}
		intact[i] = res.Results
	}

	// Crash the daemon that owns the first query's first term WITHOUT
	// telling the client: that term is a guaranteed level-1 probe, so the
	// query set must discover the dead owner and fail over to surviving
	// replicas while staying bit-identical. (A position-picked victim can
	// legitimately own zero probed keys on a 5-node ring and would make
	// the failover assertion a coin flip.)
	victim, ok := c.OwnerOf(col.Vocab[queries[0].Terms[0]])
	if !ok {
		t.Fatal("empty membership")
	}
	vi := byAddr[victim.Addr()]
	trs[vi].Close()

	failovers := 0
	for i, q := range queries {
		res, err := eng.Search(q, origin, 10)
		if err != nil {
			t.Fatalf("query %d after crash: %v", i, err)
		}
		if !reflect.DeepEqual(intact[i], res.Results) {
			t.Fatalf("query %d: results changed after crash with R=%d", i, replicas)
		}
		failovers += res.Failovers
	}
	if failovers == 0 {
		t.Fatal("no fetch batch failed over to a replica — crash not exercised")
	}

	// Now the operator notices: remove the member, audit, repair, audit.
	if err := eng.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if under := c.Audit(replicas).UnderReplicated; under == 0 {
		t.Fatal("audit reports full coverage right after losing a member")
	}
	rstats, err := c.Repairer(replicas).Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rstats.CopiesSent == 0 {
		t.Fatal("repair shipped nothing")
	}
	if under := c.Audit(replicas).UnderReplicated; under != 0 {
		t.Fatalf("%d keys still under-replicated after repair", under)
	}
	for i, q := range queries {
		res, err := eng.Search(q, origin, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(intact[i], res.Results) {
			t.Fatalf("query %d: results changed after repair", i)
		}
	}

	// Forget the dead address so a NEW client's discovery starts clean.
	if err := c.Forget(victim.Addr()); err != nil {
		t.Fatal(err)
	}
	fresh, err := Connect(ctr, c.Members()[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Size() != peers-1 {
		t.Fatalf("fresh client sees %d members after forget, want %d", fresh.Size(), peers-1)
	}
	for _, m := range fresh.Members() {
		if m.Addr() == victim.Addr() {
			t.Fatal("fresh client rediscovered the dead member")
		}
	}
}

// TestJoinSurvivesDeadMember: a new daemon must still be able to join
// when the seed's grow-only view names a crashed member (announce is
// best-effort; the dead address is cleaned up separately via Forget).
func TestJoinSurvivesDeadMember(t *testing.T) {
	trs := make([]*transport.TCP, 4)
	servers := make([]*Server, 4)
	for i := 0; i < 3; i++ {
		trs[i] = transport.NewTCP()
		defer trs[i].Close()
		var err error
		if servers[i], err = NewServer(trs[i], "127.0.0.1:0", 1); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := servers[i].Join(servers[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	trs[2].Close() // crash the third daemon; nobody Forgets it

	trs[3] = transport.NewTCP()
	defer trs[3].Close()
	var err error
	if servers[3], err = NewServer(trs[3], "127.0.0.1:0", 1); err != nil {
		t.Fatal(err)
	}
	if err := servers[3].Join(servers[0].Addr()); err != nil {
		t.Fatalf("join with a dead member in the seed's view: %v", err)
	}
	if got := len(servers[3].memberList()); got != 4 {
		t.Fatalf("joiner sees %d members, want 4 (3 live + 1 dead, pending Forget)", got)
	}
	// The surviving announced member learned the joiner.
	found := false
	for _, a := range servers[1].memberList() {
		if a == servers[3].Addr() {
			found = true
		}
	}
	if !found {
		t.Fatal("live member did not learn the joiner")
	}
}

func TestClientChurnAndOwnership(t *testing.T) {
	tr := transport.NewInProc()
	defer tr.Close()
	servers := startInProcServers(t, tr, 5, 2)
	c, err := Connect(tr, servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}

	// Replica sets mirror the Chord successor-list contract.
	for _, key := range []string{"alpha", "beta", "gamma:delta"} {
		owners := c.OwnersOf(key, 2)
		if len(owners) != 2 || owners[0].ID() == owners[1].ID() {
			t.Fatalf("OwnersOf(%q) = %v", key, owners)
		}
		primary, ok := c.OwnerOf(key)
		if !ok || primary.ID() != owners[0].ID() {
			t.Fatalf("OwnerOf(%q) disagrees with OwnersOf", key)
		}
		routed, hops, err := c.Route(c.Members()[3], key)
		if err != nil || hops != 0 || routed.ID() != primary.ID() {
			t.Fatalf("Route(%q) = %v, %d, %v", key, routed, hops, err)
		}
	}

	// Removing the primary promotes the old second replica.
	key := "alpha"
	before := c.OwnersOf(key, 2)
	if !c.RemoveNode(before[0].ID()) {
		t.Fatal("RemoveNode failed")
	}
	after, ok := c.OwnerOf(key)
	if !ok || after.ID() != before[1].ID() {
		t.Fatalf("post-churn owner = %v, want promoted replica %v", after, before[1])
	}
	if c.Size() != 4 {
		t.Fatalf("Size = %d, want 4", c.Size())
	}
	if c.RemoveNode(before[0].ID()) {
		t.Fatal("double remove succeeded")
	}
	// Calls to the removed address fail fast.
	if _, err := c.CallService(before[0].Addr(), ctrlInfo, nil); err == nil {
		t.Fatal("call to removed member succeeded")
	}
}
