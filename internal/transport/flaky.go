package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrTransient marks a delivery failure that the caller may retry: the
// message was dropped by the network, not rejected by the remote handler.
// The overlay retries calls that fail with this error.
var ErrTransient = errors.New("transport: transient delivery failure")

// Flaky wraps a Transport and drops a deterministic fraction of calls
// with ErrTransient — failure injection for protocol-robustness tests.
// Drops happen before delivery, so the remote handler never runs for a
// dropped message (at-most-once semantics, the harder case for the
// protocols under test).
type Flaky struct {
	inner Transport
	rate  float64

	mu      sync.Mutex
	rng     *rand.Rand
	dropped uint64
}

// NewFlaky wraps inner, dropping rate ∈ [0,1) of calls, deterministic in
// seed.
func NewFlaky(inner Transport, rate float64, seed int64) (*Flaky, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("transport: drop rate must be in [0,1), got %g", rate)
	}
	return &Flaky{inner: inner, rate: rate, rng: rand.New(rand.NewSource(seed))}, nil
}

// Listen implements Transport.
func (f *Flaky) Listen(addr string, h Handler) (string, error) {
	return f.inner.Listen(addr, h)
}

// Call implements Transport, dropping a fraction of requests.
func (f *Flaky) Call(addr string, req []byte) ([]byte, error) {
	f.mu.Lock()
	drop := f.rng.Float64() < f.rate
	if drop {
		f.dropped++
	}
	f.mu.Unlock()
	if drop {
		return nil, fmt.Errorf("%w: dropped call to %s", ErrTransient, addr)
	}
	return f.inner.Call(addr, req)
}

// Close implements Transport.
func (f *Flaky) Close() error { return f.inner.Close() }

// Stats implements Transport (delivered traffic only).
func (f *Flaky) Stats() Stats { return f.inner.Stats() }

// Dropped returns the number of injected failures.
func (f *Flaky) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}
