package transport

import (
	"errors"
	"testing"
)

func TestFlakyDropsApproximatelyRate(t *testing.T) {
	inner := NewInProc()
	defer inner.Close()
	inner.Listen("svc", func(b []byte) ([]byte, error) { return b, nil })
	f, err := NewFlaky(inner, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	const calls = 5000
	failed := 0
	for i := 0; i < calls; i++ {
		if _, err := f.Call("svc", []byte{1}); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("drop returned non-transient error: %v", err)
			}
			failed++
		}
	}
	rate := float64(failed) / calls
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("observed drop rate %.3f, want ~0.30", rate)
	}
	if f.Dropped() != uint64(failed) {
		t.Fatalf("Dropped() = %d, want %d", f.Dropped(), failed)
	}
}

func TestFlakyZeroRatePassesThrough(t *testing.T) {
	inner := NewInProc()
	defer inner.Close()
	inner.Listen("svc", func(b []byte) ([]byte, error) { return append(b, '!'), nil })
	f, _ := NewFlaky(inner, 0, 1)
	for i := 0; i < 100; i++ {
		resp, err := f.Call("svc", []byte("x"))
		if err != nil || string(resp) != "x!" {
			t.Fatalf("call %d failed: %q %v", i, resp, err)
		}
	}
}

func TestFlakyValidation(t *testing.T) {
	inner := NewInProc()
	defer inner.Close()
	if _, err := NewFlaky(inner, -0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewFlaky(inner, 1.0, 1); err == nil {
		t.Error("rate 1.0 accepted (would loop forever under retries)")
	}
}

func TestFlakyHandlerErrorsNotTransient(t *testing.T) {
	inner := NewInProc()
	defer inner.Close()
	inner.Listen("bad", func([]byte) ([]byte, error) { return nil, errors.New("semantic") })
	f, _ := NewFlaky(inner, 0, 1)
	_, err := f.Call("bad", nil)
	if err == nil || errors.Is(err, ErrTransient) {
		t.Fatalf("handler error misclassified: %v", err)
	}
}

func TestFlakyDeterministic(t *testing.T) {
	run := func() []bool {
		inner := NewInProc()
		defer inner.Close()
		inner.Listen("svc", func(b []byte) ([]byte, error) { return b, nil })
		f, _ := NewFlaky(inner, 0.5, 7)
		out := make([]bool, 50)
		for i := range out {
			_, err := f.Call("svc", nil)
			out[i] = err == nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("drop pattern not deterministic under fixed seed")
		}
	}
}
