package transport

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func testTransportBasics(t *testing.T, tr Transport, addrHint func(i int) string) {
	t.Helper()
	echoAddr, err := tr.Listen(addrHint(0), func(req []byte) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	failAddr, err := tr.Listen(addrHint(1), func(req []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := tr.Call(echoAddr, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("echo:hi")) {
		t.Fatalf("resp = %q", resp)
	}

	if _, err := tr.Call(failAddr, []byte("x")); err == nil {
		t.Fatal("handler error not propagated")
	} else if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error %q does not carry handler message", err)
	}

	st := tr.Stats()
	if st.Messages != 1 {
		t.Fatalf("Messages = %d, want 1 (failed calls not accounted)", st.Messages)
	}
	if want := uint64(len("hi") + len("echo:hi")); st.Bytes != want {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, want)
	}
}

func TestInProcBasics(t *testing.T) {
	tr := NewInProc()
	defer tr.Close()
	testTransportBasics(t, tr, func(i int) string { return fmt.Sprintf("peer-%d", i) })
}

func TestTCPBasics(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	testTransportBasics(t, tr, func(int) string { return "127.0.0.1:0" })
}

func TestInProcUnknownAddress(t *testing.T) {
	tr := NewInProc()
	defer tr.Close()
	if _, err := tr.Call("nobody", nil); !errors.Is(err, ErrUnknownAddress) {
		t.Fatalf("err = %v, want ErrUnknownAddress", err)
	}
}

func TestInProcDuplicateBind(t *testing.T) {
	tr := NewInProc()
	defer tr.Close()
	if _, err := tr.Listen("a", func(b []byte) ([]byte, error) { return b, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("a", func(b []byte) ([]byte, error) { return b, nil }); err == nil {
		t.Fatal("duplicate bind accepted")
	}
}

func TestInProcClosed(t *testing.T) {
	tr := NewInProc()
	tr.Listen("a", func(b []byte) ([]byte, error) { return b, nil })
	tr.Close()
	if _, err := tr.Call("a", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after Close: %v", err)
	}
	if _, err := tr.Listen("b", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Listen after Close: %v", err)
	}
}

func TestInProcConcurrentCalls(t *testing.T) {
	tr := NewInProc()
	defer tr.Close()
	tr.Listen("svc", func(req []byte) ([]byte, error) { return req, nil })
	var wg sync.WaitGroup
	const workers, calls = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := tr.Call("svc", []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Stats().Messages; got != workers*calls {
		t.Fatalf("Messages = %d, want %d", got, workers*calls)
	}
}

func TestTCPMultipleCallsSequential(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr, err := tr.Listen("127.0.0.1:0", func(req []byte) ([]byte, error) {
		return append(req, '!'), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		msg := []byte(fmt.Sprintf("m%d", i))
		resp, err := tr.Call(addr, msg)
		if err != nil {
			t.Fatal(err)
		}
		if want := string(msg) + "!"; string(resp) != want {
			t.Fatalf("resp = %q, want %q", resp, want)
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr, _ := tr.Listen("127.0.0.1:0", func(req []byte) ([]byte, error) { return req, nil })
	big := bytes.Repeat([]byte{0xab}, 1<<20)
	resp, err := tr.Call(addr, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPEmptyPayload(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr, _ := tr.Listen("127.0.0.1:0", func(req []byte) ([]byte, error) { return nil, nil })
	resp, err := tr.Call(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Fatalf("resp = %v, want empty", resp)
	}
}

func TestTCPCallUnreachable(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if _, err := tr.Call("127.0.0.1:1", []byte("x")); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestTCPCloseUnblocksAccept(t *testing.T) {
	tr := NewTCP()
	if _, err := tr.Listen("127.0.0.1:0", func(b []byte) ([]byte, error) { return b, nil }); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		tr.Close()
		close(done)
	}()
	<-done // must not hang
}
