package gossip

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/transport"
)

// setup builds N agents over a Chord fabric with a split collection.
func setup(t testing.TB, peers, docs int, floor int) ([]*Agent, *corpus.Collection) {
	t.Helper()
	p := corpus.DefaultGenParams(docs)
	p.AvgDocLen = 50
	col, err := corpus.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	net := overlay.NewNetwork(transport.NewInProc())
	var agents []*Agent
	for i, part := range col.SplitRoundRobin(peers) {
		node, err := net.AddNode(fmt.Sprintf("peer-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, NewAgent(net, node, part, floor, int64(i+1)))
	}
	return agents, col
}

func TestPushSumConvergesToGlobalStats(t *testing.T) {
	const peers = 12
	agents, col := setup(t, peers, 240, 1<<30)
	if err := Run(agents, RecommendedRounds(peers)); err != nil {
		t.Fatal(err)
	}
	wantDocs := float64(col.M())
	wantAvg := col.AvgDocLen()
	for i, a := range agents {
		stats, n := a.Estimate()
		if math.Abs(n-peers) > 0.01 {
			t.Errorf("agent %d: peer estimate %.2f, want %d", i, n, peers)
		}
		if math.Abs(float64(stats.NumDocs)-wantDocs) > 0.02*wantDocs {
			t.Errorf("agent %d: NumDocs %d, want ~%.0f", i, stats.NumDocs, wantDocs)
		}
		if math.Abs(stats.AvgDocLen-wantAvg) > 0.02*wantAvg {
			t.Errorf("agent %d: AvgDocLen %.2f, want ~%.2f", i, stats.AvgDocLen, wantAvg)
		}
	}
}

func TestMassConservation(t *testing.T) {
	// The total (value, weight) mass across agents is invariant under
	// Steps — the push-sum correctness core.
	const peers = 8
	agents, col := setup(t, peers, 160, 1<<30)
	sum := func() (d, tok, w float64) {
		for _, a := range agents {
			a.mu.Lock()
			d += a.docs
			tok += a.tokens
			w += a.weight
			a.mu.Unlock()
		}
		return d, tok, w
	}
	d0, t0, w0 := sum()
	if d0 != float64(col.M()) {
		t.Fatalf("initial doc mass %.0f, want %d", d0, col.M())
	}
	if err := Run(agents, 10); err != nil {
		t.Fatal(err)
	}
	d1, t1, w1 := sum()
	if math.Abs(d1-d0) > 1e-6*d0 || math.Abs(t1-t0) > 1e-6*t0 || math.Abs(w1-w0) > 1e-9 {
		t.Fatalf("mass not conserved: docs %.6f->%.6f tokens %.2f->%.2f weight %.6f->%.6f",
			d0, d1, t0, t1, w0, w1)
	}
}

func TestVeryFrequentTermsExact(t *testing.T) {
	// With candidateFloor <= Ff/N, the gossiped VF set equals the exact
	// global cutoff set after dissemination.
	const peers = 8
	ff := int64(80)
	agents, col := setup(t, peers, 200, int(ff)/peers)
	if err := Run(agents, RecommendedRounds(peers)); err != nil {
		t.Fatal(err)
	}
	// Ground truth.
	want := map[corpus.TermID]bool{}
	for id, f := range col.TermFrequencies() {
		if int64(f) > ff {
			want[corpus.TermID(id)] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("no VF terms at Ff=80 — tighten the generator")
	}
	for i, a := range agents {
		got := a.VeryFrequentTerms(ff)
		if len(got) != len(want) {
			t.Fatalf("agent %d: %d VF terms, want %d", i, len(got), len(want))
		}
		for _, tm := range got {
			if !want[tm] {
				t.Fatalf("agent %d: term %d wrongly flagged VF", i, tm)
			}
		}
		// And the summed frequencies are exact for the flagged terms.
		freqs := col.TermFrequencies()
		sums := a.GlobalFrequencies()
		for _, tm := range got {
			if sums[tm] != int64(freqs[tm]) {
				t.Fatalf("agent %d: term %d gossiped f=%d, true %d", i, tm, sums[tm], freqs[tm])
			}
		}
	}
}

func TestSingleAgentNoop(t *testing.T) {
	agents, col := setup(t, 1, 30, 1<<30)
	if err := Run(agents, 5); err != nil {
		t.Fatal(err)
	}
	stats, n := agents[0].Estimate()
	if n != 1 || stats.NumDocs != col.M() {
		t.Fatalf("single agent estimate: n=%g docs=%d, want 1/%d", n, stats.NumDocs, col.M())
	}
}

func TestRunNoAgents(t *testing.T) {
	if err := Run(nil, 3); err == nil {
		t.Fatal("empty agent set accepted")
	}
}

func TestPushMessageRoundTrip(t *testing.T) {
	m := pushMsg{
		Docs: 12.5, Tokens: 900.25, Weight: 0.375,
		Heavy: map[heavyKey]int64{
			{origin: 7, term: 3}:   55,
			{origin: 9, term: 3}:   11,
			{origin: 7, term: 100}: 2,
		},
	}
	got, err := decodePush(encodePush(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Docs != m.Docs || got.Tokens != m.Tokens || got.Weight != m.Weight {
		t.Fatalf("scalars: %+v", got)
	}
	if len(got.Heavy) != len(m.Heavy) {
		t.Fatalf("heavy size %d, want %d", len(got.Heavy), len(m.Heavy))
	}
	for k, v := range m.Heavy {
		if got.Heavy[k] != v {
			t.Fatalf("entry %+v: %d, want %d", k, got.Heavy[k], v)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	for i, buf := range [][]byte{nil, {1, 2, 3}, make([]byte, 24)} {
		if _, err := decodePush(buf); err == nil && i < 2 {
			t.Errorf("case %d: corrupt push accepted", i)
		}
	}
}
