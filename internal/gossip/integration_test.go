package gossip

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/transport"
)

// TestEngineFromGossipedStats builds the HDK engine using only
// decentralized knowledge: collection statistics from push-sum and the
// very-frequent-term cutoff from the heavy-term protocol — no central
// scan of the global collection. The resulting key population must equal
// the engine built with centrally computed statistics (classification is
// df-based and the gossiped VF set is exact).
func TestEngineFromGossipedStats(t *testing.T) {
	const peers = 6
	p := corpus.GenParams{
		NumDocs: 150, VocabSize: 400, AvgDocLen: 40,
		Skew: 1.0, NumTopics: 6, TopicTerms: 40, TopicMix: 0.5, Seed: 5,
	}
	col, err := corpus.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ff := 120

	// Phase 1: gossip over the same overlay that will host the index.
	net := overlay.NewNetwork(transport.NewInProc())
	nodes := make([]*overlay.Node, peers)
	parts := col.SplitRoundRobin(peers)
	agents := make([]*Agent, peers)
	for i := range nodes {
		if nodes[i], err = net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
		agents[i] = NewAgent(net, nodes[i], parts[i], ff/peers, int64(i+1))
	}
	if err := Run(agents, RecommendedRounds(peers)); err != nil {
		t.Fatal(err)
	}
	stats, _ := agents[0].Estimate()
	vf := agents[0].VeryFrequentTerms(int64(ff))

	// Synthesize the term-frequency view the engine derives its VF flags
	// from: exactly the gossiped cutoff set.
	termFreqs := make([]int, len(col.Vocab))
	for _, tm := range vf {
		termFreqs[tm] = ff + 1
	}

	cfg := core.DefaultConfig(stats)
	cfg.DFMax = 6
	cfg.Window = 8
	cfg.Ff = ff
	eng, err := core.NewEngine(net, cfg, col.Vocab, termFreqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if _, err := eng.AddPeer(nodes[i], parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	// Reference: same config with centrally computed term frequencies.
	refNet := overlay.NewNetwork(transport.NewInProc())
	refNodes := make([]*overlay.Node, peers)
	for i := range refNodes {
		if refNodes[i], err = refNet.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	refEng, err := core.NewEngine(refNet, cfg, col.Vocab, col.TermFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	for i := range refNodes {
		if _, err := refEng.AddPeer(refNodes[i], parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := refEng.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	got, want := eng.Stats(), refEng.Stats()
	if got.KeysTotal != want.KeysTotal || got.StoredTotal != want.StoredTotal {
		t.Fatalf("gossip-configured engine diverged: keys %d vs %d, stored %d vs %d",
			got.KeysTotal, want.KeysTotal, got.StoredTotal, want.StoredTotal)
	}
	for s := 1; s <= cfg.SMax; s++ {
		if got.KeysBySize[s] != want.KeysBySize[s] {
			t.Fatalf("size %d: %d keys vs %d", s, got.KeysBySize[s], want.KeysBySize[s])
		}
	}

	// And searching works against the gossip-built index.
	res, err := eng.Search(corpus.Query{Terms: col.Docs[2].Terms[:2]}, nodes[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbedKeys == 0 {
		t.Fatal("no keys probed on the gossip-built index")
	}
}
