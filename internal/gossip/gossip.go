// Package gossip computes the global collection statistics the engines
// need (document count, average document length, the very-frequent-term
// set of the Ff cutoff) without any central coordinator — the way the
// paper's prototype lineage distributes them (PlanetP gossips collection
// summaries; MINERVA keeps per-peer statistics in the overlay). This
// replaces the repository's documented simplification of handing
// precomputed GlobalStats to every peer: with this package, peers learn
// them from each other.
//
// Two mechanisms:
//
//   - Push-sum averaging (Kempe et al.): every peer holds a (value,
//     weight) pair per quantity and repeatedly splits and sends half to a
//     random peer; all estimates converge to the global sum. Sums of
//     document counts and token counts yield NumDocs and AvgDocLen.
//
//   - Origin-tagged threshold-union for the very frequent terms: a term
//     with global collection frequency above Ff must have a local
//     frequency above Ff/N on at least one of the N peers, so the union
//     of per-peer "locally heavy" candidate sets contains every global
//     VF term. Each candidate entry carries its origin peer and exact
//     local count; union dissemination is idempotent. Because peers
//     below the floor still hold part of a candidate's mass, the
//     protocol runs two phases: candidates disseminate, then every peer
//     contributes its own exact count for each candidate it has heard of
//     (FillCandidates), and the completed entries disseminate further.
//     Summing an agent's gathered per-origin counts then yields the
//     exact global frequency of every candidate — with traffic
//     proportional to the small candidate set, not the vocabulary.
package gossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/corpus"
	"repro/internal/overlay"
	"repro/internal/rank"
)

const svcGossip = "gossip.push"

// Agent is one peer's gossip state.
type Agent struct {
	member overlay.Member
	fab    overlay.Fabric

	mu sync.Mutex
	// Push-sum state. weight starts at 1 on every peer, so value/weight
	// converges to the per-peer mean; totals are recovered by
	// multiplying with the membership size, which every peer knows from
	// its overlay routing state.
	docs, tokens, weight float64
	// Candidate heavy terms, origin-tagged: (origin peer, term) -> that
	// origin's exact local collection frequency. Entries are immutable,
	// so union-merge is idempotent and per-term sums are exact.
	heavy map[heavyKey]int64
	// localFreqs retains this peer's exact per-term counts so
	// FillCandidates can contribute them for candidates other peers
	// surfaced.
	localFreqs map[corpus.TermID]int64

	rng *rand.Rand
}

// heavyKey identifies one peer's contribution to one candidate term.
type heavyKey struct {
	origin overlay.ID
	term   corpus.TermID
}

// NewAgent attaches gossip state for a peer owning the given local
// documents. candidateFloor is the local-frequency threshold above which
// a term is shipped as a VF candidate; callers use Ff/N (or any lower
// bound on it, e.g. Ff/maxPeers, when N itself is unknown a priori).
func NewAgent(fab overlay.Fabric, m overlay.Member, local *corpus.Collection, candidateFloor int, seed int64) *Agent {
	a := &Agent{
		member: m,
		fab:    fab,
		weight: 1,
		heavy:  make(map[heavyKey]int64),
		rng:    rand.New(rand.NewSource(seed)),
	}
	a.localFreqs = make(map[corpus.TermID]int64)
	for i := range local.Docs {
		a.docs++
		a.tokens += float64(len(local.Docs[i].Terms))
		for _, t := range local.Docs[i].Terms {
			a.localFreqs[t]++
		}
	}
	if candidateFloor < 1 {
		candidateFloor = 1
	}
	for t, f := range a.localFreqs {
		if f > int64(candidateFloor) {
			a.heavy[heavyKey{origin: m.ID(), term: t}] = f
		}
	}
	m.Handle(svcGossip, a.handlePush)
	return a
}

// Step performs one push-sum round: half of this agent's mass is sent to
// a uniformly random other member, half is kept. The origin-tagged
// heavy-candidate set rides along and is union-merged at the receiver
// (idempotent: every entry is one origin's constant local count).
func (a *Agent) Step(members []overlay.Member) error {
	if len(members) < 2 {
		return nil
	}
	a.mu.Lock()
	// Split mass.
	a.docs /= 2
	a.tokens /= 2
	a.weight /= 2
	payload := encodePush(pushMsg{
		Docs: a.docs, Tokens: a.tokens, Weight: a.weight,
		Heavy: a.heavySnapshotLocked(),
	})
	a.mu.Unlock()

	// Pick a random peer other than self.
	var target overlay.Member
	for {
		target = members[a.rng.Intn(len(members))]
		if target.ID() != a.member.ID() {
			break
		}
	}
	_, err := a.fab.CallService(target.Addr(), svcGossip, payload)
	return err
}

// heavySnapshotLocked copies the candidate map for the wire.
func (a *Agent) heavySnapshotLocked() map[heavyKey]int64 {
	out := make(map[heavyKey]int64, len(a.heavy))
	for k, f := range a.heavy {
		out[k] = f
	}
	return out
}

func (a *Agent) handlePush(req []byte) ([]byte, error) {
	msg, err := decodePush(req)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.docs += msg.Docs
	a.tokens += msg.Tokens
	a.weight += msg.Weight
	for k, f := range msg.Heavy {
		a.heavy[k] = f
	}
	return nil, nil
}

// Estimate returns this agent's current view of the global statistics.
// After O(log N + log 1/ε) rounds every agent's estimate is within ε of
// the true values (push-sum convergence). The membership size comes from
// the overlay's routing state.
func (a *Agent) Estimate() (stats rank.CollectionStats, peers float64) {
	n := float64(a.fab.Size())
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.weight == 0 || n == 0 {
		return rank.CollectionStats{}, 0
	}
	totalDocs := a.docs / a.weight * n
	totalTokens := a.tokens / a.weight * n
	s := rank.CollectionStats{NumDocs: int(math.Round(totalDocs))}
	if totalDocs > 0 {
		s.AvgDocLen = totalTokens / totalDocs
	}
	return s, n
}

// GlobalFrequencies returns the agent's current view of the global
// collection frequency of every candidate term: the sum of gathered
// per-origin local counts. Once dissemination completes, values are
// exact for every term whose global frequency exceeds N*candidateFloor.
func (a *Agent) GlobalFrequencies() map[corpus.TermID]int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[corpus.TermID]int64)
	for k, f := range a.heavy {
		out[k.term] += f
	}
	return out
}

// VeryFrequentTerms returns the candidate terms whose summed global
// frequency exceeds ff, sorted — the exact Ff cutoff set when
// candidateFloor <= ff/N and dissemination has completed.
func (a *Agent) VeryFrequentTerms(ff int64) []corpus.TermID {
	sums := a.GlobalFrequencies()
	out := make([]corpus.TermID, 0, len(sums))
	for t, f := range sums {
		if f > ff {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FillCandidates contributes this peer's exact local count for every
// candidate term it has heard of (phase two of the heavy-term protocol).
func (a *Agent) FillCandidates() {
	a.mu.Lock()
	defer a.mu.Unlock()
	terms := make(map[corpus.TermID]struct{}, len(a.heavy))
	for k := range a.heavy {
		terms[k.term] = struct{}{}
	}
	for t := range terms {
		if f := a.localFreqs[t]; f > 0 {
			a.heavy[heavyKey{origin: a.member.ID(), term: t}] = f
		}
	}
}

// Run executes the whole protocol for a set of agents: half the rounds
// disseminate candidates, every peer then fills in its counts for the
// candidates it has heard of, and the remaining rounds disseminate the
// completed entries. A round-synchronous driver keeps the simulation
// deterministic; production deployments run the same Step/FillCandidates
// on timers.
func Run(agents []*Agent, rounds int) error {
	if len(agents) == 0 {
		return errors.New("gossip: no agents")
	}
	members := agents[0].fab.Members()
	phase := func(n int) error {
		for r := 0; r < n; r++ {
			for _, a := range agents {
				if err := a.Step(members); err != nil {
					return fmt.Errorf("gossip: round %d: %w", r, err)
				}
			}
		}
		return nil
	}
	if err := phase(rounds - rounds/2); err != nil {
		return err
	}
	for _, a := range agents {
		a.FillCandidates()
	}
	return phase(rounds / 2)
}

// RecommendedRounds returns a round budget that converges push-sum well
// below 1% error for n peers.
func RecommendedRounds(n int) int {
	if n < 2 {
		return 1
	}
	return 4*int(math.Ceil(math.Log2(float64(n)))) + 12
}

// --- wire ------------------------------------------------------------------

type pushMsg struct {
	Docs, Tokens, Weight float64
	Heavy                map[heavyKey]int64
}

func encodePush(m pushMsg) []byte {
	buf := make([]byte, 0, 26+len(m.Heavy)*12)
	for _, v := range []float64{m.Docs, m.Tokens, m.Weight} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Heavy)))
	keys := make([]heavyKey, 0, len(m.Heavy))
	for k := range m.Heavy {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].origin != keys[j].origin {
			return keys[i].origin < keys[j].origin
		}
		return keys[i].term < keys[j].term
	})
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(k.origin))
		buf = binary.AppendUvarint(buf, uint64(k.term))
		buf = binary.AppendUvarint(buf, uint64(m.Heavy[k]))
	}
	return buf
}

var errCorrupt = errors.New("gossip: corrupt message")

func decodePush(buf []byte) (pushMsg, error) {
	var m pushMsg
	if len(buf) < 24 {
		return m, errCorrupt
	}
	vals := make([]float64, 3)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	m.Docs, m.Tokens, m.Weight = vals[0], vals[1], vals[2]
	off := 24
	n, sz := binary.Uvarint(buf[off:])
	if sz <= 0 || n > uint64(len(buf)) {
		return m, errCorrupt
	}
	off += sz
	m.Heavy = make(map[heavyKey]int64, n)
	for i := uint64(0); i < n; i++ {
		origin, sz := binary.Uvarint(buf[off:])
		if sz <= 0 {
			return m, errCorrupt
		}
		off += sz
		t, sz2 := binary.Uvarint(buf[off:])
		if sz2 <= 0 || t > math.MaxUint32 {
			return m, errCorrupt
		}
		off += sz2
		f, sz3 := binary.Uvarint(buf[off:])
		if sz3 <= 0 {
			return m, errCorrupt
		}
		off += sz3
		m.Heavy[heavyKey{origin: overlay.ID(origin), term: corpus.TermID(t)}] = int64(f)
	}
	return m, nil
}
