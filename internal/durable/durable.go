// Package durable gives an index store a disk-backed mode: a compact
// full-store snapshot plus an append-only operation log, organized as
// numbered generations inside one data directory. The package is
// index-agnostic — records are opaque (kind, payload) pairs; the index
// layer (core.StoreServer) decides what a record means and how to replay
// it — so any store that can export its state and name its mutations can
// persist through it.
//
// On-disk layout (one generation live at a time):
//
//	snapshot-<gen>   full-store records at the moment gen was created
//	oplog-<gen>      operations applied since that snapshot
//
// Both files share one record framing: uvarint kind length, kind bytes,
// uvarint payload length, payload bytes, and a big-endian CRC32 (IEEE)
// over everything since the record start. Snapshots are written to a
// temporary file and atomically renamed, so a half-written snapshot can
// never be observed; the log is append-only, so a crash can only tear
// its tail, and Open recovers by truncating back to the last intact
// record. Compaction folds the log into a fresh snapshot under the next
// generation number and is crash-safe in every window: until the rename
// lands the old generation is authoritative, and after it lands the old
// files are garbage whether or not their deletion completed.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects when appended log records are fsynced to stable storage.
type Policy int

const (
	// SyncAlways fsyncs after every append: a SIGKILL loses nothing.
	SyncAlways Policy = iota
	// SyncBatch fsyncs only on snapshot and Close: a crash can lose the
	// ops since the last sync, which replica catch-up re-pulls from the
	// surviving copies on rejoin.
	SyncBatch
	// SyncNever never fsyncs (tests and throwaway runs).
	SyncNever
)

// ParsePolicy maps the hdknode -fsync flag values onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always|batch|never)", s)
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	default:
		return "never"
	}
}

// Record is one persisted unit: an opaque payload tagged with the kind
// the index layer replays it by.
type Record struct {
	Kind    string
	Payload []byte
}

// Options tunes a Store. The zero value selects SyncAlways and the
// default compaction threshold.
type Options struct {
	// Fsync is the log durability policy.
	Fsync Policy
	// CompactBytes is the op-log size at which ShouldCompact reports
	// true (default 4 MiB; negative disables size-triggered compaction).
	CompactBytes int64
}

const defaultCompactBytes = 4 << 20

func (o Options) withDefaults() Options {
	if o.CompactBytes == 0 {
		o.CompactBytes = defaultCompactBytes
	}
	return o
}

// File naming and headers.
const (
	snapshotPrefix = "snapshot-"
	oplogPrefix    = "oplog-"
	tmpSuffix      = ".tmp"
)

var (
	snapshotMagic = []byte("HDKSNAP\x01")
	oplogMagic    = []byte("HDKOPLG\x01")
)

// headerLen is magic (8 bytes) plus the big-endian generation (8 bytes).
const headerLen = 16

// ErrCorrupt is returned when a snapshot fails validation. (A torn log
// tail is NOT corruption — Open truncates and recovers silently.)
var ErrCorrupt = errors.New("durable: corrupt file")

// errTorn marks the first invalid record of a log: everything before it
// is kept, everything from it on is truncated away.
var errTorn = errors.New("durable: torn log record")

// Store is one data directory holding the current generation's snapshot
// and op log. All methods are safe for concurrent use; the caller is
// responsible for ordering Append calls consistently with the mutations
// they describe (the index layer holds its persistence lock across
// mutate+Append).
type Store struct {
	dir string
	opt Options

	mu       sync.Mutex
	gen      uint64
	log      *os.File
	logBytes int64
	closed   bool

	// Recovery state loaded by Open, released by DropRecovery.
	snapRecs  []Record
	opRecs    []Record
	truncated int // torn log records dropped during recovery

	// metrics is swapped in by Instrument (see metrics.go); nil until
	// then, so every observation hook is a single pointer load.
	metrics atomic.Pointer[storeMetrics]
}

// Open loads (or initializes) the data directory: it picks the highest
// generation with a valid snapshot (or generation 0 with no snapshot on
// first run), replays the matching op log up to its last intact record
// — truncating a torn tail left by a crash — deletes files from other
// generations and stale temporaries, and opens the log for appending.
// The recovered records are available via Snapshot/Ops until
// DropRecovery is called.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opt: opt.withDefaults()}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	snapGens := make(map[uint64]bool)
	logGens := make(map[uint64]bool)
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			os.Remove(filepath.Join(dir, name)) // interrupted snapshot write
		case strings.HasPrefix(name, snapshotPrefix):
			if g, err := parseGen(name, snapshotPrefix); err == nil {
				snapGens[g] = true
			}
		case strings.HasPrefix(name, oplogPrefix):
			if g, err := parseGen(name, oplogPrefix); err == nil {
				logGens[g] = true
			}
		}
	}

	// Highest valid snapshot wins; with none, generation 0 starts from
	// an empty store plus whatever oplog-0 holds.
	gens := make([]uint64, 0, len(snapGens))
	for g := range snapGens {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, g := range gens {
		recs, err := readSnapshot(s.snapshotPath(g), g)
		if err != nil {
			return nil, fmt.Errorf("durable: snapshot gen %d: %w", g, err)
		}
		s.gen = g
		s.snapRecs = recs
		break
	}

	if err := s.openLog(); err != nil {
		return nil, err
	}

	// Everything from other generations is garbage: either superseded
	// (older) or an interrupted compaction that never became
	// authoritative (a newer log without its snapshot).
	for g := range snapGens {
		if g != s.gen {
			os.Remove(s.snapshotPath(g))
		}
	}
	for g := range logGens {
		if g != s.gen {
			os.Remove(s.oplogPath(g))
		}
	}
	syncDir(dir)
	return s, nil
}

func parseGen(name, prefix string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(name, prefix), 16, 64)
}

func (s *Store) snapshotPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x", snapshotPrefix, gen))
}

func (s *Store) oplogPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x", oplogPrefix, gen))
}

// openLog reads the current generation's log (recovering a torn tail by
// truncation) and leaves it open in append position, creating it fresh
// when absent.
func (s *Store) openLog() error {
	path := s.oplogPath(s.gen)
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return s.createLog(path)
	case err != nil:
		return err
	}
	recs, valid, dropped, err := parseLog(raw, s.gen)
	if err != nil {
		// The header itself is unusable (torn creation): start over. Any
		// records it held are unrecoverable, but a log whose header never
		// made it to disk cannot hold synced records either.
		os.Remove(path)
		return s.createLog(path)
	}
	s.opRecs = recs
	s.truncated = dropped
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if int64(valid) != int64(len(raw)) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return err
	}
	s.log = f
	s.logBytes = int64(valid)
	return nil
}

func (s *Store) createLog(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, oplogMagic...)
	hdr = binary.BigEndian.AppendUint64(hdr, s.gen)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if s.opt.Fsync != SyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	s.log = f
	s.logBytes = headerLen
	return nil
}

// Snapshot returns the records of the loaded snapshot (nil on a cold
// start). Valid until DropRecovery.
func (s *Store) Snapshot() []Record { return s.snapRecs }

// Ops returns the intact op-log records recovered by Open, in append
// order. Valid until DropRecovery.
func (s *Store) Ops() []Record { return s.opRecs }

// TruncatedOps reports how many torn trailing log records recovery
// dropped (0 after a clean shutdown).
func (s *Store) TruncatedOps() int { return s.truncated }

// DropRecovery releases the recovery records once the index layer has
// replayed them.
func (s *Store) DropRecovery() {
	s.mu.Lock()
	s.snapRecs, s.opRecs = nil, nil
	s.mu.Unlock()
}

// Generation returns the live generation number (grows by one per
// compaction).
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// LogBytes returns the current op-log size, header included.
func (s *Store) LogBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logBytes
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Append logs one operation record under the store's fsync policy.
func (s *Store) Append(kind string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("durable: store closed")
	}
	buf := appendRecord(nil, kind, payload)
	if _, err := s.log.Write(buf); err != nil {
		return fmt.Errorf("durable: append %q: %w", kind, err)
	}
	s.logBytes += int64(len(buf))
	s.observeAppend(len(buf))
	if s.opt.Fsync == SyncAlways {
		start := time.Now()
		if err := s.log.Sync(); err != nil {
			return fmt.Errorf("durable: sync: %w", err)
		}
		s.observeFsync(time.Since(start))
	}
	return nil
}

// ShouldCompact reports whether the op log has outgrown the compaction
// threshold.
func (s *Store) ShouldCompact() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opt.CompactBytes > 0 && s.logBytes-headerLen >= s.opt.CompactBytes
}

// Compact folds the log into a fresh snapshot: write streams the
// full-store records of the CURRENT state (which, by the caller's
// locking, reflects every appended op). The snapshot lands atomically
// under the next generation; only then is the old generation removed.
// The caller must block Appends for the duration (the index layer holds
// its persistence write lock).
func (s *Store) Compact(write func(emit func(kind string, payload []byte) error) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("durable: store closed")
	}
	next := s.gen + 1
	tmp := s.snapshotPath(next) + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, snapshotMagic...)
	hdr = binary.BigEndian.AppendUint64(hdr, next)
	_, err = f.Write(hdr)
	if err == nil {
		var buf []byte
		err = write(func(kind string, payload []byte) error {
			buf = appendRecord(buf[:0], kind, payload)
			_, werr := f.Write(buf)
			return werr
		})
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: write snapshot gen %d: %w", next, err)
	}
	if err := os.Rename(tmp, s.snapshotPath(next)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(s.dir)

	// The new snapshot is authoritative from here on; swap in a fresh
	// empty log and drop the old generation.
	oldLog, oldGen := s.log, s.gen
	s.gen = next
	if err := s.createLog(s.oplogPath(next)); err != nil {
		// Roll back to the OLD generation as the authoritative one — and
		// that means the new snapshot must not survive on disk: a later
		// Open would pick the highest snapshot generation and discard
		// the old log (which keeps receiving fsync'd ops after this
		// return) as another generation's garbage.
		os.Remove(s.snapshotPath(next))
		syncDir(s.dir)
		s.log, s.gen = oldLog, oldGen
		return err
	}
	oldLog.Close()
	os.Remove(s.snapshotPath(oldGen))
	os.Remove(s.oplogPath(oldGen))
	syncDir(s.dir)
	s.observeCompaction()
	return nil
}

// Sync flushes the log to stable storage regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opt.Fsync == SyncNever {
		return nil
	}
	start := time.Now()
	if err := s.log.Sync(); err != nil {
		return err
	}
	s.observeFsync(time.Since(start))
	return nil
}

// Close syncs (under SyncAlways/SyncBatch) and closes the log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.opt.Fsync != SyncNever {
		err = s.log.Sync()
	}
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- record framing ------------------------------------------------------

// appendRecord serializes one record: uvarint kind length, kind, uvarint
// payload length, payload, CRC32-IEEE (big endian) over all of it.
func appendRecord(buf []byte, kind string, payload []byte) []byte {
	start := len(buf)
	buf = binary.AppendUvarint(buf, uint64(len(kind)))
	buf = append(buf, kind...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.BigEndian.AppendUint32(buf, crc)
}

// parseRecord decodes one record from buf, returning it and the bytes
// consumed. errTorn means buf holds a truncated or corrupt record.
func parseRecord(buf []byte) (Record, int, error) {
	kl, n := binary.Uvarint(buf)
	if n <= 0 || kl > uint64(len(buf)-n) {
		return Record{}, 0, errTorn
	}
	off := n + int(kl)
	kind := string(buf[n:off])
	pl, n := binary.Uvarint(buf[off:])
	if n <= 0 || pl > uint64(len(buf)-off-n) {
		return Record{}, 0, errTorn
	}
	off += n
	payload := append([]byte(nil), buf[off:off+int(pl)]...)
	off += int(pl)
	if len(buf)-off < 4 {
		return Record{}, 0, errTorn
	}
	if crc32.ChecksumIEEE(buf[:off]) != binary.BigEndian.Uint32(buf[off:]) {
		return Record{}, 0, errTorn
	}
	return Record{Kind: kind, Payload: payload}, off + 4, nil
}

// checkHeader validates a file header against the expected magic and
// generation.
func checkHeader(raw []byte, magic []byte, gen uint64) error {
	if len(raw) < headerLen {
		return fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if string(raw[:len(magic)]) != string(magic) {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got := binary.BigEndian.Uint64(raw[len(magic):headerLen]); got != gen {
		return fmt.Errorf("%w: generation %d in file named for %d", ErrCorrupt, got, gen)
	}
	return nil
}

// readSnapshot loads and strictly validates a snapshot file: it was
// written atomically, so any framing or CRC failure is real corruption.
func readSnapshot(path string, gen uint64) ([]Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := checkHeader(raw, snapshotMagic, gen); err != nil {
		return nil, err
	}
	var recs []Record
	off := headerLen
	for off < len(raw) {
		rec, n, err := parseRecord(raw[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: record %d", ErrCorrupt, len(recs))
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, nil
}

// parseLog walks a log file, keeping the longest intact record prefix.
// It returns the records, the byte offset the file should be truncated
// to, and how many bytes' worth of torn tail were dropped (as a record
// count of 0 or 1 — a tear can only hit the record being written).
func parseLog(raw []byte, gen uint64) (recs []Record, valid int, dropped int, err error) {
	if err := checkHeader(raw, oplogMagic, gen); err != nil {
		return nil, 0, 0, err
	}
	off := headerLen
	for off < len(raw) {
		rec, n, err := parseRecord(raw[off:])
		if err != nil {
			return recs, off, 1, nil // torn tail: keep the prefix
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off, 0, nil
}

// syncDir fsyncs a directory so renames and creates inside it survive a
// crash (best-effort: some platforms refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
