package durable

import (
	"os"
	"testing"

	"repro/internal/lint/leakcheck"
)

// Durable-store tests open and close real files; leakcheck catches a
// store left open (its compactor or fsync path still running) by a
// failed cleanup.
func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
