package durable

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/fuzzcorpus"
)

// Fuzz targets for the durable record framing: the single-record codec
// (uvarint-length kind and payload plus a trailing CRC32) and the
// whole-log parser, whose contract is subtle — keep the longest intact
// record prefix, report the truncation offset, and treat only a torn
// tail as recoverable. The log parser runs at every daemon start over a
// file that a crash may have cut at any byte, so every prefix of a
// valid log must parse without panic.

// fuzzLogGen is the generation all log-fuzz seeds are framed for.
const fuzzLogGen = 1

func logHeader(gen uint64) []byte {
	hdr := append([]byte(nil), oplogMagic...)
	return binary.BigEndian.AppendUint64(hdr, gen)
}

func recordSeeds() [][]byte {
	return [][]byte{
		appendRecord(nil, "insert", []byte("payload-bytes")),
		appendRecord(nil, "", nil),
		appendRecord(nil, "k", bytes.Repeat([]byte{0xab}, 100)),
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff},
	}
}

func logSeeds() [][]byte {
	full := logHeader(fuzzLogGen)
	full = appendRecord(full, "insert", []byte("one"))
	full = appendRecord(full, "delete", []byte("two"))
	torn := append(append([]byte(nil), full...), 0x07, 0x03) // tear mid-record
	return [][]byte{
		full,
		torn,
		logHeader(fuzzLogGen),
		logHeader(99), // wrong generation
		{},
	}
}

func FuzzParseRecord(f *testing.F) {
	for _, seed := range recordSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := parseRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := appendRecord(nil, rec.Kind, rec.Payload)
		rec2, n2, err := parseRecord(enc)
		if err != nil || n2 != len(enc) {
			t.Fatalf("re-parse of accepted record: n=%d err=%v", n2, err)
		}
		if rec2.Kind != rec.Kind || !bytes.Equal(rec2.Payload, rec.Payload) {
			t.Fatal("record roundtrip drifted")
		}
	})
}

func FuzzParseLog(f *testing.F) {
	for _, seed := range logSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, dropped, err := parseLog(data, fuzzLogGen)
		if err != nil {
			return
		}
		if valid < headerLen || valid > len(data) {
			t.Fatalf("valid offset %d outside [%d, %d]", valid, headerLen, len(data))
		}
		if dropped != 0 && dropped != 1 {
			t.Fatalf("dropped = %d, want 0 or 1 (a tear hits at most the record being written)", dropped)
		}
		// The kept prefix must re-parse to the same records with no tail.
		recs2, valid2, dropped2, err := parseLog(data[:valid], fuzzLogGen)
		if err != nil || valid2 != valid || dropped2 != 0 || len(recs2) != len(recs) {
			t.Fatalf("truncated log re-parse: valid=%d dropped=%d recs=%d err=%v", valid2, dropped2, len(recs2), err)
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus; see
// package fuzzcorpus.
func TestWriteFuzzCorpus(t *testing.T) {
	if !fuzzcorpus.Enabled() {
		t.Skipf("set %s=1 to regenerate testdata/fuzz", fuzzcorpus.EnvVar)
	}
	for name, seeds := range map[string][][]byte{
		"FuzzParseRecord": recordSeeds(),
		"FuzzParseLog":    logSeeds(),
	} {
		if err := fuzzcorpus.Write(name, seeds); err != nil {
			t.Fatal(err)
		}
	}
}
