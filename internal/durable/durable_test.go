package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func assertRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got (%q, %x), want (%q, %x)",
				i, got[i].Kind, got[i].Payload, want[i].Kind, want[i].Payload)
		}
	}
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := []Record{
		{Kind: "insert", Payload: []byte("payload-1")},
		{Kind: "classify", Payload: nil},
		{Kind: "repair", Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{Kind: "insert", Payload: []byte{}},
	}

	s := mustOpen(t, dir, Options{Fsync: SyncAlways})
	if s.Snapshot() != nil || len(s.Ops()) != 0 {
		t.Fatalf("cold open returned recovery state: %v / %v", s.Snapshot(), s.Ops())
	}
	for _, r := range want {
		if err := s.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	assertRecords(t, re.Ops(), want)
	if re.TruncatedOps() != 0 {
		t.Fatalf("clean log reported %d truncated ops", re.TruncatedOps())
	}
	if re.Generation() != 0 {
		t.Fatalf("generation = %d before any compaction", re.Generation())
	}
}

// TestTornWriteRecovery truncates the log mid-record (and, separately,
// corrupts the tail) and verifies Open keeps exactly the intact prefix
// and that subsequent appends extend it cleanly.
func TestTornWriteRecovery(t *testing.T) {
	base := []Record{
		{Kind: "a", Payload: []byte("first")},
		{Kind: "b", Payload: []byte("second")},
		{Kind: "c", Payload: []byte("third, torn away")},
	}
	// Each mangle receives the raw log bytes and the length of the last
	// record, and returns the crashed file content.
	for _, cut := range []struct {
		name   string
		mangle func(raw []byte, last int) []byte
	}{
		{"truncate-mid-record", func(raw []byte, last int) []byte {
			return raw[:len(raw)-last+3]
		}},
		{"flip-crc-bit", func(raw []byte, last int) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-1] ^= 0xFF
			return out
		}},
		{"garbage-tail", func(raw []byte, last int) []byte {
			return append(append([]byte(nil), raw[:len(raw)-last]...), 0xFF, 0xFF, 0xFF)
		}},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{Fsync: SyncNever})
			for _, r := range base {
				if err := s.Append(r.Kind, r.Payload); err != nil {
					t.Fatal(err)
				}
			}
			path := s.oplogPath(0)
			last := len(appendRecord(nil, base[2].Kind, base[2].Payload))
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, cut.mangle(raw, last), 0o644); err != nil {
				t.Fatal(err)
			}

			re := mustOpen(t, dir, Options{Fsync: SyncNever})
			wantPrefix := base[:2]
			assertRecords(t, re.Ops(), wantPrefix)
			if re.TruncatedOps() == 0 {
				t.Fatal("recovery did not report a dropped torn record")
			}
			// The truncated log must accept appends and survive another cycle.
			if err := re.Append("d", []byte("after recovery")); err != nil {
				t.Fatal(err)
			}
			re.Close()
			final := mustOpen(t, dir, Options{})
			defer final.Close()
			assertRecords(t, final.Ops(), append(append([]Record{}, wantPrefix...),
				Record{Kind: "d", Payload: []byte("after recovery")}))
		})
	}
}

func TestCompactionRollsGeneration(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: SyncBatch})
	for i := 0; i < 5; i++ {
		if err := s.Append("op", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := []Record{
		{Kind: "entry", Payload: []byte("state-a")},
		{Kind: "entry", Payload: []byte("state-b")},
	}
	err := s.Compact(func(emit func(kind string, payload []byte) error) error {
		for _, r := range snap {
			if err := emit(r.Kind, r.Payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 1 {
		t.Fatalf("generation = %d after compaction, want 1", s.Generation())
	}
	if s.LogBytes() != headerLen {
		t.Fatalf("log not reset after compaction: %d bytes", s.LogBytes())
	}
	// Post-compaction ops land in the new generation's log.
	if err := s.Append("op", []byte("post")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Old generation files are gone.
	if _, err := os.Stat(s.snapshotPath(0)); !os.IsNotExist(err) {
		t.Fatal("generation-0 snapshot not removed")
	}
	if _, err := os.Stat(s.oplogPath(0)); !os.IsNotExist(err) {
		t.Fatal("generation-0 oplog not removed")
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if re.Generation() != 1 {
		t.Fatalf("reopened generation = %d, want 1", re.Generation())
	}
	assertRecords(t, re.Snapshot(), snap)
	assertRecords(t, re.Ops(), []Record{{Kind: "op", Payload: []byte("post")}})
}

// TestCompactionCrashWindows simulates the crash points around a
// compaction and verifies Open always recovers a consistent generation.
func TestCompactionCrashWindows(t *testing.T) {
	setup := func(t *testing.T) (string, *Store) {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{Fsync: SyncNever})
		for i := 0; i < 3; i++ {
			if err := s.Append("op", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Compact(func(emit func(string, []byte) error) error {
			return emit("entry", []byte("compacted"))
		}); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return dir, s
	}

	t.Run("stale-tmp-ignored", func(t *testing.T) {
		dir, s := setup(t)
		tmp := s.snapshotPath(2) + tmpSuffix
		if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
		re := mustOpen(t, dir, Options{})
		defer re.Close()
		if re.Generation() != 1 {
			t.Fatalf("generation = %d, want 1", re.Generation())
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatal("stale snapshot tmp not removed")
		}
	})

	t.Run("snapshot-renamed-log-missing", func(t *testing.T) {
		// Crash after the rename but before the new log was created: the
		// new snapshot is authoritative, the old generation is garbage.
		dir, s := setup(t)
		raw, err := os.ReadFile(s.snapshotPath(1))
		if err != nil {
			t.Fatal(err)
		}
		// Forge generation 2 from generation 1's content.
		var hdr []byte
		hdr = append(hdr, snapshotMagic...)
		hdr = append(hdr, 0, 0, 0, 0, 0, 0, 0, 2)
		forged := append(hdr, raw[headerLen:]...)
		if err := os.WriteFile(s.snapshotPath(2), forged, 0o644); err != nil {
			t.Fatal(err)
		}
		re := mustOpen(t, dir, Options{})
		defer re.Close()
		if re.Generation() != 2 {
			t.Fatalf("generation = %d, want 2", re.Generation())
		}
		assertRecords(t, re.Snapshot(), []Record{{Kind: "entry", Payload: []byte("compacted")}})
		if len(re.Ops()) != 0 {
			t.Fatalf("fresh generation has %d ops", len(re.Ops()))
		}
		if _, err := os.Stat(s.oplogPath(1)); !os.IsNotExist(err) {
			t.Fatal("superseded generation-1 oplog not removed")
		}
	})
}

// TestCompactionLogSwapFailureRollsBack: when the new generation's log
// cannot be created, the rename already landed — so the rollback must
// also REMOVE the new snapshot, or a later Open would crown it and
// throw away the old log that kept receiving (fsync'd) ops.
func TestCompactionLogSwapFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: SyncNever})
	if err := s.Append("op", []byte("pre")); err != nil {
		t.Fatal(err)
	}
	// Force createLog(oplog-1) to fail: the file already exists and
	// createLog opens with O_EXCL.
	if err := os.WriteFile(s.oplogPath(1), []byte("squatter"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := s.Compact(func(emit func(string, []byte) error) error {
		return emit("entry", []byte("state"))
	})
	if err == nil {
		t.Fatal("compaction succeeded despite unswappable log")
	}
	if s.Generation() != 0 {
		t.Fatalf("generation = %d after failed compaction, want 0", s.Generation())
	}
	if _, err := os.Stat(s.snapshotPath(1)); !os.IsNotExist(err) {
		t.Fatal("orphaned snapshot-1 left on disk — a restart would crown it and drop oplog-0")
	}
	// The old generation keeps working: appends land in oplog-0 and
	// survive a reopen alongside the pre-compaction op.
	if err := s.Append("op", []byte("post")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	os.Remove(s.oplogPath(1)) // clear the injected squatter
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	assertRecords(t, re.Ops(), []Record{
		{Kind: "op", Payload: []byte("pre")},
		{Kind: "op", Payload: []byte("post")},
	})
}

func TestShouldCompactThreshold(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: SyncNever, CompactBytes: 64})
	defer s.Close()
	if s.ShouldCompact() {
		t.Fatal("empty log wants compaction")
	}
	if err := s.Append("op", bytes.Repeat([]byte{1}, 128)); err != nil {
		t.Fatal(err)
	}
	if !s.ShouldCompact() {
		t.Fatal("oversized log does not want compaction")
	}
	disabled := mustOpen(t, filepath.Join(dir, "sub"), Options{Fsync: SyncNever, CompactBytes: -1})
	defer disabled.Close()
	if err := disabled.Append("op", bytes.Repeat([]byte{1}, 1024)); err != nil {
		t.Fatal(err)
	}
	if disabled.ShouldCompact() {
		t.Fatal("size-triggered compaction not disabled by negative threshold")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"always": SyncAlways, "batch": SyncBatch, "never": SyncNever} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
		if got.String() != in {
			t.Fatalf("Policy(%v).String() = %q", got, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: SyncNever})
	if err := s.Compact(func(emit func(string, []byte) error) error {
		return emit("entry", []byte("cell"))
	}); err != nil {
		t.Fatal(err)
	}
	path := s.snapshotPath(1)
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // break the record CRC
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
}

func TestManyGenerations(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Fsync: SyncNever})
	for g := 0; g < 4; g++ {
		if err := s.Append("op", []byte(fmt.Sprintf("gen-%d", g))); err != nil {
			t.Fatal(err)
		}
		if err := s.Compact(func(emit func(string, []byte) error) error {
			return emit("entry", []byte(fmt.Sprintf("state-%d", g)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("data dir holds %v, want exactly one snapshot + one oplog", names)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if re.Generation() != 4 {
		t.Fatalf("generation = %d, want 4", re.Generation())
	}
	assertRecords(t, re.Snapshot(), []Record{{Kind: "entry", Payload: []byte("state-3")}})
}
