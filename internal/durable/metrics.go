package durable

import (
	"time"

	"repro/internal/telemetry"
)

// Registry series the durability path emits.
const (
	metricAppends     = "hdk_durable_appends_total"
	metricAppendBytes = "hdk_durable_append_bytes_total"
	metricCompactions = "hdk_durable_compactions_total"
	metricFsyncNanos  = "hdk_durable_fsync_nanoseconds"
	metricLogBytes    = "hdk_durable_log_bytes"
	metricGeneration  = "hdk_durable_generation"
)

// storeMetrics is the registry view of the durability path: append and
// compaction counters plus the fsync latency histogram — the one number
// that decides whether SyncAlways is affordable on a given disk. The
// struct is swapped in atomically by Instrument, so an uninstrumented
// store (unit tests, tooling) pays one nil pointer load per hook.
type storeMetrics struct {
	appends     *telemetry.Counter
	appendBytes *telemetry.Counter
	compactions *telemetry.Counter
	fsyncLat    *telemetry.Histogram
}

// Instrument registers the store's metrics on reg and starts recording
// into them: per-record append counters, compaction runs, fsync latency,
// and callback gauges for the live op-log size and snapshot generation.
// Safe to call while the store is serving; operations observed before
// Instrument are simply not recorded.
func (s *Store) Instrument(reg *telemetry.Registry) {
	m := &storeMetrics{
		appends:     reg.Counter(metricAppends),
		appendBytes: reg.Counter(metricAppendBytes),
		compactions: reg.Counter(metricCompactions),
		fsyncLat:    reg.Histogram(metricFsyncNanos),
	}
	reg.GaugeFunc(metricLogBytes, func() float64 {
		return float64(s.LogBytes())
	})
	reg.GaugeFunc(metricGeneration, func() float64 {
		return float64(s.Generation())
	})
	s.metrics.Store(m)
}

// observeAppend records one logged op record of n bytes.
func (s *Store) observeAppend(n int) {
	if m := s.metrics.Load(); m != nil {
		m.appends.Inc()
		m.appendBytes.Add(uint64(n))
	}
}

// observeFsync records one physical log fsync and its latency.
func (s *Store) observeFsync(d time.Duration) {
	if m := s.metrics.Load(); m != nil {
		m.fsyncLat.ObserveDuration(d)
	}
}

// observeCompaction records one completed log compaction.
func (s *Store) observeCompaction() {
	if m := s.metrics.Load(); m != nil {
		m.compactions.Inc()
	}
}
