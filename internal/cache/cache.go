// Package cache provides the small generic LRU behind the repository's
// two retrieval caches — the mitigation the paper's related work
// proposes for distributed indexes ("top-k posting list joins, Bloom
// filters, and caching as promising techniques to reduce search
// costs") and the cache-size literature in PAPERS.md studies for DHT
// designs:
//
//   - the engine's opt-in query-side fetch cache
//     (core.Engine.EnableQueryCache): memoized fetch responses answer
//     repeat probes with zero network postings;
//   - the cluster daemon's per-node query-result cache
//     (cluster.Server, the hdk.search path): whole coordinated answers
//     keyed by the canonical request bytes, invalidated through the
//     store's write-through mutation hook.
//
// The LRU is concurrency-safe and carries cumulative hit/miss counters,
// surfaced by cluster.info and the coordinator bench.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity least-recently-used map from string keys to
// values. Safe for concurrent use.
type LRU[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits   uint64
	misses uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

// NewLRU creates a cache holding at most capacity entries. A capacity
// <= 0 yields a cache that stores nothing (all lookups miss), which lets
// callers disable caching without branching.
func NewLRU[V any](capacity int) *LRU[V] {
	return &LRU[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value and whether it was present.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *LRU[V]) Put(key string, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

// Invalidate removes a key (used when the index changes under the
// cache, e.g. after incremental document insertion).
func (c *LRU[V]) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// Clear drops every entry.
func (c *LRU[V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// Len returns the number of resident entries.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss counters.
func (c *LRU[V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
