package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := NewLRU[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := NewLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now most recent
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a wrongly evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := NewLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, a most recent
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("Get(a) = %d,%v, want 10,true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestInvalidateAndClear(t *testing.T) {
	c := NewLRU[string](4)
	c.Put("x", "1")
	c.Put("y", "2")
	c.Invalidate("x")
	if _, ok := c.Get("x"); ok {
		t.Fatal("invalidated key still present")
	}
	c.Invalidate("never-existed") // must not panic
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	if _, ok := c.Get("y"); ok {
		t.Fatal("cleared key still present")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := NewLRU[int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache stored a value")
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache non-empty")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU[int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

// TestConcurrentMutationAndLookup drives every mutating operation
// (Put, Invalidate, Clear) against concurrent lookups (Get, Len, Stats)
// under the race detector — the access pattern of a cluster daemon
// whose mutation hook clears the result cache while coordinations are
// reading and filling it.
func TestConcurrentMutationAndLookup(t *testing.T) {
	c := NewLRU[[]byte](32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		// Readers: lookups plus counter reads.
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 800; i++ {
				key := fmt.Sprintf("k%d", (w*13+i)%50)
				if v, ok := c.Get(key); ok && len(v) == 0 {
					t.Error("cached value lost its contents")
					return
				}
				c.Len()
				c.Stats()
			}
		}(w)
		// Writers: fills racing invalidation, both per-key and global.
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 800; i++ {
				key := fmt.Sprintf("k%d", (w*17+i)%50)
				switch i % 5 {
				case 0, 1, 2:
					c.Put(key, []byte(key))
				case 3:
					c.Invalidate(key)
				case 4:
					c.Clear()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits+misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

func TestCapacityOne(t *testing.T) {
	c := NewLRU[int](1)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived in capacity-1 cache")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatal("b missing from capacity-1 cache")
	}
}
