// Package fuzzcorpus regenerates the committed seed corpora for the
// repo's native Go fuzz targets. Each codec package keeps its seed
// inputs in one function shared by the fuzz target (f.Add) and a
// regeneration test that calls Write; the resulting
// testdata/fuzz/<FuzzName>/ files are committed so `go test -fuzz` and
// the CI fuzz smoke start from known-interesting inputs instead of
// empty byte slices.
//
// Regenerate with:
//
//	HDK_WRITE_FUZZ_CORPUS=1 go test ./... -run TestWriteFuzzCorpus
package fuzzcorpus

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// EnvVar gates corpus regeneration; the writer tests skip unless it is
// set, so a plain `go test ./...` never rewrites committed files.
const EnvVar = "HDK_WRITE_FUZZ_CORPUS"

// Enabled reports whether corpus regeneration was requested.
func Enabled() bool { return os.Getenv(EnvVar) != "" }

// Write rewrites testdata/fuzz/<fuzzName>/ (relative to the calling
// test's package directory) with one seed file per input, in the
// standard `go test fuzz v1` encoding for a single []byte argument.
func Write(fuzzName string, seeds [][]byte) error {
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, seed := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}
