package replica

import (
	"fmt"
	"sort"

	"repro/internal/overlay"
)

// Inventory is the Repairer's view of the replicated index: which keys
// are resident on which member, a freshness fingerprint per copy, and an
// opaque exportable snapshot per (member, key). The index layer (e.g.
// the HDK engine) implements it over its per-node stores; the member
// hosting the Service handler imports the snapshots the Repairer ships.
type Inventory interface {
	// Keys returns the resident keys of a member's store in a
	// deterministic order (nil for members without a store).
	Keys(m overlay.Member) []string
	// Fingerprint reports whether the member holds the key and, if so, a
	// monotone version of its copy (the HDK engine uses the global df:
	// replicas that saw the same inserts agree on it, and a replica that
	// missed inserts — e.g. one promoted into the set by churn and then
	// fed only post-churn postings — reports a smaller value). The sweep
	// treats a copy with a lower fingerprint than the best resident one
	// as missing, so divergent partial replicas are healed, not trusted.
	Fingerprint(m overlay.Member, key string) (version int, ok bool)
	// Export snapshots one resident entry for shipping to a replica.
	Export(m overlay.Member, key string) ([]byte, bool)
}

// RepairStats summarizes one repair sweep.
type RepairStats struct {
	KeysSwept       int // distinct keys seen across live stores
	UnderReplicated int // keys found on fewer members than their replica set requires
	CopiesSent      int // (key, replica) snapshots shipped
	RepairRPCs      int // batched repair calls issued (one per destination member)
}

// AuditStats summarizes a read-only coverage sweep.
type AuditStats struct {
	Keys            int // distinct keys seen across live stores
	UnderReplicated int // keys missing from at least one responsible member
	MissingCopies   int // total (key, member) placements missing
}

// FullyReplicated reports whether every surveyed key has a copy on every
// member of its replica set.
func (a AuditStats) FullyReplicated() bool { return a.UnderReplicated == 0 }

// Repairer restores R-way key coverage after churn: it sweeps the
// surviving members' stores, computes each key's current replica set on
// the (post-churn) fabric, and ships entry snapshots to responsible
// members that lack them — one batched repair RPC per destination, no
// re-indexing. Keys whose every replica departed are unrecoverable by
// sweep (nothing holds them anymore) and are invisible to it; they need
// a rebuild from the document owners.
type Repairer struct {
	Fabric overlay.Fabric
	Inv    Inventory
	R      int // replication factor to restore
}

// deficit is one under-replicated key found by the sweep: the freshest
// holder to export from and the replica-set members whose copy is
// missing or stale.
type deficit struct {
	key    string
	holder overlay.Member
	to     []overlay.Member
}

// sweep is shared by Repair and Audit: for every distinct key resident
// on a live member, find the freshest copy (highest fingerprint among
// the member it was discovered on and the replica set) and the replica
// set members that lack it or hold a stale one.
func sweep(f overlay.Fabric, inv Inventory, r int) (deficits []deficit, keys int) {
	seen := make(map[string]bool)
	for _, m := range f.Members() {
		for _, key := range inv.Keys(m) {
			if seen[key] {
				continue
			}
			seen[key] = true
			keys++
			owners := Owners(f, key, r)
			best, bestVersion := m, -1
			if v, ok := inv.Fingerprint(m, key); ok {
				bestVersion = v
			}
			for _, owner := range owners {
				if v, ok := inv.Fingerprint(owner, key); ok && v > bestVersion {
					best, bestVersion = owner, v
				}
			}
			var missing []overlay.Member
			for _, owner := range owners {
				if v, ok := inv.Fingerprint(owner, key); !ok || v < bestVersion {
					missing = append(missing, owner)
				}
			}
			if len(missing) > 0 {
				deficits = append(deficits, deficit{key: key, holder: best, to: missing})
			}
		}
	}
	return deficits, keys
}

// Audit performs a read-only store sweep, reporting replica coverage
// under the fabric's current membership and placement.
func Audit(f overlay.Fabric, inv Inventory, r int) AuditStats {
	deficits, keys := sweep(f, inv, r)
	st := AuditStats{Keys: keys, UnderReplicated: len(deficits)}
	for _, d := range deficits {
		st.MissingCopies += len(d.to)
	}
	return st
}

// Repair sweeps the inventory and re-replicates every under-replicated
// key, batching the snapshots per destination member and shipping each
// batch with one Service RPC over the fabric.
func (rp *Repairer) Repair() (RepairStats, error) {
	r := rp.R
	if r < 1 {
		r = 1
	}
	deficits, keys := sweep(rp.Fabric, rp.Inv, r)
	st := RepairStats{KeysSwept: keys, UnderReplicated: len(deficits)}
	batches := make(map[string][]Item)
	var addrs []string
	for _, d := range deficits {
		blob, ok := rp.Inv.Export(d.holder, d.key)
		if !ok {
			return st, fmt.Errorf("replica: holder %s lost %q mid-repair", d.holder.Addr(), d.key)
		}
		for _, owner := range d.to {
			addr := owner.Addr()
			if _, seen := batches[addr]; !seen {
				addrs = append(addrs, addr)
			}
			batches[addr] = append(batches[addr], Item{Key: d.key, Blob: blob})
			st.CopiesSent++
		}
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		if _, err := rp.Fabric.CallService(addr, Service, EncodeBatch(nil, batches[addr])); err != nil {
			return st, fmt.Errorf("replica: repair batch to %s: %w", addr, err)
		}
		st.RepairRPCs++
	}
	return st, nil
}
