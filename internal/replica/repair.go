package replica

import (
	"fmt"
	"sort"

	"repro/internal/overlay"
)

// Fingerprint is the per-copy freshness identity the repair sweep
// compares across replicas: a monotone version plus a content checksum.
// The version alone (the HDK engine uses the global df) orders copies
// that saw different NUMBERS of inserts, but two divergent copies whose
// disjoint insert batches happen to sum to the same df would compare
// equal; the checksum over the copy's content breaks exactly that tie,
// so silent divergence is detected and healed instead of trusted.
type Fingerprint struct {
	// Version is a monotone freshness counter: replicas that saw the
	// same inserts agree on it, a replica that missed inserts reports a
	// smaller value.
	Version int
	// Sum is a checksum of the copy's content. Copies with equal Version
	// but different Sum are divergent; the sweep deterministically
	// converges them onto the higher-Sum copy.
	Sum uint64
}

// Better reports whether f should replace o in a repair sweep: a higher
// version always wins; at equal versions the higher checksum wins (an
// arbitrary but deterministic total order over divergent equals, so
// every sweep — on any member — picks the same survivor).
func (f Fingerprint) Better(o Fingerprint) bool {
	if f.Version != o.Version {
		return f.Version > o.Version
	}
	return f.Sum > o.Sum
}

// Inventory is the Repairer's view of the replicated index: which keys
// are resident on which member, a freshness fingerprint per copy, and an
// opaque exportable snapshot per (member, key). The index layer (e.g.
// the HDK engine) implements it over its per-node stores; the member
// hosting the Service handler imports the snapshots the Repairer ships.
type Inventory interface {
	// Keys returns the resident keys of a member's store in a
	// deterministic order (nil for members without a store).
	Keys(m overlay.Member) []string
	// Fingerprint reports whether the member holds the key and, if so,
	// its copy's freshness identity. The sweep treats a copy whose
	// fingerprint differs from the best resident one as missing, so
	// divergent partial replicas are healed, not trusted.
	Fingerprint(m overlay.Member, key string) (fp Fingerprint, ok bool)
	// Export snapshots one resident entry for shipping to a replica.
	Export(m overlay.Member, key string) ([]byte, bool)
}

// RepairStats summarizes one repair sweep.
type RepairStats struct {
	KeysSwept       int // distinct keys seen across live stores
	UnderReplicated int // keys found on fewer members than their replica set requires
	CopiesSent      int // (key, replica) snapshots shipped
	RepairRPCs      int // batched repair calls issued (one per destination member)
}

// AuditStats summarizes a read-only coverage sweep.
type AuditStats struct {
	Keys            int // distinct keys seen across live stores
	UnderReplicated int // keys missing from at least one responsible member
	MissingCopies   int // total (key, member) placements missing
}

// FullyReplicated reports whether every surveyed key has a copy on every
// member of its replica set.
func (a AuditStats) FullyReplicated() bool { return a.UnderReplicated == 0 }

// Repairer restores R-way key coverage after churn: it sweeps the
// surviving members' stores, computes each key's current replica set on
// the (post-churn) fabric, and ships entry snapshots to responsible
// members that lack them — one batched repair RPC per destination, no
// re-indexing. Keys whose every replica departed are unrecoverable by
// sweep (nothing holds them anymore) and are invisible to it; they need
// a rebuild from the document owners.
type Repairer struct {
	Fabric overlay.Fabric
	Inv    Inventory
	R      int // replication factor to restore
}

// deficit is one under-replicated key found by the sweep: the freshest
// holder to export from and the replica-set members whose copy is
// missing or stale.
type deficit struct {
	key    string
	holder overlay.Member
	to     []overlay.Member
}

// sweep is shared by Repair and Audit: for every distinct key resident
// on a live member, find the freshest copy (best fingerprint among the
// member it was discovered on and the replica set) and the replica set
// members that lack it or hold a stale or divergent one.
func sweep(f overlay.Fabric, inv Inventory, r int) (deficits []deficit, keys int) {
	seen := make(map[string]bool)
	for _, m := range f.Members() {
		for _, key := range inv.Keys(m) {
			if seen[key] {
				continue
			}
			seen[key] = true
			keys++
			owners := Owners(f, key, r)
			best, bestFP, bestOK := m, Fingerprint{}, false
			if fp, ok := inv.Fingerprint(m, key); ok {
				bestFP, bestOK = fp, true
			}
			for _, owner := range owners {
				if fp, ok := inv.Fingerprint(owner, key); ok && (!bestOK || fp.Better(bestFP)) {
					best, bestFP, bestOK = owner, fp, true
				}
			}
			var missing []overlay.Member
			for _, owner := range owners {
				if fp, ok := inv.Fingerprint(owner, key); !ok || fp != bestFP {
					missing = append(missing, owner)
				}
			}
			if len(missing) > 0 {
				deficits = append(deficits, deficit{key: key, holder: best, to: missing})
			}
		}
	}
	return deficits, keys
}

// Audit performs a read-only store sweep, reporting replica coverage
// under the fabric's current membership and placement.
func Audit(f overlay.Fabric, inv Inventory, r int) AuditStats {
	deficits, keys := sweep(f, inv, r)
	st := AuditStats{Keys: keys, UnderReplicated: len(deficits)}
	for _, d := range deficits {
		st.MissingCopies += len(d.to)
	}
	return st
}

// Repair sweeps the inventory and re-replicates every under-replicated
// key, batching the snapshots per destination member and shipping each
// batch with one Service RPC over the fabric.
func (rp *Repairer) Repair() (RepairStats, error) {
	r := rp.R
	if r < 1 {
		r = 1
	}
	deficits, keys := sweep(rp.Fabric, rp.Inv, r)
	st := RepairStats{KeysSwept: keys, UnderReplicated: len(deficits)}
	batches := make(map[string][]Item)
	var addrs []string
	for _, d := range deficits {
		blob, ok := rp.Inv.Export(d.holder, d.key)
		if !ok {
			return st, fmt.Errorf("replica: holder %s lost %q mid-repair", d.holder.Addr(), d.key)
		}
		for _, owner := range d.to {
			addr := owner.Addr()
			if _, seen := batches[addr]; !seen {
				addrs = append(addrs, addr)
			}
			batches[addr] = append(batches[addr], Item{Key: d.key, Blob: blob})
			st.CopiesSent++
		}
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		if _, err := rp.Fabric.CallService(addr, Service, EncodeBatch(nil, batches[addr])); err != nil {
			return st, fmt.Errorf("replica: repair batch to %s: %w", addr, err)
		}
		st.RepairRPCs++
	}
	return st, nil
}

// CatchUpStats summarizes one member's warm-rejoin delta.
type CatchUpStats struct {
	KeysOwned    int // keys in replica sets self belongs to, seen on any other live member
	Stale        int // of those, keys whose local copy was missing, behind or divergent
	CopiesPulled int // entry snapshots shipped to self (== Stale unless an export raced away)
	PullRPCs     int // batched import calls issued to self (0 or 1)
}

// CatchUp restores ONE member after a warm restart: instead of the full
// Repair sweep (which re-replicates every under-replicated key anywhere
// in the cluster), it pulls only the delta this member missed while it
// was down — the keys in its own replica sets whose freshest resident
// copy beats (or is absent from) its restored store. The fresh copies
// ship to self in a single batched Service RPC; nothing is pushed to any
// other member and nothing is re-indexed. A member restarting with an
// intact, up-to-date store pulls zero copies.
func (rp *Repairer) CatchUp(self overlay.Member) (CatchUpStats, error) {
	r := rp.R
	if r < 1 {
		r = 1
	}
	var st CatchUpStats
	seen := make(map[string]bool)
	var items []Item
	for _, m := range rp.Fabric.Members() {
		if m.ID() == self.ID() {
			continue
		}
		for _, key := range rp.Inv.Keys(m) {
			if seen[key] {
				continue
			}
			seen[key] = true
			owners := Owners(rp.Fabric, key, r)
			mine := false
			for _, o := range owners {
				if o.ID() == self.ID() {
					mine = true
					break
				}
			}
			if !mine {
				continue
			}
			st.KeysOwned++
			// Freshest copy among the holder that surfaced the key and
			// the replica set (self included: an up-to-date restored copy
			// must win and cost nothing). Self's fingerprint is captured
			// in the same pass — one inventory RPC per (owner, key).
			best, bestFP, bestOK := m, Fingerprint{}, false
			if fp, ok := rp.Inv.Fingerprint(m, key); ok {
				bestFP, bestOK = fp, true
			}
			var selfFP Fingerprint
			selfOK := false
			for _, o := range owners {
				fp, ok := rp.Inv.Fingerprint(o, key)
				if o.ID() == self.ID() {
					selfFP, selfOK = fp, ok
				}
				if ok && (!bestOK || fp.Better(bestFP)) {
					best, bestFP, bestOK = o, fp, true
				}
			}
			if !bestOK || best.ID() == self.ID() {
				continue
			}
			if selfOK && selfFP == bestFP {
				continue
			}
			st.Stale++
			blob, ok := rp.Inv.Export(best, key)
			if !ok {
				return st, fmt.Errorf("replica: holder %s lost %q mid-catch-up", best.Addr(), key)
			}
			items = append(items, Item{Key: key, Blob: blob})
		}
	}
	if len(items) > 0 {
		if _, err := rp.Fabric.CallService(self.Addr(), Service, EncodeBatch(nil, items)); err != nil {
			return st, fmt.Errorf("replica: catch-up batch to %s: %w", self.Addr(), err)
		}
		st.CopiesPulled = len(items)
		st.PullRPCs = 1
	}
	return st, nil
}
