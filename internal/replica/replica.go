// Package replica adds R-way key placement, search failover support and
// churn repair on top of any overlay.Fabric. The paper's prototype ran
// on P-Grid, whose trie maintains structural replicas per path so
// retrieval survives peer departure; this package reproduces that
// availability property for every substrate behind the Fabric interface:
//
//   - Owners resolves a key to its R distinct responsible members
//     (successor-list placement on fabrics implementing
//     overlay.MultiOwner, a membership-order fallback otherwise);
//   - the repair wire codec ships opaque index-entry snapshots between
//     replicas over the fabric's service RPC;
//   - Repairer sweeps an index inventory after churn and re-replicates
//     under-replicated keys, restoring R-way coverage without a rebuild.
//
// The package is index-agnostic: it never inspects entry payloads, so
// any layer that can export/import its per-key state (the HDK engine,
// the single-term baseline) can replicate through it.
//
// Owners is deliberately the single definition of a key's replica
// chain: the engine's insert fan-out, the client-side search failover,
// the repair sweep AND the daemon-side hdk.search coordinator
// (core.Coordinator over a cluster fabric) all walk the same chain, so
// write placement and every read path agree on where copies live.
package replica

import (
	"encoding/binary"
	"errors"

	"repro/internal/overlay"
)

// Service is the fabric service name replicated index layers register
// for repair traffic: the request is an encoded repair batch, the
// response is empty.
const Service = "replica.repair"

// Owners resolves the replica set of a key: up to r distinct members,
// primary (the member OwnerOf names) first, in failover order. Fabrics
// implementing overlay.MultiOwner define their own placement (successor
// lists on Chord, path neighbors on P-Grid); any other fabric gets the
// primary followed by the next members in Members() order — which for a
// ring-ordered membership is the same successor-list scheme. Fewer than
// r members are returned when the overlay is smaller than r.
func Owners(f overlay.Fabric, key string, r int) []overlay.Member {
	if r < 1 {
		r = 1
	}
	if mo, ok := f.(overlay.MultiOwner); ok {
		return mo.OwnersOf(key, r)
	}
	primary, ok := f.OwnerOf(key)
	if !ok {
		return nil
	}
	members := f.Members()
	if r > len(members) {
		r = len(members)
	}
	start := 0
	for i, m := range members {
		if m.ID() == primary.ID() {
			start = i
			break
		}
	}
	out := make([]overlay.Member, 0, r)
	for k := 0; k < r; k++ {
		out = append(out, members[(start+k)%len(members)])
	}
	return out
}

// Item is one key's replica payload inside a repair batch: the entry
// snapshot is opaque to this package — the index layer that exported it
// is the one that imports it on the receiving member.
type Item struct {
	Key  string
	Blob []byte
}

// ErrCorrupt is returned when a repair batch fails to decode.
var ErrCorrupt = errors.New("replica: corrupt repair batch")

// EncodeBatch appends a count-prefixed repair batch to buf.
func EncodeBatch(buf []byte, items []Item) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(len(it.Key)))
		buf = append(buf, it.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(it.Blob)))
		buf = append(buf, it.Blob...)
	}
	return buf
}

// DecodeBatch parses a repair batch.
func DecodeBatch(buf []byte) ([]Item, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)) {
		return nil, ErrCorrupt
	}
	off := sz
	out := make([]Item, 0, n)
	for i := uint64(0); i < n; i++ {
		kl, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || uint64(len(buf)-off-sz) < kl {
			return nil, ErrCorrupt
		}
		off += sz
		key := string(buf[off : off+int(kl)])
		off += int(kl)
		bl, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || uint64(len(buf)-off-sz) < bl {
			return nil, ErrCorrupt
		}
		off += sz
		blob := append([]byte(nil), buf[off:off+int(bl)]...)
		off += int(bl)
		out = append(out, Item{Key: key, Blob: blob})
	}
	if off != len(buf) {
		return nil, ErrCorrupt
	}
	return out, nil
}
