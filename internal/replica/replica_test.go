package replica

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/overlay"
	"repro/internal/pgrid"
	"repro/internal/transport"
)

func chordNet(t *testing.T, n int) *overlay.Network {
	t.Helper()
	net := overlay.NewNetwork(transport.NewInProc())
	for i := 0; i < n; i++ {
		if _, err := net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func pgridNet(t *testing.T, n int) *pgrid.Network {
	t.Helper()
	net := pgrid.NewNetwork(transport.NewInProc())
	for i := 0; i < n; i++ {
		if _, err := net.AddPeer(fmt.Sprintf("peer-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

// assertOwnerSets checks the resolver contract on any fabric: primary
// first, all distinct, capped at the overlay size.
func assertOwnerSets(t *testing.T, f overlay.Fabric, size int) {
	t.Helper()
	for _, key := range []string{"alpha", "beta", "gamma|delta", "x", "longer key with spaces"} {
		primary, ok := f.OwnerOf(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		for r := 1; r <= size+2; r++ {
			owners := Owners(f, key, r)
			want := r
			if want > size {
				want = size
			}
			if len(owners) != want {
				t.Fatalf("key %q r=%d: got %d owners, want %d", key, r, len(owners), want)
			}
			if owners[0].ID() != primary.ID() {
				t.Fatalf("key %q r=%d: first owner %x is not the primary %x",
					key, r, owners[0].ID(), primary.ID())
			}
			seen := make(map[overlay.ID]bool)
			for _, m := range owners {
				if seen[m.ID()] {
					t.Fatalf("key %q r=%d: duplicate owner %x", key, r, m.ID())
				}
				seen[m.ID()] = true
			}
		}
	}
}

func TestOwnersChord(t *testing.T) { assertOwnerSets(t, chordNet(t, 7), 7) }

func TestOwnersPGrid(t *testing.T) { assertOwnerSets(t, pgridNet(t, 7), 7) }

func TestOwnersSingleNode(t *testing.T) {
	net := chordNet(t, 1)
	owners := Owners(net, "solo", 3)
	if len(owners) != 1 {
		t.Fatalf("1-node overlay returned %d owners", len(owners))
	}
}

// genericFabric hides the MultiOwner implementation, forcing the
// membership-order fallback path.
type genericFabric struct{ overlay.Fabric }

func TestOwnersFallbackMatchesChord(t *testing.T) {
	// The fallback walks Members() order from the primary; on a Chord
	// ring Members() IS ring order, so both paths must agree exactly.
	net := chordNet(t, 9)
	for _, key := range []string{"a", "b", "c", "d", "e"} {
		direct := Owners(net, key, 3)
		fallback := Owners(genericFabric{net}, key, 3)
		if len(direct) != len(fallback) {
			t.Fatalf("key %q: %d vs %d owners", key, len(direct), len(fallback))
		}
		for i := range direct {
			if direct[i].ID() != fallback[i].ID() {
				t.Fatalf("key %q owner %d: successor list %x, fallback %x",
					key, i, direct[i].ID(), fallback[i].ID())
			}
		}
	}
}

// TestChordPromotionAfterDeparture verifies the churn-stability property
// failover relies on: when the primary leaves, the new primary is the
// old second replica.
func TestChordPromotionAfterDeparture(t *testing.T) {
	net := chordNet(t, 8)
	key := "promoted-key"
	before := Owners(net, key, 3)
	if !net.RemoveNode(before[0].ID()) {
		t.Fatal("failed to remove primary")
	}
	after, ok := net.OwnerOf(key)
	if !ok {
		t.Fatal("no owner after departure")
	}
	if after.ID() != before[1].ID() {
		t.Fatalf("new primary %x is not the old second replica %x", after.ID(), before[1].ID())
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	items := []Item{
		{Key: "a", Blob: []byte{1, 2, 3}},
		{Key: "multi word|key", Blob: nil},
		{Key: "", Blob: bytes.Repeat([]byte{0xFF}, 300)},
	}
	got, err := DecodeBatch(EncodeBatch(nil, items))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Key != items[i].Key || !bytes.Equal(got[i].Blob, items[i].Blob) {
			t.Fatalf("item %d mismatch: %+v vs %+v", i, got[i], items[i])
		}
	}
}

func TestBatchCodecCorrupt(t *testing.T) {
	valid := EncodeBatch(nil, []Item{{Key: "k", Blob: []byte("data")}})
	for _, tc := range [][]byte{
		{},
		valid[:len(valid)-1],           // truncated blob
		append(valid, 0x01),            // trailing bytes
		{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, // absurd count
	} {
		if _, err := DecodeBatch(tc); err == nil {
			t.Fatalf("decoded corrupt batch %v without error", tc)
		}
	}
}
