package replica

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"repro/internal/overlay"
	"repro/internal/pgrid"
	"repro/internal/transport"
)

func chordNet(t *testing.T, n int) *overlay.Network {
	t.Helper()
	net := overlay.NewNetwork(transport.NewInProc())
	for i := 0; i < n; i++ {
		if _, err := net.AddNode(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func pgridNet(t *testing.T, n int) *pgrid.Network {
	t.Helper()
	net := pgrid.NewNetwork(transport.NewInProc())
	for i := 0; i < n; i++ {
		if _, err := net.AddPeer(fmt.Sprintf("peer-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

// assertOwnerSets checks the resolver contract on any fabric: primary
// first, all distinct, capped at the overlay size.
func assertOwnerSets(t *testing.T, f overlay.Fabric, size int) {
	t.Helper()
	for _, key := range []string{"alpha", "beta", "gamma|delta", "x", "longer key with spaces"} {
		primary, ok := f.OwnerOf(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		for r := 1; r <= size+2; r++ {
			owners := Owners(f, key, r)
			want := r
			if want > size {
				want = size
			}
			if len(owners) != want {
				t.Fatalf("key %q r=%d: got %d owners, want %d", key, r, len(owners), want)
			}
			if owners[0].ID() != primary.ID() {
				t.Fatalf("key %q r=%d: first owner %x is not the primary %x",
					key, r, owners[0].ID(), primary.ID())
			}
			seen := make(map[overlay.ID]bool)
			for _, m := range owners {
				if seen[m.ID()] {
					t.Fatalf("key %q r=%d: duplicate owner %x", key, r, m.ID())
				}
				seen[m.ID()] = true
			}
		}
	}
}

func TestOwnersChord(t *testing.T) { assertOwnerSets(t, chordNet(t, 7), 7) }

func TestOwnersPGrid(t *testing.T) { assertOwnerSets(t, pgridNet(t, 7), 7) }

func TestOwnersSingleNode(t *testing.T) {
	net := chordNet(t, 1)
	owners := Owners(net, "solo", 3)
	if len(owners) != 1 {
		t.Fatalf("1-node overlay returned %d owners", len(owners))
	}
}

// genericFabric hides the MultiOwner implementation, forcing the
// membership-order fallback path.
type genericFabric struct{ overlay.Fabric }

func TestOwnersFallbackMatchesChord(t *testing.T) {
	// The fallback walks Members() order from the primary; on a Chord
	// ring Members() IS ring order, so both paths must agree exactly.
	net := chordNet(t, 9)
	for _, key := range []string{"a", "b", "c", "d", "e"} {
		direct := Owners(net, key, 3)
		fallback := Owners(genericFabric{net}, key, 3)
		if len(direct) != len(fallback) {
			t.Fatalf("key %q: %d vs %d owners", key, len(direct), len(fallback))
		}
		for i := range direct {
			if direct[i].ID() != fallback[i].ID() {
				t.Fatalf("key %q owner %d: successor list %x, fallback %x",
					key, i, direct[i].ID(), fallback[i].ID())
			}
		}
	}
}

// TestChordPromotionAfterDeparture verifies the churn-stability property
// failover relies on: when the primary leaves, the new primary is the
// old second replica.
func TestChordPromotionAfterDeparture(t *testing.T) {
	net := chordNet(t, 8)
	key := "promoted-key"
	before := Owners(net, key, 3)
	if !net.RemoveNode(before[0].ID()) {
		t.Fatal("failed to remove primary")
	}
	after, ok := net.OwnerOf(key)
	if !ok {
		t.Fatal("no owner after departure")
	}
	if after.ID() != before[1].ID() {
		t.Fatalf("new primary %x is not the old second replica %x", after.ID(), before[1].ID())
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	items := []Item{
		{Key: "a", Blob: []byte{1, 2, 3}},
		{Key: "multi word|key", Blob: nil},
		{Key: "", Blob: bytes.Repeat([]byte{0xFF}, 300)},
	}
	got, err := DecodeBatch(EncodeBatch(nil, items))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Key != items[i].Key || !bytes.Equal(got[i].Blob, items[i].Blob) {
			t.Fatalf("item %d mismatch: %+v vs %+v", i, got[i], items[i])
		}
	}
}

// --- fake replicated index for sweep/catch-up tests ---------------------

// fakeInv is an Inventory over plain maps: addr -> key -> copy. Blobs
// self-describe their fingerprint (uvarint version + uvarint sum), so
// the repair Service handler can install them with the same
// better-fingerprint-wins rule the real store uses.
type fakeInv map[string]map[string]fakeCopy

type fakeCopy struct {
	fp   Fingerprint
	blob []byte
}

func fakeBlob(fp Fingerprint) []byte {
	buf := binary.AppendUvarint(nil, uint64(fp.Version))
	return binary.AppendUvarint(buf, fp.Sum)
}

func parseFakeBlob(blob []byte) (Fingerprint, error) {
	v, n := binary.Uvarint(blob)
	if n <= 0 {
		return Fingerprint{}, ErrCorrupt
	}
	s, m := binary.Uvarint(blob[n:])
	if m <= 0 || n+m != len(blob) {
		return Fingerprint{}, ErrCorrupt
	}
	return Fingerprint{Version: int(v), Sum: s}, nil
}

func (v fakeInv) put(addr, key string, fp Fingerprint) {
	if v[addr] == nil {
		v[addr] = make(map[string]fakeCopy)
	}
	v[addr][key] = fakeCopy{fp: fp, blob: fakeBlob(fp)}
}

func (v fakeInv) Keys(m overlay.Member) []string {
	keys := make([]string, 0, len(v[m.Addr()]))
	for k := range v[m.Addr()] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (v fakeInv) Fingerprint(m overlay.Member, key string) (Fingerprint, bool) {
	c, ok := v[m.Addr()][key]
	return c.fp, ok
}

func (v fakeInv) Export(m overlay.Member, key string) ([]byte, bool) {
	c, ok := v[m.Addr()][key]
	return c.blob, ok
}

// attachFakeImport registers the repair Service on every overlay node,
// installing shipped copies into the fake inventory under the
// better-fingerprint-wins rule.
func attachFakeImport(t *testing.T, net *overlay.Network, inv fakeInv) {
	for _, m := range net.Members() {
		addr := m.Addr()
		m.Handle(Service, func(req []byte) ([]byte, error) {
			items, err := DecodeBatch(req)
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				fp, err := parseFakeBlob(it.Blob)
				if err != nil {
					return nil, err
				}
				if cur, ok := inv[addr][it.Key]; !ok || fp.Better(cur.fp) {
					inv.put(addr, it.Key, fp)
				}
			}
			return nil, nil
		})
	}
}

// TestSweepDetectsEqualDFDivergence: two replicas whose copies report
// the SAME version but different content checksums are divergent; the
// audit must flag them and repair must converge both onto the
// deterministic winner (higher checksum).
func TestSweepDetectsEqualDFDivergence(t *testing.T) {
	net := chordNet(t, 4)
	inv := fakeInv{}
	attachFakeImport(t, net, inv)

	const key, r = "diverged-key", 2
	owners := Owners(net, key, r)
	inv.put(owners[0].Addr(), key, Fingerprint{Version: 3, Sum: 111})
	inv.put(owners[1].Addr(), key, Fingerprint{Version: 3, Sum: 999})

	audit := Audit(net, inv, r)
	if audit.UnderReplicated != 1 || audit.MissingCopies != 1 {
		t.Fatalf("audit trusts divergent equal-version copies: %+v", audit)
	}

	rp := &Repairer{Fabric: net, Inv: inv, R: r}
	st, err := rp.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if st.CopiesSent != 1 {
		t.Fatalf("repair shipped %d copies, want 1", st.CopiesSent)
	}
	want := Fingerprint{Version: 3, Sum: 999}
	for _, o := range owners {
		if fp, ok := inv.Fingerprint(o, key); !ok || fp != want {
			t.Fatalf("owner %s holds %+v after repair, want %+v", o.Addr(), fp, want)
		}
	}
	if after := Audit(net, inv, r); after.UnderReplicated != 0 {
		t.Fatalf("divergence not healed: %+v", after)
	}
}

// TestCatchUpPullsOnlyDelta: a warm-restarted member must pull exactly
// the keys its restored store is missing or behind on — nothing gets
// pushed anywhere else, up-to-date copies cost zero traffic.
func TestCatchUpPullsOnlyDelta(t *testing.T) {
	const n, r = 5, 3
	net := chordNet(t, n)
	inv := fakeInv{}
	attachFakeImport(t, net, inv)
	self := net.Members()[0]

	// Partition the keyspace by how self's copy relates to the replicas'.
	fresh := Fingerprint{Version: 1, Sum: 50}
	bumped := Fingerprint{Version: 2, Sum: 60}
	var owned, upToDate, stale, missing, notMine int
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("key-%02d", i)
		owners := Owners(net, key, r)
		mine := false
		for _, o := range owners {
			if o.ID() == self.ID() {
				mine = true
			}
		}
		if !mine {
			notMine++
			for _, o := range owners {
				inv.put(o.Addr(), key, fresh)
			}
			continue
		}
		owned++
		switch owned % 3 {
		case 0: // self up to date
			upToDate++
			for _, o := range owners {
				inv.put(o.Addr(), key, fresh)
			}
		case 1: // writes missed while down: others moved ahead
			stale++
			for _, o := range owners {
				if o.ID() == self.ID() {
					inv.put(o.Addr(), key, fresh)
				} else {
					inv.put(o.Addr(), key, bumped)
				}
			}
		case 2: // fsync lag: the restored store never saw the key
			missing++
			for _, o := range owners {
				if o.ID() != self.ID() {
					inv.put(o.Addr(), key, fresh)
				}
			}
		}
	}
	if stale == 0 || missing == 0 || upToDate == 0 || notMine == 0 {
		t.Fatalf("degenerate partition: owned=%d stale=%d missing=%d upToDate=%d notMine=%d",
			owned, stale, missing, upToDate, notMine)
	}

	before := len(inv[self.Addr()])
	rp := &Repairer{Fabric: net, Inv: inv, R: r}
	st, err := rp.CatchUp(self)
	if err != nil {
		t.Fatal(err)
	}
	if st.KeysOwned != owned {
		t.Fatalf("KeysOwned = %d, want %d", st.KeysOwned, owned)
	}
	if st.Stale != stale+missing || st.CopiesPulled != stale+missing {
		t.Fatalf("delta = %+v, want %d stale+missing pulls", st, stale+missing)
	}
	if st.PullRPCs != 1 {
		t.Fatalf("catch-up used %d RPCs, want 1 batched import", st.PullRPCs)
	}
	if got := len(inv[self.Addr()]); got != before+missing {
		t.Fatalf("self holds %d keys, want %d", got, before+missing)
	}
	// A second catch-up finds nothing to do.
	again, err := rp.CatchUp(self)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stale != 0 || again.CopiesPulled != 0 || again.PullRPCs != 0 {
		t.Fatalf("second catch-up still pulled: %+v", again)
	}
	// No other member's store changed (pull-only).
	audit := Audit(net, inv, r)
	if audit.UnderReplicated != 0 {
		t.Fatalf("catch-up left deficits: %+v", audit)
	}
}

func TestBatchCodecCorrupt(t *testing.T) {
	valid := EncodeBatch(nil, []Item{{Key: "k", Blob: []byte("data")}})
	for _, tc := range [][]byte{
		{},
		valid[:len(valid)-1],           // truncated blob
		append(valid, 0x01),            // trailing bytes
		{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, // absurd count
	} {
		if _, err := DecodeBatch(tc); err == nil {
			t.Fatalf("decoded corrupt batch %v without error", tc)
		}
	}
}
