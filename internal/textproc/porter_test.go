package textproc

import "testing"

// Canonical Porter test vectors drawn from the algorithm's published
// description and the reference voc/output pairs.
var porterVectors = []struct{ in, want string }{
	// Step 1a
	{"caresses", "caress"},
	{"ponies", "poni"},
	{"ties", "ti"},
	{"caress", "caress"},
	{"cats", "cat"},
	// Step 1b
	{"feed", "feed"},
	{"agreed", "agre"},
	{"plastered", "plaster"},
	{"bled", "bled"},
	{"motoring", "motor"},
	{"sing", "sing"},
	{"conflated", "conflat"},
	{"troubled", "troubl"},
	{"sized", "size"},
	{"hopping", "hop"},
	{"tanned", "tan"},
	{"falling", "fall"},
	{"hissing", "hiss"},
	{"fizzed", "fizz"},
	{"failing", "fail"},
	{"filing", "file"},
	// Step 1c
	{"happy", "happi"},
	{"sky", "sky"},
	// Step 2
	{"relational", "relat"},
	{"conditional", "condit"},
	{"rational", "ration"},
	{"valenci", "valenc"},
	{"hesitanci", "hesit"},
	{"digitizer", "digit"},
	{"conformabli", "conform"},
	{"radicalli", "radic"},
	{"differentli", "differ"},
	{"vileli", "vile"},
	{"analogousli", "analog"},
	{"vietnamization", "vietnam"},
	{"predication", "predic"},
	{"operator", "oper"},
	{"feudalism", "feudal"},
	{"decisiveness", "decis"},
	{"hopefulness", "hope"},
	{"callousness", "callous"},
	{"formaliti", "formal"},
	{"sensitiviti", "sensit"},
	{"sensibiliti", "sensibl"},
	// Step 3
	{"triplicate", "triplic"},
	{"formative", "form"},
	{"formalize", "formal"},
	{"electriciti", "electr"},
	{"electrical", "electr"},
	{"hopeful", "hope"},
	{"goodness", "good"},
	// Step 4
	{"revival", "reviv"},
	{"allowance", "allow"},
	{"inference", "infer"},
	{"airliner", "airlin"},
	{"gyroscopic", "gyroscop"},
	{"adjustable", "adjust"},
	{"defensible", "defens"},
	{"irritant", "irrit"},
	{"replacement", "replac"},
	{"adjustment", "adjust"},
	{"dependent", "depend"},
	{"adoption", "adopt"},
	{"homologou", "homolog"},
	{"communism", "commun"},
	{"activate", "activ"},
	{"angulariti", "angular"},
	{"homologous", "homolog"},
	{"effective", "effect"},
	{"bowdlerize", "bowdler"},
	// Step 5
	{"probate", "probat"},
	{"rate", "rate"},
	{"cease", "ceas"},
	{"controll", "control"},
	{"roll", "roll"},
	// General / whole-pipeline words
	{"retrieval", "retriev"},
	{"indexing", "index"},
	{"discriminative", "discrimin"},
	{"scalability", "scalabl"},
	{"networks", "network"},
	{"peers", "peer"},
	{"documents", "document"},
	{"generalization", "gener"},
	{"oscillators", "oscil"},
}

func TestStemVectors(t *testing.T) {
	for _, v := range porterVectors {
		if got := Stem(v.in); got != v.want {
			t.Errorf("Stem(%q) = %q, want %q", v.in, got, v.want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "be"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonASCIIPassThrough(t *testing.T) {
	for _, w := range []string{"café", "naïve", "hello-world"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnStems(t *testing.T) {
	// Stemming is not idempotent in general for Porter, but for the vector
	// outputs above that are fixed points of the algorithm it must be.
	fixed := []string{"cat", "tan", "fall", "peer", "network"}
	for _, w := range fixed {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want fixed point", w, got)
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"generalization", "discriminative", "retrieval", "cats", "oscillators"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
