package textproc

// Stem applies the Porter stemming algorithm (Porter, 1980) to a single
// lower-case word and returns its stem. Words of length <= 2 are returned
// unchanged, as in the original algorithm.
//
// The implementation follows the canonical description: measure-based
// conditions (m), *S/*v*/*d/*o predicates, and steps 1a, 1b, 1c, 2, 3, 4,
// 5a, 5b.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			// Only stem plain ASCII lower-case words; anything else
			// (digits-only tokens pass through untouched too).
			return word
		}
	}
	s := &stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemmer struct {
	b []byte
}

// isConsonant reports whether the letter at index i is a consonant in
// Porter's sense: not a,e,i,o,u, and 'y' is a consonant only when preceded
// by a vowel position start or a vowel... precisely: y is a consonant if it
// is the first letter or the preceding letter is a vowel-position consonant.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in the stem b[0:end].
func (s *stemmer) measureTo(end int) int {
	m := 0
	i := 0
	// skip initial consonants
	for i < end && s.isConsonant(i) {
		i++
	}
	for {
		// skip vowels
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			return m
		}
		// skip consonants
		for i < end && s.isConsonant(i) {
			i++
		}
		m++
		if i >= end {
			return m
		}
	}
}

func (s *stemmer) measure() int { return s.measureTo(len(s.b)) }

// hasVowelTo reports *v* for the stem b[0:end].
func (s *stemmer) hasVowelTo(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports *d: the word ends with a double consonant.
func (s *stemmer) endsDoubleConsonant() bool {
	n := len(s.b)
	if n < 2 {
		return false
	}
	return s.b[n-1] == s.b[n-2] && s.isConsonant(n-1)
}

// endsCVC reports *o: the stem ends cvc where the final c is not w, x or y.
func (s *stemmer) endsCVCTo(end int) bool {
	if end < 3 {
		return false
	}
	i := end - 1
	if !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the word ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	if n < len(suf) {
		return false
	}
	return string(s.b[n-len(suf):]) == suf
}

// stemLen returns the length of the word minus suffix suf (assumes hasSuffix).
func (s *stemmer) stemLen(suf string) int { return len(s.b) - len(suf) }

// replace replaces suffix suf with rep if the measure of the remaining stem
// is > m. Returns true if the suffix matched (regardless of replacement).
func (s *stemmer) replace(suf, rep string, m int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	stem := s.stemLen(suf)
	if s.measureTo(stem) > m {
		s.b = append(s.b[:stem], rep...)
	}
	return true
}

func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.b = s.b[:len(s.b)-2] // sses -> ss
	case s.hasSuffix("ies"):
		s.b = s.b[:len(s.b)-2] // ies -> i
	case s.hasSuffix("ss"):
		// ss -> ss, no change
	case s.hasSuffix("s"):
		s.b = s.b[:len(s.b)-1] // s ->
	}
}

func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measureTo(s.stemLen("eed")) > 0 {
			s.b = s.b[:len(s.b)-1] // eed -> ee
		}
		return
	}
	matched := false
	if s.hasSuffix("ed") && s.hasVowelTo(s.stemLen("ed")) {
		s.b = s.b[:s.stemLen("ed")]
		matched = true
	} else if s.hasSuffix("ing") && s.hasVowelTo(s.stemLen("ing")) {
		s.b = s.b[:s.stemLen("ing")]
		matched = true
	}
	if !matched {
		return
	}
	switch {
	case s.hasSuffix("at"), s.hasSuffix("bl"), s.hasSuffix("iz"):
		s.b = append(s.b, 'e')
	case s.endsDoubleConsonant():
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure() == 1 && s.endsCVCTo(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowelTo(len(s.b)-1) {
		s.b[len(s.b)-1] = 'i'
	}
}

var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
	{"biliti", "ble"},
}

func (s *stemmer) step2() {
	for _, r := range step2Rules {
		if s.replace(r.suf, r.rep, 0) {
			return
		}
	}
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
	{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (s *stemmer) step3() {
	for _, r := range step3Rules {
		if s.replace(r.suf, r.rep, 0) {
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (s *stemmer) step4() {
	for _, suf := range step4Suffixes {
		if !s.hasSuffix(suf) {
			continue
		}
		stem := s.stemLen(suf)
		if suf == "ion" {
			// (m>1 and (*S or *T)) ION ->
			if stem > 0 && (s.b[stem-1] == 's' || s.b[stem-1] == 't') && s.measureTo(stem) > 1 {
				s.b = s.b[:stem]
			}
			return
		}
		if s.measureTo(stem) > 1 {
			s.b = s.b[:stem]
		}
		return
	}
}

func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	stem := len(s.b) - 1
	m := s.measureTo(stem)
	if m > 1 || (m == 1 && !s.endsCVCTo(stem)) {
		s.b = s.b[:stem]
	}
}

func (s *stemmer) step5b() {
	if s.measure() > 1 && s.endsDoubleConsonant() && s.b[len(s.b)-1] == 'l' {
		s.b = s.b[:len(s.b)-1]
	}
}
