// Package textproc implements the text-processing pipeline used by the HDK
// retrieval engine: tokenization, stop-word removal, Porter stemming and
// sliding-window extraction.
//
// The pipeline mirrors the pre-processing described in Section 5 of the
// paper: "First we remove 250 common English stop words and apply the Porter
// stemmer, and then we removed additional very frequent terms." The
// very-frequent-term removal is collection-dependent and therefore lives in
// the indexing layer; this package provides the collection-independent
// stages.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lower-cased alphanumeric tokens. Tokens shorter
// than MinTokenLen or longer than MaxTokenLen runes are dropped: one-letter
// tokens carry no retrieval signal and pathologically long tokens are almost
// always markup noise.
func Tokenize(text string) []string {
	const avgTokenLen = 6
	out := make([]string, 0, len(text)/avgTokenLen)
	var b strings.Builder
	flush := func() {
		if b.Len() >= MinTokenLen && b.Len() <= MaxTokenLen {
			out = append(out, b.String())
		}
		b.Reset()
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return out
}

// Token length bounds enforced by Tokenize (in bytes of the lower-cased
// form, which equals runes for ASCII input).
const (
	MinTokenLen = 2
	MaxTokenLen = 40
)

// Pipeline bundles the full collection-independent pre-processing chain.
// The zero value is not usable; construct with NewPipeline.
type Pipeline struct {
	stop     map[string]struct{}
	stem     bool
	extraVF  map[string]struct{} // additional very frequent terms, optional
	minToken int
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithoutStemming disables the Porter stemmer stage.
func WithoutStemming() Option { return func(p *Pipeline) { p.stem = false } }

// WithExtraStopTerms adds collection-specific very frequent terms to the
// removal set (the "additional very frequent terms" of Section 5).
func WithExtraStopTerms(terms []string) Option {
	return func(p *Pipeline) {
		for _, t := range terms {
			p.extraVF[t] = struct{}{}
		}
	}
}

// NewPipeline returns a pipeline with the standard 250-word English stop
// list and Porter stemming enabled.
func NewPipeline(opts ...Option) *Pipeline {
	p := &Pipeline{
		stop:    stopSet(),
		stem:    true,
		extraVF: make(map[string]struct{}),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Process runs the full chain on raw text and returns the sequence of index
// terms in document order (order matters for proximity filtering).
func (p *Pipeline) Process(text string) []string {
	return p.ProcessTokens(Tokenize(text))
}

// ProcessTokens runs stop-word removal and stemming on pre-split tokens.
func (p *Pipeline) ProcessTokens(tokens []string) []string {
	out := tokens[:0:0]
	for _, t := range tokens {
		if _, ok := p.stop[t]; ok {
			continue
		}
		if _, ok := p.extraVF[t]; ok {
			continue
		}
		if p.stem {
			t = Stem(t)
		}
		if len(t) < MinTokenLen {
			continue
		}
		out = append(out, t)
	}
	return out
}

// IsStopWord reports whether t is in the pipeline's static stop list.
func (p *Pipeline) IsStopWord(t string) bool {
	_, ok := p.stop[t]
	return ok
}
