package textproc

// stopWords is a 250-entry common-English stop list, matching the size used
// in the paper's experimental setup ("we remove 250 common English stop
// words"). The list is the classical van Rijsbergen/SMART-style list
// truncated to 250 entries.
var stopWords = [...]string{
	"a", "about", "above", "across", "after", "again",
	"against", "all", "almost", "alone", "along", "already", "also",
	"although", "always", "am", "among", "amongst", "an", "and", "another",
	"any", "anyhow", "anyone", "anything", "anyway", "anywhere", "are",
	"around", "as", "at", "be", "became", "because", "become", "becomes",
	"becoming", "been", "before", "behind", "being", "below",
	"beside", "besides", "between", "beyond", "both", "but", "by", "can",
	"cannot", "could", "did", "do", "does", "doing", "done", "down", "during",
	"each", "either", "else", "elsewhere", "enough", "etc", "even", "ever",
	"every", "everyone", "everything", "everywhere", "except", "few", "for",
	"former", "formerly", "from", "further", "had", "has", "have", "having",
	"he", "hence", "her", "here",
	"hers", "herself", "him", "himself", "his", "how", "however", "i", "ie",
	"if", "in", "indeed", "instead", "into", "is", "it", "its", "itself",
	"just", "last", "latter", "least", "less", "like", "made",
	"many", "may", "me", "meanwhile", "might", "mine", "more", "moreover",
	"most", "mostly", "much", "must", "my", "myself", "namely", "neither",
	"never", "nevertheless", "next", "no", "nobody", "none", "nor", "not",
	"nothing", "now", "nowhere", "of", "off", "often", "on", "once", "one",
	"only", "onto", "or", "other", "others", "otherwise", "our", "ours",
	"ourselves", "out", "over", "own", "per", "perhaps", "please", "put",
	"rather", "re", "same", "say", "see", "seem", "seemed", "seeming",
	"seems", "several", "she", "should", "since", "so", "some", "somehow",
	"someone", "something", "sometime", "sometimes", "somewhere", "still",
	"such", "than", "that", "the", "their", "theirs", "them", "themselves",
	"then", "thence", "there", "therefore",
	"these", "they", "this", "those", "though",
	"through", "throughout", "thus", "to", "together", "too",
	"toward", "towards", "under", "unless", "until", "up", "upon", "us",
	"use", "used", "using", "various", "very", "via", "was", "we", "well",
	"were", "what", "whatever", "when", "whence", "whenever", "where",
	"wherever",
	"whether", "which", "while", "who", "whoever", "whole",
	"whom", "whose", "why", "will", "with", "within", "without", "would",
	"yet", "you", "your", "yours", "yourself", "yourselves",
}

// StopWordCount is the size of the static stop list.
const StopWordCount = len(stopWords)

func stopSet() map[string]struct{} {
	m := make(map[string]struct{}, len(stopWords))
	for _, w := range stopWords {
		m[w] = struct{}{}
	}
	return m
}

// StopWords returns a copy of the static stop list.
func StopWords() []string {
	out := make([]string, len(stopWords))
	copy(out, stopWords[:])
	return out
}
