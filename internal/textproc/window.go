package textproc

// Windows iterates over all sliding windows of size w over the term
// sequence terms, invoking fn with each window slice. The final windows
// shorter than w (when the document itself is shorter) collapse to a single
// call with the whole document, matching the paper's fixed-size-window
// textual context: term sets are keys only if all their terms co-occur
// within at least one window of size w.
//
// The slice passed to fn aliases terms and must not be retained.
func Windows(terms []string, w int, fn func(window []string)) {
	if w <= 0 || len(terms) == 0 {
		return
	}
	if len(terms) <= w {
		fn(terms)
		return
	}
	for i := 0; i+w <= len(terms); i++ {
		fn(terms[i : i+w])
	}
}

// CoOccursInWindow reports whether all needles occur together inside at
// least one window of size w of the term sequence. It is the reference
// (brute-force) implementation of proximity filtering, used by tests and by
// the retrieval-side post-processing of HDK answer sets.
func CoOccursInWindow(terms []string, w int, needles []string) bool {
	if len(needles) == 0 {
		return true
	}
	found := false
	need := make(map[string]struct{}, len(needles))
	for _, n := range needles {
		need[n] = struct{}{}
	}
	Windows(terms, w, func(window []string) {
		if found {
			return
		}
		seen := 0
		marked := make(map[string]struct{}, len(need))
		for _, t := range window {
			if _, ok := need[t]; ok {
				if _, dup := marked[t]; !dup {
					marked[t] = struct{}{}
					seen++
				}
			}
		}
		if seen == len(need) {
			found = true
		}
	})
	return found
}
