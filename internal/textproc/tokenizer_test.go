package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"peer-to-peer", []string{"peer", "to", "peer"}},
		{"", nil},
		{"   ", nil},
		{"P2P networks scale to 1,000,000 peers.",
			[]string{"p2p", "networks", "scale", "to", "000", "000", "peers"}},
		{"a I x", nil}, // single-char tokens dropped
		{"BM25", []string{"bm25"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeDropsOverlongTokens(t *testing.T) {
	long := strings.Repeat("x", MaxTokenLen+1)
	if got := Tokenize("ok " + long + " fine"); !reflect.DeepEqual(got, []string{"ok", "fine"}) {
		t.Errorf("overlong token not dropped: %v", got)
	}
	exact := strings.Repeat("x", MaxTokenLen)
	if got := Tokenize(exact); !reflect.DeepEqual(got, []string{exact}) {
		t.Errorf("max-length token wrongly dropped: %v", got)
	}
}

func TestTokenizeLowercases(t *testing.T) {
	prop := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeTokensAreAlphanumeric(t *testing.T) {
	prop := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if len(tok) < MinTokenLen {
				return false
			}
			for _, r := range tok {
				if !((r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') ||
					r > 127) { // non-ASCII letters/digits are kept lowercased
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStopWordCountIs250(t *testing.T) {
	if StopWordCount != 250 {
		t.Fatalf("stop list has %d entries, want 250 (paper Section 5)", StopWordCount)
	}
	seen := map[string]bool{}
	for _, w := range StopWords() {
		if seen[w] {
			t.Errorf("duplicate stop word %q", w)
		}
		seen[w] = true
	}
}

func TestPipelineProcess(t *testing.T) {
	p := NewPipeline()
	got := p.Process("The quick brown foxes are jumping over the lazy dogs")
	want := []string{"quick", "brown", "fox", "jump", "lazi", "dog"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Process = %v, want %v", got, want)
	}
}

func TestPipelineWithoutStemming(t *testing.T) {
	p := NewPipeline(WithoutStemming())
	got := p.Process("running dogs")
	want := []string{"running", "dogs"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Process = %v, want %v", got, want)
	}
}

func TestPipelineExtraStopTerms(t *testing.T) {
	p := NewPipeline(WithExtraStopTerms([]string{"wiki"}), WithoutStemming())
	got := p.Process("wiki article content")
	want := []string{"article", "content"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Process = %v, want %v", got, want)
	}
}

func TestPipelineRemovesStopWords(t *testing.T) {
	p := NewPipeline()
	for _, tok := range p.Process("the and of to in is was") {
		t.Errorf("stop word survived pipeline: %q", tok)
	}
}

func TestWindowsFullCoverage(t *testing.T) {
	terms := []string{"a1", "b2", "c3", "d4", "e5"}
	var got [][]string
	Windows(terms, 3, func(w []string) {
		cp := make([]string, len(w))
		copy(cp, w)
		got = append(got, cp)
	})
	want := [][]string{{"a1", "b2", "c3"}, {"b2", "c3", "d4"}, {"c3", "d4", "e5"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Windows = %v, want %v", got, want)
	}
}

func TestWindowsShortDocument(t *testing.T) {
	terms := []string{"x1", "y2"}
	count := 0
	Windows(terms, 20, func(w []string) {
		count++
		if len(w) != 2 {
			t.Errorf("short-doc window len = %d, want 2", len(w))
		}
	})
	if count != 1 {
		t.Errorf("short doc produced %d windows, want 1", count)
	}
}

func TestWindowsDegenerate(t *testing.T) {
	called := false
	Windows(nil, 5, func([]string) { called = true })
	Windows([]string{"x1"}, 0, func([]string) { called = true })
	if called {
		t.Error("degenerate inputs must produce no windows")
	}
}

func TestCoOccursInWindow(t *testing.T) {
	terms := []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"}
	cases := []struct {
		w       int
		needles []string
		want    bool
	}{
		{3, []string{"t1", "t3"}, true},
		{2, []string{"t1", "t3"}, false},
		{8, []string{"t1", "t8"}, true},
		{7, []string{"t1", "t8"}, false},
		{3, []string{"t9"}, false},
		{3, nil, true},
		{1, []string{"t4"}, true},
	}
	for _, c := range cases {
		if got := CoOccursInWindow(terms, c.w, c.needles); got != c.want {
			t.Errorf("CoOccursInWindow(w=%d, %v) = %v, want %v", c.w, c.needles, got, c.want)
		}
	}
}

func TestCoOccursWindowCountsDistinctTerms(t *testing.T) {
	// A repeated needle in the window must not satisfy a two-term need.
	terms := []string{"t1", "t1", "t1"}
	if CoOccursInWindow(terms, 3, []string{"t1", "t2"}) {
		t.Error("repeated term wrongly satisfied a 2-term co-occurrence")
	}
}

func BenchmarkPipelineProcess(b *testing.B) {
	p := NewPipeline()
	text := strings.Repeat("the scalable peer to peer retrieval of documents with highly discriminative keys ", 30)
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		p.Process(text)
	}
}
