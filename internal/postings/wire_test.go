package postings

import (
	"errors"
	"reflect"
	"testing"
)

func TestKeyedRoundTrip(t *testing.T) {
	in := KeyedMessage{
		Key:  "alpha\x1fbeta",
		Aux:  (412 << 2) | 2,
		List: List{{Doc: 3, Score: 1.5}, {Doc: 9, Score: 0.25}},
	}
	buf := EncodeKeyed(nil, in)
	out, consumed, err := DecodeKeyed(buf)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(buf) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(buf))
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestKeyListRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{"one"},
		{"a", "", "term1\x1fterm2", "a much longer key string than the others"},
	}
	for _, keys := range cases {
		buf := EncodeKeyList(nil, keys)
		got, err := DecodeKeyList(buf)
		if err != nil {
			t.Fatalf("keys %q: %v", keys, err)
		}
		if len(got) != len(keys) {
			t.Fatalf("keys %q: got %d back", keys, len(got))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("key %d: %q != %q", i, got[i], keys[i])
			}
		}
	}
}

func TestKeyListAppendsToBuffer(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	buf := EncodeKeyList(prefix, []string{"x", "y"})
	if buf[0] != 0xde || buf[1] != 0xad {
		t.Fatal("prefix clobbered")
	}
	got, err := DecodeKeyList(buf[2:])
	if err != nil || len(got) != 2 {
		t.Fatalf("decode after prefix: %v, %d keys", err, len(got))
	}
}

func TestKeyListCorrupt(t *testing.T) {
	valid := EncodeKeyList(nil, []string{"alpha", "beta", "gamma"})
	cases := map[string][]byte{
		"empty input":         {},
		"truncated mid-key":   valid[:len(valid)-3],
		"truncated to count":  valid[:1],
		"huge count":          {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"key length past end": {1, 200, 'a'},
	}
	for name, buf := range cases {
		if _, err := DecodeKeyList(buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func TestKeyListCorruptNeverPanics(t *testing.T) {
	valid := EncodeKeyList(nil, []string{"alpha", "beta"})
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeKeyList(valid[:cut]); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: unexpected error class %v", cut, err)
		}
	}
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		DecodeKeyList(mut) // must not panic; error or garbage both fine
	}
}
