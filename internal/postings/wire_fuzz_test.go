package postings

import (
	"bytes"
	"testing"

	"repro/internal/fuzzcorpus"
)

// Fuzz targets for the postings wire codec: the key-list frame of the
// multi-key fetch RPC and the keyed-message batch of the insert RPC.
// Both decoders read attacker-controllable bytes, so the contract is:
// no panic, no allocation sized from an unbacked declared count, and
// stable re-encoding of every accepted input (scores travel as exact
// float bits, so byte comparison is NaN-safe).

func keyListSeeds() [][]byte {
	return [][]byte{
		EncodeKeyList(nil, []string{"alpha"}),
		EncodeKeyList(nil, []string{"alpha", "beta gamma", ""}),
		EncodeKeyList(nil, nil),
		{0xff, 0xff, 0xff, 0xff},
	}
}

func keyedBatchSeeds() [][]byte {
	one := KeyedMessage{Key: "alpha beta", Aux: 3, List: List{{Doc: 1, Score: 0.5}, {Doc: 8, Score: 2}}}
	two := KeyedMessage{Key: "gamma", Aux: 0, List: List{{Doc: 2}}}
	return [][]byte{
		EncodeKeyedBatch(nil, []KeyedMessage{one}),
		EncodeKeyedBatch(nil, []KeyedMessage{one, two}),
		EncodeKeyedBatch(nil, nil),
		EncodeKeyed(nil, two),
		{0x01},
	}
}

func FuzzDecodeKeyList(f *testing.F) {
	for _, seed := range keyListSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, err := DecodeKeyList(data)
		if err != nil {
			return
		}
		enc := EncodeKeyList(nil, keys)
		keys2, err := DecodeKeyList(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted key list failed: %v", err)
		}
		if enc2 := EncodeKeyList(nil, keys2); !bytes.Equal(enc, enc2) {
			t.Fatalf("key-list encoding not stable:\n first %x\nsecond %x", enc, enc2)
		}
	})
}

func FuzzDecodeKeyedBatch(f *testing.F) {
	for _, seed := range keyedBatchSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ms, err := DecodeKeyedBatch(data)
		if err != nil {
			return
		}
		enc := EncodeKeyedBatch(nil, ms)
		ms2, err := DecodeKeyedBatch(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if enc2 := EncodeKeyedBatch(nil, ms2); !bytes.Equal(enc, enc2) {
			t.Fatalf("batch encoding not stable:\n first %x\nsecond %x", enc, enc2)
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus; see
// package fuzzcorpus.
func TestWriteFuzzCorpus(t *testing.T) {
	if !fuzzcorpus.Enabled() {
		t.Skipf("set %s=1 to regenerate testdata/fuzz", fuzzcorpus.EnvVar)
	}
	for name, seeds := range map[string][][]byte{
		"FuzzDecodeKeyList":    keyListSeeds(),
		"FuzzDecodeKeyedBatch": keyedBatchSeeds(),
	} {
		if err := fuzzcorpus.Write(name, seeds); err != nil {
			t.Fatal(err)
		}
	}
}
