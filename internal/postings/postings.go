// Package postings implements the posting-list primitives shared by every
// index in the repository: sorted document-id lists with per-posting
// relevance scores, set operations (union, intersection, merge), top-k
// truncation by score (the paper's "top-DFmax postings associated with
// NDKs"), and a compact varint-delta wire codec used to account for and
// transmit index traffic.
package postings

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/corpus"
)

// Posting associates a document with the relevance score its index-side
// peer computed for the key (the paper's distributed content-based
// ranking: postings travel with their partial scores).
type Posting struct {
	Doc   corpus.DocID
	Score float32
}

// List is a posting list sorted by ascending document id with unique docs.
type List []Posting

// FromDocs builds a list with zero scores from raw doc ids.
func FromDocs(docs []corpus.DocID) List {
	l := make(List, len(docs))
	for i, d := range docs {
		l[i] = Posting{Doc: d}
	}
	l.Normalize()
	return l
}

// Docs extracts the document ids.
func (l List) Docs() []corpus.DocID {
	out := make([]corpus.DocID, len(l))
	for i, p := range l {
		out[i] = p.Doc
	}
	return out
}

// Normalize sorts by doc id and merges duplicate docs keeping the highest
// score. It returns the (possibly shortened) list in place.
func (l *List) Normalize() {
	s := *l
	sort.Slice(s, func(i, j int) bool { return s[i].Doc < s[j].Doc })
	out := s[:0]
	for _, p := range s {
		if n := len(out); n > 0 && out[n-1].Doc == p.Doc {
			if p.Score > out[n-1].Score {
				out[n-1].Score = p.Score
			}
			continue
		}
		out = append(out, p)
	}
	*l = out
}

// IsSorted reports whether the list is strictly sorted by doc id (the
// invariant all package operations assume and preserve).
func (l List) IsSorted() bool {
	for i := 1; i < len(l); i++ {
		if l[i-1].Doc >= l[i].Doc {
			return false
		}
	}
	return true
}

// Contains reports whether doc is present (binary search).
func (l List) Contains(doc corpus.DocID) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i].Doc >= doc })
	return i < len(l) && l[i].Doc == doc
}

// Union merges two sorted lists; on common docs, scores add (query-side
// score aggregation across keys: a document reached via several keys
// accumulates their partial scores).
func Union(a, b List) List {
	return UnionInto(nil, a, b)
}

// UnionInto is Union with a caller-owned destination buffer: the merge
// writes into dst's backing array (grown once if too small) so a caller
// folding many unions can ping-pong two buffers instead of allocating
// per fold. dst must not alias a or b. The merge order and score
// additions are identical to Union, so results stay bit-identical.
func UnionInto(dst, a, b List) List {
	if need := len(a) + len(b); cap(dst) < need || dst == nil {
		dst = make(List, 0, need)
	}
	out := dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Doc < b[j].Doc:
			out = append(out, a[i])
			i++
		case a[i].Doc > b[j].Doc:
			out = append(out, b[j])
			j++
		default:
			out = append(out, Posting{Doc: a[i].Doc, Score: a[i].Score + b[j].Score})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Intersect keeps docs present in both lists, adding scores.
func Intersect(a, b List) List {
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make(List, 0, len(a))
	j := 0
	for _, p := range a {
		for j < len(b) && b[j].Doc < p.Doc {
			j++
		}
		if j < len(b) && b[j].Doc == p.Doc {
			out = append(out, Posting{Doc: p.Doc, Score: p.Score + b[j].Score})
			j++
		}
	}
	return out
}

// UnionAll folds Union over many lists, ping-ponging two presized
// buffers so the fold costs two allocations regardless of list count.
func UnionAll(lists []List) List {
	if len(lists) == 0 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	acc := make(List, 0, total)
	spare := make(List, 0, total)
	for _, l := range lists {
		spare = UnionInto(spare, acc, l)
		acc, spare = spare, acc
	}
	return acc
}

// TopK returns the k highest-scoring postings (ties broken by lower doc
// id), re-sorted by doc id so the result is again a valid List. This is
// the truncation the paper applies to NDK posting lists ("truncated to
// their top-DFmax best elements").
func (l List) TopK(k int) List {
	if k >= len(l) {
		out := make(List, len(l))
		copy(out, l)
		return out
	}
	if k <= 0 {
		return List{}
	}
	byScore := make(List, len(l))
	copy(byScore, l)
	sort.Slice(byScore, func(i, j int) bool {
		if byScore[i].Score != byScore[j].Score {
			return byScore[i].Score > byScore[j].Score
		}
		return byScore[i].Doc < byScore[j].Doc
	})
	out := byScore[:k:k]
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// wire format: uvarint count, then per posting: uvarint doc-id delta
// (first doc encoded as delta from 0... actually delta+1 from previous to
// keep strict monotonicity checkable), float32 score bits as fixed 4 bytes.

// ErrCorrupt is returned by Decode on malformed input.
var ErrCorrupt = errors.New("postings: corrupt encoding")

// Encode serializes the list. The caller may pass a reusable buffer;
// either way the output is written into at most one fresh allocation
// (the exact encoded size is computed up front).
func Encode(buf []byte, l List) []byte {
	return EncodeScaled(buf, l, 1)
}

// EncodeScaled serializes the list with every score multiplied by scale
// before its bits hit the wire. The fetch path applies the idf factor
// this way during response encoding, so no intermediate scored list is
// materialized; the multiplication is the same float32 operation a
// scored copy would have applied, so decoded scores are bit-identical.
func EncodeScaled(buf []byte, l List, scale float32) []byte {
	if need := EncodedSize(l); cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	buf = binary.AppendUvarint(buf, uint64(len(l)))
	prev := uint64(0)
	first := true
	for _, p := range l {
		cur := uint64(p.Doc)
		var delta uint64
		if first {
			delta = cur
			first = false
		} else {
			delta = cur - prev - 1
		}
		prev = cur
		buf = binary.AppendUvarint(buf, delta)
		score := p.Score
		if scale != 1 {
			// Skipped at scale 1 so Encode round-trips arbitrary score
			// bit patterns (e.g. NaNs in corrupt imports) byte-exactly.
			score *= scale
		}
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(score))
	}
	return buf
}

// Decode parses an encoded list, returning the list and the number of
// bytes consumed.
func Decode(buf []byte) (List, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, ErrCorrupt
	}
	off := sz
	if n > uint64(len(buf)) { // cheap sanity bound: >= 5 bytes per posting
		return nil, 0, fmt.Errorf("%w: count %d exceeds buffer", ErrCorrupt, n)
	}
	out := make(List, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		delta, sz := binary.Uvarint(buf[off:])
		if sz <= 0 {
			return nil, 0, ErrCorrupt
		}
		off += sz
		if off+4 > len(buf) {
			return nil, 0, ErrCorrupt
		}
		score := math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		var doc uint64
		if i == 0 {
			doc = delta
		} else {
			doc = prev + delta + 1
		}
		if doc > math.MaxUint32 {
			return nil, 0, fmt.Errorf("%w: doc id overflow", ErrCorrupt)
		}
		prev = doc
		out = append(out, Posting{Doc: corpus.DocID(doc), Score: score})
	}
	return out, off, nil
}

// EncodedSize returns the exact wire size of the list without allocating.
func EncodedSize(l List) int {
	size := UvarintSize(uint64(len(l)))
	prev := uint64(0)
	first := true
	for _, p := range l {
		cur := uint64(p.Doc)
		var delta uint64
		if first {
			delta = cur
			first = false
		} else {
			delta = cur - prev - 1
		}
		prev = cur
		size += UvarintSize(delta) + 4
	}
	return size
}

// UvarintSize returns the encoded length of v in bytes — the sizing
// primitive exact-size encoders build on.
func UvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
