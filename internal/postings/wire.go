package postings

import (
	"encoding/binary"
	"fmt"
)

// Keyed wire format for index RPCs: uvarint key length, key bytes,
// uvarint flags/df field, encoded posting list. Both the single-term
// baseline and the HDK engine ship (key, posting-list) pairs, so the
// codec lives here.

// KeyedMessage is a (key, aux, posting list) triple on the wire. Aux is a
// small unsigned field whose meaning is protocol-specific (e.g. the global
// document frequency accompanying a fetched list).
type KeyedMessage struct {
	Key  string
	Aux  uint64
	List List
}

// KeyedSize returns the exact wire size of one keyed message.
func KeyedSize(m KeyedMessage) int {
	return UvarintSize(uint64(len(m.Key))) + len(m.Key) + UvarintSize(m.Aux) + EncodedSize(m.List)
}

// EncodeKeyed appends the message to buf.
func EncodeKeyed(buf []byte, m KeyedMessage) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m.Key)))
	buf = append(buf, m.Key...)
	buf = binary.AppendUvarint(buf, m.Aux)
	return Encode(buf, m.List)
}

// DecodeKeyed parses one keyed message and returns the bytes consumed.
// The returned key is its own allocation (safe to retain).
func DecodeKeyed(buf []byte) (KeyedMessage, int, error) {
	return decodeKeyedShared(buf, "")
}

// decodeKeyedShared parses one keyed message. When all is non-empty it
// must be a string copy of buf, and the decoded key substrings it
// instead of allocating — the batch decoder passes one copy of the
// whole input so an N-message batch costs one string allocation, not N.
// Callers that retain keys past the decoded batch's lifetime must clone
// them, or they pin the whole copy.
func decodeKeyedShared(buf []byte, all string) (KeyedMessage, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) < n {
		return KeyedMessage{}, 0, fmt.Errorf("%w: bad key length", ErrCorrupt)
	}
	off := sz
	var key string
	if all != "" {
		key = all[off : off+int(n)]
	} else {
		key = string(buf[off : off+int(n)])
	}
	off += int(n)
	aux, sz := binary.Uvarint(buf[off:])
	if sz <= 0 {
		return KeyedMessage{}, 0, fmt.Errorf("%w: bad aux field", ErrCorrupt)
	}
	off += sz
	list, consumed, err := Decode(buf[off:])
	if err != nil {
		return KeyedMessage{}, 0, err
	}
	return KeyedMessage{Key: key, Aux: aux, List: list}, off + consumed, nil
}

// KeyListSize returns the exact wire size of a count-prefixed key list.
func KeyListSize(keys []string) int {
	size := UvarintSize(uint64(len(keys)))
	for _, k := range keys {
		size += UvarintSize(uint64(len(k))) + len(k)
	}
	return size
}

// EncodeKeyList appends a count-prefixed list of bare keys to buf — the
// request side of batched fetches, where no aux field or posting list
// accompanies the keys. The output is written into at most one fresh
// allocation.
func EncodeKeyList(buf []byte, keys []string) []byte {
	if need := KeyListSize(keys); cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

// DecodeKeyList parses a count-prefixed key list. The returned keys
// share ONE string copy of the input (an N-key request costs two
// allocations, not N+1); a caller that retains a key past the request's
// lifetime must clone it or it pins the whole copy.
func DecodeKeyList(buf []byte) ([]string, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad key count", ErrCorrupt)
	}
	if n > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: key count %d exceeds buffer", ErrCorrupt, n)
	}
	off := sz
	all := string(buf)
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || uint64(len(buf)-off-sz) < l {
			return nil, fmt.Errorf("%w: bad key length", ErrCorrupt)
		}
		off += sz
		out = append(out, all[off:off+int(l)])
		off += int(l)
	}
	return out, nil
}

// EncodeKeyedBatch encodes a batch of keyed messages prefixed by a
// count, into at most one fresh allocation.
func EncodeKeyedBatch(buf []byte, ms []KeyedMessage) []byte {
	need := UvarintSize(uint64(len(ms)))
	for _, m := range ms {
		need += KeyedSize(m)
	}
	if cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	buf = binary.AppendUvarint(buf, uint64(len(ms)))
	for _, m := range ms {
		buf = EncodeKeyed(buf, m)
	}
	return buf
}

// DecodeKeyedBatch parses a batch. Like DecodeKeyList, all returned
// keys substring one copy of the input; retaining a key long-term
// requires cloning it.
func DecodeKeyedBatch(buf []byte) ([]KeyedMessage, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad batch count", ErrCorrupt)
	}
	off := sz
	if n > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: batch count %d exceeds buffer", ErrCorrupt, n)
	}
	all := string(buf)
	out := make([]KeyedMessage, 0, n)
	for i := uint64(0); i < n; i++ {
		m, consumed, err := decodeKeyedShared(buf[off:], all[off:])
		if err != nil {
			return nil, err
		}
		off += consumed
		out = append(out, m)
	}
	return out, nil
}
