package postings

import (
	"encoding/binary"
	"fmt"
)

// Keyed wire format for index RPCs: uvarint key length, key bytes,
// uvarint flags/df field, encoded posting list. Both the single-term
// baseline and the HDK engine ship (key, posting-list) pairs, so the
// codec lives here.

// KeyedMessage is a (key, aux, posting list) triple on the wire. Aux is a
// small unsigned field whose meaning is protocol-specific (e.g. the global
// document frequency accompanying a fetched list).
type KeyedMessage struct {
	Key  string
	Aux  uint64
	List List
}

// EncodeKeyed appends the message to buf.
func EncodeKeyed(buf []byte, m KeyedMessage) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m.Key)))
	buf = append(buf, m.Key...)
	buf = binary.AppendUvarint(buf, m.Aux)
	return Encode(buf, m.List)
}

// DecodeKeyed parses one keyed message and returns the bytes consumed.
func DecodeKeyed(buf []byte) (KeyedMessage, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) < n {
		return KeyedMessage{}, 0, fmt.Errorf("%w: bad key length", ErrCorrupt)
	}
	off := sz
	key := string(buf[off : off+int(n)])
	off += int(n)
	aux, sz := binary.Uvarint(buf[off:])
	if sz <= 0 {
		return KeyedMessage{}, 0, fmt.Errorf("%w: bad aux field", ErrCorrupt)
	}
	off += sz
	list, consumed, err := Decode(buf[off:])
	if err != nil {
		return KeyedMessage{}, 0, err
	}
	return KeyedMessage{Key: key, Aux: aux, List: list}, off + consumed, nil
}

// EncodeKeyList appends a count-prefixed list of bare keys to buf — the
// request side of batched fetches, where no aux field or posting list
// accompanies the keys.
func EncodeKeyList(buf []byte, keys []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

// DecodeKeyList parses a count-prefixed key list.
func DecodeKeyList(buf []byte) ([]string, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad key count", ErrCorrupt)
	}
	if n > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: key count %d exceeds buffer", ErrCorrupt, n)
	}
	off := sz
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || uint64(len(buf)-off-sz) < l {
			return nil, fmt.Errorf("%w: bad key length", ErrCorrupt)
		}
		off += sz
		out = append(out, string(buf[off:off+int(l)]))
		off += int(l)
	}
	return out, nil
}

// EncodeKeyedBatch encodes a batch of keyed messages prefixed by a count.
func EncodeKeyedBatch(buf []byte, ms []KeyedMessage) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ms)))
	for _, m := range ms {
		buf = EncodeKeyed(buf, m)
	}
	return buf
}

// DecodeKeyedBatch parses a batch.
func DecodeKeyedBatch(buf []byte) ([]KeyedMessage, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad batch count", ErrCorrupt)
	}
	off := sz
	if n > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: batch count %d exceeds buffer", ErrCorrupt, n)
	}
	out := make([]KeyedMessage, 0, n)
	for i := uint64(0); i < n; i++ {
		m, consumed, err := DecodeKeyed(buf[off:])
		if err != nil {
			return nil, err
		}
		off += consumed
		out = append(out, m)
	}
	return out, nil
}
