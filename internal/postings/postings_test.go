package postings

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

func mk(docs ...corpus.DocID) List { return FromDocs(docs) }

func TestFromDocsSortsAndDedups(t *testing.T) {
	l := mk(5, 1, 3, 1, 5)
	want := []corpus.DocID{1, 3, 5}
	if !reflect.DeepEqual(l.Docs(), want) {
		t.Fatalf("got %v, want %v", l.Docs(), want)
	}
	if !l.IsSorted() {
		t.Fatal("not sorted")
	}
}

func TestNormalizeKeepsMaxScore(t *testing.T) {
	l := List{{Doc: 2, Score: 1}, {Doc: 2, Score: 7}, {Doc: 1, Score: 3}}
	l.Normalize()
	if len(l) != 2 || l[0].Doc != 1 || l[1].Doc != 2 || l[1].Score != 7 {
		t.Fatalf("Normalize = %v", l)
	}
}

func TestUnionBasic(t *testing.T) {
	a := List{{Doc: 1, Score: 1}, {Doc: 3, Score: 2}}
	b := List{{Doc: 2, Score: 1}, {Doc: 3, Score: 5}}
	u := Union(a, b)
	want := List{{Doc: 1, Score: 1}, {Doc: 2, Score: 1}, {Doc: 3, Score: 7}}
	if !reflect.DeepEqual(u, want) {
		t.Fatalf("Union = %v, want %v", u, want)
	}
}

func TestIntersectBasic(t *testing.T) {
	a := List{{Doc: 1, Score: 1}, {Doc: 3, Score: 2}, {Doc: 9, Score: 1}}
	b := List{{Doc: 3, Score: 5}, {Doc: 8, Score: 1}, {Doc: 9, Score: 2}}
	got := Intersect(a, b)
	want := List{{Doc: 3, Score: 7}, {Doc: 9, Score: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
}

func TestSetOpsEmpty(t *testing.T) {
	a := mk(1, 2)
	if got := Union(a, nil); !reflect.DeepEqual(got.Docs(), a.Docs()) {
		t.Errorf("Union with empty = %v", got)
	}
	if got := Intersect(a, nil); len(got) != 0 {
		t.Errorf("Intersect with empty = %v", got)
	}
	if got := UnionAll(nil); len(got) != 0 {
		t.Errorf("UnionAll(nil) = %v", got)
	}
}

func randomList(r *rand.Rand, n int) List {
	seen := map[corpus.DocID]bool{}
	l := make(List, 0, n)
	for len(l) < n {
		d := corpus.DocID(r.Intn(n * 4))
		if seen[d] {
			continue
		}
		seen[d] = true
		l = append(l, Posting{Doc: d, Score: float32(r.Intn(100))})
	}
	sort.Slice(l, func(i, j int) bool { return l[i].Doc < l[j].Doc })
	return l
}

func TestUnionIntersectProperties(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		a := randomList(r, r.Intn(50))
		b := randomList(r, r.Intn(50))
		u := Union(a, b)
		x := Intersect(a, b)
		if !u.IsSorted() || !x.IsSorted() {
			t.Fatal("result not sorted")
		}
		// |A ∪ B| + |A ∩ B| = |A| + |B|
		if len(u)+len(x) != len(a)+len(b) {
			t.Fatalf("inclusion-exclusion violated: %d+%d != %d+%d", len(u), len(x), len(a), len(b))
		}
		// Intersection commutes (score addition is symmetric).
		if !reflect.DeepEqual(Intersect(b, a), x) {
			t.Fatal("Intersect not commutative")
		}
		if !reflect.DeepEqual(Union(b, a), u) {
			t.Fatal("Union not commutative")
		}
		// Every intersection doc in both inputs.
		for _, p := range x {
			if !a.Contains(p.Doc) || !b.Contains(p.Doc) {
				t.Fatal("intersection contains foreign doc")
			}
		}
	}
}

func TestTopK(t *testing.T) {
	l := List{{Doc: 1, Score: 5}, {Doc: 2, Score: 9}, {Doc: 3, Score: 1}, {Doc: 4, Score: 9}}
	got := l.TopK(2)
	// Two score-9 docs win; result re-sorted by doc id.
	want := List{{Doc: 2, Score: 9}, {Doc: 4, Score: 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	if got := l.TopK(0); len(got) != 0 {
		t.Errorf("TopK(0) = %v", got)
	}
	if got := l.TopK(10); len(got) != len(l) {
		t.Errorf("TopK(10) truncated to %d", len(got))
	}
	// TopK must not mutate the input.
	if !l.IsSorted() {
		t.Error("TopK mutated receiver order")
	}
}

func TestTopKTieBreakByDocID(t *testing.T) {
	l := List{{Doc: 7, Score: 3}, {Doc: 9, Score: 3}, {Doc: 11, Score: 3}}
	got := l.TopK(2)
	want := List{{Doc: 7, Score: 3}, {Doc: 9, Score: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK tie-break = %v, want %v", got, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		l := randomList(r, r.Intn(80))
		buf := Encode(nil, l)
		if len(buf) != EncodedSize(l) {
			t.Fatalf("EncodedSize = %d, actual %d", EncodedSize(l), len(buf))
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if len(got) == 0 && len(l) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, l) {
			t.Fatalf("round trip: got %v, want %v", got, l)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	prop := func(raw []uint32, scores []uint8) bool {
		l := make(List, 0, len(raw))
		for i, d := range raw {
			var s float32
			if i < len(scores) {
				s = float32(scores[i])
			}
			l = append(l, Posting{Doc: corpus.DocID(d), Score: s})
		}
		l.Normalize()
		got, _, err := Decode(Encode(nil, l))
		if err != nil {
			return false
		}
		if len(got) != len(l) {
			return false
		}
		for i := range got {
			if got[i] != l[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0xff},             // truncated uvarint
		{0x02, 0x01},       // count 2, truncated body
		{0x01, 0x00, 0x01}, // posting missing score bytes
	}
	for i, buf := range cases {
		if _, _, err := Decode(buf); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestDecodeHugeCountRejected(t *testing.T) {
	var buf []byte
	buf = append(buf, 0xff, 0xff, 0xff, 0xff, 0x0f) // count ~ 2^32
	if _, _, err := Decode(buf); err == nil {
		t.Error("absurd count accepted")
	}
}

func BenchmarkEncode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	l := randomList(r, 400) // a DFmax-sized posting list
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], l)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkUnion(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := randomList(r, 400)
	y := randomList(r, 400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Union(x, y)
	}
}
