package pgrid

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/transport"
)

func build(t testing.TB, n int) *Network {
	t.Helper()
	net := NewNetwork(transport.NewInProc())
	for i := 0; i < n; i++ {
		if _, err := net.AddPeer(fmt.Sprintf("pg-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestPathsPartitionKeyspace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 28, 64} {
		net := build(t, n)
		// Paths must be prefix-free and complete: every key has exactly
		// one owner.
		var paths []string
		for _, m := range net.Members() {
			paths = append(paths, m.(*Peer).Path())
		}
		for i := range paths {
			for j := range paths {
				if i != j && strings.HasPrefix(paths[i], paths[j]) {
					t.Fatalf("n=%d: path %q prefixes %q", n, paths[j], paths[i])
				}
			}
		}
		for k := 0; k < 300; k++ {
			key := fmt.Sprintf("key-%d", k)
			owners := 0
			kb := keyBits(key)
			for _, path := range paths {
				if strings.HasPrefix(kb, path) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: key %q has %d owners", n, key, owners)
			}
		}
	}
}

func TestPathsBalanced(t *testing.T) {
	net := build(t, 28)
	min, max := 64, 0
	for _, m := range net.Members() {
		l := len(m.(*Peer).Path())
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// 28 peers: depth 4 or 5 everywhere.
	if min < 4 || max > 5 {
		t.Fatalf("path depths span [%d,%d], want [4,5]", min, max)
	}
}

func TestRouteFindsOwner(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 16, 28} {
		net := build(t, n)
		members := net.Members()
		for k := 0; k < 150; k++ {
			key := fmt.Sprintf("doc-%d", k)
			want, ok := net.OwnerOf(key)
			if !ok {
				t.Fatalf("n=%d: no owner for %q", n, key)
			}
			start := members[k%len(members)]
			got, hops, err := net.Route(start, key)
			if err != nil {
				t.Fatalf("n=%d key=%q: %v", n, key, err)
			}
			if got.ID() != want.ID() {
				t.Fatalf("n=%d key=%q: routed to %x, owner is %x", n, key, got.ID(), want.ID())
			}
			if maxHops := 7; hops > maxHops {
				t.Fatalf("n=%d: %d hops exceeds trie depth bound", n, hops)
			}
		}
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	net := build(t, 64)
	members := net.Members()
	for k := 0; k < 400; k++ {
		if _, _, err := net.Route(members[k%64], fmt.Sprintf("k%d", k)); err != nil {
			t.Fatal(err)
		}
	}
	_, mean := net.LookupStats()
	// Trie depth is 6 for 64 peers; mean should sit well under it +1.
	if mean > 7 {
		t.Fatalf("mean hops %.2f on 64 peers, want <= depth+1", mean)
	}
}

func TestServiceDispatch(t *testing.T) {
	net := build(t, 4)
	target := net.Members()[1]
	target.Handle("echo", func(req []byte) ([]byte, error) {
		return append([]byte("pg:"), req...), nil
	})
	resp, err := net.CallService(target.Addr(), "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "pg:hi" {
		t.Fatalf("resp = %q", resp)
	}
	if _, err := net.CallService(target.Addr(), "nope", nil); err == nil {
		t.Fatal("unknown service accepted")
	}
}

func TestRemoveNodeRepartitions(t *testing.T) {
	net := build(t, 9)
	victim := net.Members()[3]
	if !net.RemoveNode(victim.ID()) {
		t.Fatal("member not removed")
	}
	if net.RemoveNode(victim.ID()) {
		t.Fatal("double removal succeeded")
	}
	if net.Size() != 8 {
		t.Fatalf("Size = %d, want 8", net.Size())
	}
	members := net.Members()
	for k := 0; k < 100; k++ {
		key := fmt.Sprintf("after-%d", k)
		want, ok := net.OwnerOf(key)
		if !ok {
			t.Fatalf("no owner for %q after leave", key)
		}
		got, _, err := net.Route(members[k%len(members)], key)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != want.ID() {
			t.Fatalf("wrong owner for %q after leave", key)
		}
	}
}

func TestSinglePeerOwnsEverything(t *testing.T) {
	net := build(t, 1)
	solo := net.Members()[0]
	if p := solo.(*Peer).Path(); p != "" {
		t.Fatalf("single peer path %q, want empty", p)
	}
	owner, _, err := net.Route(solo, "anything")
	if err != nil {
		t.Fatal(err)
	}
	if owner.ID() != solo.ID() {
		t.Fatal("single peer does not own its keyspace")
	}
}

func TestDistributionRoughlyBalanced(t *testing.T) {
	net := build(t, 16)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		owner, _ := net.OwnerOf(fmt.Sprintf("key:%d", i))
		counts[owner.Addr()]++
	}
	if len(counts) != 16 {
		t.Fatalf("only %d/16 peers own keys", len(counts))
	}
	// Power-of-two membership: perfectly balanced trie, so each peer
	// should hold ~1/16 ± sampling noise.
	for addr, c := range counts {
		if c < keys/32 || c > keys/8 {
			t.Errorf("peer %s owns %d/%d keys", addr, c, keys)
		}
	}
}

func BenchmarkRoute28Peers(b *testing.B) {
	net := NewNetwork(transport.NewInProc())
	for i := 0; i < 28; i++ {
		net.AddPeer(fmt.Sprintf("pg-%02d", i))
	}
	members := net.Members()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Route(members[i%28], fmt.Sprintf("key-%d", i))
	}
}
