// Package pgrid implements the structured overlay the paper's prototype
// actually ran on: P-Grid (Aberer et al.), a binary-trie keyspace
// partitioning where every peer is responsible for the keys sharing its
// binary path, and routing resolves one disagreeing bit per hop using a
// routing table with one reference per path level.
//
// The package implements overlay.Fabric, so the HDK engine (and any
// other index layer) runs unchanged on either this trie or the
// Chord-style ring in internal/overlay — the reproduction's claim that
// the model only needs the "key → responsible peer" abstraction is
// thereby executable.
package pgrid

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"repro/internal/overlay"
	"repro/internal/transport"
)

const routeService = "_pgrid.route"

// maxTransientRetries mirrors the Chord overlay's retry budget.
const maxTransientRetries = 8

// Peer is one P-Grid participant. It implements overlay.Member.
type Peer struct {
	id   overlay.ID
	addr string
	net  *Network

	mu       sync.RWMutex
	path     string         // binary path, e.g. "010"
	refs     map[int]string // level -> addr of a peer in the complementary subtree
	services map[string]transport.Handler
}

// ID implements overlay.Member (hash of the bound address, used by index
// layers to key their per-node stores).
func (p *Peer) ID() overlay.ID { return p.id }

// Addr implements overlay.Member.
func (p *Peer) Addr() string { return p.addr }

// Path returns the peer's binary trie path.
func (p *Peer) Path() string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.path
}

// Handle implements overlay.Member.
func (p *Peer) Handle(service string, h transport.Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.services[service] = h
}

// dispatch demultiplexes the built-in routing service and index-layer
// services.
func (p *Peer) dispatch(req []byte) ([]byte, error) {
	service, payload, err := overlay.DecodeEnvelope(req)
	if err != nil {
		return nil, err
	}
	if service == routeService {
		return p.handleRoute(payload)
	}
	p.mu.RLock()
	h, ok := p.services[service]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pgrid: peer %s: unknown service %q", p.addr, service)
	}
	return h(payload)
}

// handleRoute answers one routing step for the key bits in the payload:
// "F<addr>" when this peer owns the key, "N<addr>" naming the next hop.
func (p *Peer) handleRoute(keyBits []byte) ([]byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	kb := string(keyBits)
	if strings.HasPrefix(kb, p.path) {
		return append([]byte{'F'}, p.addr...), nil
	}
	// First disagreeing bit level.
	level := 0
	for level < len(p.path) && level < len(kb) && p.path[level] == kb[level] {
		level++
	}
	ref, ok := p.refs[level]
	if !ok {
		return nil, fmt.Errorf("pgrid: peer %s has no reference at level %d", p.addr, level)
	}
	return append([]byte{'N'}, ref...), nil
}

// Network is a P-Grid trie over a transport. It implements
// overlay.Fabric.
type Network struct {
	tr transport.Transport

	mu    sync.RWMutex
	peers []*Peer // sorted by path after every rebuild

	lookupMu      sync.Mutex
	lookupCount   uint64
	lookupHopsSum uint64
}

// NewNetwork creates an empty trie over the transport.
func NewNetwork(tr transport.Transport) *Network {
	return &Network{tr: tr}
}

// AddPeer binds a new peer and rebuilds the trie: paths are reassigned
// by recursive bisection of the (deterministically ordered) peer set, so
// the trie stays balanced — the steady state P-Grid's exchange protocol
// converges to.
func (n *Network) AddPeer(addr string) (*Peer, error) {
	p := &Peer{net: n, services: make(map[string]transport.Handler)}
	bound, err := n.tr.Listen(addr, p.dispatch)
	if err != nil {
		return nil, err
	}
	p.addr = bound
	p.id = overlay.HashKey("pgrid:" + bound)
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, q := range n.peers {
		if q.id == p.id {
			return nil, fmt.Errorf("pgrid: id collision for %q", addr)
		}
	}
	n.peers = append(n.peers, p)
	n.rebuildLocked()
	return p, nil
}

// RemoveNode implements overlay.Churn: the peer leaves and the trie is
// rebuilt over the remaining members.
func (n *Network) RemoveNode(id overlay.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, q := range n.peers {
		if q.id == id {
			n.peers = append(n.peers[:i], n.peers[i+1:]...)
			n.rebuildLocked()
			return true
		}
	}
	return false
}

// rebuildLocked reassigns paths by recursive bisection and rebuilds
// every peer's routing table (one reference per level, pointing into the
// complementary subtree).
func (n *Network) rebuildLocked() {
	peers := append([]*Peer(nil), n.peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i].addr < peers[j].addr })
	assign(peers, "")
	// Keep the membership list in path order for deterministic Members().
	sort.Slice(n.peers, func(i, j int) bool { return n.peers[i].path < n.peers[j].path })
	// Routing tables: for each peer and each level l of its path, a
	// reference to the lexicographically smallest peer whose path agrees
	// on the first l bits and flips bit l.
	byPath := make([]*Peer, len(n.peers))
	copy(byPath, n.peers)
	for _, p := range n.peers {
		p.mu.Lock()
		p.refs = make(map[int]string, len(p.path))
		for l := 0; l < len(p.path); l++ {
			want := p.path[:l] + flip(p.path[l])
			for _, q := range byPath {
				if strings.HasPrefix(q.path, want) || strings.HasPrefix(want, q.path) {
					p.refs[l] = q.addr
					break
				}
			}
		}
		p.mu.Unlock()
	}
}

// assign recursively bisects the peer list, extending paths bit by bit.
// A single peer keeps the accumulated path (possibly "" for a 1-peer
// network, which owns the whole keyspace).
func assign(peers []*Peer, prefix string) {
	if len(peers) == 0 {
		return
	}
	if len(peers) == 1 {
		peers[0].mu.Lock()
		peers[0].path = prefix
		peers[0].mu.Unlock()
		return
	}
	mid := (len(peers) + 1) / 2
	assign(peers[:mid], prefix+"0")
	assign(peers[mid:], prefix+"1")
}

func flip(b byte) string {
	if b == '0' {
		return "1"
	}
	return "0"
}

// keyBits renders the first 64 bits of the key hash MSB-first, the key's
// position in the binary keyspace.
func keyBits(key string) string {
	h := uint64(overlay.HashKey(key))
	var b strings.Builder
	b.Grow(64)
	for i := 63; i >= 0; i-- {
		if h>>uint(i)&1 == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// --- overlay.Fabric -------------------------------------------------------

// Members implements overlay.Fabric (path order).
func (n *Network) Members() []overlay.Member {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]overlay.Member, len(n.peers))
	for i, p := range n.peers {
		out[i] = p
	}
	return out
}

// Size implements overlay.Fabric.
func (n *Network) Size() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.peers)
}

// OwnerOf implements overlay.Fabric: the peer whose path prefixes the
// key bits. Balanced construction guarantees exactly one.
func (n *Network) OwnerOf(key string) (overlay.Member, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	kb := keyBits(key)
	for _, p := range n.peers {
		if strings.HasPrefix(kb, p.path) {
			return p, true
		}
	}
	return nil, false
}

// OwnersOf implements overlay.MultiOwner: the replica set of a key is
// the owning peer followed by the next peers in trie path order (with
// wrap-around) — the neighbors whose paths are closest to the key's
// subtree, P-Grid's structural-replica analogue of a successor list.
func (n *Network) OwnersOf(key string, r int) []overlay.Member {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.peers) == 0 || r < 1 {
		return nil
	}
	if r > len(n.peers) {
		r = len(n.peers)
	}
	kb := keyBits(key)
	start := 0
	for i, p := range n.peers {
		if strings.HasPrefix(kb, p.path) {
			start = i
			break
		}
	}
	out := make([]overlay.Member, 0, r)
	for k := 0; k < r; k++ {
		out = append(out, n.peers[(start+k)%len(n.peers)])
	}
	return out
}

// Route implements overlay.Fabric: iterative prefix-resolution routing.
// Every hop extends the agreed prefix by at least one bit, so hops are
// bounded by the trie depth ⌈log2 N⌉.
func (n *Network) Route(from overlay.Member, key string) (overlay.Member, int, error) {
	kb := []byte(keyBits(key))
	addr := from.Addr()
	hops := 0
	maxHops := bits.Len(uint(n.Size())) + 4
	for {
		raw, err := transport.CallRetry(n.tr, addr, overlay.EncodeEnvelope(routeService, kb), maxTransientRetries)
		if err != nil {
			return nil, hops, err
		}
		hops++
		if len(raw) < 1 {
			return nil, hops, fmt.Errorf("pgrid: empty route response")
		}
		next := string(raw[1:])
		if raw[0] == 'F' {
			owner, ok := n.peerByAddr(next)
			if !ok {
				return nil, hops, fmt.Errorf("pgrid: unknown owner %q", next)
			}
			n.lookupMu.Lock()
			n.lookupCount++
			n.lookupHopsSum += uint64(hops)
			n.lookupMu.Unlock()
			return owner, hops, nil
		}
		if hops > maxHops {
			return nil, hops, fmt.Errorf("pgrid: routing did not converge after %d hops", hops)
		}
		addr = next
	}
}

// CallService implements overlay.Fabric.
func (n *Network) CallService(addr, service string, req []byte) ([]byte, error) {
	return transport.CallRetry(n.tr, addr, overlay.EncodeEnvelope(service, req), maxTransientRetries)
}

// LookupStats returns routing statistics (count, mean hops).
func (n *Network) LookupStats() (uint64, float64) {
	n.lookupMu.Lock()
	defer n.lookupMu.Unlock()
	if n.lookupCount == 0 {
		return 0, 0
	}
	return n.lookupCount, float64(n.lookupHopsSum) / float64(n.lookupCount)
}

func (n *Network) peerByAddr(addr string) (*Peer, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, p := range n.peers {
		if p.addr == addr {
			return p, true
		}
	}
	return nil, false
}

// Compile-time interface checks.
var (
	_ overlay.Fabric     = (*Network)(nil)
	_ overlay.Member     = (*Peer)(nil)
	_ overlay.Churn      = (*Network)(nil)
	_ overlay.MultiOwner = (*Network)(nil)
)
