package telemetry

import (
	"math/rand"
	"sort"
	"testing"
)

// TestBucketBoundaryRoundTrip walks every bucket boundary (and its
// neighbors) across the full uint64 range and asserts the index/bound
// maps are mutually consistent: a value lands in a bucket whose bounds
// contain it, bucket indexes are monotone in the value, and bucketUpper
// is the largest value mapping to that index.
func TestBucketBoundaryRoundTrip(t *testing.T) {
	// Exhaustive over the exact region.
	for v := uint64(0); v < histSubCount*4; v++ {
		idx := bucketIndex(v)
		if upper := bucketUpper(idx); v > upper {
			t.Fatalf("value %d > bucketUpper(%d) = %d", v, idx, upper)
		}
	}
	// The first histSubCount*2 buckets are exact (width 1).
	for v := uint64(0); v < histSubCount*2; v++ {
		if got := bucketUpper(bucketIndex(v)); got != v {
			t.Fatalf("exact region: value %d mapped to bucket with upper %d", v, got)
		}
	}
	// Boundary probes at every octave: lower bound, upper bound, and
	// one past each must round-trip and stay monotone.
	prevIdx := -1
	var prevUpper uint64
	for idx := 0; idx < histNumBuckets; idx++ {
		upper := bucketUpper(idx)
		if idx > 0 && upper <= prevUpper && upper != 0 {
			// uppers must strictly increase (the last octave saturates
			// at 2^64-1, where upper+1 overflows to 0).
			t.Fatalf("bucketUpper not monotone: bucket %d upper %d, bucket %d upper %d",
				idx-1, prevUpper, idx, upper)
		}
		if got := bucketIndex(upper); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", idx, got)
		}
		if upper+1 != 0 { // skip the final saturating bucket
			if got := bucketIndex(upper + 1); got != idx+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d (one past bucket %d)",
					upper+1, got, idx+1, idx)
			}
		}
		prevIdx, prevUpper = idx, upper
	}
	if prevIdx != histNumBuckets-1 {
		t.Fatalf("walked %d buckets, want %d", prevIdx+1, histNumBuckets)
	}
	// Relative error bound: bucket width / lower bound <= 1/histSubCount.
	for idx := histSubCount * 2; idx < histNumBuckets; idx++ {
		upper := bucketUpper(idx)
		var lower uint64
		if idx > 0 {
			lower = bucketUpper(idx-1) + 1
		}
		if lower == 0 || upper+1 == 0 {
			continue // degenerate first / saturating last bucket
		}
		width := upper - lower + 1
		if width*histSubCount > lower+width {
			t.Fatalf("bucket %d [%d,%d] wider than %d%% of its value",
				idx, lower, upper, 100/histSubCount)
		}
	}
}

// TestHistogramMergeAssociativity checks that merging snapshots is
// associative and commutative and preserves totals — the property that
// lets hdkbench fold per-daemon histograms in any order.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int) HistogramValue {
		var h Histogram
		for i := 0; i < n; i++ {
			h.Observe(uint64(rng.Int63n(1 << uint(10+rng.Intn(30)))))
		}
		return h.Snapshot()
	}
	a, b, c := mk(500), mk(300), mk(800)

	eq := func(x, y HistogramValue) bool {
		if x.Count != y.Count || x.Sum != y.Sum || len(x.Buckets) != len(y.Buckets) {
			return false
		}
		for i := range x.Buckets {
			if x.Buckets[i] != y.Buckets[i] {
				return false
			}
		}
		return true
	}

	abC := a.Merge(b).Merge(c)
	aBC := a.Merge(b.Merge(c))
	if !eq(abC, aBC) {
		t.Fatal("merge is not associative")
	}
	if !eq(a.Merge(b), b.Merge(a)) {
		t.Fatal("merge is not commutative")
	}
	if abC.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d, want %d", abC.Count, a.Count+b.Count+c.Count)
	}
	if abC.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatalf("merged sum %d, want %d", abC.Sum, a.Sum+b.Sum+c.Sum)
	}
	// Quantiles of the merge must equal quantiles of one histogram fed
	// all three workloads (the bucket grid is shared, so the merge is
	// exact, not approximate).
	var all Histogram
	rng = rand.New(rand.NewSource(7))
	for _, n := range []int{500, 300, 800} {
		for i := 0; i < n; i++ {
			all.Observe(uint64(rng.Int63n(1 << uint(10+rng.Intn(30)))))
		}
	}
	direct := all.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := abC.Quantile(q), direct.Quantile(q); got != want {
			t.Fatalf("merged p%.0f = %d, direct = %d", q*100, got, want)
		}
	}
}

// TestHistogramQuantileAccuracy records random workloads from several
// distributions and checks extracted p50/p95/p99 against the exact
// sorted order statistic: the histogram's answer must be >= the exact
// value and within the bucket scheme's 12.5% relative error.
func TestHistogramQuantileAccuracy(t *testing.T) {
	workloads := map[string]func(r *rand.Rand) uint64{
		"uniform":   func(r *rand.Rand) uint64 { return uint64(r.Int63n(1_000_000)) },
		"exp-ish":   func(r *rand.Rand) uint64 { return uint64(1) << uint(r.Intn(40)) },
		"latency":   func(r *rand.Rand) uint64 { return uint64(50_000 + r.Int63n(10_000_000)) },
		"heavytail": func(r *rand.Rand) uint64 { return uint64(r.Int63n(10_000)) * uint64(r.Int63n(100_000)) },
	}
	for name, gen := range workloads {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			const n = 20_000
			var h Histogram
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = gen(rng)
				h.Observe(vals[i])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			snap := h.Snapshot()
			if snap.Count != n {
				t.Fatalf("snapshot count %d, want %d", snap.Count, n)
			}
			for _, q := range []float64{0.5, 0.95, 0.99} {
				got := snap.Quantile(q)
				rank := int(q*float64(n)+0.5) - 1
				if rank < 0 {
					rank = 0
				}
				exact := vals[rank]
				if got < exact {
					t.Fatalf("p%.0f = %d below exact %d", q*100, got, exact)
				}
				// Upper bound: got is the bucket upper of exact's
				// bucket, so got <= exact * (1 + 1/histSubCount) + 1.
				limit := float64(exact)*(1+1.0/histSubCount) + 1
				if float64(got) > limit {
					t.Fatalf("p%.0f = %d exceeds %.0f (exact %d + 12.5%%)",
						q*100, got, limit, exact)
				}
			}
		})
	}
}

// TestHistogramQuantileEdgeCases pins the degenerate inputs.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistogramValue
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %d, want 0", got)
	}
	var h Histogram
	h.Observe(7)
	snap := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := snap.Quantile(q); got != 7 {
			t.Fatalf("single-value histogram q=%v = %d, want 7", q, got)
		}
	}
	if snap.Mean() != 7 {
		t.Fatalf("mean = %v, want 7", snap.Mean())
	}
	if empty.Mean() != 0 {
		t.Fatalf("empty mean = %v, want 0", empty.Mean())
	}
}

// TestHistogramSubDelta: Sub of two snapshots of one growing histogram
// isolates exactly the observations made between them — the per-phase
// delta the chaos scenario carves out of each daemon's registry.
func TestHistogramSubDelta(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(uint64(10 + i))
	}
	s1 := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(uint64(100000 + i))
	}
	s2 := h.Snapshot()

	d := s2.Sub(s1)
	if d.Count != 50 {
		t.Fatalf("delta count = %d, want 50", d.Count)
	}
	if want := s2.Sum - s1.Sum; d.Sum != want {
		t.Fatalf("delta sum = %d, want %d (exact running-sum difference)", d.Sum, want)
	}
	// Every delta observation was ~100000; the old 10..109 values must
	// not leak into the delta's quantiles.
	if q := d.Quantile(0.01); q < 100000 {
		t.Fatalf("delta p1 = %d, contaminated by pre-snapshot observations", q)
	}
	// Subtracting a snapshot from itself is empty.
	if z := s2.Sub(s2); z.Count != 0 || z.Sum != 0 || len(z.Buckets) != 0 {
		t.Fatalf("self-subtraction not empty: %+v", z)
	}
}

// TestHistogramSubClampsOnReset: a restarted daemon's fresh histogram
// reads below the previous snapshot; Sub must clamp per bucket and
// report the fresh observations instead of wrapping.
func TestHistogramSubClampsOnReset(t *testing.T) {
	var old Histogram
	for i := 0; i < 1000; i++ {
		old.Observe(500)
	}
	prev := old.Snapshot()

	var fresh Histogram
	fresh.Observe(500)
	fresh.Observe(7)
	d := fresh.Snapshot().Sub(prev)
	if d.Count != 2 {
		t.Fatalf("clamped delta count = %d, want the fresh histogram's own 2", d.Count)
	}
	for _, b := range d.Buckets {
		if b.Count > 2 {
			t.Fatalf("bucket %d count %d wrapped", b.Index, b.Count)
		}
	}
	if q := d.Quantile(1); q < 500 {
		t.Fatalf("clamped delta max = %d, lost the fresh 500 observation", q)
	}
}

// TestHistogramSubMergeComposes: phase deltas must re-assemble — the
// merge of consecutive Subs equals the Sub across the whole span, so a
// run-wide quantile can be computed from per-phase deltas.
func TestHistogramSubMergeComposes(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	snap := func(n int) HistogramValue {
		for i := 0; i < n; i++ {
			h.Observe(uint64(rng.Intn(1 << 20)))
		}
		return h.Snapshot()
	}
	s0 := h.Snapshot()
	s1, s2, s3 := snap(200), snap(300), snap(400)

	byPhases := s1.Sub(s0).Merge(s2.Sub(s1)).Merge(s3.Sub(s2))
	whole := s3.Sub(s0)
	if byPhases.Count != whole.Count || byPhases.Sum != whole.Sum {
		t.Fatalf("composed delta (%d, %d) != whole-span delta (%d, %d)",
			byPhases.Count, byPhases.Sum, whole.Count, whole.Sum)
	}
	if len(byPhases.Buckets) != len(whole.Buckets) {
		t.Fatalf("composed delta has %d buckets, whole-span %d", len(byPhases.Buckets), len(whole.Buckets))
	}
	for i := range whole.Buckets {
		if byPhases.Buckets[i] != whole.Buckets[i] {
			t.Fatalf("bucket %d: composed %+v != whole %+v", i, byPhases.Buckets[i], whole.Buckets[i])
		}
	}
}
