package telemetry

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hdk_test_total")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if again := r.Counter("hdk_test_total"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Label order must not matter for identity.
	a := r.Counter("hdk_labeled_total", L("x", "1"), L("y", "2"))
	b := r.Counter("hdk_labeled_total", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()

	g := r.Gauge("hdk_test_gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	r.GaugeFunc("hdk_test_depth", func() float64 { return 42 })

	h := r.Histogram("hdk_test_nanoseconds")
	h.ObserveDuration(1500 * time.Nanosecond)
	h.ObserveDuration(-time.Second) // clamps to 0

	snap := r.Snapshot()
	if v, ok := snap.Counter("hdk_test_total"); !ok || v != 4 {
		t.Fatalf("snapshot counter = %d,%v", v, ok)
	}
	if v, ok := snap.Counter("hdk_labeled_total", L("y", "2"), L("x", "1")); !ok || v != 1 {
		t.Fatalf("snapshot labeled counter = %d,%v", v, ok)
	}
	if snap.CounterSum("hdk_labeled_total") != 1 {
		t.Fatal("CounterSum miscounted")
	}
	if v, ok := snap.Gauge("hdk_test_depth"); !ok || v != 42 {
		t.Fatalf("snapshot gauge func = %v,%v", v, ok)
	}
	hv, ok := snap.Histogram("hdk_test_nanoseconds")
	if !ok || hv.Count != 2 || hv.Sum != 1500 {
		t.Fatalf("snapshot histogram = %+v,%v", hv, ok)
	}
	if _, ok := snap.Counter("hdk_absent_total"); ok {
		t.Fatal("absent series reported present")
	}
}

func TestBadMetricNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("bad name!")
}

// TestRegistryConcurrentStress hammers one registry from many
// goroutines — registration races, hot-path increments and snapshots
// all interleave. Run under -race this is the registry's thread-safety
// proof; the final snapshot must account for every operation exactly.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Same series from every goroutine: registration must
				// dedupe under the race.
				r.Counter("hdk_stress_total").Inc()
				r.Counter("hdk_stress_labeled_total", L("worker", "shared")).Inc()
				r.Histogram("hdk_stress_nanoseconds").Observe(uint64(i))
				r.Gauge("hdk_stress_gauge").Set(float64(i))
				if i%100 == 0 {
					snap := r.Snapshot()
					if v, _ := snap.Counter("hdk_stress_total"); v > workers*perW {
						t.Errorf("impossible counter value %d", v)
						return
					}
					var buf bytes.Buffer
					if err := snap.WritePrometheus(&buf); err != nil {
						t.Errorf("exposition during stress: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if v, _ := snap.Counter("hdk_stress_total"); v != workers*perW {
		t.Fatalf("counter = %d, want %d", v, workers*perW)
	}
	if v, _ := snap.Counter("hdk_stress_labeled_total", L("worker", "shared")); v != workers*perW {
		t.Fatalf("labeled counter = %d, want %d", v, workers*perW)
	}
	hv, _ := snap.Histogram("hdk_stress_nanoseconds")
	if hv.Count != workers*perW {
		t.Fatalf("histogram count = %d, want %d", hv.Count, workers*perW)
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("hdk_a_total").Add(12)
	r.Counter("hdk_b_total", L("level", "2")).Add(7)
	r.Gauge("hdk_depth").Set(-3.25)
	r.GaugeFunc("hdk_fn", func() float64 { return math.Inf(1) })
	h := r.Histogram("hdk_lat_nanoseconds", L("path", "search"))
	for i := uint64(1); i < 2000; i += 17 {
		h.Observe(i * i)
	}
	snap := r.Snapshot()

	enc := EncodeSnapshot(snap)
	dec, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(snap, dec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, snap)
	}
	// Re-encoding the decode must be byte-identical (canonical order).
	if !bytes.Equal(enc, EncodeSnapshot(dec)) {
		t.Fatal("re-encoding is not canonical")
	}

	// Every truncation must error, never panic or misparse.
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeSnapshot(enc[:i]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", i)
		}
	}
	// Trailing garbage and version skew are corrupt.
	if _, err := DecodeSnapshot(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("unknown version decoded cleanly")
	}
}

func TestTraceBuildFormatRoundTrip(t *testing.T) {
	b := StartTrace("coordinate", Num("k", 10), Str("terms", "alpha beta"))
	adm := b.Start(0, "admission")
	b.End(adm)
	lvl := b.Start(0, "level", Num("level", 2))
	f1 := b.Start(lvl, "fetch", Str("owner", "127.0.0.1:7001"), Num("wave", 0))
	b.End(f1)
	b.Annotate(lvl, Num("rpcs", 1))
	b.End(lvl)
	tr := b.Finish()

	if len(tr.Spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(tr.Spans))
	}
	if got := tr.Find("fetch"); len(got) != 1 || tr.Spans[got[0]].Parent != lvl {
		t.Fatalf("fetch span misparented: %v", got)
	}
	if tr.Spans[lvl].Attr("rpcs") != "1" {
		t.Fatal("annotation lost")
	}

	enc := EncodeTrace(tr)
	dec, err := DecodeTrace(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Fatalf("trace round trip mismatch:\n got %+v\nwant %+v", dec, tr)
	}
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeTrace(enc[:i]); err == nil {
			t.Fatalf("trace truncation at %d decoded cleanly", i)
		}
	}

	out := dec.Format()
	for _, want := range []string{"coordinate", "├─ admission", "└─ level", "   └─ fetch", "owner=127.0.0.1:7001", "k=10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted trace missing %q:\n%s", want, out)
		}
	}
	// Nil-safety: instrumented code paths run with tracing off.
	var nb *TraceBuilder
	if id := nb.Start(0, "x"); id != -1 {
		t.Fatal("nil builder Start did not return -1")
	}
	nb.End(-1)
	nb.Annotate(-1, Num("a", 1))
	if nb.Finish() != nil {
		t.Fatal("nil builder Finish != nil")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hdk_reqs_total", L("path", `with"quote`)).Add(5)
	r.Gauge("hdk_depth").Set(1.5)
	h := r.Histogram("hdk_lat_nanoseconds")
	h.Observe(3)
	h.Observe(100)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE hdk_reqs_total counter",
		`hdk_reqs_total{path="with\"quote"} 5`,
		"# TYPE hdk_depth gauge",
		"hdk_depth 1.5",
		"# TYPE hdk_lat_nanoseconds histogram",
		`hdk_lat_nanoseconds_bucket{le="+Inf"} 3`,
		"hdk_lat_nanoseconds_sum 203",
		"hdk_lat_nanoseconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "hdk_reqs_total" && s.Labels["path"] == `with"quote` && s.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("parsed samples missing escaped counter: %+v", samples)
	}
	p99, n := PromHistogramQuantile(samples, "hdk_lat_nanoseconds", nil, 0.99)
	if n != 3 {
		t.Fatalf("histogram sample count = %d, want 3", n)
	}
	// p99 lands in the bucket holding 100 — upper bound 103 on the
	// log-linear grid.
	if p99 < 100 || p99 > 112.5+1 {
		t.Fatalf("parsed p99 = %v, want ~[100,113]", p99)
	}
	// Cumulative buckets must be non-decreasing in the exposition.
	var last float64 = -1
	for _, s := range samples {
		if s.Name == "hdk_lat_nanoseconds_bucket" {
			if s.Value < last {
				t.Fatalf("bucket cumulative decreased: %+v", samples)
			}
			last = s.Value
		}
	}
}
