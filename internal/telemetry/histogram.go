package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram buckets values on a log-linear grid: each power-of-two
// octave is split into histSubCount linear sub-buckets, so bucket width
// is at most 1/histSubCount of the value — every recorded value is
// representable to within 12.5% relative error, and quantiles inherit
// that bound. The grid is fixed (no per-histogram configuration), so
// histograms from different nodes merge by bucket-wise addition and the
// merge is associative and commutative — hdkbench can fold the
// coordination-latency histograms of five daemons into one cluster-wide
// p99. The scheme is the HDR-histogram idea reduced to its atomic core:
// 496 uint64 buckets cover [0, 2^64) in ~4KB.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits // linear sub-buckets per octave
	// Octaves 0..histSubBits-1 collapse into the first histSubCount
	// exact buckets; each of the remaining 64-histSubBits octaves
	// contributes histSubCount buckets.
	histNumBuckets = (64-histSubBits)*histSubCount + histSubCount
)

// bucketIndex maps a value to its bucket. Values below histSubCount get
// exact unit-width buckets; larger values index by exponent and the
// histSubBits bits below the leading bit.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the leading bit, >= histSubBits
	sub := (v >> (uint(exp) - histSubBits)) & (histSubCount - 1)
	return (exp-histSubBits)*histSubCount + int(sub) + histSubCount
}

// bucketUpper returns the largest value the bucket holds — the
// conservative representative used for quantiles (a reported pXX is
// >= the true pXX, by at most the bucket width).
func bucketUpper(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	shift := uint(idx-histSubCount) / histSubCount
	sub := uint64(idx-histSubCount) % histSubCount
	lower := (histSubCount + sub) << shift
	return lower + (uint64(1) << shift) - 1
}

// Histogram is a fixed-grid log-linear latency histogram. Observe is
// two atomic adds plus an atomic increment; there is no lock anywhere.
// Values are dimensionless uint64s — by convention the registry's
// *_nanoseconds histograms record time.Duration nanoseconds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histNumBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds; negative durations
// clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// BucketCount is one non-empty bucket in a histogram snapshot.
type BucketCount struct {
	Index int
	Count uint64
}

// HistogramValue is a snapshot of one histogram series: sparse
// non-empty buckets plus the observation count and value sum. Count is
// recomputed from the bucket reads so quantile extraction is internally
// consistent even while the histogram is being written.
type HistogramValue struct {
	Name    string
	Labels  []Label
	Count   uint64
	Sum     uint64
	Buckets []BucketCount
}

// Snapshot captures the histogram's current buckets (name and labels
// are filled in by the registry).
func (h *Histogram) Snapshot() HistogramValue {
	var hv HistogramValue
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			hv.Buckets = append(hv.Buckets, BucketCount{Index: i, Count: n})
			hv.Count += n
		}
	}
	hv.Sum = h.sum.Load()
	return hv
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound
// of the bucket containing the q-th ranked observation, within 12.5%
// relative error of the exact order statistic. An empty histogram
// reports 0.
func (hv HistogramValue) Quantile(q float64) uint64 {
	if hv.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the smallest rank r with cumulative count >= r
	// holds the quantile.
	rank := uint64(q*float64(hv.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > hv.Count {
		rank = hv.Count
	}
	var cum uint64
	for _, b := range hv.Buckets {
		cum += b.Count
		if cum >= rank {
			return bucketUpper(b.Index)
		}
	}
	return bucketUpper(hv.Buckets[len(hv.Buckets)-1].Index)
}

// Mean returns the arithmetic mean of the observations (exact, from the
// running sum), or 0 for an empty histogram.
func (hv HistogramValue) Mean() float64 {
	if hv.Count == 0 {
		return 0
	}
	return float64(hv.Sum) / float64(hv.Count)
}

// Sub returns the observations hv accumulated since prev was captured:
// bucket-wise subtraction of two snapshots of the SAME monotone
// histogram, clamped at zero per bucket. The clamp is what makes
// per-phase deltas well-formed across a process restart — a daemon that
// died between the snapshots comes back with a fresh registry, its
// buckets read below prev's, and the clamp attributes exactly its
// post-restart observations to the phase instead of wrapping a uint64.
// Count and Sum are recomputed from the clamped buckets (Sum
// approximated by bucket upper bounds when clamping fired), so Quantile
// and Mean on the delta stay internally consistent.
func (hv HistogramValue) Sub(prev HistogramValue) HistogramValue {
	prevCounts := make(map[int]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevCounts[b.Index] = b.Count
	}
	out := HistogramValue{Name: hv.Name, Labels: hv.Labels}
	clamped := false
	for _, b := range hv.Buckets {
		d := b.Count
		if p := prevCounts[b.Index]; p <= b.Count {
			d = b.Count - p
		} else {
			clamped = true
		}
		if d == 0 {
			continue
		}
		out.Buckets = append(out.Buckets, BucketCount{Index: b.Index, Count: d})
		out.Count += d
		out.Sum += d * bucketUpper(b.Index)
	}
	// A bucket present in prev but absent from hv also means a restart;
	// the per-bucket deltas above already cover hv's own counts.
	if !clamped && hv.Sum >= prev.Sum {
		// No reset detected: the exact running sums subtract cleanly.
		out.Sum = hv.Sum - prev.Sum
	}
	return out
}

// Merge folds other into a copy of hv bucket-wise and returns it. All
// histograms share one fixed bucket grid, so merging is exact (no
// re-bucketing error), associative and commutative — fold any number of
// per-node histograms in any order.
func (hv HistogramValue) Merge(other HistogramValue) HistogramValue {
	merged := HistogramValue{
		Name:   hv.Name,
		Labels: hv.Labels,
		Count:  hv.Count + other.Count,
		Sum:    hv.Sum + other.Sum,
	}
	i, j := 0, 0
	for i < len(hv.Buckets) || j < len(other.Buckets) {
		switch {
		case j >= len(other.Buckets) || (i < len(hv.Buckets) && hv.Buckets[i].Index < other.Buckets[j].Index):
			merged.Buckets = append(merged.Buckets, hv.Buckets[i])
			i++
		case i >= len(hv.Buckets) || other.Buckets[j].Index < hv.Buckets[i].Index:
			merged.Buckets = append(merged.Buckets, other.Buckets[j])
			j++
		default:
			merged.Buckets = append(merged.Buckets, BucketCount{
				Index: hv.Buckets[i].Index,
				Count: hv.Buckets[i].Count + other.Buckets[j].Count,
			})
			i++
			j++
		}
	}
	return merged
}
