// Package telemetry is the cluster's dependency-free observation
// layer: a metrics registry (counters, gauges, callback gauges and
// log-bucketed latency histograms with mergeable buckets), a versioned
// binary snapshot codec served over the cluster.metrics RPC, Prometheus
// text exposition for the hdknode -http endpoint, and a per-query trace
// model (one span tree per coordination) that hdksearch -trace renders.
//
// The registry is the single source of truth for everything the system
// can report about itself: cluster.info counters are views over it, the
// /metrics endpoint is a rendering of its snapshot, and hdkbench reads
// server-side latency quantiles from its histograms. All hot-path
// instruments (Counter.Add, Histogram.Observe) are lock-free atomics;
// the registry mutex is taken only on series registration and snapshot.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" dimension on a metric series. Series
// identity is the metric name plus the sorted label set.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. Safe for concurrent
// use; Add is a single atomic op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (queue depth, log bytes).
// Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds every metric series a node exports. Series are
// registered once (repeat registration returns the existing instrument)
// and snapshotted atomically enough for monitoring: counters and
// histogram buckets are read with atomic loads, callback gauges are
// evaluated at snapshot time.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*counterSeries
	gauges     map[string]*gaugeSeries
	gaugeFuncs map[string]*gaugeFuncSeries
	hists      map[string]*histSeries
}

type counterSeries struct {
	name   string
	labels []Label
	c      Counter
}

type gaugeSeries struct {
	name   string
	labels []Label
	g      Gauge
}

type gaugeFuncSeries struct {
	name   string
	labels []Label
	fn     func() float64
}

type histSeries struct {
	name   string
	labels []Label
	h      Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*counterSeries),
		gauges:     make(map[string]*gaugeSeries),
		gaugeFuncs: make(map[string]*gaugeFuncSeries),
		hists:      make(map[string]*histSeries),
	}
}

// seriesID renders the canonical identity of a series: the metric name
// followed by the sorted label pairs. Sorting makes registration and
// snapshot order independent of call-site label order.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sortedLabels returns a canonically ordered copy of labels.
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// checkName panics on a metric or label name that the Prometheus
// exposition format would reject. Metric names are compile-time
// constants, so this is a programmer error surfaced at first use.
func checkName(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
		}
	}
}

// Counter returns the counter series for name+labels, registering it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	checkName(name)
	id := seriesID(name, labels)
	r.mu.RLock()
	s := r.counters[id]
	r.mu.RUnlock()
	if s != nil {
		return &s.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.counters[id]; s != nil {
		return &s.c
	}
	s = &counterSeries{name: name, labels: sortedLabels(labels)}
	r.counters[id] = s
	return &s.c
}

// Gauge returns the gauge series for name+labels, registering it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	checkName(name)
	id := seriesID(name, labels)
	r.mu.RLock()
	s := r.gauges[id]
	r.mu.RUnlock()
	if s != nil {
		return &s.g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.gauges[id]; s != nil {
		return &s.g
	}
	s = &gaugeSeries{name: name, labels: sortedLabels(labels)}
	r.gauges[id] = s
	return &s.g
}

// GaugeFunc registers a callback gauge evaluated at snapshot time —
// the fit for values the owning subsystem already maintains under its
// own lock (queue depth, idle connections, op-log bytes). The callback
// must not call back into Snapshot. Re-registering a series replaces
// its callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	checkName(name)
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[id] = &gaugeFuncSeries{name: name, labels: sortedLabels(labels), fn: fn}
}

// Histogram returns the histogram series for name+labels, registering
// it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	checkName(name)
	id := seriesID(name, labels)
	r.mu.RLock()
	s := r.hists[id]
	r.mu.RUnlock()
	if s != nil {
		return &s.h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.hists[id]; s != nil {
		return &s.h
	}
	s = &histSeries{name: name, labels: sortedLabels(labels)}
	r.hists[id] = s
	return &s.h
}

// Snapshot captures every series in the registry. Counter and histogram
// values are atomic loads (each series internally consistent, the set
// as a whole a monitoring-grade snapshot, not a transaction); callback
// gauges are evaluated here. Series are sorted by identity, so equal
// registries produce byte-identical encodings.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make([]*counterSeries, 0, len(r.counters))
	for _, s := range r.counters {
		counters = append(counters, s)
	}
	gauges := make([]*gaugeSeries, 0, len(r.gauges))
	for _, s := range r.gauges {
		gauges = append(gauges, s)
	}
	gaugeFuncs := make([]*gaugeFuncSeries, 0, len(r.gaugeFuncs))
	for _, s := range r.gaugeFuncs {
		gaugeFuncs = append(gaugeFuncs, s)
	}
	hists := make([]*histSeries, 0, len(r.hists))
	for _, s := range r.hists {
		hists = append(hists, s)
	}
	r.mu.RUnlock()

	var snap Snapshot
	snap.Counters = make([]CounterValue, 0, len(counters))
	for _, s := range counters {
		snap.Counters = append(snap.Counters, CounterValue{
			Name: s.name, Labels: s.labels, Value: s.c.Value(),
		})
	}
	snap.Gauges = make([]GaugeValue, 0, len(gauges)+len(gaugeFuncs))
	for _, s := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeValue{
			Name: s.name, Labels: s.labels, Value: s.g.Value(),
		})
	}
	for _, s := range gaugeFuncs {
		snap.Gauges = append(snap.Gauges, GaugeValue{
			Name: s.name, Labels: s.labels, Value: s.fn(),
		})
	}
	snap.Histograms = make([]HistogramValue, 0, len(hists))
	for _, s := range hists {
		hv := s.h.Snapshot()
		hv.Name = s.name
		hv.Labels = s.labels
		snap.Histograms = append(snap.Histograms, hv)
	}
	snap.sort()
	return snap
}

// CounterValue is one counter series in a snapshot.
type CounterValue struct {
	Name   string
	Labels []Label
	Value  uint64
}

// GaugeValue is one gauge series in a snapshot (plain and callback
// gauges are indistinguishable once snapshotted).
type GaugeValue struct {
	Name   string
	Labels []Label
	Value  float64
}

// Snapshot is a point-in-time capture of a registry, the payload of the
// cluster.metrics RPC and the input to Prometheus exposition.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		return seriesID(s.Counters[i].Name, s.Counters[i].Labels) < seriesID(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return seriesID(s.Gauges[i].Name, s.Gauges[i].Labels) < seriesID(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return seriesID(s.Histograms[i].Name, s.Histograms[i].Labels) < seriesID(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
}

// Counter returns the value of the named counter series and whether it
// exists in the snapshot.
func (s Snapshot) Counter(name string, labels ...Label) (uint64, bool) {
	id := seriesID(name, labels)
	for _, c := range s.Counters {
		if seriesID(c.Name, c.Labels) == id {
			return c.Value, true
		}
	}
	return 0, false
}

// CounterSum sums every series of the named counter across label sets
// (e.g. a per-level counter summed over levels).
func (s Snapshot) CounterSum(name string) uint64 {
	var sum uint64
	for _, c := range s.Counters {
		if c.Name == name {
			sum += c.Value
		}
	}
	return sum
}

// Gauge returns the value of the named gauge series and whether it
// exists in the snapshot.
func (s Snapshot) Gauge(name string, labels ...Label) (float64, bool) {
	id := seriesID(name, labels)
	for _, g := range s.Gauges {
		if seriesID(g.Name, g.Labels) == id {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram series and whether it exists in
// the snapshot.
func (s Snapshot) Histogram(name string, labels ...Label) (HistogramValue, bool) {
	id := seriesID(name, labels)
	for _, h := range s.Histograms {
		if seriesID(h.Name, h.Labels) == id {
			return h, true
		}
	}
	return HistogramValue{}, false
}
