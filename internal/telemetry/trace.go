package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Per-query tracing. A coordination produces one Trace: a flat span
// list forming a tree via parent indices (span 0 is the root). Spans
// carry string attributes for the numbers the paper's evaluation cares
// about — per-level probe and RPC counts, fetched postings, failover
// waves — so a rendered trace is a per-query audit of the nk·DFmax
// traffic bound. The trace rides back to the client inside the
// hdk.search response (opt-in flag) and hdksearch -trace renders it.

// TraceAttr is one key=value annotation on a span.
type TraceAttr struct {
	Key   string
	Value string
}

// Str constructs a string attribute.
func Str(key, value string) TraceAttr { return TraceAttr{Key: key, Value: value} }

// Num constructs a numeric attribute (stored as its decimal string).
func Num(key string, v uint64) TraceAttr {
	return TraceAttr{Key: key, Value: fmt.Sprintf("%d", v)}
}

// TraceSpan is one timed operation inside a coordination. Start is the
// offset from the trace's origin; Parent is the index of the enclosing
// span, -1 for the root.
type TraceSpan struct {
	Name   string
	Parent int
	Start  time.Duration
	Dur    time.Duration
	Attrs  []TraceAttr
}

// Attr returns the value of the named attribute, or "" when absent.
func (sp *TraceSpan) Attr(key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Trace is a completed span tree. Spans[0] is the root; children
// always follow their parent (spans are appended in start order).
type Trace struct {
	Spans []TraceSpan
}

// Find returns the indices of every span with the given name, in start
// order.
func (t *Trace) Find(name string) []int {
	var out []int
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			out = append(out, i)
		}
	}
	return out
}

// TraceBuilder accumulates spans during a coordination. All methods
// are safe on a nil receiver (they no-op, Start returns -1), so
// instrumented code paths need no "is tracing on" branches, and safe
// for concurrent use (fetch waves run on goroutines).
type TraceBuilder struct {
	mu    sync.Mutex
	t0    time.Time
	spans []TraceSpan
}

// StartTrace begins a trace whose root span has the given name.
func StartTrace(name string, attrs ...TraceAttr) *TraceBuilder {
	b := &TraceBuilder{t0: time.Now()}
	b.spans = append(b.spans, TraceSpan{Name: name, Parent: -1, Attrs: attrs})
	return b
}

// Start opens a child span under parent and returns its index.
func (b *TraceBuilder) Start(parent int, name string, attrs ...TraceAttr) int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if parent < -1 || parent >= len(b.spans) {
		parent = 0
	}
	b.spans = append(b.spans, TraceSpan{
		Name:   name,
		Parent: parent,
		Start:  time.Since(b.t0),
		Attrs:  attrs,
	})
	return len(b.spans) - 1
}

// End closes the span, recording its duration.
func (b *TraceBuilder) End(id int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if id < 0 || id >= len(b.spans) {
		return
	}
	b.spans[id].Dur = time.Since(b.t0) - b.spans[id].Start
}

// Annotate appends attributes to an open or closed span.
func (b *TraceBuilder) Annotate(id int, attrs ...TraceAttr) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if id < 0 || id >= len(b.spans) {
		return
	}
	b.spans[id].Attrs = append(b.spans[id].Attrs, attrs...)
}

// Finish closes the root span and returns the completed trace. The
// builder must not be used afterwards.
func (b *TraceBuilder) Finish() *Trace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.spans[0].Dur = time.Since(b.t0)
	return &Trace{Spans: b.spans}
}

// Format renders the trace as an indented tree, one span per line:
//
//	coordinate 12.4ms terms=2 k=10
//	├─ admission 13µs wait=queue
//	└─ level 2.1ms level=2 rpcs=3 probes=4
//	   └─ fetch 1.9ms owner=127.0.0.1:7431 keys=2 wave=0
//
// Durations are rounded for reading; attributes render in insertion
// order. The same renderer serves hdksearch -trace and the e2e's
// span-tree assertions.
func (t *Trace) Format() string {
	if t == nil || len(t.Spans) == 0 {
		return "(empty trace)\n"
	}
	children := make(map[int][]int)
	for i := 1; i < len(t.Spans); i++ {
		p := t.Spans[i].Parent
		children[p] = append(children[p], i)
	}
	for _, c := range children {
		sort.Ints(c)
	}
	var b strings.Builder
	var walk func(id int, prefix string, last bool)
	walk = func(id int, prefix string, last bool) {
		sp := &t.Spans[id]
		line := prefix
		childPrefix := prefix
		if id != 0 {
			if last {
				line += "└─ "
				childPrefix += "   "
			} else {
				line += "├─ "
				childPrefix += "│  "
			}
		}
		b.WriteString(line)
		b.WriteString(sp.Name)
		b.WriteByte(' ')
		b.WriteString(sp.Dur.Round(time.Microsecond).String())
		for _, a := range sp.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			b.WriteByte('=')
			b.WriteString(a.Value)
		}
		b.WriteByte('\n')
		kids := children[id]
		for i, c := range kids {
			walk(c, childPrefix, i == len(kids)-1)
		}
	}
	walk(0, "", true)
	return b.String()
}

// Trace wire codec — appended to traced hdk.search responses.
//
// Layout (version 1): byte version, uvarint span count, then per span:
// string name, uvarint parent+1 (0 encodes the root's -1), uvarint
// start nanos, uvarint duration nanos, uvarint attr count, attrs as
// string pairs.

const traceWireVersion = 1

// maxTraceSpans bounds decoder allocation; a coordination produces at
// most a few spans per lattice level per owner.
const maxTraceSpans = 1 << 14

var errCorruptTrace = errors.New("telemetry: corrupt trace")

// EncodeTrace serializes a trace in the versioned wire format.
func EncodeTrace(t *Trace) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, traceWireVersion)
	buf = binary.AppendUvarint(buf, uint64(len(t.Spans)))
	for i := range t.Spans {
		sp := &t.Spans[i]
		buf = appendString(buf, sp.Name)
		buf = binary.AppendUvarint(buf, uint64(sp.Parent+1))
		buf = binary.AppendUvarint(buf, uint64(sp.Start))
		buf = binary.AppendUvarint(buf, uint64(sp.Dur))
		buf = binary.AppendUvarint(buf, uint64(len(sp.Attrs)))
		for _, a := range sp.Attrs {
			buf = appendString(buf, a.Key)
			buf = appendString(buf, a.Value)
		}
	}
	return buf
}

// DecodeTrace parses a trace produced by EncodeTrace, rejecting
// unknown versions, out-of-order parents and corrupt frames.
func DecodeTrace(b []byte) (*Trace, error) {
	if len(b) == 0 || b[0] != traceWireVersion {
		return nil, errCorruptTrace
	}
	b = b[1:]
	n, b, err := decodeUvarint(b)
	if err != nil || n == 0 || n > maxTraceSpans {
		return nil, errCorruptTrace
	}
	t := &Trace{Spans: make([]TraceSpan, 0, min(n, 256))}
	for i := uint64(0); i < n; i++ {
		var sp TraceSpan
		if sp.Name, b, err = decodeString(b); err != nil {
			return nil, err
		}
		var p, start, dur, ac uint64
		if p, b, err = decodeUvarint(b); err != nil {
			return nil, err
		}
		// Parents must precede children (p is parent+1, so p <= i) and
		// the root (parent -1, encoded 0) is legal only at index 0.
		if p > i || (i == 0) != (p == 0) {
			return nil, errCorruptTrace
		}
		sp.Parent = int(p) - 1
		if start, b, err = decodeUvarint(b); err != nil {
			return nil, err
		}
		if dur, b, err = decodeUvarint(b); err != nil {
			return nil, err
		}
		sp.Start, sp.Dur = time.Duration(start), time.Duration(dur)
		if ac, b, err = decodeUvarint(b); err != nil || ac > 256 {
			return nil, errCorruptTrace
		}
		for j := uint64(0); j < ac; j++ {
			var k, v string
			if k, b, err = decodeString(b); err != nil {
				return nil, err
			}
			if v, b, err = decodeString(b); err != nil {
				return nil, err
			}
			sp.Attrs = append(sp.Attrs, TraceAttr{Key: k, Value: v})
		}
		t.Spans = append(t.Spans, sp)
	}
	if len(b) != 0 {
		return nil, errCorruptTrace
	}
	return t, nil
}
