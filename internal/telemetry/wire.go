package telemetry

import (
	"encoding/binary"
	"errors"
	"math"
)

// Snapshot wire codec — the payload of the cluster.metrics RPC. Same
// discipline as the rest of the wire: a leading version byte, uvarint
// lengths and counts, and decoders that reject truncated or oversized
// frames instead of allocating on attacker-controlled lengths.
//
// Layout (version 1):
//
//	byte    version (snapshotWireVersion)
//	uvarint counter count, then per counter:
//	          string name, uvarint label count, labels (string key, string value),
//	          uvarint value
//	uvarint gauge count, then per gauge:
//	          name, labels, fixed64 IEEE-754 bits
//	uvarint histogram count, then per histogram:
//	          name, labels, uvarint count, uvarint sum,
//	          uvarint bucket count, then per bucket: uvarint index, uvarint count

const snapshotWireVersion = 1

// maxSnapshotSeries bounds the per-kind series count a decoder will
// accept; a registry approaching it is misusing labels as values.
const maxSnapshotSeries = 1 << 16

// maxSnapshotString bounds any single name/label string.
const maxSnapshotString = 1 << 12

var errCorruptSnapshot = errors.New("telemetry: corrupt metrics snapshot")

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxSnapshotString || uint64(len(b)-sz) < n {
		return "", nil, errCorruptSnapshot
	}
	b = b[sz:]
	return string(b[:n]), b[n:], nil
}

func decodeUvarint(b []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, errCorruptSnapshot
	}
	return n, b[sz:], nil
}

func appendLabels(buf []byte, labels []Label) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(labels)))
	for _, l := range labels {
		buf = appendString(buf, l.Key)
		buf = appendString(buf, l.Value)
	}
	return buf
}

func decodeLabels(b []byte) ([]Label, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil || n > 64 {
		return nil, nil, errCorruptSnapshot
	}
	if n == 0 {
		return nil, b, nil
	}
	labels := make([]Label, 0, n)
	for i := uint64(0); i < n; i++ {
		var k, v string
		if k, b, err = decodeString(b); err != nil {
			return nil, nil, err
		}
		if v, b, err = decodeString(b); err != nil {
			return nil, nil, err
		}
		labels = append(labels, Label{Key: k, Value: v})
	}
	return labels, b, nil
}

// EncodeSnapshot serializes a snapshot in the versioned wire format.
func EncodeSnapshot(s Snapshot) []byte {
	buf := make([]byte, 0, 512)
	buf = append(buf, snapshotWireVersion)
	buf = binary.AppendUvarint(buf, uint64(len(s.Counters)))
	for _, c := range s.Counters {
		buf = appendString(buf, c.Name)
		buf = appendLabels(buf, c.Labels)
		buf = binary.AppendUvarint(buf, c.Value)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Gauges)))
	for _, g := range s.Gauges {
		buf = appendString(buf, g.Name)
		buf = appendLabels(buf, g.Labels)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(g.Value))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Histograms)))
	for _, h := range s.Histograms {
		buf = appendString(buf, h.Name)
		buf = appendLabels(buf, h.Labels)
		buf = binary.AppendUvarint(buf, h.Count)
		buf = binary.AppendUvarint(buf, h.Sum)
		buf = binary.AppendUvarint(buf, uint64(len(h.Buckets)))
		for _, b := range h.Buckets {
			buf = binary.AppendUvarint(buf, uint64(b.Index))
			buf = binary.AppendUvarint(buf, b.Count)
		}
	}
	return buf
}

// DecodeSnapshot parses a snapshot produced by EncodeSnapshot,
// rejecting unknown versions and corrupt frames.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if len(b) == 0 || b[0] != snapshotWireVersion {
		return s, errCorruptSnapshot
	}
	b = b[1:]

	n, b, err := decodeUvarint(b)
	if err != nil || n > maxSnapshotSeries {
		return s, errCorruptSnapshot
	}
	s.Counters = make([]CounterValue, 0, min(n, 256))
	for i := uint64(0); i < n; i++ {
		var c CounterValue
		if c.Name, b, err = decodeString(b); err != nil {
			return Snapshot{}, err
		}
		if c.Labels, b, err = decodeLabels(b); err != nil {
			return Snapshot{}, err
		}
		if c.Value, b, err = decodeUvarint(b); err != nil {
			return Snapshot{}, err
		}
		s.Counters = append(s.Counters, c)
	}

	if n, b, err = decodeUvarint(b); err != nil || n > maxSnapshotSeries {
		return Snapshot{}, errCorruptSnapshot
	}
	s.Gauges = make([]GaugeValue, 0, min(n, 256))
	for i := uint64(0); i < n; i++ {
		var g GaugeValue
		if g.Name, b, err = decodeString(b); err != nil {
			return Snapshot{}, err
		}
		if g.Labels, b, err = decodeLabels(b); err != nil {
			return Snapshot{}, err
		}
		if len(b) < 8 {
			return Snapshot{}, errCorruptSnapshot
		}
		g.Value = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		s.Gauges = append(s.Gauges, g)
	}

	if n, b, err = decodeUvarint(b); err != nil || n > maxSnapshotSeries {
		return Snapshot{}, errCorruptSnapshot
	}
	s.Histograms = make([]HistogramValue, 0, min(n, 64))
	for i := uint64(0); i < n; i++ {
		var h HistogramValue
		if h.Name, b, err = decodeString(b); err != nil {
			return Snapshot{}, err
		}
		if h.Labels, b, err = decodeLabels(b); err != nil {
			return Snapshot{}, err
		}
		if h.Count, b, err = decodeUvarint(b); err != nil {
			return Snapshot{}, err
		}
		if h.Sum, b, err = decodeUvarint(b); err != nil {
			return Snapshot{}, err
		}
		var bc uint64
		if bc, b, err = decodeUvarint(b); err != nil || bc > histNumBuckets {
			return Snapshot{}, errCorruptSnapshot
		}
		h.Buckets = make([]BucketCount, 0, bc)
		prev := -1
		for j := uint64(0); j < bc; j++ {
			var idx, cnt uint64
			if idx, b, err = decodeUvarint(b); err != nil {
				return Snapshot{}, err
			}
			if cnt, b, err = decodeUvarint(b); err != nil {
				return Snapshot{}, err
			}
			// Buckets must be strictly ascending and in range, or
			// Quantile's cumulative walk would lie.
			if idx >= histNumBuckets || int(idx) <= prev {
				return Snapshot{}, errCorruptSnapshot
			}
			prev = int(idx)
			h.Buckets = append(h.Buckets, BucketCount{Index: int(idx), Count: cnt})
		}
		s.Histograms = append(s.Histograms, h)
	}
	if len(b) != 0 {
		return Snapshot{}, errCorruptSnapshot
	}
	return s, nil
}
