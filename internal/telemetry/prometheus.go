package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the hdknode
// -http /metrics endpoint, plus a minimal parser used by the telemetry
// e2e and hdkbench to read daemon metrics back without an external
// client library.

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderLabels renders {k="v",...} with an optional extra pair appended
// (used for histogram le labels); empty input and extra renders "".
func renderLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabelValue(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest representation, integral values without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Series of the same metric are grouped under one
// # TYPE header (the snapshot's canonical ordering already keeps them
// adjacent). Histograms render cumulative le buckets plus _sum and
// _count, so any Prometheus-compatible scraper can compute quantiles.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastType := ""
	header := func(name, kind string) {
		if name != lastType {
			fmt.Fprintf(bw, "# TYPE %s %s\n", name, kind)
			lastType = name
		}
	}
	for _, c := range s.Counters {
		header(c.Name, "counter")
		fmt.Fprintf(bw, "%s%s %d\n", c.Name, renderLabels(c.Labels, "", ""), c.Value)
	}
	for _, g := range s.Gauges {
		header(g.Name, "gauge")
		fmt.Fprintf(bw, "%s%s %s\n", g.Name, renderLabels(g.Labels, "", ""), formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		header(h.Name, "histogram")
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket%s %d\n",
				h.Name, renderLabels(h.Labels, "le", strconv.FormatUint(bucketUpper(b.Index), 10)), cum)
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, "le", "+Inf"), cum)
		fmt.Fprintf(bw, "%s_sum%s %d\n", h.Name, renderLabels(h.Labels, "", ""), h.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", h.Name, renderLabels(h.Labels, "", ""), h.Count)
	}
	return bw.Flush()
}

// PromSample is one parsed exposition line: a fully-qualified series
// name (histogram buckets appear as name_bucket), its label set and the
// sample value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsePrometheus parses text exposition output — the subset
// WritePrometheus emits (plain samples, # comments, quoted label
// values with backslash escapes). It exists so tests and benches can
// assert on a daemon's /metrics body; it is not a general scraper.
func ParsePrometheus(r io.Reader) ([]PromSample, error) {
	var out []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: exposition line %d: %w", lineNo, err)
		}
		out = append(out, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	val := strings.TrimSpace(rest)
	// A trailing timestamp (which WritePrometheus never emits) would
	// appear as a second field; take the first.
	if i := strings.IndexByte(val, ' '); i >= 0 {
		val = val[:i]
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value in %q: %v", line, err)
	}
	s.Value = f
	return s, nil
}

func parsePromLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		var val strings.Builder
		i := eq + 2
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					val.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		labels[key] = val.String()
		body = body[i:]
		body = strings.TrimPrefix(body, ",")
	}
	return labels, nil
}

// PromHistogramQuantile computes quantile q from parsed exposition
// samples of one histogram: it collects name_bucket samples whose
// labels (minus le) match want, reconstructs the cumulative
// distribution and returns the smallest le covering the rank. Returns
// the observation count alongside (0 count means the series was absent
// or empty).
func PromHistogramQuantile(samples []PromSample, name string, want map[string]string, q float64) (float64, uint64) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range samples {
		if s.Name != name+"_bucket" {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		le := s.Labels["le"]
		f := 0.0
		if le == "+Inf" {
			f = float64(1<<63) * 4 // effectively infinite sentinel
		} else {
			var err error
			if f, err = strconv.ParseFloat(le, 64); err != nil {
				continue
			}
		}
		buckets = append(buckets, bucket{le: f, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, 0
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total <= 0 {
		return 0, 0
	}
	rank := q * total
	for _, b := range buckets {
		if b.cum >= rank {
			return b.le, uint64(total)
		}
	}
	return buckets[len(buckets)-1].le, uint64(total)
}
