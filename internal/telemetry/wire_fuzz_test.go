package telemetry

import (
	"bytes"
	"testing"

	"repro/internal/fuzzcorpus"
)

// Fuzz targets for the telemetry wire formats: the registry snapshot
// (the cluster.metrics RPC payload) and the per-query trace a traced
// search response carries. Both cross process boundaries, so the
// decoders must survive arbitrary bytes without panicking or
// oversize-allocating, and every accepted input must re-encode stably
// (floats travel as exact bits, so byte comparison is NaN-safe).

func snapshotSeeds() [][]byte {
	reg := NewRegistry()
	reg.Counter("hdk_fuzz_total", L("shard", "3")).Add(41)
	reg.Gauge("hdk_fuzz_depth").Set(1.5)
	reg.Histogram("hdk_fuzz_nanoseconds").Observe(1 << 20)
	return [][]byte{
		EncodeSnapshot(reg.Snapshot()),
		EncodeSnapshot(Snapshot{}),
		{},
		{0xff, 0xff, 0xff, 0xff},
	}
}

func traceSeeds() [][]byte {
	tb := StartTrace("search", Str("query", "alpha beta"))
	lvl := tb.Start(0, "level", Num("level", 1))
	tb.Start(lvl, "fetch", Num("owner", 4))
	tb.End(lvl)
	return [][]byte{
		EncodeTrace(tb.Finish()),
		EncodeTrace(&Trace{Spans: []TraceSpan{{Name: "root", Parent: -1}}}),
		{},
		{0x01, 0x80},
	}
}

func FuzzDecodeSnapshot(f *testing.F) {
	for _, seed := range snapshotSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc := EncodeSnapshot(s)
		s2, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if enc2 := EncodeSnapshot(s2); !bytes.Equal(enc, enc2) {
			t.Fatalf("snapshot encoding not stable:\n first %x\nsecond %x", enc, enc2)
		}
	})
}

func FuzzDecodeTrace(f *testing.F) {
	for _, seed := range traceSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			return
		}
		enc := EncodeTrace(tr)
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted trace failed: %v", err)
		}
		if enc2 := EncodeTrace(tr2); !bytes.Equal(enc, enc2) {
			t.Fatalf("trace encoding not stable:\n first %x\nsecond %x", enc, enc2)
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus; see
// package fuzzcorpus.
func TestWriteFuzzCorpus(t *testing.T) {
	if !fuzzcorpus.Enabled() {
		t.Skipf("set %s=1 to regenerate testdata/fuzz", fuzzcorpus.EnvVar)
	}
	for name, seeds := range map[string][][]byte{
		"FuzzDecodeSnapshot": snapshotSeeds(),
		"FuzzDecodeTrace":    traceSeeds(),
	} {
		if err := fuzzcorpus.Write(name, seeds); err != nil {
			t.Fatal(err)
		}
	}
}
