package zipfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDistValidation(t *testing.T) {
	if _, err := NewDist(0, 1, 10); err == nil {
		t.Error("skew 0 accepted")
	}
	if _, err := NewDist(1.5, 0, 10); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := NewDist(1.5, 1, 0); err == nil {
		t.Error("empty vocabulary accepted")
	}
	if _, err := NewDist(1.5, 100, 10); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestFreqMonotoneDecreasing(t *testing.T) {
	d, _ := NewDist(1.5, 1e6, 1000)
	prev := math.Inf(1)
	for r := 1; r <= d.V; r++ {
		f := d.Freq(r)
		if f >= prev {
			t.Fatalf("Freq not strictly decreasing at rank %d", r)
		}
		prev = f
	}
}

func TestInverseFreqRoundTrip(t *testing.T) {
	d, _ := NewDist(1.5, 1e6, 100000)
	prop := func(r16 uint16) bool {
		r := int(r16)%d.V + 1
		back := d.InverseFreq(d.Freq(r))
		return math.Abs(back-float64(r)) < 1e-6*float64(r)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRankForBoundaries(t *testing.T) {
	d, _ := NewDist(1.5, 1e6, 1000)
	// Frequency above z(1) -> no rank qualifies.
	if got := d.RankFor(d.Freq(1) * 2); got != 0 {
		t.Errorf("RankFor(huge) = %d, want 0", got)
	}
	// Frequency below z(V) -> all ranks qualify.
	if got := d.RankFor(d.Freq(d.V) / 2); got != d.V {
		t.Errorf("RankFor(tiny) = %d, want %d", got, d.V)
	}
	// Interior threshold: z(RankFor(f)) >= f > z(RankFor(f)+1).
	f := 500.0
	r := d.RankFor(f)
	if d.Freq(r) < f {
		t.Errorf("z(r)=%g < threshold %g", d.Freq(r), f)
	}
	if d.Freq(r+1) > f {
		t.Errorf("z(r+1)=%g > threshold %g", d.Freq(r+1), f)
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	d, _ := NewDist(1.0, 1000, 10)
	s := NewSampler(d, rand.New(rand.NewSource(42)))
	const n = 200000
	counts := make([]int, d.V+1)
	for i := 0; i < n; i++ {
		r := s.Next()
		if r < 1 || r > d.V {
			t.Fatalf("sampled rank %d out of [1,%d]", r, d.V)
		}
		counts[r]++
	}
	// Under a=1.0, rank 1 should be sampled 2x rank 2, 3x rank 3, etc.
	for r := 2; r <= d.V; r++ {
		ratio := float64(counts[1]) / float64(counts[r])
		want := float64(r)
		if math.Abs(ratio-want) > 0.15*want {
			t.Errorf("count ratio rank1/rank%d = %.2f, want ~%.1f", r, ratio, want)
		}
	}
}

func TestFitRecoversSkew(t *testing.T) {
	// Generate exact Zipf frequencies and verify Fit recovers the skew.
	for _, a := range []float64{0.9, 1.2, 1.5} {
		d, _ := NewDist(a, 1e7, 5000)
		freqs := make([]int, d.V)
		for r := 1; r <= d.V; r++ {
			freqs[r-1] = int(d.Freq(r))
		}
		skew, scale, err := Fit(freqs, 2)
		if err != nil {
			t.Fatalf("Fit failed for a=%g: %v", a, err)
		}
		if math.Abs(skew-a) > 0.05 {
			t.Errorf("fitted skew %.3f, want %.2f", skew, a)
		}
		if scale <= 0 {
			t.Errorf("fitted scale %.3g, want positive", scale)
		}
	}
}

func TestFitInsufficientData(t *testing.T) {
	if _, _, err := Fit([]int{5}, 1); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := Fit([]int{7, 7, 7}, 1); err == nil {
		t.Error("constant frequencies accepted")
	}
	if _, _, err := Fit(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
}

func TestTotalMassGrowsWithScale(t *testing.T) {
	d1, _ := NewDist(1.5, 1e5, 10000)
	d2, _ := NewDist(1.5, 1e6, 10000)
	if d1.TotalMass() >= d2.TotalMass() {
		t.Error("TotalMass must grow with scale")
	}
}
