// Package zipfmodel implements the Zipf-law machinery underlying the
// paper's scalability analysis (Section 4): the parametric rank-frequency
// function z(r) = C(l)·r^-a, rank sampling for the synthetic corpus
// generator, least-squares fitting of the skew parameter from observed
// frequency distributions, and the closed-form term-occurrence
// probabilities of Theorems 1 and 2.
package zipfmodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a Zipf rank-frequency model z(r) = C·r^-a over ranks 1..V.
type Dist struct {
	Skew  float64 // a, the skew parameter (paper fits a1 = 1.5 on Wikipedia)
	Scale float64 // C(l), grows with the collection sample size l
	V     int     // vocabulary size (number of distinct ranks)
}

// NewDist validates and constructs a Dist.
func NewDist(skew, scale float64, vocab int) (*Dist, error) {
	if skew <= 0 {
		return nil, fmt.Errorf("zipfmodel: skew must be positive, got %g", skew)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("zipfmodel: scale must be positive, got %g", scale)
	}
	if vocab < 1 {
		return nil, fmt.Errorf("zipfmodel: vocabulary must be >= 1, got %d", vocab)
	}
	return &Dist{Skew: skew, Scale: scale, V: vocab}, nil
}

// Freq returns z(r) = C·r^-a, the modeled collection frequency of the term
// with rank r (1-based).
func (d *Dist) Freq(rank int) float64 {
	if rank < 1 {
		return 0
	}
	return d.Scale * math.Pow(float64(rank), -d.Skew)
}

// InverseFreq returns z^-1(f) = (C/f)^(1/a), the (real-valued) rank whose
// modeled frequency equals f.
func (d *Dist) InverseFreq(f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return math.Pow(d.Scale/f, 1/d.Skew)
}

// RankFor returns the largest integer rank whose modeled frequency is still
// strictly above the threshold f, i.e. the boundary ranks r_f and r_r of
// Figure 2.
func (d *Dist) RankFor(f float64) int {
	r := int(math.Floor(d.InverseFreq(f)))
	if r < 0 {
		return 0
	}
	if r > d.V {
		return d.V
	}
	return r
}

// TotalMass approximates the sample size implied by the model: the sum of
// z(r) over r = 1..V, computed by the same integral approximation the paper
// uses in the Theorem 1 proof.
func (d *Dist) TotalMass() float64 {
	return d.integral(1, float64(d.V))
}

// integral computes ∫_lo^hi C·r^-a dr.
func (d *Dist) integral(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	a := d.Skew
	if math.Abs(a-1) < 1e-12 {
		return d.Scale * (math.Log(hi) - math.Log(lo))
	}
	return d.Scale / (1 - a) * (math.Pow(hi, 1-a) - math.Pow(lo, 1-a))
}

// Sampler draws term ranks with probability proportional to z(r),
// deterministic given the *rand.Rand source. It uses the alias-free inverse
// CDF over the exact discrete masses, so small vocabularies are sampled
// exactly.
type Sampler struct {
	cdf []float64
	rng *rand.Rand
}

// NewSampler builds a sampler over the distribution using rng as the
// randomness source. Building is O(V).
func NewSampler(d *Dist, rng *rand.Rand) *Sampler {
	cdf := make([]float64, d.V)
	sum := 0.0
	for r := 1; r <= d.V; r++ {
		sum += d.Freq(r)
		cdf[r-1] = sum
	}
	// Normalize so binary search on [0,1) works irrespective of scale.
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Sampler{cdf: cdf, rng: rng}
}

// Next returns a 1-based rank sampled from the distribution.
func (s *Sampler) Next() int {
	u := s.rng.Float64()
	return sort.SearchFloat64s(s.cdf, u) + 1
}

// ErrInsufficientData is returned by Fit when fewer than two distinct
// (rank, frequency) points are available.
var ErrInsufficientData = errors.New("zipfmodel: need at least 2 distinct frequencies to fit")

// Fit estimates (skew, scale) from an observed frequency table by ordinary
// least squares in log-log space: log f = log C - a·log r. Frequencies must
// be positive; they are sorted descending internally to assign ranks.
// Hapax legomena (f == 1) are down-weighted by excluding the tail where
// f < minFreq, mirroring the paper's proof device of ignoring hapaxes.
func Fit(freqs []int, minFreq int) (skew, scale float64, err error) {
	fs := make([]int, 0, len(freqs))
	for _, f := range freqs {
		if f >= minFreq && f > 0 {
			fs = append(fs, f)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(fs)))
	if len(fs) < 2 || fs[0] == fs[len(fs)-1] {
		return 0, 0, ErrInsufficientData
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(fs))
	for i, f := range fs {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(f))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, 0, ErrInsufficientData
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	return -slope, math.Exp(intercept), nil
}
