package zipfmodel

import (
	"fmt"
	"math"
)

// This file implements the closed forms of the paper's Section 4 analysis:
//
//   Theorem 1:  P_vf(l)  = (1 - (Ff/C(l))^((a-1)/a)) / (1 - (1/C(l))^((a-1)/a))
//   Theorem 2:  P_f      = (1 - (Fr/Ff)^((a-1)/a))   / (1 - (1/Ff)^((a-1)/a))
//   Theorem 3:  IS_s(D)  = D · P_f,(s-1)^2 · binom(w-1, s-1)
//
// together with the derived quantities used in Figures 5 and 8.

// AnalysisParams carries the model constants of Section 4.
type AnalysisParams struct {
	Skew float64 // a, skew of the size-1 term distribution
	Ff   float64 // very-frequent threshold (paper: 100,000)
	Fr   float64 // rare threshold, Fr <= Ff
}

// Validate reports whether the parameters are admissible.
func (p AnalysisParams) Validate() error {
	if p.Skew <= 1 {
		return fmt.Errorf("zipfmodel: Theorems 1-2 require skew > 1, got %g", p.Skew)
	}
	if p.Fr < 1 || p.Ff < p.Fr {
		return fmt.Errorf("zipfmodel: need 1 <= Fr <= Ff, got Fr=%g Ff=%g", p.Fr, p.Ff)
	}
	return nil
}

// exponent returns (a-1)/a, shared by both theorems.
func (p AnalysisParams) exponent() float64 { return (p.Skew - 1) / p.Skew }

// PVeryFrequent computes Theorem 1: the probability that a term occurrence
// in a collection sample with Zipf scale C(l) belongs to a very frequent
// term (collection frequency > Ff). The probability grows with the sample
// (through the scale) and approaches 1 for huge collections, which is why
// very frequent terms are excluded from the key vocabulary.
func (p AnalysisParams) PVeryFrequent(scale float64) float64 {
	e := p.exponent()
	num := 1 - math.Pow(p.Ff/scale, e)
	den := 1 - math.Pow(1/scale, e)
	if den == 0 {
		return 0
	}
	return clamp01(num / den)
}

// PFrequent computes Theorem 2: the probability that a term occurrence
// belongs to a frequent term (Fr < f <= Ff). The value is independent of
// the sample size — the central scalability property of the model.
func (p AnalysisParams) PFrequent() float64 {
	e := p.exponent()
	num := 1 - math.Pow(p.Fr/p.Ff, e)
	den := 1 - math.Pow(1/p.Ff, e)
	if den == 0 {
		return 0
	}
	return clamp01(num / den)
}

// PRare is 1 - PFrequent: the probability of a rare-term occurrence among
// non-very-frequent occurrences.
func (p AnalysisParams) PRare() float64 { return 1 - p.PFrequent() }

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// Binomial returns C(n, k) as a float64 (exact for the small n used here).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 1; i <= k; i++ {
		res = res * float64(n-k+i) / float64(i)
	}
	return res
}

// IndexSizeRatio computes Theorem 3's bound IS_s(D)/D = P_f,(s-1)^2 ·
// binom(w-1, s-1): the expected number of size-s key postings generated per
// term occurrence, where pfPrev is the frequent-key occurrence probability
// for keys of size s-1 and w is the proximity window.
func IndexSizeRatio(pfPrev float64, w, s int) float64 {
	if s < 2 {
		return 1 // IS1/D <= 1 by construction (at most one posting per occurrence)
	}
	return pfPrev * pfPrev * Binomial(w-1, s-1)
}

// IndexSize computes Theorem 3's absolute bound IS_s(D) for a collection of
// sample size d (total term occurrences).
func IndexSize(d float64, pfPrev float64, w, s int) float64 {
	return d * IndexSizeRatio(pfPrev, w, s)
}

// PaperEstimates reproduces the two worked numbers quoted in Section 5:
// with a1 = 1.5, Pf,1 = 0.8 the bound IS2/D = 12.16, and with a2 = 0.9,
// Pf,2 = 0.257 the bound IS3/D = 11.35 (both for w = 20).
func PaperEstimates() (is2OverD, is3OverD float64) {
	return IndexSizeRatio(0.8, 20, 2), IndexSizeRatio(0.257, 20, 3)
}
