package zipfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperEstimates(t *testing.T) {
	// Section 5: "the maximal estimated value for IS2/D is 12.16 (a1 = 1.5
	// ... and Pf,1 = 0.8) and the estimated value for IS3/D is 11.35
	// (a2 = 0.9 and Pf,2 = 0.257)".
	is2, is3 := PaperEstimates()
	if math.Abs(is2-12.16) > 0.01 {
		t.Errorf("IS2/D = %.4f, paper reports 12.16", is2)
	}
	// 0.257^2 * C(19,2) = 11.29; the paper's 11.35 reflects rounding of
	// Pf,2. Accept within 1%.
	if math.Abs(is3-11.35) > 0.115 {
		t.Errorf("IS3/D = %.4f, paper reports 11.35", is3)
	}
}

func TestPFrequentIndependentOfScale(t *testing.T) {
	// Theorem 2's whole point: P_f does not depend on the sample size (the
	// scale C(l) does not appear in the formula).
	p := AnalysisParams{Skew: 1.5, Ff: 100000, Fr: 10}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pf := p.PFrequent()
	if pf <= 0 || pf >= 1 {
		t.Fatalf("PFrequent = %g, want in (0,1)", pf)
	}
	if pr := p.PRare(); math.Abs(pf+pr-1) > 1e-12 {
		t.Errorf("PFrequent + PRare = %g, want 1", pf+pr)
	}
}

func TestPVeryFrequentGrowsWithSample(t *testing.T) {
	// Theorem 1: P_vf grows with the collection (through the scale C(l)).
	p := AnalysisParams{Skew: 1.5, Ff: 100000, Fr: 10}
	prev := -1.0
	for _, scale := range []float64{1e6, 1e7, 1e8, 1e9, 1e10} {
		pvf := p.PVeryFrequent(scale)
		if pvf < prev {
			t.Errorf("PVeryFrequent decreased at scale %g: %g < %g", scale, pvf, prev)
		}
		if pvf < 0 || pvf > 1 {
			t.Errorf("PVeryFrequent(%g) = %g out of [0,1]", scale, pvf)
		}
		prev = pvf
	}
	// And it tends to 1 for an enormous collection.
	if pvf := p.PVeryFrequent(1e18); pvf < 0.9 {
		t.Errorf("PVeryFrequent(1e18) = %g, want near 1", pvf)
	}
}

func TestPFrequentMonotoneInFr(t *testing.T) {
	// Raising the rare threshold Fr shrinks the frequent band.
	prop := func(frRaw, ffRaw uint16) bool {
		fr := float64(frRaw%1000) + 1
		ff := fr + float64(ffRaw%50000) + 1
		p1 := AnalysisParams{Skew: 1.5, Ff: ff, Fr: fr}
		p2 := AnalysisParams{Skew: 1.5, Ff: ff, Fr: fr + 1}
		return p1.PFrequent() >= p2.PFrequent()-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []AnalysisParams{
		{Skew: 1.0, Ff: 100, Fr: 10},  // skew must be > 1
		{Skew: 1.5, Ff: 5, Fr: 10},    // Ff < Fr
		{Skew: 1.5, Ff: 100, Fr: 0.5}, // Fr < 1
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid params", p)
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{19, 1, 19}, {19, 2, 171}, {19, 0, 1}, {19, 19, 1},
		{5, 2, 10}, {0, 0, 1}, {4, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestIndexSizeRatioSizeOne(t *testing.T) {
	if got := IndexSizeRatio(0.8, 20, 1); got != 1 {
		t.Errorf("IS1/D bound = %g, want 1 (paper: IS1/D <= 1)", got)
	}
}

func TestIndexSizeLinearInD(t *testing.T) {
	// Theorem 3: the index size grows linearly with the collection size.
	r := IndexSize(2e6, 0.8, 20, 2) / IndexSize(1e6, 0.8, 20, 2)
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("doubling D scaled IS by %g, want exactly 2", r)
	}
}
