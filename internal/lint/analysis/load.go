package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors holds type-checker complaints. hdkvet refuses to
	// analyze a package that does not type-check (the analyzers assume
	// complete type information), but the caller decides whether that
	// is fatal.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching the `go list` patterns, parses
// and type-checks each non-dependency match, and returns them sorted by
// import path. Dependencies (including the standard library) are
// imported from gc export data produced by `go list -export`, so only
// the target packages themselves are parsed — the same shape as a `go
// vet` compilation unit, at a fraction of a source importer's cost.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	aliases := map[string]string{} // as-written import path -> resolved path
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			aliases[from] = to
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if to, ok := aliases[path]; ok {
			path = to
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	out := &Package{Path: t.ImportPath, Fset: fset, Files: files, Info: newInfo()}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		Error:       func(err error) { out.TypeErrors = append(out.TypeErrors, err) },
	}
	out.Pkg, _ = conf.Check(t.ImportPath, fset, files, out.Info)
	return out, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
