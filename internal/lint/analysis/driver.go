package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// IgnoreDirective is the magic comment that suppresses a finding at its
// use site: `//hdkvet:ignore <analyzer>[,<analyzer>...] -- <reason>`.
// The directive applies to findings on its own line and on the line
// directly below it (so it works both trailing a statement and standing
// alone above one). The reason after ` -- ` is mandatory: a suppression
// with no justification is itself a finding.
const IgnoreDirective = "hdkvet:ignore"

// RunPackage applies the analyzers to one loaded package and returns
// the surviving findings: diagnostics minus those suppressed by a
// well-formed inline directive, plus a finding for every malformed
// directive. Results are sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("%s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
	}
	ignores, findings := collectDirectives(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if ignores.covers(name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pkg: pkg.Path, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ignoreSet records which (file, line) positions each analyzer is
// suppressed on.
type ignoreSet map[string]map[int]bool // analyzer -> file:line set? keyed below

func (s ignoreSet) add(analyzer, file string, line int) {
	if s[analyzer] == nil {
		s[analyzer] = map[int]bool{}
	}
	s[analyzer][lineKey(file, line)] = true
}

func (s ignoreSet) covers(analyzer string, pos token.Position) bool {
	return s[analyzer][lineKey(pos.Filename, pos.Line)]
}

// lineKey folds a filename into a line-keyed int map by hashing the
// path; collisions across files would need identical FNV hashes AND
// identical line numbers, which we accept for a lint suppressor.
func lineKey(file string, line int) int {
	h := 0
	for i := 0; i < len(file); i++ {
		h = h*131 + int(file[i])
	}
	return h*1_000_003 + line
}

// collectDirectives scans the package's comments for ignore directives.
// Malformed directives (no analyzer list, or no ` -- reason`) are
// returned as findings so they cannot silently suppress anything.
func collectDirectives(pkg *Package) (ignoreSet, []Finding) {
	ignores := ignoreSet{}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Go directive convention: the marker must follow "//"
				// immediately. Prose that merely mentions the directive
				// ("suppress with //hdkvet:ignore") is not a directive.
				body, isLine := strings.CutPrefix(c.Text, "//")
				if !isLine || !strings.HasPrefix(body, IgnoreDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(body[len(IgnoreDirective):])
				names, reason, ok := strings.Cut(rest, "--")
				names = strings.TrimSpace(names)
				if !ok || names == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Finding{
						Analyzer: "hdkvet",
						Pkg:      pkg.Path,
						Pos:      pos,
						Message:  "malformed directive: want //hdkvet:ignore <analyzer>[,<analyzer>] -- <reason>",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					ignores.add(name, pos.Filename, pos.Line)
					ignores.add(name, pos.Filename, pos.Line+1)
				}
			}
		}
	}
	return ignores, bad
}

// InspectAll walks every file in the pass with ast.Inspect.
func InspectAll(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}

// Baseline is a set of findings accepted as justified debt: hdkvet
// reports a baselined finding but does not fail on it. Entries are
// line-number-free (analyzer, file base name, exact message) so
// unrelated edits to a file do not invalidate them.
type Baseline map[string]bool

// Key renders a finding's baseline identity.
func (f Finding) Key() string {
	return f.Analyzer + "\t" + filepath.Base(f.Pos.Filename) + "\t" + f.Message
}

// Covers reports whether the finding is baselined.
func (b Baseline) Covers(f Finding) bool { return b[f.Key()] }

// LoadBaseline reads a baseline file: one tab-separated
// `analyzer<TAB>file<TAB>message` entry per line, `#` comments and
// blank lines skipped. A missing file is an empty baseline.
func LoadBaseline(path string) (Baseline, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return Baseline{}, nil
	} else if err != nil {
		return nil, err
	}
	defer f.Close()
	b := Baseline{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("%s: malformed baseline entry %q (want analyzer<TAB>file<TAB>message)", path, line)
		}
		b[line] = true
	}
	return b, sc.Err()
}
