package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkPkg type-checks a dependency-free source string into a Package.
func checkPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Info: newInfo()}
	conf := types.Config{Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) }}
	pkg.Pkg, _ = conf.Check("p", fset, pkg.Files, pkg.Info)
	return pkg
}

// makeReporter flags every make call — a minimal analyzer to exercise
// the driver's directive and ordering behavior.
var makeReporter = &Analyzer{
	Name: "makerep",
	Doc:  "test analyzer: reports every make call",
	Run: func(pass *Pass) error {
		InspectAll(pass, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
					pass.Reportf(call.Pos(), "make call")
				}
			}
			return true
		})
		return nil
	},
}

func TestRunPackageReportsAndSorts(t *testing.T) {
	pkg := checkPkg(t, `package p

func b() []int { return make([]int, 2) }

func a() []int { return make([]int, 1) }
`)
	got, err := RunPackage(pkg, []*Analyzer{makeReporter})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(got), got)
	}
	if got[0].Pos.Line >= got[1].Pos.Line {
		t.Errorf("findings not sorted by line: %v", got)
	}
	if got[0].Analyzer != "makerep" || got[0].Pkg != "p" {
		t.Errorf("finding metadata wrong: %+v", got[0])
	}
}

func TestInlineDirectiveSuppresses(t *testing.T) {
	pkg := checkPkg(t, `package p

func a() []int {
	return make([]int, 1) //hdkvet:ignore makerep -- exercised by the driver test
}

//hdkvet:ignore makerep -- standing directive covers the next line
func b() []int { return make([]int, 2) }

func c() []int {
	return make([]int, 3) //hdkvet:ignore otherthing -- wrong analyzer, does not suppress
}
`)
	got, err := RunPackage(pkg, []*Analyzer{makeReporter})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0].Message, "make call") {
		t.Fatalf("got %v, want exactly the unsuppressed finding in c", got)
	}
}

func TestMalformedDirectiveIsAFinding(t *testing.T) {
	pkg := checkPkg(t, `package p

//hdkvet:ignore makerep
func a() []int { return make([]int, 1) }
`)
	got, err := RunPackage(pkg, []*Analyzer{makeReporter})
	if err != nil {
		t.Fatal(err)
	}
	// The reason-less directive must NOT suppress, and must itself be
	// reported.
	var sawMalformed, sawMake bool
	for _, f := range got {
		if strings.Contains(f.Message, "malformed directive") {
			sawMalformed = true
		}
		if strings.Contains(f.Message, "make call") {
			sawMake = true
		}
	}
	if !sawMalformed || !sawMake {
		t.Fatalf("got %v, want both the malformed-directive finding and the unsuppressed make finding", got)
	}
}

func TestRunPackageRefusesTypeErrors(t *testing.T) {
	pkg := checkPkg(t, `package p

func a() { undefinedIdentifier() }
`)
	if _, err := RunPackage(pkg, []*Analyzer{makeReporter}); err == nil {
		t.Fatal("want an error for a package that does not type-check")
	}
}

func TestBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	content := "# comment\n\nmakerep\tp.go\tmake call\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	covered := Finding{Analyzer: "makerep", Pos: token.Position{Filename: "x/y/p.go"}, Message: "make call"}
	if !b.Covers(covered) {
		t.Errorf("baseline should cover %q", covered.Key())
	}
	uncovered := Finding{Analyzer: "makerep", Pos: token.Position{Filename: "p.go"}, Message: "other"}
	if b.Covers(uncovered) {
		t.Errorf("baseline should not cover %q", uncovered.Key())
	}

	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.txt")); err != nil {
		t.Errorf("missing baseline file should be empty, got error %v", err)
	}

	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("only-one-field\n"), 0o644)
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("malformed baseline entry should error")
	}
}

func TestLoadAgainstRealModule(t *testing.T) {
	// Loading this very package through the production loader proves
	// the go list + export-data import pipeline end to end.
	pkgs, err := Load("", []string{"repro/internal/lint/analysis"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/lint/analysis" {
		t.Fatalf("got %v, want just this package", pkgs)
	}
	if len(pkgs[0].TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrors)
	}
	if pkgs[0].Pkg.Name() != "analysis" {
		t.Errorf("package name = %q", pkgs[0].Pkg.Name())
	}
}
