// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer / Pass
// / Diagnostic surface for the hdkvet checkers in internal/lint/... to
// be written in the standard shape, plus a package loader built on
// `go list -export` and the standard library's gc export-data importer.
//
// The real x/tools module is deliberately NOT a dependency: the repo is
// zero-dependency end to end (go.mod has no require block), and the
// subset hdkvet needs — syntax + full type information for one package
// at a time, no cross-package facts — fits in a few hundred lines of
// stdlib. Analyzers written against this package port to x/tools
// mechanically (the field names match) if the repo ever takes the
// dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings, baseline entries, and
	// //hdkvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by hdkvet -list.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an error only for internal failures (an
	// error fails the whole hdkvet run, not just the package).
	Run func(*Pass) error
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one finding.
	Report func(Diagnostic)
}

// Reportf is the printf convenience over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: position rendered against the
// file set, tagged with the analyzer and package that produced it.
type Finding struct {
	Analyzer string
	Pkg      string // package import path
	Pos      token.Position
	Message  string
}

// String renders the finding the way hdkvet prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}
