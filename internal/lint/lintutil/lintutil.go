// Package lintutil holds the small type-resolution helpers the hdkvet
// analyzers share: resolving a call expression to its *types.Func,
// matching packages by import-path tail (so analysistest-style fixture
// packages named `transport` or `telemetry` exercise the same code
// paths as the real `repro/internal/...` packages), and expression
// mention scans.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// PathTail returns the last slash-separated element of an import path.
func PathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// CalleeFunc resolves a call expression to the function or method it
// invokes, or nil (builtin, conversion, indirect call through a
// variable).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// ReceiverTypeName returns the name of the method's receiver's named
// type (pointers dereferenced), or "" for plain functions.
func ReceiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// Mentions reports whether the expression tree references any of the
// given objects.
func Mentions(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// MentionsObj is Mentions for a single object.
func MentionsObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	return Mentions(info, expr, map[types.Object]bool{obj: true})
}
