// Package nonetunderlock enforces the "no network under locks"
// discipline: no RPC may be issued while a sync.Mutex / sync.RWMutex is
// held. A blocking Call under a store or server mutex turns one slow
// peer into a cluster-wide pileup (every local operation queues behind
// a remote timeout) and is one deadlock half away from a distributed
// lock cycle — the property the PR5 generation-checked cache redesign
// and the PR6 admission work both exist to preserve.
//
// The analysis is intraprocedural and lexical: within each function it
// tracks which mutexes are held after `x.Lock()` / `x.RLock()`
// statements (released by a matching Unlock statement; `defer
// x.Unlock()` holds to the end of the function), and reports any
// network call made while the held set is non-empty. Goroutine bodies
// (`go func(){…}`) do not inherit the held set; deferred calls other
// than unlocks are skipped. Branch bodies see a copy of the held set,
// so a release inside one branch does not clear the other — that bias
// is deliberate (a conditional release is a smell of its own).
//
// A call is "network" when its callee resolves, through go/types, to:
//   - method Call in a package whose path ends in transport or replica
//     (the Transport interface, its TCP/InProc/Flaky implementations,
//     and the replica Inventory), or any CallService method;
//   - an RPC-backed method on the cluster Client: *Via, plus the
//     explicit set (Configure, Meta, Shutdown, Forget, StoreStats,
//     Ingest, BuildRemote, Audit);
//   - any exported method on the replica Repairer (Sweep, CatchUp,
//     Audit all fan out RPCs).
package nonetunderlock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer is the nonetunderlock pass.
var Analyzer = &analysis.Analyzer{
	Name: "nonetunderlock",
	Doc:  "forbid transport/cluster/replica RPC calls while a sync mutex is held",
	Run:  run,
}

// rpcClientMethods are the cluster.Client methods that perform RPCs but
// do not end in Via.
var rpcClientMethods = map[string]bool{
	"Configure": true, "Meta": true, "Shutdown": true, "Forget": true,
	"StoreStats": true, "Ingest": true, "BuildRemote": true, "Audit": true,
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.block(fd.Body.List, map[string]token.Pos{})
			}
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// block scans a statement list in source order, mutating held as lock
// statements come and go.
func (w *walker) block(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *walker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if lock, acquire, ok := w.lockTransition(s.X); ok {
			if acquire {
				held[lock] = s.Pos()
			} else {
				delete(held, lock)
			}
			return
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to function end,
		// which is how the held set already models it; other deferred
		// work runs at return under unknowable lock state — skip.
	case *ast.GoStmt:
		// A spawned goroutine does not hold the caller's locks.
	case *ast.BlockStmt:
		w.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.block(s.Body.List, clone(held))
		if s.Else != nil {
			w.stmt(s.Else, clone(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		body := clone(held)
		w.block(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.block(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.block(cc.Body, clone(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	default:
		// Assignments, returns, declarations, sends, …: no statement
		// structure to track, just expressions to check.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.checkExpr(e, held)
				return false
			}
			return true
		})
	}
}

// lockTransition recognizes `x.Lock()` / `x.RLock()` / `x.Unlock()` /
// `x.RUnlock()` on a sync mutex and returns the lock's expression
// string and direction.
func (w *walker) lockTransition(e ast.Expr) (lock string, acquire, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn := lintutil.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// checkExpr reports network calls anywhere in the expression while a
// lock is held. Function-literal bodies are skipped unless the literal
// is invoked on the spot.
func (w *walker) checkExpr(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				// An immediately-invoked literal runs under the lock.
				w.block(lit.Body.List, clone(held))
			}
			if fn := lintutil.CalleeFunc(w.pass.TypesInfo, n); fn != nil && isNetCall(fn) {
				for lock := range held {
					w.pass.Reportf(n.Pos(), "RPC %s.%s while %s is held — no network under locks",
						receiverOrPkg(fn), fn.Name(), lock)
					break
				}
			}
		}
		return true
	})
}

func isNetCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	tail := lintutil.PathTail(fn.Pkg().Path())
	recv := lintutil.ReceiverTypeName(fn)
	name := fn.Name()
	switch {
	case name == "CallService":
		return true
	case name == "Call" && (tail == "transport" || tail == "replica"):
		return true
	case tail == "cluster" && recv == "Client" &&
		(strings.HasSuffix(name, "Via") || rpcClientMethods[name]):
		return true
	case tail == "replica" && recv == "Repairer" && ast.IsExported(name):
		return true
	}
	return false
}

func receiverOrPkg(fn *types.Func) string {
	if r := lintutil.ReceiverTypeName(fn); r != "" {
		return r
	}
	return lintutil.PathTail(fn.Pkg().Path())
}
