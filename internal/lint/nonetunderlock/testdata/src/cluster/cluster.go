// Miniature of repro/internal/transport/cluster for fixture type
// resolution.
package cluster

// Client mirrors the cluster client: Via-suffixed and listed methods
// are RPC-backed, the rest are local.
type Client struct{}

// SearchVia performs an RPC.
func (c *Client) SearchVia(addr string) error { return nil }

// Configure performs RPCs.
func (c *Client) Configure() error { return nil }

// Size is local bookkeeping — not an RPC.
func (c *Client) Size() int { return 0 }
