package a

import (
	"sync"

	"cluster"
	"transport"
)

type srv struct {
	mu sync.Mutex
	rw sync.RWMutex
	tr transport.Transport
	cl *cluster.Client
}

// Positive: RPC under a deferred-unlock mutex.
func (s *srv) badDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr.Call("x", nil) // want `RPC Transport.Call while s.mu is held`
}

// Positive: RPC between RLock and RUnlock.
func (s *srv) badReadLocked() error {
	s.rw.RLock()
	err := s.cl.SearchVia("x") // want `RPC Client.SearchVia while s.rw is held`
	s.rw.RUnlock()
	return err
}

// Positive: the lock is still held inside nested control flow.
func (s *srv) badNested(cond bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		_ = s.cl.Configure() // want `RPC Client.Configure while s.mu is held`
	}
}

// Positive: an immediately-invoked literal runs under the caller's lock.
func (s *srv) badIIFE() {
	s.mu.Lock()
	defer s.mu.Unlock()
	func() {
		s.tr.Call("x", nil) // want `RPC Transport.Call while s.mu is held`
	}()
}

// Positive: a concrete transport implementation counts like the interface.
func (s *srv) badConcrete(t *transport.TCP) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.Call("x", nil) // want `RPC TCP.Call while s.mu is held`
}

// Negative: the RPC happens after the unlock.
func (s *srv) goodAfterUnlock() {
	s.mu.Lock()
	v := 1
	_ = v
	s.mu.Unlock()
	s.tr.Call("x", nil)
}

// Negative: a spawned goroutine does not hold the caller's lock.
func (s *srv) goodGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.tr.Call("x", nil)
	}()
}

// Negative: local, non-RPC methods are fine under the lock.
func (s *srv) goodLocal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Size()
}

// Negative: no lock, no finding.
func (s *srv) goodUnlocked() {
	s.tr.Call("x", nil)
}
