// Miniature of repro/internal/transport for fixture type resolution:
// the analyzer matches by package-path tail and method name, so this
// package exercises the same code path as the real one.
package transport

// Transport mirrors the RPC interface.
type Transport interface {
	Call(addr string, req []byte) ([]byte, error)
}

// TCP is a concrete implementation.
type TCP struct{}

// Call performs an RPC.
func (t *TCP) Call(addr string, req []byte) ([]byte, error) { return nil, nil }
