package nonetunderlock_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/nonetunderlock"
)

func TestNoNetUnderLock(t *testing.T) {
	linttest.Run(t, "testdata", nonetunderlock.Analyzer, "a")
}
