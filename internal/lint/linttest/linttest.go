// Package linttest runs an hdkvet analyzer over GOPATH-style fixture
// trees and checks its diagnostics against `// want "regexp"` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// stdlib-only framework in internal/lint/analysis.
//
// Fixtures live under <testdata>/src/<pkg>/*.go. A fixture package may
// import sibling fixture packages by their directory path (so a checker
// that matches real types by package-path tail — "transport",
// "telemetry" — can be exercised against a miniature of the real API)
// and anything from the standard library; stdlib imports resolve
// through `go list -export`, exactly like the production loader.
//
// Every diagnostic must land on a line carrying a matching want
// comment, and every want comment must be matched — extra and missing
// findings both fail the test.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// Run loads each fixture package, applies the analyzer, and asserts
// the findings equal the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		local:    map[string]*types.Package{},
		parsed:   map[string][]*ast.File{},
		exports:  map[string]string{},
	}
	for _, path := range pkgpaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on fixture %q: %v", a.Name, path, err)
		}
		checkWants(t, l.fset, pkg.Files, findings)
	}
}

type loader struct {
	testdata string
	fset     *token.FileSet
	local    map[string]*types.Package // loaded fixture packages
	parsed   map[string][]*ast.File
	infos    map[string]*types.Info
	exports  map[string]string // external import path -> export data file
	imp      types.Importer    // gc export importer for external deps
}

func (l *loader) dir(path string) string {
	return filepath.Join(l.testdata, "src", filepath.FromSlash(path))
}

func (l *loader) isFixture(path string) bool {
	st, err := os.Stat(l.dir(path))
	return err == nil && st.IsDir()
}

// load parses and type-checks one fixture package (and, recursively,
// the fixture packages it imports).
func (l *loader) load(path string) (*analysis.Package, error) {
	if l.infos == nil {
		l.infos = map[string]*types.Info{}
	}
	if _, done := l.local[path]; !done {
		if err := l.typecheck(path); err != nil {
			return nil, err
		}
	}
	return &analysis.Package{
		Path:  path,
		Fset:  l.fset,
		Files: l.parsed[path],
		Pkg:   l.local[path],
		Info:  l.infos[path],
	}, nil
}

func (l *loader) typecheck(path string) error {
	dir := l.dir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	var external []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if l.isFixture(p) {
				if _, done := l.local[p]; !done {
					if err := l.typecheck(p); err != nil {
						return err
					}
				}
			} else {
				external = append(external, p)
			}
		}
	}
	if err := l.resolveExternal(external); err != nil {
		return err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    importerFunc(func(p string) (*types.Package, error) { return l.importPkg(p) }),
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return fmt.Errorf("typecheck %s: %v", path, err)
	}
	l.local[path] = pkg
	l.parsed[path] = files
	l.infos[path] = info
	return nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if pkg, ok := l.local[path]; ok {
		return pkg, nil
	}
	return l.imp.Import(path)
}

// resolveExternal makes export data available for non-fixture imports
// via one `go list -export` invocation per new batch.
func (l *loader) resolveExternal(paths []string) error {
	var missing []string
	for _, p := range paths {
		if _, ok := l.exports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export,Error"}, missing...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %v: %v\n%s", missing, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
			Error      *struct{ Err string }
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Error != nil {
			return fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	if l.imp == nil {
		l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := l.exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		})
	}
	return nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expectation: a regexp on a specific file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, rest)
						break
					}
					pat, _ := strconv.Unquote(q)
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						break
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
