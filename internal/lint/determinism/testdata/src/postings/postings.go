// Fixtures for the determinism analyzer. The package is named postings
// so its import-path tail puts every file in scope.
package postings

import (
	"math/rand"
	"sort"
	"time"
)

func appendKey(buf []byte, k string) []byte { return append(buf, k...) }

// Positive: encoding straight out of a map range.
func badEncode(m map[string]int, buf []byte) []byte {
	for k := range m { // want `map range feeds an encoder \(appendKey\)`
		buf = appendKey(buf, k)
	}
	return buf
}

// Positive: collected keys used without a sort.
func badCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order feeds "keys" without an intervening sort`
		keys = append(keys, k)
	}
	return keys
}

// Positive: float accumulation depends on iteration order.
func badFloatAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map range accumulates into a float/string`
		total += v
	}
	return total
}

// Positive: string concatenation depends on iteration order.
func badStringConcat(m map[string]string) string {
	out := ""
	for _, v := range m { // want `map range accumulates into a float/string`
		out += v
	}
	return out
}

// Positive: wall-clock reads in a canonical path.
func badClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a determinism-critical path`
}

// Positive: randomness in a canonical path.
func badRand() int {
	return rand.Int() // want `math/rand in a determinism-critical path`
}

// Negative: the canonical collect-then-sort idiom.
func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Negative: sort.Slice counts as the intervening sort.
func goodCollectSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Negative: integer counting is order-independent.
func goodIntCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Negative: integer sums are order-independent.
func goodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Negative: filling another map is order-independent.
func goodMapFill(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Negative: ranging over a slice is always ordered.
func goodSliceRange(s []string, buf []byte) []byte {
	for _, k := range s {
		buf = appendKey(buf, k)
	}
	return buf
}
