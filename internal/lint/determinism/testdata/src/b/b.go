// Package b is OUT of the determinism analyzer's scope (its path tail
// is neither postings nor ingest, and it is not a core canonical file),
// so none of these order-dependent loops are reported.
package b

import "time"

func unscopedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func unscopedClock() int64 {
	return time.Now().UnixNano()
}
