// Package determinism guards the properties the repo's bit-identical
// parity gates assume: the coordinator traversal and every canonical
// encode path must be a pure function of their inputs. Go map iteration
// order is randomized per run, so a map range that feeds accumulation
// or encoding without an intervening sort produces answers that differ
// between two runs of the same binary — exactly the class of bug the
// Figure-7 parity gates (engine == fabric == coordinator, at any
// fan-out, over any transport) would surface as an unreproducible
// one-in-N flake. Wall-clock and randomness reads are banned in the
// same scope for the same reason.
//
// Scope: all files in packages whose import path ends in postings or
// ingest, plus coordinate.go and searchwire.go in the core package.
//
// Rules:
//
//   - A `for … range m` over a map is reported when its body appends,
//     encodes, writes, or accumulates into floats or strings — unless
//     the loop is the canonical collect-then-sort idiom: a single
//     append into a slice that is passed to sort.*/slices.Sort* before
//     any other use.
//   - Any use of time.Now or of math/rand (v1 or v2) in scope is
//     reported. Telemetry timing that provably cannot reach an encoded
//     byte can be suppressed at the use site with //hdkvet:ignore.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid unsorted map iteration feeding accumulation/encoding, time.Now, and math/rand " +
		"in the canonical-encode and coordinator-traversal paths the parity gates assume deterministic",
	Run: run,
}

// coreFiles are the determinism-critical files of the core package.
var coreFiles = map[string]bool{"coordinate.go": true, "searchwire.go": true}

func run(pass *analysis.Pass) error {
	tail := lintutil.PathTail(pass.Pkg.Path())
	for _, f := range pass.Files {
		switch {
		case tail == "postings" || tail == "ingest":
		case tail == "core" && coreFiles[filepath.Base(pass.Fset.Position(f.Pos()).Filename)]:
		default:
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "time" && fn.Name() == "Now":
					pass.Reportf(n.Pos(), "time.Now in a determinism-critical path")
				case fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2":
					pass.Reportf(n.Pos(), "math/rand in a determinism-critical path")
				}
			}
		case *ast.BlockStmt:
			checkStmtList(pass, n.List)
			// Keep descending: nested blocks are themselves BlockStmts
			// and range bodies are visited via their parents' lists.
		}
		return true
	})
}

// checkStmtList examines each map-range loop that is a direct element
// of the list, with access to the statements that follow it (for the
// collect-then-sort idiom).
func checkStmtList(pass *analysis.Pass, list []ast.Stmt) {
	for i, s := range list {
		rng, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		checkMapRange(pass, rng, list[i+1:])
	}
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	info := pass.TypesInfo

	// The canonical idiom: `for k := range m { keys = append(keys, k) }`
	// followed by a sort of keys before any other use.
	if dst, ok := singleAppendTarget(info, rng.Body); ok {
		obj := info.ObjectOf(dst)
		for _, s := range rest {
			if !mentionsStmt(info, s, obj) {
				continue
			}
			if isSortOf(info, s, obj) {
				return // collected then sorted: deterministic
			}
			pass.Reportf(rng.Pos(),
				"map iteration order feeds %q without an intervening sort", dst.Name)
			return
		}
		pass.Reportf(rng.Pos(),
			"map iteration order feeds %q without an intervening sort", dst.Name)
		return
	}

	// General body: flag order-dependent effects.
	if effect := orderDependentEffect(info, rng); effect != "" {
		pass.Reportf(rng.Pos(), "map range %s — iteration order is randomized; sort keys first", effect)
	}
}

// singleAppendTarget matches a body that is exactly `x = append(x, …)`
// and returns x.
func singleAppendTarget(info *types.Info, body *ast.BlockStmt) (*ast.Ident, bool) {
	if len(body.List) != 1 {
		return nil, false
	}
	as, ok := body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return dst, ok && b.Name() == "append"
}

func mentionsStmt(info *types.Info, s ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isSortOf matches `sort.X(dst…)`, `slices.SortX(dst…)` and
// `sort.Slice(dst, …)` expression statements.
func isSortOf(info *types.Info, s ast.Stmt, obj types.Object) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg().Path()
	if pkg != "sort" && pkg != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if lintutil.MentionsObj(info, arg, obj) {
			return true
		}
	}
	return false
}

// orderDependentEffect scans a map-range body for effects whose result
// depends on iteration order, returning a description or "".
func orderDependentEffect(info *types.Info, rng *ast.RangeStmt) string {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	effect := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if t := info.TypeOf(n.Lhs[0]); t != nil && orderSensitiveAccum(t) {
					effect = "accumulates into a float/string"
				}
			case token.ASSIGN, token.DEFINE:
				for _, rhs := range n.Rhs {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppendCall(info, call) {
						effect = "appends to a slice"
					}
				}
			}
		case *ast.CallExpr:
			if fn := lintutil.CalleeFunc(info, n); fn != nil {
				name := strings.ToLower(fn.Name())
				if strings.Contains(name, "encode") || strings.Contains(name, "append") ||
					strings.HasPrefix(name, "write") {
					effect = "feeds an encoder (" + fn.Name() + ")"
				}
			}
		}
		return effect == ""
	})
	return effect
}

func orderSensitiveAccum(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0 || b.Info()&types.IsString != 0
}

func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}
