// Package decodebounds flags preallocations sized by attacker-
// controlled wire integers: the exact class of the PR4 allocation bomb,
// where a tiny corrupt blob decoded a huge uvarint count and
// `make([]T, n)` amplified it into a multi-megabyte allocation before
// any bounds check ran.
//
// Scope: every function in a *wire*.go file, plus any function whose
// name starts with decode/parse (case-insensitive) anywhere. Within
// scope the analyzer tracks, statement by statement in source order:
//
//   - taint: a variable assigned from a call whose name contains
//     "uvarint" (binary.Uvarint, decodeUvarint, wireReader.uvarint, …)
//     carries a decoded, unvalidated integer; taint propagates through
//     assignments whose right-hand side mentions a tainted variable.
//   - bound: a tainted variable that appears in a relational comparison
//     (<, <=, >, >=) inside an if condition is considered validated
//     from that point on — the idiom every corrected decoder in this
//     repo uses (`if sz <= 0 || n > uint64(len(buf)-off) { return err }`).
//   - use: a `make` whose length or capacity mentions a tainted,
//     never-bounded variable is reported. A size expression that clamps
//     with the min builtin is accepted as bounded on the spot.
//
// The analysis is intraprocedural and heuristic by design: a bound
// check against the wrong quantity will not be caught. It exists to
// make "decode an integer, allocate with it, validate later (or
// never)" impossible to merge, not to prove allocation safety.
package decodebounds

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer is the decodebounds pass.
var Analyzer = &analysis.Analyzer{
	Name: "decodebounds",
	Doc: "flag make() preallocations sized from a decoded uvarint before any bound check " +
		"in wire files and decode/parse functions (the PR4 allocation-bomb class)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		wireFile := strings.Contains(base, "wire")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if wireFile || isDecodeName(fd.Name.Name) {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

func isDecodeName(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "decode") || strings.HasPrefix(l, "parse")
}

// event is one position-ordered step of the per-function scan.
type event struct {
	pos  token.Pos
	kind int // 0 assign, 1 bound, 2 make-use
	// assign
	lhs types.Object
	rhs ast.Expr
	dec bool // rhs is a uvarint decode call
	// bound
	obj types.Object
	// make-use
	sizeArgs []ast.Expr
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var events []event

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if obj := info.ObjectOf(id); obj != nil {
						events = append(events, event{
							pos: n.Pos(), kind: 0, lhs: obj, rhs: n.Rhs[0],
							dec: isUvarintCall(info, n.Rhs[0]),
						})
					}
				}
			}
		case *ast.IfStmt:
			for _, obj := range comparedObjects(info, n.Cond) {
				events = append(events, event{pos: n.Cond.Pos(), kind: 1, obj: obj})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "make" && len(n.Args) > 1 {
					events = append(events, event{pos: n.Pos(), kind: 2, sizeArgs: n.Args[1:]})
				}
			}
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	tainted := map[types.Object]bool{}
	for _, e := range events {
		switch e.kind {
		case 0:
			switch {
			case e.dec:
				tainted[e.lhs] = true
			case lintutil.Mentions(info, e.rhs, tainted):
				tainted[e.lhs] = true
			default:
				delete(tainted, e.lhs) // reassigned from a clean source
			}
		case 1:
			delete(tainted, e.obj)
		case 2:
			for _, arg := range e.sizeArgs {
				if clampedByMin(info, arg) {
					continue
				}
				if obj := firstMention(info, arg, tainted); obj != nil {
					pass.Reportf(e.pos,
						"make sized from decoded uvarint %q with no prior bound check against the remaining input",
						obj.Name())
				}
			}
		}
	}
}

// isUvarintCall reports whether the expression is a call whose callee
// name contains "uvarint" — the decode sources taint flows from.
func isUvarintCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	return strings.Contains(strings.ToLower(name), "uvarint")
}

// comparedObjects returns the objects that appear inside a relational
// comparison anywhere in the condition expression.
func comparedObjects(info *types.Info, cond ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						out = append(out, obj)
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// clampedByMin reports whether the size expression clamps through the
// min builtin.
func clampedByMin(info *types.Info, arg ast.Expr) bool {
	clamped := false
	ast.Inspect(arg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "min" {
				clamped = true
				return false
			}
		}
		return true
	})
	return clamped
}

// firstMention returns one tainted object the expression mentions.
func firstMention(info *types.Info, expr ast.Expr, tainted map[types.Object]bool) types.Object {
	var found types.Object
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && tainted[obj] {
				found = obj
			}
		}
		return true
	})
	return found
}
