package decodebounds_test

import (
	"testing"

	"repro/internal/lint/decodebounds"
	"repro/internal/lint/linttest"
)

func TestDecodeBounds(t *testing.T) {
	linttest.Run(t, "testdata", decodebounds.Analyzer, "a")
}
