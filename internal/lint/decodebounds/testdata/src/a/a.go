// Scope fixtures: this file is not a wire file, so only decode*/parse*
// functions are checked.
package a

import "encoding/binary"

// Positive: parse-prefixed functions are decode paths wherever they live.
func parseHeader(buf []byte) []int {
	n, _ := binary.Uvarint(buf)
	return make([]int, n) // want `make sized from decoded uvarint "n" with no prior bound check`
}

// Negative: a builder function in a non-wire file is out of scope even
// though it allocates from a uvarint.
func buildTable(buf []byte) []int {
	n, _ := binary.Uvarint(buf)
	return make([]int, n)
}
