// Fixtures for the decodebounds analyzer: this file's name contains
// "wire", so every function in it is in scope.
package a

import "encoding/binary"

// Positive: allocate straight from a decoded count.
func decodeNoCheck(buf []byte) []string {
	n, _ := binary.Uvarint(buf)
	out := make([]string, 0, n) // want `make sized from decoded uvarint "n" with no prior bound check`
	return out
}

// Positive: the taint flows through a conversion assignment.
func decodeViaConversion(buf []byte) []uint64 {
	n, _ := binary.Uvarint(buf)
	count := int(n)
	return make([]uint64, count) // want `make sized from decoded uvarint "count" with no prior bound check`
}

// Positive: map preallocation is the same bomb.
func decodeMapPrealloc(buf []byte) map[string]int {
	n, sz := binary.Uvarint(buf)
	_ = sz
	return make(map[string]int, n) // want `make sized from decoded uvarint "n" with no prior bound check`
}

// Negative: the canonical corrected form — compare against the
// remaining input before allocating.
func decodeChecked(buf []byte) []string {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)) {
		return nil
	}
	return make([]string, 0, n)
}

// Negative: clamping through the min builtin bounds on the spot.
func decodeClamped(buf []byte) []string {
	n, _ := binary.Uvarint(buf)
	return make([]string, 0, min(int(n), 256))
}

// Negative: a reassignment from a clean source clears the taint.
func decodeReassigned(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	n = 16
	return make([]byte, n)
}

// Negative: sizes that never saw the wire are fine.
func decodeFixed(buf []byte) []byte {
	return make([]byte, 64)
}
